// Cloudtrack: the paper's case study end to end — run the surrogate
// monsoon simulation, detect organized cloud systems from per-rank split
// files with the parallel data analysis algorithm, spawn 3x-resolution
// nests over them, and keep reallocating processors with the diffusion
// strategy as storms form, drift and dissipate.
package main

import (
	"fmt"
	"log"

	"nestdiff"
)

func main() {
	log.SetFlags(0)

	// The scripted Mumbai-2005-like monsoon over the Indian region.
	mc := nestdiff.DefaultMonsoonConfig()
	mc.Steps = 240 // 8 simulated hours at 2-minute steps
	schedule := nestdiff.MonsoonSchedule(mc)

	wcfg := nestdiff.DefaultWeatherConfig()
	wcfg.NX, wcfg.NY = mc.NX, mc.NY
	wcfg.SpawnRate = 0 // genesis comes from the script
	model, err := nestdiff.NewWeatherModel(wcfg)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := nestdiff.NewTorusSystem(256)
	if err != nil {
		log.Fatal(err)
	}
	tracker, err := sys.NewTracker(nestdiff.Diffusion)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := sys.NewPipeline(model, tracker, nestdiff.PipelineConfig{
		WRFGrid:       nestdiff.NewGrid(18, 15),
		AnalysisRanks: 16,
		Interval:      5, // PDA every 10 simulated minutes
		PDA:           nestdiff.DefaultPDAOptions(),
		MaxNests:      9,
	})
	if err != nil {
		log.Fatal(err)
	}

	si := 0
	for step := 0; step < mc.Steps; step++ {
		for si < len(schedule) && schedule[si].AtStep == step {
			if err := model.InjectCell(schedule[si].Cell); err != nil {
				log.Fatal(err)
			}
			si++
		}
		if err := pipe.Run(1); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("simulated %.0f hours; %d adaptation points\n",
		model.Time()/3600, len(pipe.Events()))
	births, deaths := 0, 0
	for _, e := range pipe.Events() {
		births += len(e.Diff.Added)
		deaths += len(e.Diff.Deleted)
	}
	fmt.Printf("storm systems tracked: %d spawned, %d dissipated, %d live at end\n",
		births, deaths, len(pipe.Nests()))

	exec, redist := tracker.Totals()
	fmt.Printf("modelled cost: execution %.1f s, redistribution %.3f s\n", exec, redist)

	fmt.Println("\nlive nests:")
	for _, spec := range pipe.ActiveSet() {
		nest := pipe.Nests()[spec.ID]
		nx, ny := nest.Size()
		fmt.Printf("  nest %-3d region %-18v fine grid %dx%d, peak QCLOUD %.2f\n",
			spec.ID, spec.Region, nx, ny, nest.QCloud().Max())
	}
}
