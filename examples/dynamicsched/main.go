// Dynamicsched: replay the same synthetic nest-churn sequence through all
// three reallocation strategies and watch the dynamic strategy pick
// between them per adaptation point (§IV-C, Fig. 12).
package main

import (
	"fmt"
	"log"

	"nestdiff"
)

func main() {
	log.SetFlags(0)

	cfg := nestdiff.DefaultSyntheticConfig()
	cfg.Steps = 12 // the paper's dynamic study uses 12 reconfigurations
	sets, err := nestdiff.GenerateSynthetic(cfg)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := nestdiff.NewTorusSystem(1024)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-step dynamic decisions:")
	dyn, err := sys.NewTracker(nestdiff.Dynamic)
	if err != nil {
		log.Fatal(err)
	}
	for i, set := range sets {
		sm, err := dyn.Apply(set)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			continue
		}
		verdict := "correct"
		if !sm.DynamicCorrect {
			verdict = "WRONG"
		}
		fmt.Printf("  step %2d: %d nests, picked %-9s (exec %6.1fs + redist %5.2fs) — %s\n",
			i, len(set), sm.Used, sm.ExecTime, sm.RedistTime, verdict)
	}

	fmt.Println("\nstrategy totals over the same sequence:")
	for _, strategy := range []nestdiff.Strategy{nestdiff.Diffusion, nestdiff.Scratch} {
		tr, err := sys.NewTracker(strategy)
		if err != nil {
			log.Fatal(err)
		}
		for _, set := range sets {
			if _, err := tr.Apply(set); err != nil {
				log.Fatal(err)
			}
		}
		exec, redist := tr.Totals()
		fmt.Printf("  %-10s execution %7.1f s, redistribution %6.2f s, total %7.1f s\n",
			strategy, exec, redist, exec+redist)
	}
	exec, redist := dyn.Totals()
	fmt.Printf("  %-10s execution %7.1f s, redistribution %6.2f s, total %7.1f s\n",
		nestdiff.Dynamic, exec, redist, exec+redist)
}
