// Quickstart: allocate processors for a handful of nests, delete and add
// some, and compare the diffusion reallocation with partition-from-scratch
// — the paper's Fig. 2 → Fig. 8 walk-through in a dozen lines of library
// calls.
package main

import (
	"fmt"
	"log"

	"nestdiff"
)

func main() {
	log.SetFlags(0)

	// A Blue Gene/L-style machine with 1024 cores (32x32 process grid).
	sys, err := nestdiff.NewTorusSystem(1024)
	if err != nil {
		log.Fatal(err)
	}
	tracker, err := sys.NewTracker(nestdiff.Diffusion)
	if err != nil {
		log.Fatal(err)
	}

	// Five regions of interest appear (parent-grid coordinates; the nests
	// themselves run at 3x resolution).
	initial := nestdiff.Set{
		{ID: 1, Region: nestdiff.NewRect(10, 10, 62, 62)},
		{ID: 2, Region: nestdiff.NewRect(120, 30, 62, 62)},
		{ID: 3, Region: nestdiff.NewRect(260, 40, 80, 80)},
		{ID: 4, Region: nestdiff.NewRect(60, 170, 88, 88)},
		{ID: 5, Region: nestdiff.NewRect(300, 180, 100, 100)},
	}
	if _, err := tracker.Apply(initial); err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial allocation (Huffman partition of the 32x32 grid):")
	printTable(tracker.Allocation().Table())

	// The weather moves on: nests 1, 2, 4 dissipate, nest 6 forms.
	next := nestdiff.Set{
		{ID: 3, Region: nestdiff.NewRect(260, 40, 80, 80)},
		{ID: 5, Region: nestdiff.NewRect(300, 180, 100, 100)},
		{ID: 6, Region: nestdiff.NewRect(40, 60, 90, 90)},
	}
	sm, err := tracker.Apply(next)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter tree-based hierarchical diffusion (delete 1,2,4; retain 3,5; add 6):")
	printTable(tracker.Allocation().Table())
	fmt.Printf("\nredistribution: %.3f s modelled, %.1f%% of nest data stayed on its processor,\n",
		sm.RedistTime, sm.Redist.OverlapPercent)
	fmt.Printf("average hop-bytes %.2f, %d remote messages\n",
		sm.Redist.AvgHopBytes, sm.Redist.Messages)
}

func printTable(rows []nestdiff.AllocationRow) {
	fmt.Printf("  %-8s %-11s %s\n", "nest", "start rank", "processor sub-grid")
	for _, r := range rows {
		fmt.Printf("  %-8d %-11d %dx%d\n", r.NestID, r.StartRank, r.Width, r.Height)
	}
}
