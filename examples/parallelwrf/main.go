// Parallelwrf: the distributed substrate end to end — run the parent
// simulation block-decomposed over MPI ranks with halo exchange, analyze
// its rank-local split files with the fully parallel clustering pipeline,
// and checkpoint/restore the driver model mid-run to show that long
// campaigns can resume bit-identically.
package main

import (
	"bytes"
	"fmt"
	"log"

	"nestdiff"
)

func main() {
	log.SetFlags(0)

	// A 48-core machine runs the parent simulation: one rank per core,
	// 2-cell halos exchanged every step.
	sys, err := nestdiff.NewTorusSystem(48)
	if err != nil {
		log.Fatal(err)
	}
	cfg := nestdiff.DefaultWeatherConfig()
	cfg.NX, cfg.NY = 96, 72
	cfg.SpawnRate = 0
	pm, err := sys.NewParallelWeatherModel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	storms := []nestdiff.Cell{
		{X: 20, Y: 18, Radius: 5, Peak: 2.5, Life: 4 * 3600},
		{X: 70, Y: 50, VX: -1.5e-3, Radius: 4, Peak: 2.0, Life: 5 * 3600},
	}
	for _, c := range storms {
		if err := pm.InjectCell(c); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if err := pm.Step(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("distributed run: %d ranks, %d steps, %.0f simulated minutes\n",
		sys.Grid.Size(), pm.StepCount(), pm.Time()/60)

	// Detect organized systems straight from rank-local split files with
	// the parallel clustering pipeline (no sequential bottleneck).
	splits := pm.Splits()
	rects, clusters, err := nestdiff.AnalyzeSplitsParallel(splits, sys.Grid, 12, nestdiff.DefaultPDAOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel analysis over %d split files on 12 ranks: %d systems\n", len(splits), len(rects))
	for i, r := range rects {
		fmt.Printf("  system %d: region %v (%d subdomains)\n", i+1, r, len(clusters[i]))
	}

	// Checkpoint/restore: a serial driver model saved mid-run resumes
	// bit-identically — the campaign survives restarts.
	serial, err := nestdiff.NewWeatherModel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range storms {
		if err := serial.InjectCell(c); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		serial.Step()
	}
	var ckpt bytes.Buffer
	if err := serial.Save(&ckpt); err != nil {
		log.Fatal(err)
	}
	restored, err := nestdiff.LoadWeatherModel(&ckpt)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		serial.Step()
		restored.Step()
	}
	identical := true
	for i := range serial.QCloud().Data {
		if serial.QCloud().Data[i] != restored.QCloud().Data[i] {
			identical = false
			break
		}
	}
	fmt.Printf("checkpoint at step 20, resumed to step 40: bit-identical = %v\n", identical)

	// Finally, the fully distributed pipeline: nests live block-distributed
	// over their allocated sub-rectangles, and every reallocation executes
	// a real in-place Alltoallv.
	driver, err := nestdiff.NewWeatherModel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range storms {
		if err := driver.InjectCell(c); err != nil {
			log.Fatal(err)
		}
	}
	tracker, err := sys.NewTracker(nestdiff.Diffusion)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := sys.NewPipeline(driver, tracker, nestdiff.PipelineConfig{
		WRFGrid:       nestdiff.NewGrid(8, 6),
		AnalysisRanks: 6,
		Interval:      5,
		PDA:           nestdiff.DefaultPDAOptions(),
		MaxNests:      4,
		Distributed:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := pipe.Run(120); err != nil {
		log.Fatal(err)
	}
	var executed float64
	for _, e := range pipe.Events() {
		executed += e.ExecutedRedistTime
	}
	fmt.Printf("distributed pipeline: %d adaptation points, %d distributed nests live, %.3f ms of executed Alltoallv\n",
		len(pipe.Events()), len(pipe.DistributedNests()), executed*1e3)
}
