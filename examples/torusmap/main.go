// Torusmap: execute one nest redistribution through the MPI-like runtime
// on a Blue Gene/L-style torus and verify byte-for-byte that the data
// survives — then show why the diffusion strategy wins there: an
// overlapping move costs a fraction of a disjoint one in modelled time.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nestdiff"
)

func main() {
	log.SetFlags(0)

	sys, err := nestdiff.NewTorusSystem(256) // 16x16 grid on an 8x8x4 torus
	if err != nil {
		log.Fatal(err)
	}

	// A 210x210 fine-grid nest (one float64 per point for the demo).
	const nx, ny = 210, 210
	src := &nestdiff.Field{NX: nx, NY: ny, Data: make([]float64, nx*ny)}
	rng := rand.New(rand.NewSource(42))
	for i := range src.Data {
		src.Data[i] = rng.Float64()
	}

	moves := []struct {
		name     string
		old, new nestdiff.Rect
	}{
		{"diffusion-like (anchored grow)", nestdiff.NewRect(0, 0, 8, 8), nestdiff.NewRect(0, 0, 10, 8)},
		{"scratch-like (disjoint move)", nestdiff.NewRect(0, 0, 8, 8), nestdiff.NewRect(8, 8, 8, 8)},
	}
	var times []float64
	for _, mv := range moves {
		tr := nestdiff.Transfer{
			NestID: 1, NX: nx, NY: ny,
			Old: mv.old, New: mv.new, ElemBytes: 8,
		}
		dst, elapsed, err := sys.RedistributeField(tr, src)
		if err != nil {
			log.Fatal(err)
		}
		for i := range src.Data {
			if dst.Data[i] != src.Data[i] {
				log.Fatalf("%s: data corrupted at %d", mv.name, i)
			}
		}
		times = append(times, elapsed)
		fmt.Printf("%-32s %v -> %v: %.3f ms, data verified intact\n",
			mv.name, mv.old, mv.new, elapsed*1e3)
	}
	fmt.Printf("\nthe overlapping move is %.1fx cheaper on the torus — that factor is\n",
		times[1]/times[0])
	fmt.Println("what the tree-based hierarchical diffusion strategy buys at every")
	fmt.Println("adaptation point.")
}
