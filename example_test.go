package nestdiff_test

import (
	"fmt"
	"log"

	"nestdiff"
)

// ExampleSystem_NewTracker reproduces the paper's Table I: the Huffman
// allocation of five nests on 1024 cores.
func ExampleSystem_NewTracker() {
	sys, err := nestdiff.NewTorusSystem(1024)
	if err != nil {
		log.Fatal(err)
	}
	tracker, err := sys.NewTracker(nestdiff.Diffusion)
	if err != nil {
		log.Fatal(err)
	}
	// Five nests whose fine domains produce the Fig. 2 weight ratios are
	// approximated here by equal-size regions with hand-set IDs; Apply
	// derives weights from the predicted execution times.
	set := nestdiff.Set{
		{ID: 1, Region: nestdiff.NewRect(0, 0, 61, 61)},
		{ID: 2, Region: nestdiff.NewRect(100, 0, 61, 61)},
		{ID: 3, Region: nestdiff.NewRect(200, 0, 80, 80)},
		{ID: 4, Region: nestdiff.NewRect(0, 150, 90, 90)},
		{ID: 5, Region: nestdiff.NewRect(200, 150, 110, 110)},
	}
	if _, err := tracker.Apply(set); err != nil {
		log.Fatal(err)
	}
	a := tracker.Allocation()
	fmt.Println("nests allocated:", len(a.Rects))
	fmt.Println("valid:", a.Validate() == nil)
	// Output:
	// nests allocated: 5
	// valid: true
}

// ExampleTracker_Apply shows a reconfiguration: one nest dissipates, one
// forms, and the diffusion strategy reports the redistribution metrics.
func ExampleTracker_Apply() {
	sys, err := nestdiff.NewTorusSystem(256)
	if err != nil {
		log.Fatal(err)
	}
	tracker, err := sys.NewTracker(nestdiff.Diffusion)
	if err != nil {
		log.Fatal(err)
	}
	first := nestdiff.Set{
		{ID: 1, Region: nestdiff.NewRect(10, 10, 70, 70)},
		{ID: 2, Region: nestdiff.NewRect(200, 100, 90, 90)},
	}
	if _, err := tracker.Apply(first); err != nil {
		log.Fatal(err)
	}
	second := nestdiff.Set{
		{ID: 2, Region: nestdiff.NewRect(200, 100, 90, 90)}, // retained
		{ID: 3, Region: nestdiff.NewRect(400, 50, 80, 80)},  // new
	}
	sm, err := tracker.Apply(second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strategy:", sm.Used)
	fmt.Println("retained nest moved data:", sm.Redist.TotalBytes > 0)
	// Output:
	// strategy: diffusion
	// retained nest moved data: true
}
