package nestdiff

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestNewTorusSystem(t *testing.T) {
	sys, err := NewTorusSystem(256)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Grid.Size() != 256 || sys.Net.Name() != "torus3d" {
		t.Fatalf("system = %+v", sys)
	}
	if _, err := NewTorusSystem(-1); err == nil {
		t.Fatal("negative cores accepted")
	}
	if _, err := NewTorusSystem(0); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestNewSwitchedSystem(t *testing.T) {
	sys, err := NewSwitchedSystem(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Net.Name() != "switched" {
		t.Fatal("wrong network kind")
	}
	if _, err := NewSwitchedSystem(64, 0); err == nil {
		t.Fatal("zero per-node accepted")
	}
}

func TestFacadeTrackerRoundTrip(t *testing.T) {
	sys, err := NewTorusSystem(1024)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sys.NewTracker(Diffusion)
	if err != nil {
		t.Fatal(err)
	}
	set := Set{
		{ID: 1, Region: NewRect(10, 10, 70, 70)},
		{ID: 2, Region: NewRect(200, 100, 90, 90)},
	}
	sm, err := tr.Apply(set)
	if err != nil {
		t.Fatal(err)
	}
	if sm.ExecTime <= 0 {
		t.Fatal("no execution time")
	}
	rows := tr.Allocation().Table()
	if len(rows) != 2 {
		t.Fatalf("allocation rows = %d", len(rows))
	}
	// Second apply with churn produces redistribution metrics.
	next := Set{
		{ID: 2, Region: NewRect(200, 100, 90, 90)},
		{ID: 3, Region: NewRect(400, 150, 80, 80)},
	}
	sm, err = tr.Apply(next)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Redist.TotalBytes == 0 {
		t.Fatal("no redistribution metrics for retained nest")
	}
}

func TestFacadeTrackerOptions(t *testing.T) {
	sys, err := NewTorusSystem(64)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultTrackerOptions()
	opts.ElemBytes = 8
	tr, err := sys.NewTrackerWithOptions(Scratch, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Apply(Set{{ID: 1, Region: NewRect(0, 0, 70, 70)}}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeScenarioHelpers(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.Steps = 3
	sets, err := GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 4 {
		t.Fatalf("sets = %d", len(sets))
	}
	sched := MonsoonSchedule(DefaultMonsoonConfig())
	if len(sched) == 0 {
		t.Fatal("empty monsoon schedule")
	}
}

func TestFacadeWeatherAndPDA(t *testing.T) {
	cfg := DefaultWeatherConfig()
	cfg.NX, cfg.NY = 48, 36
	cfg.SpawnRate = 0
	m, err := NewWeatherModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InjectCell(Cell{X: 24, Y: 18, Radius: 4, Peak: 2.5, Life: 7200}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		m.Step()
	}
	splits, err := m.Splits(NewGrid(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	rects, clusters, err := AnalyzeSplits(splits, DefaultPDAOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) == 0 || len(clusters) != len(rects) {
		t.Fatalf("detected %d nests / %d clusters", len(rects), len(clusters))
	}
	// The strongest cluster must cover the storm core.
	if !rects[0].Contains(Point{X: 25, Y: 18}) {
		t.Fatalf("primary nest %v misses the storm core", rects[0])
	}
	if NestRatio != 3 {
		t.Fatal("NestRatio != 3")
	}
}

func TestFacadePipeline(t *testing.T) {
	sys, err := NewTorusSystem(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultWeatherConfig()
	cfg.NX, cfg.NY = 48, 36
	cfg.SpawnRate = 0
	m, err := NewWeatherModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InjectCell(Cell{X: 24, Y: 18, Radius: 4, Peak: 2.5, Life: 7200}); err != nil {
		t.Fatal(err)
	}
	tr, err := sys.NewTracker(Dynamic)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := sys.NewPipeline(m, tr, PipelineConfig{
		WRFGrid:       NewGrid(4, 3),
		AnalysisRanks: 3,
		Interval:      5,
		PDA:           DefaultPDAOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Run(30); err != nil {
		t.Fatal(err)
	}
	if len(pipe.Events()) != 6 {
		t.Fatalf("events = %d", len(pipe.Events()))
	}
	if len(pipe.Nests()) == 0 {
		t.Fatal("storm not nested")
	}
}

func TestFacadeRedistributeField(t *testing.T) {
	sys, err := NewTorusSystem(64)
	if err != nil {
		t.Fatal(err)
	}
	const nx, ny = 50, 40
	src := &Field{NX: nx, NY: ny, Data: make([]float64, nx*ny)}
	rng := rand.New(rand.NewSource(5))
	for i := range src.Data {
		src.Data[i] = rng.Float64()
	}
	tr := Transfer{
		NestID: 1, NX: nx, NY: ny,
		Old: NewRect(0, 0, 4, 4), New: NewRect(4, 4, 4, 4), ElemBytes: 8,
	}
	dst, elapsed, err := sys.RedistributeField(tr, src)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("free redistribution")
	}
	for i := range src.Data {
		if dst.Data[i] != src.Data[i] {
			t.Fatal("data corrupted")
		}
	}
}

func TestFacadeMeshSystem(t *testing.T) {
	sys, err := NewMeshSystem(64)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Net.Name() != "mesh3d" {
		t.Fatalf("mesh system network = %q", sys.Net.Name())
	}
	if _, err := NewMeshSystem(0); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestFacadeParallelWeatherModel(t *testing.T) {
	sys, err := NewTorusSystem(12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultWeatherConfig()
	cfg.NX, cfg.NY = 48, 36
	cfg.SpawnRate = 0
	pm, err := sys.NewParallelWeatherModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.InjectCell(Cell{X: 24, Y: 18, Radius: 4, Peak: 2, Life: 7200}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := pm.Step(); err != nil {
			t.Fatal(err)
		}
	}
	splits := pm.Splits()
	if len(splits) != 12 {
		t.Fatalf("splits = %d", len(splits))
	}
	rects, _, err := AnalyzeSplits(splits, DefaultPDAOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) == 0 {
		t.Fatal("distributed model's splits detected nothing")
	}
}

func TestFacadeViz(t *testing.T) {
	sys, err := NewTorusSystem(64)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sys.NewTracker(Scratch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Apply(Set{{ID: 1, Region: NewRect(0, 0, 61, 61)}}); err != nil {
		t.Fatal(err)
	}
	if out := AllocationGrid(tr.Allocation(), 0); len(out) == 0 {
		t.Fatal("empty allocation grid")
	}
	f := &Field{NX: 10, NY: 10, Data: make([]float64, 100)}
	if out := Heatmap(f, 10, 10, nil); len(out) == 0 {
		t.Fatal("empty heatmap")
	}
}

func TestFacadeCheckpointRoundTrips(t *testing.T) {
	// Weather model.
	cfg := DefaultWeatherConfig()
	cfg.NX, cfg.NY = 48, 36
	m, err := NewWeatherModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		m.Step()
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadWeatherModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.StepCount() != 5 {
		t.Fatalf("restored steps = %d", restored.StepCount())
	}

	// Tracker.
	sys, err := NewTorusSystem(64)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sys.NewTracker(Diffusion)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Apply(Set{{ID: 1, Region: NewRect(0, 0, 70, 70)}}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := tr.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := sys.RestoreTracker(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Allocation().Rects) != 1 {
		t.Fatal("tracker state lost")
	}
}

func TestFacadeAnalyzeSplitsParallel(t *testing.T) {
	cfg := DefaultWeatherConfig()
	cfg.NX, cfg.NY = 48, 36
	cfg.SpawnRate = 0
	m, err := NewWeatherModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InjectCell(Cell{X: 24, Y: 18, Radius: 4, Peak: 2.5, Life: 7200}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		m.Step()
	}
	pg := NewGrid(4, 3)
	splits, err := m.Splits(pg)
	if err != nil {
		t.Fatal(err)
	}
	rects, clusters, err := AnalyzeSplitsParallel(splits, pg, 4, DefaultPDAOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) == 0 || len(clusters) != len(rects) {
		t.Fatalf("parallel analysis found %d/%d", len(rects), len(clusters))
	}
	if _, _, err := AnalyzeSplitsParallel(splits, pg, 0, DefaultPDAOptions()); err == nil {
		t.Fatal("zero ranks accepted")
	}
}

func TestFacadeDefaultPipelineConfig(t *testing.T) {
	cfg := DefaultPipelineConfig()
	if cfg.WRFGrid.Size() == 0 || cfg.AnalysisRanks == 0 || cfg.Interval == 0 {
		t.Fatalf("defaults incomplete: %+v", cfg)
	}
}
