package nestdiff

// claims_test asserts the paper's headline claims through the public API,
// as a single top-level statement of what this repository reproduces.

import (
	"testing"

	"nestdiff/internal/experiments"
)

func TestPaperClaim_TableIExactReproduction(t *testing.T) {
	rows, err := experiments.Table1()
	if err != nil {
		t.Fatal(err)
	}
	want := [][4]int{ // nest, start rank, width, height — Table I verbatim
		{1, 0, 13, 8}, {2, 256, 13, 8}, {3, 512, 13, 16}, {4, 13, 19, 13}, {5, 429, 19, 19},
	}
	for i, w := range want {
		r := rows[i]
		if r.NestID != w[0] || r.StartRank != w[1] || r.Width != w[2] || r.Height != w[3] {
			t.Fatalf("Table I row %d = %+v, paper says %v", i, r, w)
		}
	}
}

func TestPaperClaim_DiffusionReducesRedistribution(t *testing.T) {
	// Abstract: "up to 25% lower redistribution cost ... than the
	// processor reallocation strategy that does not consider the existing
	// processor allocation". Shape claim: positive improvement on every
	// machine of Table III, largest gains on the torus.
	rows, _, err := experiments.Table4(25, 1913)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ImprovementPercent <= 0 {
			t.Fatalf("%s: no improvement (%.1f%%)", r.Configuration, r.ImprovementPercent)
		}
	}
	if rows[1].ImprovementPercent <= rows[2].ImprovementPercent {
		t.Fatalf("torus (%.1f%%) should out-gain the switched cluster (%.1f%%)",
			rows[1].ImprovementPercent, rows[2].ImprovementPercent)
	}
}

func TestPaperClaim_HopBytesReduction(t *testing.T) {
	// Abstract: "53% lesser hop-bytes". Shape claim: a large hop-bytes
	// reduction on BG/L 1024 (ours lands at ~39%).
	m, err := experiments.BGL(1024)
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiments.RunSynthetic(m, 25, 1913)
	if err != nil {
		t.Fatal(err)
	}
	reduction := 100 * (res.MeanScratchHopBytes - res.MeanDiffusionHopBytes) / res.MeanScratchHopBytes
	if reduction < 20 {
		t.Fatalf("hop-bytes reduction %.0f%%, want a large cut (paper: 53%%)", reduction)
	}
}

func TestPaperClaim_DynamicCombinesBothStrategies(t *testing.T) {
	// §V-F / Fig. 12: redistribution ordering tree < scratch, execution
	// ordering scratch ≤ tree, dynamic competitive with the best.
	m, err := experiments.BGL(1024)
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiments.RunDynamic(m, 12, 1913)
	if err != nil {
		t.Fatal(err)
	}
	if res.RedistTotal["diffusion"] >= res.RedistTotal["scratch"] {
		t.Fatal("tree-based redistribution not lowest")
	}
	if res.ExecTotal["scratch"] > res.ExecTotal["diffusion"] {
		t.Fatal("scratch execution not lowest")
	}
	best := res.ExecTotal["diffusion"] + res.RedistTotal["diffusion"]
	if s := res.ExecTotal["scratch"] + res.RedistTotal["scratch"]; s < best {
		best = s
	}
	dyn := res.ExecTotal["dynamic"] + res.RedistTotal["dynamic"]
	if dyn > best*1.10 {
		t.Fatalf("dynamic total %.1f not competitive with best pure %.1f", dyn, best)
	}
	if res.PearsonR < 0.7 {
		t.Fatalf("execution prediction r = %.2f (paper: 0.9)", res.PearsonR)
	}
}
