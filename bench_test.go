package nestdiff

// One benchmark per table and figure of the paper's evaluation (§V). Each
// bench regenerates the experiment and reports its headline metric through
// b.ReportMetric, so `go test -bench=. -benchmem` reproduces the
// evaluation alongside the timing. Shapes expected from the paper:
//
//	Table I    exact allocation rows (verified in the bench body)
//	Table IV   positive redistribution improvement on all three machines
//	Fig. 10    diffusion avg hop-bytes well below scratch (paper: 2.44 vs 5.25)
//	Fig. 11    diffusion overlap above scratch
//	§V-D       positive improvement on the real monsoon trace
//	Fig. 12    diffusion lowest redistribution, dynamic competitive overall
import (
	"testing"

	"nestdiff/internal/experiments"
	"nestdiff/internal/scenario"
)

func BenchmarkTable1_HuffmanAllocation1024(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 || rows[4].StartRank != 429 {
			b.Fatalf("Table I rows wrong: %+v", rows)
		}
	}
}

func BenchmarkTable2_ScratchRealloc1024(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 || rows[1].StartRank != 0 {
			b.Fatalf("Table II rows wrong: %+v", rows)
		}
	}
}

func BenchmarkFig8_DiffusionExample(b *testing.B) {
	var overlap int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		overlap = res.OverlapCells[3] + res.OverlapCells[5]
	}
	b.ReportMetric(float64(overlap), "overlap-cells")
}

func BenchmarkFig9_NNCClustering(b *testing.B) {
	var ours, simple int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		ours, simple = res.OursOverlapsTotal, res.SimpleOverlapsTotal
	}
	b.ReportMetric(float64(ours), "ours-overlaps")
	b.ReportMetric(float64(simple), "simple-overlaps")
}

func benchSynthetic(b *testing.B, mk func() (experiments.Machine, error), cases int) {
	b.Helper()
	m, err := mk()
	if err != nil {
		b.Fatal(err)
	}
	var improvement float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSynthetic(m, cases, 1913)
		if err != nil {
			b.Fatal(err)
		}
		if res.RedistImprovementPercent <= 0 {
			b.Fatalf("no redistribution improvement on %s", m.Name)
		}
		improvement = res.RedistImprovementPercent
	}
	b.ReportMetric(improvement, "improvement-%")
}

func BenchmarkTable4_Synthetic_BGL1024(b *testing.B) {
	benchSynthetic(b, func() (experiments.Machine, error) { return experiments.BGL(1024) }, 70)
}

func BenchmarkTable4_Synthetic_BGL256(b *testing.B) {
	benchSynthetic(b, func() (experiments.Machine, error) { return experiments.BGL(256) }, 70)
}

func BenchmarkTable4_Synthetic_Fist256(b *testing.B) {
	benchSynthetic(b, func() (experiments.Machine, error) { return experiments.Fist(256) }, 70)
}

func BenchmarkFig10_HopBytes_BGL1024(b *testing.B) {
	m, err := experiments.BGL(1024)
	if err != nil {
		b.Fatal(err)
	}
	var scratch, diffusion float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSynthetic(m, 70, 1913)
		if err != nil {
			b.Fatal(err)
		}
		scratch, diffusion = res.MeanScratchHopBytes, res.MeanDiffusionHopBytes
		if diffusion >= scratch {
			b.Fatal("hop-bytes shape violated")
		}
	}
	b.ReportMetric(scratch, "scratch-hopbytes")
	b.ReportMetric(diffusion, "diffusion-hopbytes")
}

func BenchmarkFig11_Overlap_BGL1024(b *testing.B) {
	m, err := experiments.BGL(1024)
	if err != nil {
		b.Fatal(err)
	}
	var scratch, diffusion float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSynthetic(m, 70, 1913)
		if err != nil {
			b.Fatal(err)
		}
		scratch, diffusion = res.MeanScratchOverlap, res.MeanDiffusionOverlap
		if diffusion <= scratch {
			b.Fatal("overlap shape violated")
		}
	}
	b.ReportMetric(scratch, "scratch-overlap-%")
	b.ReportMetric(diffusion, "diffusion-overlap-%")
}

func benchRealTrace(b *testing.B, cores int) {
	b.Helper()
	m, err := experiments.BGL(cores)
	if err != nil {
		b.Fatal(err)
	}
	mc := scenario.DefaultMonsoonConfig()
	mc.Steps = 200
	var improvement float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRealTrace(m, mc)
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalRedistImprovementPercent <= 0 {
			b.Fatal("real trace shows no improvement")
		}
		improvement = res.TotalRedistImprovementPercent
	}
	b.ReportMetric(improvement, "improvement-%")
}

func BenchmarkRealTrace_BGL512(b *testing.B)  { benchRealTrace(b, 512) }
func BenchmarkRealTrace_BGL1024(b *testing.B) { benchRealTrace(b, 1024) }

func BenchmarkFig12_DynamicStrategy(b *testing.B) {
	m, err := experiments.BGL(1024)
	if err != nil {
		b.Fatal(err)
	}
	var correct, pearson float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDynamic(m, 12, 1913)
		if err != nil {
			b.Fatal(err)
		}
		if res.RedistTotal["diffusion"] >= res.RedistTotal["scratch"] {
			b.Fatal("Fig. 12 shape violated")
		}
		correct = float64(res.CorrectPicks)
		pearson = res.PearsonR
	}
	b.ReportMetric(correct, "correct-of-12")
	b.ReportMetric(pearson, "pearson-r")
}

// BenchmarkPipeline_EndToEnd times the full framework loop (simulation +
// PDA + reallocation) per parent step, the paper's contribution 2.
func BenchmarkPipeline_EndToEnd(b *testing.B) {
	sys, err := NewTorusSystem(256)
	if err != nil {
		b.Fatal(err)
	}
	wcfg := DefaultWeatherConfig()
	wcfg.NX, wcfg.NY = 96, 72
	wcfg.SpawnRate = 0
	model, err := NewWeatherModel(wcfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := model.InjectCell(Cell{X: 30, Y: 30, Radius: 5, Peak: 2, Life: 7200}); err != nil {
		b.Fatal(err)
	}
	tracker, err := sys.NewTracker(Diffusion)
	if err != nil {
		b.Fatal(err)
	}
	pipe, err := sys.NewPipeline(model, tracker, PipelineConfig{
		WRFGrid:       NewGrid(8, 6),
		AnalysisRanks: 6,
		Interval:      1,
		PDA:           DefaultPDAOptions(),
		MaxNests:      9,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pipe.Run(1); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches: the design choices DESIGN.md calls out.

func BenchmarkAblation_Scaling(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ScalingStudy([]int{256, 1024}, 15, 1913)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		if last.DiffusionHopBytes >= last.ScratchHopBytes {
			b.Fatal("scaling shape violated")
		}
		gap = last.ScratchMaxHops - last.DiffusionMaxHops
	}
	b.ReportMetric(gap, "maxhop-gap-1024")
}

func BenchmarkAblation_InsertionPolicy(b *testing.B) {
	var closest, firstFree float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.InsertionPolicyAblation(1024, 30, 1913)
		if err != nil {
			b.Fatal(err)
		}
		closest, firstFree = res.ClosestAspect, res.FirstFreeAspect
	}
	b.ReportMetric(closest, "closest-aspect")
	b.ReportMetric(firstFree, "firstfree-aspect")
}

func BenchmarkAblation_TopologyMapping(b *testing.B) {
	var folded, linear float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.MappingAblation(1024, 20, 1913)
		if err != nil {
			b.Fatal(err)
		}
		if res.FoldedHopBytes >= res.LinearHopBytes {
			b.Fatal("mapping shape violated")
		}
		folded, linear = res.FoldedHopBytes, res.LinearHopBytes
	}
	b.ReportMetric(folded, "folded-hopbytes")
	b.ReportMetric(linear, "linear-hopbytes")
}

func BenchmarkExtension_ParallelNNCScaling(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PDAScaling([]int{60})
		if err != nil {
			b.Fatal(err)
		}
		speedup = rows[0].RootNNCClock / rows[0].ParallelClock
	}
	b.ReportMetric(speedup, "speedup-vs-alg1")
}
