package experiments

import (
	"fmt"

	"nestdiff/internal/core"
	"nestdiff/internal/geom"
	"nestdiff/internal/pda"
	"nestdiff/internal/scenario"
	"nestdiff/internal/wrfsim"
)

// RealTraceResult is the §V-D real-test-case comparison: the monsoon
// simulation is run once, the PDA-detected nest trace is recorded, and the
// identical trace is replayed through both strategies.
type RealTraceResult struct {
	*SyntheticResult
	// Reconfigurations counts adaptation points where the nest set or the
	// regions actually changed (the paper reports ≈100 for the real runs).
	Reconfigurations int
	MaxNests         int
}

// RealTraceSets runs the scripted monsoon scenario and detection pipeline
// (model → split files → PDA → ROI matching) and returns the nest
// configuration at every analysis point. The trace depends only on the
// scenario seed, not on any allocation strategy, so it can be replayed
// fairly through every tracker.
func RealTraceSets(mc scenario.MonsoonConfig, pg geom.Grid, maxNests int) ([]scenario.Set, error) {
	sched := scenario.MonsoonSchedule(mc)
	wcfg := wrfsim.DefaultConfig()
	wcfg.NX, wcfg.NY = mc.NX, mc.NY
	wcfg.SpawnRate = 0
	wcfg.MergeEnabled = true // drifting systems may cluster (§I)
	m, err := wrfsim.NewModel(wcfg)
	if err != nil {
		return nil, err
	}
	opt := pda.DefaultOptions()
	var sets []scenario.Set
	var cur scenario.Set
	nextID := 1
	si := 0
	for step := 0; step < mc.Steps; step++ {
		for si < len(sched) && sched[si].AtStep == step {
			if err := m.InjectCell(sched[si].Cell); err != nil {
				return nil, err
			}
			si++
		}
		m.Step()
		splits, err := m.Splits(pg)
		if err != nil {
			return nil, err
		}
		rects, _, err := pda.Analyze(splits, opt)
		if err != nil {
			return nil, err
		}
		if maxNests > 0 && len(rects) > maxNests {
			rects = rects[:maxNests]
		}
		cur = core.MatchROIs(cur, rects, &nextID)
		sets = append(sets, cur)
	}
	return sets, nil
}

// RunRealTrace reproduces the §V-D real test cases on a machine: the
// Mumbai-2005-calibrated monsoon trace replayed through scratch and
// diffusion. The paper reports 14% (512 cores) and 12% (1024 cores)
// redistribution improvements.
func RunRealTrace(m Machine, mc scenario.MonsoonConfig) (*RealTraceResult, error) {
	// The detection process grid matches the machine's WRF decomposition
	// scaled to the model domain: use the machine grid directly when it
	// fits, else a near-square grid bounded by the domain.
	pg := m.Grid
	if pg.Px > mc.NX || pg.Py > mc.NY {
		return nil, fmt.Errorf("experiments: process grid %dx%d exceeds domain %dx%d",
			pg.Px, pg.Py, mc.NX, mc.NY)
	}
	sets, err := RealTraceSets(mc, pg, 9)
	if err != nil {
		return nil, err
	}
	base, err := runSets(m, sets)
	if err != nil {
		return nil, err
	}
	res := &RealTraceResult{SyntheticResult: base}
	for i := 1; i < len(sets); i++ {
		if setsDiffer(sets[i-1], sets[i]) {
			res.Reconfigurations++
		}
		if len(sets[i]) > res.MaxNests {
			res.MaxNests = len(sets[i])
		}
	}
	return res, nil
}

func setsDiffer(a, b scenario.Set) bool {
	if len(a) != len(b) {
		return true
	}
	for _, n := range a {
		o, ok := b.ByID(n.ID)
		if !ok || o.Region != n.Region {
			return true
		}
	}
	return false
}
