package experiments

import (
	"fmt"

	"nestdiff/internal/core"
	"nestdiff/internal/scenario"
	"nestdiff/internal/stats"
)

// DynamicResult is the §V-F / Fig. 12 study: the same reconfiguration
// sequence through all three strategies, with the dynamic strategy's
// decision quality and the execution-time predictor's Pearson correlation.
type DynamicResult struct {
	Machine          string
	Reconfigurations int

	// Fig. 12 bars: total execution and redistribution time per strategy.
	ExecTotal   map[string]float64
	RedistTotal map[string]float64

	// Dynamic decision quality (paper: 10 of 12 correct; scratch picked
	// twice, tree-based ten times).
	PickedScratch   int
	PickedDiffusion int
	CorrectPicks    int

	// PearsonR is the correlation between predicted and actual execution
	// times across all strategy steps (paper: ≈0.9).
	PearsonR float64
}

// RunDynamic reproduces the dynamic-strategy experiment with the given
// number of reconfigurations (12 in the paper) on the machine.
func RunDynamic(m Machine, reconfigs int, seed int64) (*DynamicResult, error) {
	cfg := scenario.DefaultSyntheticConfig()
	cfg.Steps = reconfigs
	cfg.Seed = seed
	sets, err := scenario.Generate(cfg)
	if err != nil {
		return nil, err
	}
	model, oracle, err := Model()
	if err != nil {
		return nil, err
	}
	res := &DynamicResult{
		Machine:          m.Name,
		Reconfigurations: reconfigs,
		ExecTotal:        map[string]float64{},
		RedistTotal:      map[string]float64{},
	}
	var predExec, actExec []float64
	opts := core.DefaultOptions()
	for _, strategy := range []core.Strategy{core.Diffusion, core.Scratch, core.Dynamic} {
		tr, err := core.NewTracker(m.Grid, m.Net, model, oracle, strategy, opts)
		if err != nil {
			return nil, err
		}
		for i, set := range sets {
			sm, err := tr.Apply(set)
			if err != nil {
				return nil, fmt.Errorf("experiments: %v step %d: %w", strategy, i, err)
			}
			if i == 0 {
				continue
			}
			// Correlate actual vs predicted execution time per nest (the
			// paper validates the predictor over nest configurations).
			for _, spec := range set {
				r, ok := tr.Allocation().Rects[spec.ID]
				if !ok {
					continue
				}
				nx, ny := spec.FineSize(opts.Ratio)
				p, err := model.PredictRect(nx, ny, r)
				if err != nil {
					return nil, err
				}
				predExec = append(predExec, p)
				actExec = append(actExec, oracle.ExecTime(nx, ny, r.Area(), r.AspectRatio()))
			}
			if strategy == core.Dynamic {
				switch sm.Used {
				case core.Scratch:
					res.PickedScratch++
				case core.Diffusion:
					res.PickedDiffusion++
				}
				if sm.DynamicCorrect {
					res.CorrectPicks++
				}
			}
		}
		exec, red := tr.Totals()
		res.ExecTotal[strategy.String()] = exec
		res.RedistTotal[strategy.String()] = red
	}
	r, err := stats.Pearson(actExec, predExec)
	if err != nil {
		return nil, err
	}
	res.PearsonR = r
	return res, nil
}
