package experiments

import (
	"fmt"

	"nestdiff/internal/core"
	"nestdiff/internal/scenario"
	"nestdiff/internal/stats"
)

// CaseMetrics compares the two strategies on one reconfiguration case.
type CaseMetrics struct {
	Case int
	// Redistribution time (seconds, actual model with contention).
	ScratchRedist   float64
	DiffusionRedist float64
	// Average hop-bytes (Fig. 10 series).
	ScratchHopBytes   float64
	DiffusionHopBytes float64
	// Sender/receiver overlap percent (Fig. 11 series).
	ScratchOverlap   float64
	DiffusionOverlap float64
	// Execution time of the resulting allocation.
	ScratchExec   float64
	DiffusionExec float64
}

// SyntheticResult aggregates a synthetic churn run on one machine.
type SyntheticResult struct {
	Machine string
	Cases   []CaseMetrics
	// RedistImprovementPercent is the mean per-case improvement of
	// diffusion over scratch in redistribution time (Table IV).
	RedistImprovementPercent float64
	// TotalRedistImprovementPercent compares the summed redistribution
	// times instead — robust to near-zero cases; used for the real-trace
	// headline.
	TotalRedistImprovementPercent float64
	// ExecPenaltyPercent is the mean increase in execution time of
	// diffusion over scratch (§V-D reports ≈4%).
	ExecPenaltyPercent float64
	// Mean series values (Fig. 10 / Fig. 11 discussion: 5.25 vs 2.44
	// hop-bytes; overlap higher for diffusion).
	MeanScratchHopBytes   float64
	MeanDiffusionHopBytes float64
	MeanScratchOverlap    float64
	MeanDiffusionOverlap  float64
}

// RunSynthetic replays the same synthetic nest-churn sequence through a
// scratch tracker and a diffusion tracker on the given machine and
// compares them per reconfiguration case (Table IV, Figs. 10–11).
func RunSynthetic(m Machine, cases int, seed int64) (*SyntheticResult, error) {
	cfg := scenario.DefaultSyntheticConfig()
	cfg.Steps = cases
	cfg.Seed = seed
	sets, err := scenario.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return runSets(m, sets)
}

// runSets feeds an identical set sequence through both pure strategies.
func runSets(m Machine, sets []scenario.Set) (*SyntheticResult, error) {
	model, oracle, err := Model()
	if err != nil {
		return nil, err
	}
	newTracker := func(s core.Strategy) (*core.Tracker, error) {
		return core.NewTracker(m.Grid, m.Net, model, oracle, s, core.DefaultOptions())
	}
	trS, err := newTracker(core.Scratch)
	if err != nil {
		return nil, err
	}
	trD, err := newTracker(core.Diffusion)
	if err != nil {
		return nil, err
	}
	res := &SyntheticResult{Machine: m.Name}
	for i, set := range sets {
		smS, err := trS.Apply(set)
		if err != nil {
			return nil, fmt.Errorf("experiments: scratch step %d: %w", i, err)
		}
		smD, err := trD.Apply(set)
		if err != nil {
			return nil, fmt.Errorf("experiments: diffusion step %d: %w", i, err)
		}
		if i == 0 {
			continue // initial allocation has no redistribution
		}
		res.Cases = append(res.Cases, CaseMetrics{
			Case:              i,
			ScratchRedist:     smS.RedistTime,
			DiffusionRedist:   smD.RedistTime,
			ScratchHopBytes:   smS.Redist.AvgHopBytes,
			DiffusionHopBytes: smD.Redist.AvgHopBytes,
			ScratchOverlap:    smS.Redist.OverlapPercent,
			DiffusionOverlap:  smD.Redist.OverlapPercent,
			ScratchExec:       smS.ExecTime,
			DiffusionExec:     smD.ExecTime,
		})
	}
	return res.finish()
}

func (res *SyntheticResult) finish() (*SyntheticResult, error) {
	var sRe, dRe, sEx, dEx, sHB, dHB, sOv, dOv []float64
	for _, c := range res.Cases {
		sRe = append(sRe, c.ScratchRedist)
		dRe = append(dRe, c.DiffusionRedist)
		sEx = append(sEx, c.ScratchExec)
		dEx = append(dEx, c.DiffusionExec)
		sHB = append(sHB, c.ScratchHopBytes)
		dHB = append(dHB, c.DiffusionHopBytes)
		sOv = append(sOv, c.ScratchOverlap)
		dOv = append(dOv, c.DiffusionOverlap)
	}
	imp, err := stats.MeanImprovementPercent(sRe, dRe)
	if err != nil {
		return nil, err
	}
	res.RedistImprovementPercent = imp
	var sSum, dSum float64
	for i := range sRe {
		sSum += sRe[i]
		dSum += dRe[i]
	}
	res.TotalRedistImprovementPercent = stats.ImprovementPercent(sSum, dSum)
	pen, err := stats.MeanImprovementPercent(sEx, dEx)
	if err != nil {
		return nil, err
	}
	res.ExecPenaltyPercent = -pen // positive = diffusion slower
	res.MeanScratchHopBytes = stats.Mean(sHB)
	res.MeanDiffusionHopBytes = stats.Mean(dHB)
	res.MeanScratchOverlap = stats.Mean(sOv)
	res.MeanDiffusionOverlap = stats.Mean(dOv)
	return res, nil
}

// Table4Row is one line of Table IV.
type Table4Row struct {
	Configuration      string
	ImprovementPercent float64
}

// Table4 regenerates Table IV: mean redistribution-time improvement of
// tree-based hierarchical diffusion over partition from scratch for the
// synthetic test cases on BG/L 1024, BG/L 256 and fist 256.
func Table4(cases int, seed int64) ([]Table4Row, []*SyntheticResult, error) {
	configs := []struct {
		name string
		mk   func() (Machine, error)
	}{
		{"BG/L 1024 cores", func() (Machine, error) { return BGL(1024) }},
		{"BG/L 256 cores", func() (Machine, error) { return BGL(256) }},
		{"fist 256 cores", func() (Machine, error) { return Fist(256) }},
	}
	var rows []Table4Row
	var results []*SyntheticResult
	for _, c := range configs {
		m, err := c.mk()
		if err != nil {
			return nil, nil, err
		}
		res, err := RunSynthetic(m, cases, seed)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Table4Row{Configuration: c.name, ImprovementPercent: res.RedistImprovementPercent})
		results = append(results, res)
	}
	return rows, results, nil
}
