package experiments

import (
	"testing"

	"nestdiff/internal/scenario"
)

func TestTable1ReproducesPaper(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		id, start, w, h int
	}{
		{1, 0, 13, 8}, {2, 256, 13, 8}, {3, 512, 13, 16}, {4, 13, 19, 13}, {5, 429, 19, 19},
	}
	if len(rows) != len(want) {
		t.Fatalf("%d rows", len(rows))
	}
	for i, w := range want {
		r := rows[i]
		if r.NestID != w.id || r.StartRank != w.start || r.Width != w.w || r.Height != w.h {
			t.Errorf("row %d = %+v, want %+v", i, r, w)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Nest 5 (heaviest) starts at rank 0 with a full-height strip, exactly
	// as in the paper's Table II.
	if rows[1].NestID != 5 || rows[1].StartRank != 0 || rows[1].Width != 13 || rows[1].Height != 32 {
		t.Fatalf("nest 5 row = %+v", rows[1])
	}
}

func TestFig8DiffusionOverlap(t *testing.T) {
	res, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if res.NewTree != "((6:0.31 3:0.27) 5:0.42)" {
		t.Fatalf("diffusion tree = %s", res.NewTree)
	}
	for _, id := range []int{3, 5} {
		if res.OverlapCells[id] == 0 {
			t.Errorf("nest %d: diffusion overlap is zero", id)
		}
		if res.ScratchOverlapCells[id] != 0 {
			t.Errorf("nest %d: scratch overlap %d, paper reports none", id, res.ScratchOverlapCells[id])
		}
	}
}

func TestFig9ClusteringComparison(t *testing.T) {
	res, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshots == 0 {
		t.Fatal("no snapshots analyzed")
	}
	// Aggregate claim: the 1+2-hop method with the mean-deviation guard
	// overlaps far less often than the 2-hop-only baseline.
	if res.OursOverlapsTotal*2 > res.SimpleOverlapsTotal {
		t.Fatalf("ours %d overlaps vs simple %d — no clear advantage",
			res.OursOverlapsTotal, res.SimpleOverlapsTotal)
	}
	// A showcase snapshot reproducing the figure must exist: our clusters
	// disjoint, the baseline's overlapping.
	if res.ShowcaseStep == 0 {
		t.Fatal("no snapshot reproduces Fig. 9 (ours disjoint, simple overlapping)")
	}
	if len(res.ShowcaseOursRects) == 0 || res.ShowcaseSimpleOverlaps == 0 {
		t.Fatalf("showcase malformed: %+v", res)
	}
	t.Logf("fig9: %d snapshots, overlaps ours=%d simple=%d, showcase at step %d",
		res.Snapshots, res.OursOverlapsTotal, res.SimpleOverlapsTotal, res.ShowcaseStep)
}

func TestRunSyntheticBGL1024Shape(t *testing.T) {
	m, err := BGL(1024)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSynthetic(m, 20, 1913)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 20 {
		t.Fatalf("%d cases", len(res.Cases))
	}
	if res.RedistImprovementPercent <= 0 {
		t.Fatalf("diffusion does not improve redistribution: %+v%%", res.RedistImprovementPercent)
	}
	if res.MeanDiffusionHopBytes >= res.MeanScratchHopBytes {
		t.Fatalf("hop-bytes: diffusion %.2f >= scratch %.2f",
			res.MeanDiffusionHopBytes, res.MeanScratchHopBytes)
	}
	if res.MeanDiffusionOverlap <= res.MeanScratchOverlap {
		t.Fatalf("overlap: diffusion %.1f%% <= scratch %.1f%%",
			res.MeanDiffusionOverlap, res.MeanScratchOverlap)
	}
	// §V-D: small execution-time penalty, not a collapse.
	if res.ExecPenaltyPercent > 15 {
		t.Fatalf("execution penalty %.1f%% too large", res.ExecPenaltyPercent)
	}
}

func TestTable4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-machine sweep")
	}
	rows, results, err := Table4(25, 1913)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.ImprovementPercent <= 0 {
			t.Errorf("%s: improvement %.1f%%, want positive", r.Configuration, r.ImprovementPercent)
		}
	}
	// Paper shape: the torus gains more than the switched cluster at equal
	// core count (25% on BG/L 256 vs 10% on fist 256).
	if rows[1].ImprovementPercent <= rows[2].ImprovementPercent {
		t.Errorf("BG/L 256 improvement %.1f%% not above fist 256 %.1f%%",
			rows[1].ImprovementPercent, rows[2].ImprovementPercent)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
}

func TestRunDynamicShape(t *testing.T) {
	m, err := BGL(1024)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDynamic(m, 12, 1913)
	if err != nil {
		t.Fatal(err)
	}
	if res.PickedScratch+res.PickedDiffusion != 12 {
		t.Fatalf("picks %d + %d != 12", res.PickedScratch, res.PickedDiffusion)
	}
	// Paper: dynamic correct in 10/12; demand a clear majority.
	if res.CorrectPicks*3 < 12*2 {
		t.Fatalf("correct picks %d of 12", res.CorrectPicks)
	}
	// Paper: prediction Pearson r ≈ 0.9.
	if res.PearsonR < 0.7 {
		t.Fatalf("Pearson r = %.3f", res.PearsonR)
	}
	// Fig. 12 shape: diffusion has the lowest redistribution total;
	// dynamic's total is competitive with the best pure strategy.
	if res.RedistTotal["diffusion"] >= res.RedistTotal["scratch"] {
		t.Errorf("diffusion redistribution %.3g not below scratch %.3g",
			res.RedistTotal["diffusion"], res.RedistTotal["scratch"])
	}
	bestTotal := res.ExecTotal["diffusion"] + res.RedistTotal["diffusion"]
	if s := res.ExecTotal["scratch"] + res.RedistTotal["scratch"]; s < bestTotal {
		bestTotal = s
	}
	dyn := res.ExecTotal["dynamic"] + res.RedistTotal["dynamic"]
	if dyn > bestTotal*1.10 {
		t.Errorf("dynamic total %.3g more than 10%% above best pure %.3g", dyn, bestTotal)
	}
}

func TestRealTraceSetsDetectsChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("full monsoon simulation")
	}
	mc := scenario.DefaultMonsoonConfig()
	mc.Steps = 150
	m, err := BGL(256)
	if err != nil {
		t.Fatal(err)
	}
	sets, err := RealTraceSets(mc, m.Grid, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != mc.Steps {
		t.Fatalf("%d sets for %d steps", len(sets), mc.Steps)
	}
	maxNests, changes := 0, 0
	for i, s := range sets {
		if len(s) > maxNests {
			maxNests = len(s)
		}
		if i > 0 && setsDiffer(sets[i-1], s) {
			changes++
		}
	}
	if maxNests == 0 {
		t.Fatal("monsoon trace produced no nests")
	}
	if changes == 0 {
		t.Fatal("monsoon trace produced no reconfigurations")
	}
	t.Logf("real trace: %d analysis points, %d reconfigurations, up to %d nests",
		len(sets), changes, maxNests)
}

func TestRunRealTraceImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("full monsoon simulation")
	}
	mc := scenario.DefaultMonsoonConfig()
	mc.Steps = 150
	m, err := BGL(256)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunRealTrace(m, mc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfigurations == 0 {
		t.Fatal("no reconfigurations in real trace")
	}
	if res.RedistImprovementPercent <= 0 {
		t.Fatalf("real trace: diffusion improvement %.1f%%, want positive",
			res.RedistImprovementPercent)
	}
	t.Logf("real trace on %s: %.1f%% redistribution improvement over %d reconfigs (max %d nests)",
		m.Name, res.RedistImprovementPercent, res.Reconfigurations, res.MaxNests)
}

func TestMachines(t *testing.T) {
	m, err := BGL(512)
	if err != nil {
		t.Fatal(err)
	}
	if m.Grid.Size() != 512 || m.Net.Size() != 512 {
		t.Fatal("BGL sizing wrong")
	}
	f, err := Fist(256)
	if err != nil {
		t.Fatal(err)
	}
	if f.Net.Name() != "switched" {
		t.Fatal("fist should be switched")
	}
	if _, _, err := Model(); err != nil {
		t.Fatal(err)
	}
}
