package experiments

import (
	"fmt"

	"nestdiff/internal/geom"
	"nestdiff/internal/pda"
	"nestdiff/internal/scenario"
	"nestdiff/internal/wrfsim"
)

// Fig9Result compares the two clustering policies of Fig. 9 over a series
// of monsoon snapshots: the simple 2-hop-only baseline (a) produces
// spatially overlapping clusters far more often than the 1+2-hop method
// with the 30% mean-deviation guard (b). The paper shows a single
// snapshot; the aggregate makes the comparison robust, and Showcase*
// records one snapshot that reproduces the figure exactly (our clusters
// disjoint, the baseline's overlapping).
type Fig9Result struct {
	Snapshots int
	// Total overlapping cluster pairs across all snapshots.
	OursOverlapsTotal   int
	SimpleOverlapsTotal int

	// Showcase snapshot reproducing the figure.
	ShowcaseStep           int
	ShowcaseOursRects      []geom.Rect
	ShowcaseSimpleRects    []geom.Rect
	ShowcaseSimpleOverlaps int
}

// fig9ModelConfig returns the compact-storm configuration used for the
// clustering study: organized systems with sharp OLR signatures, so that
// subdomain clusters correspond to distinct storms as in the paper's WRF
// snapshot.
func fig9ModelConfig(mc scenario.MonsoonConfig) wrfsim.Config {
	cfg := wrfsim.DefaultConfig()
	cfg.NX, cfg.NY = mc.NX, mc.NY
	cfg.SpawnRate = 0
	cfg.DecayTau = 2400
	cfg.OLRPerQ = 10
	return cfg
}

// Fig9 runs the scripted monsoon scenario, clustering the split-file
// aggregates with both policies at regular snapshots.
func Fig9() (*Fig9Result, error) {
	mc := scenario.DefaultMonsoonConfig()
	mc.Steps = 400
	sched := scenario.MonsoonSchedule(mc)
	m, err := wrfsim.NewModel(fig9ModelConfig(mc))
	if err != nil {
		return nil, err
	}
	opt := pda.DefaultOptions()
	opt.OLRFractionThreshold = 0.05
	pg := geom.NewGrid(18, 15)

	res := &Fig9Result{}
	si := 0
	for step := 0; step < mc.Steps; step++ {
		for si < len(sched) && sched[si].AtStep == step {
			c := sched[si].Cell
			c.Radius *= 0.7 // compact organized systems
			if err := m.InjectCell(c); err != nil {
				return nil, err
			}
			si++
		}
		m.Step()
		if step < 100 || step%10 != 0 {
			continue // let the first systems organize; then sample sparsely
		}
		splits, err := m.Splits(pg)
		if err != nil {
			return nil, err
		}
		var infos []pda.SubdomainInfo
		for _, s := range splits {
			info := pda.AnalyzeSplit(s, opt)
			if info.OLRFraction > 0 {
				infos = append(infos, info)
			}
		}
		if len(infos) == 0 {
			continue
		}
		ours := pda.NNC(infos, opt)
		simple := pda.SimpleNNC(infos, opt)
		oOv := pda.OverlappingPairs(ours)
		sOv := pda.OverlappingPairs(simple)
		res.Snapshots++
		res.OursOverlapsTotal += oOv
		res.SimpleOverlapsTotal += sOv
		if res.ShowcaseStep == 0 && oOv == 0 && sOv > 0 {
			res.ShowcaseStep = step
			res.ShowcaseSimpleOverlaps = sOv
			for _, c := range ours {
				res.ShowcaseOursRects = append(res.ShowcaseOursRects, c.BoundingRect())
			}
			for _, c := range simple {
				res.ShowcaseSimpleRects = append(res.ShowcaseSimpleRects, c.BoundingRect())
			}
		}
	}
	if res.Snapshots == 0 {
		return nil, fmt.Errorf("experiments: monsoon run produced no cloudy snapshots")
	}
	return res, nil
}
