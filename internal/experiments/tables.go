package experiments

import (
	"nestdiff/internal/alloc"
	"nestdiff/internal/geom"
)

// paperWeights are the Fig. 2 execution-time ratios for nests 1–5.
var paperWeights = map[int]float64{1: 0.1, 2: 0.1, 3: 0.2, 4: 0.25, 5: 0.35}

// table2Weights are the Fig. 4 ratios for nests 3, 5, 6.
var table2Weights = map[int]float64{3: 0.27, 5: 0.42, 6: 0.31}

// Table1 regenerates Table I: Huffman processor allocation of 5 nests on
// 1024 cores.
func Table1() ([]alloc.Row, error) {
	a, err := alloc.Scratch(geom.NewGrid(32, 32), paperWeights)
	if err != nil {
		return nil, err
	}
	return a.Table(), nil
}

// Table2 regenerates Table II: partition-from-scratch reallocation for the
// surviving nest set {3, 5, 6}.
func Table2() ([]alloc.Row, error) {
	a, err := alloc.Scratch(geom.NewGrid(32, 32), table2Weights)
	if err != nil {
		return nil, err
	}
	return a.Table(), nil
}

// Fig8Result is the diffusion walk-through of Fig. 8 applied to the
// Fig. 2 starting allocation.
type Fig8Result struct {
	OldTree string
	NewTree string
	OldRows []alloc.Row
	NewRows []alloc.Row
	// OverlapCells counts, per retained nest, the processors shared by the
	// old and new sub-rectangles (the "considerable overlap" of §IV-B).
	OverlapCells map[int]int
	// ScratchOverlapCells is the same for the Table II scratch allocation
	// (zero for both retained nests, per the paper).
	ScratchOverlapCells map[int]int
}

// Fig8 regenerates the tree-based hierarchical diffusion example: deleting
// nests 1, 2, 4; retaining 3, 5 (weights 0.27, 0.42); adding nest 6
// (0.31).
func Fig8() (*Fig8Result, error) {
	g := geom.NewGrid(32, 32)
	old, err := alloc.Scratch(g, paperWeights)
	if err != nil {
		return nil, err
	}
	change := alloc.Change{
		Deleted:  []int{1, 2, 4},
		Retained: map[int]float64{3: 0.27, 5: 0.42},
		Added:    map[int]float64{6: 0.31},
	}
	diff, err := alloc.Diffusion(g, old, change)
	if err != nil {
		return nil, err
	}
	scr, err := alloc.Scratch(g, table2Weights)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{
		OldTree:             old.Tree.String(),
		NewTree:             diff.Tree.String(),
		OldRows:             old.Table(),
		NewRows:             diff.Table(),
		OverlapCells:        map[int]int{},
		ScratchOverlapCells: map[int]int{},
	}
	for _, id := range []int{3, 5} {
		res.OverlapCells[id] = old.Rects[id].Intersect(diff.Rects[id]).Area()
		res.ScratchOverlapCells[id] = old.Rects[id].Intersect(scr.Rects[id]).Area()
	}
	return res, nil
}
