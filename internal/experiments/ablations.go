package experiments

import (
	"fmt"

	"nestdiff/internal/alloc"
	"nestdiff/internal/core"
	"nestdiff/internal/geom"
	"nestdiff/internal/scenario"
	"nestdiff/internal/stats"
	"nestdiff/internal/topology"
)

// This file holds the ablation studies DESIGN.md calls out: they isolate
// the individual design choices behind the paper's numbers.
//
//   - ScalingStudy quantifies §IV-B's scalability argument: "the maximum
//     number of hops between old and new set of processors is likely to
//     increase for the scratch method with larger total processor count".
//   - InsertionPolicyAblation isolates Algorithm 3's closest-sibling-
//     weight insertion (vs. filling the first free slot), the mechanism
//     behind the square-like rectangles of Fig. 6/7.
//   - MappingAblation isolates the folding-based topology-aware mapping
//     (vs. naive row-major placement) on the torus.

// ScalingRow is one machine size in the scaling study.
type ScalingRow struct {
	Cores                    int
	RedistImprovementPercent float64
	ScratchMaxHops           float64 // mean over cases of the longest route
	DiffusionMaxHops         float64
	ScratchHopBytes          float64
	DiffusionHopBytes        float64
}

// ScalingStudy replays the synthetic churn on BG/L partitions of growing
// size and reports how the scratch/diffusion gap evolves.
func ScalingStudy(coreCounts []int, cases int, seed int64) ([]ScalingRow, error) {
	model, oracle, err := Model()
	if err != nil {
		return nil, err
	}
	var rows []ScalingRow
	for _, cores := range coreCounts {
		m, err := BGL(cores)
		if err != nil {
			return nil, err
		}
		cfg := scenario.DefaultSyntheticConfig()
		cfg.Steps = cases
		cfg.Seed = seed
		sets, err := scenario.Generate(cfg)
		if err != nil {
			return nil, err
		}
		trS, err := core.NewTracker(m.Grid, m.Net, model, oracle, core.Scratch, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		trD, err := core.NewTracker(m.Grid, m.Net, model, oracle, core.Diffusion, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		row := ScalingRow{Cores: cores}
		var sRe, dRe []float64
		n := 0
		for i, set := range sets {
			smS, err := trS.Apply(set)
			if err != nil {
				return nil, err
			}
			smD, err := trD.Apply(set)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				continue
			}
			sRe = append(sRe, smS.RedistTime)
			dRe = append(dRe, smD.RedistTime)
			row.ScratchMaxHops += float64(smS.Redist.MaxHops)
			row.DiffusionMaxHops += float64(smD.Redist.MaxHops)
			row.ScratchHopBytes += smS.Redist.AvgHopBytes
			row.DiffusionHopBytes += smD.Redist.AvgHopBytes
			n++
		}
		imp, err := stats.MeanImprovementPercent(sRe, dRe)
		if err != nil {
			return nil, err
		}
		row.RedistImprovementPercent = imp
		row.ScratchMaxHops /= float64(n)
		row.DiffusionMaxHops /= float64(n)
		row.ScratchHopBytes /= float64(n)
		row.DiffusionHopBytes /= float64(n)
		rows = append(rows, row)
	}
	return rows, nil
}

// InsertionAblationResult compares Algorithm 3's closest-weight insertion
// with the naive first-free-slot policy over a churn sequence.
type InsertionAblationResult struct {
	Cases int
	// MeanAspectRatio of the resulting partitions (lower = more square =
	// faster nests, per Fig. 6/7).
	ClosestAspect   float64
	FirstFreeAspect float64
	// MeanExecTime under the oracle.
	ClosestExec   float64
	FirstFreeExec float64
}

// InsertionPolicyAblation replays a churn sequence through two diffusion
// variants differing only in the free-slot insertion policy.
func InsertionPolicyAblation(cores, cases int, seed int64) (*InsertionAblationResult, error) {
	m, err := BGL(cores)
	if err != nil {
		return nil, err
	}
	model, oracle, err := Model()
	if err != nil {
		return nil, err
	}
	cfg := scenario.DefaultSyntheticConfig()
	cfg.Steps = cases
	cfg.Seed = seed
	sets, err := scenario.Generate(cfg)
	if err != nil {
		return nil, err
	}

	run := func(policy alloc.InsertionPolicy) (aspect, exec float64, err error) {
		var cur *alloc.Allocation
		var prev scenario.Set
		n := 0
		for _, set := range sets {
			weights := make(map[int]float64, len(set))
			share := max(1, m.Grid.Size()/max(1, len(set)))
			for _, spec := range set {
				nx, ny := spec.FineSize(3)
				w, err := model.Predict(nx, ny, share)
				if err != nil {
					return 0, 0, err
				}
				weights[spec.ID] = w
			}
			if cur == nil {
				cur, err = alloc.Scratch(m.Grid, weights)
				if err != nil {
					return 0, 0, err
				}
			} else {
				d := scenario.DiffSets(prev, set)
				change := alloc.Change{Deleted: d.Deleted,
					Retained: map[int]float64{}, Added: map[int]float64{}}
				for _, id := range d.Retained {
					change.Retained[id] = weights[id]
				}
				for _, id := range d.Added {
					change.Added[id] = weights[id]
				}
				cur, err = alloc.DiffusionWithPolicy(m.Grid, cur, change, policy)
				if err != nil {
					return 0, 0, err
				}
			}
			prev = set
			aspect += cur.MeanAspectRatio()
			stepExec := 0.0
			for _, spec := range set {
				nx, ny := spec.FineSize(3)
				r := cur.Rects[spec.ID]
				if t := oracle.ExecTime(nx, ny, r.Area(), r.AspectRatio()); t > stepExec {
					stepExec = t
				}
			}
			exec += stepExec
			n++
		}
		return aspect / float64(n), exec / float64(n), nil
	}

	res := &InsertionAblationResult{Cases: cases}
	if res.ClosestAspect, res.ClosestExec, err = run(alloc.ClosestWeight); err != nil {
		return nil, err
	}
	if res.FirstFreeAspect, res.FirstFreeExec, err = run(alloc.FirstFree); err != nil {
		return nil, err
	}
	return res, nil
}

// MappingAblationResult compares the folding-based topology-aware mapping
// with naive row-major placement on the same torus.
type MappingAblationResult struct {
	Cores            int
	FoldedHopBytes   float64 // diffusion strategy, mean avg hop-bytes
	LinearHopBytes   float64
	FoldedRedistTime float64
	LinearRedistTime float64
}

// MappingAblation replays the synthetic churn under the diffusion
// strategy on two torus variants differing only in rank placement.
func MappingAblation(cores, cases int, seed int64) (*MappingAblationResult, error) {
	px, py := geom.NearSquareFactors(cores)
	g := geom.NewGrid(px, py)
	dims := topology.TorusDimsFor(cores)
	folded, err := topology.NewTorus3D(g, dims, topology.DefaultTorusParams())
	if err != nil {
		return nil, err
	}
	linear, err := topology.NewTorus3DLinear(g, dims, topology.DefaultTorusParams())
	if err != nil {
		return nil, err
	}
	model, oracle, err := Model()
	if err != nil {
		return nil, err
	}
	cfg := scenario.DefaultSyntheticConfig()
	cfg.Steps = cases
	cfg.Seed = seed
	sets, err := scenario.Generate(cfg)
	if err != nil {
		return nil, err
	}

	res := &MappingAblationResult{Cores: cores}
	variants := []struct {
		name string
		net  topology.Network
	}{{"folded", folded}, {"linear", linear}}
	for _, v := range variants {
		variant, net := v.name, v.net
		tr, err := core.NewTracker(g, net, model, oracle, core.Diffusion, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		var hb, rt float64
		n := 0
		for i, set := range sets {
			sm, err := tr.Apply(set)
			if err != nil {
				return nil, fmt.Errorf("experiments: mapping %s step %d: %w", variant, i, err)
			}
			if i == 0 {
				continue
			}
			hb += sm.Redist.AvgHopBytes
			rt += sm.RedistTime
			n++
		}
		hb /= float64(n)
		switch variant {
		case "folded":
			res.FoldedHopBytes, res.FoldedRedistTime = hb, rt
		case "linear":
			res.LinearHopBytes, res.LinearRedistTime = hb, rt
		}
	}
	return res, nil
}

// WeightAblationResult compares the paper's model-predicted nest weights
// against naive area-proportional weights. The paper derives allocation
// shares from *predicted execution times* (§IV); plain area ignores the
// per-nest overheads and communication terms the model captures.
type WeightAblationResult struct {
	Cases int
	// Mean per-step execution time (max over simultaneously running
	// nests) under each weighting.
	ModelExec float64
	AreaExec  float64
}

// WeightPolicyAblation replays a churn sequence allocating with both
// weight policies and compares the resulting oracle execution times.
func WeightPolicyAblation(cores, cases int, seed int64) (*WeightAblationResult, error) {
	m, err := BGL(cores)
	if err != nil {
		return nil, err
	}
	model, oracle, err := Model()
	if err != nil {
		return nil, err
	}
	cfg := scenario.DefaultSyntheticConfig()
	cfg.Steps = cases
	cfg.Seed = seed
	sets, err := scenario.Generate(cfg)
	if err != nil {
		return nil, err
	}
	run := func(useModel bool) (float64, error) {
		total := 0.0
		n := 0
		for _, set := range sets {
			weights := make(map[int]float64, len(set))
			share := max(1, m.Grid.Size()/max(1, len(set)))
			for _, spec := range set {
				nx, ny := spec.FineSize(3)
				if useModel {
					w, err := model.Predict(nx, ny, share)
					if err != nil {
						return 0, err
					}
					weights[spec.ID] = w
				} else {
					weights[spec.ID] = float64(nx) * float64(ny)
				}
			}
			a, err := alloc.Scratch(m.Grid, weights)
			if err != nil {
				return 0, err
			}
			stepExec := 0.0
			for _, spec := range set {
				nx, ny := spec.FineSize(3)
				r := a.Rects[spec.ID]
				if t := oracle.ExecTime(nx, ny, r.Area(), r.AspectRatio()); t > stepExec {
					stepExec = t
				}
			}
			total += stepExec
			n++
		}
		return total / float64(n), nil
	}
	res := &WeightAblationResult{Cases: cases}
	if res.ModelExec, err = run(true); err != nil {
		return nil, err
	}
	if res.AreaExec, err = run(false); err != nil {
		return nil, err
	}
	return res, nil
}
