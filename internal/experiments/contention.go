package experiments

import (
	"math"

	"nestdiff/internal/core"
	"nestdiff/internal/scenario"
)

// ContentionRow measures the dynamic strategy at one level of predictor
// miscalibration: the predictor assumes estFactor × the true aggregate
// contention bandwidth (1.0 = perfectly calibrated).
type ContentionRow struct {
	EstimateFactor float64
	CorrectPicks   int
	Total          int
	// ExcessPercent is how much the dynamic strategy's actual total
	// exceeds the per-step best candidate's (0 = oracle decisions).
	ExcessPercent float64
}

// ContentionSweep quantifies the sensitivity of §IV-C's dynamic selection
// to the quality of the redistribution-time prediction. The paper reports
// 10/12 correct with its model; this sweep shows how the decision quality
// degrades as the predictor's contention estimate drifts from reality.
func ContentionSweep(m Machine, reconfigs int, seed int64, factors []float64) ([]ContentionRow, error) {
	model, oracle, err := Model()
	if err != nil {
		return nil, err
	}
	cfg := scenario.DefaultSyntheticConfig()
	cfg.Steps = reconfigs
	cfg.Seed = seed
	sets, err := scenario.Generate(cfg)
	if err != nil {
		return nil, err
	}
	base := core.DefaultOptions()
	var rows []ContentionRow
	for _, f := range factors {
		opts := base
		if math.IsInf(f, 1) {
			opts.PredictedContentionBytesPerSec = 0 // predictor ignores contention
		} else {
			opts.PredictedContentionBytesPerSec = base.ContentionBytesPerSec * f
		}
		tr, err := core.NewTracker(m.Grid, m.Net, model, oracle, core.Dynamic, opts)
		if err != nil {
			return nil, err
		}
		row := ContentionRow{EstimateFactor: f}
		var actual, best float64
		for i, set := range sets {
			sm, err := tr.Apply(set)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				continue
			}
			row.Total++
			if sm.DynamicCorrect {
				row.CorrectPicks++
			}
			actual += sm.ExecTime + sm.RedistTime
			stepBest := math.Inf(1)
			for _, v := range sm.CandidateTotals {
				if v < stepBest {
					stepBest = v
				}
			}
			best += stepBest
		}
		if best > 0 {
			row.ExcessPercent = 100 * (actual - best) / best
		}
		rows = append(rows, row)
	}
	return rows, nil
}
