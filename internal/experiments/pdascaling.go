package experiments

import (
	"fmt"

	"nestdiff/internal/geom"
	"nestdiff/internal/mpi"
	"nestdiff/internal/pda"
	"nestdiff/internal/scenario"
	"nestdiff/internal/topology"
	"nestdiff/internal/wrfsim"
)

// PDAScalingRow compares the two parallel-analysis variants at one
// analysis rank count: the paper's Algorithm 1 (parallel aggregation,
// sequential NNC at the root) versus the parallel-clustering extension
// (local NNC per rank + cluster-level merge at the root), which the paper
// names as future work.
type PDAScalingRow struct {
	Ranks         int
	RootNNCClock  float64 // modelled seconds, Algorithm 1
	ParallelClock float64 // modelled seconds, parallel NNC
	RootNNCNests  int
	ParallelNests int
}

// PDAScaling builds a many-storm snapshot on a fine split-file grid and
// runs both analysis variants across rank counts.
func PDAScaling(rankCounts []int) ([]PDAScalingRow, error) {
	mc := scenario.DefaultMonsoonConfig()
	mc.Steps = 220
	sched := scenario.MonsoonSchedule(mc)
	cfg := fig9ModelConfig(mc)
	m, err := wrfsim.NewModel(cfg)
	if err != nil {
		return nil, err
	}
	si := 0
	for step := 0; step < mc.Steps; step++ {
		for si < len(sched) && sched[si].AtStep == step {
			c := sched[si].Cell
			c.Radius *= 0.7
			if err := m.InjectCell(c); err != nil {
				return nil, err
			}
			si++
		}
		m.Step()
	}
	pg := geom.NewGrid(36, 15) // 540 split files
	splits, err := m.Splits(pg)
	if err != nil {
		return nil, err
	}
	loader := func(rank int) (wrfsim.Split, error) {
		if rank < 0 || rank >= len(splits) {
			return wrfsim.Split{}, fmt.Errorf("no split for rank %d", rank)
		}
		return splits[rank], nil
	}
	opt := pda.DefaultOptions()
	opt.OLRFractionThreshold = 0.05

	var rows []PDAScalingRow
	for _, n := range rankCounts {
		newWorld := func() (*mpi.World, error) {
			net, err := topology.NewSwitched(n, 8, topology.DefaultSwitchedParams())
			if err != nil {
				return nil, err
			}
			return mpi.NewWorld(n, mpi.Config{Net: net})
		}
		w, err := newWorld()
		if err != nil {
			return nil, err
		}
		root, err := pda.RunParallel(w, pg, loader, opt)
		if err != nil {
			return nil, err
		}
		w, err = newWorld()
		if err != nil {
			return nil, err
		}
		par, err := pda.RunParallelNNC(w, pg, loader, opt)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PDAScalingRow{
			Ranks:         n,
			RootNNCClock:  root.RootClock,
			ParallelClock: par.RootClock,
			RootNNCNests:  len(root.Rects),
			ParallelNests: len(par.Rects),
		})
	}
	return rows, nil
}
