// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the simulated substrates: Table I/II allocation
// examples, the Fig. 8 diffusion walk-through, the Fig. 9 clustering
// comparison, the Table IV synthetic redistribution improvements, the
// Fig. 10 hop-bytes and Fig. 11 overlap series, the real-trace runs of
// §V-D, and the dynamic-strategy study of §V-F / Fig. 12. cmd/experiments
// prints these; the root bench harness times them.
package experiments

import (
	"fmt"

	"nestdiff/internal/geom"
	"nestdiff/internal/perfmodel"
	"nestdiff/internal/topology"
)

// Machine is one experimental platform of Table III.
type Machine struct {
	Name  string
	Cores int
	// Grid is the 2D process decomposition (Px·Py = Cores).
	Grid geom.Grid
	// Net models the interconnect.
	Net topology.Network
}

// BGL builds a Blue Gene/L partition of the given size: a 3D torus with
// the folding-based topology-aware mapping of §V-C.
func BGL(cores int) (Machine, error) {
	px, py := geom.NearSquareFactors(cores)
	g := geom.NewGrid(px, py)
	net, err := topology.NewTorus3D(g, topology.TorusDimsFor(cores), topology.DefaultTorusParams())
	if err != nil {
		return Machine{}, fmt.Errorf("experiments: BGL(%d): %w", cores, err)
	}
	return Machine{Name: fmt.Sprintf("BG/L %d cores", cores), Cores: cores, Grid: g, Net: net}, nil
}

// Fist builds the Intel Xeon / Infiniband cluster of Table III: 8-core
// nodes on a switched fabric.
func Fist(cores int) (Machine, error) {
	px, py := geom.NearSquareFactors(cores)
	g := geom.NewGrid(px, py)
	net, err := topology.NewSwitched(cores, 8, topology.DefaultSwitchedParams())
	if err != nil {
		return Machine{}, fmt.Errorf("experiments: fist(%d): %w", cores, err)
	}
	return Machine{Name: fmt.Sprintf("fist %d cores", cores), Cores: cores, Grid: g, Net: net}, nil
}

// sharedModel caches one profiled execution model per process (profiling
// is deterministic, so sharing is safe).
var sharedOracle = perfmodel.DefaultOracle()
var sharedModel *perfmodel.ExecModel

// Model returns the lazily profiled shared execution model.
func Model() (*perfmodel.ExecModel, *perfmodel.Oracle, error) {
	if sharedModel == nil {
		m, err := perfmodel.Profile(sharedOracle, perfmodel.DefaultSampleDomains(), perfmodel.DefaultProcSizes())
		if err != nil {
			return nil, nil, err
		}
		sharedModel = m
	}
	return sharedModel, sharedOracle, nil
}
