package experiments

import (
	"math"
	"testing"

	"nestdiff/internal/geom"
	"nestdiff/internal/topology"
)

func TestScalingStudyShape(t *testing.T) {
	rows, err := ScalingStudy([]int{64, 256, 1024}, 15, 1913)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.RedistImprovementPercent <= 0 {
			t.Errorf("%d cores: improvement %.1f%%", r.Cores, r.RedistImprovementPercent)
		}
		if r.DiffusionHopBytes >= r.ScratchHopBytes {
			t.Errorf("%d cores: diffusion hop-bytes %.2f >= scratch %.2f",
				r.Cores, r.DiffusionHopBytes, r.ScratchHopBytes)
		}
	}
	// §IV-B: the scratch method's routes lengthen with machine size.
	if rows[2].ScratchMaxHops <= rows[0].ScratchMaxHops {
		t.Errorf("scratch max hops did not grow with cores: %.1f (64) vs %.1f (1024)",
			rows[0].ScratchMaxHops, rows[2].ScratchMaxHops)
	}
	// Diffusion's routes stay shorter than scratch's on the big machine.
	if rows[2].DiffusionHopBytes >= rows[2].ScratchHopBytes {
		t.Error("diffusion lost its hop advantage at scale")
	}
}

func TestInsertionPolicyAblation(t *testing.T) {
	res, err := InsertionPolicyAblation(1024, 40, 1913)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's closest-weight insertion exists to keep partitions
	// square-like; the first-free baseline must be measurably worse (or at
	// best equal) on both aspect ratio and execution time.
	if res.ClosestAspect > res.FirstFreeAspect*1.02 {
		t.Errorf("closest-weight aspect %.3f worse than first-free %.3f",
			res.ClosestAspect, res.FirstFreeAspect)
	}
	if res.ClosestExec > res.FirstFreeExec*1.02 {
		t.Errorf("closest-weight exec %.2f worse than first-free %.2f",
			res.ClosestExec, res.FirstFreeExec)
	}
	t.Logf("insertion ablation: aspect %.3f vs %.3f, exec %.2fs vs %.2fs",
		res.ClosestAspect, res.FirstFreeAspect, res.ClosestExec, res.FirstFreeExec)
}

func TestMappingAblation(t *testing.T) {
	res, err := MappingAblation(1024, 25, 1913)
	if err != nil {
		t.Fatal(err)
	}
	// The folding-based mapping is what turns process-grid locality into
	// torus locality: without it, the diffusion strategy's traffic crosses
	// more links.
	if res.FoldedHopBytes >= res.LinearHopBytes {
		t.Errorf("folded mapping hop-bytes %.2f not below linear %.2f",
			res.FoldedHopBytes, res.LinearHopBytes)
	}
	if res.FoldedRedistTime > res.LinearRedistTime*1.02 {
		t.Errorf("folded mapping redistribution %.3f worse than linear %.3f",
			res.FoldedRedistTime, res.LinearRedistTime)
	}
	t.Logf("mapping ablation: hop-bytes %.2f (folded) vs %.2f (linear), redist %.2fs vs %.2fs",
		res.FoldedHopBytes, res.LinearHopBytes, res.FoldedRedistTime, res.LinearRedistTime)
}

func TestPDAScaling(t *testing.T) {
	rows, err := PDAScaling([]int{1, 4, 16, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.RootNNCNests == 0 || r.ParallelNests == 0 {
			t.Fatalf("ranks=%d: no nests detected (%d, %d)", r.Ranks, r.RootNNCNests, r.ParallelNests)
		}
		// Both variants must find a comparable number of systems.
		diff := r.RootNNCNests - r.ParallelNests
		if diff < -2 || diff > 2 {
			t.Errorf("ranks=%d: nest counts diverge: %d vs %d", r.Ranks, r.RootNNCNests, r.ParallelNests)
		}
	}
	// Parallelism must pay: analysis with many ranks beats serial.
	if rows[3].ParallelClock >= rows[0].ParallelClock {
		t.Errorf("parallel NNC does not scale: %.3gs at 60 ranks vs %.3gs at 1",
			rows[3].ParallelClock, rows[0].ParallelClock)
	}
	if rows[3].RootNNCClock >= rows[0].RootNNCClock {
		t.Errorf("algorithm 1 does not scale: %.3gs at 60 ranks vs %.3gs at 1",
			rows[3].RootNNCClock, rows[0].RootNNCClock)
	}
	// The point of the extension: at scale, Algorithm 1 hits its Amdahl
	// floor (the root's sequential NNC) while the parallel variant keeps
	// scaling past it.
	if rows[3].ParallelClock >= rows[3].RootNNCClock {
		t.Errorf("parallel NNC (%.3gs) not below Algorithm 1 (%.3gs) at %d ranks",
			rows[3].ParallelClock, rows[3].RootNNCClock, rows[3].Ranks)
	}
}

func TestContentionSweep(t *testing.T) {
	m, err := BGL(1024)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ContentionSweep(m, 12, 1913, []float64{1.0, 1.5, 3.0, math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// A perfectly calibrated predictor must decide at least as well as a
	// badly miscalibrated one, and never worse than chance.
	if rows[0].CorrectPicks < rows[len(rows)-1].CorrectPicks-2 {
		t.Errorf("calibrated predictor (%d/%d) much worse than contention-blind (%d/%d)",
			rows[0].CorrectPicks, rows[0].Total,
			rows[len(rows)-1].CorrectPicks, rows[len(rows)-1].Total)
	}
	for _, r := range rows {
		if r.Total != 12 {
			t.Fatalf("total = %d", r.Total)
		}
		if r.CorrectPicks*2 < r.Total {
			t.Errorf("factor %.1f: below-chance decisions %d/%d", r.EstimateFactor, r.CorrectPicks, r.Total)
		}
		if r.ExcessPercent < 0 {
			t.Errorf("factor %.1f: negative excess %.2f%%", r.EstimateFactor, r.ExcessPercent)
		}
	}
	t.Logf("contention sweep: %+v", rows)
}

func TestDiffusionAdvantageSurvivesLinkContentionModel(t *testing.T) {
	// The headline result must not be an artifact of the per-pair cost
	// model: replaying the synthetic churn on the DOR link-contention
	// torus must still favour diffusion.
	px, py := geom.NearSquareFactors(1024)
	g := geom.NewGrid(px, py)
	base, err := topology.NewTorus3D(g, topology.TorusDimsFor(1024), topology.DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	dor, err := topology.NewDORTorus(base)
	if err != nil {
		t.Fatal(err)
	}
	m := Machine{Name: "BG/L 1024 (DOR)", Cores: 1024, Grid: g, Net: dor}
	res, err := RunSynthetic(m, 20, 1913)
	if err != nil {
		t.Fatal(err)
	}
	if res.RedistImprovementPercent <= 0 {
		t.Fatalf("diffusion loses under link contention: %.1f%%", res.RedistImprovementPercent)
	}
	t.Logf("DOR contention model: improvement %.1f%% (per-pair model gives ~36%%)", res.RedistImprovementPercent)
}

func TestWeightPolicyAblation(t *testing.T) {
	res, err := WeightPolicyAblation(1024, 30, 1913)
	if err != nil {
		t.Fatal(err)
	}
	// The model-derived weights must never be meaningfully worse than
	// naive area weights (they capture per-nest overheads the area
	// ignores), and typically better.
	if res.ModelExec > res.AreaExec*1.03 {
		t.Fatalf("model weights (%.2fs) worse than area weights (%.2fs)",
			res.ModelExec, res.AreaExec)
	}
	t.Logf("weight ablation: model %.2fs vs area %.2fs per step", res.ModelExec, res.AreaExec)
}
