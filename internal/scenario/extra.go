package scenario

import (
	"math/rand"
	"sort"

	"nestdiff/internal/wrfsim"
)

// CycloneConfig parameterizes the cyclone-track scenario: one intense,
// long-lived system crossing the domain. It exercises the framework's
// nest-follow behaviour — because a WRF nest domain is fixed once spawned,
// a moving system is tracked by a sequence of delete/respawn
// reconfigurations, each redistributing the surviving nests.
type CycloneConfig struct {
	Seed  int64
	Steps int
	// Domain extents in parent grid points.
	NX, NY int
	// Entry and exit fractions of the domain (the track endpoints).
	FromX, FromY float64
	ToX, ToY     float64
}

// DefaultCycloneConfig returns a Bay-of-Bengal-style landfalling track:
// entering at the south-east, curving to the north-west over the run.
func DefaultCycloneConfig() CycloneConfig {
	return CycloneConfig{
		Seed:  1999, // the Odisha super-cyclone year
		Steps: 400,
		NX:    180, NY: 105,
		FromX: 0.85, FromY: 0.35,
		ToX: 0.35, ToY: 0.75,
	}
}

// CycloneSchedule builds the genesis schedule: a core system renewed
// periodically along the track (a cyclone outlives any single convective
// cell) plus rain-band cells flaring around it.
func CycloneSchedule(cfg CycloneConfig) []TimedCell {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []TimedCell
	const renewEvery = 40 // steps between core renewals
	total := float64(cfg.Steps)
	for step := 0; step < cfg.Steps; step += renewEvery {
		f := float64(step) / total
		cx := (cfg.FromX + (cfg.ToX-cfg.FromX)*f) * float64(cfg.NX)
		cy := (cfg.FromY + (cfg.ToY-cfg.FromY)*f) * float64(cfg.NY)
		// Track velocity in cells per second at Dt=120.
		vx := (cfg.ToX - cfg.FromX) * float64(cfg.NX) / (total * 120)
		vy := (cfg.ToY - cfg.FromY) * float64(cfg.NY) / (total * 120)
		out = append(out, TimedCell{
			AtStep: step,
			Cell: wrfsim.Cell{
				X: cx, Y: cy, VX: vx, VY: vy,
				Radius: 6 + rng.Float64()*2,
				Peak:   2.5 + rng.Float64(),
				Life:   (renewEvery + 30) * 120,
			},
		})
		// Rain bands: smaller cells around the core.
		for b := 0; b < 2; b++ {
			out = append(out, TimedCell{
				AtStep: step + 5 + rng.Intn(renewEvery-10),
				Cell: wrfsim.Cell{
					X: cx + (rng.Float64()-0.5)*24, Y: cy + (rng.Float64()-0.5)*16,
					VX: vx, VY: vy,
					Radius: 2.5 + rng.Float64()*2,
					Peak:   0.8 + rng.Float64()*0.6,
					Life:   (10 + rng.Float64()*20) * 120,
				},
			})
		}
	}
	sortSchedule(out)
	return out
}

// sortSchedule orders a genesis schedule by step (stable), the invariant
// every schedule consumer relies on.
func sortSchedule(s []TimedCell) {
	sort.SliceStable(s, func(i, j int) bool { return s[i].AtStep < s[j].AtStep })
}

// BurstConfig parameterizes the convective-burst scenario: long quiet
// phases punctuated by sudden multi-cell outbreaks — the worst case for
// the reallocation machinery, because many nests appear and disappear at
// the same adaptation points.
type BurstConfig struct {
	Seed   int64
	Steps  int
	NX, NY int
	// Bursts is the number of outbreaks; each spawns CellsPerBurst cells
	// at nearly the same step, scattered over the domain.
	Bursts        int
	CellsPerBurst int
}

// DefaultBurstConfig returns four outbreaks of five systems each.
func DefaultBurstConfig() BurstConfig {
	return BurstConfig{
		Seed:  77,
		Steps: 480,
		NX:    180, NY: 105,
		Bursts:        4,
		CellsPerBurst: 5,
	}
}

// BurstSchedule builds the outbreak schedule.
func BurstSchedule(cfg BurstConfig) []TimedCell {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []TimedCell
	for b := 0; b < cfg.Bursts; b++ {
		at := (b*cfg.Steps)/cfg.Bursts + 10
		for c := 0; c < cfg.CellsPerBurst; c++ {
			out = append(out, TimedCell{
				AtStep: at + rng.Intn(5),
				Cell: wrfsim.Cell{
					X:      (0.1 + 0.8*rng.Float64()) * float64(cfg.NX),
					Y:      (0.1 + 0.8*rng.Float64()) * float64(cfg.NY),
					VX:     1.5e-3 * rng.Float64(),
					VY:     4e-4 * (rng.Float64() - 0.5),
					Radius: 3 + rng.Float64()*4,
					Peak:   1.2 + rng.Float64()*1.5,
					Life:   (40 + rng.Float64()*40) * 120,
				},
			})
		}
	}
	sortSchedule(out)
	return out
}
