// Package scenario generates the workloads of the paper's evaluation
// (§V-B): synthetic nest-churn sequences ("up to 70 random nest
// configuration changes, with number of nests varying between 2–9", nest
// sizes between 181×181 and 361×361 fine points) and a scripted
// monsoon-convection schedule calibrated to the real Mumbai-2005 traces
// (4–7 simultaneous systems, ≈100 reconfigurations over the simulated
// period). Everything is seeded and deterministic.
package scenario

import (
	"fmt"
	"math/rand"

	"nestdiff/internal/geom"
)

// NestSpec is one nest in a configuration: its identity and its region of
// interest in parent grid points. The fine-resolution extent is
// NestRatio× the region (3× in the paper).
type NestSpec struct {
	ID     int
	Region geom.Rect
}

// FineSize returns the nest's domain extents at the given refinement
// ratio.
func (n NestSpec) FineSize(ratio int) (nx, ny int) {
	return n.Region.Width() * ratio, n.Region.Height() * ratio
}

// Set is the active nest configuration at one adaptation point.
type Set []NestSpec

// IDs returns the nest IDs in the set, in order.
func (s Set) IDs() []int {
	out := make([]int, len(s))
	for i, n := range s {
		out[i] = n.ID
	}
	return out
}

// ByID returns the spec with the given ID.
func (s Set) ByID(id int) (NestSpec, bool) {
	for _, n := range s {
		if n.ID == id {
			return n, true
		}
	}
	return NestSpec{}, false
}

// Diff classifies the transition between two consecutive sets.
type Diff struct {
	Deleted  []int
	Retained []int
	Added    []int
}

// DiffSets computes which nests were deleted, retained and added between
// two configurations.
func DiffSets(old, nw Set) Diff {
	var d Diff
	newIDs := map[int]bool{}
	for _, n := range nw {
		newIDs[n.ID] = true
	}
	oldIDs := map[int]bool{}
	for _, n := range old {
		oldIDs[n.ID] = true
		if newIDs[n.ID] {
			d.Retained = append(d.Retained, n.ID)
		} else {
			d.Deleted = append(d.Deleted, n.ID)
		}
	}
	for _, n := range nw {
		if !oldIDs[n.ID] {
			d.Added = append(d.Added, n.ID)
		}
	}
	return d
}

// Config parameterizes the synthetic generator.
type Config struct {
	Seed               int64
	Domain             geom.Rect // parent domain in grid points
	Steps              int       // number of configuration *changes* to generate
	MinNests, MaxNests int
	MinSize, MaxSize   int // nest region extent in parent grid points
	// PDelete is the per-nest per-step deletion probability; insertions
	// keep the count within [MinNests, MaxNests].
	PDelete float64
	// Drift is the maximum per-step movement of a retained nest's region,
	// in parent grid points (weather systems move).
	Drift int
}

// DefaultSyntheticConfig reproduces the paper's synthetic test parameters
// on the real-scale Indian domain (60°E–120°E, 5°N–40°N at 12 km ≈
// 555×324 parent points): nests of 181×181–361×361 fine points are regions
// of 61–121 parent points at the 3× ratio.
func DefaultSyntheticConfig() Config {
	return Config{
		Seed:     1913,
		Domain:   geom.NewRect(0, 0, 555, 324),
		Steps:    70,
		MinNests: 2,
		MaxNests: 9,
		MinSize:  61,
		MaxSize:  121,
		PDelete:  0.3,
		Drift:    6,
	}
}

// Generate produces cfg.Steps+1 nest configurations; consecutive pairs are
// the reconfiguration test cases. Every transition retains at least one
// nest (a transition with no retained nests has no redistribution to
// measure). Nest IDs are never reused.
func Generate(cfg Config) ([]Set, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nextID := 1
	newNest := func() NestSpec {
		w := cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize+1)
		h := cfg.MinSize + rng.Intn(cfg.MaxSize-cfg.MinSize+1)
		x := cfg.Domain.X0 + rng.Intn(cfg.Domain.Width()-w+1)
		y := cfg.Domain.Y0 + rng.Intn(cfg.Domain.Height()-h+1)
		n := NestSpec{ID: nextID, Region: geom.NewRect(x, y, w, h)}
		nextID++
		return n
	}

	sets := make([]Set, 0, cfg.Steps+1)
	initial := make(Set, 0, cfg.MaxNests)
	for i := 0; i < cfg.MinNests+rng.Intn(cfg.MaxNests-cfg.MinNests+1); i++ {
		initial = append(initial, newNest())
	}
	sets = append(sets, initial)

	for step := 0; step < cfg.Steps; step++ {
		prev := sets[len(sets)-1]
		next := make(Set, 0, cfg.MaxNests)
		// Retain/delete. Guarantee at least one retained nest.
		forcedKeep := rng.Intn(len(prev))
		for i, n := range prev {
			if i != forcedKeep && rng.Float64() < cfg.PDelete {
				continue // deleted
			}
			next = append(next, driftNest(cfg, rng, n))
		}
		// Insert to stay within bounds, plus occasional extra genesis.
		for len(next) < cfg.MinNests {
			next = append(next, newNest())
		}
		for len(next) < cfg.MaxNests && rng.Float64() < 0.45 {
			next = append(next, newNest())
		}
		sets = append(sets, next)
	}
	return sets, nil
}

// driftNest moves and slightly resizes a retained nest within the domain,
// modelling a weather system drifting between adaptation points.
func driftNest(cfg Config, rng *rand.Rand, n NestSpec) NestSpec {
	if cfg.Drift <= 0 {
		return n
	}
	dx := rng.Intn(2*cfg.Drift+1) - cfg.Drift
	dy := rng.Intn(2*cfg.Drift+1) - cfg.Drift
	r := n.Region
	w, h := r.Width(), r.Height()
	x := clamp(r.X0+dx, cfg.Domain.X0, cfg.Domain.X1-w)
	y := clamp(r.Y0+dy, cfg.Domain.Y0, cfg.Domain.Y1-h)
	n.Region = geom.NewRect(x, y, w, h)
	return n
}

func validate(cfg Config) error {
	switch {
	case cfg.Steps < 1:
		return fmt.Errorf("scenario: need at least 1 step, have %d", cfg.Steps)
	case cfg.MinNests < 1 || cfg.MaxNests < cfg.MinNests:
		return fmt.Errorf("scenario: invalid nest count range [%d, %d]", cfg.MinNests, cfg.MaxNests)
	case cfg.MinSize < 1 || cfg.MaxSize < cfg.MinSize:
		return fmt.Errorf("scenario: invalid size range [%d, %d]", cfg.MinSize, cfg.MaxSize)
	case cfg.Domain.Width() < cfg.MaxSize || cfg.Domain.Height() < cfg.MaxSize:
		return fmt.Errorf("scenario: domain %v cannot host nests of size %d", cfg.Domain, cfg.MaxSize)
	case cfg.PDelete < 0 || cfg.PDelete >= 1:
		return fmt.Errorf("scenario: invalid deletion probability %g", cfg.PDelete)
	}
	return nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
