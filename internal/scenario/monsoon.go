package scenario

import (
	"math/rand"

	"nestdiff/internal/wrfsim"
)

// TimedCell schedules a convective-cell genesis at a simulation step.
type TimedCell struct {
	AtStep int
	Cell   wrfsim.Cell
}

// MonsoonConfig parameterizes the Mumbai-2005-like scripted scenario.
type MonsoonConfig struct {
	Seed  int64
	Steps int // total parent steps to cover
	// Domain extents in parent grid points (the wrfsim model's NX, NY).
	NX, NY int
	// Systems is the target number of simultaneously active organized
	// systems (the real traces had 4–5 on average, up to 7).
	Systems int
}

// DefaultMonsoonConfig matches the surrogate model's default domain and
// the paper's real-run statistics: the July 24–27 2005 period at
// 2-minute analysis cadence gave ≈100 processor reconfigurations with 4–7
// nests; at test scale we compress the schedule while keeping the
// concurrency and churn structure.
func DefaultMonsoonConfig() MonsoonConfig {
	return MonsoonConfig{
		Seed:    2607, // 26 July 2005, the Mumbai deluge date
		Steps:   600,
		NX:      180,
		NY:      105,
		Systems: 5,
	}
}

// MonsoonSchedule builds a deterministic genesis schedule that keeps about
// cfg.Systems organized cloud systems alive at any time, clustered in
// recurring genesis regions (west coast, Bay of Bengal, central belt) the
// way monsoon convection organizes. Inject each TimedCell into the model
// when the simulation reaches its step.
func MonsoonSchedule(cfg MonsoonConfig) []TimedCell {
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Genesis basins as fractions of the domain: (x, y, spread).
	basins := [][3]float64{
		{0.22, 0.55, 0.06}, // west coast / "Mumbai"
		{0.70, 0.45, 0.08}, // Bay of Bengal
		{0.45, 0.30, 0.07}, // central belt
		{0.60, 0.70, 0.08}, // north-east
		{0.30, 0.80, 0.06}, // north-west
	}
	var out []TimedCell
	// Average cell lifetime in steps decides the genesis rate needed to
	// sustain cfg.Systems concurrent systems.
	const meanLifeSteps = 90.0
	perStep := float64(cfg.Systems) / meanLifeSteps
	for step := 0; step < cfg.Steps; step++ {
		expect := perStep
		for expect > 0 {
			if rng.Float64() < expect {
				b := basins[rng.Intn(len(basins))]
				life := (0.6 + 0.8*rng.Float64()) * meanLifeSteps
				out = append(out, TimedCell{
					AtStep: step,
					Cell: wrfsim.Cell{
						X:      (b[0] + b[2]*rng.NormFloat64()) * float64(cfg.NX),
						Y:      (b[1] + b[2]*rng.NormFloat64()) * float64(cfg.NY),
						VX:     1.5e-3 * (0.5 + rng.Float64()),
						VY:     4e-4 * rng.NormFloat64(),
						Radius: 4 + rng.Float64()*6,
						Peak:   1.2 + rng.Float64()*1.8,
						Life:   life * 120, // steps → seconds at Dt = 120
					},
				})
			}
			expect--
		}
	}
	return out
}
