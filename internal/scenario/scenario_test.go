package scenario

import (
	"testing"

	"nestdiff/internal/geom"
	"nestdiff/internal/wrfsim"
)

func TestGenerateDefaultMatchesPaperParameters(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	sets, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != cfg.Steps+1 {
		t.Fatalf("%d sets for %d steps", len(sets), cfg.Steps)
	}
	for i, s := range sets {
		if len(s) < cfg.MinNests || len(s) > cfg.MaxNests {
			t.Fatalf("set %d has %d nests, want [%d, %d]", i, len(s), cfg.MinNests, cfg.MaxNests)
		}
		for _, n := range s {
			r := n.Region
			if !cfg.Domain.ContainsRect(r) {
				t.Fatalf("set %d nest %d region %v escapes domain", i, n.ID, r)
			}
			if r.Width() < cfg.MinSize || r.Width() > cfg.MaxSize ||
				r.Height() < cfg.MinSize || r.Height() > cfg.MaxSize {
				t.Fatalf("set %d nest %d size %v outside [%d, %d]", i, n.ID, r, cfg.MinSize, cfg.MaxSize)
			}
			// Fine sizes must land in the paper's 181–361 range (within a
			// ratio-3 rounding).
			fx, fy := n.FineSize(3)
			if fx < 180 || fx > 363 || fy < 180 || fy > 363 {
				t.Fatalf("fine size %dx%d outside paper range", fx, fy)
			}
		}
	}
}

func TestGenerateEveryTransitionRetainsANest(t *testing.T) {
	sets, err := Generate(DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	churn := 0
	for i := 1; i < len(sets); i++ {
		d := DiffSets(sets[i-1], sets[i])
		if len(d.Retained) == 0 {
			t.Fatalf("transition %d retains no nests", i)
		}
		churn += len(d.Deleted) + len(d.Added)
	}
	if churn == 0 {
		t.Fatal("generator produced no churn at all")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("set %d sizes differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("set %d nest %d differs", i, j)
			}
		}
	}
}

func TestGenerateIDsNeverReused(t *testing.T) {
	sets, err := Generate(DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	lastSeen := map[int]int{} // id → last set index
	firstSeen := map[int]int{}
	for i, s := range sets {
		seen := map[int]bool{}
		for _, n := range s {
			if seen[n.ID] {
				t.Fatalf("set %d repeats ID %d", i, n.ID)
			}
			seen[n.ID] = true
			if _, ok := firstSeen[n.ID]; !ok {
				firstSeen[n.ID] = i
			}
			if last, ok := lastSeen[n.ID]; ok && last != i-1 {
				t.Fatalf("ID %d resurrected at set %d after disappearing at %d", n.ID, i, last)
			}
			lastSeen[n.ID] = i
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := DefaultSyntheticConfig()
	bad.Steps = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero steps accepted")
	}
	bad = DefaultSyntheticConfig()
	bad.MinNests = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero min nests accepted")
	}
	bad = DefaultSyntheticConfig()
	bad.Domain = geom.NewRect(0, 0, 50, 50)
	if _, err := Generate(bad); err == nil {
		t.Error("tiny domain accepted")
	}
	bad = DefaultSyntheticConfig()
	bad.PDelete = 1.0
	if _, err := Generate(bad); err == nil {
		t.Error("certain deletion accepted")
	}
	bad = DefaultSyntheticConfig()
	bad.MaxSize = bad.MinSize - 1
	if _, err := Generate(bad); err == nil {
		t.Error("inverted size range accepted")
	}
}

func TestDiffSets(t *testing.T) {
	old := Set{
		{ID: 1, Region: geom.NewRect(0, 0, 10, 10)},
		{ID: 2, Region: geom.NewRect(20, 0, 10, 10)},
		{ID: 3, Region: geom.NewRect(40, 0, 10, 10)},
	}
	nw := Set{
		{ID: 2, Region: geom.NewRect(22, 2, 10, 10)},
		{ID: 4, Region: geom.NewRect(60, 0, 10, 10)},
	}
	d := DiffSets(old, nw)
	if len(d.Deleted) != 2 || d.Deleted[0] != 1 || d.Deleted[1] != 3 {
		t.Fatalf("deleted = %v", d.Deleted)
	}
	if len(d.Retained) != 1 || d.Retained[0] != 2 {
		t.Fatalf("retained = %v", d.Retained)
	}
	if len(d.Added) != 1 || d.Added[0] != 4 {
		t.Fatalf("added = %v", d.Added)
	}
}

func TestSetHelpers(t *testing.T) {
	s := Set{{ID: 7, Region: geom.NewRect(0, 0, 10, 20)}}
	if ids := s.IDs(); len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("IDs = %v", ids)
	}
	n, ok := s.ByID(7)
	if !ok || n.Region.Height() != 20 {
		t.Fatal("ByID failed")
	}
	if _, ok := s.ByID(9); ok {
		t.Fatal("ByID found missing nest")
	}
	nx, ny := n.FineSize(3)
	if nx != 30 || ny != 60 {
		t.Fatalf("FineSize = %dx%d", nx, ny)
	}
}

func TestMonsoonScheduleShape(t *testing.T) {
	cfg := DefaultMonsoonConfig()
	sched := MonsoonSchedule(cfg)
	if len(sched) == 0 {
		t.Fatal("empty schedule")
	}
	prev := -1
	for _, tc := range sched {
		if tc.AtStep < prev {
			t.Fatal("schedule not sorted by step")
		}
		prev = tc.AtStep
		if tc.AtStep < 0 || tc.AtStep >= cfg.Steps {
			t.Fatalf("genesis at step %d outside [0, %d)", tc.AtStep, cfg.Steps)
		}
		if tc.Cell.Radius <= 0 || tc.Cell.Peak <= 0 || tc.Cell.Life <= 0 {
			t.Fatalf("non-physical scheduled cell: %+v", tc.Cell)
		}
	}
	// Genesis rate sustains roughly cfg.Systems concurrent systems:
	// total ≈ Steps/meanLife · Systems ≈ 600/90·5 ≈ 33.
	if len(sched) < 15 || len(sched) > 80 {
		t.Fatalf("schedule has %d geneses, want a few dozen", len(sched))
	}
}

func TestMonsoonScheduleDeterministic(t *testing.T) {
	a := MonsoonSchedule(DefaultMonsoonConfig())
	b := MonsoonSchedule(DefaultMonsoonConfig())
	if len(a) != len(b) {
		t.Fatal("schedule length varies")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("schedule content varies")
		}
	}
}

func TestMonsoonScheduleDrivesModel(t *testing.T) {
	// The schedule must actually produce detectable storms in the model.
	mc := DefaultMonsoonConfig()
	mc.Steps = 200
	sched := MonsoonSchedule(mc)
	wcfg := wrfsim.DefaultConfig()
	wcfg.NX, wcfg.NY = mc.NX, mc.NY
	wcfg.SpawnRate = 0
	m, err := wrfsim.NewModel(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	si := 0
	lowOLRSeen := false
	for step := 0; step < mc.Steps; step++ {
		for si < len(sched) && sched[si].AtStep == step {
			if err := m.InjectCell(sched[si].Cell); err != nil {
				t.Fatal(err)
			}
			si++
		}
		m.Step()
		if step%25 == 24 {
			for _, v := range m.OLR().Data {
				if v <= 200 {
					lowOLRSeen = true
					break
				}
			}
		}
	}
	if si == 0 {
		t.Fatal("no cells injected")
	}
	if !lowOLRSeen {
		t.Fatal("monsoon schedule produced no organized cloud systems (OLR<=200)")
	}
}

func TestCycloneScheduleTracksAcrossDomain(t *testing.T) {
	cfg := DefaultCycloneConfig()
	sched := CycloneSchedule(cfg)
	if len(sched) == 0 {
		t.Fatal("empty cyclone schedule")
	}
	var first, last *TimedCell
	for i := range sched {
		tc := &sched[i]
		if tc.Cell.Radius <= 0 || tc.Cell.Peak <= 0 || tc.Cell.Life <= 0 {
			t.Fatalf("non-physical cell %+v", tc.Cell)
		}
		if tc.Cell.Radius > 6 { // core renewals only
			if first == nil {
				first = tc
			}
			last = tc
		}
	}
	if first == nil || last == nil || first == last {
		t.Fatal("no core track found")
	}
	// The track must progress from entry toward exit.
	wantDX := (cfg.ToX - cfg.FromX) * float64(cfg.NX)
	gotDX := last.Cell.X - first.Cell.X
	if wantDX*gotDX <= 0 {
		t.Fatalf("core track direction wrong: moved %g, want sign of %g", gotDX, wantDX)
	}
}

func TestCycloneDrivesTrackingChurn(t *testing.T) {
	// The moving system must force nest delete/respawn churn: detect ROIs
	// over the run and count distinct nest identities.
	cfg := DefaultCycloneConfig()
	cfg.Steps = 300
	sched := CycloneSchedule(cfg)
	wcfg := wrfsim.DefaultConfig()
	wcfg.NX, wcfg.NY = cfg.NX, cfg.NY
	wcfg.SpawnRate = 0
	wcfg.DecayTau = 2400
	m, err := wrfsim.NewModel(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	si := 0
	// Track the active core: the location of the QCLOUD maximum follows
	// the cyclone (the total-cloud centroid would not — older cloud
	// advects east with the ambient monsoon flow).
	var cores []float64
	for step := 0; step < cfg.Steps; step++ {
		for si < len(sched) && sched[si].AtStep == step {
			if err := m.InjectCell(sched[si].Cell); err != nil {
				t.Fatal(err)
			}
			si++
		}
		m.Step()
		if step%50 == 49 {
			q := m.QCloud()
			best, bx := -1.0, 0
			for y := 0; y < q.NY; y++ {
				for x := 0; x < q.NX; x++ {
					if v := q.At(x, y); v > best {
						best, bx = v, x
					}
				}
			}
			if best > 0 {
				cores = append(cores, float64(bx))
			}
		}
	}
	if len(cores) < 3 {
		t.Fatal("cyclone produced no cloud")
	}
	if cores[len(cores)-1] >= cores[0]-20 {
		t.Fatalf("cyclone core did not track west: %v", cores)
	}
}

func TestBurstScheduleShape(t *testing.T) {
	cfg := DefaultBurstConfig()
	sched := BurstSchedule(cfg)
	if len(sched) != cfg.Bursts*cfg.CellsPerBurst {
		t.Fatalf("schedule has %d cells, want %d", len(sched), cfg.Bursts*cfg.CellsPerBurst)
	}
	// Cells cluster at the burst steps: the gap between consecutive
	// geneses within a burst is small, across bursts large.
	for b := 0; b < cfg.Bursts; b++ {
		start := (b * cfg.Steps) / cfg.Bursts
		for c := 0; c < cfg.CellsPerBurst; c++ {
			at := sched[b*cfg.CellsPerBurst+c].AtStep
			if at < start || at > start+20 {
				t.Fatalf("burst %d cell at step %d outside window [%d, %d]", b, at, start, start+20)
			}
		}
	}
}
