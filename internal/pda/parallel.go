package pda

import (
	"fmt"
	"sync"

	"nestdiff/internal/geom"
	"nestdiff/internal/mpi"
	"nestdiff/internal/wrfsim"
)

// gatherScratch recycles the per-rank gather arenas across analysis
// rounds; every row handed out is decoded before the rank closure
// returns, so a pooled arena never outlives its call.
var gatherScratch = sync.Pool{New: func() any { return new(mpi.Scratch) }}

// infoWords is the wire size of one SubdomainInfo in the root gather:
// rank, bounds (x0, y0, w, h), qcloud, olrfraction.
const infoWords = 7

func encodeInfo(info SubdomainInfo) []float64 {
	return []float64{
		float64(info.Rank),
		float64(info.Bounds.X0), float64(info.Bounds.Y0),
		float64(info.Bounds.Width()), float64(info.Bounds.Height()),
		info.QCloud, info.OLRFraction,
	}
}

func decodeInfos(buf []float64, px int) ([]SubdomainInfo, error) {
	if len(buf)%infoWords != 0 {
		return nil, fmt.Errorf("pda: gathered buffer of %d words is not a multiple of %d", len(buf), infoWords)
	}
	out := make([]SubdomainInfo, 0, len(buf)/infoWords)
	for i := 0; i < len(buf); i += infoWords {
		rank := int(buf[i])
		out = append(out, SubdomainInfo{
			Rank:        rank,
			Pos:         geom.Point{X: rank % px, Y: rank / px},
			Bounds:      geom.NewRect(int(buf[i+1]), int(buf[i+2]), int(buf[i+3]), int(buf[i+4])),
			QCloud:      buf[i+5],
			OLRFraction: buf[i+6],
		})
	}
	return out, nil
}

// Result is the output of a parallel analysis, available at the root rank.
type Result struct {
	Rects    []geom.Rect
	Clusters []Cluster
	// RootClock is the root's virtual time when the analysis finished,
	// counted from the start of the analysis.
	RootClock float64
}

// perPointCost is the modelled seconds to read and aggregate one grid
// point of a split file (line 5–8 of Algorithm 1), charged to the
// analysis rank's virtual clock.
const perPointCost = 4e-9

// perPairCost is the modelled seconds per element pair examined by the
// O(k²) nearest-neighbour clustering, charged wherever clustering runs
// (the root in Algorithm 1; every rank plus the root merge in the
// parallel-NNC variant).
const perPairCost = 2e-8

// RunParallel executes Algorithm 1 on the analysis world w (its size is N,
// the number of analysis processes): the P split files of the WRF process
// grid wrfGrid are divided into N rectangular subsets, each rank loads and
// aggregates its subset via loader, the aggregates are gathered at world
// rank 0, and the root sorts, clusters (Algorithm 2) and forms nest
// rectangles. The returned Result is the root's; it is nil only on error.
//
// P must be divisible into rectangles over the N ranks in the sense of a
// block distribution (any N ≤ P works; uneven blocks are allowed).
func RunParallel(w *mpi.World, wrfGrid geom.Grid, loader func(rank int) (wrfsim.Split, error), opt Options) (*Result, error) {
	n := w.Size()
	if n > wrfGrid.Size() {
		return nil, fmt.Errorf("pda: %d analysis ranks for %d split files", n, wrfGrid.Size())
	}
	all, err := w.All()
	if err != nil {
		return nil, err
	}
	// Divide the Px×Py file grid into N rectangular subsets (Algorithm 1
	// lines 1–2): block-distribute file positions over a near-square
	// analysis grid.
	ax, ay := geom.NearSquareFactors(n)
	fileDist := geom.NewBlockDist(wrfGrid.Px, wrfGrid.Py, geom.NewRect(0, 0, ax, ay))

	var result *Result
	runErr := w.Run(func(r *mpi.Rank) {
		me := geom.Point{X: r.ID() % ax, Y: r.ID() / ax}
		myFiles := fileDist.BlockOf(me)

		var payload []float64
		points := 0
		myFiles.Cells(func(p geom.Point) {
			split, err := loader(wrfGrid.Rank(p))
			if err != nil {
				panic(fmt.Sprintf("load split %d: %v", wrfGrid.Rank(p), err))
			}
			points += split.Bounds.Area()
			info := AnalyzeSplit(split, opt)
			if info.OLRFraction > 0 { // files with no OLR≤200 region send nothing
				payload = append(payload, encodeInfo(info)...)
			}
		})
		r.Compute(float64(points) * perPointCost)

		// The root's gather rows come from a pooled rank-local scratch
		// arena, not per-row heap copies; they are decoded before the
		// closure returns, so the arena's lifetime trivially covers theirs.
		s := gatherScratch.Get().(*mpi.Scratch)
		s.Reset()
		defer gatherScratch.Put(s)
		gathered := all.GathervInto(r, 0, payload, s)
		if r.ID() != 0 {
			return
		}
		var infos []SubdomainInfo
		for _, buf := range gathered {
			decoded, err := decodeInfos(buf, wrfGrid.Px)
			if err != nil {
				panic(err.Error())
			}
			infos = append(infos, decoded...)
		}
		clusters := NNC(infos, opt)
		// The sequential clustering runs entirely on the root — the
		// bottleneck the parallel-NNC variant removes.
		r.Compute(float64(len(infos)*len(infos)) * perPairCost)
		rects := make([]geom.Rect, len(clusters))
		for i, c := range clusters {
			rects[i] = c.BoundingRect()
		}
		result = &Result{Rects: rects, Clusters: clusters, RootClock: r.Clock()}
	})
	if runErr != nil {
		return nil, runErr
	}
	return result, nil
}
