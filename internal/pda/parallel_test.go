package pda

import (
	"fmt"
	"testing"

	"nestdiff/internal/geom"
	"nestdiff/internal/mpi"
	"nestdiff/internal/topology"
	"nestdiff/internal/wrfsim"
)

// memLoader serves splits from memory by WRF rank.
func memLoader(splits []wrfsim.Split) func(rank int) (wrfsim.Split, error) {
	return func(rank int) (wrfsim.Split, error) {
		if rank < 0 || rank >= len(splits) {
			return wrfsim.Split{}, fmt.Errorf("no split for rank %d", rank)
		}
		return splits[rank], nil
	}
}

func analysisWorld(t testing.TB, n int) *mpi.World {
	t.Helper()
	net, err := topology.NewSwitched(n, 8, topology.DefaultSwitchedParams())
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(n, mpi.Config{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunParallelMatchesSerial(t *testing.T) {
	// The parallel pipeline must produce exactly the serial pipeline's
	// rectangles regardless of the number of analysis ranks.
	m := stormModel(t)
	pg := geom.NewGrid(8, 6)
	splits := stormSplits(t, m, pg)
	opt := DefaultOptions()
	wantRects, wantClusters, err := Analyze(splits, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantClusters) == 0 {
		t.Fatal("serial analysis found nothing; test is vacuous")
	}
	for _, n := range []int{1, 2, 4, 6, 12, 48} {
		w := analysisWorld(t, n)
		res, err := RunParallel(w, pg, memLoader(splits), opt)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if res == nil {
			t.Fatalf("N=%d: nil result", n)
		}
		if len(res.Rects) != len(wantRects) {
			t.Fatalf("N=%d: %d rects, serial found %d", n, len(res.Rects), len(wantRects))
		}
		got := map[geom.Rect]bool{}
		for _, r := range res.Rects {
			got[r] = true
		}
		for _, r := range wantRects {
			if !got[r] {
				t.Fatalf("N=%d: rect %v missing (got %v)", n, r, res.Rects)
			}
		}
	}
}

func TestRunParallelChargesTime(t *testing.T) {
	m := stormModel(t)
	pg := geom.NewGrid(8, 6)
	splits := stormSplits(t, m, pg)
	w := analysisWorld(t, 4)
	res, err := RunParallel(w, pg, memLoader(splits), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.RootClock <= 0 {
		t.Fatalf("root clock %g, want > 0 (compute + gather time)", res.RootClock)
	}
}

func TestRunParallelScalesDown(t *testing.T) {
	// More analysis ranks must not increase the modelled analysis time
	// dramatically; with more ranks each reads fewer points, so the
	// pre-gather compute shrinks. (Exact speedup depends on the gather.)
	m := stormModel(t)
	pg := geom.NewGrid(12, 9)
	splits := stormSplits(t, m, pg)
	t1res, err := RunParallel(analysisWorld(t, 1), pg, memLoader(splits), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t12res, err := RunParallel(analysisWorld(t, 12), pg, memLoader(splits), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if t12res.RootClock >= t1res.RootClock {
		t.Fatalf("12-rank analysis (%.3gs) not faster than serial (%.3gs)",
			t12res.RootClock, t1res.RootClock)
	}
}

func TestRunParallelTooManyRanks(t *testing.T) {
	w := analysisWorld(t, 64)
	if _, err := RunParallel(w, geom.NewGrid(4, 3), nil, DefaultOptions()); err == nil {
		t.Fatal("more ranks than files accepted")
	}
}

func TestRunParallelLoaderErrorPropagates(t *testing.T) {
	w := analysisWorld(t, 4)
	loader := func(rank int) (wrfsim.Split, error) {
		return wrfsim.Split{}, fmt.Errorf("disk on fire")
	}
	if _, err := RunParallel(w, geom.NewGrid(4, 3), loader, DefaultOptions()); err == nil {
		t.Fatal("loader error swallowed")
	}
}

func TestRunParallelFromFiles(t *testing.T) {
	// End-to-end through the on-disk split-file path.
	dir := t.TempDir()
	m := stormModel(t)
	pg := geom.NewGrid(8, 6)
	if err := m.WriteSplitFiles(dir, pg); err != nil {
		t.Fatal(err)
	}
	loader := func(rank int) (wrfsim.Split, error) {
		return wrfsim.ReadSplitFile(fmt.Sprintf("%s/%s", dir, wrfsim.SplitFileName(m.StepCount(), rank)))
	}
	w := analysisWorld(t, 6)
	res, err := RunParallel(w, pg, loader, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rects) != 2 {
		t.Fatalf("file-based analysis found %d nests, want 2", len(res.Rects))
	}
}
