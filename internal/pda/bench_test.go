package pda

import (
	"fmt"
	"math/rand"
	"testing"

	"nestdiff/internal/geom"
)

func randomInfos(rng *rand.Rand, n, px int) []SubdomainInfo {
	infos := make([]SubdomainInfo, n)
	for i := range infos {
		p := geom.Point{X: rng.Intn(px), Y: rng.Intn(px)}
		infos[i] = SubdomainInfo{
			Rank:        p.Y*px + p.X,
			Pos:         p,
			Bounds:      geom.NewRect(p.X*10, p.Y*10, 10, 10),
			QCloud:      rng.Float64() * 100,
			OLRFraction: 0.5,
		}
	}
	return infos
}

func BenchmarkNNC(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		b.Run(fmt.Sprintf("infos=%d", n), func(b *testing.B) {
			infos := randomInfos(rand.New(rand.NewSource(int64(n))), n, 40)
			opt := DefaultOptions()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				NNC(infos, opt)
			}
		})
	}
}

func BenchmarkAnalyzeSplit(b *testing.B) {
	m := stormModel(b)
	splits, err := m.Splits(geom.NewGrid(8, 6))
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AnalyzeSplit(splits[i%len(splits)], opt)
	}
}

func BenchmarkRunParallel(b *testing.B) {
	m := stormModel(b)
	pg := geom.NewGrid(8, 6)
	splits, err := m.Splits(pg)
	if err != nil {
		b.Fatal(err)
	}
	loader := memLoader(splits)
	opt := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := analysisWorld(b, 6)
		if _, err := RunParallel(w, pg, loader, opt); err != nil {
			b.Fatal(err)
		}
	}
}
