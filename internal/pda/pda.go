// Package pda implements the paper's parallel data analysis: Algorithm 1
// (per-split aggregation of QCLOUD where OLR ≤ 200, gathered at a root)
// and Algorithm 2 (the nearest-neighbour clustering variant with 1-hop
// then 2-hop passes and a 30% mean-deviation guard), producing the
// bounding rectangles that become nested-simulation regions of interest.
//
// A "hop" is the Chebyshev distance between subdomain positions in the
// WRF process grid — two subdomains are 1 hop apart when their split-file
// blocks touch (including diagonally). The simple baseline of Fig. 9(a)
// (2-hop criterion only, no mean-deviation guard) is also provided.
package pda

import (
	"fmt"
	"sort"

	"nestdiff/internal/geom"
	"nestdiff/internal/wrfsim"
)

// Options are the detection thresholds of Algorithms 1 and 2.
type Options struct {
	// OLRThreshold is the upper OLR bound for organized cloud systems;
	// the paper uses 200 W/m² after Gu & Zhang [10].
	OLRThreshold float64
	// QCloudThreshold is the minimum aggregate QCLOUD for a subdomain to
	// enter clustering (Algorithm 2 line 3). The paper uses 0.005 in WRF's
	// kg/kg units; the default here is calibrated to the surrogate model's
	// units (same role, different scale).
	QCloudThreshold float64
	// OLRFractionThreshold is the minimum fraction of a subdomain under
	// the OLR threshold (0.005 in the paper).
	OLRFractionThreshold float64
	// MeanDeviation is the maximum relative change of a cluster's mean
	// QCLOUD when adding an element (0.30 in the paper), controlling
	// cluster growth.
	MeanDeviation float64
	// QCloudOnly disables the OLR criteria entirely: QCLOUD is aggregated
	// over every grid point and the OLR-fraction filter is bypassed. This
	// is the baseline §III argues against — "a combination of OLR and
	// QCLOUD better identifies such systems and precludes identification
	// of isolated cumulonimbus (as QCLOUD alone would do)".
	QCloudOnly bool
}

// DefaultOptions returns the paper's thresholds, with QCloudThreshold
// rescaled to the surrogate model's units.
func DefaultOptions() Options {
	return Options{
		OLRThreshold:         200,
		QCloudThreshold:      1.0,
		OLRFractionThreshold: 0.005,
		MeanDeviation:        0.30,
	}
}

// SubdomainInfo is one element of the qcloudinfo list: the aggregate
// cloud-cover information of one split file's subdomain.
type SubdomainInfo struct {
	Rank        int
	Pos         geom.Point // position in the Px×Py WRF process grid
	Bounds      geom.Rect  // subdomain extent in parent grid points
	QCloud      float64    // Σ QCLOUD over grid points with OLR ≤ threshold
	OLRFraction float64    // fraction of grid points with OLR ≤ threshold
}

// AnalyzeSplit performs lines 4–9 of Algorithm 1 on one split file:
// aggregate QCLOUD where OLR ≤ 200 and compute the OLR fraction.
func AnalyzeSplit(s wrfsim.Split, opt Options) SubdomainInfo {
	info := SubdomainInfo{
		Rank:   s.Rank,
		Pos:    geom.Point{X: s.Rank % s.Px, Y: s.Rank / s.Px},
		Bounds: s.Bounds,
	}
	if opt.QCloudOnly {
		for _, q := range s.QCloud.Data {
			info.QCloud += q
		}
		info.OLRFraction = 1 // bypass the fraction filter
		return info
	}
	count := 0
	for i, olr := range s.OLR.Data {
		if olr <= opt.OLRThreshold {
			info.QCloud += s.QCloud.Data[i]
			count++
		}
	}
	area := s.Bounds.Area()
	if area > 0 {
		info.OLRFraction = float64(count) / float64(area)
	}
	return info
}

// Cluster is a contiguous region of strong cloud cover: a set of
// subdomains grouped by Algorithm 2.
type Cluster []SubdomainInfo

// MeanQCloud returns the mean aggregate QCLOUD over the cluster members.
func (c Cluster) MeanQCloud() float64 {
	if len(c) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range c {
		sum += e.QCloud
	}
	return sum / float64(len(c))
}

// BoundingRect returns the cluster's bounding rectangle in parent grid
// points (Algorithm 1 lines 16–19) — the nest region of interest.
func (c Cluster) BoundingRect() geom.Rect {
	var r geom.Rect
	for _, e := range c {
		r = r.Union(e.Bounds)
	}
	return r
}

// hopDistance is the Chebyshev distance between two subdomain positions.
func hopDistance(a, b geom.Point) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	if dx > dy {
		return dx
	}
	return dy
}

// distanceOK is the DISTANCE function of Algorithm 2: the element must be
// exactly hop away from the member, and adding it must not deviate the
// cluster's mean QCLOUD by more than the configured fraction.
func distanceOK(element, member SubdomainInfo, cluster Cluster, hop int, opt Options) bool {
	if hopDistance(element.Pos, member.Pos) != hop {
		return false
	}
	oldMean := cluster.MeanQCloud()
	newMean := (oldMean*float64(len(cluster)) + element.QCloud) / float64(len(cluster)+1)
	if oldMean == 0 {
		return true
	}
	dev := (newMean - oldMean) / oldMean
	if dev < 0 {
		dev = -dev
	}
	return dev <= opt.MeanDeviation
}

// sortByQCloud returns infos sorted by decreasing aggregate QCLOUD
// (Algorithm 1 line 13), with rank as a deterministic tie-break.
func sortByQCloud(infos []SubdomainInfo) []SubdomainInfo {
	out := append([]SubdomainInfo(nil), infos...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].QCloud != out[j].QCloud {
			return out[i].QCloud > out[j].QCloud
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// NNC is Algorithm 2: elements (processed in decreasing QCLOUD order) join
// the first cluster containing a member at 1 hop; failing that, at 2
// hops; failing that, they found a new cluster. Sub-threshold elements are
// dropped.
func NNC(infos []SubdomainInfo, opt Options) []Cluster {
	var clusters []Cluster
	for _, element := range sortByQCloud(infos) {
		if element.QCloud < opt.QCloudThreshold || element.OLRFraction < opt.OLRFractionThreshold {
			continue
		}
		if idx := findCluster(clusters, element, opt); idx >= 0 {
			clusters[idx] = append(clusters[idx], element)
			continue
		}
		clusters = append(clusters, Cluster{element})
	}
	return clusters
}

// findCluster scans all clusters for a 1-hop member first, then — only if
// no 1-hop match exists anywhere — for a 2-hop member (§V-A: "we check
// for 2 hop distance only if the list element is not within 1 hop from an
// existing cluster"). This keeps clusters disjoint in space.
func findCluster(clusters []Cluster, element SubdomainInfo, opt Options) int {
	for _, hop := range []int{1, 2} {
		for i, cluster := range clusters {
			for _, member := range cluster {
				if distanceOK(element, member, cluster, hop, opt) {
					return i
				}
			}
		}
	}
	return -1
}

// SimpleNNC is the baseline of Fig. 9(a): a single pass that joins the
// first cluster with any member within 2 hops, with no mean-deviation
// guard. Its clusters can overlap in space.
func SimpleNNC(infos []SubdomainInfo, opt Options) []Cluster {
	var clusters []Cluster
	for _, element := range sortByQCloud(infos) {
		if element.QCloud < opt.QCloudThreshold || element.OLRFraction < opt.OLRFractionThreshold {
			continue
		}
		joined := false
		for i, cluster := range clusters {
			for _, member := range cluster {
				if hopDistance(element.Pos, member.Pos) <= 2 {
					clusters[i] = append(clusters[i], element)
					joined = true
					break
				}
			}
			if joined {
				break
			}
		}
		if !joined {
			clusters = append(clusters, Cluster{element})
		}
	}
	return clusters
}

// OverlappingPairs counts pairs of clusters whose bounding rectangles
// overlap — the defect of the simple baseline that Fig. 9 illustrates.
func OverlappingPairs(clusters []Cluster) int {
	n := 0
	for i := range clusters {
		for j := i + 1; j < len(clusters); j++ {
			if clusters[i].BoundingRect().Overlaps(clusters[j].BoundingRect()) {
				n++
			}
		}
	}
	return n
}

// Analyze runs the full serial pipeline of Algorithm 1 over a set of
// splits: per-split aggregation, sort, NNC, bounding rectangles. It
// returns the nest regions of interest and the clusters behind them.
func Analyze(splits []wrfsim.Split, opt Options) ([]geom.Rect, []Cluster, error) {
	if len(splits) == 0 {
		return nil, nil, fmt.Errorf("pda: no splits to analyze")
	}
	infos := make([]SubdomainInfo, 0, len(splits))
	for _, s := range splits {
		info := AnalyzeSplit(s, opt)
		if info.OLRFraction > 0 { // files without any OLR≤200 region send nothing
			infos = append(infos, info)
		}
	}
	clusters := NNC(infos, opt)
	rects := make([]geom.Rect, len(clusters))
	for i, c := range clusters {
		rects[i] = c.BoundingRect()
	}
	return rects, clusters, nil
}
