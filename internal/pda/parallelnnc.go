package pda

import (
	"fmt"
	"sort"

	"nestdiff/internal/geom"
	"nestdiff/internal/mpi"
	"nestdiff/internal/wrfsim"
)

// This file implements the parallel nearest-neighbour clustering that the
// paper leaves as future work ("we would like to parallelize the NNC
// algorithm in future for simulations on larger number of processors",
// §III). The approach is local-cluster-then-merge:
//
//  1. each analysis rank clusters the subdomains of its own file block
//     with the sequential NNC (Algorithm 2);
//  2. the root gathers whole clusters instead of raw subdomain infos;
//  3. the root runs Algorithm 2 once more at *cluster* granularity
//     (strongest first, 1-hop before 2-hop, mean-deviation guard on the
//     joining cluster's peak), which both heals the storms the partition
//     cut apart and re-attaches fringe clusters exactly where the
//     sequential pass would have put their members.
//
// On well-separated storm systems the result equals the sequential
// algorithm's output; on adversarial boundary patterns the partitions may
// differ (cluster formation order differs), but the invariants — members
// are above threshold, each subdomain belongs to at most one cluster —
// always hold.

// peakOf returns the strongest member of a cluster.
func peakOf(c Cluster) SubdomainInfo {
	peak := c[0]
	for _, e := range c[1:] {
		if e.QCloud > peak.QCloud {
			peak = e
		}
	}
	return peak
}

// acceptsCluster reports whether dst would accept the cluster src under
// Algorithm 2's rule applied at cluster granularity: src's peak member
// lies within maxHop of a dst member and adding it would not deviate
// dst's mean beyond the guard.
func acceptsCluster(dst, src Cluster, maxHop int, opt Options) bool {
	if len(dst) == 0 || len(src) == 0 {
		return false
	}
	peak := peakOf(src)
	near := false
	for _, e := range dst {
		if hopDistance(e.Pos, peak.Pos) <= maxHop {
			near = true
			break
		}
	}
	if !near {
		return false
	}
	mean := dst.MeanQCloud()
	if mean == 0 {
		return true
	}
	newMean := (mean*float64(len(dst)) + peak.QCloud) / float64(len(dst)+1)
	dev := (newMean - mean) / mean
	if dev < 0 {
		dev = -dev
	}
	return dev <= opt.MeanDeviation
}

// MergeClusters combines clusters produced independently by different
// analysis ranks, re-running Algorithm 2's clustering logic at cluster
// granularity: clusters are processed in decreasing mean-QCLOUD order
// (ties by first member rank); each joins the first already-accepted
// cluster that accepts its peak at 1 hop, then at 2 hops — mirroring the
// 1-hop-before-2-hop preference of the sequential algorithm — and
// otherwise stands alone. On storm systems that the file-block partition
// cut apart, this reproduces the sequential NNC's output; only
// adversarial boundary patterns can differ (formation order differs).
func MergeClusters(clusters []Cluster, opt Options) []Cluster {
	sorted := append([]Cluster(nil), clusters...)
	sort.SliceStable(sorted, func(i, j int) bool {
		mi, mj := sorted[i].MeanQCloud(), sorted[j].MeanQCloud()
		if mi != mj {
			return mi > mj
		}
		return sorted[i][0].Rank < sorted[j][0].Rank
	})
	var out []Cluster
	for _, c := range sorted {
		idx := -1
	search:
		for _, maxHop := range []int{1, 2} {
			for i := range out {
				if acceptsCluster(out[i], c, maxHop, opt) {
					idx = i
					break search
				}
			}
		}
		if idx >= 0 {
			out[idx] = append(out[idx], c...)
		} else {
			out = append(out, c)
		}
	}
	return out
}

// encodeClusters flattens clusters for the root gather: for each cluster
// its member count followed by the members.
func encodeClusters(clusters []Cluster) []float64 {
	var out []float64
	for _, c := range clusters {
		out = append(out, float64(len(c)))
		for _, info := range c {
			out = append(out, encodeInfo(info)...)
		}
	}
	return out
}

func decodeClusters(buf []float64, px int) ([]Cluster, error) {
	var out []Cluster
	i := 0
	for i < len(buf) {
		n := int(buf[i])
		i++
		if n <= 0 || i+n*infoWords > len(buf) {
			return nil, fmt.Errorf("pda: corrupt cluster encoding at word %d", i-1)
		}
		members, err := decodeInfos(buf[i:i+n*infoWords], px)
		if err != nil {
			return nil, err
		}
		out = append(out, Cluster(members))
		i += n * infoWords
	}
	return out, nil
}

// RunParallelNNC is the fully parallel analysis pipeline: like
// RunParallel, but each rank also clusters its own subdomains locally, so
// the root merges pre-formed clusters instead of clustering raw
// aggregates — removing the sequential clustering bottleneck for large
// rank counts. The Result is the root's.
func RunParallelNNC(w *mpi.World, wrfGrid geom.Grid, loader func(rank int) (wrfsim.Split, error), opt Options) (*Result, error) {
	n := w.Size()
	if n > wrfGrid.Size() {
		return nil, fmt.Errorf("pda: %d analysis ranks for %d split files", n, wrfGrid.Size())
	}
	all, err := w.All()
	if err != nil {
		return nil, err
	}
	ax, ay := geom.NearSquareFactors(n)
	fileDist := geom.NewBlockDist(wrfGrid.Px, wrfGrid.Py, geom.NewRect(0, 0, ax, ay))

	var result *Result
	runErr := w.Run(func(r *mpi.Rank) {
		me := geom.Point{X: r.ID() % ax, Y: r.ID() / ax}
		myFiles := fileDist.BlockOf(me)

		var infos []SubdomainInfo
		points := 0
		myFiles.Cells(func(p geom.Point) {
			split, err := loader(wrfGrid.Rank(p))
			if err != nil {
				panic(fmt.Sprintf("load split %d: %v", wrfGrid.Rank(p), err))
			}
			points += split.Bounds.Area()
			info := AnalyzeSplit(split, opt)
			if info.OLRFraction > 0 {
				infos = append(infos, info)
			}
		})
		local := NNC(infos, opt)
		// Local clustering is O(k²) in the rank's own subdomains; charge
		// it alongside the read.
		r.Compute(float64(points)*perPointCost + float64(len(infos)*len(infos))*perPairCost)

		// The root's gather rows come from a pooled rank-local scratch
		// arena, not per-row heap copies; they are decoded before the
		// closure returns, so the arena's lifetime trivially covers theirs.
		s := gatherScratch.Get().(*mpi.Scratch)
		s.Reset()
		defer gatherScratch.Put(s)
		gathered := all.GathervInto(r, 0, encodeClusters(local), s)
		if r.ID() != 0 {
			return
		}
		var clusters []Cluster
		for _, buf := range gathered {
			decoded, err := decodeClusters(buf, wrfGrid.Px)
			if err != nil {
				panic(err.Error())
			}
			clusters = append(clusters, decoded...)
		}
		clusters = MergeClusters(clusters, opt)
		// The root's merge is quadratic in *clusters*, not subdomains.
		r.Compute(float64(len(clusters)*len(clusters)) * perPairCost)
		rects := make([]geom.Rect, len(clusters))
		for i, c := range clusters {
			rects[i] = c.BoundingRect()
		}
		result = &Result{Rects: rects, Clusters: clusters, RootClock: r.Clock()}
	})
	if runErr != nil {
		return nil, runErr
	}
	return result, nil
}
