package pda

import (
	"math"
	"testing"

	"nestdiff/internal/geom"
	"nestdiff/internal/wrfsim"
)

// stormModel builds a deterministic model with storms at two well-separated
// locations and steps it until they are mature.
func stormModel(t testing.TB) *wrfsim.Model {
	t.Helper()
	cfg := wrfsim.DefaultConfig()
	cfg.NX, cfg.NY = 96, 72
	cfg.SpawnRate = 0
	m, err := wrfsim.NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	storms := []wrfsim.Cell{
		{X: 20, Y: 18, Radius: 5, Peak: 2.5, Life: 14400},
		{X: 70, Y: 50, Radius: 4, Peak: 2.0, Life: 14400},
	}
	for _, c := range storms {
		if err := m.InjectCell(c); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		m.Step()
	}
	return m
}

func stormSplits(t testing.TB, m *wrfsim.Model, pg geom.Grid) []wrfsim.Split {
	t.Helper()
	splits, err := m.Splits(pg)
	if err != nil {
		t.Fatal(err)
	}
	return splits
}

func TestAnalyzeSplitAggregation(t *testing.T) {
	m := stormModel(t)
	pg := geom.NewGrid(8, 6)
	splits := stormSplits(t, m, pg)
	opt := DefaultOptions()

	// A split over the first storm core must aggregate cloud; a far-corner
	// split must not.
	var coreInfo, clearInfo *SubdomainInfo
	for i := range splits {
		info := AnalyzeSplit(splits[i], opt)
		if splits[i].Bounds.Contains(geom.Point{X: 21, Y: 19}) {
			coreInfo = &info
		}
		if splits[i].Bounds.Contains(geom.Point{X: 94, Y: 2}) {
			clearInfo = &info
		}
		_ = i
	}
	if coreInfo == nil || clearInfo == nil {
		t.Fatal("expected splits not found")
	}
	if coreInfo.QCloud <= opt.QCloudThreshold {
		t.Fatalf("storm-core aggregate %g below threshold", coreInfo.QCloud)
	}
	if coreInfo.OLRFraction <= 0 {
		t.Fatal("storm-core OLR fraction is zero")
	}
	if clearInfo.QCloud != 0 || clearInfo.OLRFraction != 0 {
		t.Fatalf("clear split has cloud: %+v", clearInfo)
	}
}

func TestAnalyzeSplitPosFromRank(t *testing.T) {
	m := stormModel(t)
	pg := geom.NewGrid(8, 6)
	splits := stormSplits(t, m, pg)
	info := AnalyzeSplit(splits[13], DefaultOptions())
	if info.Pos != (geom.Point{X: 5, Y: 1}) {
		t.Fatalf("rank 13 position = %v, want (5,1)", info.Pos)
	}
}

func TestAnalyzeFindsBothStorms(t *testing.T) {
	m := stormModel(t)
	splits := stormSplits(t, m, geom.NewGrid(8, 6))
	rects, clusters, err := Analyze(splits, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("found %d clusters, want 2 storms (rects: %v)", len(clusters), rects)
	}
	var gotA, gotB bool
	for _, r := range rects {
		if r.Contains(geom.Point{X: 21, Y: 19}) {
			gotA = true
		}
		if r.Contains(geom.Point{X: 71, Y: 51}) {
			gotB = true
		}
	}
	if !gotA || !gotB {
		t.Fatalf("storm cores not covered by nest rects %v", rects)
	}
}

func TestAnalyzeCleanSkyFindsNothing(t *testing.T) {
	cfg := wrfsim.DefaultConfig()
	cfg.NX, cfg.NY = 48, 36
	cfg.SpawnRate = 0
	m, err := wrfsim.NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Step()
	splits := stormSplits(t, m, geom.NewGrid(4, 3))
	rects, clusters, err := Analyze(splits, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != 0 || len(clusters) != 0 {
		t.Fatalf("clear sky produced nests: %v", rects)
	}
}

func TestAnalyzeEmptyInput(t *testing.T) {
	if _, _, err := Analyze(nil, DefaultOptions()); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestNNCClustersAreDisjoint(t *testing.T) {
	// §V-A / Fig. 9(b): our NNC produces non-overlapping clusters.
	m := stormModel(t)
	splits := stormSplits(t, m, geom.NewGrid(12, 9))
	var infos []SubdomainInfo
	for _, s := range splits {
		info := AnalyzeSplit(s, DefaultOptions())
		if info.OLRFraction > 0 {
			infos = append(infos, info)
		}
	}
	clusters := NNC(infos, DefaultOptions())
	if len(clusters) == 0 {
		t.Fatal("no clusters found")
	}
	if n := OverlappingPairs(clusters); n != 0 {
		t.Fatalf("our NNC produced %d overlapping cluster pairs", n)
	}
	// No subdomain may appear in two clusters.
	seen := map[int]bool{}
	for _, c := range clusters {
		for _, e := range c {
			if seen[e.Rank] {
				t.Fatalf("subdomain %d in two clusters", e.Rank)
			}
			seen[e.Rank] = true
		}
	}
}

// syntheticInfos builds a hand-crafted qcloudinfo list on a file grid.
func syntheticInfos(vals map[geom.Point]float64, px int) []SubdomainInfo {
	var out []SubdomainInfo
	for p, q := range vals {
		out = append(out, SubdomainInfo{
			Rank:        p.Y*px + p.X,
			Pos:         p,
			Bounds:      geom.NewRect(p.X*10, p.Y*10, 10, 10),
			QCloud:      q,
			OLRFraction: 0.5,
		})
	}
	return out
}

func TestNNCOneHopPreferredOverTwoHop(t *testing.T) {
	// An element 1 hop from cluster B and 2 hops from cluster A must join
	// B even if A was formed first (higher QCLOUD).
	opt := DefaultOptions()
	infos := syntheticInfos(map[geom.Point]float64{
		{X: 0, Y: 0}: 100, // seeds cluster A (processed first)
		{X: 3, Y: 0}: 90,  // seeds cluster B
		{X: 2, Y: 0}: 80,  // 2 hops from A, 1 hop from B
	}, 8)
	clusters := NNC(infos, opt)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	for _, c := range clusters {
		for _, e := range c {
			if e.Pos == (geom.Point{X: 2, Y: 0}) && len(c) != 2 {
				t.Fatal("element joined the wrong cluster")
			}
			if e.Pos == (geom.Point{X: 2, Y: 0}) {
				// Its cluster must contain the (3,0) seed.
				found := false
				for _, other := range c {
					if other.Pos == (geom.Point{X: 3, Y: 0}) {
						found = true
					}
				}
				if !found {
					t.Fatal("element not clustered with its 1-hop neighbour")
				}
			}
		}
	}
}

func TestNNCMeanDeviationGuard(t *testing.T) {
	// A weak element adjacent to a strong cluster must be rejected when it
	// would deviate the mean by more than 30%, and start its own cluster.
	opt := DefaultOptions()
	infos := syntheticInfos(map[geom.Point]float64{
		{X: 0, Y: 0}: 100,
		{X: 1, Y: 0}: 10, // would drag the mean to 55: -45%
	}, 8)
	clusters := NNC(infos, opt)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2 (mean-deviation guard)", len(clusters))
	}
	// With a permissive guard they merge.
	opt.MeanDeviation = 0.9
	clusters = NNC(infos, opt)
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d, want 1 with permissive guard", len(clusters))
	}
}

func TestNNCThresholdFiltersWeakSubdomains(t *testing.T) {
	opt := DefaultOptions()
	infos := syntheticInfos(map[geom.Point]float64{
		{X: 0, Y: 0}: opt.QCloudThreshold / 2,
	}, 8)
	if clusters := NNC(infos, opt); len(clusters) != 0 {
		t.Fatalf("sub-threshold element clustered: %v", clusters)
	}
	// OLR-fraction filter too.
	weak := syntheticInfos(map[geom.Point]float64{{X: 0, Y: 0}: 100}, 8)
	weak[0].OLRFraction = opt.OLRFractionThreshold / 2
	if clusters := NNC(weak, opt); len(clusters) != 0 {
		t.Fatalf("low-OLR-fraction element clustered: %v", clusters)
	}
}

func TestSimpleNNCCanOverlapWhereOursDoesNot(t *testing.T) {
	// Fig. 9: a bridge pattern where the simple 2-hop baseline produces
	// spatially overlapping clusters while the 1+2-hop method does not.
	// Two strong rows with a weak diagonal bridge between them.
	opt := DefaultOptions()
	opt.MeanDeviation = 0.2
	infos := syntheticInfos(map[geom.Point]float64{
		{X: 0, Y: 0}: 100,
		{X: 2, Y: 1}: 30,
		{X: 0, Y: 2}: 95,
		{X: 2, Y: 3}: 28,
		{X: 4, Y: 0}: 90,
		{X: 4, Y: 2}: 25,
	}, 8)
	ours := NNC(infos, opt)
	simple := SimpleNNC(infos, opt)
	if got := OverlappingPairs(ours); got != 0 {
		t.Fatalf("our NNC overlaps: %d pairs", got)
	}
	if got := OverlappingPairs(simple); got == 0 {
		t.Skip("pattern did not trigger overlap in the simple baseline on this layout")
	}
}

func TestClusterBoundingRect(t *testing.T) {
	c := Cluster{
		{Bounds: geom.NewRect(0, 0, 10, 10)},
		{Bounds: geom.NewRect(20, 10, 10, 10)},
	}
	if got := c.BoundingRect(); got != geom.NewRect(0, 0, 30, 20) {
		t.Fatalf("bounding rect = %v", got)
	}
	if (Cluster{}).MeanQCloud() != 0 {
		t.Fatal("empty cluster mean != 0")
	}
}

func TestHopDistanceChebyshev(t *testing.T) {
	cases := []struct {
		a, b geom.Point
		want int
	}{
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 0, Y: 0}, 0},
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 1}, 1},
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 2, Y: 1}, 2},
		{geom.Point{X: 3, Y: 5}, geom.Point{X: 1, Y: 5}, 2},
	}
	for _, c := range cases {
		if got := hopDistance(c.a, c.b); got != c.want {
			t.Errorf("hop(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEncodeDecodeInfoRoundTrip(t *testing.T) {
	info := SubdomainInfo{
		Rank:        13,
		Pos:         geom.Point{X: 5, Y: 1},
		Bounds:      geom.NewRect(50, 12, 12, 12),
		QCloud:      3.25,
		OLRFraction: 0.5,
	}
	decoded, err := decodeInfos(encodeInfo(info), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0] != info {
		t.Fatalf("round trip = %+v, want %+v", decoded, info)
	}
	if _, err := decodeInfos(make([]float64, infoWords+1), 8); err == nil {
		t.Fatal("ragged buffer accepted")
	}
}

func TestNNCDeterministicUnderMapOrder(t *testing.T) {
	// The cluster output must not depend on input order (it sorts), even
	// though syntheticInfos iterates a map.
	vals := map[geom.Point]float64{
		{X: 0, Y: 0}: 50, {X: 1, Y: 0}: 48, {X: 5, Y: 5}: 60, {X: 6, Y: 5}: 55,
	}
	opt := DefaultOptions()
	ref := NNC(syntheticInfos(vals, 8), opt)
	for i := 0; i < 20; i++ {
		got := NNC(syntheticInfos(vals, 8), opt)
		if len(got) != len(ref) {
			t.Fatalf("cluster count varies: %d vs %d", len(got), len(ref))
		}
		for j := range got {
			if math.Abs(got[j].MeanQCloud()-ref[j].MeanQCloud()) > 1e-12 {
				t.Fatal("cluster contents vary with input order")
			}
		}
	}
}

func TestOLRCriteriaExcludeIsolatedCumulonimbus(t *testing.T) {
	// §III: "A combination of OLR and QCLOUD better identifies such
	// systems and precludes identification of isolated cumulonimbus (as
	// QCLOUD alone would do)." Build one organized system (broad, strong)
	// and one isolated cumulonimbus (tall — high QCLOUD — but tiny
	// footprint): the OLR-fraction criterion must keep the isolated tower
	// out while QCLOUD-only detection spuriously nests it.
	cfg := wrfsim.DefaultConfig()
	cfg.NX, cfg.NY = 96, 72
	cfg.SpawnRate = 0
	m, err := wrfsim.NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Organized system: wide and strong.
	if err := m.InjectCell(wrfsim.Cell{X: 24, Y: 20, Radius: 6, Peak: 2.5, Life: 14400}); err != nil {
		t.Fatal(err)
	}
	// Isolated cumulonimbus: very tall but very narrow.
	if err := m.InjectCell(wrfsim.Cell{X: 70, Y: 50, Radius: 0.6, Peak: 8, Life: 14400}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		m.Step()
	}
	splits := stormSplits(t, m, geom.NewGrid(8, 6))

	opt := DefaultOptions()
	opt.OLRFractionThreshold = 0.10 // "coherent patterns of low OLR"
	combined, _, err := Analyze(splits, opt)
	if err != nil {
		t.Fatal(err)
	}
	qOnly := opt
	qOnly.QCloudOnly = true
	qcloudOnly, _, err := Analyze(splits, qOnly)
	if err != nil {
		t.Fatal(err)
	}
	coversTower := func(rects []geom.Rect) bool {
		for _, r := range rects {
			if r.Contains(geom.Point{X: 70, Y: 50}) {
				return true
			}
		}
		return false
	}
	coversSystem := func(rects []geom.Rect) bool {
		for _, r := range rects {
			if r.Contains(geom.Point{X: 25, Y: 21}) {
				return true
			}
		}
		return false
	}
	if !coversSystem(combined) {
		t.Fatalf("combined criteria missed the organized system: %v", combined)
	}
	if coversTower(combined) {
		t.Fatalf("combined criteria nested the isolated cumulonimbus: %v", combined)
	}
	if !coversTower(qcloudOnly) {
		t.Fatalf("QCLOUD-only did not detect the isolated tower (test is vacuous): %v", qcloudOnly)
	}
}
