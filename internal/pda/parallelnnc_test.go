package pda

import (
	"testing"

	"nestdiff/internal/geom"
)

func TestMergeClustersCombinesAdjacent(t *testing.T) {
	opt := DefaultOptions()
	a := Cluster(syntheticInfos(map[geom.Point]float64{{X: 0, Y: 0}: 100, {X: 1, Y: 0}: 95}, 8))
	b := Cluster(syntheticInfos(map[geom.Point]float64{{X: 2, Y: 0}: 92, {X: 3, Y: 0}: 90}, 8))
	got := MergeClusters([]Cluster{a, b}, opt)
	if len(got) != 1 {
		t.Fatalf("adjacent compatible clusters did not merge: %d clusters", len(got))
	}
	if len(got[0]) != 4 {
		t.Fatalf("merged cluster has %d members", len(got[0]))
	}
}

func TestMergeClustersRespectsDistance(t *testing.T) {
	opt := DefaultOptions()
	a := Cluster(syntheticInfos(map[geom.Point]float64{{X: 0, Y: 0}: 100}, 8))
	b := Cluster(syntheticInfos(map[geom.Point]float64{{X: 5, Y: 0}: 100}, 8))
	got := MergeClusters([]Cluster{a, b}, opt)
	if len(got) != 2 {
		t.Fatalf("distant clusters merged: %d", len(got))
	}
}

func TestMergeClustersRespectsMeanGuard(t *testing.T) {
	opt := DefaultOptions()
	strong := Cluster(syntheticInfos(map[geom.Point]float64{{X: 0, Y: 0}: 100}, 8))
	weak := Cluster(syntheticInfos(map[geom.Point]float64{{X: 1, Y: 0}: 10}, 8))
	got := MergeClusters([]Cluster{strong, weak}, opt)
	if len(got) != 2 {
		t.Fatalf("incompatible clusters merged: %d", len(got))
	}
	opt.MeanDeviation = 5
	got = MergeClusters([]Cluster{strong, weak}, opt)
	if len(got) != 1 {
		t.Fatalf("permissive guard did not merge: %d", len(got))
	}
}

func TestMergeClustersTransitive(t *testing.T) {
	// A chain a–b–c where a and c are far apart must still collapse into
	// one cluster through b (fixpoint iteration).
	opt := DefaultOptions()
	a := Cluster(syntheticInfos(map[geom.Point]float64{{X: 0, Y: 0}: 100}, 12))
	b := Cluster(syntheticInfos(map[geom.Point]float64{{X: 2, Y: 0}: 98}, 12))
	c := Cluster(syntheticInfos(map[geom.Point]float64{{X: 4, Y: 0}: 96}, 12))
	got := MergeClusters([]Cluster{a, c, b}, opt)
	if len(got) != 1 {
		t.Fatalf("chain did not collapse: %d clusters", len(got))
	}
}

func TestEncodeDecodeClustersRoundTrip(t *testing.T) {
	clusters := []Cluster{
		syntheticInfos(map[geom.Point]float64{{X: 0, Y: 0}: 50, {X: 1, Y: 0}: 45}, 8),
		syntheticInfos(map[geom.Point]float64{{X: 5, Y: 5}: 70}, 8),
	}
	got, err := decodeClusters(encodeClusters(clusters), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0]) != 2 || len(got[1]) != 1 {
		t.Fatalf("round trip shape: %v", got)
	}
	if got[1][0].QCloud != 70 {
		t.Fatal("payload corrupted")
	}
	if _, err := decodeClusters([]float64{5, 1, 2}, 8); err == nil {
		t.Fatal("truncated encoding accepted")
	}
	if _, err := decodeClusters([]float64{-1}, 8); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestRunParallelNNCMatchesSerialOnSeparatedStorms(t *testing.T) {
	m := stormModel(t)
	pg := geom.NewGrid(8, 6)
	splits := stormSplits(t, m, pg)
	opt := DefaultOptions()
	wantRects, wantClusters, err := Analyze(splits, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantClusters) != 2 {
		t.Fatalf("serial found %d clusters, want 2", len(wantClusters))
	}
	for _, n := range []int{1, 2, 6, 12} {
		w := analysisWorld(t, n)
		res, err := RunParallelNNC(w, pg, memLoader(splits), opt)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if len(res.Rects) != len(wantRects) {
			t.Fatalf("N=%d: %d rects, serial %d", n, len(res.Rects), len(wantRects))
		}
		got := map[geom.Rect]bool{}
		for _, r := range res.Rects {
			got[r] = true
		}
		for _, r := range wantRects {
			if !got[r] {
				t.Fatalf("N=%d: rect %v missing from %v", n, r, res.Rects)
			}
		}
	}
}

func TestRunParallelNNCInvariants(t *testing.T) {
	// Regardless of rank count, no subdomain appears in two clusters and
	// all members are above threshold.
	m := stormModel(t)
	pg := geom.NewGrid(12, 9)
	splits := stormSplits(t, m, pg)
	opt := DefaultOptions()
	for _, n := range []int{3, 9, 27} {
		w := analysisWorld(t, n)
		res, err := RunParallelNNC(w, pg, memLoader(splits), opt)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		seen := map[int]bool{}
		for _, c := range res.Clusters {
			for _, e := range c {
				if seen[e.Rank] {
					t.Fatalf("N=%d: subdomain %d in two clusters", n, e.Rank)
				}
				seen[e.Rank] = true
				if e.QCloud < opt.QCloudThreshold {
					t.Fatalf("N=%d: sub-threshold member %+v", n, e)
				}
			}
		}
	}
}

func TestRunParallelNNCDeterministic(t *testing.T) {
	m := stormModel(t)
	pg := geom.NewGrid(8, 6)
	splits := stormSplits(t, m, pg)
	opt := DefaultOptions()
	w := analysisWorld(t, 6)
	a, err := RunParallelNNC(w, pg, memLoader(splits), opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w := analysisWorld(t, 6)
		b, err := RunParallelNNC(w, pg, memLoader(splits), opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rects) != len(b.Rects) {
			t.Fatal("rect count varies")
		}
		for j := range a.Rects {
			if a.Rects[j] != b.Rects[j] {
				t.Fatal("rects vary across runs")
			}
		}
	}
}

func TestRunParallelNNCTooManyRanks(t *testing.T) {
	w := analysisWorld(t, 64)
	if _, err := RunParallelNNC(w, geom.NewGrid(4, 3), nil, DefaultOptions()); err == nil {
		t.Fatal("more ranks than files accepted")
	}
}

func TestMergeClustersPrefersOneHopTarget(t *testing.T) {
	// A fringe cluster 1 hop from cluster B and 2 hops from the stronger
	// cluster A must join B — the 1-hop pass runs before the 2-hop pass,
	// as in Algorithm 2.
	opt := DefaultOptions()
	a := Cluster(syntheticInfos(map[geom.Point]float64{{X: 0, Y: 0}: 100}, 12))
	b := Cluster(syntheticInfos(map[geom.Point]float64{{X: 3, Y: 0}: 90}, 12))
	fringe := Cluster(syntheticInfos(map[geom.Point]float64{{X: 2, Y: 0}: 80}, 12))
	got := MergeClusters([]Cluster{a, b, fringe}, opt)
	if len(got) != 2 {
		t.Fatalf("clusters = %d, want 2", len(got))
	}
	for _, c := range got {
		hasFringe, hasB := false, false
		for _, e := range c {
			if e.Pos == (geom.Point{X: 2, Y: 0}) {
				hasFringe = true
			}
			if e.Pos == (geom.Point{X: 3, Y: 0}) {
				hasB = true
			}
		}
		if hasFringe && !hasB {
			t.Fatal("fringe joined the 2-hop cluster instead of the 1-hop one")
		}
	}
}

func TestMergeClustersSingleInputUnchanged(t *testing.T) {
	a := Cluster(syntheticInfos(map[geom.Point]float64{{X: 0, Y: 0}: 100, {X: 1, Y: 0}: 95}, 8))
	got := MergeClusters([]Cluster{a}, DefaultOptions())
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("single cluster mangled: %v", got)
	}
	if got := MergeClusters(nil, DefaultOptions()); len(got) != 0 {
		t.Fatalf("empty input produced %d clusters", len(got))
	}
}
