package geom

import "fmt"

// Grid is a 2D process grid of Px columns × Py rows with row-major rank
// numbering: rank = row*Px + col. This matches the paper's convention in
// which the "start rank" of a processor sub-rectangle is the rank of its
// north-west corner (Table I: start rank 429 = row 13 · 32 + col 13 on a
// 32×32 grid).
type Grid struct {
	Px, Py int
}

// NewGrid returns a Px×Py process grid. It panics if either extent is not
// positive, because every caller derives the extents from a validated
// processor count.
func NewGrid(px, py int) Grid {
	if px <= 0 || py <= 0 {
		panic(fmt.Sprintf("geom: invalid grid %dx%d", px, py))
	}
	return Grid{Px: px, Py: py}
}

// Size returns the total number of ranks in g.
func (g Grid) Size() int { return g.Px * g.Py }

// Bounds returns the rectangle covering the whole grid.
func (g Grid) Bounds() Rect { return NewRect(0, 0, g.Px, g.Py) }

// Rank returns the row-major rank of the process at p. It panics if p lies
// outside the grid.
func (g Grid) Rank(p Point) int {
	if !g.Bounds().Contains(p) {
		panic(fmt.Sprintf("geom: point %v outside grid %dx%d", p, g.Px, g.Py))
	}
	return p.Y*g.Px + p.X
}

// Coord returns the grid coordinate of rank r. It panics if r is out of
// range.
func (g Grid) Coord(rank int) Point {
	if rank < 0 || rank >= g.Size() {
		panic(fmt.Sprintf("geom: rank %d outside grid %dx%d", rank, g.Px, g.Py))
	}
	return Point{X: rank % g.Px, Y: rank / g.Px}
}

// StartRank returns the rank of the north-west corner of r.
func (g Grid) StartRank(r Rect) int {
	return g.Rank(Point{r.X0, r.Y0})
}

// Ranks returns the ranks covered by the sub-rectangle r in row-major
// order. It panics if r is not contained in the grid.
func (g Grid) Ranks(r Rect) []int {
	if !g.Bounds().ContainsRect(r) {
		panic(fmt.Sprintf("geom: rect %v outside grid %dx%d", r, g.Px, g.Py))
	}
	out := make([]int, 0, r.Area())
	r.Cells(func(p Point) { out = append(out, g.Rank(p)) })
	return out
}

// NearSquareFactors returns (px, py) with px·py = n and px ≤ py, choosing
// the factorization closest to square. It is used to derive the 2D process
// grid for a given core count (e.g. 1024 → 32×32, 512 → 16×32).
func NearSquareFactors(n int) (px, py int) {
	if n <= 0 {
		panic(fmt.Sprintf("geom: invalid process count %d", n))
	}
	best := 1
	for f := 1; f*f <= n; f++ {
		if n%f == 0 {
			best = f
		}
	}
	return best, n / best
}
