// Package geom provides the integer geometry primitives used throughout
// nestdiff: axis-aligned rectangles on a discrete grid, 2D process grids
// with row-major rank numbering, and exact integer block decompositions of
// a nest domain over a processor sub-grid.
//
// Conventions follow the paper: a processor sub-grid is described by the
// rank of its north-west corner in the row-major parent grid and by its
// width×height extent (Table I).
package geom

import "fmt"

// Point is a discrete 2D coordinate (column x, row y).
type Point struct {
	X, Y int
}

// Add returns the component-wise sum of p and q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// Rect is a half-open axis-aligned rectangle [X0,X1) × [Y0,Y1) on a
// discrete grid. The zero value is the empty rectangle at the origin.
type Rect struct {
	X0, Y0 int // inclusive north-west corner
	X1, Y1 int // exclusive south-east corner
}

// NewRect returns the rectangle with north-west corner (x, y), width w and
// height h. Negative extents are clamped to zero.
func NewRect(x, y, w, h int) Rect {
	if w < 0 {
		w = 0
	}
	if h < 0 {
		h = 0
	}
	return Rect{X0: x, Y0: y, X1: x + w, Y1: y + h}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() int { return max(0, r.X1-r.X0) }

// Height returns the vertical extent of r.
func (r Rect) Height() int { return max(0, r.Y1-r.Y0) }

// Area returns the number of grid cells covered by r.
func (r Rect) Area() int { return r.Width() * r.Height() }

// Empty reports whether r covers no cells.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Contains reports whether the cell at p lies inside r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X < r.X1 && p.Y >= r.Y0 && p.Y < r.Y1
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.X0 >= r.X0 && s.X1 <= r.X1 && s.Y0 >= r.Y0 && s.Y1 <= r.Y1
}

// Intersect returns the intersection of r and s. The result is normalized
// to the canonical empty rectangle when the two do not overlap.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		X0: max(r.X0, s.X0),
		Y0: max(r.Y0, s.Y0),
		X1: min(r.X1, s.X1),
		Y1: min(r.Y1, s.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Overlaps reports whether r and s share at least one cell.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// Union returns the smallest rectangle containing both r and s. Empty
// inputs are ignored.
func (r Rect) Union(s Rect) Rect {
	switch {
	case r.Empty():
		return s
	case s.Empty():
		return r
	}
	return Rect{
		X0: min(r.X0, s.X0),
		Y0: min(r.Y0, s.Y0),
		X1: max(r.X1, s.X1),
		Y1: max(r.Y1, s.Y1),
	}
}

// AspectRatio returns the long-side / short-side ratio of r, or 0 when r is
// empty. A square has aspect ratio 1; larger values mean more skew.
func (r Rect) AspectRatio() float64 {
	w, h := r.Width(), r.Height()
	if w == 0 || h == 0 {
		return 0
	}
	if w > h {
		return float64(w) / float64(h)
	}
	return float64(h) / float64(w)
}

// SplitX cuts r vertically, returning the left part of width w and the
// remaining right part. w is clamped to [0, Width].
func (r Rect) SplitX(w int) (left, right Rect) {
	w = clamp(w, 0, r.Width())
	left = Rect{r.X0, r.Y0, r.X0 + w, r.Y1}
	right = Rect{r.X0 + w, r.Y0, r.X1, r.Y1}
	if left.Empty() {
		left = Rect{}
	}
	if right.Empty() {
		right = Rect{}
	}
	return left, right
}

// SplitY cuts r horizontally, returning the top part of height h and the
// remaining bottom part. h is clamped to [0, Height].
func (r Rect) SplitY(h int) (top, bottom Rect) {
	h = clamp(h, 0, r.Height())
	top = Rect{r.X0, r.Y0, r.X1, r.Y0 + h}
	bottom = Rect{r.X0, r.Y0 + h, r.X1, r.Y1}
	if top.Empty() {
		top = Rect{}
	}
	if bottom.Empty() {
		bottom = Rect{}
	}
	return top, bottom
}

// String renders r as "WxH@(X0,Y0)".
func (r Rect) String() string {
	return fmt.Sprintf("%dx%d@(%d,%d)", r.Width(), r.Height(), r.X0, r.Y0)
}

// Cells calls fn for every cell of r in row-major order.
func (r Rect) Cells(fn func(Point)) {
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			fn(Point{x, y})
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
