package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRect(t *testing.T) {
	r := NewRect(2, 3, 4, 5)
	if r.Width() != 4 || r.Height() != 5 || r.Area() != 20 {
		t.Fatalf("NewRect(2,3,4,5) = %v", r)
	}
	if r.Empty() {
		t.Fatalf("non-empty rect reported empty: %v", r)
	}
}

func TestNewRectClampsNegativeExtents(t *testing.T) {
	r := NewRect(1, 1, -3, 4)
	if !r.Empty() || r.Area() != 0 {
		t.Fatalf("negative width should give empty rect, got %v", r)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 3, 3)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{2, 2}, true},
		{Point{3, 3}, false}, // exclusive corner
		{Point{-1, 0}, false},
		{Point{0, 3}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(0, 0, 4, 4)
	b := NewRect(2, 2, 4, 4)
	got := a.Intersect(b)
	want := NewRect(2, 2, 2, 2)
	if got != want {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	if !a.Overlaps(b) {
		t.Fatalf("Overlaps = false for overlapping rects")
	}
	c := NewRect(4, 0, 2, 2)
	if !a.Intersect(c).Empty() {
		t.Fatalf("adjacent rects should not intersect, got %v", a.Intersect(c))
	}
	if a.Intersect(c) != (Rect{}) {
		t.Fatalf("empty intersection not normalized: %v", a.Intersect(c))
	}
}

func TestRectUnion(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(3, 3, 1, 1)
	got := a.Union(b)
	if got != NewRect(0, 0, 4, 4) {
		t.Fatalf("Union = %v", got)
	}
	if a.Union(Rect{}) != a || (Rect{}).Union(a) != a {
		t.Fatalf("Union with empty should be identity")
	}
}

func TestRectSplit(t *testing.T) {
	r := NewRect(0, 0, 10, 6)
	l, rr := r.SplitX(4)
	if l != NewRect(0, 0, 4, 6) || rr != NewRect(4, 0, 6, 6) {
		t.Fatalf("SplitX(4) = %v, %v", l, rr)
	}
	top, bot := r.SplitY(2)
	if top != NewRect(0, 0, 10, 2) || bot != NewRect(0, 2, 10, 4) {
		t.Fatalf("SplitY(2) = %v, %v", top, bot)
	}
	// Degenerate splits produce canonical empty rects.
	l, rr = r.SplitX(0)
	if l != (Rect{}) || rr != r {
		t.Fatalf("SplitX(0) = %v, %v", l, rr)
	}
	l, rr = r.SplitX(99)
	if l != r || rr != (Rect{}) {
		t.Fatalf("SplitX(99) = %v, %v", l, rr)
	}
}

func TestRectAspectRatio(t *testing.T) {
	if got := NewRect(0, 0, 4, 4).AspectRatio(); got != 1 {
		t.Errorf("square aspect = %v", got)
	}
	if got := NewRect(0, 0, 8, 2).AspectRatio(); got != 4 {
		t.Errorf("8x2 aspect = %v", got)
	}
	if got := NewRect(0, 0, 2, 8).AspectRatio(); got != 4 {
		t.Errorf("2x8 aspect = %v", got)
	}
	if got := (Rect{}).AspectRatio(); got != 0 {
		t.Errorf("empty aspect = %v", got)
	}
}

func TestRectString(t *testing.T) {
	if got := NewRect(1, 2, 3, 4).String(); got != "3x4@(1,2)" {
		t.Fatalf("String = %q", got)
	}
}

func TestRectCellsOrder(t *testing.T) {
	r := NewRect(1, 1, 2, 2)
	var pts []Point
	r.Cells(func(p Point) { pts = append(pts, p) })
	want := []Point{{1, 1}, {2, 1}, {1, 2}, {2, 2}}
	if len(pts) != len(want) {
		t.Fatalf("Cells visited %d points, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("Cells order = %v, want %v", pts, want)
		}
	}
}

func randRect(r *rand.Rand) Rect {
	return NewRect(r.Intn(20)-10, r.Intn(20)-10, r.Intn(15), r.Intn(15))
}

// Property: intersection is commutative and contained in both operands.
func TestRectIntersectProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randRect(r), randRect(r)
		ab, ba := a.Intersect(b), b.Intersect(a)
		if ab != ba {
			t.Fatalf("intersect not commutative: %v vs %v", ab, ba)
		}
		if !a.ContainsRect(ab) || !b.ContainsRect(ab) {
			t.Fatalf("intersection %v not contained in %v and %v", ab, a, b)
		}
		if ab.Area() > min(a.Area(), b.Area()) {
			t.Fatalf("intersection larger than operands")
		}
	}
}

// Property: SplitX/SplitY partition the rectangle (areas sum, parts disjoint).
func TestRectSplitProperties(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		rect := randRect(r)
		w := r.Intn(20) - 2
		l, rr := rect.SplitX(w)
		if l.Area()+rr.Area() != rect.Area() {
			t.Fatalf("SplitX areas %d+%d != %d for %v w=%d", l.Area(), rr.Area(), rect.Area(), rect, w)
		}
		if l.Overlaps(rr) {
			t.Fatalf("SplitX parts overlap: %v %v", l, rr)
		}
		h := r.Intn(20) - 2
		top, bot := rect.SplitY(h)
		if top.Area()+bot.Area() != rect.Area() {
			t.Fatalf("SplitY areas differ for %v h=%d", rect, h)
		}
		if top.Overlaps(bot) {
			t.Fatalf("SplitY parts overlap: %v %v", top, bot)
		}
	}
}

// Property (testing/quick): union contains both operands.
func TestRectUnionQuick(t *testing.T) {
	f := func(ax, ay int8, aw, ah uint8, bx, by int8, bw, bh uint8) bool {
		a := NewRect(int(ax), int(ay), int(aw%32), int(ah%32))
		b := NewRect(int(bx), int(by), int(bw%32), int(bh%32))
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestManhattan(t *testing.T) {
	if d := (Point{0, 0}).Manhattan(Point{3, -4}); d != 7 {
		t.Fatalf("Manhattan = %d, want 7", d)
	}
}
