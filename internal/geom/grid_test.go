package geom

import (
	"math/rand"
	"testing"
)

func TestGridRankCoordRoundTrip(t *testing.T) {
	g := NewGrid(32, 32)
	for rank := 0; rank < g.Size(); rank++ {
		p := g.Coord(rank)
		if got := g.Rank(p); got != rank {
			t.Fatalf("round trip failed: rank %d -> %v -> %d", rank, p, got)
		}
	}
}

func TestGridPaperStartRanks(t *testing.T) {
	// Table I of the paper: on a 32x32 grid, start rank 256 is row 8, start
	// rank 429 is (col 13, row 13), start rank 512 is row 16.
	g := NewGrid(32, 32)
	cases := []struct {
		p    Point
		rank int
	}{
		{Point{0, 0}, 0},
		{Point{0, 8}, 256},
		{Point{0, 16}, 512},
		{Point{13, 0}, 13},
		{Point{13, 13}, 429},
	}
	for _, c := range cases {
		if got := g.Rank(c.p); got != c.rank {
			t.Errorf("Rank(%v) = %d, want %d", c.p, got, c.rank)
		}
	}
}

func TestGridStartRank(t *testing.T) {
	g := NewGrid(32, 32)
	if got := g.StartRank(NewRect(13, 13, 19, 19)); got != 429 {
		t.Fatalf("StartRank = %d, want 429", got)
	}
}

func TestGridRanks(t *testing.T) {
	g := NewGrid(4, 4)
	ranks := g.Ranks(NewRect(1, 1, 2, 2))
	want := []int{5, 6, 9, 10}
	if len(ranks) != len(want) {
		t.Fatalf("Ranks = %v, want %v", ranks, want)
	}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", ranks, want)
		}
	}
}

func TestGridPanics(t *testing.T) {
	g := NewGrid(4, 4)
	assertPanics(t, "Rank outside", func() { g.Rank(Point{4, 0}) })
	assertPanics(t, "Coord outside", func() { g.Coord(16) })
	assertPanics(t, "Ranks outside", func() { g.Ranks(NewRect(3, 3, 2, 2)) })
	assertPanics(t, "zero grid", func() { NewGrid(0, 4) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestNearSquareFactors(t *testing.T) {
	cases := []struct {
		n, px, py int
	}{
		{1024, 32, 32},
		{512, 16, 32},
		{256, 16, 16},
		{1, 1, 1},
		{7, 1, 7},
		{12, 3, 4},
	}
	for _, c := range cases {
		px, py := NearSquareFactors(c.n)
		if px != c.px || py != c.py {
			t.Errorf("NearSquareFactors(%d) = %d,%d want %d,%d", c.n, px, py, c.px, c.py)
		}
		if px*py != c.n {
			t.Errorf("NearSquareFactors(%d) does not multiply back", c.n)
		}
	}
}

func TestBlockDistFig3(t *testing.T) {
	// Fig. 3 of the paper: a nest distributed over a 4x4 sub-grid and then
	// over a 2x2 sub-grid; each receiver block is the union of exactly four
	// sender blocks (receiver 16 overlaps senders 0, 1, 4, 5).
	const nx, ny = 8, 8
	old := NewBlockDist(nx, ny, NewRect(0, 0, 4, 4))
	nw := NewBlockDist(nx, ny, NewRect(0, 0, 2, 2))
	recv := nw.Block(0, 0) // analogous to processor 16 in the figure
	var senders []Point
	old.Blocks(func(p Point, blk Rect) {
		if blk.Overlaps(recv) {
			senders = append(senders, p)
		}
	})
	want := []Point{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	if len(senders) != 4 {
		t.Fatalf("receiver should overlap 4 senders, got %v", senders)
	}
	for i := range want {
		if senders[i] != want[i] {
			t.Fatalf("senders = %v, want %v", senders, want)
		}
	}
}

func TestBlockDistPartition(t *testing.T) {
	// Blocks must tile the domain exactly: disjoint and covering.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		nx, ny := 1+r.Intn(40), 1+r.Intn(40)
		pw, ph := 1+r.Intn(8), 1+r.Intn(8)
		bd := NewBlockDist(nx, ny, NewRect(r.Intn(5), r.Intn(5), pw, ph))
		total := 0
		var blocks []Rect
		bd.Blocks(func(_ Point, blk Rect) {
			total += blk.Area()
			blocks = append(blocks, blk)
		})
		if total != nx*ny {
			t.Fatalf("blocks cover %d cells, want %d (n=%dx%d p=%dx%d)", total, nx*ny, nx, ny, pw, ph)
		}
		for i := range blocks {
			for j := i + 1; j < len(blocks); j++ {
				if blocks[i].Overlaps(blocks[j]) {
					t.Fatalf("blocks %v and %v overlap", blocks[i], blocks[j])
				}
			}
		}
	}
}

func TestBlockDistOwnerConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		nx, ny := 1+r.Intn(30), 1+r.Intn(30)
		pw, ph := 1+r.Intn(6), 1+r.Intn(6)
		bd := NewBlockDist(nx, ny, NewRect(2, 3, pw, ph))
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				owner := bd.Owner(Point{x, y})
				if !bd.BlockOf(owner).Contains(Point{x, y}) {
					t.Fatalf("Owner(%d,%d)=%v but block %v does not contain it",
						x, y, owner, bd.BlockOf(owner))
				}
			}
		}
	}
}

func TestBlockDistMoreProcsThanCells(t *testing.T) {
	bd := NewBlockDist(2, 2, NewRect(0, 0, 4, 4))
	total := 0
	bd.Blocks(func(_ Point, blk Rect) { total += blk.Area() })
	if total != 4 {
		t.Fatalf("over-decomposed blocks cover %d, want 4", total)
	}
}

func TestBlockDistPanics(t *testing.T) {
	assertPanics(t, "bad domain", func() { NewBlockDist(0, 4, NewRect(0, 0, 2, 2)) })
	assertPanics(t, "empty procs", func() { NewBlockDist(4, 4, Rect{}) })
	bd := NewBlockDist(4, 4, NewRect(0, 0, 2, 2))
	assertPanics(t, "Owner outside", func() { bd.Owner(Point{4, 0}) })
	assertPanics(t, "BlockOf outside", func() { bd.BlockOf(Point{5, 5}) })
	assertPanics(t, "Block outside", func() { bd.Block(2, 0) })
}
