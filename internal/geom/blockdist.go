package geom

import "fmt"

// BlockDist describes the block distribution of a nest domain of NX×NY
// grid points over a rectangular processor sub-grid Procs (a sub-rectangle
// of the parent process grid). Processor (i, j) of the sub-grid — i.e. the
// processor at Procs.X0+i, Procs.Y0+j — owns the contiguous block of domain
// cells
//
//	[floor(i·NX/pw), floor((i+1)·NX/pw)) × [floor(j·NY/ph), floor((j+1)·NY/ph))
//
// which is the "equally subdivided" decomposition of Fig. 3: when a
// 4×4 sub-grid hands a nest to a 2×2 sub-grid, each receiver's block is the
// union of exactly four sender blocks.
type BlockDist struct {
	NX, NY int  // nest domain extents in grid points
	Procs  Rect // processor sub-grid in parent-grid coordinates
}

// NewBlockDist returns the block distribution of an NX×NY domain over the
// processor sub-grid procs. It panics on non-positive domain extents or an
// empty processor rectangle, which indicate a programming error upstream.
func NewBlockDist(nx, ny int, procs Rect) BlockDist {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("geom: invalid nest domain %dx%d", nx, ny))
	}
	if procs.Empty() {
		panic("geom: empty processor sub-grid")
	}
	return BlockDist{NX: nx, NY: ny, Procs: procs}
}

// Block returns the domain cells owned by the processor at sub-grid
// position (i, j), 0-indexed from the north-west corner of Procs. The
// result may be empty when there are more processors along a dimension
// than domain cells.
func (b BlockDist) Block(i, j int) Rect {
	pw, ph := b.Procs.Width(), b.Procs.Height()
	if i < 0 || i >= pw || j < 0 || j >= ph {
		panic(fmt.Sprintf("geom: sub-grid position (%d,%d) outside %dx%d", i, j, pw, ph))
	}
	x0 := i * b.NX / pw
	x1 := (i + 1) * b.NX / pw
	y0 := j * b.NY / ph
	y1 := (j + 1) * b.NY / ph
	if x1 <= x0 || y1 <= y0 {
		return Rect{}
	}
	return Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}
}

// BlockOf returns the domain cells owned by the processor at parent-grid
// point p. It panics if p is not part of the sub-grid.
func (b BlockDist) BlockOf(p Point) Rect {
	if !b.Procs.Contains(p) {
		panic(fmt.Sprintf("geom: processor %v not in sub-grid %v", p, b.Procs))
	}
	return b.Block(p.X-b.Procs.X0, p.Y-b.Procs.Y0)
}

// Owner returns the parent-grid point of the processor owning domain cell
// c. It panics if c lies outside the domain.
func (b BlockDist) Owner(c Point) Point {
	if c.X < 0 || c.X >= b.NX || c.Y < 0 || c.Y >= b.NY {
		panic(fmt.Sprintf("geom: cell %v outside domain %dx%d", c, b.NX, b.NY))
	}
	pw, ph := b.Procs.Width(), b.Procs.Height()
	// Invert x0 = i·NX/pw: the owner is the largest i with i·NX/pw ≤ c.X,
	// i.e. i = floor(((c.X+1)·pw - 1) / NX), clamped for safety.
	i := ((c.X+1)*pw - 1) / b.NX
	j := ((c.Y+1)*ph - 1) / b.NY
	i = clamp(i, 0, pw-1)
	j = clamp(j, 0, ph-1)
	return Point{b.Procs.X0 + i, b.Procs.Y0 + j}
}

// Blocks calls fn for every processor of the sub-grid with its parent-grid
// point and owned block, in row-major sub-grid order. Empty blocks are
// included so that callers can build complete Alltoallv count vectors.
func (b BlockDist) Blocks(fn func(proc Point, block Rect)) {
	for j := 0; j < b.Procs.Height(); j++ {
		for i := 0; i < b.Procs.Width(); i++ {
			fn(Point{b.Procs.X0 + i, b.Procs.Y0 + j}, b.Block(i, j))
		}
	}
}
