package alloc

import (
	"fmt"
	"math"

	"nestdiff/internal/geom"
	"nestdiff/internal/htree"
)

// Change describes one reconfiguration of the nest set at an adaptation
// point: nests that disappeared, nests that persist (with their new
// predicted execution-time weights), and nests that appeared.
type Change struct {
	Deleted  []int
	Retained map[int]float64 // nest ID → updated weight
	Added    map[int]float64 // nest ID → weight
}

// Validate checks that the change is consistent with the previous
// allocation: deleted and retained nests must exist in it, added nests
// must not, and the three sets must be disjoint.
func (c Change) Validate(old *Allocation) error {
	seen := make(map[int]string)
	mark := func(id int, role string) error {
		if prev, dup := seen[id]; dup {
			return fmt.Errorf("alloc: nest %d is both %s and %s", id, prev, role)
		}
		seen[id] = role
		return nil
	}
	for _, id := range c.Deleted {
		if err := mark(id, "deleted"); err != nil {
			return err
		}
		if _, ok := old.Rects[id]; !ok {
			return fmt.Errorf("alloc: deleted nest %d not in old allocation", id)
		}
	}
	for id, w := range c.Retained {
		if err := mark(id, "retained"); err != nil {
			return err
		}
		if _, ok := old.Rects[id]; !ok {
			return fmt.Errorf("alloc: retained nest %d not in old allocation", id)
		}
		if w <= 0 {
			return fmt.Errorf("alloc: retained nest %d has non-positive weight %g", id, w)
		}
	}
	for id, w := range c.Added {
		if err := mark(id, "added"); err != nil {
			return err
		}
		if _, ok := old.Rects[id]; ok {
			return fmt.Errorf("alloc: added nest %d already in old allocation", id)
		}
		if w <= 0 {
			return fmt.Errorf("alloc: added nest %d has non-positive weight %g", id, w)
		}
	}
	if len(c.Deleted)+len(c.Retained) != len(old.Rects) {
		return fmt.Errorf("alloc: change covers %d of %d old nests",
			len(c.Deleted)+len(c.Retained), len(old.Rects))
	}
	return nil
}

// NewWeights returns the weight map of the nest set after the change.
func (c Change) NewWeights() map[int]float64 {
	out := make(map[int]float64, len(c.Retained)+len(c.Added))
	for id, w := range c.Retained {
		out[id] = w
	}
	for id, w := range c.Added {
		out[id] = w
	}
	return out
}

// InsertionPolicy selects how Algorithm 3 picks the free slot for a new
// nest. The paper inserts at the slot whose sibling weight is closest to
// the new weight to keep rectangles square-like (Fig. 6/7); the first-free
// policy is an ablation baseline showing why that choice matters.
type InsertionPolicy int

const (
	// ClosestWeight is the paper's policy (Algorithm 3 line 13).
	ClosestWeight InsertionPolicy = iota
	// FirstFree fills free slots left-to-right, ignoring weights.
	FirstFree
)

// Diffusion implements the tree-based hierarchical diffusion algorithm
// (Algorithm 3): instead of rebuilding the Huffman tree, the previous
// allocation's tree is reorganized so that retained nests keep their tree
// positions — and therefore their approximate grid positions — maximizing
// sender/receiver overlap during redistribution.
//
// Steps, following the paper:
//  1. leaves of deleted nests are marked free; adjacent free siblings merge
//     into a single free slot (Fig. 8a);
//  2. retained leaf weights are updated and internal weights re-summed;
//  3. while more than one free slot remains, each new nest (in ascending ID
//     order) fills the free slot whose sibling weight is closest to its own
//     weight, which keeps the resulting rectangles square-like (Fig. 6);
//  4. remaining new nests become a Huffman subtree grafted onto the last
//     free slot; with no free slots at all (pure insertion), each new nest
//     is paired with the existing leaf of closest weight;
//  5. surplus free slots are spliced out (Fig. 8c).
//
// The resulting tree need not be a Huffman tree (§IV-B).
func Diffusion(g geom.Grid, old *Allocation, change Change) (*Allocation, error) {
	return DiffusionWithPolicy(g, old, change, ClosestWeight)
}

// DiffusionWithPolicy is Diffusion with an explicit free-slot insertion
// policy, used by the ablation study.
func DiffusionWithPolicy(g geom.Grid, old *Allocation, change Change, policy InsertionPolicy) (*Allocation, error) {
	if err := change.Validate(old); err != nil {
		return nil, err
	}
	if old.Tree == nil {
		return nil, fmt.Errorf("alloc: old allocation has no tree")
	}
	newW := change.NewWeights()
	if len(newW) == 0 {
		return &Allocation{Grid: g, Rects: map[int]geom.Rect{}}, nil
	}
	t := old.Tree.Clone()

	// Step 1: free the deleted leaves and merge adjacent free slots.
	for _, id := range change.Deleted {
		if _, err := t.MarkFree(id); err != nil {
			return nil, err
		}
	}
	free := t.MergeFreeSiblings()

	// Step 2: refresh retained weights.
	for id, w := range change.Retained {
		leaf := t.FindLeaf(id)
		if leaf == nil {
			return nil, fmt.Errorf("alloc: retained nest %d missing from tree", id)
		}
		leaf.Weight = w
	}
	t.UpdateInternalWeights()

	// Step 3: fill free slots with new nests, best sibling-weight match
	// first, while more than one slot remains (Algorithm 3 lines 11–17).
	pending := sortedIDs(change.Added)
	for len(pending) > 0 && len(free) > 1 {
		id := pending[0]
		w := change.Added[id]
		best := 0
		if policy == ClosestWeight {
			bestDiff := math.Inf(1)
			for i, slot := range free {
				sibW := 0.0
				if sib := slot.Sibling(); sib != nil {
					sibW = sib.Weight
				}
				if d := math.Abs(sibW - w); d < bestDiff {
					best, bestDiff = i, d
				}
			}
		}
		if err := t.FillLeaf(free[best], id, w); err != nil {
			return nil, err
		}
		free = append(free[:best], free[best+1:]...)
		pending = pending[1:]
	}

	switch {
	case len(pending) > 0 && len(free) == 1:
		// Step 4a: Huffman subtree of the remaining new nests rooted at the
		// last free slot (Algorithm 3 lines 18–19).
		leaves := make([]htree.Leaf, 0, len(pending))
		for _, id := range pending {
			leaves = append(leaves, htree.Leaf{ID: id, Weight: change.Added[id]})
		}
		sub, err := htree.Build(leaves)
		if err != nil {
			return nil, err
		}
		if err := t.FillSubtree(free[0], sub); err != nil {
			return nil, err
		}
		free = nil
	case len(pending) > 0:
		// Step 4b: pure insertion — no free slots. Pair each new nest with
		// the existing leaf of closest weight (§IV-B, Fig. 6).
		for _, id := range pending {
			if err := insertNearClosest(t, id, change.Added[id]); err != nil {
				return nil, err
			}
		}
	default:
		// Step 5: more deletions than insertions — splice out the surplus.
		for _, slot := range free {
			if err := t.Splice(slot); err != nil {
				return nil, err
			}
		}
		free = nil
	}

	t.UpdateInternalWeights()
	if err := t.Validate(true); err != nil {
		return nil, fmt.Errorf("alloc: diffusion produced invalid tree: %w", err)
	}
	return PartitionTree(g, t)
}

// insertNearClosest replaces the existing leaf whose weight is closest to
// w with an internal node holding both that leaf and the new nest; the
// lighter of the two becomes the left child so the new pair splits its
// rectangle square-like.
func insertNearClosest(t *htree.Tree, id int, w float64) error {
	var target *htree.Node
	bestDiff := math.Inf(1)
	for _, l := range t.Leaves() {
		if l.Free {
			continue
		}
		if d := math.Abs(l.Weight - w); d < bestDiff {
			target, bestDiff = l, d
		}
	}
	if target == nil {
		return fmt.Errorf("alloc: no existing leaf to insert nest %d near", id)
	}
	// Graft by marking the target free, building a two-leaf subtree holding
	// the old leaf and the new nest, and filling the slot with it.
	oldID, oldW := target.ID, target.Weight
	target.Free = true
	target.ID = -1
	sub, err := htree.Build([]htree.Leaf{{ID: oldID, Weight: oldW}, {ID: id, Weight: w}})
	if err != nil {
		return err
	}
	return t.FillSubtree(target, sub)
}
