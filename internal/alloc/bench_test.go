package alloc

import (
	"fmt"
	"math/rand"
	"testing"

	"nestdiff/internal/geom"
)

func randomWeights(rng *rand.Rand, n int) map[int]float64 {
	w := make(map[int]float64, n)
	for i := 1; i <= n; i++ {
		w[i] = 0.05 + rng.Float64()
	}
	return w
}

func BenchmarkScratch(b *testing.B) {
	for _, nests := range []int{3, 6, 9} {
		b.Run(fmt.Sprintf("nests=%d", nests), func(b *testing.B) {
			g := geom.NewGrid(32, 32)
			w := randomWeights(rand.New(rand.NewSource(1)), nests)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Scratch(g, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDiffusion(b *testing.B) {
	for _, nests := range []int{4, 8} {
		b.Run(fmt.Sprintf("nests=%d", nests), func(b *testing.B) {
			g := geom.NewGrid(32, 32)
			rng := rand.New(rand.NewSource(2))
			w := randomWeights(rng, nests)
			old, err := Scratch(g, w)
			if err != nil {
				b.Fatal(err)
			}
			change := Change{
				Deleted:  []int{1},
				Retained: map[int]float64{},
				Added:    map[int]float64{nests + 1: 0.3},
			}
			for id := 2; id <= nests; id++ {
				change.Retained[id] = w[id]
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Diffusion(g, old, change); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPartitionTree(b *testing.B) {
	g := geom.NewGrid(64, 64)
	a, err := Scratch(g, randomWeights(rand.New(rand.NewSource(3)), 9))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PartitionTree(g, a.Tree); err != nil {
			b.Fatal(err)
		}
	}
}
