// Package alloc implements processor allocation for nested simulations:
// the Huffman-tree-driven rectangular partitioning of the process grid
// (Section IV, after Malakar et al. [1]), the partition-from-scratch
// strategy (§IV-A), and the paper's core contribution, the tree-based
// hierarchical diffusion reallocation of Algorithm 3 (§IV-B).
package alloc

import (
	"fmt"
	"math"
	"sort"

	"nestdiff/internal/geom"
	"nestdiff/internal/htree"
)

// Allocation is the assignment of processor sub-rectangles to nests,
// together with the tree that produced it (kept so that a later diffusion
// step can reorganize it).
type Allocation struct {
	Grid  geom.Grid
	Rects map[int]geom.Rect
	Tree  *htree.Tree
}

// Row is one line of an allocation table in the paper's format (Table I):
// the nest, the rank of its north-west corner, and its sub-grid extents.
type Row struct {
	NestID    int
	StartRank int
	Width     int
	Height    int
}

// Table returns the allocation as rows sorted by nest ID.
func (a *Allocation) Table() []Row {
	ids := a.NestIDs()
	rows := make([]Row, 0, len(ids))
	for _, id := range ids {
		r := a.Rects[id]
		rows = append(rows, Row{
			NestID:    id,
			StartRank: a.Grid.StartRank(r),
			Width:     r.Width(),
			Height:    r.Height(),
		})
	}
	return rows
}

// NestIDs returns the allocated nest IDs in ascending order.
func (a *Allocation) NestIDs() []int {
	ids := make([]int, 0, len(a.Rects))
	for id := range a.Rects {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// MeanAspectRatio returns the average long/short side ratio over all nest
// rectangles; 1.0 means perfectly square partitions, which minimize nest
// execution time per [1].
func (a *Allocation) MeanAspectRatio() float64 {
	if len(a.Rects) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range a.Rects {
		sum += r.AspectRatio()
	}
	return sum / float64(len(a.Rects))
}

// Validate checks the allocation invariants: every rectangle is non-empty
// and inside the grid, rectangles are pairwise disjoint, and together they
// tile the entire grid (every processor serves exactly one nest).
func (a *Allocation) Validate() error {
	total := 0
	ids := a.NestIDs()
	for i, id := range ids {
		r := a.Rects[id]
		if r.Empty() {
			return fmt.Errorf("alloc: nest %d has an empty rectangle", id)
		}
		if !a.Grid.Bounds().ContainsRect(r) {
			return fmt.Errorf("alloc: nest %d rectangle %v outside grid", id, r)
		}
		total += r.Area()
		for _, jd := range ids[i+1:] {
			if r.Overlaps(a.Rects[jd]) {
				return fmt.Errorf("alloc: nests %d and %d overlap (%v, %v)", id, jd, r, a.Rects[jd])
			}
		}
	}
	if len(ids) > 0 && total != a.Grid.Size() {
		return fmt.Errorf("alloc: rectangles cover %d of %d processors", total, a.Grid.Size())
	}
	return nil
}

// PartitionTree assigns a sub-rectangle of the grid to every leaf of the
// tree: each internal node splits its rectangle along its longer side,
// proportionally to the subtree weights of its children (left child first,
// i.e. top/left). The tree must contain no free slots. Rounding is to the
// nearest integer, clamped so that both sides can still host their leaves.
func PartitionTree(g geom.Grid, t *htree.Tree) (*Allocation, error) {
	a := &Allocation{Grid: g, Rects: make(map[int]geom.Rect), Tree: t}
	if t == nil || t.Root == nil {
		return a, nil
	}
	if err := t.Validate(false); err != nil {
		return nil, err
	}
	var assign func(n *htree.Node, r geom.Rect) error
	assign = func(n *htree.Node, r geom.Rect) error {
		if n.IsLeaf() {
			if n.Free {
				return fmt.Errorf("alloc: free slot reached partitioning")
			}
			if r.Empty() {
				return fmt.Errorf("alloc: nest %d received an empty rectangle (grid too small)", n.ID)
			}
			a.Rects[n.ID] = r
			return nil
		}
		lw, rw := n.Left.Weight, n.Right.Weight
		frac := 0.5
		if lw+rw > 0 {
			frac = lw / (lw + rw)
		}
		lLeaves, rLeaves := countLeaves(n.Left), countLeaves(n.Right)
		var first, second geom.Rect
		if r.Width() >= r.Height() {
			w := splitExtent(r.Width(), frac, lLeaves, rLeaves)
			first, second = r.SplitX(w)
		} else {
			h := splitExtent(r.Height(), frac, lLeaves, rLeaves)
			first, second = r.SplitY(h)
		}
		if err := assign(n.Left, first); err != nil {
			return err
		}
		return assign(n.Right, second)
	}
	if err := assign(t.Root, g.Bounds()); err != nil {
		return nil, err
	}
	return a, nil
}

// splitExtent rounds frac·extent to the nearest integer and clamps the
// result so that each side keeps at least one unit per hosted leaf (a
// best-effort guard; deeply skewed weights on tiny grids still fail at the
// leaf check in PartitionTree).
func splitExtent(extent int, frac float64, leftLeaves, rightLeaves int) int {
	w := int(math.Floor(frac*float64(extent) + 0.5))
	lo, hi := 0, extent
	if leftLeaves > 0 {
		lo = 1
	}
	if rightLeaves > 0 {
		hi = extent - 1
	}
	if w < lo {
		w = lo
	}
	if w > hi {
		w = hi
	}
	return w
}

func countLeaves(n *htree.Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

// sortedIDs returns the keys of a weight map in ascending order, for
// deterministic processing.
func sortedIDs(weights map[int]float64) []int {
	ids := make([]int, 0, len(weights))
	for id := range weights {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Scratch implements partition-from-scratch (§IV-A): a fresh Huffman tree
// over the nest weights, ignoring any existing allocation.
func Scratch(g geom.Grid, weights map[int]float64) (*Allocation, error) {
	if len(weights) == 0 {
		return &Allocation{Grid: g, Rects: map[int]geom.Rect{}}, nil
	}
	leaves := make([]htree.Leaf, 0, len(weights))
	for _, id := range sortedIDs(weights) {
		leaves = append(leaves, htree.Leaf{ID: id, Weight: weights[id]})
	}
	t, err := htree.Build(leaves)
	if err != nil {
		return nil, err
	}
	return PartitionTree(g, t)
}
