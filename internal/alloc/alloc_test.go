package alloc

import (
	"math/rand"
	"testing"

	"nestdiff/internal/geom"
)

var paperWeights = map[int]float64{1: 0.1, 2: 0.1, 3: 0.2, 4: 0.25, 5: 0.35}

func grid1024() geom.Grid { return geom.NewGrid(32, 32) }

func TestScratchReproducesTableI(t *testing.T) {
	// Table I: allocation of 5 nests (weights .1:.1:.2:.25:.35) on 1024
	// cores (32x32 grid).
	a, err := Scratch(grid1024(), paperWeights)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []Row{
		{NestID: 1, StartRank: 0, Width: 13, Height: 8},
		{NestID: 2, StartRank: 256, Width: 13, Height: 8},
		{NestID: 3, StartRank: 512, Width: 13, Height: 16},
		{NestID: 4, StartRank: 13, Width: 19, Height: 13},
		{NestID: 5, StartRank: 429, Width: 19, Height: 19},
	}
	got := a.Table()
	if len(got) != len(want) {
		t.Fatalf("table has %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestScratchTableIIShape(t *testing.T) {
	// Table II: scratch reallocation for nests {3, 5, 6} with weights
	// .27:.42:.31. Nest 5 gets the full-height left strip starting at rank
	// 0 exactly as the paper reports. (The paper lists 19x13/19x19 for
	// nests 3/6, which is inconsistent with its own weights — 0.27/0.58 of
	// 32 rows is 15 — so for those we assert the algorithmic output; see
	// EXPERIMENTS.md.)
	a, err := Scratch(grid1024(), map[int]float64{3: 0.27, 5: 0.42, 6: 0.31})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	rows := a.Table()
	if r := rows[1]; r.NestID != 5 || r.StartRank != 0 || r.Width != 13 || r.Height != 32 {
		t.Errorf("nest 5 row = %+v, want start 0, 13x32", r)
	}
	if r := rows[0]; r.NestID != 3 || r.StartRank != 13 || r.Width != 19 || r.Height != 15 {
		t.Errorf("nest 3 row = %+v, want start 13, 19x15", r)
	}
	if r := rows[2]; r.NestID != 6 || r.Width != 19 || r.Height != 17 {
		t.Errorf("nest 6 row = %+v, want 19x17", r)
	}
}

func TestScratchNoOverlapWithOldForPaperExample(t *testing.T) {
	// §IV-A: comparing Tables I and II, the scratch method yields no
	// overlap between old and new processors for retained nests 3 and 5.
	old, err := Scratch(grid1024(), paperWeights)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := Scratch(grid1024(), map[int]float64{3: 0.27, 5: 0.42, 6: 0.31})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{3, 5} {
		if inter := old.Rects[id].Intersect(nw.Rects[id]); !inter.Empty() {
			t.Errorf("nest %d: scratch overlap %v, paper reports none", id, inter)
		}
	}
}

func TestDiffusionFig8(t *testing.T) {
	// Fig. 8: delete nests 1, 2, 4; retain 3 (0.27) and 5 (0.42); add 6
	// (0.31). Node 6 fills the free slot next to node 3 because
	// |0.27-0.31| < |0.42-0.31|, and the spare slot is spliced.
	old, err := Scratch(grid1024(), paperWeights)
	if err != nil {
		t.Fatal(err)
	}
	change := Change{
		Deleted:  []int{1, 2, 4},
		Retained: map[int]float64{3: 0.27, 5: 0.42},
		Added:    map[int]float64{6: 0.31},
	}
	nw, err := Diffusion(grid1024(), old, change)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := nw.Tree.String(), "((6:0.31 3:0.27) 5:0.42)"; got != want {
		t.Fatalf("diffusion tree = %s, want %s", got, want)
	}
	// The paper's headline property: considerable overlap for the retained
	// nests, versus none under scratch (previous test).
	for _, id := range []int{3, 5} {
		inter := old.Rects[id].Intersect(nw.Rects[id])
		if inter.Empty() {
			t.Errorf("nest %d: diffusion produced no overlap (old %v, new %v)",
				id, old.Rects[id], nw.Rects[id])
		}
	}
}

func TestDiffusionPureInsertion(t *testing.T) {
	// §IV-B / Fig. 6: with no deletions, a new nest is inserted next to
	// the existing leaf of closest weight. New nest 4 (0.4) pairs with
	// nest 1 (whose updated weight 0.3 is closest).
	g := geom.NewGrid(16, 16)
	old, err := Scratch(g, map[int]float64{1: 0.5, 2: 0.25, 3: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	change := Change{
		Retained: map[int]float64{1: 0.3, 2: 0.15, 3: 0.15},
		Added:    map[int]float64{4: 0.4},
	}
	nw, err := Diffusion(g, old, change)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	l4 := nw.Tree.FindLeaf(4)
	if l4 == nil {
		t.Fatal("nest 4 missing")
	}
	sib := l4.Sibling()
	if sib == nil || !sib.IsLeaf() || sib.ID != 1 {
		t.Fatalf("nest 4 sibling = %v, want leaf 1", sib)
	}
}

func TestDiffusionMoreInsertionsThanDeletions(t *testing.T) {
	// One deletion, three insertions: the single free slot receives a
	// Huffman subtree of all three new nests.
	g := geom.NewGrid(32, 32)
	old, err := Scratch(g, map[int]float64{1: 0.4, 2: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	change := Change{
		Deleted:  []int{1},
		Retained: map[int]float64{2: 0.4},
		Added:    map[int]float64{3: 0.2, 4: 0.2, 5: 0.2},
	}
	nw, err := Diffusion(g, old, change)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(nw.Rects) != 4 {
		t.Fatalf("allocated %d nests, want 4", len(nw.Rects))
	}
	// Nest 2 must keep substantial overlap with its old rectangle.
	if old.Rects[2].Intersect(nw.Rects[2]).Empty() {
		t.Error("retained nest lost all overlap")
	}
}

func TestDiffusionOnlyDeletions(t *testing.T) {
	g := geom.NewGrid(16, 16)
	old, err := Scratch(g, map[int]float64{1: 0.25, 2: 0.25, 3: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	change := Change{
		Deleted:  []int{1, 2},
		Retained: map[int]float64{3: 1.0},
	}
	nw, err := Diffusion(g, old, change)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Rects) != 1 || nw.Rects[3] != g.Bounds() {
		t.Fatalf("single surviving nest should own the whole grid, got %v", nw.Rects)
	}
}

func TestDiffusionAllDeleted(t *testing.T) {
	g := geom.NewGrid(8, 8)
	old, err := Scratch(g, map[int]float64{1: 0.5, 2: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := Diffusion(g, old, Change{Deleted: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Rects) != 0 {
		t.Fatalf("expected empty allocation, got %v", nw.Rects)
	}
}

func TestScratchEmptyAndSingle(t *testing.T) {
	g := geom.NewGrid(8, 8)
	a, err := Scratch(g, nil)
	if err != nil || len(a.Rects) != 0 {
		t.Fatalf("empty scratch = %v, %v", a.Rects, err)
	}
	a, err = Scratch(g, map[int]float64{9: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rects[9] != g.Bounds() {
		t.Fatalf("single nest should own grid, got %v", a.Rects[9])
	}
}

func TestChangeValidate(t *testing.T) {
	g := geom.NewGrid(8, 8)
	old, err := Scratch(g, map[int]float64{1: 0.5, 2: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		c    Change
	}{
		{"deleted missing", Change{Deleted: []int{3}, Retained: map[int]float64{1: 1, 2: 1}}},
		{"retained missing", Change{Retained: map[int]float64{1: 1, 2: 1, 3: 1}}},
		{"added exists", Change{Retained: map[int]float64{1: 1, 2: 1}, Added: map[int]float64{2: 1}}},
		{"overlapping roles", Change{Deleted: []int{1}, Retained: map[int]float64{1: 1, 2: 1}}},
		{"uncovered nest", Change{Retained: map[int]float64{1: 1}}},
		{"bad weight", Change{Retained: map[int]float64{1: 0, 2: 1}}},
		{"bad added weight", Change{Retained: map[int]float64{1: 1, 2: 1}, Added: map[int]float64{3: -1}}},
	}
	for _, c := range cases {
		if err := c.c.Validate(old); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	good := Change{Deleted: []int{1}, Retained: map[int]float64{2: 1}, Added: map[int]float64{3: 0.5}}
	if err := good.Validate(old); err != nil {
		t.Errorf("valid change rejected: %v", err)
	}
}

// randomChange builds a consistent random change against old.
func randomChange(r *rand.Rand, old *Allocation, maxNew int, nextID *int) Change {
	ids := old.NestIDs()
	c := Change{Retained: map[int]float64{}, Added: map[int]float64{}}
	for _, id := range ids {
		if r.Float64() < 0.4 && len(c.Retained) > 0 || len(ids)-len(c.Deleted) > 1 && r.Float64() < 0.35 {
			c.Deleted = append(c.Deleted, id)
		} else {
			c.Retained[id] = 0.05 + r.Float64()
		}
	}
	n := r.Intn(maxNew + 1)
	if len(c.Retained) == 0 && n == 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		c.Added[*nextID] = 0.05 + r.Float64()
		*nextID++
	}
	return c
}

// Property: over random churn sequences, diffusion always yields a valid
// allocation and, on average, more retained-nest overlap than scratch.
func TestDiffusionRandomChurn(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	g := geom.NewGrid(32, 32)
	nextID := 100
	var diffOverlap, scratchOverlap float64
	for trial := 0; trial < 40; trial++ {
		weights := map[int]float64{}
		for i := 0; i < 2+r.Intn(5); i++ {
			weights[nextID] = 0.05 + r.Float64()
			nextID++
		}
		cur, err := Scratch(g, weights)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 8; step++ {
			c := randomChange(r, cur, 3, &nextID)
			if err := c.Validate(cur); err != nil {
				t.Fatalf("generated invalid change: %v", err)
			}
			nw, err := Diffusion(g, cur, c)
			if err != nil {
				t.Fatalf("trial %d step %d: diffusion: %v", trial, step, err)
			}
			if err := nw.Validate(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			sc, err := Scratch(g, c.NewWeights())
			if err != nil {
				t.Fatal(err)
			}
			for id := range c.Retained {
				diffOverlap += float64(cur.Rects[id].Intersect(nw.Rects[id]).Area())
				scratchOverlap += float64(cur.Rects[id].Intersect(sc.Rects[id]).Area())
			}
			cur = nw
			if len(cur.Rects) == 0 {
				break
			}
		}
	}
	if diffOverlap <= scratchOverlap {
		t.Errorf("diffusion overlap %.0f not better than scratch %.0f", diffOverlap, scratchOverlap)
	}
}

func TestMeanAspectRatio(t *testing.T) {
	a, err := Scratch(grid1024(), paperWeights)
	if err != nil {
		t.Fatal(err)
	}
	ar := a.MeanAspectRatio()
	if ar < 1 || ar > 2 {
		t.Fatalf("scratch mean aspect ratio %.2f outside sane range", ar)
	}
	empty := &Allocation{Grid: grid1024(), Rects: map[int]geom.Rect{}}
	if empty.MeanAspectRatio() != 0 {
		t.Fatal("empty allocation aspect ratio should be 0")
	}
}

func TestValidateCatchesBrokenAllocations(t *testing.T) {
	g := geom.NewGrid(8, 8)
	bad := &Allocation{Grid: g, Rects: map[int]geom.Rect{
		1: geom.NewRect(0, 0, 8, 8),
		2: geom.NewRect(4, 4, 4, 4), // overlaps nest 1
	}}
	if err := bad.Validate(); err == nil {
		t.Error("overlap not caught")
	}
	gap := &Allocation{Grid: g, Rects: map[int]geom.Rect{
		1: geom.NewRect(0, 0, 4, 8), // covers half the grid only
	}}
	if err := gap.Validate(); err == nil {
		t.Error("coverage gap not caught")
	}
	outside := &Allocation{Grid: g, Rects: map[int]geom.Rect{
		1: geom.NewRect(0, 0, 16, 4),
	}}
	if err := outside.Validate(); err == nil {
		t.Error("out-of-grid rect not caught")
	}
}

func TestDiffusionInsertionPolicies(t *testing.T) {
	// Both policies must produce valid allocations; the paper's
	// closest-weight policy should give partitions at least as square on
	// a skewed-weight example.
	g := geom.NewGrid(32, 32)
	old, err := Scratch(g, map[int]float64{1: 0.5, 2: 0.25, 3: 0.15, 4: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	change := Change{
		Deleted:  []int{2, 4},
		Retained: map[int]float64{1: 0.45, 3: 0.15},
		Added:    map[int]float64{5: 0.4},
	}
	closest, err := DiffusionWithPolicy(g, old, change, ClosestWeight)
	if err != nil {
		t.Fatal(err)
	}
	first, err := DiffusionWithPolicy(g, old, change, FirstFree)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []*Allocation{closest, first} {
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Diffusion's default must be the paper's closest-weight policy.
	def, err := Diffusion(g, old, change)
	if err != nil {
		t.Fatal(err)
	}
	if def.Tree.String() != closest.Tree.String() {
		t.Fatalf("Diffusion default differs from ClosestWeight: %s vs %s",
			def.Tree, closest.Tree)
	}
}
