package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// The placement WAL makes the control plane's decisions durable: every
// placement, epoch bump, membership transition and terminal state is
// journaled as one CRC-checked JSON line before (or atomically with) the
// in-memory table mutating, and a restarted controller replays the log to
// reconstruct the exact placement table, membership view and epoch
// counters it had when it died — workers keep heartbeating into the new
// process with no re-registration storm, and no adoption fires for a job
// whose owner is alive.
//
// Line format (mirrors the internal/obs ledger and the service checkpoint
// envelope philosophy: every durable artifact is integrity-checked):
//
//	{"crc":<CRC-32C of the rec JSON bytes>,"rec":{...}}\n
//
// A torn or corrupt tail — the final write of a kill -9 — fails the CRC
// or the JSON parse; OpenWAL truncates the file back to the last good
// line, counts the repair, and appends from there. Records before the
// tear were fsynced and survive.

// walOp enumerates the journaled mutations.
const (
	walOpPlace = "place" // job placed on a worker (initial epoch)
	walOpAdopt = "adopt" // job re-homed after its owner died
	walOpMove  = "move"  // job migrated (rebalance, drain) or reconciled
	walOpEpoch = "epoch" // epoch allocated for an attempt (intent, pre-send)
	walOpState = "state" // job reached a terminal state
	// walOpCfg updates a placement's job config in place (a resize changed
	// cores). Deliberately NOT a re-place: replaying a place record resets
	// Epoch and floor, and a cfg change must never reopen an
	// already-allocated epoch for reuse.
	walOpCfg      = "cfg"
	walOpRegister = "register" // worker joined (or changed URL)
	walOpDead     = "dead"     // worker declared dead or deregistered
)

// walRecord is one journaled mutation; fields are op-dependent.
type walRecord struct {
	Op     string          `json:"op"`
	JobID  string          `json:"job,omitempty"`
	Worker string          `json:"worker,omitempty"`
	URL    string          `json:"url,omitempty"`
	Epoch  int64           `json:"epoch,omitempty"`
	State  string          `json:"state,omitempty"`
	Cfg    json.RawMessage `json:"cfg,omitempty"`
}

// walLine is the on-disk envelope of one record.
type walLine struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// wal is an append-only, CRC-per-line, fsync-per-append journal. Control
// mutations are rare (human/job-lifecycle rate, not step rate), so the
// durability of a sync on every append costs nothing that matters.
type wal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// openWAL opens (or creates) the journal at path, repairs any torn tail,
// and returns the decoded records plus the number of corrupt trailing
// lines truncated.
func openWAL(path string) (*wal, []walRecord, int64, error) {
	// A stale .tmp is a compaction that died before its rename; the real
	// WAL is untouched, so the leftover is just garbage to clear.
	os.Remove(path + ".tmp")
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, 0, fmt.Errorf("fleet: open wal: %w", err)
	}
	records, goodBytes, truncated := replayWAL(data)
	if truncated > 0 {
		if err := os.Truncate(path, goodBytes); err != nil {
			return nil, nil, 0, fmt.Errorf("fleet: repair wal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("fleet: open wal: %w", err)
	}
	return &wal{f: f, path: path}, records, truncated, nil
}

// replayWAL decodes records from raw journal bytes, stopping at the first
// line that fails to parse or checksum. It returns the good records, the
// byte length of the good prefix, and the number of bad lines skipped.
// Corruption anywhere poisons everything after it — a mid-file tear means
// the tail's records may describe state built on the lost line, so only
// the clean prefix is trusted.
func replayWAL(data []byte) (records []walRecord, goodBytes int64, truncated int64) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	offset := int64(0)
	for sc.Scan() {
		line := sc.Bytes()
		lineLen := int64(len(line)) + 1 // +1 for the newline Scan strips
		var env walLine
		if err := json.Unmarshal(line, &env); err != nil ||
			crc32.Checksum(env.Rec, walCRC) != env.CRC {
			truncated++
			// Count every remaining line as truncated, then stop.
			for sc.Scan() {
				truncated++
			}
			return records, offset, truncated
		}
		var rec walRecord
		if err := json.Unmarshal(env.Rec, &rec); err != nil {
			truncated++
			for sc.Scan() {
				truncated++
			}
			return records, offset, truncated
		}
		records = append(records, rec)
		offset += lineLen
	}
	return records, offset, truncated
}

// append journals one record durably: marshal, checksum, write, fsync.
func (w *wal) append(rec walRecord) error {
	if w == nil {
		return nil
	}
	line, err := encodeWALLine(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(line); err != nil {
		return err
	}
	return w.f.Sync()
}

// encodeWALLine marshals one record into its CRC-enveloped on-disk line.
func encodeWALLine(rec walRecord) ([]byte, error) {
	recJSON, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(walLine{CRC: crc32.Checksum(recJSON, walCRC), Rec: recJSON})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// compact atomically replaces the journal with a snapshot of the given
// records: write to <path>.tmp, fsync, rename over the live file, then
// swap the append handle. A crash before the rename leaves the old WAL
// intact (openWAL clears the stale .tmp); a crash after it leaves the
// compact WAL, which replays to the same state by construction. Appends
// are held out by w.mu for the duration, so no record can land between
// the snapshot and the swap.
func (w *wal) compact(records []walRecord) error {
	if w == nil {
		return nil
	}
	var buf bytes.Buffer
	for _, rec := range records {
		line, err := encodeWALLine(rec)
		if err != nil {
			return err
		}
		buf.Write(line)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	tmp := w.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("fleet: compact wal: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fleet: compact wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fleet: compact wal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fleet: compact wal: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fleet: compact wal: %w", err)
	}
	nf, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The disk holds the compacted WAL but the old handle points at the
		// replaced inode; surface the error so the caller counts it.
		return fmt.Errorf("fleet: reopen compacted wal: %w", err)
	}
	w.f.Close()
	w.f = nf
	return nil
}

// close syncs and closes the journal.
func (w *wal) close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.f.Sync()
	return w.f.Close()
}
