package fleet

import (
	"context"
	"fmt"
	"io"

	"nestdiff/internal/elastic"
	"nestdiff/internal/service"
)

// autoscaleTarget adapts the controller to elastic.Target: the load view
// comes from the placement table joined with the owning workers' job
// snapshots, and the resize verb goes through the same worker endpoint an
// operator would hit — so autoscaler decisions and manual resizes are
// indistinguishable to the worker, the epochs and the WAL.
type autoscaleTarget struct{ c *Controller }

// Jobs returns one JobLoad per live, non-terminal placement whose owner
// answered. One GET /jobs per owning worker, not per job.
func (t autoscaleTarget) Jobs() ([]elastic.JobLoad, error) {
	c := t.c
	c.mu.Lock()
	byWorker := make(map[string][]*placement)
	for _, id := range c.order {
		p := c.placements[id]
		if p.State.Terminal() {
			continue
		}
		byWorker[p.WorkerID] = append(byWorker[p.WorkerID], p)
	}
	c.mu.Unlock()

	var out []elastic.JobLoad
	for workerID, ps := range byWorker {
		w, ok := c.reg.get(workerID)
		if !ok || !w.Live || c.linkDown(workerID) {
			continue
		}
		var snaps []service.Snapshot
		if err := c.getJSON(w.URL+"/jobs", &snaps); err != nil {
			continue
		}
		idx := make(map[string]service.Snapshot, len(snaps))
		for _, sn := range snaps {
			idx[sn.ID] = sn
		}
		for _, p := range ps {
			sn, ok := idx[p.ID]
			if !ok {
				continue
			}
			c.mu.Lock()
			nx, ny := p.cfg.NX, p.cfg.NY
			c.mu.Unlock()
			load := elastic.JobLoad{
				ID:          p.ID,
				State:       string(sn.State),
				Cores:       sn.Cores,
				ActiveNests: len(sn.ActiveNests),
				NX:          nx,
				NY:          ny,
				StepsLeft:   sn.TotalSteps - sn.Step,
			}
			if sn.LastEvent != nil {
				load.StepSeconds = sn.LastEvent.Metrics.ExecTime
			}
			out = append(out, load)
		}
	}
	return out, nil
}

// Resize posts the resize to the owning worker. The worker applies it at
// its next step boundary; the new core count flows back into the
// placement config through reconcileCores on a later state refresh.
func (t autoscaleTarget) Resize(id string, procs int) error {
	c := t.c
	_, w, err := c.lookupPlacement(id)
	if err != nil {
		return err
	}
	if c.linkDown(w.ID) {
		return fmt.Errorf("%w: link partitioned", errWorkerUnreachable)
	}
	url := fmt.Sprintf("%s/jobs/%s/resize?procs=%d", w.URL, id, procs)
	resp, err := c.client.Post(url, "application/json", nil)
	if err != nil {
		return fmt.Errorf("%w: %v", errWorkerUnreachable, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("fleet: worker %s rejected resize of %s with status %d", w.ID, id, resp.StatusCode)
	}
	c.metrics.autoscaleResizes.Add(1)
	return nil
}

// EnableAutoscaler attaches a fleet autoscaler to this controller: a
// background loop that grows hot jobs and shrinks idle ones against
// cfg.Budget, driving the same per-job resize path operators use. Call
// before serving traffic; Close stops the loop. With cfg.Budget <= 0 the
// loop is a no-op and nothing is started.
func (c *Controller) EnableAutoscaler(cfg elastic.AutoscalerConfig) error {
	if cfg.Budget <= 0 {
		return nil
	}
	as, err := elastic.NewAutoscaler(autoscaleTarget{c}, cfg)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.autoscaler = as
	c.autoCancel = cancel
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		as.Run(ctx)
	}()
	return nil
}

// Autoscaler returns the attached autoscaler (nil when disabled) — a
// testing and stats aid.
func (c *Controller) Autoscaler() *elastic.Autoscaler { return c.autoscaler }

var _ elastic.Target = autoscaleTarget{}
