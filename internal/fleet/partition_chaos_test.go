package fleet

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"nestdiff/internal/faults"
	"nestdiff/internal/service"
)

// The split-brain chaos suite. KillWorker drills (chaos_test.go) model a
// machine dying; these drills model the nastier failure — a machine that
// is perfectly healthy but unreachable. The partitioned worker keeps
// stepping its job and writing to the shared checkpoint store while the
// controller, seeing only silence, declares it dead and re-homes the job
// onto a survivor under a bumped placement epoch. Two executions of the
// same job are now alive at once; epoch fencing must guarantee that
// exactly one survives, that the stale one never clobbers the store, and
// that the surviving run is bit-identical to a run that was never
// disturbed.

// startPartitionNode boots a fleet worker whose agent reports job epochs
// (Sched) and whose control links can be partitioned (Faults). The plan is
// shared with the controller so both halves of a link rule point at the
// same direction map.
func startPartitionNode(t *testing.T, ctlURL, id, ckptDir string, plan *faults.Plan) *fleetNode {
	t.Helper()
	sched := service.NewScheduler(service.SchedulerConfig{
		Workers:         1,
		CheckpointDir:   ckptDir,
		DisableRecovery: true,
		Faults:          plan,
	})
	srv := httptest.NewServer(service.NewHandler(sched))
	agent, err := service.StartAgent(service.AgentConfig{
		ControllerURL:     ctlURL,
		WorkerID:          id,
		AdvertiseURL:      srv.URL,
		HeartbeatInterval: 25 * time.Millisecond,
		Sched:             sched,
		Faults:            plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		agent.Stop()
		srv.Close()
		sched.Shutdown(context.Background())
	})
	return &fleetNode{sched: sched, srv: srv, agent: agent}
}

// waitLiveWorkers blocks until the controller sees n live workers.
func waitLiveWorkers(t *testing.T, ctl *Controller, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(ctl.reg.live()) < n && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := len(ctl.reg.live()); got < n {
		t.Fatalf("only %d of %d workers registered", got, n)
	}
}

// waitAdoption blocks until the job's placement records exactly one
// adoption, returning the placement.
func waitAdoption(t *testing.T, ctl *Controller) placement {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if ps := ctl.Placements(); len(ps) == 1 && ps[0].Adoptions == 1 {
			return ps[0]
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for adoption; placements = %+v", ctl.Placements())
	return placement{}
}

// TestFleetChaosSplitBrainPartitionFencesStaleOwner is the suite's core
// claim. A full (both-direction) partition isolates the job's owner past
// the liveness deadline; the survivor adopts the job under epoch 2 and
// runs it to completion while the old owner — alive the whole time —
// keeps executing its stale epoch-1 copy. The heartbeat direction is then
// healed. The drill passes only if the stale copy is fenced (not
// cancelled, not failed, and without ever deleting or overwriting the
// adopter's store file) and the adopted run finishes bit-identically to
// an undisturbed reference run: same nest set, same adaptation-event
// trace, same cumulative cost model.
func TestFleetChaosSplitBrainPartitionFencesStaleOwner(t *testing.T) {
	const steps = 90
	cfg := chaosFleetJob(steps)
	// Slow the steps down so the partition, the liveness expiry, the
	// adoption and the fence all land while both executions are mid-run.
	cfg.StepDelayMS = 20

	// Ground truth: the same job on an undisturbed single scheduler.
	ref := service.NewScheduler(service.SchedulerConfig{Workers: 1})
	defer ref.Shutdown(context.Background())
	refSnap, err := ref.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refFinal := waitSched(t, ref, refSnap.ID, "terminal", func(sn service.Snapshot) bool {
		return sn.State.Terminal()
	})
	if refFinal.State != service.StateDone {
		t.Fatalf("fault-free run finished %s (error %q)", refFinal.State, refFinal.Error)
	}
	refEvents, err := ref.JobEvents(refSnap.ID)
	if err != nil {
		t.Fatal(err)
	}

	ckptDir := t.TempDir()
	victimID := BuildRing([]string{"wA", "wB"}, 0).Owner("f-1")
	survivorID := "wA"
	if victimID == "wA" {
		survivorID = "wB"
	}

	// Step 35 of the victim's pipeline severs both directions of the
	// victim↔controller link: heartbeats vanish and the controller cannot
	// reach the victim — but unlike KillWorker, the victim's scheduler
	// keeps running and checkpointing.
	plan := faults.NewPlan(11).
		PartitionAtStep(35, victimID, faults.ControllerNode).
		PartitionAtStep(35, faults.ControllerNode, victimID)

	ctl, ctlSrv := startController(t, Config{
		LivenessDeadline: 250 * time.Millisecond,
		SweepInterval:    25 * time.Millisecond,
		Faults:           plan,
	})
	victim := startPartitionNode(t, ctlSrv.URL, victimID, ckptDir, plan)
	survivor := startPartitionNode(t, ctlSrv.URL, survivorID, ckptDir, nil)
	waitLiveWorkers(t, ctl, 2)

	resp := submitJob(t, ctlSrv.URL, cfg)
	if resp.StatusCode != 201 {
		t.Fatalf("fleet submit = %d", resp.StatusCode)
	}
	snap := decodeSnap(t, resp)
	if snap.ID != "f-1" {
		t.Fatalf("fleet job ID = %q", snap.ID)
	}

	// The controller must declare the silent victim dead and re-home the
	// job onto the survivor under a bumped epoch.
	adopted := waitAdoption(t, ctl)
	if adopted.WorkerID != survivorID {
		t.Fatalf("adopted onto %s, want survivor %s", adopted.WorkerID, survivorID)
	}
	if adopted.Epoch != 2 {
		t.Fatalf("adoption epoch = %d, want 2", adopted.Epoch)
	}

	// Heal the heartbeat direction: the victim's beats flow again, carrying
	// its stale epoch-1 claim on f-1, and the controller's reply orders the
	// fence. The controller→victim direction stays down, which pins the job
	// on the survivor (the ring would otherwise migrate it straight back to
	// its original owner) so the drill's assertions are deterministic.
	plan.Heal(victimID, faults.ControllerNode)

	final := pollFleet(t, ctlSrv.URL, snap.ID, "done on the survivor", func(sn service.Snapshot) bool {
		return sn.State == service.StateDone
	})

	// Exactly one surviving execution: the victim's copy must end fenced —
	// killed as superseded, not cancelled and not failed — through either
	// fencing path (the heartbeat reply after the heal, or the store
	// refusing its stale-epoch checkpoint write).
	fencedSnap := waitSched(t, victim.sched, snap.ID, "fenced stale copy", func(sn service.Snapshot) bool {
		return sn.State == service.StateFenced
	})
	if fencedSnap.State != service.StateFenced {
		t.Fatalf("victim copy ended %s, want fenced", fencedSnap.State)
	}
	if got := victim.sched.Metrics().JobsFenced(); got != 1 {
		t.Fatalf("victim jobsFenced = %d, want 1", got)
	}

	// The placement stayed on the survivor under the adoption epoch.
	ps := ctl.Placements()
	if len(ps) != 1 || ps[0].WorkerID != survivorID || ps[0].Adoptions != 1 || ps[0].Epoch != 2 {
		t.Fatalf("placement after split-brain = %+v", ps)
	}
	// At least the partitioned victim was declared dead. Not exactly one:
	// under CI load the survivor can transiently miss the (deliberately
	// tight) liveness deadline too — a detector false-positive the fleet
	// self-heals by re-registration, and which cannot move the job because
	// the controller→victim link is still down. The adoption count below is
	// the assertion that actually guards against double execution.
	if got := ctl.Metrics().WorkersDead(); got < 1 {
		t.Fatalf("workers dead = %d, want >= 1 (the partitioned victim)", got)
	}
	if got := ctl.Metrics().Adoptions(); got != 1 {
		t.Fatalf("adoptions = %d, want exactly 1", got)
	}
	if survivor.sched.Metrics().JobsAdopted() != 1 {
		t.Fatal("survivor did not count the adoption")
	}

	// Bit-identical: nest set, event trace and cost model all match the
	// undisturbed run.
	if final.Step != steps {
		t.Fatalf("adopted run finished at step %d, want %d", final.Step, steps)
	}
	if !reflect.DeepEqual(final.ActiveNests, refFinal.ActiveNests) {
		t.Fatalf("final nest sets diverged:\nfleet      %+v\nfault-free %+v",
			final.ActiveNests, refFinal.ActiveNests)
	}
	events := fetchFleetEvents(t, ctlSrv.URL, snap.ID)
	if !reflect.DeepEqual(events, refEvents) {
		t.Fatalf("event traces diverged: fleet %d events, fault-free %d events\nfleet      %+v\nfault-free %+v",
			len(events), len(refEvents), events, refEvents)
	}
	if final.ExecTime != refFinal.ExecTime || final.RedistTime != refFinal.RedistTime {
		t.Fatalf("cumulative costs diverged: exec %g vs %g, redist %g vs %g",
			final.ExecTime, refFinal.ExecTime, final.RedistTime, refFinal.RedistTime)
	}

	// No stale-epoch store writes survived: the adopter finished and
	// removed its own (epoch-2) file — the epoch guard let it — and the
	// fenced copy never touched the store, so nothing is left behind.
	if _, err := os.Stat(filepath.Join(ckptDir, snap.ID+".ckpt")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint store still holds %s.ckpt after the adopter finished (stat err %v)", snap.ID, err)
	}

	// The plan logged the two scheduled partitions and the explicit heal.
	var parts, heals int
	for _, inj := range plan.Injections() {
		switch inj.Kind {
		case faults.KindLinkPartition:
			parts++
		case faults.KindLinkHeal:
			heals++
		}
	}
	if parts != 2 || heals != 1 {
		t.Fatalf("fault log recorded %d partitions and %d heals, want 2 and 1:\n%+v",
			parts, heals, plan.Injections())
	}
}

// TestFleetChaosAsymmetricPartitionHealMigratesHome drills the asymmetric
// partition (victim→controller blocked, controller→victim open — only one
// direction of a link rule installed) through the full cycle: heartbeats
// vanish, the victim is declared dead, the survivor adopts under epoch 2;
// after the heal the victim's first heartbeat resurrects it, its stale
// copy is fenced, and — because the resurrected victim is again the ring
// owner — the rebalance pass migrates the job home under a further-bumped
// epoch, re-importing over the fenced copy. The run must still finish
// bit-identically to the undisturbed reference.
func TestFleetChaosAsymmetricPartitionHealMigratesHome(t *testing.T) {
	const steps = 100
	cfg := chaosFleetJob(steps)
	cfg.StepDelayMS = 20

	ref := service.NewScheduler(service.SchedulerConfig{Workers: 1})
	defer ref.Shutdown(context.Background())
	refSnap, err := ref.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refFinal := waitSched(t, ref, refSnap.ID, "terminal", func(sn service.Snapshot) bool {
		return sn.State.Terminal()
	})
	if refFinal.State != service.StateDone {
		t.Fatalf("fault-free run finished %s (error %q)", refFinal.State, refFinal.Error)
	}
	refEvents, err := ref.JobEvents(refSnap.ID)
	if err != nil {
		t.Fatal(err)
	}

	ckptDir := t.TempDir()
	victimID := BuildRing([]string{"wA", "wB"}, 0).Owner("f-1")
	survivorID := "wA"
	if victimID == "wA" {
		survivorID = "wB"
	}

	// Only the heartbeat direction goes down, early (step 20): the
	// controller could still reach the victim but, hearing nothing, must
	// treat it as dead all the same.
	plan := faults.NewPlan(13).PartitionAtStep(20, victimID, faults.ControllerNode)

	ctl, ctlSrv := startController(t, Config{
		LivenessDeadline: 250 * time.Millisecond,
		SweepInterval:    25 * time.Millisecond,
		Faults:           plan,
	})
	victim := startPartitionNode(t, ctlSrv.URL, victimID, ckptDir, plan)
	startPartitionNode(t, ctlSrv.URL, survivorID, ckptDir, nil)
	waitLiveWorkers(t, ctl, 2)

	resp := submitJob(t, ctlSrv.URL, cfg)
	if resp.StatusCode != 201 {
		t.Fatalf("fleet submit = %d", resp.StatusCode)
	}
	snap := decodeSnap(t, resp)

	adopted := waitAdoption(t, ctl)
	if adopted.WorkerID != survivorID || adopted.Epoch != 2 {
		t.Fatalf("adoption placement = %+v, want survivor %s at epoch 2", adopted, survivorID)
	}

	// Heal. The victim's next heartbeat resurrects it; the reply fences its
	// stale copy; and the ring — whole again — pulls the job home through
	// the migration path under epoch ≥ 3.
	plan.Heal(victimID, faults.ControllerNode)

	final := pollFleet(t, ctlSrv.URL, snap.ID, "done after migrating home", func(sn service.Snapshot) bool {
		return sn.State == service.StateDone
	})

	ps := ctl.Placements()
	if len(ps) != 1 || ps[0].WorkerID != victimID {
		t.Fatalf("job finished on %+v, want the healed original owner %s", ps, victimID)
	}
	if ps[0].Epoch < 3 {
		t.Fatalf("final epoch = %d, want >= 3 (place, adopt, migrate home)", ps[0].Epoch)
	}
	if ps[0].Adoptions != 1 {
		t.Fatalf("adoptions = %d, want exactly 1", ps[0].Adoptions)
	}
	if got := ctl.Metrics().Migrations(); got < 1 {
		t.Fatalf("migrations = %d, want >= 1 (the homecoming)", got)
	}
	// The victim's stale epoch-1 copy was fenced before the homecoming
	// import replaced it.
	if got := victim.sched.Metrics().JobsFenced(); got < 1 {
		t.Fatalf("victim jobsFenced = %d, want >= 1", got)
	}
	vsnap, err := victim.sched.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if vsnap.State != service.StateDone || vsnap.Step != steps {
		t.Fatalf("homecoming copy ended %s at step %d, want done at %d", vsnap.State, vsnap.Step, steps)
	}

	if !reflect.DeepEqual(final.ActiveNests, refFinal.ActiveNests) {
		t.Fatalf("final nest sets diverged:\nfleet      %+v\nfault-free %+v",
			final.ActiveNests, refFinal.ActiveNests)
	}
	events := fetchFleetEvents(t, ctlSrv.URL, snap.ID)
	if !reflect.DeepEqual(events, refEvents) {
		t.Fatalf("event traces diverged (%d vs %d events)", len(events), len(refEvents))
	}
	if final.ExecTime != refFinal.ExecTime || final.RedistTime != refFinal.RedistTime {
		t.Fatalf("cumulative costs diverged: exec %g vs %g, redist %g vs %g",
			final.ExecTime, refFinal.ExecTime, final.RedistTime, refFinal.RedistTime)
	}
}
