package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"nestdiff/internal/service"
)

// Migration is the deliberate half of job movement — adoption handles
// dead owners, migration handles live ones. Two triggers share the same
// mechanics:
//
//   - Join rebalance: a worker joining the ring becomes the rightful owner
//     of ~jobs/N placements (the consistent ring's minimal-movement
//     property guarantees only jobs whose ring owner IS the newcomer ever
//     move — never between two pre-existing workers). Each sweep migrates
//     those placements to where the ring says they belong, exactly like
//     the paper's diffusion pass walks work toward under-loaded
//     processors.
//   - Drain: POST /fleet/drain (or a worker's SIGTERM) excludes the worker
//     from the ring and migrates everything it owns, so it can leave
//     without waiting out the liveness deadline and without a single lost
//     step.
//
// One job moves at a time: pause at a step boundary → export the
// checkpoint envelope → import on the new owner under a bumped epoch →
// resume there → fence the old copy. A failure at any point resumes the
// job where it was; the sweep retries next pass.

// errUnknownWorker reports a drain/deregister for a worker never seen.
var errUnknownWorker = fmt.Errorf("fleet: unknown worker")

// rebalance migrates every non-terminal placement whose live owner is no
// longer its ring owner — after a join or a drain this is exactly the
// minimal set the ring says must move.
func (c *Controller) rebalance() {
	c.moveMu.Lock()
	defer c.moveMu.Unlock()
	c.mu.Lock()
	candidates := make([]*placement, 0)
	for _, id := range c.order {
		p := c.placements[id]
		if !p.State.Terminal() {
			candidates = append(candidates, p)
		}
	}
	c.mu.Unlock()
	for _, p := range candidates {
		c.mu.Lock()
		curID := p.WorkerID
		c.mu.Unlock()
		target, ok := c.reg.owner(p.ID)
		if !ok || target.ID == curID {
			continue
		}
		cur, ok := c.reg.get(curID)
		if !ok || !cur.Live {
			continue // dead owner: the adoption pass handles it
		}
		c.migrate(p, cur, target)
	}
}

// Drain marks a worker as deliberately leaving and migrates everything it
// owns to the ring's new choices, one job at a time. It returns the
// number of placements moved; placements that could not move (no other
// worker, or a migration failure) are retried by the sweep while the
// worker stays draining. Draining is idempotent and cancelled by a
// re-registration.
func (c *Controller) Drain(workerID string) (int, error) {
	w, ok := c.reg.get(workerID)
	if !ok {
		return 0, fmt.Errorf("%w: %q", errUnknownWorker, workerID)
	}
	if c.reg.markDraining(workerID) {
		c.metrics.drains.Add(1)
	}
	// Serialize against the sweep's rebalance: a pass already in flight may
	// be moving this worker's jobs under the rebuilt ring right now.
	c.moveMu.Lock()
	defer c.moveMu.Unlock()
	c.mu.Lock()
	var owned []*placement
	for _, id := range c.order {
		p := c.placements[id]
		if p.WorkerID == workerID && !p.State.Terminal() {
			owned = append(owned, p)
		}
	}
	c.mu.Unlock()
	for _, p := range owned {
		target, ok := c.reg.owner(p.ID)
		if !ok || target.ID == workerID {
			continue // nowhere to go; the sweep retries when workers exist
		}
		c.migrate(p, w, target)
	}
	// Report what actually left, whoever moved it — a concurrent sweep may
	// have re-homed some of these placements before this pass got to them.
	moved := 0
	c.mu.Lock()
	for _, p := range owned {
		if p.WorkerID != workerID || p.State.Terminal() {
			moved++
		}
	}
	c.mu.Unlock()
	return moved, nil
}

// Deregister removes a worker from the fleet immediately — the clean-
// shutdown path a SIGTERM'd nestserved takes so survivors adopt its jobs
// on the next sweep instead of burning the liveness deadline telling a
// shutdown from a crash.
func (c *Controller) Deregister(workerID string) bool {
	if !c.reg.markDead(workerID) {
		return false
	}
	c.journal(walRecord{Op: walOpDead, Worker: workerID})
	c.metrics.workersDeregistered.Add(1)
	return true
}

// migrate moves one placement from a live worker to another: pause →
// poll to the step boundary → export → import under epoch+1 → resume →
// fence the old copy. Returns whether the placement moved.
func (c *Controller) migrate(p *placement, from, to WorkerInfo) bool {
	if c.linkDown(from.ID) || c.linkDown(to.ID) {
		return false
	}
	// Recheck ownership under the lock: the placement may have moved (an
	// adoption, or an earlier migration pass) since the caller collected
	// its candidates — pausing and polling the old worker's dead copy would
	// fold a stale terminal state into a live placement.
	c.mu.Lock()
	stillOwned := p.WorkerID == from.ID && !p.State.Terminal()
	c.mu.Unlock()
	if !stillOwned {
		return false
	}
	id := p.ID
	// Pause; 409 means the job is already paused or terminal, which the
	// poll below sorts out.
	if code, _ := c.postWorker(from.URL+"/jobs/"+id+"/pause", nil); code/100 != 2 && code != http.StatusConflict {
		c.metrics.migrationFailures.Add(1)
		return false
	}
	snap, ok := c.awaitPaused(from, id)
	if !ok {
		c.metrics.migrationFailures.Add(1)
		return false
	}
	if snap.State.Terminal() {
		// Finished while we were deciding; nothing to move.
		c.foldState(p, snap.State)
		return false
	}
	env, err := c.getBytes(from.URL + "/jobs/" + id + "/checkpoint")
	if err != nil {
		c.metrics.migrationFailures.Add(1)
		c.postWorker(from.URL+"/jobs/"+id+"/resume", nil)
		return false
	}
	newEpoch := c.allocEpoch(p)
	code, err := c.postEnvelope(to.URL+"/jobs/"+id+"/import", env, newEpoch)
	if err != nil || code/100 != 2 {
		c.metrics.migrationFailures.Add(1)
		c.postWorker(from.URL+"/jobs/"+id+"/resume", nil)
		return false
	}
	if code, _ := c.postWorker(to.URL+"/jobs/"+id+"/resume", nil); code/100 != 2 {
		// Imported but not resumed: the new copy is paused there and the
		// sweep's refresh will surface it; still complete the move so
		// exactly one worker owns the job.
		c.metrics.migrationFailures.Add(1)
	}
	c.journal(walRecord{Op: walOpMove, JobID: id, Worker: to.ID, Epoch: newEpoch})
	c.mu.Lock()
	p.WorkerID = to.ID
	p.Epoch = newEpoch
	p.State = service.StateQueued
	c.mu.Unlock()
	c.metrics.migrations.Add(1)
	// Kill the paused source copy. Best-effort: if this fails the epoch
	// fence still protects the store, and the next heartbeat report fences
	// the stale copy through the control plane.
	c.fenceWorkerJob(from, id, newEpoch)
	return true
}

// awaitPaused polls a job until it leaves the running state (paused or
// terminal), bounded so a wedged worker cannot stall the sweep.
func (c *Controller) awaitPaused(w WorkerInfo, id string) (service.Snapshot, bool) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		var snap service.Snapshot
		if err := c.getJSON(w.URL+"/jobs/"+id, &snap); err != nil {
			return service.Snapshot{}, false
		}
		if snap.State == service.StatePaused || snap.State.Terminal() {
			return snap, true
		}
		if time.Now().After(deadline) {
			return service.Snapshot{}, false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fenceWorkerJob tells a worker to kill its local copy of a job that now
// runs elsewhere under newEpoch.
func (c *Controller) fenceWorkerJob(w WorkerInfo, id string, newEpoch int64) {
	if c.linkDown(w.ID) {
		return
	}
	body, _ := json.Marshal(struct {
		ID    string `json:"id"`
		Epoch int64  `json:"epoch"`
	}{id, newEpoch})
	if code, err := c.postWorker(w.URL+"/fleet/fence", body); err == nil && code/100 == 2 {
		c.metrics.fencesIssued.Add(1)
	}
}

// fenceList answers one heartbeat's job-epoch report: every reported job
// that the placement table assigns to a different worker — or to this
// worker under a higher epoch — is a stale copy the worker must kill.
// This is how a partitioned-then-healed worker learns its jobs moved on
// without it.
//
// A report ABOVE the table's epoch is the opposite case: epochs are
// allocated uniquely by this controller (allocEpoch), so a copy running
// under a higher epoch than the placement records can only be an
// adoption or import that succeeded while its reply was lost — or one
// whose table update is a few microseconds behind the worker's first
// heartbeat. Either way the copy is the job's rightful execution, and
// the table is reconciled to it instead of killing the survivor of the
// controller's own amnesia.
func (c *Controller) fenceList(workerID string, jobs []service.JobEpochReport) []service.JobEpochReport {
	var fenced []service.JobEpochReport
	var reclaimed []walRecord
	c.mu.Lock()
	for _, r := range jobs {
		p, ok := c.placements[r.ID]
		if !ok {
			continue // not fleet-managed by this controller; leave it alone
		}
		if r.Epoch > p.Epoch {
			p.WorkerID = workerID
			p.Epoch = r.Epoch
			if r.Epoch > p.floor {
				p.floor = r.Epoch
			}
			reclaimed = append(reclaimed, walRecord{Op: walOpMove, JobID: r.ID, Worker: workerID, Epoch: r.Epoch})
			continue
		}
		if p.WorkerID != workerID || r.Epoch < p.Epoch {
			fenced = append(fenced, service.JobEpochReport{ID: r.ID, Epoch: p.Epoch})
		}
	}
	c.mu.Unlock()
	for _, rec := range reclaimed {
		c.journal(rec)
		c.metrics.reconciles.Add(1)
	}
	c.metrics.fencesIssued.Add(int64(len(fenced)))
	return fenced
}

// postWorker POSTs a control message (nil body allowed) to a worker URL.
func (c *Controller) postWorker(url string, body []byte) (int, error) {
	resp, err := c.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// postEnvelope ships a checkpoint envelope to a worker's import endpoint
// under the migration's bumped epoch.
func (c *Controller) postEnvelope(url string, env []byte, epoch int64) (int, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(env))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-Fleet-Epoch", fmt.Sprintf("%d", epoch))
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// getBytes fetches a worker endpoint raw (checkpoint envelopes).
func (c *Controller) getBytes(url string) ([]byte, error) {
	resp, err := c.client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("fleet: GET %s: status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
