package fleet

import (
	"fmt"
	"io"
	"sync/atomic"

	"nestdiff/internal/service"
)

// metrics holds the controller's own counters. Fleet-wide simulation
// metrics are not mirrored here — GET /metrics aggregates them live from
// the workers' /statz, so the controller never becomes a stale cache of
// worker truth.
type metrics struct {
	jobsPlaced          atomic.Int64
	placementFailures   atomic.Int64
	rejectedSaturated   atomic.Int64
	adoptions           atomic.Int64
	adoptionFailures    atomic.Int64
	workersRegistered   atomic.Int64
	workersDead         atomic.Int64
	workersDeregistered atomic.Int64
	proxyErrors         atomic.Int64
	migrations          atomic.Int64 // placements moved by join-rebalance or drain
	migrationFailures   atomic.Int64 // migrations aborted (job resumed in place)
	drains              atomic.Int64 // drain requests accepted
	fencesIssued        atomic.Int64 // fence commands sent (push or heartbeat reply)
	reconciles          atomic.Int64 // placements reconciled to a higher-epoch report
	walRecords          atomic.Int64 // journal records appended or replayed
	walTruncations      atomic.Int64 // corrupt tail lines dropped at startup
	walFailures         atomic.Int64 // journal opens/appends that failed
	walCompactions      atomic.Int64 // WAL snapshot+truncate passes completed
	resizesObserved     atomic.Int64 // placement core counts reconciled after worker resizes
	autoscaleResizes    atomic.Int64 // resize commands issued by the fleet autoscaler
}

func newMetrics() *metrics { return &metrics{} }

// Accessors for tests.
func (m *metrics) JobsPlaced() int64        { return m.jobsPlaced.Load() }
func (m *metrics) PlacementFailures() int64 { return m.placementFailures.Load() }
func (m *metrics) RejectedSaturated() int64 { return m.rejectedSaturated.Load() }
func (m *metrics) Adoptions() int64         { return m.adoptions.Load() }
func (m *metrics) AdoptionFailures() int64  { return m.adoptionFailures.Load() }
func (m *metrics) WorkersDead() int64       { return m.workersDead.Load() }
func (m *metrics) Migrations() int64        { return m.migrations.Load() }
func (m *metrics) MigrationFailures() int64 { return m.migrationFailures.Load() }
func (m *metrics) FencesIssued() int64      { return m.fencesIssued.Load() }
func (m *metrics) Drains() int64            { return m.drains.Load() }
func (m *metrics) Reconciles() int64        { return m.reconciles.Load() }
func (m *metrics) WALTruncations() int64    { return m.walTruncations.Load() }
func (m *metrics) WALCompactions() int64    { return m.walCompactions.Load() }
func (m *metrics) ResizesObserved() int64   { return m.resizesObserved.Load() }
func (m *metrics) AutoscaleResizes() int64  { return m.autoscaleResizes.Load() }

// FleetStats is the aggregated view GET /metrics and GET /statz expose:
// controller counters plus the sum of every live worker's WorkerStats.
type FleetStats struct {
	WorkersLive  int `json:"workers_live"`
	WorkersTotal int `json:"workers_total"`

	JobsPlaced        int64 `json:"jobs_placed"`
	PlacementFailures int64 `json:"placement_failures"`
	RejectedSaturated int64 `json:"rejected_saturated"`
	Adoptions         int64 `json:"adoptions"`
	AdoptionFailures  int64 `json:"adoption_failures"`
	WorkersDead       int64 `json:"workers_dead"`
	Deregistered      int64 `json:"workers_deregistered"`
	ProxyErrors       int64 `json:"proxy_errors"`
	Migrations        int64 `json:"migrations"`
	MigrationFailures int64 `json:"migration_failures"`
	Drains            int64 `json:"drains"`
	FencesIssued      int64 `json:"fences_issued"`
	Reconciles        int64 `json:"placements_reconciled"`
	WALRecords        int64 `json:"wal_records"`
	WALTruncations    int64 `json:"wal_truncations"`
	WALFailures       int64 `json:"wal_failures"`
	WALCompactions    int64 `json:"wal_compactions"`
	ResizesObserved   int64 `json:"resizes_observed"`
	AutoscaleResizes  int64 `json:"autoscale_resizes"`
	AutoscaleGrows    int64 `json:"autoscale_grows"`
	AutoscaleShrinks  int64 `json:"autoscale_shrinks"`
	AutoscaleFailures int64 `json:"autoscale_failures"`

	// Placements is the full placement table (id, worker, state, epoch,
	// adoptions) — the durable state a WAL replay must reproduce exactly,
	// which is why /statz carries it verbatim.
	Placements []placement `json:"placements"`

	// Sums over live workers' /statz; UnreachableWorkers counts live
	// workers whose /statz fetch failed (their share is missing from the
	// sums below).
	UnreachableWorkers int                      `json:"unreachable_workers"`
	Jobs               map[service.JobState]int `json:"jobs"`
	QueueDepth         int                      `json:"queue_depth"`
	QueueCapacity      int                      `json:"queue_capacity"`
	WorkerSlots        int                      `json:"worker_slots"`
	StepsExecuted      int64                    `json:"steps_executed"`
	JobsSubmitted      int64                    `json:"jobs_submitted"`
	JobsCompleted      int64                    `json:"jobs_completed"`
	JobsFailed         int64                    `json:"jobs_failed"`
	JobsImported       int64                    `json:"jobs_imported"`
	JobsAdopted        int64                    `json:"jobs_adopted"`
	QueueRejects       int64                    `json:"queue_full_rejections"`
	CkptBytesTotal     int64                    `json:"checkpoint_bytes_total"`
	CkptsFull          int64                    `json:"checkpoints_full"`
	CkptsDelta         int64                    `json:"checkpoints_delta"`
	CkptAppends        int64                    `json:"checkpoint_appends"`
	CkptsTruncated     int64                    `json:"checkpoints_truncated"`
	TileCacheHits      int64                    `json:"tile_cache_hits"`
	TileCacheMisses    int64                    `json:"tile_cache_misses"`
	TileCacheEvictions int64                    `json:"tile_cache_evictions"`
	TileCacheBytes     int64                    `json:"tile_cache_bytes"`
}

// Stats fans out to every live worker's /statz and folds the results into
// one fleet-wide view.
func (c *Controller) Stats() FleetStats {
	m := c.metrics
	fs := FleetStats{
		JobsPlaced:        m.jobsPlaced.Load(),
		PlacementFailures: m.placementFailures.Load(),
		RejectedSaturated: m.rejectedSaturated.Load(),
		Adoptions:         m.adoptions.Load(),
		AdoptionFailures:  m.adoptionFailures.Load(),
		WorkersDead:       m.workersDead.Load(),
		Deregistered:      m.workersDeregistered.Load(),
		ProxyErrors:       m.proxyErrors.Load(),
		Migrations:        m.migrations.Load(),
		MigrationFailures: m.migrationFailures.Load(),
		Drains:            m.drains.Load(),
		FencesIssued:      m.fencesIssued.Load(),
		Reconciles:        m.reconciles.Load(),
		WALRecords:        m.walRecords.Load(),
		WALTruncations:    m.walTruncations.Load(),
		WALFailures:       m.walFailures.Load(),
		WALCompactions:    m.walCompactions.Load(),
		ResizesObserved:   m.resizesObserved.Load(),
		AutoscaleResizes:  m.autoscaleResizes.Load(),
		Placements:        c.Placements(),
		Jobs:              make(map[service.JobState]int),
	}
	if as := c.autoscaler; as != nil {
		fs.AutoscaleGrows, fs.AutoscaleShrinks, fs.AutoscaleFailures = as.Counters()
	}
	fs.WorkersTotal = len(c.reg.all())
	for _, w := range c.reg.live() {
		fs.WorkersLive++
		if c.linkDown(w.ID) {
			fs.UnreachableWorkers++
			continue
		}
		var ws service.WorkerStats
		if err := c.getJSON(w.URL+"/statz", &ws); err != nil {
			fs.UnreachableWorkers++
			continue
		}
		for state, n := range ws.Jobs {
			fs.Jobs[state] += n
		}
		fs.QueueDepth += ws.QueueDepth
		fs.QueueCapacity += ws.QueueCapacity
		fs.WorkerSlots += ws.Workers
		fs.StepsExecuted += ws.StepsExecuted
		fs.JobsSubmitted += ws.JobsSubmitted
		fs.JobsCompleted += ws.JobsCompleted
		fs.JobsFailed += ws.JobsFailed
		fs.JobsImported += ws.JobsImported
		fs.JobsAdopted += ws.JobsAdopted
		fs.QueueRejects += ws.QueueRejects
		fs.CkptBytesTotal += ws.CkptBytesTotal
		fs.CkptsFull += ws.CkptsFull
		fs.CkptsDelta += ws.CkptsDelta
		fs.CkptAppends += ws.CkptAppends
		fs.CkptsTruncated += ws.CkptsTruncated
		fs.TileCacheHits += ws.TileCacheHits
		fs.TileCacheMisses += ws.TileCacheMisses
		fs.TileCacheEvictions += ws.TileCacheEvictions
		fs.TileCacheBytes += ws.TileCacheBytes
	}
	return fs
}

// WritePrometheus renders the fleet-wide view in Prometheus text
// exposition format, prefixed nestctl_.
func (c *Controller) WritePrometheus(w io.Writer) {
	fs := c.Stats()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP nestctl_%s %s\n# TYPE nestctl_%s counter\nnestctl_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP nestctl_%s %s\n# TYPE nestctl_%s gauge\nnestctl_%s %d\n", name, help, name, name, v)
	}
	gauge("fleet_workers_live", "Workers currently passing liveness.", int64(fs.WorkersLive))
	gauge("fleet_workers_total", "Workers ever registered (live and dead).", int64(fs.WorkersTotal))
	gauge("fleet_workers_unreachable", "Live workers whose stats fetch failed this scrape.", int64(fs.UnreachableWorkers))
	counter("fleet_jobs_placed_total", "Jobs placed onto workers by the controller.", fs.JobsPlaced)
	counter("fleet_placement_failures_total", "Placements rejected or unreachable at the worker.", fs.PlacementFailures)
	counter("fleet_jobs_rejected_total", "Submissions shed with 429 by fleet admission.", fs.RejectedSaturated)
	counter("fleet_adoptions_total", "Jobs adopted by survivors after a worker death.", fs.Adoptions)
	counter("fleet_adoption_failures_total", "Adoption attempts that failed (retried each sweep).", fs.AdoptionFailures)
	counter("fleet_workers_dead_total", "Workers declared dead after missing the liveness deadline.", fs.WorkersDead)
	counter("fleet_workers_deregistered_total", "Workers that left cleanly via deregister.", fs.Deregistered)
	counter("fleet_proxy_errors_total", "Job API proxy calls that failed at the worker.", fs.ProxyErrors)
	counter("fleet_migrations_total", "Placements moved by join-rebalance or drain handoff.", fs.Migrations)
	counter("fleet_migration_failures_total", "Migrations aborted with the job resumed in place.", fs.MigrationFailures)
	counter("fleet_drains_total", "Drain requests accepted.", fs.Drains)
	counter("fleet_fences_issued_total", "Fence commands issued to workers holding stale job copies.", fs.FencesIssued)
	counter("fleet_placements_reconciled_total", "Placements reconciled to a worker reporting a higher epoch (lost-reply recovery).", fs.Reconciles)
	counter("fleet_wal_records_total", "Placement WAL records appended or replayed.", fs.WALRecords)
	counter("fleet_wal_truncations_total", "Corrupt placement WAL tail lines dropped at startup.", fs.WALTruncations)
	counter("fleet_wal_failures_total", "Placement WAL opens or appends that failed.", fs.WALFailures)
	counter("fleet_wal_compactions_total", "Placement WAL snapshot+truncate passes completed.", fs.WALCompactions)
	counter("fleet_resizes_observed_total", "Placement core counts reconciled after worker-side resizes.", fs.ResizesObserved)
	counter("fleet_autoscale_resizes_total", "Resize commands issued by the fleet autoscaler.", fs.AutoscaleResizes)
	counter("fleet_autoscale_grows_total", "Autoscaler grow decisions applied.", fs.AutoscaleGrows)
	counter("fleet_autoscale_shrinks_total", "Autoscaler shrink decisions applied.", fs.AutoscaleShrinks)
	counter("fleet_autoscale_failures_total", "Autoscaler resize commands that failed at the worker.", fs.AutoscaleFailures)

	fmt.Fprintf(w, "# HELP nestctl_fleet_jobs Jobs across live workers by state.\n# TYPE nestctl_fleet_jobs gauge\n")
	for _, state := range []service.JobState{
		service.StateQueued, service.StateRunning, service.StatePaused,
		service.StateRetrying, service.StateDone, service.StateFailed,
		service.StateCancelled, service.StateFenced,
	} {
		fmt.Fprintf(w, "nestctl_fleet_jobs{state=%q} %d\n", state, fs.Jobs[state])
	}
	gauge("fleet_queue_depth", "Queued submissions across live workers.", int64(fs.QueueDepth))
	gauge("fleet_queue_capacity", "Total submit queue capacity across live workers.", int64(fs.QueueCapacity))
	gauge("fleet_worker_slots", "Concurrent job slots across live workers.", int64(fs.WorkerSlots))
	counter("fleet_steps_executed_total", "Simulation steps executed across live workers.", fs.StepsExecuted)
	counter("fleet_jobs_submitted_total", "Jobs accepted across live workers.", fs.JobsSubmitted)
	counter("fleet_jobs_completed_total", "Jobs completed across live workers.", fs.JobsCompleted)
	counter("fleet_jobs_failed_total", "Jobs failed across live workers.", fs.JobsFailed)
	counter("fleet_jobs_imported_total", "Checkpoint envelopes imported across live workers.", fs.JobsImported)
	counter("fleet_jobs_adopted_total", "Adoptions completed across live workers.", fs.JobsAdopted)
	counter("fleet_queue_full_rejections_total", "Worker-side queue-full rejections across live workers.", fs.QueueRejects)
	counter("fleet_checkpoint_bytes_total", "Encoded checkpoint bytes produced across live workers.", fs.CkptBytesTotal)
	counter("fleet_full_checkpoints_total", "Full-base checkpoints cut across live workers.", fs.CkptsFull)
	counter("fleet_delta_checkpoints_total", "Dirty-nest delta checkpoints cut across live workers.", fs.CkptsDelta)
	counter("fleet_checkpoint_appends_total", "In-place delta appends to checkpoint files across live workers.", fs.CkptAppends)
	counter("fleet_checkpoints_truncated_total", "Chains recovered from torn delta tails across live workers.", fs.CkptsTruncated)
	counter("tile_cache_hits_total", "Tile-cache hits across live workers' serving tiers.", fs.TileCacheHits)
	counter("tile_cache_misses_total", "Tile-cache misses across live workers' serving tiers.", fs.TileCacheMisses)
	counter("tile_cache_evictions_total", "Tile-cache evictions across live workers' serving tiers.", fs.TileCacheEvictions)
	gauge("tile_cache_bytes", "Resident tile-cache bytes across live workers' serving tiers.", fs.TileCacheBytes)
}
