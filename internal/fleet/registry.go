package fleet

import (
	"sync"
	"time"
)

// WorkerInfo is one registered worker's membership record.
type WorkerInfo struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// Live is false once the worker has missed its liveness deadline; a
	// dead worker that heartbeats again is resurrected (it was partitioned,
	// not dead — its jobs may already have been adopted elsewhere, which
	// the placement table, not the worker, arbitrates).
	Live bool `json:"live"`
	// Draining marks a worker leaving deliberately (POST /fleet/drain or
	// SIGTERM): it stays reachable for checkpoint export while the
	// controller migrates its jobs away, but owns nothing new — the ring
	// excludes it.
	Draining bool      `json:"draining,omitempty"`
	LastBeat time.Time `json:"last_heartbeat"`
}

// registry tracks fleet membership and liveness, and owns the consistent
// hash ring derived from the live set. The ring is rebuilt only on
// membership transitions (register, death, resurrection), never per
// placement.
type registry struct {
	mu       sync.Mutex
	workers  map[string]*WorkerInfo
	ring     *Ring
	replicas int
}

func newRegistry(replicas int) *registry {
	return &registry{
		workers:  make(map[string]*WorkerInfo),
		ring:     BuildRing(nil, replicas),
		replicas: replicas,
	}
}

// upsert registers (or re-registers) a worker as live, returning whether
// this changed the live membership.
func (g *registry) upsert(id, url string, now time.Time) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[id]
	if !ok {
		w = &WorkerInfo{ID: id}
		g.workers[id] = w
	}
	changed := !ok || !w.Live || w.Draining || w.URL != url
	w.URL = url
	w.Live = true
	w.Draining = false // a re-registration cancels a drain
	w.LastBeat = now
	if changed {
		g.rebuildLocked()
	}
	return changed
}

// markDraining flags a worker as deliberately leaving: it keeps its live
// record (the controller still talks to it to export checkpoints) but the
// ring stops owning anything to it. Returns false for unknown workers.
func (g *registry) markDraining(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[id]
	if !ok {
		return false
	}
	if !w.Draining {
		w.Draining = true
		g.rebuildLocked()
	}
	return true
}

// markDead declares a worker dead immediately — the deregister path a
// clean shutdown takes, skipping the liveness deadline. Returns false for
// unknown workers.
func (g *registry) markDead(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[id]
	if !ok {
		return false
	}
	if w.Live {
		w.Live = false
		g.rebuildLocked()
	}
	return true
}

// restore seeds one membership record during WAL replay. Dead workers
// replay dead; live ones replay with LastBeat=now so their next real
// heartbeat lands inside the liveness deadline — the controller restart
// causes no spurious deaths and no re-registration storm.
func (g *registry) restore(id, url string, live bool, now time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.workers[id] = &WorkerInfo{ID: id, URL: url, Live: live, LastBeat: now}
	g.rebuildLocked()
}

// heartbeat refreshes a worker's liveness stamp; false means the worker
// is unknown and must re-register (the agent handles the 404).
func (g *registry) heartbeat(id string, now time.Time) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[id]
	if !ok {
		return false
	}
	w.LastBeat = now
	if !w.Live {
		w.Live = true
		g.rebuildLocked()
	}
	return true
}

// expire marks every live worker silent for longer than deadline as dead,
// returning the newly dead (for adoption).
func (g *registry) expire(deadline time.Duration, now time.Time) []WorkerInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	var dead []WorkerInfo
	for _, w := range g.workers {
		if w.Live && now.Sub(w.LastBeat) > deadline {
			w.Live = false
			dead = append(dead, *w)
		}
	}
	if len(dead) > 0 {
		g.rebuildLocked()
	}
	return dead
}

// live returns the live workers.
func (g *registry) live() []WorkerInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]WorkerInfo, 0, len(g.workers))
	for _, w := range g.workers {
		if w.Live {
			out = append(out, *w)
		}
	}
	return out
}

// all returns every membership record, live and dead.
func (g *registry) all() []WorkerInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]WorkerInfo, 0, len(g.workers))
	for _, w := range g.workers {
		out = append(out, *w)
	}
	return out
}

// get returns one worker's record.
func (g *registry) get(id string) (WorkerInfo, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[id]
	if !ok {
		return WorkerInfo{}, false
	}
	return *w, true
}

// owner resolves a job key to its live owner through the ring.
func (g *registry) owner(key string) (WorkerInfo, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	id := g.ring.Owner(key)
	if id == "" {
		return WorkerInfo{}, false
	}
	w := g.workers[id]
	return *w, true
}

// rebuildLocked regenerates the ring from the live, non-draining
// membership; callers hold g.mu.
func (g *registry) rebuildLocked() {
	ids := make([]string, 0, len(g.workers))
	for id, w := range g.workers {
		if w.Live && !w.Draining {
			ids = append(ids, id)
		}
	}
	g.ring = BuildRing(ids, g.replicas)
}
