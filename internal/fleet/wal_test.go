package fleet

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"nestdiff/internal/service"
)

func walTestRecords() []walRecord {
	cfgJSON, _ := json.Marshal(fleetJob(20))
	return []walRecord{
		{Op: walOpRegister, Worker: "w1", URL: "http://w1"},
		{Op: walOpPlace, JobID: "f-1", Worker: "w1", Epoch: 1, Cfg: cfgJSON},
		{Op: walOpAdopt, JobID: "f-1", Worker: "w2", Epoch: 2},
		{Op: walOpState, JobID: "f-1", State: "done"},
	}
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "placements.wal")
	w, records, truncated, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 || truncated != 0 {
		t.Fatalf("fresh wal replayed %d records, %d truncated", len(records), truncated)
	}
	want := walTestRecords()
	for _, rec := range want {
		if err := w.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	w2, got, truncated, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if truncated != 0 {
		t.Fatalf("clean wal reported %d truncations", truncated)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestWALTornTailTruncatedAndRepaired: the final line of a kill -9 may be
// torn mid-write. Opening the journal must replay the good prefix, count
// the repair, physically truncate the file, and keep appending.
func TestWALTornTailTruncatedAndRepaired(t *testing.T) {
	path := filepath.Join(t.TempDir(), "placements.wal")
	w, _, _, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	want := walTestRecords()
	for _, rec := range want {
		if err := w.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.close()
	goodLen := int64(0)
	if fi, err := os.Stat(path); err == nil {
		goodLen = fi.Size()
	}

	// Tear the tail: half a line, no newline, bad checksum.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"crc":12345,"rec":{"op":"adop`)
	f.Close()

	w2, got, truncated, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if truncated != 1 {
		t.Fatalf("truncated = %d, want 1", truncated)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("good prefix lost in repair:\ngot  %+v\nwant %+v", got, want)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != goodLen {
		t.Fatalf("file not truncated back to the good prefix: size %v, want %d", fi.Size(), goodLen)
	}

	// The repaired journal accepts appends and replays them.
	extra := walRecord{Op: walOpDead, Worker: "w1"}
	if err := w2.append(extra); err != nil {
		t.Fatal(err)
	}
	w2.close()
	_, got, truncated, err = openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if truncated != 0 || !reflect.DeepEqual(got, append(append([]walRecord{}, want...), extra)) {
		t.Fatalf("post-repair append not replayed: truncated %d, records %+v", truncated, got)
	}
}

// TestWALMidFileCorruptionPoisonsTail: a bad line invalidates everything
// after it — later records may describe state built on the lost mutation,
// so only the clean prefix is trusted.
func TestWALMidFileCorruptionPoisonsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "placements.wal")
	w, _, _, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := walTestRecords()
	w.append(recs[0])
	w.close()
	data, _ := os.ReadFile(path)
	data = append(data, []byte("not json at all\n")...)
	// A structurally valid line after the corruption must NOT be trusted.
	lineJSON, _ := json.Marshal(recs[2])
	good, _ := json.Marshal(walLine{CRC: crc32.Checksum(lineJSON, walCRC), Rec: lineJSON})
	data = append(data, append(good, '\n')...)

	got, goodBytes, truncated := replayWAL(data)
	if len(got) != 1 || got[0].Op != walOpRegister {
		t.Fatalf("replay past corruption: %+v", got)
	}
	if truncated != 2 {
		t.Fatalf("truncated = %d, want 2 (the bad line and the orphaned good one)", truncated)
	}
	wantGood := int64(0)
	if fi, err := os.Stat(path); err == nil {
		wantGood = fi.Size()
	}
	if goodBytes != wantGood {
		t.Fatalf("good prefix = %d bytes, want %d", goodBytes, wantGood)
	}
}

// TestWALCorruptTailFixtureReplay replays the pre-baked corrupt-tail
// journal checked into testdata — a stable regression artifact for the CI
// partition-chaos job, independent of the writer code that produced it.
func TestWALCorruptTailFixtureReplay(t *testing.T) {
	fixture, err := os.ReadFile(filepath.Join("testdata", "corrupt-tail.wal"))
	if err != nil {
		t.Fatal(err)
	}
	// Copy into a temp dir: openWAL repairs in place and must never modify
	// the checked-in fixture.
	path := filepath.Join(t.TempDir(), "placements.wal")
	if err := os.WriteFile(path, fixture, 0o644); err != nil {
		t.Fatal(err)
	}
	w, records, truncated, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	if truncated != 1 {
		t.Fatalf("fixture truncations = %d, want 1", truncated)
	}
	if len(records) != 3 {
		t.Fatalf("fixture replayed %d records, want 3: %+v", len(records), records)
	}
	wantOps := []string{walOpRegister, walOpPlace, walOpState}
	for i, rec := range records {
		if rec.Op != wantOps[i] {
			t.Fatalf("fixture record %d op = %q, want %q", i, rec.Op, wantOps[i])
		}
	}
	if records[1].JobID != "f-1" || records[1].Worker != "w1" || records[1].Epoch != 1 {
		t.Fatalf("fixture place record = %+v", records[1])
	}
}

// TestControllerRestartServesSamePlacementTable is the durability
// acceptance drill: a controller with -state-dir is killed (with a torn
// final journal line, as kill -9 leaves behind) and a fresh controller on
// the same state dir must replay the WAL and serve the identical placement
// table — same IDs, workers, epochs, states and adoption counts — with the
// replayed workers live (no re-registration storm, no spurious adoptions)
// and the job-ID sequence continuing where it left off.
func TestControllerRestartServesSamePlacementTable(t *testing.T) {
	stateDir := t.TempDir()
	mkCfg := func() Config {
		return Config{
			LivenessDeadline: time.Minute,
			SweepInterval:    20 * time.Millisecond,
			StateDir:         stateDir,
		}
	}

	ctlA := NewController(mkCfg())
	srvA := httptest.NewServer(ctlA.Handler())
	w1 := startWorker(t, srvA, "w1", service.SchedulerConfig{Workers: 2})
	w2 := startWorker(t, srvA, "w2", service.SchedulerConfig{Workers: 2})
	_, _ = w1, w2

	const jobs = 4
	for i := 0; i < jobs; i++ {
		resp := submitJob(t, srvA.URL, fleetJob(20))
		if resp.StatusCode != 201 {
			t.Fatalf("submit %d = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	for i := 1; i <= jobs; i++ {
		pollFleet(t, srvA.URL, fmt.Sprintf("f-%d", i), "done", func(sn service.Snapshot) bool {
			return sn.State == service.StateDone
		})
	}
	// Fold (and journal) the terminal states, then capture the table.
	ctlA.Sweep()
	before := ctlA.Placements()
	beforeJSON, _ := json.Marshal(before)

	// Kill the controller. Every record was fsynced on append, so closing
	// abruptly loses nothing; the torn garbage appended below is exactly
	// the half-written final line a kill -9 leaves.
	srvA.Close()
	ctlA.Close()
	walPath := filepath.Join(stateDir, "placements.wal")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"crc":999,"rec":{"op":"pla`)
	f.Close()

	ctlB := NewController(mkCfg())
	defer ctlB.Close()
	srvB := httptest.NewServer(ctlB.Handler())
	defer srvB.Close()

	after := ctlB.Placements()
	afterJSON, _ := json.Marshal(after)
	if string(beforeJSON) != string(afterJSON) {
		t.Fatalf("placement table diverged across restart:\nbefore %s\nafter  %s", beforeJSON, afterJSON)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("replayed placements differ structurally:\nbefore %+v\nafter  %+v", before, after)
	}
	if got := ctlB.Metrics().WALTruncations(); got != 1 {
		t.Fatalf("wal truncations after torn tail = %d, want 1", got)
	}
	// Membership replayed live: both workers are present without anyone
	// re-registering, and no adoption fired for jobs whose owners live.
	live := ctlB.reg.live()
	if len(live) != 2 {
		t.Fatalf("replayed live workers = %+v, want 2", live)
	}
	if got := ctlB.Metrics().Adoptions(); got != 0 {
		t.Fatalf("restart caused %d adoptions, want 0", got)
	}

	// The restarted controller keeps serving: the job sequence continues
	// (no ID reuse) and placement works against the replayed membership.
	resp := submitJob(t, srvB.URL, fleetJob(10))
	if resp.StatusCode != 201 {
		t.Fatalf("post-restart submit = %d", resp.StatusCode)
	}
	snap := decodeSnap(t, resp)
	if snap.ID != "f-5" {
		t.Fatalf("post-restart job ID = %q, want f-5 (sequence replayed)", snap.ID)
	}
	pollFleet(t, srvB.URL, snap.ID, "done after restart", func(sn service.Snapshot) bool {
		return sn.State == service.StateDone
	})
}
