package fleet

import (
	"fmt"
	"testing"
)

func TestRingEmptyOwnsNothing(t *testing.T) {
	r := BuildRing(nil, 0)
	if got := r.Owner("job-1"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	if r.Size() != 0 {
		t.Fatalf("empty ring size = %d", r.Size())
	}
}

func TestRingDeterministicAcrossBuilds(t *testing.T) {
	workers := []string{"w1", "w2", "w3"}
	a := BuildRing(workers, 0)
	b := BuildRing([]string{"w3", "w1", "w2"}, 0) // order must not matter
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("f-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %s placed differently by identically-membered rings: %q vs %q",
				key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	workers := []string{"w1", "w2", "w3", "w4"}
	r := BuildRing(workers, 0)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("f-%d", i))]++
	}
	if len(counts) != len(workers) {
		t.Fatalf("only %d of %d workers received keys: %v", len(counts), len(workers), counts)
	}
	mean := keys / len(workers)
	for w, n := range counts {
		if n > 2*mean || n < mean/2 {
			t.Fatalf("worker %s got %d of %d keys (mean %d): split too skewed: %v",
				w, n, keys, mean, counts)
		}
	}
}

// TestRingMinimalMovementOnDeath is the property adoption depends on:
// removing one worker must move only that worker's keys — survivors keep
// every placement they had, so a death triggers adoptions, never a
// fleet-wide reshuffle.
func TestRingMinimalMovementOnDeath(t *testing.T) {
	before := BuildRing([]string{"w1", "w2", "w3"}, 0)
	after := BuildRing([]string{"w1", "w3"}, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("f-%d", i)
		was, now := before.Owner(key), after.Owner(key)
		if was != "w2" && now != was {
			t.Fatalf("key %s moved %q -> %q although its owner survived", key, was, now)
		}
		if was == "w2" && now == "w2" {
			t.Fatalf("key %s still owned by removed worker", key)
		}
	}
}
