package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nestdiff/internal/core"
	"nestdiff/internal/service"
	"nestdiff/internal/wrfsim"
)

// worker bundles one in-process nestserved: scheduler plus HTTP API.
type worker struct {
	id    string
	sched *service.Scheduler
	srv   *httptest.Server
}

// startWorker boots an in-process worker and registers it with the
// controller (directly, not through an agent — the agent's loop is
// exercised by the chaos suite; here registration is synchronous so tests
// have no warm-up window).
func startWorker(t *testing.T, ctl *httptest.Server, id string, cfg service.SchedulerConfig) *worker {
	t.Helper()
	cfg.DisableRecovery = true
	sched := service.NewScheduler(cfg)
	srv := httptest.NewServer(service.NewHandler(sched))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { sched.Shutdown(context.Background()) })
	if ctl != nil {
		registerWorker(t, ctl.URL, id, srv.URL)
	}
	return &worker{id: id, sched: sched, srv: srv}
}

func registerWorker(t *testing.T, ctlURL, id, url string) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"id": id, "url": url})
	resp, err := http.Post(ctlURL+"/fleet/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register %s: status %d", id, resp.StatusCode)
	}
}

// startController boots a controller with a liveness deadline long enough
// that directly-registered workers never expire mid-test.
func startController(t *testing.T, cfg Config) (*Controller, *httptest.Server) {
	t.Helper()
	if cfg.LivenessDeadline == 0 {
		cfg.LivenessDeadline = time.Minute
	}
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = 20 * time.Millisecond
	}
	ctl := NewController(cfg)
	t.Cleanup(ctl.Close)
	srv := httptest.NewServer(ctl.Handler())
	t.Cleanup(srv.Close)
	return ctl, srv
}

// fleetCells mirrors the service suite's two-storm population.
func fleetCells() []wrfsim.Cell {
	return []wrfsim.Cell{
		{X: 20, Y: 18, Radius: 5, Peak: 2.5, Life: 2 * 3600},
		{X: 70, Y: 50, Radius: 4, Peak: 2.0, Life: 6 * 3600},
	}
}

// fleetJob is the standard fleet workload: the service suite's small
// cells-scenario job.
func fleetJob(steps int) service.JobConfig {
	return service.JobConfig{
		Cores:         256,
		Machine:       "torus",
		Strategy:      "diffusion",
		Scenario:      "cells",
		NX:            96,
		NY:            72,
		Cells:         fleetCells(),
		Steps:         steps,
		Interval:      5,
		AnalysisRanks: 6,
		MaxNests:      4,
	}
}

// submitJob POSTs a job to the controller and returns the response.
func submitJob(t *testing.T, ctlURL string, cfg service.JobConfig) *http.Response {
	t.Helper()
	body, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ctlURL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeSnap(t *testing.T, resp *http.Response) service.Snapshot {
	t.Helper()
	defer resp.Body.Close()
	var snap service.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// pollFleet polls the controller's job view until cond holds. It
// tolerates transient non-200s (a dead owner yields 502 until adoption
// re-homes the job).
func pollFleet(t *testing.T, ctlURL, id, what string, cond func(service.Snapshot) bool) service.Snapshot {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var last service.Snapshot
	for time.Now().Before(deadline) {
		resp, err := http.Get(ctlURL + "/jobs/" + id)
		if err == nil && resp.StatusCode == http.StatusOK {
			snap := decodeSnap(t, resp)
			if cond(snap) {
				return snap
			}
			last = snap
		} else if err == nil {
			resp.Body.Close()
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s on fleet job %s (last snapshot %+v)", what, id, last)
	return service.Snapshot{}
}

func TestControllerMembershipAndReadiness(t *testing.T) {
	_, ctlSrv := startController(t, Config{})

	resp, err := http.Get(ctlSrv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no workers = %d, want 503", resp.StatusCode)
	}

	w1 := startWorker(t, ctlSrv, "w1", service.SchedulerConfig{Workers: 1})
	_ = w1

	resp, err = http.Get(ctlSrv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with a live worker = %d, want 200", resp.StatusCode)
	}

	// Heartbeat for a registered worker succeeds; an unknown worker gets
	// 404 (the agent's cue to re-register).
	for _, tc := range []struct {
		id   string
		want int
	}{{"w1", http.StatusOK}, {"ghost", http.StatusNotFound}} {
		body, _ := json.Marshal(map[string]string{"id": tc.id})
		resp, err := http.Post(ctlSrv.URL+"/fleet/heartbeat", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("heartbeat %s = %d, want %d", tc.id, resp.StatusCode, tc.want)
		}
	}

	var members []WorkerInfo
	resp, err = http.Get(ctlSrv.URL + "/fleet/workers")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&members); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(members) != 1 || members[0].ID != "w1" || !members[0].Live {
		t.Fatalf("membership = %+v, want one live w1", members)
	}
}

func TestControllerNoWorkers503(t *testing.T) {
	_, ctlSrv := startController(t, Config{})
	resp := submitJob(t, ctlSrv.URL, fleetJob(10))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with no workers = %d, want 503", resp.StatusCode)
	}
}

// TestControllerPlacesProxiesAndCompletes is the happy path: jobs
// submitted to the controller spread across workers by the ring, run to
// completion, and every job API call routes to the owning worker.
func TestControllerPlacesProxiesAndCompletes(t *testing.T) {
	ctl, ctlSrv := startController(t, Config{})
	workers := map[string]*worker{}
	for _, id := range []string{"w1", "w2", "w3"} {
		workers[id] = startWorker(t, ctlSrv, id, service.SchedulerConfig{Workers: 2})
	}

	const jobs = 6
	owners := map[string]string{}
	for i := 0; i < jobs; i++ {
		resp := submitJob(t, ctlSrv.URL, fleetJob(40))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d = %d, want 201", i, resp.StatusCode)
		}
		ownerID := resp.Header.Get("X-Fleet-Worker")
		snap := decodeSnap(t, resp)
		if snap.ID != fmt.Sprintf("f-%d", i+1) {
			t.Fatalf("fleet job ID = %q, want f-%d", snap.ID, i+1)
		}
		if _, ok := workers[ownerID]; !ok {
			t.Fatalf("job %s placed on unknown worker %q", snap.ID, ownerID)
		}
		owners[snap.ID] = ownerID
	}

	// Placement is ring-driven and must agree with the ring's own answer.
	ring := BuildRing([]string{"w1", "w2", "w3"}, 0)
	for id, ownerID := range owners {
		if want := ring.Owner(id); want != ownerID {
			t.Fatalf("job %s on %s, ring says %s", id, ownerID, want)
		}
	}

	for id := range owners {
		final := pollFleet(t, ctlSrv.URL, id, "done", func(sn service.Snapshot) bool {
			return sn.State == service.StateDone
		})
		if final.Step != 40 {
			t.Fatalf("job %s finished at step %d, want 40", id, final.Step)
		}
		// The events proxy reaches the owner and yields the job's trace.
		resp, err := http.Get(ctlSrv.URL + "/jobs/" + id + "/events")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events proxy for %s = %d", id, resp.StatusCode)
		}
		var events []core.AdaptationEvent
		if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(events) != 8 {
			t.Fatalf("job %s proxied %d events, want 8", id, len(events))
		}
	}

	if got := ctl.Metrics().JobsPlaced(); got != jobs {
		t.Fatalf("jobs placed counter = %d, want %d", got, jobs)
	}

	// The placement table lists every job, and after a sweep reflects the
	// terminal states.
	ctl.Sweep()
	var placed []placement
	resp, err := http.Get(ctlSrv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&placed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(placed) != jobs {
		t.Fatalf("placement table has %d entries, want %d", len(placed), jobs)
	}
	for _, p := range placed {
		if p.State != service.StateDone {
			t.Fatalf("placement %s state %s after completion sweep", p.ID, p.State)
		}
	}
}

// TestControllerPauseResumeRoutesToOwner drives lifecycle verbs through
// the controller.
func TestControllerPauseResumeRoutesToOwner(t *testing.T) {
	_, ctlSrv := startController(t, Config{})
	startWorker(t, ctlSrv, "w1", service.SchedulerConfig{Workers: 1})

	cfg := fleetJob(4000)
	cfg.StepDelayMS = 1
	resp := submitJob(t, ctlSrv.URL, cfg)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	snap := decodeSnap(t, resp)

	pollFleet(t, ctlSrv.URL, snap.ID, "running", func(sn service.Snapshot) bool {
		return sn.State == service.StateRunning
	})
	presp, err := http.Post(ctlSrv.URL+"/jobs/"+snap.ID+"/pause", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("pause through controller = %d", presp.StatusCode)
	}
	paused := pollFleet(t, ctlSrv.URL, snap.ID, "paused", func(sn service.Snapshot) bool {
		return sn.State == service.StatePaused
	})
	if paused.Step == 0 {
		t.Fatal("paused at step 0: pause raced submission, not a mid-run pause")
	}

	rresp, err := http.Post(ctlSrv.URL+"/jobs/"+snap.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel through controller = %d", rresp.StatusCode)
	}
	pollFleet(t, ctlSrv.URL, snap.ID, "cancelled", func(sn service.Snapshot) bool {
		return sn.State == service.StateCancelled
	})

	// Unknown verbs and unknown jobs 404 at the controller without a
	// worker round-trip.
	vresp, err := http.Post(ctlSrv.URL+"/jobs/"+snap.ID+"/explode", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	vresp.Body.Close()
	if vresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown verb = %d, want 404", vresp.StatusCode)
	}
	gresp, err := http.Get(ctlSrv.URL + "/jobs/f-999")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", gresp.StatusCode)
	}
}

// TestControllerShedsWhenWorkerSaturated: a full worker queue surfaces to
// the fleet client as 429 + Retry-After, relayed by the controller.
func TestControllerShedsWhenWorkerSaturated(t *testing.T) {
	ctl, ctlSrv := startController(t, Config{})
	w := startWorker(t, ctlSrv, "w1", service.SchedulerConfig{Workers: 1, QueueDepth: 1})

	// Saturate: one slow job occupies the single worker slot, one more
	// fills the queue; the next submission must shed.
	slow := fleetJob(5000)
	slow.StepDelayMS = 2
	sawTooMany := false
	for i := 0; i < 8 && !sawTooMany; i++ {
		resp := submitJob(t, ctlSrv.URL, slow)
		switch resp.StatusCode {
		case http.StatusCreated:
		case http.StatusTooManyRequests:
			sawTooMany = true
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Fatal("429 without Retry-After header")
			}
			var body map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["error"] == "" {
				t.Fatalf("429 body = %v, %v", body, err)
			}
		default:
			t.Fatalf("submit %d = %d, want 201 or 429", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !sawTooMany {
		t.Fatal("never saw a 429 from a 1-slot, 1-queue worker")
	}
	if ctl.Metrics().RejectedSaturated() == 0 {
		t.Fatal("saturation not counted")
	}
	// Hard-stop the worker: Shutdown would wait out the slow jobs.
	w.sched.Kill()
}

// TestControllerMaxPendingSheds: the controller's own admission cap sheds
// before any worker is consulted.
func TestControllerMaxPendingSheds(t *testing.T) {
	ctl, ctlSrv := startController(t, Config{MaxPending: 1, RetryAfterSeconds: 7})
	w := startWorker(t, ctlSrv, "w1", service.SchedulerConfig{Workers: 1})

	slow := fleetJob(5000)
	slow.StepDelayMS = 2
	resp := submitJob(t, ctlSrv.URL, slow)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	resp = submitJob(t, ctlSrv.URL, fleetJob(10))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit beyond MaxPending = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want the configured 7", ra)
	}
	if ctl.Metrics().RejectedSaturated() != 1 {
		t.Fatalf("shed counter = %d, want 1", ctl.Metrics().RejectedSaturated())
	}
	w.sched.Kill()
}

// TestControllerAggregatesFleetMetrics: /metrics and /statz present one
// fleet-wide view summed over the live workers.
func TestControllerAggregatesFleetMetrics(t *testing.T) {
	_, ctlSrv := startController(t, Config{})
	startWorker(t, ctlSrv, "w1", service.SchedulerConfig{Workers: 2})
	startWorker(t, ctlSrv, "w2", service.SchedulerConfig{Workers: 2})

	const jobs, steps = 4, 30
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		resp := submitJob(t, ctlSrv.URL, fleetJob(steps))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit = %d", resp.StatusCode)
		}
		ids = append(ids, decodeSnap(t, resp).ID)
	}
	for _, id := range ids {
		pollFleet(t, ctlSrv.URL, id, "done", func(sn service.Snapshot) bool {
			return sn.State == service.StateDone
		})
	}

	var stats FleetStats
	resp, err := http.Get(ctlSrv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.WorkersLive != 2 {
		t.Fatalf("workers live = %d, want 2", stats.WorkersLive)
	}
	if stats.JobsCompleted != jobs {
		t.Fatalf("fleet jobs completed = %d, want %d", stats.JobsCompleted, jobs)
	}
	if want := int64(jobs * steps); stats.StepsExecuted != want {
		t.Fatalf("fleet steps executed = %d, want %d", stats.StepsExecuted, want)
	}
	if stats.WorkerSlots != 4 {
		t.Fatalf("fleet worker slots = %d, want 4", stats.WorkerSlots)
	}

	mresp, err := http.Get(ctlSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"nestctl_fleet_workers_live 2",
		fmt.Sprintf("nestctl_fleet_jobs_placed_total %d", jobs),
		fmt.Sprintf("nestctl_fleet_steps_executed_total %d", jobs*steps),
		fmt.Sprintf("nestctl_fleet_jobs_completed_total %d", jobs),
		`nestctl_fleet_jobs{state="done"} 4`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, text)
		}
	}
}
