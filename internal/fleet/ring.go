// Package fleet is the nestdiff control plane: a Controller that shards
// jobs across a fleet of nestserved workers over stdlib HTTP/JSON.
// Workers register and heartbeat; jobs are placed by consistent hashing
// over the live membership; a worker that misses its liveness deadline is
// declared dead and its running or paused jobs are adopted by survivors
// from their latest persisted checkpoints, resuming bit-identically; the
// controller aggregates fleet-wide metrics and sheds load with 429 +
// Retry-After when the fleet is saturated.
//
// The design follows the Nimbus template ("Distributed Graphical
// Simulation in the Cloud"): the controller stays out of the data path
// entirely — placement, adoption and lifecycle verbs are cheap control
// messages, while simulation state moves only through the shared
// checkpoint store and the workers' own step loops.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultReplicas is the number of virtual nodes per worker on the ring.
// More vnodes smooth the load split between heterogeneous fleets; 64 keeps
// the maximum-to-mean placement ratio under ~1.3 for small fleets.
const defaultReplicas = 64

// Ring is an immutable consistent-hash ring over a set of worker IDs.
// Placement by ring (rather than round-robin or least-loaded) means a
// membership change moves only the jobs that hashed to the lost or joined
// worker — survivors keep their placements, which is what makes adoption
// after a death minimal instead of a full reshuffle.
type Ring struct {
	hashes []uint64          // sorted vnode positions
	owner  map[uint64]string // vnode position -> worker ID
}

// BuildRing constructs a ring with `replicas` virtual nodes per worker
// (<=0 means defaultReplicas). An empty worker set yields an empty ring.
func BuildRing(workers []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &Ring{owner: make(map[uint64]string, len(workers)*replicas)}
	for _, w := range workers {
		for i := 0; i < replicas; i++ {
			h := hash64(fmt.Sprintf("%s#%d", w, i))
			// On the (astronomically unlikely) vnode collision the
			// lexically-first worker wins deterministically, so every
			// controller builds the identical ring from the same membership.
			if prev, ok := r.owner[h]; ok && prev <= w {
				continue
			}
			r.owner[h] = w
		}
	}
	r.hashes = make([]uint64, 0, len(r.owner))
	for h := range r.owner {
		r.hashes = append(r.hashes, h)
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
	return r
}

// Owner returns the worker a key places on, or "" for an empty ring: the
// first vnode clockwise from the key's hash.
func (r *Ring) Owner(key string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap around
	}
	return r.owner[r.hashes[i]]
}

// Size returns the number of distinct vnode positions (testing aid).
func (r *Ring) Size() int { return len(r.hashes) }

// hash64 is FNV-64a with a Murmur3-style finalizer. Raw FNV of short,
// nearly-identical strings ("w1#0", "w1#1", ...) leaves the high bits —
// the ones binary search over the ring keys on — badly clustered, which
// skewed a 4-worker split as far as 4%/40%; the avalanche pass spreads
// the vnodes evenly.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
