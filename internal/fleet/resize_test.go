package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"nestdiff/internal/elastic"
	"nestdiff/internal/service"
	"nestdiff/internal/wrfsim"
)

// elasticFleetJob is the fleet analogue of the service suite's resize
// workload: a distributed scratch-strategy cells job, throttled so resize
// requests land mid-run.
func elasticFleetJob(steps int) service.JobConfig {
	cfg := fleetJob(steps)
	cfg.Cores = 8
	cfg.Strategy = "scratch"
	cfg.Distributed = true
	cfg.StepDelayMS = 2
	cfg.AutoCheckpointSteps = 10
	return cfg
}

// postResize issues a resize through the controller and returns the
// response (caller closes the body).
func postResize(t *testing.T, ctlURL, id string, procs int) *http.Response {
	t.Helper()
	resp, err := http.Post(fmt.Sprintf("%s/jobs/%s/resize?procs=%d", ctlURL, id, procs), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// findPlacement returns the controller's placement row for id.
func findPlacement(t *testing.T, ctl *Controller, id string) placement {
	t.Helper()
	for _, p := range ctl.Placements() {
		if p.ID == id {
			return p
		}
	}
	t.Fatalf("no placement for %s in %+v", id, ctl.Placements())
	return placement{}
}

// TestFleetResizeRoundTrip is the control-plane acceptance drill: a
// resize POSTed to nestctl proxies to the owning worker, applies at a
// step boundary, flows back into the placement config as a journaled cfg
// record (never a re-place — the epoch must not move), and survives a
// controller restart.
func TestFleetResizeRoundTrip(t *testing.T) {
	stateDir := t.TempDir()
	mkCfg := func() Config {
		return Config{
			LivenessDeadline: time.Minute,
			SweepInterval:    20 * time.Millisecond,
			StateDir:         stateDir,
		}
	}
	ctl := NewController(mkCfg())
	srv := httptest.NewServer(ctl.Handler())
	startWorker(t, srv, "w1", service.SchedulerConfig{Workers: 1})

	resp := submitJob(t, srv.URL, elasticFleetJob(80))
	if resp.StatusCode != 201 {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	snap := decodeSnap(t, resp)
	pollFleet(t, srv.URL, snap.ID, "mid-run", func(sn service.Snapshot) bool {
		return sn.State == service.StateRunning && sn.Step >= 10
	})
	epochBefore := findPlacement(t, ctl, snap.ID).Epoch

	// Malformed and unknown-job resizes surface through the proxy.
	if r := postResize(t, srv.URL, snap.ID, -3); r.StatusCode != 400 {
		t.Fatalf("negative procs returned %d, want 400", r.StatusCode)
	} else {
		r.Body.Close()
	}
	if r, err := http.Post(srv.URL+"/jobs/nope/resize?procs=8", "application/json", nil); err != nil {
		t.Fatal(err)
	} else if r.StatusCode != 404 {
		t.Fatalf("unknown job resize returned %d, want 404", r.StatusCode)
	} else {
		r.Body.Close()
	}

	r := postResize(t, srv.URL, snap.ID, 18)
	if r.StatusCode != 200 {
		t.Fatalf("resize returned %d, want 200", r.StatusCode)
	}
	if got := r.Header.Get("X-Fleet-Worker"); got != "w1" {
		t.Fatalf("resize proxied via %q, want w1", got)
	}
	r.Body.Close()

	pollFleet(t, srv.URL, snap.ID, "resize applied", func(sn service.Snapshot) bool {
		return sn.Cores == 18
	})
	// The new size reaches the placement table via reconcileCores (the
	// poll's proxy replies and the sweep both fold it).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if p := findPlacement(t, ctl, snap.ID); p.cfg.Cores == 18 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("placement cfg never reconciled to 18 cores: %+v", findPlacement(t, ctl, snap.ID))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := findPlacement(t, ctl, snap.ID).Epoch; got != epochBefore {
		t.Fatalf("resize moved the placement epoch %d -> %d; a cfg change must not re-fence", epochBefore, got)
	}
	if got := ctl.Metrics().ResizesObserved(); got < 1 {
		t.Fatalf("resizes_observed = %d, want >= 1", got)
	}

	final := pollFleet(t, srv.URL, snap.ID, "done", func(sn service.Snapshot) bool {
		return sn.State.Terminal()
	})
	if final.State != service.StateDone || final.Cores != 18 {
		t.Fatalf("job finished %s with %d cores, want done with 18", final.State, final.Cores)
	}
	ctl.Sweep()
	before := findPlacement(t, ctl, snap.ID)

	// Restart the controller: the journaled cfg record must replay the
	// placement at its resized core count under the original epoch.
	srv.Close()
	ctl.Close()
	ctl2 := NewController(mkCfg())
	defer ctl2.Close()
	after := findPlacement(t, ctl2, snap.ID)
	if after.cfg.Cores != 18 {
		t.Fatalf("replayed placement at %d cores, want the resized 18", after.cfg.Cores)
	}
	if after.Epoch != before.Epoch || after.State != before.State {
		t.Fatalf("replayed placement %+v diverged from %+v", after, before)
	}
}

// TestFleetAutoscalerGrowsAndShrinks runs the wired-up autoscaler against
// real workers: a nest-heavy job grows, a nest-free job shrinks, the
// fleet never exceeds its processor budget, and the controller counters
// see both directions.
func TestFleetAutoscalerGrowsAndShrinks(t *testing.T) {
	ctl, srv := startController(t, Config{})
	startWorker(t, srv, "w1", service.SchedulerConfig{Workers: 2})

	// Both jobs start inside the profiled processor range (16..1024):
	// below it Predict clamps, the modelled saving vanishes, and a grow
	// can never pay for itself.
	hotCfg := elasticFleetJob(4000)
	hotCfg.Cores = 16
	hotCfg.StepDelayMS = 5
	hotCfg.Cells = []wrfsim.Cell{
		{X: 20, Y: 18, Radius: 5, Peak: 2.5, Life: 6 * 3600},
		{X: 70, Y: 50, Radius: 4, Peak: 2.0, Life: 6 * 3600},
	}
	idleCfg := elasticFleetJob(4000)
	idleCfg.Cores = 64
	idleCfg.StepDelayMS = 5
	// One short-lived storm: its nest is gone before the autoscaler
	// starts, leaving a provably idle job.
	idleCfg.Cells = []wrfsim.Cell{{X: 48, Y: 30, Radius: 4, Peak: 2.2, Life: 600}}

	hot := decodeSnap(t, submitJob(t, srv.URL, hotCfg))
	idle := decodeSnap(t, submitJob(t, srv.URL, idleCfg))
	pollFleet(t, srv.URL, hot.ID, "hot job nested", func(sn service.Snapshot) bool {
		return sn.State == service.StateRunning && len(sn.ActiveNests) >= 1
	})
	pollFleet(t, srv.URL, idle.ID, "idle job nest-free", func(sn service.Snapshot) bool {
		return sn.State == service.StateRunning && sn.Step >= 15 && len(sn.ActiveNests) == 0
	})

	const budget = 128
	if err := ctl.EnableAutoscaler(elastic.AutoscalerConfig{
		Budget:   budget,
		Interval: 25 * time.Millisecond,
		Cooldown: 150 * time.Millisecond,
		HotNests: 1,
		MinProcs: 16,
		// Direction, not magnitude, decides: any predicted speedup pays.
		GrowMargin:        1e-9,
		RedistBytesPerSec: 1e18,
	}); err != nil {
		t.Fatal(err)
	}

	var sawGrown, sawShrunk bool
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		hotSnap, err1 := fetchSnap(srv.URL, hot.ID)
		idleSnap, err2 := fetchSnap(srv.URL, idle.ID)
		if err1 == nil && err2 == nil {
			if total := hotSnap.Cores + idleSnap.Cores; total > budget {
				t.Fatalf("fleet uses %d cores over the %d budget", total, budget)
			}
			if hotSnap.Cores > 16 {
				sawGrown = true
			}
			if idleSnap.Cores < 64 {
				sawShrunk = true
				if idleSnap.Cores < 16 {
					t.Fatalf("idle job shrunk below the 16-proc floor: %d", idleSnap.Cores)
				}
			}
		}
		grows, shrinks, _ := ctl.Autoscaler().Counters()
		if sawGrown && sawShrunk && grows >= 1 && shrinks >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	grows, shrinks, _ := ctl.Autoscaler().Counters()
	if !sawGrown || grows < 1 {
		t.Fatalf("hot job never grew (grows=%d, sawGrown=%v)", grows, sawGrown)
	}
	if !sawShrunk || shrinks < 1 {
		t.Fatalf("idle job never shrank (shrinks=%d, sawShrunk=%v)", shrinks, sawShrunk)
	}
	if got := ctl.Metrics().AutoscaleResizes(); got < 2 {
		t.Fatalf("autoscale_resizes = %d, want >= 2", got)
	}

	for _, id := range []string{hot.ID, idle.ID} {
		resp, err := http.Post(srv.URL+"/jobs/"+id+"/cancel", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		pollFleet(t, srv.URL, id, "cancelled", func(sn service.Snapshot) bool {
			return sn.State.Terminal()
		})
	}
}

// fetchSnap reads one job snapshot through the controller without the
// poll loop's fatal timeout (the autoscaler soak samples opportunistically).
func fetchSnap(ctlURL, id string) (service.Snapshot, error) {
	resp, err := http.Get(ctlURL + "/jobs/" + id)
	if err != nil {
		return service.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.Snapshot{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	var snap service.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return service.Snapshot{}, err
	}
	return snap, nil
}

// countWALLines returns the number of journal lines on disk.
func countWALLines(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Count(string(data), "\n")
}

// TestFleetWALCompactionAndCrashRestart drives the compaction trigger
// organically — a WAL fattened past the append floor by placements,
// queued-job reprices and terminal states — then kills the controller
// the way a kill -9 during the NEXT compaction would (stale .tmp beside
// the journal, torn final line) and requires the restarted controller to
// clear the debris and serve the identical placement table.
func TestFleetWALCompactionAndCrashRestart(t *testing.T) {
	stateDir := t.TempDir()
	walPath := filepath.Join(stateDir, "placements.wal")
	mkCfg := func() Config {
		return Config{
			LivenessDeadline: time.Minute,
			// Sweeps only on demand: the test controls exactly when the
			// compaction check runs.
			SweepInterval: time.Hour,
			StateDir:      stateDir,
		}
	}
	ctl := NewController(mkCfg())
	srv := httptest.NewServer(ctl.Handler())
	startWorker(t, srv, "w1", service.SchedulerConfig{Workers: 1})

	// A long blocker pins the single worker slot so the batch stays
	// queued while it is repriced.
	blockerCfg := elasticFleetJob(4000)
	blockerCfg.StepDelayMS = 5
	blocker := decodeSnap(t, submitJob(t, srv.URL, blockerCfg))

	const batch = 16
	ids := make([]string, 0, batch)
	for i := 0; i < batch; i++ {
		cfg := fleetJob(6)
		cfg.Cores = 32
		ids = append(ids, decodeSnap(t, submitJob(t, srv.URL, cfg)).ID)
	}
	// Two reprices per queued job: each is a journaled cfg record that a
	// snapshot makes redundant (only the final config survives).
	for _, id := range ids {
		for _, procs := range []int{48, 24} {
			r := postResize(t, srv.URL, id, procs)
			if r.StatusCode != 200 {
				t.Fatalf("reprice of queued %s to %d = %d", id, procs, r.StatusCode)
			}
			r.Body.Close()
		}
	}
	if resp, err := http.Post(srv.URL+"/jobs/"+blocker.ID+"/cancel", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	for _, id := range ids {
		final := pollFleet(t, srv.URL, id, "done", func(sn service.Snapshot) bool {
			return sn.State.Terminal()
		})
		if final.State != service.StateDone || final.Cores != 24 {
			t.Fatalf("job %s finished %s with %d cores, want done with 24", id, final.State, final.Cores)
		}
	}
	pollFleet(t, srv.URL, blocker.ID, "blocker cancelled", func(sn service.Snapshot) bool {
		return sn.State.Terminal()
	})

	// 1 register + 17 places + 32 cfg reprices + 17 terminal states ≥ the
	// 64-append floor, and every placement is terminal: the sweep's
	// compaction check must fire.
	linesBefore := countWALLines(t, walPath)
	ctl.Sweep()
	if got := ctl.Metrics().WALCompactions(); got != 1 {
		t.Fatalf("wal_compactions = %d after a terminal-dominated sweep, want 1", got)
	}
	linesAfter := countWALLines(t, walPath)
	if linesAfter >= linesBefore {
		t.Fatalf("compaction did not shrink the WAL: %d lines -> %d", linesBefore, linesAfter)
	}
	// The compacted journal still appends: a sweep with nothing to do
	// must not compact again (the append counter was reset).
	ctl.Sweep()
	if got := ctl.Metrics().WALCompactions(); got != 1 {
		t.Fatalf("idle sweep re-compacted: wal_compactions = %d", got)
	}
	before := ctl.Placements()

	// Kill -9 mid-compaction: the process dies after writing a partial
	// snapshot .tmp but before the rename, and its final append is torn.
	srv.Close()
	ctl.Close()
	if err := os.WriteFile(walPath+".tmp", []byte(`{"crc":1,"rec":{"op":"pla`), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"crc":999,"rec":{"op":"sta`)
	f.Close()

	ctl2 := NewController(mkCfg())
	defer ctl2.Close()
	if _, err := os.Stat(walPath + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("stale compaction .tmp survived restart (err=%v)", err)
	}
	if got := ctl2.Metrics().WALTruncations(); got != 1 {
		t.Fatalf("wal truncations after torn tail = %d, want 1", got)
	}
	after := ctl2.Placements()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("placement table diverged across compaction + crash restart:\nbefore %+v\nafter  %+v", before, after)
	}
	// Job sequencing survives compaction: the snapshot's place records
	// carry the IDs the sequence counter is rebuilt from.
	srv2 := httptest.NewServer(ctl2.Handler())
	defer srv2.Close()
	startWorker(t, srv2, "w2", service.SchedulerConfig{Workers: 1})
	resp := submitJob(t, srv2.URL, fleetJob(6))
	if resp.StatusCode != 201 {
		t.Fatalf("post-restart submit = %d", resp.StatusCode)
	}
	snap := decodeSnap(t, resp)
	if snap.ID != fmt.Sprintf("f-%d", batch+2) {
		t.Fatalf("post-restart job ID = %q, want f-%d (sequence replayed from the snapshot)", snap.ID, batch+2)
	}
	pollFleet(t, srv2.URL, snap.ID, "done after restart", func(sn service.Snapshot) bool {
		return sn.State == service.StateDone
	})
}
