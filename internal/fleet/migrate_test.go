package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"nestdiff/internal/service"
)

// TestRingJoinMinimalMovement pins the consistent ring's minimal-movement
// property that join-rebalance relies on: when a worker joins, every key
// that changes owner moves TO the newcomer — never between two
// pre-existing workers — and the moved share is O(keys/N), not a full
// reshuffle.
func TestRingJoinMinimalMovement(t *testing.T) {
	const keys = 300
	old := []string{"w1", "w2", "w3", "w4"}
	before := BuildRing(old, 0)
	after := BuildRing(append(append([]string{}, old...), "w5"), 0)

	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("f-%d", i+1)
		ob, oa := before.Owner(key), after.Owner(key)
		if ob == oa {
			continue
		}
		moved++
		if oa != "w5" {
			t.Fatalf("key %s moved %s -> %s: a join must never move keys between pre-existing workers", key, ob, oa)
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the newcomer: the join changed nothing")
	}
	// Expectation is keys/5 = 60; allow 2x slack for hash imbalance.
	if max := 2 * keys / 5; moved > max {
		t.Fatalf("join moved %d of %d keys, want <= %d (O(keys/N))", moved, keys, max)
	}
}

// fleetWorkers decodes GET /fleet/workers into a map by ID.
func fleetWorkers(t *testing.T, ctlURL string) map[string]WorkerInfo {
	t.Helper()
	var members []WorkerInfo
	fetchJSON(t, ctlURL+"/fleet/workers", &members)
	out := make(map[string]WorkerInfo, len(members))
	for _, w := range members {
		out[w.ID] = w
	}
	return out
}

// postFleet POSTs a control verb with a JSON body and returns the status
// code and decoded body.
func postFleet(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	json.NewDecoder(resp.Body).Decode(&decoded)
	return resp.StatusCode, decoded
}

// TestFleetJoinRebalanceMigratesOnlyToNewcomer: with jobs running across
// two workers, a third joins; the sweep must migrate exactly the jobs
// whose ring owner is now the newcomer — live, via pause → export →
// import under a bumped epoch → resume — and must leave every other
// placement untouched.
func TestFleetJoinRebalanceMigratesOnlyToNewcomer(t *testing.T) {
	ctl, ctlSrv := startController(t, Config{})
	startWorker(t, ctlSrv, "w1", service.SchedulerConfig{Workers: 4})
	startWorker(t, ctlSrv, "w2", service.SchedulerConfig{Workers: 4})

	const jobs = 8
	slow := fleetJob(600)
	slow.StepDelayMS = 5
	ids := make([]string, 0, jobs)
	initial := map[string]string{}
	for i := 0; i < jobs; i++ {
		resp := submitJob(t, ctlSrv.URL, slow)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d = %d", i, resp.StatusCode)
		}
		owner := resp.Header.Get("X-Fleet-Worker")
		snap := decodeSnap(t, resp)
		ids = append(ids, snap.ID)
		initial[snap.ID] = owner
	}

	// The newcomer. The three-worker ring decides up front which jobs it
	// now owns; the sweep must move exactly those.
	startWorker(t, ctlSrv, "w3", service.SchedulerConfig{Workers: 4})
	ring3 := BuildRing([]string{"w1", "w2", "w3"}, 0)
	expectMove := map[string]bool{}
	for _, id := range ids {
		if ring3.Owner(id) == "w3" {
			expectMove[id] = true
		}
	}
	if len(expectMove) == 0 {
		t.Fatal("degenerate fixture: the ring hands the newcomer nothing")
	}

	// Wait for the sweep to settle the table into the three-worker ring.
	deadline := time.Now().Add(20 * time.Second)
	settled := func() bool {
		for _, p := range ctl.Placements() {
			want := initial[p.ID]
			if expectMove[p.ID] {
				want = "w3"
			}
			if p.WorkerID != want {
				return false
			}
		}
		return true
	}
	for !settled() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	for _, p := range ctl.Placements() {
		if expectMove[p.ID] {
			if p.WorkerID != "w3" || p.Epoch != 2 {
				t.Fatalf("job %s should have migrated to w3 at epoch 2, got %+v", p.ID, p)
			}
			if p.State.Terminal() {
				t.Fatalf("migrated job %s ended %s instead of continuing", p.ID, p.State)
			}
		} else {
			if p.WorkerID != initial[p.ID] || p.Epoch != 1 {
				t.Fatalf("job %s should not have moved (was %s), got %+v", p.ID, initial[p.ID], p)
			}
		}
	}
	if got, want := ctl.Metrics().Migrations(), int64(len(expectMove)); got != want {
		t.Fatalf("migrations = %d, want exactly %d (only the newcomer's jobs move)", got, want)
	}

	// The moved jobs keep running on the newcomer: their snapshots advance.
	for id := range expectMove {
		pollFleet(t, ctlSrv.URL, id, "running on newcomer", func(sn service.Snapshot) bool {
			return sn.State == service.StateRunning && sn.Step > 0
		})
	}
	for _, id := range ids {
		resp, err := http.Post(ctlSrv.URL+"/jobs/"+id+"/cancel", "application/json", nil)
		if err == nil {
			resp.Body.Close()
		}
	}
}

// TestFleetDrainHandsOffEverything: POST /fleet/drain migrates every job
// off the worker with bumped epochs, fences the drained copies, routes
// new work elsewhere, and a follow-up deregister removes the worker
// without tripping readiness while peers remain.
func TestFleetDrainHandsOffEverything(t *testing.T) {
	ctl, ctlSrv := startController(t, Config{})
	w1 := startWorker(t, ctlSrv, "w1", service.SchedulerConfig{Workers: 4})
	startWorker(t, ctlSrv, "w2", service.SchedulerConfig{Workers: 4})

	const jobs = 8
	slow := fleetJob(600)
	slow.StepDelayMS = 5
	owned := 0
	for i := 0; i < jobs; i++ {
		resp := submitJob(t, ctlSrv.URL, slow)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d = %d", i, resp.StatusCode)
		}
		if resp.Header.Get("X-Fleet-Worker") == "w1" {
			owned++
		}
		decodeSnap(t, resp)
	}
	if owned == 0 {
		t.Fatal("degenerate fixture: w1 owns nothing to drain")
	}

	code, body := postFleet(t, ctlSrv.URL+"/fleet/drain", map[string]string{"id": "w1"})
	if code != http.StatusOK {
		t.Fatalf("drain = %d (%v)", code, body)
	}
	if moved, ok := body["moved"].(float64); !ok || int(moved) != owned {
		t.Fatalf("drain moved %v jobs, want %d", body["moved"], owned)
	}

	// Every placement now lives on w2; the movers carry epoch 2.
	for _, p := range ctl.Placements() {
		if p.WorkerID != "w2" {
			t.Fatalf("placement %s still on %s after drain", p.ID, p.WorkerID)
		}
		if !p.State.Terminal() && p.Epoch != 1 && p.Epoch != 2 {
			t.Fatalf("placement %s epoch = %d after drain", p.ID, p.Epoch)
		}
	}
	// The drained worker's local copies were fenced, not cancelled — the
	// fence push lands synchronously inside the drain.
	if got := w1.sched.Metrics().JobsFenced(); got != int64(owned) {
		t.Fatalf("drained worker fenced %d copies, want %d", got, owned)
	}
	if ctl.Metrics().Drains() == 0 {
		t.Fatal("drain not counted")
	}

	// Membership shows the drain; the ring routes new work around it.
	if w := fleetWorkers(t, ctlSrv.URL)["w1"]; !w.Draining || !w.Live {
		t.Fatalf("drained worker record = %+v, want live and draining", w)
	}
	resp := submitJob(t, ctlSrv.URL, fleetJob(20))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-drain submit = %d", resp.StatusCode)
	}
	if owner := resp.Header.Get("X-Fleet-Worker"); owner != "w2" {
		t.Fatalf("post-drain job placed on %s, want w2 (w1 is draining)", owner)
	}
	decodeSnap(t, resp)

	// Clean exit: deregister drops w1 from the live set without touching
	// fleet readiness, since w2 remains.
	code, _ = postFleet(t, ctlSrv.URL+"/fleet/deregister", map[string]string{"id": "w1"})
	if code != http.StatusOK {
		t.Fatalf("deregister = %d", code)
	}
	if w := fleetWorkers(t, ctlSrv.URL)["w1"]; w.Live {
		t.Fatalf("deregistered worker still live: %+v", w)
	}
	if resp, err := http.Get(ctlSrv.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("readyz after deregister with a live peer = %d, want 200", resp.StatusCode)
		}
	}

	// Unknown workers 404 on both verbs.
	if code, _ := postFleet(t, ctlSrv.URL+"/fleet/drain", map[string]string{"id": "ghost"}); code != http.StatusNotFound {
		t.Fatalf("drain unknown worker = %d, want 404", code)
	}
	if code, _ := postFleet(t, ctlSrv.URL+"/fleet/deregister", map[string]string{"id": "ghost"}); code != http.StatusNotFound {
		t.Fatalf("deregister unknown worker = %d, want 404", code)
	}

	for _, p := range ctl.Placements() {
		resp, err := http.Post(ctlSrv.URL+"/jobs/"+p.ID+"/cancel", "application/json", nil)
		if err == nil {
			resp.Body.Close()
		}
	}
}

// TestReadyzFlipsWhenLastWorkerDies: readiness is live per-request — it
// flips back to 503 whenever the last live worker is lost, whether by
// missing the liveness deadline or by a clean deregister, and recovers on
// re-registration.
func TestReadyzFlipsWhenLastWorkerDies(t *testing.T) {
	_, ctlSrv := startController(t, Config{
		LivenessDeadline: 150 * time.Millisecond,
		SweepInterval:    15 * time.Millisecond,
	})
	readyz := func() int {
		resp, err := http.Get(ctlSrv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	waitReadyz := func(want int, why string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if readyz() == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("readyz never became %d (%s)", want, why)
	}

	if got := readyz(); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no workers = %d, want 503", got)
	}
	registerWorker(t, ctlSrv.URL, "w1", "http://127.0.0.1:0")
	if got := readyz(); got != http.StatusOK {
		t.Fatalf("readyz with a live worker = %d, want 200", got)
	}
	// The worker never heartbeats; the sweep expires it and readiness must
	// flip back.
	waitReadyz(http.StatusServiceUnavailable, "last worker missed the liveness deadline")

	// Resurrection by re-registration restores readiness...
	registerWorker(t, ctlSrv.URL, "w1", "http://127.0.0.1:0")
	if got := readyz(); got != http.StatusOK {
		t.Fatalf("readyz after re-registration = %d, want 200", got)
	}
	// ...and a clean deregister of the last worker drops it immediately.
	if code, _ := postFleet(t, ctlSrv.URL+"/fleet/deregister", map[string]string{"id": "w1"}); code != http.StatusOK {
		t.Fatalf("deregister = %d", code)
	}
	if got := readyz(); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz after last worker deregistered = %d, want 503", got)
	}
}
