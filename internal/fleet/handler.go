package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"nestdiff/internal/serve"
	"nestdiff/internal/service"
)

// maxControlBody bounds controller request bodies (registrations,
// heartbeats, job submissions).
const maxControlBody = 1 << 20

// Handler returns the nestctl control-plane API:
//
//	POST /fleet/register     worker joins ({"id","url"})
//	POST /fleet/heartbeat    worker liveness + job epochs ({"id","jobs"});
//	                         404 → re-register; reply carries the
//	                         controller instance and a fence list
//	POST /fleet/drain        migrate a worker's jobs away ({"id"})
//	POST /fleet/deregister   clean departure, no liveness wait ({"id"})
//	GET  /fleet/workers      membership, live and dead → []WorkerInfo
//	POST /jobs               admit + place a job (JobConfig body) → 201
//	GET  /jobs               the placement table → [{id,worker,state,adoptions}]
//	GET  /jobs/{id}          proxy to the owning worker → Snapshot
//	GET  /jobs/{id}/{rest...}  proxy events/trace/timeline/checkpoint/field
//	                         (SSE /events streams are relayed live, with
//	                         Accept and Last-Event-ID forwarded)
//	POST /jobs/{id}/{verb}   proxy pause/resume/cancel/resize → Snapshot
//	                         (resize carries ?procs=N through to the worker)
//	GET  /statz              aggregated fleet stats → FleetStats
//	GET  /metrics            Prometheus text format, nestctl_ prefixed
//	GET  /healthz            controller liveness
//	GET  /readyz             503 until at least one worker is live
//
// Saturation (controller MaxPending exceeded, or the owning worker's
// submit queue full) sheds with 429 + Retry-After. Placement responses
// carry the owning worker in an X-Fleet-Worker header.
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /fleet/register", func(w http.ResponseWriter, r *http.Request) {
		var hello struct {
			ID  string `json:"id"`
			URL string `json:"url"`
		}
		if !decodeBody(w, r, &hello) {
			return
		}
		if hello.ID == "" || hello.URL == "" {
			httpError(w, http.StatusBadRequest, errors.New("fleet: registration needs id and url"))
			return
		}
		if c.reg.upsert(hello.ID, hello.URL, time.Now()) {
			c.metrics.workersRegistered.Add(1)
			c.journal(walRecord{Op: walOpRegister, Worker: hello.ID, URL: hello.URL})
		}
		writeJSON(w, http.StatusOK, map[string]string{
			"status":   "registered",
			"instance": c.instance,
		})
	})

	mux.HandleFunc("POST /fleet/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var beat struct {
			ID   string                   `json:"id"`
			Jobs []service.JobEpochReport `json:"jobs"`
		}
		if !decodeBody(w, r, &beat) {
			return
		}
		if !c.reg.heartbeat(beat.ID, time.Now()) {
			httpError(w, http.StatusNotFound, fmt.Errorf("fleet: unknown worker %q", beat.ID))
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Status   string                   `json:"status"`
			Instance string                   `json:"instance"`
			Fenced   []service.JobEpochReport `json:"fenced,omitempty"`
		}{"ok", c.instance, c.fenceList(beat.ID, beat.Jobs)})
	})

	mux.HandleFunc("POST /fleet/drain", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			ID string `json:"id"`
		}
		if !decodeBody(w, r, &body) {
			return
		}
		moved, err := c.Drain(body.ID)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "draining", "moved": moved})
	})

	mux.HandleFunc("POST /fleet/deregister", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			ID string `json:"id"`
		}
		if !decodeBody(w, r, &body) {
			return
		}
		if !c.Deregister(body.ID) {
			httpError(w, http.StatusNotFound, fmt.Errorf("fleet: unknown worker %q", body.ID))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "deregistered"})
	})

	mux.HandleFunc("GET /fleet/workers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.reg.all())
	})

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var cfg service.JobConfig
		if !decodeBody(w, r, &cfg) {
			return
		}
		if c.cfg.MaxPending > 0 && c.activePlacements() >= c.cfg.MaxPending {
			c.metrics.rejectedSaturated.Add(1)
			service.WriteRetryAfter(w, c.cfg.RetryAfterSeconds,
				fmt.Errorf("fleet: %d jobs pending, at MaxPending", c.cfg.MaxPending))
			return
		}
		snap, target, err := c.place(cfg)
		if err != nil {
			if errors.Is(err, errWorkerSaturated) {
				c.metrics.rejectedSaturated.Add(1)
				service.WriteRetryAfter(w, c.cfg.RetryAfterSeconds, err)
				return
			}
			httpError(w, placeStatus(err), err)
			return
		}
		w.Header().Set("X-Fleet-Worker", target.ID)
		writeJSON(w, http.StatusCreated, snap)
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Placements())
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		c.proxyJob(w, r, r.PathValue("id"), "")
	})

	mux.HandleFunc("GET /jobs/{id}/{rest...}", func(w http.ResponseWriter, r *http.Request) {
		c.proxyJob(w, r, r.PathValue("id"), "/"+r.PathValue("rest"))
	})

	mux.HandleFunc("POST /jobs/{id}/{verb}", func(w http.ResponseWriter, r *http.Request) {
		switch verb := r.PathValue("verb"); verb {
		case "pause", "resume", "cancel", "resize":
			c.proxyJob(w, r, r.PathValue("id"), "/"+verb)
		default:
			httpError(w, http.StatusNotFound, fmt.Errorf("fleet: unknown job verb %q", verb))
		}
	})

	mux.HandleFunc("GET /statz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Stats())
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.WritePrometheus(w)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if len(c.reg.live()) == 0 {
			httpError(w, http.StatusServiceUnavailable, errNoWorkers)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ready\n"))
	})

	return mux
}

// proxyJob forwards a job API call to the job's owning worker, relaying
// status, Content-Type and Retry-After, and folds a snapshot reply's
// state back into the placement table.
func (c *Controller) proxyJob(w http.ResponseWriter, r *http.Request, id, sub string) {
	p, worker, err := c.lookupPlacement(id)
	if err != nil {
		code := http.StatusNotFound
		if errors.Is(err, errWorkerUnreachable) {
			code = http.StatusBadGateway
		}
		httpError(w, code, err)
		return
	}
	target := worker.URL + "/jobs/" + id + sub
	if q := r.URL.RawQuery; q != "" {
		target += "?" + q // resize carries ?procs=N
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target, nil)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	// The read path negotiates content through headers: Accept selects the
	// SSE upgrade on /events, Last-Event-ID resumes a dropped stream.
	for _, h := range []string{"Accept", "Last-Event-ID"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	client := c.client
	wantsStream := sub == "/events" && serve.WantsSSE(r)
	if wantsStream {
		// A live stream must outlive the control-call timeout.
		client = c.stream
	}
	resp, err := client.Do(req)
	if err != nil {
		c.metrics.proxyErrors.Add(1)
		httpError(w, http.StatusBadGateway, fmt.Errorf("%w: %v", errWorkerUnreachable, err))
		return
	}
	defer resp.Body.Close()
	if wantsStream && resp.StatusCode == http.StatusOK &&
		strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		c.streamProxy(w, resp, worker.ID)
		return
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		c.metrics.proxyErrors.Add(1)
		httpError(w, http.StatusBadGateway, err)
		return
	}
	if resp.StatusCode/100 == 2 && (sub == "" || sub == "/pause" || sub == "/resume" || sub == "/cancel" || sub == "/resize") {
		var snap service.Snapshot
		if json.Unmarshal(body, &snap) == nil && snap.ID == id {
			c.foldState(p, snap.State)
			c.reconcileCores(p, snap.Cores)
		}
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Fleet-Worker", worker.ID)
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// streamProxy relays a worker's SSE stream to the client frame by frame,
// flushing after every chunk so live events are never buffered at the
// controller. It returns when either side closes.
func (c *Controller) streamProxy(w http.ResponseWriter, resp *http.Response, workerID string) {
	for _, h := range []string{"Content-Type", "Cache-Control", "X-Accel-Buffering"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Fleet-Worker", workerID)
	http.NewResponseController(w).SetWriteDeadline(time.Time{})
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// placeStatus maps placement errors to HTTP status codes (saturation is
// handled separately so it can carry Retry-After).
func placeStatus(err error) int {
	switch {
	case errors.Is(err, errNoWorkers):
		return http.StatusServiceUnavailable
	case errors.Is(err, errWorkerUnreachable):
		return http.StatusBadGateway
	default:
		return http.StatusBadGateway
	}
}

// decodeBody decodes a bounded, strict JSON body; false means a response
// was already written.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxControlBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
