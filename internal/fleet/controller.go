package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"nestdiff/internal/service"
)

// Config tunes a Controller.
type Config struct {
	// LivenessDeadline is how long a worker may stay silent before it is
	// declared dead and its jobs are adopted by survivors. It must exceed
	// the workers' heartbeat interval by a healthy multiple (the default
	// pairing is 2s heartbeats, 6s deadline).
	LivenessDeadline time.Duration
	// SweepInterval is the period of the liveness/adoption/refresh sweep.
	// Zero means 1s.
	SweepInterval time.Duration
	// MaxPending caps fleet-wide non-terminal placements; admission beyond
	// it sheds with 429 + Retry-After. Zero disables the controller-level
	// cap (worker queue-full 429s still propagate).
	MaxPending int
	// RetryAfterSeconds is the Retry-After hint on shed requests. Zero
	// means service.DefaultRetryAfterSeconds.
	RetryAfterSeconds int
	// Replicas is the number of ring vnodes per worker (0 = 64).
	Replicas int
	// Client overrides the HTTP client used for worker calls (tests); nil
	// uses a 10s-timeout default.
	Client *http.Client
}

// placement is the controller's record of one job: where it lives, the
// config to re-create it from if its worker dies before checkpointing,
// and the last state the controller observed. The controller never holds
// simulation data — config and identity only.
type placement struct {
	ID        string           `json:"id"`
	WorkerID  string           `json:"worker"`
	State     service.JobState `json:"state"`
	Adoptions int              `json:"adoptions"`

	cfg service.JobConfig
}

// Controller is the fleet control plane. See the package comment for the
// design; NewController starts the sweep loop, Close stops it.
type Controller struct {
	cfg     Config
	reg     *registry
	metrics *metrics
	client  *http.Client

	mu         sync.Mutex
	placements map[string]*placement
	order      []string
	seq        int

	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewController starts a controller and its background sweep.
func NewController(cfg Config) *Controller {
	if cfg.LivenessDeadline <= 0 {
		cfg.LivenessDeadline = 6 * time.Second
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = time.Second
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = service.DefaultRetryAfterSeconds
	}
	c := &Controller{
		cfg:        cfg,
		reg:        newRegistry(cfg.Replicas),
		metrics:    newMetrics(),
		client:     cfg.Client,
		placements: make(map[string]*placement),
		quit:       make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{Timeout: 10 * time.Second}
	}
	c.wg.Add(1)
	go c.sweeper()
	return c
}

// Close stops the sweep loop.
func (c *Controller) Close() {
	c.once.Do(func() { close(c.quit) })
	c.wg.Wait()
}

// Metrics returns the controller's counters (testing aid).
func (c *Controller) Metrics() *metrics { return c.metrics }

// sweeper runs the periodic liveness check, adoption pass and placement
// state refresh.
func (c *Controller) sweeper() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-t.C:
			c.Sweep()
		}
	}
}

// Sweep runs one liveness/adoption/refresh pass. It is exported so tests
// (and operators via future admin verbs) can force a pass instead of
// waiting out the interval.
func (c *Controller) Sweep() {
	now := time.Now()
	dead := c.reg.expire(c.cfg.LivenessDeadline, now)
	for range dead {
		c.metrics.workersDead.Add(1)
	}
	c.adoptOrphans()
	c.refreshStates()
}

// adoptOrphans re-homes every non-terminal placement whose owner is not
// live onto the ring's choice among survivors. The survivor resumes the
// job from its latest checkpoint in the shared store (or from scratch if
// the job died before its first checkpoint); the controller only sends
// the job's identity and config — a cheap control message, never data. A
// placement that cannot be adopted now (no live workers, adopt call
// failed) stays orphaned and is retried every sweep.
func (c *Controller) adoptOrphans() {
	c.mu.Lock()
	var orphans []*placement
	for _, p := range c.placements {
		if p.State.Terminal() {
			continue
		}
		if w, ok := c.reg.get(p.WorkerID); !ok || !w.Live {
			orphans = append(orphans, p)
		}
	}
	c.mu.Unlock()
	for _, p := range orphans {
		target, ok := c.reg.owner(p.ID)
		if !ok {
			continue // no live workers; retry next sweep
		}
		snap, code, err := c.postFleetJob(target.URL+"/fleet/adopt", p.ID, p.cfg)
		if err != nil || code/100 != 2 {
			c.metrics.adoptionFailures.Add(1)
			continue
		}
		c.mu.Lock()
		p.WorkerID = target.ID
		p.Adoptions++
		p.State = snap.State
		c.mu.Unlock()
		c.metrics.adoptions.Add(1)
	}
}

// refreshStates pulls each live worker's job list and folds the states
// back into the placement table — this is what keeps MaxPending admission
// honest and lets GET /jobs answer from the controller without fanning
// out per request.
func (c *Controller) refreshStates() {
	for _, w := range c.reg.live() {
		var snaps []service.Snapshot
		if err := c.getJSON(w.URL+"/jobs", &snaps); err != nil {
			continue
		}
		c.mu.Lock()
		for _, sn := range snaps {
			if p, ok := c.placements[sn.ID]; ok && p.WorkerID == w.ID {
				p.State = sn.State
			}
		}
		c.mu.Unlock()
	}
}

// activePlacements counts non-terminal placements (the MaxPending gauge).
func (c *Controller) activePlacements() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, p := range c.placements {
		if !p.State.Terminal() {
			n++
		}
	}
	return n
}

// place admits and places one job: consistent-hash owner, worker submit,
// placement record. Returns the worker snapshot.
func (c *Controller) place(cfg service.JobConfig) (service.Snapshot, WorkerInfo, error) {
	c.mu.Lock()
	c.seq++
	id := fmt.Sprintf("f-%d", c.seq)
	c.mu.Unlock()
	target, ok := c.reg.owner(id)
	if !ok {
		return service.Snapshot{}, WorkerInfo{}, errNoWorkers
	}
	snap, code, err := c.postFleetJob(target.URL+"/fleet/jobs", id, cfg)
	if err != nil {
		c.metrics.placementFailures.Add(1)
		return service.Snapshot{}, target, fmt.Errorf("%w: %v", errWorkerUnreachable, err)
	}
	if code == http.StatusTooManyRequests {
		return service.Snapshot{}, target, errWorkerSaturated
	}
	if code/100 != 2 {
		c.metrics.placementFailures.Add(1)
		return service.Snapshot{}, target, fmt.Errorf("fleet: worker %s rejected placement with status %d", target.ID, code)
	}
	c.mu.Lock()
	c.placements[id] = &placement{ID: id, WorkerID: target.ID, State: snap.State, cfg: cfg}
	c.order = append(c.order, id)
	c.mu.Unlock()
	c.metrics.jobsPlaced.Add(1)
	return snap, target, nil
}

// Control-plane error taxonomy; the HTTP layer maps these.
var (
	errNoWorkers         = errors.New("fleet: no live workers")
	errWorkerUnreachable = errors.New("fleet: worker unreachable")
	errWorkerSaturated   = errors.New("fleet: worker submit queue full")
	errUnknownJob        = errors.New("fleet: no such job")
)

// postFleetJob sends the {id, config} control message of placement and
// adoption and decodes the worker's snapshot reply.
func (c *Controller) postFleetJob(url, id string, cfg service.JobConfig) (service.Snapshot, int, error) {
	body, err := json.Marshal(struct {
		ID     string            `json:"id"`
		Config service.JobConfig `json:"config"`
	}{id, cfg})
	if err != nil {
		return service.Snapshot{}, 0, err
	}
	resp, err := c.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return service.Snapshot{}, 0, err
	}
	defer resp.Body.Close()
	var snap service.Snapshot
	if resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			return service.Snapshot{}, resp.StatusCode, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return snap, resp.StatusCode, nil
}

// getJSON fetches a worker endpoint into v.
func (c *Controller) getJSON(url string, v any) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("fleet: GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// lookupPlacement resolves a fleet job ID to its placement and the
// owner's current record.
func (c *Controller) lookupPlacement(id string) (*placement, WorkerInfo, error) {
	c.mu.Lock()
	p, ok := c.placements[id]
	c.mu.Unlock()
	if !ok {
		return nil, WorkerInfo{}, errUnknownJob
	}
	w, ok := c.reg.get(p.WorkerID)
	if !ok {
		return p, WorkerInfo{}, errWorkerUnreachable
	}
	return p, w, nil
}

// Placements lists the controller's placement table in placement order.
func (c *Controller) Placements() []placement {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]placement, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, *c.placements[id])
	}
	return out
}
