package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"nestdiff/internal/elastic"
	"nestdiff/internal/faults"
	"nestdiff/internal/service"
)

// Config tunes a Controller.
type Config struct {
	// LivenessDeadline is how long a worker may stay silent before it is
	// declared dead and its jobs are adopted by survivors. It must exceed
	// the workers' heartbeat interval by a healthy multiple (the default
	// pairing is 2s heartbeats, 6s deadline).
	LivenessDeadline time.Duration
	// SweepInterval is the period of the liveness/adoption/refresh sweep.
	// Zero means 1s.
	SweepInterval time.Duration
	// MaxPending caps fleet-wide non-terminal placements; admission beyond
	// it sheds with 429 + Retry-After. Zero disables the controller-level
	// cap (worker queue-full 429s still propagate).
	MaxPending int
	// RetryAfterSeconds is the Retry-After hint on shed requests. Zero
	// means service.DefaultRetryAfterSeconds.
	RetryAfterSeconds int
	// Replicas is the number of ring vnodes per worker (0 = 64).
	Replicas int
	// StateDir, when non-empty, makes the placement table durable: every
	// placement, epoch and membership mutation is journaled to
	// <StateDir>/placements.wal (append-only, CRC-per-line, fsync-per-
	// append) and replayed on startup, so a controller kill -9 loses no
	// placements and causes no re-registration storm. Empty keeps the
	// table in memory only.
	StateDir string
	// Faults, when non-nil, is consulted before every controller→worker
	// call: a blocked link (faults.Plan.Partition) makes the call fail as
	// an unreachable network would. Chaos drills only.
	Faults *faults.Plan
	// Client overrides the HTTP client used for worker calls (tests); nil
	// uses a 10s-timeout default.
	Client *http.Client
}

// placement is the controller's record of one job: where it lives, the
// config to re-create it from if its worker dies before checkpointing,
// and the last state the controller observed. The controller never holds
// simulation data — config and identity only.
type placement struct {
	ID        string           `json:"id"`
	WorkerID  string           `json:"worker"`
	State     service.JobState `json:"state"`
	Adoptions int              `json:"adoptions"`
	// Epoch is the placement's fencing token: bumped on every adoption and
	// migration, stamped into the owning worker's checkpoints and
	// heartbeats. A worker reporting this job under a lower epoch holds a
	// superseded copy and is told to fence it.
	Epoch int64 `json:"epoch"`

	// floor is the highest epoch ever allocated for this job, including
	// attempts whose reply was lost (>= Epoch). Allocating above it keeps
	// epochs unique across copies — the invariant the worker-side fence
	// guard and the reconcile path both stand on.
	floor int64

	cfg service.JobConfig
}

// Controller is the fleet control plane. See the package comment for the
// design; NewController starts the sweep loop, Close stops it.
type Controller struct {
	cfg     Config
	reg     *registry
	metrics *metrics
	client  *http.Client
	// stream shares client's transport (and so any injected faults) but
	// drops its deadline: SSE proxy streams stay open as long as the
	// client and worker do, which the 10s control-call timeout would kill.
	stream   *http.Client
	wal      *wal   // nil without StateDir
	instance string // fresh per process; lets agents detect restarts

	mu         sync.Mutex
	placements map[string]*placement
	order      []string
	seq        int

	// walAppends counts records appended since the last compaction — the
	// cheap half of the compaction trigger.
	walAppends atomic.Int64

	// autoscaler, when enabled, shifts cores between placements against
	// the fleet budget; autoCancel stops its loop on Close.
	autoscaler *elastic.Autoscaler
	autoCancel context.CancelFunc

	// moveMu serializes migration passes: the sweep's rebalance and an
	// operator-initiated Drain otherwise race to move the same placement
	// (double pause/export, double import, one spurious failure).
	moveMu sync.Mutex

	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewController starts a controller and its background sweep.
func NewController(cfg Config) *Controller {
	if cfg.LivenessDeadline <= 0 {
		cfg.LivenessDeadline = 6 * time.Second
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = time.Second
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = service.DefaultRetryAfterSeconds
	}
	c := &Controller{
		cfg:        cfg,
		reg:        newRegistry(cfg.Replicas),
		metrics:    newMetrics(),
		client:     cfg.Client,
		instance:   fmt.Sprintf("c-%d-%d", os.Getpid(), time.Now().UnixNano()),
		placements: make(map[string]*placement),
		quit:       make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{Timeout: 10 * time.Second}
	}
	c.stream = &http.Client{Transport: c.client.Transport}
	if cfg.StateDir != "" {
		c.replayState(filepath.Join(cfg.StateDir, "placements.wal"))
	}
	c.wg.Add(1)
	go c.sweeper()
	return c
}

// replayState opens the placement WAL, repairs any torn tail and rebuilds
// the placement table, membership view and counters the previous process
// held. Replayed workers come back live with a fresh liveness stamp: they
// never stopped heartbeating, so the restarted controller treats their
// next beat as routine instead of forcing a fleet-wide re-registration. A
// WAL that cannot be opened leaves the controller running in-memory only
// (counted, not fatal — availability beats durability for a control plane
// whose workers keep running regardless).
func (c *Controller) replayState(path string) {
	w, records, truncated, err := openWAL(path)
	if err != nil {
		c.metrics.walFailures.Add(1)
		return
	}
	c.wal = w
	c.metrics.walTruncations.Add(truncated)
	now := time.Now()
	for _, rec := range records {
		c.metrics.walRecords.Add(1)
		switch rec.Op {
		case walOpRegister:
			c.reg.restore(rec.Worker, rec.URL, true, now)
			c.metrics.workersRegistered.Add(1)
		case walOpDead:
			c.reg.markDead(rec.Worker)
			c.metrics.workersDead.Add(1)
		case walOpPlace:
			var jcfg service.JobConfig
			if json.Unmarshal(rec.Cfg, &jcfg) != nil {
				continue
			}
			if _, ok := c.placements[rec.JobID]; !ok {
				c.order = append(c.order, rec.JobID)
			}
			c.placements[rec.JobID] = &placement{
				ID: rec.JobID, WorkerID: rec.Worker, Epoch: rec.Epoch,
				floor: rec.Epoch, State: service.StateQueued, cfg: jcfg,
			}
			var n int
			if _, err := fmt.Sscanf(rec.JobID, "f-%d", &n); err == nil && n > c.seq {
				c.seq = n
			}
			c.metrics.jobsPlaced.Add(1)
		case walOpAdopt:
			if p, ok := c.placements[rec.JobID]; ok {
				p.WorkerID, p.Epoch = rec.Worker, rec.Epoch
				if rec.Epoch > p.floor {
					p.floor = rec.Epoch
				}
				p.Adoptions++
				c.metrics.adoptions.Add(1)
			}
		case walOpMove:
			if p, ok := c.placements[rec.JobID]; ok {
				p.WorkerID, p.Epoch = rec.Worker, rec.Epoch
				if rec.Epoch > p.floor {
					p.floor = rec.Epoch
				}
				c.metrics.migrations.Add(1)
			}
		case walOpEpoch:
			// An allocation intent: some worker may hold a copy at this
			// epoch even though no success was recorded. Replaying it keeps
			// the restarted controller from ever re-handing the epoch out.
			if p, ok := c.placements[rec.JobID]; ok && rec.Epoch > p.floor {
				p.floor = rec.Epoch
			}
		case walOpState:
			if p, ok := c.placements[rec.JobID]; ok {
				p.State = service.JobState(rec.State)
			}
		case walOpCfg:
			// An in-place config update (a resize changed the core count).
			// Only the config mutates: epochs and ownership are exactly as
			// the surrounding records left them.
			if p, ok := c.placements[rec.JobID]; ok {
				var jcfg service.JobConfig
				if json.Unmarshal(rec.Cfg, &jcfg) == nil {
					p.cfg = jcfg
				}
			}
		}
	}
}

// allocEpoch hands out the next fencing epoch for an adoption or
// migration attempt, journaling the allocation BEFORE any worker can see
// it. An epoch is never reused: a retry after a lost reply draws a
// strictly higher one, so no two copies of a job ever run under the same
// epoch. That uniqueness is what lets a worker ignore fence commands
// carrying an epoch at or below its own (Scheduler.Fence) and lets the
// controller treat any report above its table as a lost-reply success to
// reconcile rather than a stale copy to kill (fenceList).
func (c *Controller) allocEpoch(p *placement) int64 {
	c.mu.Lock()
	if p.floor < p.Epoch {
		p.floor = p.Epoch
	}
	p.floor++
	next := p.floor
	c.mu.Unlock()
	c.journal(walRecord{Op: walOpEpoch, JobID: p.ID, Epoch: next})
	return next
}

// journal appends one mutation to the WAL (a no-op without StateDir).
func (c *Controller) journal(rec walRecord) {
	if c.wal == nil {
		return
	}
	if err := c.wal.append(rec); err != nil {
		c.metrics.walFailures.Add(1)
		return
	}
	c.metrics.walRecords.Add(1)
	c.walAppends.Add(1)
}

// journalConfig marshals a job config for a place record.
func journalConfig(cfg service.JobConfig) json.RawMessage {
	b, err := json.Marshal(cfg)
	if err != nil {
		return nil
	}
	return b
}

// Instance returns the controller's process-unique instance ID. Heartbeat
// replies carry it; an agent seeing it change knows the controller
// restarted and re-registers (cheap insurance even with a WAL — and the
// only healing path without one).
func (c *Controller) Instance() string { return c.instance }

// linkDown reports whether the controller→worker direction of a link is
// partitioned by the fault plan (nil-safe; always false outside chaos
// drills).
func (c *Controller) linkDown(workerID string) bool {
	return c.cfg.Faults.LinkBlocked(faults.ControllerNode, workerID)
}

// Close stops the sweep loop (and the autoscaler, if enabled) and syncs
// the WAL.
func (c *Controller) Close() {
	c.once.Do(func() {
		close(c.quit)
		if c.autoCancel != nil {
			c.autoCancel()
		}
	})
	c.wg.Wait()
	c.wal.close()
}

// Metrics returns the controller's counters (testing aid).
func (c *Controller) Metrics() *metrics { return c.metrics }

// sweeper runs the periodic liveness check, adoption pass and placement
// state refresh.
func (c *Controller) sweeper() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-t.C:
			c.Sweep()
		}
	}
}

// Sweep runs one liveness/adoption/refresh pass. It is exported so tests
// (and operators via future admin verbs) can force a pass instead of
// waiting out the interval.
func (c *Controller) Sweep() {
	now := time.Now()
	dead := c.reg.expire(c.cfg.LivenessDeadline, now)
	for _, w := range dead {
		c.metrics.workersDead.Add(1)
		c.journal(walRecord{Op: walOpDead, Worker: w.ID})
	}
	c.adoptOrphans()
	c.refreshStates()
	c.rebalance()
	c.maybeCompact()
}

// walCompactMinAppends is the append floor below which compaction never
// triggers: squashing a short WAL buys nothing.
const walCompactMinAppends = 64

// maybeCompact squashes the placement WAL when it has grown past the
// floor and terminal placements dominate the table — the regime where
// most journaled history (epoch intents, moves, state churn of finished
// jobs) no longer changes what a replay reconstructs.
func (c *Controller) maybeCompact() {
	if c.wal == nil || c.walAppends.Load() < walCompactMinAppends {
		return
	}
	c.mu.Lock()
	total, terminal := len(c.placements), 0
	for _, p := range c.placements {
		if p.State.Terminal() {
			terminal++
		}
	}
	c.mu.Unlock()
	if total == 0 || terminal*2 <= total {
		return
	}
	c.CompactWAL()
}

// CompactWAL rewrites the placement WAL as a snapshot of the current
// state: membership records, then per placement (in placement order) a
// place record with the live config and epoch, its adoption count, an
// epoch-floor intent if the floor ran ahead, and its current state. The
// snapshot replays to exactly the table, counters and floors the
// controller holds now; everything the squashed history only restated is
// gone. Exported so tests and future admin verbs can force a pass.
func (c *Controller) CompactWAL() error {
	if c.wal == nil {
		return nil
	}
	if err := c.wal.compact(c.snapshotRecords()); err != nil {
		c.metrics.walFailures.Add(1)
		return err
	}
	c.walAppends.Store(0)
	c.metrics.walCompactions.Add(1)
	return nil
}

// snapshotRecords builds the minimal record sequence whose replay
// reproduces the controller's current durable state.
func (c *Controller) snapshotRecords() []walRecord {
	var recs []walRecord
	for _, w := range c.reg.all() {
		recs = append(recs, walRecord{Op: walOpRegister, Worker: w.ID, URL: w.URL})
		if !w.Live {
			recs = append(recs, walRecord{Op: walOpDead, Worker: w.ID})
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.order {
		p := c.placements[id]
		recs = append(recs, walRecord{Op: walOpPlace, JobID: p.ID, Worker: p.WorkerID,
			Epoch: p.Epoch, Cfg: journalConfig(p.cfg)})
		for i := 0; i < p.Adoptions; i++ {
			recs = append(recs, walRecord{Op: walOpAdopt, JobID: p.ID, Worker: p.WorkerID, Epoch: p.Epoch})
		}
		if p.floor > p.Epoch {
			recs = append(recs, walRecord{Op: walOpEpoch, JobID: p.ID, Epoch: p.floor})
		}
		recs = append(recs, walRecord{Op: walOpState, JobID: p.ID, State: string(p.State)})
	}
	return recs
}

// adoptOrphans re-homes every non-terminal placement whose owner is not
// live onto the ring's choice among survivors. The survivor resumes the
// job from its latest checkpoint in the shared store (or from scratch if
// the job died before its first checkpoint); the controller only sends
// the job's identity and config — a cheap control message, never data. A
// placement that cannot be adopted now (no live workers, adopt call
// failed) stays orphaned and is retried every sweep.
func (c *Controller) adoptOrphans() {
	c.mu.Lock()
	var orphans []*placement
	for _, p := range c.placements {
		if p.State.Terminal() {
			continue
		}
		if w, ok := c.reg.get(p.WorkerID); !ok || !w.Live {
			orphans = append(orphans, p)
		}
	}
	c.mu.Unlock()
	for _, p := range orphans {
		target, ok := c.reg.owner(p.ID)
		if !ok || c.linkDown(target.ID) {
			continue // no reachable live workers; retry next sweep
		}
		epoch := c.allocEpoch(p)
		snap, code, err := c.postFleetJob(target.URL+"/fleet/adopt", p.ID, epoch, p.cfg)
		if err != nil || code/100 != 2 {
			c.metrics.adoptionFailures.Add(1)
			continue
		}
		c.journal(walRecord{Op: walOpAdopt, JobID: p.ID, Worker: target.ID, Epoch: epoch})
		c.mu.Lock()
		p.WorkerID = target.ID
		p.Epoch = epoch
		p.Adoptions++
		p.State = snap.State
		c.mu.Unlock()
		c.metrics.adoptions.Add(1)
	}
}

// foldState records a freshly observed job state in the placement table
// and journals the first terminal observation — wherever it came from
// (sweep refresh, proxy reply, migration pause). Every observer funnels
// through here so the WAL sees each terminal transition exactly once: an
// unjournaled one would make a replayed table resurrect a finished job,
// and whichever observer reads the worker first consumes the transition.
func (c *Controller) foldState(p *placement, state service.JobState) {
	c.mu.Lock()
	first := state.Terminal() && !p.State.Terminal()
	p.State = state
	c.mu.Unlock()
	if first {
		c.journal(walRecord{Op: walOpState, JobID: p.ID, State: string(state)})
	}
}

// refreshStates pulls each live worker's job list and folds the states
// back into the placement table — this is what keeps MaxPending admission
// honest and lets GET /jobs answer from the controller without fanning
// out per request. Only terminal transitions are journaled (via
// foldState): they decide adoption and admission after a replay, while
// transient states are re-observed from the workers on the first sweep
// anyway.
func (c *Controller) refreshStates() {
	for _, w := range c.reg.live() {
		if c.linkDown(w.ID) {
			continue
		}
		var snaps []service.Snapshot
		if err := c.getJSON(w.URL+"/jobs", &snaps); err != nil {
			continue
		}
		for _, sn := range snaps {
			c.mu.Lock()
			p, ok := c.placements[sn.ID]
			owned := ok && p.WorkerID == w.ID
			c.mu.Unlock()
			if owned {
				c.foldState(p, sn.State)
				c.reconcileCores(p, sn.Cores)
			}
		}
	}
}

// reconcileCores folds a worker-reported core count into the placement
// config, journaling the change (as a cfg record, never a re-place — see
// walOpCfg) so a replayed controller re-creates the job at its current
// size rather than its submitted one. Resizes apply at step boundaries on
// the worker, so the new count arrives here via the next state refresh or
// proxy reply, whichever observes it first.
func (c *Controller) reconcileCores(p *placement, cores int) {
	if cores <= 0 {
		return
	}
	c.mu.Lock()
	changed := p.cfg.Cores != cores
	if changed {
		p.cfg.Cores = cores
	}
	cfg := p.cfg
	c.mu.Unlock()
	if changed {
		c.metrics.resizesObserved.Add(1)
		c.journal(walRecord{Op: walOpCfg, JobID: p.ID, Cfg: journalConfig(cfg)})
	}
}

// activePlacements counts non-terminal placements (the MaxPending gauge).
func (c *Controller) activePlacements() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, p := range c.placements {
		if !p.State.Terminal() {
			n++
		}
	}
	return n
}

// place admits and places one job: consistent-hash owner, worker submit,
// placement record. Returns the worker snapshot.
func (c *Controller) place(cfg service.JobConfig) (service.Snapshot, WorkerInfo, error) {
	c.mu.Lock()
	c.seq++
	id := fmt.Sprintf("f-%d", c.seq)
	c.mu.Unlock()
	target, ok := c.reg.owner(id)
	if !ok {
		return service.Snapshot{}, WorkerInfo{}, errNoWorkers
	}
	if c.linkDown(target.ID) {
		c.metrics.placementFailures.Add(1)
		return service.Snapshot{}, target, fmt.Errorf("%w: link partitioned", errWorkerUnreachable)
	}
	const initialEpoch = 1
	snap, code, err := c.postFleetJob(target.URL+"/fleet/jobs", id, initialEpoch, cfg)
	if err != nil {
		c.metrics.placementFailures.Add(1)
		return service.Snapshot{}, target, fmt.Errorf("%w: %v", errWorkerUnreachable, err)
	}
	if code == http.StatusTooManyRequests {
		return service.Snapshot{}, target, errWorkerSaturated
	}
	if code/100 != 2 {
		c.metrics.placementFailures.Add(1)
		return service.Snapshot{}, target, fmt.Errorf("fleet: worker %s rejected placement with status %d", target.ID, code)
	}
	c.journal(walRecord{Op: walOpPlace, JobID: id, Worker: target.ID, Epoch: initialEpoch, Cfg: journalConfig(cfg)})
	c.mu.Lock()
	c.placements[id] = &placement{ID: id, WorkerID: target.ID, State: snap.State, Epoch: initialEpoch, floor: initialEpoch, cfg: cfg}
	c.order = append(c.order, id)
	c.mu.Unlock()
	c.metrics.jobsPlaced.Add(1)
	return snap, target, nil
}

// Control-plane error taxonomy; the HTTP layer maps these.
var (
	errNoWorkers         = errors.New("fleet: no live workers")
	errWorkerUnreachable = errors.New("fleet: worker unreachable")
	errWorkerSaturated   = errors.New("fleet: worker submit queue full")
	errUnknownJob        = errors.New("fleet: no such job")
)

// postFleetJob sends the {id, epoch, config} control message of placement
// and adoption and decodes the worker's snapshot reply.
func (c *Controller) postFleetJob(url, id string, epoch int64, cfg service.JobConfig) (service.Snapshot, int, error) {
	body, err := json.Marshal(struct {
		ID     string            `json:"id"`
		Epoch  int64             `json:"epoch"`
		Config service.JobConfig `json:"config"`
	}{id, epoch, cfg})
	if err != nil {
		return service.Snapshot{}, 0, err
	}
	resp, err := c.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return service.Snapshot{}, 0, err
	}
	defer resp.Body.Close()
	var snap service.Snapshot
	if resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			return service.Snapshot{}, resp.StatusCode, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return snap, resp.StatusCode, nil
}

// getJSON fetches a worker endpoint into v.
func (c *Controller) getJSON(url string, v any) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("fleet: GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// lookupPlacement resolves a fleet job ID to its placement and the
// owner's current record.
func (c *Controller) lookupPlacement(id string) (*placement, WorkerInfo, error) {
	c.mu.Lock()
	p, ok := c.placements[id]
	var workerID string
	if ok {
		workerID = p.WorkerID // adoption/migration rewrite this under c.mu
	}
	c.mu.Unlock()
	if !ok {
		return nil, WorkerInfo{}, errUnknownJob
	}
	w, ok := c.reg.get(workerID)
	if !ok {
		return p, WorkerInfo{}, errWorkerUnreachable
	}
	return p, w, nil
}

// Placements lists the controller's placement table in placement order.
func (c *Controller) Placements() []placement {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]placement, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, *c.placements[id])
	}
	return out
}
