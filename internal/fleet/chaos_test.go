package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"nestdiff/internal/core"
	"nestdiff/internal/faults"
	"nestdiff/internal/service"
)

// chaosFleetJob mirrors the service chaos suite's drill workload:
// retries, frequent auto-checkpoints, so a death around step 35 rolls
// back at most 10 steps.
func chaosFleetJob(steps int) service.JobConfig {
	cfg := fleetJob(steps)
	cfg.MaxRetries = 3
	cfg.RetryBackoffMS = 5
	cfg.AutoCheckpointSteps = 10
	return cfg
}

// fleetNode is one in-process fleet worker: scheduler, HTTP API and
// heartbeating agent.
type fleetNode struct {
	sched *service.Scheduler
	srv   *httptest.Server
	agent *service.Agent
}

// startFleetNode boots a worker that joins the fleet the way a real
// nestserved does: through its agent's registration and heartbeats. All
// chaos workers share the checkpoint dir and leave startup recovery to
// the controller's adoption path.
func startFleetNode(t *testing.T, ctlURL, id, ckptDir string, plan *faults.Plan) *fleetNode {
	t.Helper()
	sched := service.NewScheduler(service.SchedulerConfig{
		Workers:         1,
		CheckpointDir:   ckptDir,
		DisableRecovery: true,
		Faults:          plan,
	})
	srv := httptest.NewServer(service.NewHandler(sched))
	agent, err := service.StartAgent(service.AgentConfig{
		ControllerURL:     ctlURL,
		WorkerID:          id,
		AdvertiseURL:      srv.URL,
		HeartbeatInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		agent.Stop()
		srv.Close()
		sched.Shutdown(context.Background())
	})
	return &fleetNode{sched: sched, srv: srv, agent: agent}
}

// fetchJSON GETs a URL and decodes the JSON body, failing on non-200.
func fetchJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// fetchText GETs a URL and returns the body as a string.
func fetchText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	return buf.String()
}

// waitSched polls a scheduler directly until cond holds.
func waitSched(t *testing.T, s *service.Scheduler, id, what string, cond func(service.Snapshot) bool) service.Snapshot {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if cond(snap) {
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s on job %s", what, id)
	return service.Snapshot{}
}

// TestFleetChaosWorkerDeathAdoptionBitIdentical is the fleet's core
// resilience claim, the distributed analogue of the scheduler chaos
// suite: a worker that dies mid-run (heartbeats stop, HTTP unreachable,
// scheduler hard-killed with no chance to park or checkpoint) has its job
// adopted by the survivor from the latest persisted checkpoint in the
// shared store, and the resumed run finishes bit-identically to a run
// that was never interrupted — same nest set, same adaptation-event
// trace, same cumulative cost model.
func TestFleetChaosWorkerDeathAdoptionBitIdentical(t *testing.T) {
	const steps = 60
	cfg := chaosFleetJob(steps)

	// Ground truth: the same job on an undisturbed single scheduler.
	ref := service.NewScheduler(service.SchedulerConfig{Workers: 1})
	defer ref.Shutdown(context.Background())
	refSnap, err := ref.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refFinal := waitSched(t, ref, refSnap.ID, "terminal", func(sn service.Snapshot) bool {
		return sn.State.Terminal()
	})
	if refFinal.State != service.StateDone {
		t.Fatalf("fault-free run finished %s (error %q)", refFinal.State, refFinal.Error)
	}
	refEvents, err := ref.JobEvents(refSnap.ID)
	if err != nil {
		t.Fatal(err)
	}

	// The fleet: two workers sharing one checkpoint store, heartbeating
	// fast so the controller notices the death in test time. The first
	// fleet job is f-1; the ring decides up front which worker owns it —
	// that worker is the victim, the other the survivor.
	ckptDir := t.TempDir()
	ctl, ctlSrv := startController(t, Config{
		LivenessDeadline: 250 * time.Millisecond,
		SweepInterval:    25 * time.Millisecond,
	})
	victimID := BuildRing([]string{"wA", "wB"}, 0).Owner("f-1")
	survivorID := "wA"
	if victimID == "wA" {
		survivorID = "wB"
	}

	// The kill closure is bound late: it needs the victim's scheduler,
	// server and agent, which don't exist until after the fault plan that
	// fires it is installed in the victim's SchedulerConfig.
	var killVictim func()
	plan := faults.NewPlan(7).KillWorker(35, func() { killVictim() })

	victim := startFleetNode(t, ctlSrv.URL, victimID, ckptDir, plan)
	survivor := startFleetNode(t, ctlSrv.URL, survivorID, ckptDir, nil)

	// Death at step 35: past checkpoints 10/20/30, so the survivor must
	// resume from step 30 and re-execute five steps. The kill is a hard
	// stop — agent silenced, HTTP torn down, scheduler killed without
	// parking — exactly a process crash as seen from the fleet.
	killVictim = func() {
		victim.agent.Stop()
		victim.srv.CloseClientConnections()
		victim.srv.Close()
		victim.sched.Kill()
	}

	// Both agents register asynchronously; admission needs them live.
	deadline := time.Now().Add(10 * time.Second)
	for len(ctl.reg.live()) < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := len(ctl.reg.live()); n != 2 {
		t.Fatalf("only %d workers registered", n)
	}

	resp := submitJob(t, ctlSrv.URL, cfg)
	if resp.StatusCode != 201 {
		t.Fatalf("fleet submit = %d", resp.StatusCode)
	}
	snap := decodeSnap(t, resp)
	if snap.ID != "f-1" {
		t.Fatalf("fleet job ID = %q", snap.ID)
	}

	final := pollFleet(t, ctlSrv.URL, snap.ID, "done after adoption", func(sn service.Snapshot) bool {
		return sn.State == service.StateDone
	})

	// The job must have finished on the survivor, via exactly one
	// adoption, after the controller declared the victim dead.
	placements := ctl.Placements()
	if len(placements) != 1 {
		t.Fatalf("placement table = %+v", placements)
	}
	p := placements[0]
	if p.WorkerID != survivorID {
		t.Fatalf("job finished on %s, want survivor %s", p.WorkerID, survivorID)
	}
	if p.Adoptions != 1 {
		t.Fatalf("adoptions = %d, want exactly 1", p.Adoptions)
	}
	// At least the killed worker; under CI load the survivor can transiently
	// miss the tight liveness deadline too and re-register — a detector
	// false-positive that cannot double-run the job (the adoption counters
	// below stay exact).
	if got := ctl.Metrics().WorkersDead(); got < 1 {
		t.Fatalf("workers dead counter = %d, want >= 1", got)
	}
	if got := ctl.Metrics().Adoptions(); got != 1 {
		t.Fatalf("adoptions counter = %d, want 1", got)
	}
	if survivor.sched.Metrics().JobsAdopted() != 1 {
		t.Fatal("survivor scheduler did not count the adoption")
	}
	if n := len(plan.Injections()); n != 1 {
		t.Fatalf("fault plan recorded %d injections, want 1", n)
	}

	// Bit-identical resume: nest set, event trace and cost model all
	// match the uninterrupted run.
	if final.Step != steps {
		t.Fatalf("adopted run finished at step %d, want %d", final.Step, steps)
	}
	if !reflect.DeepEqual(final.ActiveNests, refFinal.ActiveNests) {
		t.Fatalf("final nest sets diverged:\nfleet      %+v\nfault-free %+v",
			final.ActiveNests, refFinal.ActiveNests)
	}
	events := fetchFleetEvents(t, ctlSrv.URL, snap.ID)
	if !reflect.DeepEqual(events, refEvents) {
		t.Fatalf("event traces diverged: fleet %d events, fault-free %d events\nfleet      %+v\nfault-free %+v",
			len(events), len(refEvents), events, refEvents)
	}
	if final.ExecTime != refFinal.ExecTime || final.RedistTime != refFinal.RedistTime {
		t.Fatalf("cumulative costs diverged: exec %g vs %g, redist %g vs %g",
			final.ExecTime, refFinal.ExecTime, final.RedistTime, refFinal.RedistTime)
	}

	// The fleet view reflects the death and the adoption.
	text := fetchText(t, ctlSrv.URL+"/metrics")
	for _, want := range []string{
		"nestctl_fleet_workers_dead_total 1",
		"nestctl_fleet_adoptions_total 1",
		"nestctl_fleet_workers_live 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("fleet metrics missing %q:\n%s", want, text)
		}
	}
}

// TestFleetChaosDeathBeforeFirstCheckpointRestartsFromScratch: a worker
// that dies before its job's first auto-checkpoint leaves nothing in the
// shared store; adoption must fall back to restarting the job from its
// config — and still converge to the fault-free result.
func TestFleetChaosDeathBeforeFirstCheckpointRestartsFromScratch(t *testing.T) {
	const steps = 40
	cfg := chaosFleetJob(steps)

	ref := service.NewScheduler(service.SchedulerConfig{Workers: 1})
	defer ref.Shutdown(context.Background())
	refSnap, err := ref.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refFinal := waitSched(t, ref, refSnap.ID, "terminal", func(sn service.Snapshot) bool {
		return sn.State.Terminal()
	})
	refEvents, err := ref.JobEvents(refSnap.ID)
	if err != nil {
		t.Fatal(err)
	}

	ckptDir := t.TempDir()
	ctl, ctlSrv := startController(t, Config{
		LivenessDeadline: 250 * time.Millisecond,
		SweepInterval:    25 * time.Millisecond,
	})
	victimID := BuildRing([]string{"wA", "wB"}, 0).Owner("f-1")
	survivorID := "wA"
	if victimID == "wA" {
		survivorID = "wB"
	}

	var killVictim func()
	// Step 5: before the first auto-checkpoint at 10 — no file on disk.
	plan := faults.NewPlan(7).KillWorker(5, func() { killVictim() })

	victim := startFleetNode(t, ctlSrv.URL, victimID, ckptDir, plan)
	survivor := startFleetNode(t, ctlSrv.URL, survivorID, ckptDir, nil)

	killVictim = func() {
		victim.agent.Stop()
		victim.srv.CloseClientConnections()
		victim.srv.Close()
		victim.sched.Kill()
	}

	deadline := time.Now().Add(10 * time.Second)
	for len(ctl.reg.live()) < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	resp := submitJob(t, ctlSrv.URL, cfg)
	if resp.StatusCode != 201 {
		t.Fatalf("fleet submit = %d", resp.StatusCode)
	}
	snap := decodeSnap(t, resp)

	final := pollFleet(t, ctlSrv.URL, snap.ID, "done after scratch adoption", func(sn service.Snapshot) bool {
		return sn.State == service.StateDone
	})
	placements := ctl.Placements()
	if placements[0].WorkerID != survivorID || placements[0].Adoptions != 1 {
		t.Fatalf("placement after scratch adoption = %+v", placements[0])
	}
	if survivor.sched.Metrics().JobsAdopted() != 1 {
		t.Fatal("survivor did not count the adoption")
	}
	if !reflect.DeepEqual(final.ActiveNests, refFinal.ActiveNests) {
		t.Fatalf("scratch-adopted nest set diverged:\nfleet %+v\nref   %+v",
			final.ActiveNests, refFinal.ActiveNests)
	}
	events := fetchFleetEvents(t, ctlSrv.URL, snap.ID)
	if !reflect.DeepEqual(events, refEvents) {
		t.Fatalf("scratch-adopted trace diverged (%d vs %d events)", len(events), len(refEvents))
	}
}

// fetchFleetEvents reads a job's adaptation events through the
// controller's proxy.
func fetchFleetEvents(t *testing.T, ctlURL, id string) []core.AdaptationEvent {
	t.Helper()
	var events []core.AdaptationEvent
	fetchJSON(t, ctlURL+"/jobs/"+id+"/events", &events)
	return events
}
