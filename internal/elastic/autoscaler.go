package elastic

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nestdiff/internal/perfmodel"
)

// JobLoad is one job's load signal as the autoscaler sees it: identity,
// lifecycle state, current processor count, and the signals the grow and
// shrink decisions read (active nests, recent modelled step latency,
// remaining work).
type JobLoad struct {
	ID    string
	State string // only "running" jobs are resized
	Cores int
	// ActiveNests is the number of nests the job currently tracks — the
	// primary hot/idle signal.
	ActiveNests int
	// StepSeconds is the recent modelled execution time per adaptation
	// interval (informational; the payoff estimate uses the perfmodel).
	StepSeconds float64
	// NX, NY are the parent domain extents (0 falls back to the scripted
	// scenarios' 180×105).
	NX, NY int
	// StepsLeft is the remaining parent-step work; a resize must pay for
	// itself before the job finishes.
	StepsLeft int
}

// Target is what the autoscaler drives: a per-job load view and a resize
// verb. The fleet controller implements it over its placement table and
// the owning workers' snapshot endpoints.
type Target interface {
	Jobs() ([]JobLoad, error)
	Resize(id string, procs int) error
}

// AutoscalerConfig tunes the controller loop.
type AutoscalerConfig struct {
	// Budget is the fleet-wide processor budget: the sum of every
	// non-terminal job's cores never exceeds it. <= 0 disables the
	// autoscaler entirely.
	Budget int
	// Interval is the Run loop period (0 = 2s).
	Interval time.Duration
	// Cooldown is the per-job minimum spacing between resizes, in either
	// direction — the anti-thrash guard (0 = 30s).
	Cooldown time.Duration
	// Horizon is the number of upcoming steps a resize must pay for
	// itself within (0 = 50).
	Horizon int
	// GrowMargin is how many times the modelled redistribution cost the
	// predicted saving must exceed before growing (0 = 2). Together with
	// IdleNests < HotNests it forms the hysteresis band.
	GrowMargin float64
	// HotNests is the nest count at or above which a job is hot and a
	// grow is considered (0 = 3).
	HotNests int
	// IdleNests is the nest count at or below which a job is idle and a
	// shrink is considered (0 = 0, i.e. only nest-free jobs shrink).
	IdleNests int
	// MinProcs floors every job (0 = 4); MaxProcs caps it (0 = Budget).
	MinProcs int
	MaxProcs int
	// ElemBytes and RedistBytesPerSec parameterize the modelled resize
	// cost: moving NX·NY·9·ElemBytes of fine-grid state at the contended
	// all-to-all rate (0 = 4096 bytes and 2 GB/s, the tracker defaults).
	ElemBytes         int
	RedistBytesPerSec float64
	// Model overrides the profiled execution model (nil builds one).
	Model *perfmodel.ExecModel
}

func (c AutoscalerConfig) withDefaults() AutoscalerConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.Horizon <= 0 {
		c.Horizon = 50
	}
	if c.GrowMargin <= 0 {
		c.GrowMargin = 2
	}
	if c.HotNests <= 0 {
		c.HotNests = 3
	}
	if c.IdleNests < 0 {
		c.IdleNests = 0
	}
	if c.MinProcs <= 0 {
		c.MinProcs = 4
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = c.Budget
	}
	if c.ElemBytes <= 0 {
		c.ElemBytes = 4096
	}
	if c.RedistBytesPerSec <= 0 {
		c.RedistBytesPerSec = 2e9
	}
	return c
}

// Decision is one applied (or attempted) resize.
type Decision struct {
	JobID  string
	From   int
	To     int
	Reason string
	Err    error // non-nil when the Target.Resize call failed
}

// Autoscaler shifts processors between jobs against a fleet-wide budget:
// hot jobs (many nests, predicted to speed up by more than the resize
// costs within the horizon) grow; idle jobs shrink, returning cores to
// the budget. Hysteresis (HotNests > IdleNests), a per-job cooldown and
// the payoff test keep it from thrashing — the same discipline as the
// paper's dynamic strategy, which only reallocates when the predicted
// gain beats the redistribution bill.
type Autoscaler struct {
	target Target
	cfg    AutoscalerConfig
	model  *perfmodel.ExecModel

	mu   sync.Mutex
	last map[string]time.Time // last resize per job

	grows    atomic.Int64
	shrinks  atomic.Int64
	failures atomic.Int64
}

// NewAutoscaler builds an autoscaler over a target. With Budget <= 0 the
// Tick and Run loops are no-ops.
func NewAutoscaler(t Target, cfg AutoscalerConfig) (*Autoscaler, error) {
	if t == nil {
		return nil, fmt.Errorf("elastic: nil autoscaler target")
	}
	cfg = cfg.withDefaults()
	model := cfg.Model
	if model == nil && cfg.Budget > 0 {
		var err error
		model, err = perfmodel.Profile(perfmodel.DefaultOracle(),
			perfmodel.DefaultSampleDomains(), perfmodel.DefaultProcSizes())
		if err != nil {
			return nil, err
		}
	}
	return &Autoscaler{
		target: t,
		cfg:    cfg,
		model:  model,
		last:   make(map[string]time.Time),
	}, nil
}

// Counters returns the grow/shrink/failure totals (for metrics export).
func (a *Autoscaler) Counters() (grows, shrinks, failures int64) {
	return a.grows.Load(), a.shrinks.Load(), a.failures.Load()
}

// Run ticks the autoscaler until ctx is cancelled.
func (a *Autoscaler) Run(ctx context.Context) {
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			a.Tick(now)
		}
	}
}

// Tick runs one decision pass at the given instant, returning the
// resizes it issued. Shrinks are decided before grows so the cores an
// idle job frees are available to hot jobs within the same pass.
func (a *Autoscaler) Tick(now time.Time) []Decision {
	if a.cfg.Budget <= 0 {
		return nil
	}
	jobs, err := a.target.Jobs()
	if err != nil {
		return nil
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })

	used := 0
	for _, j := range jobs {
		used += j.Cores
	}

	var out []Decision
	apply := func(j JobLoad, to int, reason string) {
		d := Decision{JobID: j.ID, From: j.Cores, To: to, Reason: reason}
		d.Err = a.target.Resize(j.ID, to)
		a.mu.Lock()
		a.last[j.ID] = now // failures cool down too: no hammering a broken path
		a.mu.Unlock()
		if d.Err != nil {
			a.failures.Add(1)
		} else {
			used += to - j.Cores
			if to > j.Cores {
				a.grows.Add(1)
			} else {
				a.shrinks.Add(1)
			}
		}
		out = append(out, d)
	}

	// Shrink pass: idle running jobs halve (floored at MinProcs).
	for _, j := range jobs {
		if j.State != "running" || j.Cores <= a.cfg.MinProcs || !a.cooledDown(j.ID, now) {
			continue
		}
		if j.ActiveNests > a.cfg.IdleNests {
			continue
		}
		to := max(j.Cores/2, a.cfg.MinProcs)
		if to < j.Cores {
			apply(j, to, fmt.Sprintf("idle: %d active nests", j.ActiveNests))
		}
	}

	// Grow pass: hot jobs double (capped at MaxProcs and the budget)
	// when the predicted saving over the horizon beats the modelled
	// redistribution cost by the configured margin.
	for _, j := range jobs {
		if j.State != "running" || !a.cooledDown(j.ID, now) {
			continue
		}
		if j.ActiveNests < a.cfg.HotNests {
			continue
		}
		to := min(j.Cores*2, a.cfg.MaxProcs)
		if to <= j.Cores || used+(to-j.Cores) > a.cfg.Budget {
			continue
		}
		saving, cost, ok := a.payoff(j, to)
		if !ok || saving <= cost*a.cfg.GrowMargin {
			continue
		}
		apply(j, to, fmt.Sprintf("hot: %d nests, predicted saving %.3gs vs resize cost %.3gs over %d steps",
			j.ActiveNests, saving, cost, a.cfg.Horizon))
	}
	return out
}

// cooledDown reports whether the job's per-resize cooldown has elapsed.
func (a *Autoscaler) cooledDown(id string, now time.Time) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.last[id]
	return !ok || now.Sub(t) >= a.cfg.Cooldown
}

// payoff estimates whether growing job j to `to` cores pays for itself:
// the predicted per-step execution saving, summed over the smaller of
// the horizon and the job's remaining steps, against the modelled cost
// of redistributing the job's fine-grid state once.
func (a *Autoscaler) payoff(j JobLoad, to int) (saving, cost float64, ok bool) {
	nx, ny := j.NX, j.NY
	if nx <= 0 || ny <= 0 {
		nx, ny = 180, 105 // the scripted scenarios' domain
	}
	cur, err := a.model.Predict(nx, ny, j.Cores)
	if err != nil {
		return 0, 0, false
	}
	grown, err := a.model.Predict(nx, ny, to)
	if err != nil {
		return 0, 0, false
	}
	steps := a.cfg.Horizon
	if j.StepsLeft > 0 && j.StepsLeft < steps {
		steps = j.StepsLeft
	}
	saving = (cur - grown) * float64(steps)
	cost = float64(nx) * float64(ny) * 9 * float64(a.cfg.ElemBytes) / a.cfg.RedistBytesPerSec
	return saving, cost, true
}
