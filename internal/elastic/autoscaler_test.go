package elastic

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// fakeTarget is an in-memory fleet: resizes apply instantly, and every
// applied resize is recorded so tests can audit spacing and direction.
type fakeTarget struct {
	mu     sync.Mutex
	jobs   map[string]*JobLoad
	failID string // Resize on this job always errors
	log    []appliedResize
}

type appliedResize struct {
	id       string
	from, to int
	at       time.Time
}

func (f *fakeTarget) Jobs() ([]JobLoad, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]JobLoad, 0, len(f.jobs))
	for _, j := range f.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

func (f *fakeTarget) resize(id string, procs int, at time.Time) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if id == f.failID {
		return errors.New("injected resize failure")
	}
	j, ok := f.jobs[id]
	if !ok {
		return fmt.Errorf("unknown job %s", id)
	}
	f.log = append(f.log, appliedResize{id: id, from: j.Cores, to: procs, at: at})
	j.Cores = procs
	return nil
}

func (f *fakeTarget) totalCores() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0
	for _, j := range f.jobs {
		total += j.Cores
	}
	return total
}

// clockTarget binds the fake target's resize log to the soak's virtual
// clock (Target.Resize has no time argument).
type clockTarget struct {
	f   *fakeTarget
	now *time.Time
}

func (c clockTarget) Jobs() ([]JobLoad, error)          { return c.f.Jobs() }
func (c clockTarget) Resize(id string, procs int) error { return c.f.resize(id, procs, *c.now) }

// TestAutoscalerSoak drives a hot/idle/paused job mix through many
// decision passes under a fleet budget: the hot job must grow at least
// once, the idle job must shrink at least once, the budget must never be
// exceeded, the paused job must never be touched, and the per-job
// cooldown must keep any job from being resized twice within the window
// (the anti-oscillation guard).
func TestAutoscalerSoak(t *testing.T) {
	// Core counts sit inside the profiled processor range (16..1024):
	// below it Predict clamps, the modelled saving vanishes, and a grow
	// can never pay for itself.
	ft := &fakeTarget{jobs: map[string]*JobLoad{
		"hot":    {ID: "hot", State: "running", Cores: 16, ActiveNests: 5, NX: 180, NY: 105, StepsLeft: 500},
		"idle":   {ID: "idle", State: "running", Cores: 64, ActiveNests: 0, NX: 180, NY: 105, StepsLeft: 500},
		"paused": {ID: "paused", State: "paused", Cores: 16, ActiveNests: 9, NX: 180, NY: 105, StepsLeft: 500},
	}}
	const budget = 128
	cooldown := 5 * time.Second
	now := time.Unix(1700000000, 0)
	as, err := NewAutoscaler(clockTarget{f: ft, now: &now}, AutoscalerConfig{
		Budget:   budget,
		Cooldown: cooldown,
		// Make the payoff test about direction, not magnitude: any
		// predicted speedup justifies a grow.
		GrowMargin:        1e-9,
		RedistBytesPerSec: 1e18,
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 60; i++ {
		now = now.Add(time.Second)
		as.Tick(now)
		if total := ft.totalCores(); total > budget {
			t.Fatalf("tick %d: fleet uses %d cores over the %d budget", i, total, budget)
		}
	}

	grows, shrinks, failures := as.Counters()
	if grows < 1 {
		t.Fatalf("soak produced %d grows, want >= 1", grows)
	}
	if shrinks < 1 {
		t.Fatalf("soak produced %d shrinks, want >= 1", shrinks)
	}
	if failures != 0 {
		t.Fatalf("soak produced %d failures, want 0", failures)
	}

	ft.mu.Lock()
	defer ft.mu.Unlock()
	lastAt := make(map[string]time.Time)
	for _, r := range ft.log {
		if r.id == "paused" {
			t.Fatalf("autoscaler resized a paused job: %+v", r)
		}
		switch r.id {
		case "hot":
			if r.to <= r.from {
				t.Fatalf("hot job oscillated: resized %d -> %d", r.from, r.to)
			}
		case "idle":
			if r.to >= r.from {
				t.Fatalf("idle job oscillated: resized %d -> %d", r.from, r.to)
			}
		}
		if prev, ok := lastAt[r.id]; ok && r.at.Sub(prev) < cooldown {
			t.Fatalf("job %s resized twice within the %s cooldown (%s apart)",
				r.id, cooldown, r.at.Sub(prev))
		}
		lastAt[r.id] = r.at
	}
	if ft.jobs["hot"].Cores <= 16 {
		t.Fatalf("hot job still at %d cores after soak", ft.jobs["hot"].Cores)
	}
	if ft.jobs["idle"].Cores >= 64 {
		t.Fatalf("idle job still at %d cores after soak", ft.jobs["idle"].Cores)
	}
	if ft.jobs["idle"].Cores < 4 {
		t.Fatalf("idle job shrunk below the %d-proc floor: %d", 4, ft.jobs["idle"].Cores)
	}
}

// TestAutoscalerFailuresCoolDown pins the broken-path guard: a failing
// resize counts as a failure AND starts the job's cooldown, so the
// autoscaler does not hammer a worker that keeps rejecting resizes.
func TestAutoscalerFailuresCoolDown(t *testing.T) {
	ft := &fakeTarget{
		failID: "idle",
		jobs: map[string]*JobLoad{
			"idle": {ID: "idle", State: "running", Cores: 32, ActiveNests: 0, StepsLeft: 500},
		},
	}
	now := time.Unix(1700000000, 0)
	as, err := NewAutoscaler(clockTarget{f: ft, now: &now}, AutoscalerConfig{
		Budget:   64,
		Cooldown: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds := as.Tick(now); len(ds) != 1 || ds[0].Err == nil {
		t.Fatalf("first tick decisions %+v, want one failed shrink", ds)
	}
	// Within the cooldown: no retry, even though the job is still idle.
	if ds := as.Tick(now.Add(time.Second)); len(ds) != 0 {
		t.Fatalf("tick inside cooldown issued %+v", ds)
	}
	// After the cooldown the shrink is attempted again.
	if ds := as.Tick(now.Add(11 * time.Second)); len(ds) != 1 {
		t.Fatalf("tick after cooldown issued %+v, want one decision", ds)
	}
	if _, _, failures := as.Counters(); failures != 2 {
		t.Fatalf("%d failures recorded, want 2", failures)
	}
	if ft.jobs["idle"].Cores != 32 {
		t.Fatalf("failed resizes changed cores to %d", ft.jobs["idle"].Cores)
	}
}

// TestAutoscalerDisabled pins the off switch and constructor errors.
func TestAutoscalerDisabled(t *testing.T) {
	if _, err := NewAutoscaler(nil, AutoscalerConfig{Budget: 8}); err == nil {
		t.Fatal("nil target accepted")
	}
	ft := &fakeTarget{jobs: map[string]*JobLoad{
		"idle": {ID: "idle", State: "running", Cores: 32, ActiveNests: 0, StepsLeft: 500},
	}}
	now := time.Unix(1700000000, 0)
	as, err := NewAutoscaler(clockTarget{f: ft, now: &now}, AutoscalerConfig{Budget: 0})
	if err != nil {
		t.Fatal(err)
	}
	if ds := as.Tick(now); ds != nil {
		t.Fatalf("disabled autoscaler issued %+v", ds)
	}
}
