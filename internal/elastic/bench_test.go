package elastic

import (
	"bytes"
	"fmt"
	"testing"

	"nestdiff/internal/core"
	"nestdiff/internal/geom"
	"nestdiff/internal/pda"
	"nestdiff/internal/wrfsim"
)

// benchPipeline builds the golden three-storm pipeline at the given size
// and runs it to step 50, where all three nests are live — the state an
// operator would actually be resizing.
func benchPipeline(b *testing.B, procs int) *core.Pipeline {
	b.Helper()
	m, err := BuildMachine(procs, "switched", 8)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := core.NewTracker(m.Grid, m.Net, m.Model, m.Oracle, core.Scratch, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	wcfg := wrfsim.DefaultConfig()
	wcfg.NX, wcfg.NY = 96, 72
	wcfg.SpawnRate = 0
	model, err := wrfsim.NewModel(wcfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []wrfsim.Cell{
		{X: 20, Y: 18, Radius: 5, Peak: 2.5, Life: 6 * 3600},
		{X: 70, Y: 50, Radius: 4, Peak: 2.0, Life: 6 * 3600},
		{X: 48, Y: 30, Radius: 4, Peak: 2.2, Life: 6 * 3600},
	} {
		if err := model.InjectCell(c); err != nil {
			b.Fatal(err)
		}
	}
	p, err := core.NewPipeline(model, tr, core.PipelineConfig{
		WRFGrid:       geom.NewGrid(8, 6),
		AnalysisRanks: 6,
		Interval:      5,
		PDA:           pda.DefaultOptions(),
		MaxNests:      3,
		Distributed:   true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.Run(50); err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkResizeInPlace measures one live grid resize: gather each
// nest's blocks, rebuild the rank world at the new size, scatter through
// the pooled Alltoallv. Alternating between the two sizes keeps every
// iteration a real cross-size remap on live state.
func BenchmarkResizeInPlace(b *testing.B) {
	for _, pair := range [][2]int{{4, 8}, {8, 16}} {
		b.Run(fmt.Sprintf("%dto%d", pair[0], pair[1]), func(b *testing.B) {
			p := benchPipeline(b, pair[0])
			sizes := pair
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Resize(p, sizes[(i+1)%2], "switched", 8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKillAndRestore measures the pre-elastic alternative: park the
// job with a full pipeline checkpoint and restore it onto a freshly
// built machine. The restore cannot change the processor count at all
// (same-size machine, ErrProcMismatch otherwise) — so this path pays
// full-state serialization AND still needs a follow-up resize, where the
// in-place path moves only live nest state.
func BenchmarkKillAndRestore(b *testing.B) {
	for _, procs := range []int{4, 8} {
		b.Run(fmt.Sprintf("p%d", procs), func(b *testing.B) {
			p := benchPipeline(b, procs)
			var buf bytes.Buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := p.SaveState(&buf); err != nil {
					b.Fatal(err)
				}
				m, err := BuildMachine(procs, "switched", 8)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.RestorePipeline(bytes.NewReader(buf.Bytes()), m.Net, m.Model, m.Oracle); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
