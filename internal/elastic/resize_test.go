package elastic

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"nestdiff/internal/core"
	"nestdiff/internal/geom"
	"nestdiff/internal/pda"
	"nestdiff/internal/wrfsim"
)

// goldenPipeline builds a distributed scratch-strategy pipeline at the
// given processor count over a deterministic three-storm scenario. The
// storms' staggered lifetimes (steps ~60, ~105 and beyond the run) force
// nest deletions and reallocation churn inside every post-resize window.
func goldenPipeline(t *testing.T, procs int) *core.Pipeline {
	t.Helper()
	m, err := BuildMachine(procs, "switched", 8)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.NewTracker(m.Grid, m.Net, m.Model, m.Oracle, core.Scratch, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	wcfg := wrfsim.DefaultConfig()
	wcfg.NX, wcfg.NY = 96, 72
	wcfg.SpawnRate = 0
	model, err := wrfsim.NewModel(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []wrfsim.Cell{
		{X: 20, Y: 18, Radius: 5, Peak: 2.5, Life: 2 * 3600},
		{X: 70, Y: 50, Radius: 4, Peak: 2.0, Life: 12600},
		{X: 48, Y: 30, Radius: 4, Peak: 2.2, Life: 6 * 3600},
	} {
		if err := model.InjectCell(c); err != nil {
			t.Fatal(err)
		}
	}
	p, err := core.NewPipeline(model, tr, core.PipelineConfig{
		WRFGrid:       geom.NewGrid(8, 6),
		AnalysisRanks: 6,
		Interval:      5,
		PDA:           pda.DefaultOptions(),
		MaxNests:      3,
		Distributed:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// eventsBetween returns the adaptation events with lo < Step <= hi.
func eventsBetween(events []core.AdaptationEvent, lo, hi int) []core.AdaptationEvent {
	var out []core.AdaptationEvent
	for _, e := range events {
		if e.Step > lo && e.Step <= hi {
			out = append(out, e)
		}
	}
	return out
}

// TestResizeGoldenEquivalence is the tentpole contract: a pipeline
// resized mid-run (4 → 8 → 3 processors) resumes identically to
// pipelines that ran at the new size all along. With the scratch
// strategy the allocation is memoryless, so after each resize the
// adaptation events — nest sets, diffs, modelled costs AND the executed
// Alltoallv times — must equal the fixed-size run's events bit for bit
// over the same step range. The final fine-grid nest states must agree
// within the same 1e-12 bound the repo's distributed-vs-serial test
// uses: the advection kernel's border/interior column split follows
// block edges, so different decomposition histories can differ by ULPs.
func TestResizeGoldenEquivalence(t *testing.T) {
	elastic := goldenPipeline(t, 4)
	fixed8 := goldenPipeline(t, 8)
	fixed3 := goldenPipeline(t, 3)

	if err := elastic.Run(50); err != nil {
		t.Fatal(err)
	}
	rep, err := Resize(elastic, 8, "switched", 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OldProcs != 4 || rep.NewProcs != 8 {
		t.Fatalf("resize report %+v, want 4 -> 8", rep)
	}
	if rep.Nests == 0 || rep.MovedBytes == 0 {
		t.Fatalf("grow remapped no nest state: %+v", rep)
	}
	if err := elastic.Run(40); err != nil {
		t.Fatal(err)
	}
	rep, err = Resize(elastic, 3, "switched", 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OldProcs != 8 || rep.NewProcs != 3 {
		t.Fatalf("resize report %+v, want 8 -> 3", rep)
	}
	if err := elastic.Run(40); err != nil {
		t.Fatal(err)
	}

	if err := fixed8.Run(130); err != nil {
		t.Fatal(err)
	}
	if err := fixed3.Run(130); err != nil {
		t.Fatal(err)
	}

	// The window after each resize must replay the fixed-size run's
	// events exactly — set, diff, modelled metrics and executed
	// redistribution time alike.
	compare := func(name string, got, want []core.AdaptationEvent) {
		t.Helper()
		if len(got) == 0 {
			t.Fatalf("%s: no adaptation events in window", name)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d events vs %d in the fixed-size run", name, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("%s: step %d event diverged:\nresized: %+v\nfixed:   %+v",
					name, got[i].Step, got[i], want[i])
			}
		}
	}
	compare("after 4->8", eventsBetween(elastic.Events(), 50, 90), eventsBetween(fixed8.Events(), 50, 90))
	compare("after 8->3", eventsBetween(elastic.Events(), 90, 130), eventsBetween(fixed3.Events(), 90, 130))

	// Final nest population and per-nest fine-grid state match the
	// fixed-3 run bit for bit.
	if !reflect.DeepEqual(elastic.ActiveSet(), fixed3.ActiveSet()) {
		t.Fatalf("final set %v vs fixed-size %v", elastic.ActiveSet(), fixed3.ActiveSet())
	}
	got, want := elastic.DistributedNests(), fixed3.DistributedNests()
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("%d final nests vs %d (want a non-empty match)", len(got), len(want))
	}
	for id, gn := range got {
		wn, ok := want[id]
		if !ok {
			t.Fatalf("nest %d only in the resized run", id)
		}
		if gn.Procs() != wn.Procs() {
			t.Fatalf("nest %d on procs %v vs %v", id, gn.Procs(), wn.Procs())
		}
		gf, wf := gn.Gather(), wn.Gather()
		if len(gf.Data) != len(wf.Data) {
			t.Fatalf("nest %d field %d samples vs %d", id, len(gf.Data), len(wf.Data))
		}
		for i := range gf.Data {
			if d := math.Abs(gf.Data[i] - wf.Data[i]); d > 1e-12 {
				t.Fatalf("nest %d sample %d: %g vs %g (diff %g)",
					id, i, gf.Data[i], wf.Data[i], d)
			}
		}
	}
}

// TestResizeNoopAndErrors pins the edges: resizing to the current size
// moves nothing, bad arguments fail without touching the pipeline, and a
// failed resize leaves the pipeline runnable at its old size.
func TestResizeNoopAndErrors(t *testing.T) {
	if _, err := Resize(nil, 8, "", 0); err == nil {
		t.Fatal("nil pipeline accepted")
	}
	p := goldenPipeline(t, 4)
	if err := p.Run(20); err != nil {
		t.Fatal(err)
	}
	if _, err := Resize(p, 0, "", 0); err == nil {
		t.Fatal("zero processor count accepted")
	}
	if _, err := Resize(p, 8, "hypercube", 0); err == nil {
		t.Fatal("unknown machine kind accepted")
	}
	rep, err := Resize(p, 4, "switched", 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nests != 0 || rep.MovedBytes != 0 {
		t.Fatalf("same-size resize moved state: %+v", rep)
	}
	// Still runnable after the rejected and no-op resizes.
	if err := p.Run(10); err != nil {
		t.Fatal(err)
	}
	if p.StepCount() != 30 {
		t.Fatalf("pipeline at step %d, want 30", p.StepCount())
	}
}

// TestBuildMachineKinds covers the machine factory used by both the
// resize path and the scheduler's job construction.
func TestBuildMachineKinds(t *testing.T) {
	for _, kind := range []string{"", "torus", "mesh", "switched"} {
		m, err := BuildMachine(48, kind, 8)
		if err != nil {
			t.Fatalf("BuildMachine(48, %q): %v", kind, err)
		}
		if m.Grid.Size() != 48 || m.Net == nil || m.Model == nil || m.Oracle == nil {
			t.Fatalf("BuildMachine(48, %q) incomplete: %+v", kind, m)
		}
	}
	if _, err := BuildMachine(0, "torus", 8); err == nil {
		t.Fatal("zero cores accepted")
	}
	var wantErr error
	if _, wantErr = BuildMachine(8, "hypercube", 8); wantErr == nil {
		t.Fatal("unknown kind accepted")
	}
	if errors.Is(wantErr, core.ErrProcMismatch) {
		t.Fatal("unknown-kind error must not alias ErrProcMismatch")
	}
}
