// Package elastic resizes running jobs: it rebuilds a pipeline's
// processor grid at a step boundary (redistributing every nest's blocks
// through the pooled Alltoallv path) and decides, fleet-wide, which jobs
// should grow or shrink — the paper's scratch-vs-diffusion reallocation
// decision lifted from nests inside one job to processors across jobs.
//
// The package sits between core and the serving layers: the scheduler
// (internal/service) calls Resize on a live pipeline when an operator or
// the autoscaler posts /jobs/{id}/resize, and the fleet controller
// (internal/fleet) feeds the Autoscaler its per-job load view.
package elastic

import (
	"fmt"
	"strings"

	"nestdiff/internal/geom"
	"nestdiff/internal/perfmodel"
	"nestdiff/internal/topology"
)

// Machine bundles the modelled hardware and the performance models a
// tracker needs: the process grid, the interconnect, and the profiled
// execution model with its oracle. It is configuration, not state — two
// machines built from the same parameters are interchangeable, which is
// what makes rebuilding one at a new size safe mid-run.
type Machine struct {
	Grid   geom.Grid
	Net    topology.Network
	Model  *perfmodel.ExecModel
	Oracle *perfmodel.Oracle
}

// BuildMachine constructs the modelled machine for a processor count and
// interconnect kind ("torus", "mesh" or "switched"; empty means torus).
// coresPerNode applies to switched machines (0 means 8).
func BuildMachine(cores int, kind string, coresPerNode int) (Machine, error) {
	if cores < 1 {
		return Machine{}, fmt.Errorf("elastic: invalid core count %d", cores)
	}
	if kind == "" {
		kind = "torus"
	}
	if coresPerNode <= 0 {
		coresPerNode = 8
	}
	px, py := geom.NearSquareFactors(cores)
	g := geom.NewGrid(px, py)
	var (
		net topology.Network
		err error
	)
	switch strings.ToLower(kind) {
	case "torus":
		net, err = topology.NewTorus3D(g, topology.TorusDimsFor(cores), topology.DefaultTorusParams())
	case "mesh":
		net, err = topology.NewMesh3D(g, topology.TorusDimsFor(cores), topology.DefaultTorusParams())
	case "switched":
		net, err = topology.NewSwitched(cores, coresPerNode, topology.DefaultSwitchedParams())
	default:
		err = fmt.Errorf("elastic: unknown machine %q (want torus, mesh or switched)", kind)
	}
	if err != nil {
		return Machine{}, err
	}
	oracle := perfmodel.DefaultOracle()
	model, err := perfmodel.Profile(oracle, perfmodel.DefaultSampleDomains(), perfmodel.DefaultProcSizes())
	if err != nil {
		return Machine{}, err
	}
	return Machine{Grid: g, Net: net, Model: model, Oracle: oracle}, nil
}
