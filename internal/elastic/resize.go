package elastic

import (
	"fmt"

	"nestdiff/internal/core"
)

// Resize changes a running pipeline's processor count in place at a step
// boundary: it rebuilds the modelled machine at newProcs cores (same
// interconnect kind), reseeds the tracker over the new grid, rebuilds
// the compute world and remaps every distributed nest's blocks from its
// old processor sub-rectangle to its new one through one pooled
// Alltoallv per nest. The pipeline resumes exactly where it stopped;
// with the scratch strategy the post-resize step trace is bit-identical
// to a run that was at the new size all along (the diffusion strategy's
// allocations are history-dependent, so only the nest sets and model
// evolution — not the modelled redistribution costs — are preserved).
//
// On error the pipeline is unchanged and still runnable at its old size.
func Resize(p *core.Pipeline, newProcs int, machineKind string, coresPerNode int) (core.ResizeReport, error) {
	if p == nil {
		return core.ResizeReport{}, fmt.Errorf("elastic: nil pipeline")
	}
	if newProcs < 1 {
		return core.ResizeReport{}, fmt.Errorf("elastic: invalid processor count %d", newProcs)
	}
	m, err := BuildMachine(newProcs, machineKind, coresPerNode)
	if err != nil {
		return core.ResizeReport{}, err
	}
	return p.ResizeGrid(m.Grid, m.Net, m.Model, m.Oracle)
}
