package viz

import (
	"strings"
	"testing"

	"nestdiff/internal/alloc"
	"nestdiff/internal/field"
	"nestdiff/internal/geom"
)

func TestHeatmapShape(t *testing.T) {
	f := field.New(40, 20)
	f.Set(20, 10, 5)
	out := Heatmap(f, 40, 20, nil)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 20 {
		t.Fatalf("rows = %d", len(lines))
	}
	for _, l := range lines {
		if len(l) != 40 {
			t.Fatalf("row width = %d", len(l))
		}
	}
	// The hot spot renders as the darkest ramp character.
	if lines[10][20] != '@' {
		t.Fatalf("hot spot char = %q", lines[10][20])
	}
	// A cold corner renders as blank.
	if lines[0][0] != ' ' {
		t.Fatalf("cold corner char = %q", lines[0][0])
	}
}

func TestHeatmapDownsamplesAndOverlays(t *testing.T) {
	f := field.New(100, 60)
	f.Set(50, 30, 3)
	out := Heatmap(f, 50, 20, map[int]geom.Rect{4: geom.NewRect(40, 20, 20, 20)})
	if !strings.Contains(out, "4") {
		t.Fatal("nest label missing")
	}
	if !strings.Contains(out, "-") || !strings.Contains(out, "|") {
		t.Fatal("nest outline missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 20 || len(lines[0]) != 50 {
		t.Fatalf("downsampled shape %dx%d", len(lines[0]), len(lines))
	}
}

func TestHeatmapDegenerate(t *testing.T) {
	f := field.New(4, 4)
	if Heatmap(f, 0, 5, nil) != "" {
		t.Fatal("zero cols should render empty")
	}
	// All-zero field must not divide by zero.
	out := Heatmap(f, 4, 4, nil)
	if !strings.Contains(out, " ") {
		t.Fatal("zero field should render blanks")
	}
}

func TestAllocationGrid(t *testing.T) {
	g := geom.NewGrid(8, 8)
	a, err := alloc.Scratch(g, map[int]float64{1: 0.5, 2: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	out := AllocationGrid(a, 0)
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Fatalf("nest labels missing:\n%s", out)
	}
	if strings.Contains(strings.SplitN(out, "\n", 2)[1], ".") {
		t.Fatal("full allocation should have no unassigned ranks")
	}
	if AllocationGrid(nil, 0) != "(no allocation)\n" {
		t.Fatal("nil allocation rendering wrong")
	}
}

func TestAllocationGridDownsample(t *testing.T) {
	g := geom.NewGrid(32, 32)
	a, err := alloc.Scratch(g, map[int]float64{1: 0.3, 2: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	out := AllocationGrid(a, 16)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header plus 16 rows at step 2.
	if len(lines) != 17 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[1]) != 16 {
		t.Fatalf("row width = %d", len(lines[1]))
	}
}
