// Package viz renders the simulation state for terminals: QCLOUD fields
// as ASCII heat maps with nest-region overlays (the textual cousin of the
// paper's Fig. 1), and processor allocations as labelled grids (Fig. 2b).
package viz

import (
	"fmt"
	"sort"
	"strings"

	"nestdiff/internal/alloc"
	"nestdiff/internal/field"
	"nestdiff/internal/geom"
)

// ramp is the intensity ramp for heat maps, light to dark.
const ramp = " .:-=+*#%@"

// Heatmap renders f downsampled to at most cols×rows characters. Nest
// regions (in field coordinates) are outlined with their ID's digit at
// the corners.
func Heatmap(f *field.Field, cols, rows int, nests map[int]geom.Rect) string {
	if cols <= 0 || rows <= 0 {
		return ""
	}
	if cols > f.NX {
		cols = f.NX
	}
	if rows > f.NY {
		rows = f.NY
	}
	maxV := f.Max()
	if maxV <= 0 {
		maxV = 1
	}
	sx := float64(f.NX) / float64(cols)
	sy := float64(f.NY) / float64(rows)

	grid := make([][]byte, rows)
	for ry := range grid {
		grid[ry] = make([]byte, cols)
		for cx := range grid[ry] {
			// Block max over the cells this character covers.
			x0, x1 := int(float64(cx)*sx), int(float64(cx+1)*sx)
			y0, y1 := int(float64(ry)*sy), int(float64(ry+1)*sy)
			if x1 <= x0 {
				x1 = x0 + 1
			}
			if y1 <= y0 {
				y1 = y0 + 1
			}
			v := 0.0
			for y := y0; y < y1 && y < f.NY; y++ {
				for x := x0; x < x1 && x < f.NX; x++ {
					if q := f.At(x, y); q > v {
						v = q
					}
				}
			}
			idx := int(v / maxV * float64(len(ramp)-1))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			grid[ry][cx] = ramp[idx]
		}
	}

	// Overlay nest rectangles.
	ids := make([]int, 0, len(nests))
	for id := range nests {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	toChar := func(v, n int, scale float64) int {
		c := int(float64(v) / scale)
		if c >= n {
			c = n - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	for _, id := range ids {
		r := nests[id]
		x0, x1 := toChar(r.X0, cols, sx), toChar(r.X1-1, cols, sx)
		y0, y1 := toChar(r.Y0, rows, sy), toChar(r.Y1-1, rows, sy)
		for x := x0; x <= x1; x++ {
			grid[y0][x], grid[y1][x] = '-', '-'
		}
		for y := y0; y <= y1; y++ {
			grid[y][x0], grid[y][x1] = '|', '|'
		}
		label := byte('0' + id%10)
		grid[y0][x0] = label
	}

	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// AllocationGrid renders the processor grid with each rank labelled by
// the nest it serves (IDs rendered modulo 36 as 0-9a-z, '.' for
// unassigned ranks). Wide grids are downsampled by whole ranks.
func AllocationGrid(a *alloc.Allocation, maxCols int) string {
	if a == nil || len(a.Rects) == 0 {
		return "(no allocation)\n"
	}
	step := 1
	if maxCols > 0 && a.Grid.Px > maxCols {
		step = (a.Grid.Px + maxCols - 1) / maxCols
	}
	label := func(p geom.Point) byte {
		for _, id := range a.NestIDs() {
			if a.Rects[id].Contains(p) {
				const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
				return digits[id%len(digits)]
			}
		}
		return '.'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d processor grid (1 char = %dx%d ranks):\n", a.Grid.Px, a.Grid.Py, step, step)
	for y := 0; y < a.Grid.Py; y += step {
		for x := 0; x < a.Grid.Px; x += step {
			b.WriteByte(label(geom.Point{X: x, Y: y}))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
