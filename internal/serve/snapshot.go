package serve

import (
	"errors"
	"sync"
	"time"

	"nestdiff/internal/field"
)

// ErrNoSnapshot reports that a job has no readable field snapshot: it
// has not completed a step boundary yet (still queued or building), or
// it went idle before any reader demanded one.
var ErrNoSnapshot = errors.New("serve: no field snapshot available")

// Snapshot is one immutable copy of a job's field state at a step
// boundary: the parent model variables plus each live nest's fine
// field. Once published it is never mutated — readers hold it across
// resizes, restores, even job completion — so tile encoding and HTTP
// reads need no locks at all.
type Snapshot struct {
	// Step is the parent step the snapshot was taken at.
	Step int
	// Epoch is the job's invalidation epoch at publication: bumped on
	// every resize or checkpoint restore, it keys the tile cache so a
	// pre-resize snapshot's tiles can never answer a post-resize read.
	Epoch int64
	// Vars holds the named fields: "qcloud" and "olr" for the parent
	// model, "nest:<id>" for each live nest (fine-grid coordinates).
	Vars map[string]*field.Field
}

// VarNames lists the snapshot's variables in no particular order.
func (s *Snapshot) VarNames() []string {
	out := make([]string, 0, len(s.Vars))
	for k := range s.Vars {
		out = append(out, k)
	}
	return out
}

// Publisher is one job's copy-on-write snapshot exchange between the
// worker goroutine stepping the pipeline (the only writer) and any
// number of HTTP readers.
//
// The protocol is demand-driven so the no-reader path stays free: at
// every step boundary the worker calls Publish, which with no waiting
// reader and no proactive interval is a mutex-guarded integer store —
// zero allocations, zero field copies. When a reader has demanded state
// (Acquire on a stale or absent snapshot), the next Publish materializes
// an immutable Snapshot via the fill callback — field pointer copies
// resolved into private buffers on the worker's side of the step
// boundary, so the copy can never race the pipeline's own double-buffer
// swaps, resizes or restores — and wakes every waiter.
type Publisher struct {
	mu     sync.Mutex
	notify chan struct{} // closed and replaced on every state change
	step   int           // latest completed step the worker reported
	epoch  int64         // invalidation epoch (resize/restore bumps)
	every  int           // proactive publish interval (0: on demand only)
	demand bool          // a reader wants a snapshot at the next boundary
	idle   bool          // worker parked or terminal: no future boundaries
	cur    *Snapshot
}

// NewPublisher returns a publisher. every > 0 additionally materializes
// a snapshot proactively at every multiple of that step interval —
// keeping reads warm at the cost of copies nobody may read — while 0
// copies only on reader demand.
func NewPublisher(every int) *Publisher {
	return &Publisher{notify: make(chan struct{}), every: every}
}

// wakeLocked signals every waiter that publisher state changed. Callers
// hold p.mu.
func (p *Publisher) wakeLocked() {
	close(p.notify)
	p.notify = make(chan struct{})
}

// Publish is the worker's step-boundary hook: it records that step
// completed and, if a reader demanded state (or the proactive interval
// hit), materializes a fresh snapshot from fill. fill runs under the
// publisher lock on the worker goroutine, so it may read live pipeline
// state that only that goroutine mutates.
func (p *Publisher) Publish(step int, fill func() map[string]*field.Field) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.step = step
	p.idle = false
	if !p.demand && !(p.every > 0 && step%p.every == 0) {
		return
	}
	p.demand = false
	p.cur = &Snapshot{Step: step, Epoch: p.epoch, Vars: fill()}
	p.wakeLocked()
}

// BumpEpoch advances the invalidation epoch — the worker calls it after
// an in-place resize or a checkpoint restore, so tiles of the old grid
// can never answer reads of the new one. The current snapshot (if any)
// stays readable under its old epoch until a fresh one is published.
func (p *Publisher) BumpEpoch() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.epoch++
	p.wakeLocked()
	p.mu.Unlock()
}

// Epoch returns the current invalidation epoch.
func (p *Publisher) Epoch() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// SetIdle marks whether the worker is between runs (parked, retrying,
// terminal): while idle, Acquire never waits for a boundary that is not
// coming and serves the last published snapshot instead.
func (p *Publisher) SetIdle(idle bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.idle = idle
	p.wakeLocked()
	p.mu.Unlock()
}

// Acquire returns a snapshot of the job's latest completed step: the
// current one if it is already fresh (same step and epoch), otherwise it
// demands materialization and waits — bounded by maxWait — for the
// worker's next step boundary. When the worker is idle or the wait times
// out, the last published snapshot is returned (readers of a paused or
// finished job see its final state); ErrNoSnapshot means nothing was
// ever published.
func (p *Publisher) Acquire(maxWait time.Duration) (*Snapshot, error) {
	if p == nil {
		return nil, ErrNoSnapshot
	}
	deadline := time.NewTimer(maxWait)
	defer deadline.Stop()
	for {
		p.mu.Lock()
		cur := p.cur
		if cur != nil && cur.Step == p.step && cur.Epoch == p.epoch {
			p.mu.Unlock()
			return cur, nil
		}
		if p.idle {
			p.mu.Unlock()
			if cur != nil {
				return cur, nil
			}
			return nil, ErrNoSnapshot
		}
		p.demand = true
		ch := p.notify
		p.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			if cur != nil {
				return cur, nil
			}
			return nil, ErrNoSnapshot
		}
	}
}

// Current returns the latest published snapshot without demanding a
// fresh one (nil when nothing was ever published).
func (p *Publisher) Current() *Snapshot {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur
}
