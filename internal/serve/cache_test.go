package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(1 << 20)
	k := Key{Job: "j1", Var: "qcloud", Step: 3, TX: 1, TY: 2}
	fills := 0
	get := func() []byte {
		blob, err := c.GetOrFill(k, func() ([]byte, error) {
			fills++
			return []byte("tile"), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	if string(get()) != "tile" || string(get()) != "tile" {
		t.Fatal("wrong blob")
	}
	if fills != 1 {
		t.Fatalf("fill ran %d times, want 1", fills)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Bytes != 4 {
		t.Fatalf("stats %+v, want 1 miss, 1 hit, 4 bytes", st)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(1 << 20)
	k := Key{Job: "j1", Var: "olr"}
	var fills atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			blob, err := c.GetOrFill(k, func() ([]byte, error) {
				fills.Add(1)
				<-release
				return []byte("once"), nil
			})
			if err != nil || string(blob) != "once" {
				t.Errorf("blob %q err %v", blob, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times under concurrent misses, want 1", got)
	}
}

func TestCacheByteBudgetEviction(t *testing.T) {
	// One shard gets budget/16 bytes; use keys that land anywhere and a
	// tiny total budget so eviction must fire.
	c := NewCache(16 * 64) // 64 bytes per shard
	blob := make([]byte, 48)
	for i := 0; i < 100; i++ {
		k := Key{Job: "j", Var: "v", Step: i}
		if _, err := c.GetOrFill(k, func() ([]byte, error) { return blob, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite exceeding the byte budget")
	}
	if st.Bytes > 16*64+int64(len(blob)) {
		t.Fatalf("resident bytes %d exceed budget", st.Bytes)
	}
}

func TestCacheInvalidateJob(t *testing.T) {
	c := NewCache(1 << 20)
	for i := 0; i < 10; i++ {
		for _, job := range []string{"a", "b"} {
			k := Key{Job: job, Var: "v", Step: i}
			c.GetOrFill(k, func() ([]byte, error) { return []byte("xxxx"), nil })
		}
	}
	c.InvalidateJob("a")
	// Every "a" key must refill; every "b" key must still hit.
	var fills int
	for i := 0; i < 10; i++ {
		c.GetOrFill(Key{Job: "a", Var: "v", Step: i}, func() ([]byte, error) {
			fills++
			return []byte("xxxx"), nil
		})
		c.GetOrFill(Key{Job: "b", Var: "v", Step: i}, func() ([]byte, error) {
			fills += 100
			return []byte("xxxx"), nil
		})
	}
	if fills != 10 {
		t.Fatalf("refills = %d, want exactly the 10 invalidated keys", fills)
	}
}

func TestCacheNilSafe(t *testing.T) {
	var c *Cache
	blob, err := c.GetOrFill(Key{}, func() ([]byte, error) { return []byte("x"), nil })
	if err != nil || string(blob) != "x" {
		t.Fatalf("nil cache GetOrFill: %q %v", blob, err)
	}
	c.InvalidateJob("a")
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats %+v", st)
	}
}

func TestCacheConcurrentMixed(t *testing.T) {
	c := NewCache(1 << 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{Job: fmt.Sprintf("j%d", i%3), Var: "v", Step: i % 17, TX: w % 2}
				c.GetOrFill(k, func() ([]byte, error) { return make([]byte, 100), nil })
				if i%50 == 0 {
					c.InvalidateJob("j0")
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkTileCacheHit(b *testing.B) {
	c := NewCache(1 << 20)
	k := Key{Job: "j", Var: "qcloud"}
	blob := make([]byte, tileHeaderLen+4*TileSize*TileSize)
	c.GetOrFill(k, func() ([]byte, error) { return blob, nil })
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.GetOrFill(k, func() ([]byte, error) { return nil, nil })
	}
}
