package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"nestdiff/internal/obs"
)

// sseFrame is one parsed SSE frame.
type sseFrame struct {
	id    int64
	event string
	data  string
}

// readFrames consumes SSE frames from a live response body until n
// frames arrived or the context expires.
func readFrames(t *testing.T, body *bufio.Reader, n int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	cur := sseFrame{id: -1}
	for len(frames) < n {
		line, err := body.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended after %d frames: %v", len(frames), err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if cur.id >= 0 || cur.data != "" {
				frames = append(frames, cur)
			}
			cur = sseFrame{id: -1}
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseInt(line[4:], 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q", line)
			}
			cur.id = id
		case strings.HasPrefix(line, "event: "):
			cur.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[6:]
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return frames
}

func sseServer(tr *obs.Tracer, opts SSEOptions) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ServeSSE(w, r, tr, opts)
	}))
}

func sseGet(t *testing.T, ctx context.Context, url, lastID string) (*http.Response, *bufio.Reader) {
	t.Helper()
	req, _ := http.NewRequestWithContext(ctx, "GET", url, nil)
	req.Header.Set("Accept", "text/event-stream")
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	return resp, bufio.NewReader(resp.Body)
}

func TestSSEReplayAndTail(t *testing.T) {
	tr := obs.New(obs.Options{Buffer: 64})
	for i := 1; i <= 5; i++ {
		tr.Emit(obs.Event{Kind: obs.KindStep, Step: i})
	}
	srv := sseServer(tr, SSEOptions{Poll: 5 * time.Millisecond})
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, body := sseGet(t, ctx, srv.URL, "")
	defer resp.Body.Close()

	frames := readFrames(t, body, 5)
	for i, f := range frames {
		if f.id != int64(i+1) || f.event != string(obs.KindStep) {
			t.Fatalf("frame %d: id %d event %q", i, f.id, f.event)
		}
		var e obs.Event
		if err := json.Unmarshal([]byte(f.data), &e); err != nil || e.Step != i+1 {
			t.Fatalf("frame %d data %q: %v", i, f.data, err)
		}
	}
	// Tail: events emitted after connect must arrive too.
	tr.Emit(obs.Event{Kind: obs.KindAdapt, Step: 6})
	tail := readFrames(t, body, 1)
	if tail[0].id != 6 || tail[0].event != string(obs.KindAdapt) {
		t.Fatalf("tail frame %+v", tail[0])
	}
}

func TestSSEResumeNoDupNoSkip(t *testing.T) {
	tr := obs.New(obs.Options{Buffer: 1024})
	for i := 1; i <= 10; i++ {
		tr.Emit(obs.Event{Kind: obs.KindStep, Step: i})
	}
	srv := sseServer(tr, SSEOptions{Poll: 5 * time.Millisecond})
	defer srv.Close()

	// First connection reads 4 frames and drops.
	ctx1, cancel1 := context.WithTimeout(context.Background(), 10*time.Second)
	resp1, body1 := sseGet(t, ctx1, srv.URL, "")
	frames := readFrames(t, body1, 4)
	last := frames[len(frames)-1].id
	resp1.Body.Close()
	cancel1()

	// Resume with Last-Event-ID: the remaining 6 arrive exactly once.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	resp2, body2 := sseGet(t, ctx2, srv.URL, fmt.Sprint(last))
	defer resp2.Body.Close()
	rest := readFrames(t, body2, 6)
	want := last + 1
	for _, f := range rest {
		if f.id != want {
			t.Fatalf("resumed frame id %d, want %d (no dup, no skip)", f.id, want)
		}
		want++
	}
}

func TestSSEResumeAcrossRingEviction(t *testing.T) {
	// Ring of 8: emitting 30 events evicts 22. A client resuming from
	// seq 5 must get an explicit gap event covering the eviction, then
	// the buffered tail with strictly increasing ids and no duplicates.
	tr := obs.New(obs.Options{Buffer: 8})
	for i := 1; i <= 30; i++ {
		tr.Emit(obs.Event{Kind: obs.KindStep, Step: i})
	}
	srv := sseServer(tr, SSEOptions{Poll: 5 * time.Millisecond})
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, body := sseGet(t, ctx, srv.URL, "5")
	defer resp.Body.Close()

	frames := readFrames(t, body, 9) // 1 gap + 8 buffered
	if frames[0].event != "gap" {
		t.Fatalf("first frame %+v, want a gap event", frames[0])
	}
	var gap struct {
		Missed    int64 `json:"missed"`
		ResumeSeq int64 `json:"resume_seq"`
	}
	if err := json.Unmarshal([]byte(frames[0].data), &gap); err != nil {
		t.Fatal(err)
	}
	// Client had seen through 5; ring starts at 23; 6..22 = 17 missed.
	if gap.Missed != 17 || gap.ResumeSeq != 23 {
		t.Fatalf("gap %+v, want 17 missed resuming at 23", gap)
	}
	want := int64(23)
	for _, f := range frames[1:] {
		if f.id != want {
			t.Fatalf("frame id %d, want %d", f.id, want)
		}
		want++
	}
}

func TestSSEHeartbeat(t *testing.T) {
	tr := obs.New(obs.Options{Buffer: 8})
	srv := sseServer(tr, SSEOptions{Poll: 2 * time.Millisecond, Heartbeat: 10 * time.Millisecond})
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, body := sseGet(t, ctx, srv.URL, "")
	defer resp.Body.Close()
	line, err := body.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, ":") {
		t.Fatalf("expected a heartbeat comment on an idle stream, got %q", line)
	}
}
