package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"nestdiff/internal/field"
	"nestdiff/internal/geom"
)

// ErrBadRect reports a malformed or out-of-bounds rect parameter; the
// HTTP layer maps it to 400.
var ErrBadRect = errors.New("serve: bad rect")

// respMagic brands one field response envelope ("NDF1").
const respMagic = 0x4e444631

// respHeaderLen is the fixed response envelope: magic (4) + version (2)
// + tile count (2) + step (8) + epoch (8) + rect x0,y0,x1,y1 (4×4) +
// grid nx,ny (4×2).
const respHeaderLen = 4 + 2 + 2 + 8 + 8 + 16 + 8

// ParseRect parses the HTTP rect parameter "x0,y0,w,h" against a field's
// bounds. An empty string means the full domain. A rect that is
// malformed, empty, or not contained in bounds fails with ErrBadRect.
func ParseRect(s string, bounds geom.Rect) (geom.Rect, error) {
	if s == "" {
		return bounds, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geom.Rect{}, fmt.Errorf("%w: want \"x0,y0,w,h\", got %q", ErrBadRect, s)
	}
	var v [4]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return geom.Rect{}, fmt.Errorf("%w: %q is not an integer", ErrBadRect, p)
		}
		v[i] = n
	}
	if v[2] <= 0 || v[3] <= 0 {
		return geom.Rect{}, fmt.Errorf("%w: empty rect %q", ErrBadRect, s)
	}
	r := geom.NewRect(v[0], v[1], v[2], v[3])
	if v[0] < 0 || v[1] < 0 || !bounds.ContainsRect(r) {
		return geom.Rect{}, fmt.Errorf("%w: %v outside domain %v", ErrBadRect, r, bounds)
	}
	return r, nil
}

// BuildResponse assembles the binary body of GET /jobs/{id}/field: an
// envelope naming the step, epoch, requested rect and full grid extents,
// followed by every cached tile blob intersecting the rect. Tiles are
// fetched through the cache (nil: encode directly) with singleflight
// fill, and the assembled body itself is memoized under a response key
// in the same cache, so a repeat read of one rect is a single lookup
// returning shared bytes — no tile walk, no envelope copy. Callers must
// therefore treat the returned slice as immutable.
func BuildResponse(c *Cache, job, varName string, snap *Snapshot, rect geom.Rect) ([]byte, error) {
	f, ok := snap.Vars[varName]
	if !ok {
		return nil, fmt.Errorf("%w: unknown var %q (have %v)", ErrBadRect, varName, snap.VarNames())
	}
	if !f.Bounds().ContainsRect(rect) || rect.Empty() {
		return nil, fmt.Errorf("%w: %v outside domain %v", ErrBadRect, rect, f.Bounds())
	}
	rkey := Key{Job: job, Var: varName, Epoch: snap.Epoch, Step: snap.Step,
		TX: -1, TY: -1, X0: rect.X0, Y0: rect.Y0, X1: rect.X1, Y1: rect.Y1}
	return c.GetOrFill(rkey, func() ([]byte, error) {
		return buildResponseBody(c, job, varName, f, snap, rect)
	})
}

// buildResponseBody encodes the envelope and tile walk of BuildResponse;
// it is the response cache's fill path.
func buildResponseBody(c *Cache, job, varName string, f *field.Field, snap *Snapshot, rect geom.Rect) ([]byte, error) {
	tx0, ty0 := rect.X0/TileSize, rect.Y0/TileSize
	tx1, ty1 := (rect.X1-1)/TileSize, (rect.Y1-1)/TileSize
	nTiles := (tx1 - tx0 + 1) * (ty1 - ty0 + 1)

	out := make([]byte, respHeaderLen, respHeaderLen+nTiles*(12+tileHeaderLen+4*TileSize*TileSize))
	binary.LittleEndian.PutUint32(out[0:], respMagic)
	binary.LittleEndian.PutUint16(out[4:], 1)
	binary.LittleEndian.PutUint16(out[6:], uint16(nTiles))
	binary.LittleEndian.PutUint64(out[8:], uint64(snap.Step))
	binary.LittleEndian.PutUint64(out[16:], uint64(snap.Epoch))
	binary.LittleEndian.PutUint32(out[24:], uint32(rect.X0))
	binary.LittleEndian.PutUint32(out[28:], uint32(rect.Y0))
	binary.LittleEndian.PutUint32(out[32:], uint32(rect.X1))
	binary.LittleEndian.PutUint32(out[36:], uint32(rect.Y1))
	binary.LittleEndian.PutUint32(out[40:], uint32(f.NX))
	binary.LittleEndian.PutUint32(out[44:], uint32(f.NY))

	var hdr [12]byte
	for ty := ty0; ty <= ty1; ty++ {
		for tx := tx0; tx <= tx1; tx++ {
			key := Key{Job: job, Var: varName, Epoch: snap.Epoch, Step: snap.Step, TX: tx, TY: ty}
			tr := TileRect(f.NX, f.NY, tx, ty)
			blob, err := c.GetOrFill(key, func() ([]byte, error) {
				return EncodeTile(f, tr), nil
			})
			if err != nil {
				return nil, err
			}
			binary.LittleEndian.PutUint32(hdr[0:], uint32(tx))
			binary.LittleEndian.PutUint32(hdr[4:], uint32(ty))
			binary.LittleEndian.PutUint32(hdr[8:], uint32(len(blob)))
			out = append(out, hdr[:]...)
			out = append(out, blob...)
		}
	}
	return out, nil
}

// FieldResponse is a decoded GET /jobs/{id}/field body.
type FieldResponse struct {
	Step   int
	Epoch  int64
	Rect   geom.Rect
	GridNX int
	GridNY int
	// Field is the dequantized field over Rect (Field.NX = Rect.Width()).
	Field *field.Field
}

// DecodeResponse parses a field response body back into a field over the
// requested rect, cropping the (full) tiles it carries.
func DecodeResponse(body []byte) (*FieldResponse, error) {
	if len(body) < respHeaderLen {
		return nil, fmt.Errorf("serve: response truncated (%d bytes)", len(body))
	}
	if binary.LittleEndian.Uint32(body[0:]) != respMagic {
		return nil, fmt.Errorf("serve: bad response magic")
	}
	if v := binary.LittleEndian.Uint16(body[4:]); v != 1 {
		return nil, fmt.Errorf("serve: unsupported response version %d", v)
	}
	nTiles := int(binary.LittleEndian.Uint16(body[6:]))
	resp := &FieldResponse{
		Step:  int(int64(binary.LittleEndian.Uint64(body[8:]))),
		Epoch: int64(binary.LittleEndian.Uint64(body[16:])),
		Rect: geom.Rect{
			X0: int(int32(binary.LittleEndian.Uint32(body[24:]))),
			Y0: int(int32(binary.LittleEndian.Uint32(body[28:]))),
			X1: int(int32(binary.LittleEndian.Uint32(body[32:]))),
			Y1: int(int32(binary.LittleEndian.Uint32(body[36:]))),
		},
		GridNX: int(int32(binary.LittleEndian.Uint32(body[40:]))),
		GridNY: int(int32(binary.LittleEndian.Uint32(body[44:]))),
	}
	rect := resp.Rect
	resp.Field = field.New(rect.Width(), rect.Height())
	off := respHeaderLen
	for i := 0; i < nTiles; i++ {
		if off+12 > len(body) {
			return nil, fmt.Errorf("serve: tile %d header truncated", i)
		}
		tx := int(int32(binary.LittleEndian.Uint32(body[off:])))
		ty := int(int32(binary.LittleEndian.Uint32(body[off+4:])))
		blobLen := int(binary.LittleEndian.Uint32(body[off+8:]))
		off += 12
		if off+blobLen > len(body) {
			return nil, fmt.Errorf("serve: tile %d blob truncated", i)
		}
		w, h, data, err := DecodeTile(body[off : off+blobLen])
		if err != nil {
			return nil, fmt.Errorf("serve: tile %d: %w", i, err)
		}
		off += blobLen
		tr := TileRect(resp.GridNX, resp.GridNY, tx, ty)
		if tr.Width() != w || tr.Height() != h {
			return nil, fmt.Errorf("serve: tile (%d,%d) is %dx%d, want %dx%d", tx, ty, w, h, tr.Width(), tr.Height())
		}
		in := tr.Intersect(rect)
		for y := in.Y0; y < in.Y1; y++ {
			for x := in.X0; x < in.X1; x++ {
				resp.Field.Set(x-rect.X0, y-rect.Y0, data[(y-tr.Y0)*w+(x-tr.X0)])
			}
		}
	}
	if off != len(body) {
		return nil, fmt.Errorf("serve: %d trailing bytes after %d tiles", len(body)-off, nTiles)
	}
	return resp, nil
}
