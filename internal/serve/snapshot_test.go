package serve

import (
	"sync"
	"testing"
	"time"

	"nestdiff/internal/field"
)

func fillConst(v float64) func() map[string]*field.Field {
	return func() map[string]*field.Field {
		f := field.New(4, 4)
		f.Fill(v)
		return map[string]*field.Field{"qcloud": f}
	}
}

func TestPublisherNoReaderNoCopy(t *testing.T) {
	p := NewPublisher(0)
	copies := 0
	for step := 1; step <= 100; step++ {
		p.Publish(step, func() map[string]*field.Field {
			copies++
			return nil
		})
	}
	if copies != 0 {
		t.Fatalf("fill ran %d times with no reader, want 0", copies)
	}
	if p.Current() != nil {
		t.Fatal("snapshot materialized without demand")
	}
}

func TestPublisherDemandDriven(t *testing.T) {
	p := NewPublisher(0)
	p.Publish(1, fillConst(1))
	if p.Current() != nil {
		t.Fatal("published without demand")
	}
	done := make(chan *Snapshot, 1)
	go func() {
		snap, err := p.Acquire(5 * time.Second)
		if err != nil {
			t.Error(err)
		}
		done <- snap
	}()
	// The reader demands; the next boundary materializes.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case snap := <-done:
			if snap.Vars["qcloud"].At(0, 0) != 2 {
				t.Fatalf("snapshot holds %v, want the step-2 field", snap.Vars["qcloud"].At(0, 0))
			}
			if snap.Step < 2 {
				t.Fatalf("snapshot step %d", snap.Step)
			}
			return
		case <-deadline:
			t.Fatal("Acquire never returned")
		default:
			p.Publish(2, fillConst(2))
			time.Sleep(time.Millisecond)
		}
	}
}

func TestPublisherProactiveEvery(t *testing.T) {
	p := NewPublisher(10)
	copies := 0
	for step := 1; step <= 25; step++ {
		p.Publish(step, func() map[string]*field.Field {
			copies++
			return nil
		})
	}
	if copies != 2 {
		t.Fatalf("proactive every=10 materialized %d times over 25 steps, want 2", copies)
	}
}

func TestPublisherIdleServesLast(t *testing.T) {
	p := NewPublisher(0)
	if _, err := p.Acquire(10 * time.Millisecond); err != ErrNoSnapshot {
		t.Fatalf("idle publisher with no snapshot: err %v, want ErrNoSnapshot", err)
	}
	// Demand + publish, then park.
	go func() {
		time.Sleep(5 * time.Millisecond)
		p.Publish(7, fillConst(7))
	}()
	snap, err := p.Acquire(5 * time.Second)
	if err != nil || snap.Step != 7 {
		t.Fatalf("Acquire: %v %v", snap, err)
	}
	p.SetIdle(true)
	got, err := p.Acquire(10 * time.Millisecond)
	if err != nil || got != snap {
		t.Fatalf("idle Acquire returned %v, %v; want the last snapshot", got, err)
	}
}

func TestPublisherEpochBumpInvalidatesFreshness(t *testing.T) {
	p := NewPublisher(0)
	go func() {
		time.Sleep(2 * time.Millisecond)
		p.Publish(1, fillConst(1))
	}()
	snap, err := p.Acquire(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 0 {
		t.Fatalf("first epoch %d", snap.Epoch)
	}
	p.BumpEpoch()
	// The old snapshot stays readable...
	if cur := p.Current(); cur != snap {
		t.Fatal("pre-resize snapshot vanished")
	}
	// ...but a fresh Acquire demands a new one under the new epoch.
	go func() {
		time.Sleep(2 * time.Millisecond)
		p.Publish(2, fillConst(2))
	}()
	snap2, err := p.Acquire(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Epoch != 1 || snap2 == snap {
		t.Fatalf("post-bump snapshot epoch %d (same object: %v), want a fresh epoch-1 snapshot", snap2.Epoch, snap2 == snap)
	}
}

func TestPublisherConcurrentReaders(t *testing.T) {
	p := NewPublisher(0)
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		step := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			step++
			v := float64(step)
			p.Publish(step, fillConst(v))
			time.Sleep(100 * time.Microsecond)
		}
	}()
	var readers sync.WaitGroup
	for i := 0; i < 8; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for k := 0; k < 50; k++ {
				snap, err := p.Acquire(5 * time.Second)
				if err != nil {
					t.Error(err)
					return
				}
				// The snapshot must be internally consistent: the field
				// value equals its step.
				if got := snap.Vars["qcloud"].At(0, 0); got != float64(snap.Step) {
					t.Errorf("snapshot step %d holds field value %v", snap.Step, got)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

func TestPublisherNilSafe(t *testing.T) {
	var p *Publisher
	p.Publish(1, nil)
	p.BumpEpoch()
	p.SetIdle(true)
	if _, err := p.Acquire(time.Millisecond); err != ErrNoSnapshot {
		t.Fatalf("nil publisher Acquire err %v", err)
	}
	if p.Current() != nil || p.Epoch() != 0 {
		t.Fatal("nil publisher leaked state")
	}
}
