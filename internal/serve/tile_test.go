package serve

import (
	"math"
	"testing"

	"nestdiff/internal/field"
	"nestdiff/internal/geom"
)

// roundTrip encodes one tile of f and asserts every cell decodes within
// the documented bound.
func roundTrip(t *testing.T, f *field.Field, r geom.Rect) {
	t.Helper()
	blob := EncodeTile(f, r)
	w, h, data, err := DecodeTile(blob)
	if err != nil {
		t.Fatalf("DecodeTile: %v", err)
	}
	if w != r.Width() || h != r.Height() {
		t.Fatalf("decoded %dx%d, want %dx%d", w, h, r.Width(), r.Height())
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			v := f.At(x, y)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	bound := MaxRelTileError * (hi - lo)
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			got := data[(y-r.Y0)*w+(x-r.X0)]
			want := f.At(x, y)
			if diff := math.Abs(got - want); diff > bound {
				t.Fatalf("cell (%d,%d): decoded %v, want %v (|diff| %g > bound %g over range %g)",
					x, y, got, want, diff, bound, hi-lo)
			}
		}
	}
}

func TestTileRoundTripAdversarial(t *testing.T) {
	mk := func(fill func(x, y int) float64) *field.Field {
		f := field.New(96, 72)
		for y := 0; y < f.NY; y++ {
			for x := 0; x < f.NX; x++ {
				f.Set(x, y, fill(x, y))
			}
		}
		return f
	}
	cases := map[string]*field.Field{
		// A constant field (range 0) must decode exactly.
		"constant": mk(func(x, y int) float64 { return 3.75 }),
		"zero":     mk(func(x, y int) float64 { return 0 }),
		// NaN-free extremes: huge magnitudes of both signs.
		"extremes": mk(func(x, y int) float64 {
			if (x+y)%2 == 0 {
				return 1e300
			}
			return -1e300
		}),
		// One hot cell in an otherwise flat field — the worst case for a
		// shared (min, range) header.
		"single-hot-cell": mk(func(x, y int) float64 {
			if x == 17 && y == 41 {
				return 1e6
			}
			return 1.0
		}),
		"gradient": mk(func(x, y int) float64 { return float64(x)*0.37 + float64(y)*1.91 }),
		"negative": mk(func(x, y int) float64 { return -200 + math.Sin(float64(x*y)) }),
	}
	for name, f := range cases {
		f := f
		t.Run(name, func(t *testing.T) {
			tx, ty := TileGrid(f.NX, f.NY)
			for j := 0; j < ty; j++ {
				for i := 0; i < tx; i++ {
					roundTrip(t, f, TileRect(f.NX, f.NY, i, j))
				}
			}
		})
	}
}

func TestTileConstantExact(t *testing.T) {
	f := field.New(TileSize, TileSize)
	f.Fill(42.125)
	blob := EncodeTile(f, f.Bounds())
	_, _, data, err := DecodeTile(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		if v != 42.125 {
			t.Fatalf("constant tile cell %d decoded %v, want exactly 42.125", i, v)
		}
	}
}

func TestTileRaggedEdges(t *testing.T) {
	// 100x70 is not a multiple of TileSize: edge tiles are ragged.
	f := field.New(100, 70)
	for i := range f.Data {
		f.Data[i] = float64(i%37) * 0.5
	}
	tx, ty := TileGrid(f.NX, f.NY)
	if tx != 2 || ty != 2 {
		t.Fatalf("TileGrid(100,70) = (%d,%d), want (2,2)", tx, ty)
	}
	r := TileRect(f.NX, f.NY, 1, 1)
	if r.Width() != 100-TileSize || r.Height() != 70-TileSize {
		t.Fatalf("ragged tile rect %v", r)
	}
	roundTrip(t, f, r)
}

func TestDecodeTileRejectsCorrupt(t *testing.T) {
	f := field.New(8, 8)
	blob := EncodeTile(f, f.Bounds())
	if _, _, _, err := DecodeTile(blob[:10]); err == nil {
		t.Fatal("truncated blob decoded")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if _, _, _, err := DecodeTile(bad); err == nil {
		t.Fatal("bad magic decoded")
	}
	if _, _, _, err := DecodeTile(blob[:len(blob)-4]); err == nil {
		t.Fatal("short payload decoded")
	}
}

func BenchmarkTileEncodeCold(b *testing.B) {
	f := field.New(TileSize, TileSize)
	for i := range f.Data {
		f.Data[i] = math.Sin(float64(i) * 0.01)
	}
	r := f.Bounds()
	b.SetBytes(int64(4 * TileSize * TileSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeTile(f, r)
	}
}
