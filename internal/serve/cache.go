package serve

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Key identifies one cached tile blob. Epoch is the owning job's
// invalidation epoch: a resize or restore bumps it, so stale-grid tiles
// can never be served even before InvalidateJob reclaims their bytes.
type Key struct {
	Job   string
	Var   string
	Epoch int64
	Step  int
	TX    int
	TY    int
	// Rect distinguishes assembled-response entries (TX = TY = -1, see
	// BuildResponse) from tile entries, which leave it zero. One byte
	// budget governs both tiers.
	X0, Y0, X1, Y1 int
}

// cacheShards is the shard count; keys hash to shards by FNV-64a so
// concurrent readers of different tiles rarely contend on one mutex.
const cacheShards = 16

// Cache is a sharded LRU of encoded tile blobs with byte-budget
// eviction and singleflight fill: concurrent misses on one key encode
// the tile exactly once. All methods are safe for concurrent use and
// safe on a nil *Cache (fills run uncached), so a disabled cache costs
// one pointer check.
type Cache struct {
	shards [cacheShards]shard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	bytes     atomic.Int64
}

type shard struct {
	mu       sync.Mutex
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element
	inflight map[Key]*call
	bytes    int64
	budget   int64
}

type entry struct {
	key  Key
	blob []byte
}

// call is one in-flight singleflight fill.
type call struct {
	done chan struct{}
	blob []byte
	err  error
}

// NewCache returns a cache bounded to roughly budgetBytes of blob
// payload (split evenly across shards; a non-positive budget gets a
// 64 MiB default).
func NewCache(budgetBytes int64) *Cache {
	if budgetBytes <= 0 {
		budgetBytes = 64 << 20
	}
	c := &Cache{}
	per := budgetBytes / cacheShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = shard{
			ll:       list.New(),
			items:    make(map[Key]*list.Element),
			inflight: make(map[Key]*call),
			budget:   per,
		}
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	h := fnv.New64a()
	h.Write([]byte(k.Job))
	h.Write([]byte{0})
	h.Write([]byte(k.Var))
	var buf [64]byte
	putInt := func(off int, v int64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	putInt(0, k.Epoch)
	putInt(8, int64(k.Step))
	putInt(16, int64(k.TX))
	putInt(24, int64(k.TY))
	putInt(32, int64(k.X0))
	putInt(40, int64(k.Y0))
	putInt(48, int64(k.X1))
	putInt(56, int64(k.Y1))
	h.Write(buf[:])
	return &c.shards[h.Sum64()%cacheShards]
}

// GetOrFill returns the cached blob for key, or runs fill once to
// produce it — concurrent callers missing on the same key share the one
// fill. A fill error is returned to every sharer and nothing is cached.
// On a nil cache, fill runs directly.
func (c *Cache) GetOrFill(key Key, fill func() ([]byte, error)) ([]byte, error) {
	if c == nil {
		return fill()
	}
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		blob := el.Value.(*entry).blob
		s.mu.Unlock()
		c.hits.Add(1)
		return blob, nil
	}
	if cl, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-cl.done
		if cl.err != nil {
			return nil, cl.err
		}
		c.hits.Add(1)
		return cl.blob, nil
	}
	cl := &call{done: make(chan struct{})}
	s.inflight[key] = cl
	s.mu.Unlock()

	cl.blob, cl.err = fill()
	c.misses.Add(1)

	s.mu.Lock()
	delete(s.inflight, key)
	if cl.err == nil {
		c.insertLocked(s, key, cl.blob)
	}
	s.mu.Unlock()
	close(cl.done)
	return cl.blob, cl.err
}

// insertLocked adds a blob and evicts from the LRU tail past the byte
// budget. Callers hold s.mu.
func (c *Cache) insertLocked(s *shard, key Key, blob []byte) {
	if el, ok := s.items[key]; ok {
		// A racing fill beat us; keep the incumbent.
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&entry{key: key, blob: blob})
	s.bytes += int64(len(blob))
	c.bytes.Add(int64(len(blob)))
	for s.bytes > s.budget && s.ll.Len() > 1 {
		c.evictLocked(s, s.ll.Back())
	}
}

func (c *Cache) evictLocked(s *shard, el *list.Element) {
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.items, e.key)
	s.bytes -= int64(len(e.blob))
	c.bytes.Add(-int64(len(e.blob)))
	c.evictions.Add(1)
}

// InvalidateJob drops every cached tile of one job — called after a
// resize or restore so the stale grid's bytes are reclaimed immediately
// (the epoch in the key already guarantees they could never be served).
func (c *Cache) InvalidateJob(job string) {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; {
			next := el.Next()
			if el.Value.(*entry).key.Job == job {
				c.evictLocked(s, el)
			}
			el = next
		}
		s.mu.Unlock()
	}
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Bytes     int64 `json:"bytes"`
}

// Stats snapshots the cumulative hit/miss/eviction counters and the
// current resident byte count. Safe on a nil cache (all zeros).
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     c.bytes.Load(),
	}
}
