// Package serve is the read-path serving tier of the nestdiff runtime:
// copy-on-write field snapshots published by running jobs at step
// boundaries, a float32-quantized tile encoder with a sharded LRU tile
// cache, and a Server-Sent-Events streamer over the internal/obs tracer
// ring. It turns the daemon from a batch scheduler into a live weather
// service: readers see immutable step-boundary state and never touch —
// or slow down — the simulation's hot stepping loop.
package serve

import (
	"encoding/binary"
	"fmt"
	"math"

	"nestdiff/internal/field"
	"nestdiff/internal/geom"
)

// TileSize is the fixed tile geometry: fields are cut into TileSize ×
// TileSize cell tiles (ragged at the domain's east/south edges). One
// tile is the unit of encoding, caching and eviction.
const TileSize = 64

// tileMagic brands one encoded tile blob ("NDT1": nestdiff tile v1).
const tileMagic = 0x4e445431

// tileHeaderLen is the fixed tile blob header: magic (4) + width (2) +
// height (2) + min (8) + range (8).
const tileHeaderLen = 4 + 2 + 2 + 8 + 8

// MaxRelTileError is the documented quantization bound: for every cell,
// |decoded − original| ≤ MaxRelTileError × (tileMax − tileMin). The
// encoder stores each sample as float32((v−min)/range), so the absolute
// error is at most range × 2⁻²⁴ ≈ 6.0e-8 × range — comfortably inside
// this bound. A constant tile (range 0) round-trips exactly.
const MaxRelTileError = 1e-6

// TileGrid reports how many tiles cover an nx × ny field in each
// dimension.
func TileGrid(nx, ny int) (tx, ty int) {
	return (nx + TileSize - 1) / TileSize, (ny + TileSize - 1) / TileSize
}

// TileRect returns tile (tx, ty)'s cell rectangle within an nx × ny
// field, clipped to the domain (edge tiles are ragged).
func TileRect(nx, ny, tx, ty int) geom.Rect {
	r := geom.NewRect(tx*TileSize, ty*TileSize, TileSize, TileSize)
	return r.Intersect(geom.NewRect(0, 0, nx, ny))
}

// EncodeTile quantizes one tile of f into a compact binary blob: a
// per-tile (min, range) float64 header followed by width×height float32
// samples normalized to [0, 1], little-endian throughout (gotetra-style
// float32 grid IO). The rect must be a non-empty sub-rectangle of f's
// bounds.
func EncodeTile(f *field.Field, r geom.Rect) []byte {
	w, h := r.Width(), r.Height()
	lo, hi := math.Inf(1), math.Inf(-1)
	for y := r.Y0; y < r.Y1; y++ {
		row := f.Data[y*f.NX+r.X0 : y*f.NX+r.X1]
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	rng := hi - lo
	blob := make([]byte, tileHeaderLen+4*w*h)
	binary.LittleEndian.PutUint32(blob[0:], tileMagic)
	binary.LittleEndian.PutUint16(blob[4:], uint16(w))
	binary.LittleEndian.PutUint16(blob[6:], uint16(h))
	binary.LittleEndian.PutUint64(blob[8:], math.Float64bits(lo))
	binary.LittleEndian.PutUint64(blob[16:], math.Float64bits(rng))
	off := tileHeaderLen
	inv := 0.0
	if rng > 0 {
		inv = 1 / rng
	}
	for y := r.Y0; y < r.Y1; y++ {
		row := f.Data[y*f.NX+r.X0 : y*f.NX+r.X1]
		for _, v := range row {
			q := float32((v - lo) * inv)
			binary.LittleEndian.PutUint32(blob[off:], math.Float32bits(q))
			off += 4
		}
	}
	return blob
}

// DecodeTile reverses EncodeTile: width, height and the dequantized
// samples in row-major order.
func DecodeTile(blob []byte) (w, h int, data []float64, err error) {
	if len(blob) < tileHeaderLen {
		return 0, 0, nil, fmt.Errorf("serve: tile blob truncated (%d bytes)", len(blob))
	}
	if binary.LittleEndian.Uint32(blob[0:]) != tileMagic {
		return 0, 0, nil, fmt.Errorf("serve: bad tile magic")
	}
	w = int(binary.LittleEndian.Uint16(blob[4:]))
	h = int(binary.LittleEndian.Uint16(blob[6:]))
	lo := math.Float64frombits(binary.LittleEndian.Uint64(blob[8:]))
	rng := math.Float64frombits(binary.LittleEndian.Uint64(blob[16:]))
	if want := tileHeaderLen + 4*w*h; len(blob) != want {
		return 0, 0, nil, fmt.Errorf("serve: tile blob is %d bytes, want %d for %dx%d", len(blob), want, w, h)
	}
	data = make([]float64, w*h)
	for i := range data {
		q := math.Float32frombits(binary.LittleEndian.Uint32(blob[tileHeaderLen+4*i:]))
		data[i] = lo + float64(q)*rng
	}
	return w, h, data, nil
}
