package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"nestdiff/internal/obs"
)

// SSEOptions tunes the event stream; zero values get defaults.
type SSEOptions struct {
	// Poll is how often the tailing loop re-reads the tracer ring for
	// fresh events. Zero means 50ms.
	Poll time.Duration
	// Heartbeat is the idle interval after which a comment line keeps
	// the connection (and any intermediary) alive. Zero means 15s.
	Heartbeat time.Duration
}

// WantsSSE reports whether a request negotiated Server-Sent Events on
// an endpoint that also serves JSON.
func WantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// lastEventID parses the resume position: the Last-Event-ID header set
// by reconnecting EventSource clients, overridable for plain curl use
// with ?last_event_id=. Zero means "from the oldest buffered event".
func lastEventID(r *http.Request) int64 {
	s := r.Header.Get("Last-Event-ID")
	if q := r.URL.Query().Get("last_event_id"); q != "" {
		s = q
	}
	id, err := strconv.ParseInt(s, 10, 64)
	if err != nil || id < 0 {
		return 0
	}
	return id
}

// ServeSSE streams a traced job's events as Server-Sent Events: it
// replays every buffered event past the client's Last-Event-ID, then
// tails the ring until the client disconnects. Each frame carries the
// tracer sequence number as its SSE id, so a dropped connection resumes
// exactly where it left off — and when the bounded ring has already
// evicted part of the requested range, a "gap" control event reports
// precisely how many events were lost instead of skipping them
// silently. Idle periods are bridged with comment heartbeats.
func ServeSSE(w http.ResponseWriter, r *http.Request, tr *obs.Tracer, opts SSEOptions) {
	if opts.Poll <= 0 {
		opts.Poll = 50 * time.Millisecond
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 15 * time.Second
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "serve: streaming unsupported", http.StatusInternalServerError)
		return
	}
	// A long-lived stream must not be cut by the server's blanket write
	// deadline; clearing it here keeps the timeout protecting every other
	// endpoint. Writers that don't support deadlines just ignore this.
	http.NewResponseController(w).SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	last := lastEventID(r)
	ctx := r.Context()
	lastWrite := time.Now()
	ticker := time.NewTicker(opts.Poll)
	defer ticker.Stop()
	for {
		events, dropped := tr.Events()
		// Sequences are 1-based and gap-free; the oldest still-buffered
		// event is dropped+1. If the client's cursor is older, the ring
		// evicted events it never saw: declare the gap, never skip it
		// silently.
		if first := dropped + 1; last+1 < first && len(events) > 0 {
			missed := first - (last + 1)
			fmt.Fprintf(w, "id: %d\nevent: gap\ndata: {\"missed\": %d, \"resume_seq\": %d}\n\n",
				first-1, missed, first)
			last = first - 1
			lastWrite = time.Now()
		}
		wrote := false
		for _, e := range events {
			if e.Seq <= last {
				continue
			}
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data)
			last = e.Seq
			wrote = true
		}
		if wrote {
			lastWrite = time.Now()
			flusher.Flush()
		} else if time.Since(lastWrite) >= opts.Heartbeat {
			fmt.Fprint(w, ": heartbeat\n\n")
			lastWrite = time.Now()
			flusher.Flush()
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}
