package serve

import (
	"errors"
	"math"
	"testing"

	"nestdiff/internal/field"
	"nestdiff/internal/geom"
)

func testSnapshot(nx, ny int) *Snapshot {
	f := field.New(nx, ny)
	for i := range f.Data {
		f.Data[i] = math.Sin(float64(i)*0.013) * 40
	}
	return &Snapshot{Step: 9, Epoch: 2, Vars: map[string]*field.Field{"qcloud": f}}
}

func TestParseRect(t *testing.T) {
	bounds := geom.NewRect(0, 0, 96, 72)
	if r, err := ParseRect("", bounds); err != nil || r != bounds {
		t.Fatalf("empty rect: %v %v (want full domain)", r, err)
	}
	if r, err := ParseRect("10,20,30,40", bounds); err != nil || r != geom.NewRect(10, 20, 30, 40) {
		t.Fatalf("rect: %v %v", r, err)
	}
	for _, bad := range []string{
		"10,20,30",      // wrong arity
		"a,b,c,d",       // non-numeric
		"0,0,0,10",      // empty width
		"0,0,10,0",      // empty height
		"0,0,-5,10",     // negative extent
		"90,0,20,10",    // overflows east edge
		"0,70,10,10",    // overflows south edge
		"-1,0,10,10",    // negative origin
		"0,0,1000,1000", // way out of bounds
	} {
		if _, err := ParseRect(bad, bounds); !errors.Is(err, ErrBadRect) {
			t.Fatalf("rect %q: err %v, want ErrBadRect", bad, err)
		}
	}
}

func TestBuildResponseFullDomainEqualsSub(t *testing.T) {
	snap := testSnapshot(100, 70)
	c := NewCache(1 << 20)
	for _, rect := range []geom.Rect{
		snap.Vars["qcloud"].Bounds(), // full domain
		geom.NewRect(10, 5, 50, 40),  // interior, spans tiles
		geom.NewRect(0, 0, 1, 1),     // single cell
		geom.NewRect(64, 64, 36, 6),  // ragged corner tile only
		geom.NewRect(63, 63, 2, 2),   // straddles four tiles
	} {
		body, err := BuildResponse(c, "job-1", "qcloud", snap, rect)
		if err != nil {
			t.Fatalf("rect %v: %v", rect, err)
		}
		resp, err := DecodeResponse(body)
		if err != nil {
			t.Fatalf("rect %v: decode: %v", rect, err)
		}
		if resp.Step != 9 || resp.Epoch != 2 || resp.Rect != rect {
			t.Fatalf("rect %v: envelope %+v", rect, resp)
		}
		want := snap.Vars["qcloud"].Sub(rect)
		if resp.Field.NX != want.NX || resp.Field.NY != want.NY {
			t.Fatalf("rect %v: decoded %dx%d, want %dx%d", rect, resp.Field.NX, resp.Field.NY, want.NX, want.NY)
		}
		// The decoded sub-field equals field.Sub within the quantization
		// bound (per-tile range ≤ global range).
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range snap.Vars["qcloud"].Data {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		bound := MaxRelTileError * (hi - lo)
		for i := range want.Data {
			if d := math.Abs(resp.Field.Data[i] - want.Data[i]); d > bound {
				t.Fatalf("rect %v cell %d: |%v - %v| = %g > %g", rect, i, resp.Field.Data[i], want.Data[i], d, bound)
			}
		}
	}
}

func TestBuildResponseUnknownVar(t *testing.T) {
	snap := testSnapshot(32, 32)
	if _, err := BuildResponse(nil, "j", "nope", snap, snap.Vars["qcloud"].Bounds()); !errors.Is(err, ErrBadRect) {
		t.Fatalf("unknown var err %v", err)
	}
}

func TestBuildResponseCacheReuse(t *testing.T) {
	snap := testSnapshot(128, 128)
	c := NewCache(1 << 22)
	rect := snap.Vars["qcloud"].Bounds()
	if _, err := BuildResponse(c, "j", "qcloud", snap, rect); err != nil {
		t.Fatal(err)
	}
	// Cold build: 4 tile misses plus the memoized-response miss.
	st := c.Stats()
	if st.Misses != 5 || st.Hits != 0 {
		t.Fatalf("cold build: %+v, want 5 misses", st)
	}
	warm, err := BuildResponse(c, "j", "qcloud", snap, rect)
	if err != nil {
		t.Fatal(err)
	}
	// Warm build: a single hit on the assembled response, no tile walk.
	st = c.Stats()
	if st.Misses != 5 || st.Hits != 1 {
		t.Fatalf("warm build: %+v, want 1 response hit and no new misses", st)
	}
	if resp, err := DecodeResponse(warm); err != nil || resp.Epoch != snap.Epoch {
		t.Fatalf("memoized response corrupt: %v", err)
	}
	// A different epoch (post-resize) must refill, not hit stale tiles.
	snap2 := &Snapshot{Step: snap.Step, Epoch: 3, Vars: snap.Vars}
	if _, err := BuildResponse(c, "j", "qcloud", snap2, rect); err != nil {
		t.Fatal(err)
	}
	if st = c.Stats(); st.Misses != 10 {
		t.Fatalf("epoch-bumped build: %+v, want 10 cumulative misses", st)
	}
}

func TestDecodeResponseRejectsCorrupt(t *testing.T) {
	snap := testSnapshot(32, 32)
	body, err := BuildResponse(nil, "j", "qcloud", snap, snap.Vars["qcloud"].Bounds())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResponse(body[:8]); err == nil {
		t.Fatal("truncated envelope decoded")
	}
	bad := append([]byte(nil), body...)
	bad[0] ^= 0xff
	if _, err := DecodeResponse(bad); err == nil {
		t.Fatal("bad magic decoded")
	}
	if _, err := DecodeResponse(body[:len(body)-5]); err == nil {
		t.Fatal("truncated tile decoded")
	}
}

// BenchmarkFieldReadCold measures assembling a full-domain response with
// every tile encoded from scratch (the cache is bypassed).
func BenchmarkFieldReadCold(b *testing.B) {
	snap := testSnapshot(256, 256)
	rect := snap.Vars["qcloud"].Bounds()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildResponse(nil, "j", "qcloud", snap, rect); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFieldReadCached measures the same response served from a warm
// tile cache — the acceptance target is ≥ 10× faster than the cold path.
func BenchmarkFieldReadCached(b *testing.B) {
	snap := testSnapshot(256, 256)
	rect := snap.Vars["qcloud"].Bounds()
	c := NewCache(1 << 24)
	if _, err := BuildResponse(c, "j", "qcloud", snap, rect); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildResponse(c, "j", "qcloud", snap, rect); err != nil {
			b.Fatal(err)
		}
	}
}
