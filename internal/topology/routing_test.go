package topology

import (
	"math/rand"
	"testing"

	"nestdiff/internal/geom"
)

func TestRouteLengthMatchesHops(t *testing.T) {
	tor, g := newTestTorus(t, 16, 16)
	r := rand.New(rand.NewSource(51))
	for i := 0; i < 300; i++ {
		a, b := r.Intn(g.Size()), r.Intn(g.Size())
		links := 0
		tor.route(tor.Coord(a), tor.Coord(b), func(Link) { links++ })
		if links != tor.Hops(a, b) {
			t.Fatalf("route from %d to %d uses %d links, hops says %d", a, b, links, tor.Hops(a, b))
		}
	}
}

func TestRouteIsContiguous(t *testing.T) {
	tor, g := newTestTorus(t, 16, 16)
	r := rand.New(rand.NewSource(52))
	for i := 0; i < 100; i++ {
		a, b := r.Intn(g.Size()), r.Intn(g.Size())
		cur := tor.Coord(a)
		tor.route(tor.Coord(a), tor.Coord(b), func(l Link) {
			if l.From != cur {
				t.Fatalf("route discontinuity: at %v, link from %v", cur, l.From)
			}
			// Each link moves exactly one step in exactly one dimension.
			diffs := 0
			for d := 0; d < 3; d++ {
				delta := l.To[d] - l.From[d]
				if delta < 0 {
					delta = -delta
				}
				if wrap := tor.Dims()[d] - delta; wrap < delta {
					delta = wrap
				}
				diffs += delta
			}
			if diffs != 1 {
				t.Fatalf("link %v -> %v is not a single hop", l.From, l.To)
			}
			cur = l.To
		})
		if cur != tor.Coord(b) {
			t.Fatalf("route from %d did not reach %d", a, b)
		}
	}
}

func TestLinkLoadsConserveHopBytes(t *testing.T) {
	// Σ per-link bytes == Σ message bytes × hops: every byte is counted on
	// every link it crosses, exactly once.
	tor, g := newTestTorus(t, 16, 16)
	r := rand.New(rand.NewSource(53))
	var msgs []Message
	wantHopBytes := 0
	for i := 0; i < 200; i++ {
		m := Message{From: r.Intn(g.Size()), To: r.Intn(g.Size()), Bytes: 1 + r.Intn(4096)}
		msgs = append(msgs, m)
		if m.From != m.To {
			wantHopBytes += m.Bytes * tor.Hops(m.From, m.To)
		}
	}
	got := 0
	for _, load := range tor.LinkLoads(msgs) {
		got += load
	}
	if got != wantHopBytes {
		t.Fatalf("link loads sum to %d, hop-bytes is %d", got, wantHopBytes)
	}
}

func TestDORTimeDominatesForCongestedPatterns(t *testing.T) {
	tor, _ := newTestTorus(t, 16, 16)
	dor, err := NewDORTorus(tor)
	if err != nil {
		t.Fatal(err)
	}
	// Many senders targeting one receiver: the receiver's incoming links
	// serialize, which the per-pair maximum cannot see.
	var msgs []Message
	for from := 1; from < 64; from++ {
		msgs = append(msgs, Message{From: from, To: 0, Bytes: 1 << 16})
	}
	pair := tor.AlltoallvTime(msgs)
	contended := dor.AlltoallvTime(msgs)
	if contended <= pair {
		t.Fatalf("DOR time %g not above per-pair max %g under incast", contended, pair)
	}
	// A single message costs at least its serialization either way, and
	// DOR's estimate stays within the same order.
	single := []Message{{From: 0, To: 100, Bytes: 1 << 16}}
	p, d := tor.AlltoallvTime(single), dor.AlltoallvTime(single)
	if d <= 0 || p <= 0 {
		t.Fatal("single message should cost time")
	}
	// The per-pair model charges a per-hop byte term that DOR does not;
	// they agree within a small constant factor.
	if d > p*4 || p > d*4 {
		t.Fatalf("single-message models diverge: pair %g vs DOR %g", p, d)
	}
}

func TestDORTorusInterface(t *testing.T) {
	tor, _ := newTestTorus(t, 16, 16)
	dor, err := NewDORTorus(tor)
	if err != nil {
		t.Fatal(err)
	}
	if dor.Name() != "torus3d-dor" {
		t.Fatalf("name = %q", dor.Name())
	}
	if dor.AlltoallvTime(nil) != 0 {
		t.Fatal("empty exchange should be free")
	}
	if _, err := NewDORTorus(nil); err == nil {
		t.Fatal("nil torus accepted")
	}
}

func TestMeshRouting(t *testing.T) {
	g := geom.NewGrid(16, 16)
	mesh, err := NewMesh3D(g, [3]int{8, 8, 4}, DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(54))
	for i := 0; i < 200; i++ {
		a, b := r.Intn(g.Size()), r.Intn(g.Size())
		links := 0
		mesh.route(mesh.Coord(a), mesh.Coord(b), func(l Link) {
			links++
			// Mesh routes never use wraparound links.
			for d := 0; d < 3; d++ {
				delta := l.To[d] - l.From[d]
				if delta > 1 || delta < -1 {
					t.Fatalf("mesh route used wrap link %v -> %v", l.From, l.To)
				}
			}
		})
		if links != mesh.Hops(a, b) {
			t.Fatalf("mesh route length %d != hops %d", links, mesh.Hops(a, b))
		}
	}
}
