package topology

import "fmt"

// Switched models a flat switched cluster like the paper's "fist" machine:
// multi-core nodes connected through a central switch. There is no
// mesh/torus locality — any two nodes are equidistant — so the diffusion
// strategy's gains come only from sender/receiver overlap, not from hop
// reduction (§V-D observes 10% on fist versus 25% on the torus).
//
// Per §IV-C1, on non-mesh networks the Alltoallv time is modelled by
// summing, for each sender, the times of all its outgoing messages, and
// taking the slowest sender.
type Switched struct {
	size     int
	perNode  int
	params   LinkParams
	nodeHops int // hops charged for an inter-node message
}

var _ Network = (*Switched)(nil)

// NewSwitched builds a switched network of size ranks packed sequentially
// onto nodes of perNode cores each ("fist": 8 cores per node).
func NewSwitched(size, perNode int, params LinkParams) (*Switched, error) {
	if size <= 0 {
		return nil, fmt.Errorf("topology: invalid size %d", size)
	}
	if perNode <= 0 {
		return nil, fmt.Errorf("topology: invalid cores per node %d", perNode)
	}
	return &Switched{size: size, perNode: perNode, params: params, nodeHops: 2}, nil
}

// Name implements Network.
func (s *Switched) Name() string { return "switched" }

// Size implements Network.
func (s *Switched) Size() int { return s.size }

// Node returns the node index hosting a rank.
func (s *Switched) Node(rank int) int {
	validateRank(s.size, rank)
	return rank / s.perNode
}

// Hops implements Network: 0 within a rank, 1 within a node (shared
// memory), and a fixed up-and-down-the-switch cost between nodes.
func (s *Switched) Hops(a, b int) int {
	validateRank(s.size, a)
	validateRank(s.size, b)
	switch {
	case a == b:
		return 0
	case s.Node(a) == s.Node(b):
		return 1
	default:
		return s.nodeHops
	}
}

// PairTime implements Network.
func (s *Switched) PairTime(bytes, hops int) float64 {
	return s.params.PairTime(bytes, hops)
}

// AlltoallvTime implements Network using the per-sender serialization
// model for switched fabrics.
func (s *Switched) AlltoallvTime(msgs []Message) float64 {
	perSender := make(map[int]float64)
	for _, m := range msgs {
		if m.Bytes == 0 || m.From == m.To {
			continue
		}
		perSender[m.From] += s.PairTime(m.Bytes, s.Hops(m.From, m.To))
	}
	var worst float64
	for _, t := range perSender {
		if t > worst {
			worst = t
		}
	}
	return worst
}
