package topology

import (
	"testing"

	"nestdiff/internal/geom"
)

func BenchmarkTorusHops(b *testing.B) {
	g := geom.NewGrid(32, 32)
	tor, err := NewTorus3D(g, [3]int{8, 8, 16}, DefaultTorusParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tor.Hops(i%1024, (i*37)%1024)
	}
}

func BenchmarkTorusAlltoallvTime(b *testing.B) {
	g := geom.NewGrid(32, 32)
	tor, err := NewTorus3D(g, [3]int{8, 8, 16}, DefaultTorusParams())
	if err != nil {
		b.Fatal(err)
	}
	msgs := make([]Message, 0, 1024)
	for r := 0; r < 1024; r++ {
		msgs = append(msgs, Message{From: r, To: (r + 517) % 1024, Bytes: 4096})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tor.AlltoallvTime(msgs)
	}
}

func BenchmarkNewTorus3DFolded(b *testing.B) {
	g := geom.NewGrid(32, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewTorus3D(g, [3]int{8, 8, 16}, DefaultTorusParams()); err != nil {
			b.Fatal(err)
		}
	}
}
