package topology

import (
	"fmt"

	"nestdiff/internal/geom"
)

// Torus3D models a 3D torus interconnect (Blue Gene/L). Every rank of the
// 2D process grid is placed at a torus coordinate by a folding-based
// topology-aware mapping (after Yu et al. [14]) so that neighbours in the
// process grid are at most a small constant number of links apart. The
// Alltoallv cost is the maximum over sender/receiver pair times, per the
// direct algorithm of Kumar et al. [11] assumed in §IV-C1.
type Torus3D struct {
	dims   [3]int
	coords [][3]int // torus coordinate of each rank
	params LinkParams
	mesh   bool // no wraparound links (NewMesh3D)
}

var _ Network = (*Torus3D)(nil)

// TorusDimsFor returns the torus extents used for a given partition size,
// matching common Blue Gene/L partition shapes (1024 → 8×8×16, 512 →
// 8×8×8, 256 → 8×8×4...). Sizes without a 3D factorization of the form
// 2^a fall back to a near-balanced factorization.
func TorusDimsFor(n int) [3]int {
	switch n {
	case 32:
		return [3]int{4, 4, 2}
	case 64:
		return [3]int{4, 4, 4}
	case 128:
		return [3]int{8, 4, 4}
	case 256:
		return [3]int{8, 8, 4}
	case 512:
		return [3]int{8, 8, 8}
	case 1024:
		return [3]int{8, 8, 16}
	case 2048:
		return [3]int{8, 16, 16}
	case 4096:
		return [3]int{16, 16, 16}
	}
	// Near-balanced fallback: a ≤ b ≤ c with a·b·c = n.
	best := [3]int{1, 1, n}
	bestSpread := n
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		m := n / a
		for b := a; b*b <= m; b++ {
			if m%b != 0 {
				continue
			}
			c := m / b
			if spread := c - a; spread < bestSpread {
				bestSpread = spread
				best = [3]int{a, b, c}
			}
		}
	}
	return best
}

// NewTorus3D builds a torus with the given extents holding the ranks of
// the process grid g, placed by the folding mapping when the shapes are
// compatible (g.Px divisible by dims[0], g.Py by dims[1], and the fold
// factors multiplying to dims[2]) and by row-major linear fill otherwise.
func NewTorus3D(g geom.Grid, dims [3]int, params LinkParams) (*Torus3D, error) {
	n := g.Size()
	if dims[0]*dims[1]*dims[2] != n {
		return nil, fmt.Errorf("topology: torus %v does not hold %d ranks", dims, n)
	}
	t := &Torus3D{dims: dims, coords: make([][3]int, n), params: params}
	if g.Px%dims[0] == 0 && g.Py%dims[1] == 0 && (g.Px/dims[0])*(g.Py/dims[1]) == dims[2] {
		t.foldMap(g)
	} else {
		t.linearMap()
	}
	return t, nil
}

// NewTorus3DLinear builds the same torus with the naive row-major rank
// placement regardless of shape compatibility — the baseline against
// which the folding-based topology-aware mapping is evaluated (§V-C).
func NewTorus3DLinear(g geom.Grid, dims [3]int, params LinkParams) (*Torus3D, error) {
	n := g.Size()
	if dims[0]*dims[1]*dims[2] != n {
		return nil, fmt.Errorf("topology: torus %v does not hold %d ranks", dims, n)
	}
	t := &Torus3D{dims: dims, coords: make([][3]int, n), params: params}
	t.linearMap()
	return t, nil
}

// NewMesh3D builds the mesh variant: identical to NewTorus3D but without
// wraparound links, so hop distances are plain per-dimension differences.
// §IV-C1's Alltoallv model covers "mesh and torus based networks"; the
// mesh is the stricter of the two (border ranks are farther apart).
func NewMesh3D(g geom.Grid, dims [3]int, params LinkParams) (*Torus3D, error) {
	t, err := NewTorus3D(g, dims, params)
	if err != nil {
		return nil, err
	}
	t.mesh = true
	return t, nil
}

// foldMap implements the folding-based topology-aware mapping: the process
// grid column index x is folded boustrophedon-style over the torus X
// dimension (fold index ax = x/Tx), rows likewise over Y, and the two fold
// indices are packed into the Z coordinate as z = by·a + ax. The
// boustrophedon reflection makes a fold crossing keep its X (or Y)
// coordinate, so an x-neighbour crossing a fold costs exactly 1 link in z
// and a y-neighbour crossing costs min(a, Tz−a) links. Every other
// process-grid neighbour pair is 1 link apart. (A dilation-1 embedding of a
// 2D grid into a 3D torus with these shapes does not exist; a is the number
// of X folds, small by construction.)
func (t *Torus3D) foldMap(g geom.Grid) {
	tx, ty := t.dims[0], t.dims[1]
	a := g.Px / tx // number of X folds
	for rank := 0; rank < g.Size(); rank++ {
		p := g.Coord(rank)
		ax := p.X / tx
		cx := p.X % tx
		if ax%2 == 1 { // reverse direction on odd folds
			cx = tx - 1 - cx
		}
		by := p.Y / ty
		cy := p.Y % ty
		if by%2 == 1 {
			cy = ty - 1 - cy
		}
		t.coords[rank] = [3]int{cx, cy, by*a + ax}
	}
}

// linearMap fills the torus in row-major order (no topology awareness).
func (t *Torus3D) linearMap() {
	dx, dy := t.dims[0], t.dims[1]
	for rank := range t.coords {
		t.coords[rank] = [3]int{
			rank % dx,
			(rank / dx) % dy,
			rank / (dx * dy),
		}
	}
}

// Name implements Network.
func (t *Torus3D) Name() string {
	if t.mesh {
		return "mesh3d"
	}
	return "torus3d"
}

// Size implements Network.
func (t *Torus3D) Size() int { return len(t.coords) }

// Dims returns the torus extents.
func (t *Torus3D) Dims() [3]int { return t.dims }

// Coord returns the torus coordinate of a rank.
func (t *Torus3D) Coord(rank int) [3]int {
	validateRank(len(t.coords), rank)
	return t.coords[rank]
}

// Hops returns the torus Manhattan distance (with wraparound in every
// dimension) between the nodes hosting ranks a and b.
func (t *Torus3D) Hops(a, b int) int {
	validateRank(len(t.coords), a)
	validateRank(len(t.coords), b)
	ca, cb := t.coords[a], t.coords[b]
	h := 0
	for d := 0; d < 3; d++ {
		delta := ca[d] - cb[d]
		if delta < 0 {
			delta = -delta
		}
		if wrap := t.dims[d] - delta; !t.mesh && wrap < delta {
			delta = wrap
		}
		h += delta
	}
	return h
}

// PairTime implements Network.
func (t *Torus3D) PairTime(bytes, hops int) float64 {
	return t.params.PairTime(bytes, hops)
}

// AlltoallvTime implements Network: the exchange completes when the
// slowest sender/receiver pair completes (direct algorithm on a torus).
func (t *Torus3D) AlltoallvTime(msgs []Message) float64 {
	var worst float64
	for _, m := range msgs {
		if m.Bytes == 0 || m.From == m.To {
			continue
		}
		if dt := t.PairTime(m.Bytes, t.Hops(m.From, m.To)); dt > worst {
			worst = dt
		}
	}
	return worst
}

// MaxDilation returns the largest hop distance between ranks that are
// neighbours in the process grid g. It quantifies the quality of the
// topology-aware mapping (1 would be a perfect embedding).
func (t *Torus3D) MaxDilation(g geom.Grid) int {
	worst := 0
	for rank := 0; rank < g.Size(); rank++ {
		p := g.Coord(rank)
		for _, q := range []geom.Point{{X: p.X + 1, Y: p.Y}, {X: p.X, Y: p.Y + 1}} {
			if !g.Bounds().Contains(q) {
				continue
			}
			if h := t.Hops(rank, g.Rank(q)); h > worst {
				worst = h
			}
		}
	}
	return worst
}
