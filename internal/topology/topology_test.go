package topology

import (
	"math/rand"
	"testing"

	"nestdiff/internal/geom"
)

func TestTorusDimsFor(t *testing.T) {
	cases := []struct {
		n    int
		want [3]int
	}{
		{1024, [3]int{8, 8, 16}},
		{512, [3]int{8, 8, 8}},
		{256, [3]int{8, 8, 4}},
		{64, [3]int{4, 4, 4}},
		{60, [3]int{3, 4, 5}},
	}
	for _, c := range cases {
		got := TorusDimsFor(c.n)
		if got != c.want {
			t.Errorf("TorusDimsFor(%d) = %v, want %v", c.n, got, c.want)
		}
		if got[0]*got[1]*got[2] != c.n {
			t.Errorf("TorusDimsFor(%d) = %v does not multiply back", c.n, got)
		}
	}
}

func newTestTorus(t *testing.T, px, py int) (*Torus3D, geom.Grid) {
	t.Helper()
	g := geom.NewGrid(px, py)
	tor, err := NewTorus3D(g, TorusDimsFor(g.Size()), DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	return tor, g
}

func TestTorusCoordsAreAPermutation(t *testing.T) {
	for _, size := range [][2]int{{32, 32}, {16, 32}, {16, 16}} {
		tor, g := newTestTorus(t, size[0], size[1])
		seen := make(map[[3]int]int)
		for rank := 0; rank < g.Size(); rank++ {
			c := tor.Coord(rank)
			for d := 0; d < 3; d++ {
				if c[d] < 0 || c[d] >= tor.Dims()[d] {
					t.Fatalf("rank %d coord %v outside torus %v", rank, c, tor.Dims())
				}
			}
			if prev, dup := seen[c]; dup {
				t.Fatalf("ranks %d and %d share torus node %v", prev, rank, c)
			}
			seen[c] = rank
		}
		if len(seen) != g.Size() {
			t.Fatalf("mapping is not a bijection: %d nodes for %d ranks", len(seen), g.Size())
		}
	}
}

func TestTorusFoldedMappingDilation(t *testing.T) {
	// The folding-based topology-aware mapping keeps process-grid
	// neighbours at 1 link except across fold boundaries, where a crossing
	// costs at most the X fold count (4 on the 32x32 grid, 2 below).
	cases := []struct {
		px, py, maxDil int
	}{
		{32, 32, 4},
		{16, 32, 2},
		{16, 16, 2},
	}
	for _, c := range cases {
		tor, g := newTestTorus(t, c.px, c.py)
		if d := tor.MaxDilation(g); d > c.maxDil {
			t.Errorf("grid %dx%d: max dilation %d, want <= %d", c.px, c.py, d, c.maxDil)
		}
		// The vast majority of neighbour pairs must be a single link.
		sum, n := 0, 0
		for rank := 0; rank < g.Size(); rank++ {
			p := g.Coord(rank)
			for _, q := range []geom.Point{{X: p.X + 1, Y: p.Y}, {X: p.X, Y: p.Y + 1}} {
				if !g.Bounds().Contains(q) {
					continue
				}
				sum += tor.Hops(rank, g.Rank(q))
				n++
			}
		}
		if avg := float64(sum) / float64(n); avg > 1.5 {
			t.Errorf("grid %dx%d: avg neighbour hops %.2f, want <= 1.5", c.px, c.py, avg)
		}
	}
}

func TestTorusFoldedBeatsLinear(t *testing.T) {
	// Topology awareness is the point of the folding: the average hop count
	// between process-grid neighbours must be lower than under row-major
	// placement.
	g := geom.NewGrid(32, 32)
	folded, err := NewTorus3D(g, [3]int{8, 8, 16}, DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	// Force linear placement with incompatible torus dims... instead use the
	// internal linearMap by constructing a torus for a grid shape that does
	// not divide evenly: 1024 ranks as a 4x256 process grid.
	gLinear := geom.NewGrid(4, 256)
	linear, err := NewTorus3D(gLinear, [3]int{8, 8, 16}, DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	avg := func(tor *Torus3D, g geom.Grid) float64 {
		sum, n := 0, 0
		for rank := 0; rank < g.Size(); rank++ {
			p := g.Coord(rank)
			q := geom.Point{X: p.X, Y: p.Y + 1}
			if !g.Bounds().Contains(q) {
				continue
			}
			sum += tor.Hops(rank, g.Rank(q))
			n++
		}
		return float64(sum) / float64(n)
	}
	if a, b := avg(folded, g), avg(linear, gLinear); a >= b {
		t.Errorf("folded avg vertical-neighbour hops %.2f not better than linear %.2f", a, b)
	}
}

func TestTorusHopsMetricProperties(t *testing.T) {
	tor, g := newTestTorus(t, 16, 16)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b, c := r.Intn(g.Size()), r.Intn(g.Size()), r.Intn(g.Size())
		if tor.Hops(a, a) != 0 {
			t.Fatalf("Hops(a,a) != 0")
		}
		if tor.Hops(a, b) != tor.Hops(b, a) {
			t.Fatalf("hops not symmetric for %d,%d", a, b)
		}
		if tor.Hops(a, c) > tor.Hops(a, b)+tor.Hops(b, c) {
			t.Fatalf("triangle inequality violated: %d,%d,%d", a, b, c)
		}
	}
}

func TestTorusHopsWraparound(t *testing.T) {
	// On an 8-wide ring, coordinates 0 and 7 are 1 hop apart.
	g := geom.NewGrid(16, 16)
	tor, err := NewTorus3D(g, [3]int{8, 8, 4}, DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	var a, b = -1, -1
	for rank := 0; rank < g.Size(); rank++ {
		c := tor.Coord(rank)
		if c == [3]int{0, 0, 0} {
			a = rank
		}
		if c == [3]int{7, 0, 0} {
			b = rank
		}
	}
	if a < 0 || b < 0 {
		t.Fatal("could not locate corner nodes")
	}
	if h := tor.Hops(a, b); h != 1 {
		t.Fatalf("wraparound hops = %d, want 1", h)
	}
}

func TestTorusBadDims(t *testing.T) {
	g := geom.NewGrid(4, 4)
	if _, err := NewTorus3D(g, [3]int{2, 2, 2}, DefaultTorusParams()); err == nil {
		t.Fatal("expected error for mismatched torus size")
	}
}

func TestTorusAlltoallvTimeIsMaxPair(t *testing.T) {
	tor, _ := newTestTorus(t, 16, 16)
	msgs := []Message{
		{From: 0, To: 1, Bytes: 1 << 20},
		{From: 2, To: 200, Bytes: 1 << 20},
		{From: 3, To: 3, Bytes: 1 << 30}, // self message: free
		{From: 4, To: 5, Bytes: 0},       // empty: free
	}
	got := tor.AlltoallvTime(msgs)
	want := tor.PairTime(1<<20, tor.Hops(2, 200))
	if h01 := tor.PairTime(1<<20, tor.Hops(0, 1)); h01 > want {
		want = h01
	}
	if got != want {
		t.Fatalf("AlltoallvTime = %g, want max pair %g", got, want)
	}
	if tor.AlltoallvTime(nil) != 0 {
		t.Fatal("empty exchange should cost 0")
	}
}

func TestPairTimeMonotone(t *testing.T) {
	p := DefaultTorusParams()
	if p.PairTime(100, 1) >= p.PairTime(200, 1) {
		t.Error("PairTime not monotone in bytes")
	}
	if p.PairTime(100, 1) >= p.PairTime(100, 5) {
		t.Error("PairTime not monotone in hops")
	}
	q := DefaultSwitchedParams() // no per-hop byte cost
	if q.PairTime(100, 1) >= q.PairTime(100, 3) {
		t.Error("switched PairTime should still grow with hop latency")
	}
}

func TestSwitchedHops(t *testing.T) {
	s, err := NewSwitched(256, 8, DefaultSwitchedParams())
	if err != nil {
		t.Fatal(err)
	}
	if s.Hops(0, 0) != 0 {
		t.Error("self hops != 0")
	}
	if s.Hops(0, 7) != 1 {
		t.Error("intra-node hops != 1")
	}
	if s.Hops(0, 8) != 2 {
		t.Error("inter-node hops != 2")
	}
	if s.Node(15) != 1 || s.Node(16) != 2 {
		t.Error("node packing wrong")
	}
}

func TestSwitchedAlltoallvSumsPerSender(t *testing.T) {
	s, err := NewSwitched(64, 8, DefaultSwitchedParams())
	if err != nil {
		t.Fatal(err)
	}
	// Sender 0 sends two messages; sender 1 one. Sender 0 dominates.
	msgs := []Message{
		{From: 0, To: 10, Bytes: 1000},
		{From: 0, To: 20, Bytes: 1000},
		{From: 1, To: 30, Bytes: 1000},
	}
	got := s.AlltoallvTime(msgs)
	want := 2 * s.PairTime(1000, 2)
	if got != want {
		t.Fatalf("AlltoallvTime = %g, want %g", got, want)
	}
}

func TestSwitchedErrors(t *testing.T) {
	if _, err := NewSwitched(0, 8, DefaultSwitchedParams()); err == nil {
		t.Error("expected error for zero size")
	}
	if _, err := NewSwitched(8, 0, DefaultSwitchedParams()); err == nil {
		t.Error("expected error for zero perNode")
	}
}

func TestMeshHasNoWraparound(t *testing.T) {
	g := geom.NewGrid(16, 16)
	torus, err := NewTorus3D(g, [3]int{8, 8, 4}, DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := NewMesh3D(g, [3]int{8, 8, 4}, DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	if mesh.Name() != "mesh3d" {
		t.Fatalf("mesh name = %q", mesh.Name())
	}
	// Locate the ring-opposite pair (0,0,0) and (7,0,0): 1 hop on the
	// torus, 7 on the mesh.
	var a, b = -1, -1
	for rank := 0; rank < g.Size(); rank++ {
		switch mesh.Coord(rank) {
		case [3]int{0, 0, 0}:
			a = rank
		case [3]int{7, 0, 0}:
			b = rank
		}
	}
	if a < 0 || b < 0 {
		t.Fatal("corner nodes not found")
	}
	if h := torus.Hops(a, b); h != 1 {
		t.Fatalf("torus wrap hops = %d", h)
	}
	if h := mesh.Hops(a, b); h != 7 {
		t.Fatalf("mesh hops = %d, want 7", h)
	}
	// The mesh metric dominates the torus metric everywhere.
	for i := 0; i < g.Size(); i += 7 {
		for j := 0; j < g.Size(); j += 11 {
			if mesh.Hops(i, j) < torus.Hops(i, j) {
				t.Fatalf("mesh shorter than torus for %d,%d", i, j)
			}
		}
	}
}

func TestNewTorus3DLinearIgnoresShape(t *testing.T) {
	// The linear constructor places ranks row-major even for shapes the
	// folding mapping supports, giving worse neighbour locality.
	g := geom.NewGrid(32, 32)
	lin, err := NewTorus3DLinear(g, [3]int{8, 8, 16}, DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	folded, err := NewTorus3D(g, [3]int{8, 8, 16}, DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	if lin.MaxDilation(g) <= folded.MaxDilation(g) {
		t.Fatalf("linear dilation %d not worse than folded %d",
			lin.MaxDilation(g), folded.MaxDilation(g))
	}
	if _, err := NewTorus3DLinear(g, [3]int{2, 2, 2}, DefaultTorusParams()); err == nil {
		t.Fatal("bad dims accepted")
	}
	if lin.Size() != 1024 || lin.Name() != "torus3d" {
		t.Fatal("accessors wrong")
	}
}

func TestSwitchedAccessors(t *testing.T) {
	s, err := NewSwitched(16, 8, DefaultSwitchedParams())
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "switched" || s.Size() != 16 {
		t.Fatal("accessors wrong")
	}
}
