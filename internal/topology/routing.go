package topology

import "fmt"

// This file adds a finer-grained torus cost model than the §IV-C1 direct
// per-pair maximum: messages are routed link by link with dimension-ordered
// routing (X, then Y, then Z, shortest wrap direction — Blue Gene/L's
// deterministic routing), per-link byte loads are accumulated, and the
// exchange completes when the most loaded link drains. It exposes where
// the aggregate contention constant of the mpi runtime comes from, and
// lets experiments check that the diffusion strategy's advantage survives
// a contention-aware network model.

// Link is one directed physical link of the torus, identified by its
// endpoint node coordinates.
type Link struct {
	From, To [3]int
}

// route visits every link on the dimension-ordered path from node a to
// node b.
func (t *Torus3D) route(a, b [3]int, visit func(Link)) {
	cur := a
	for d := 0; d < 3; d++ {
		for cur[d] != b[d] {
			step := t.stepDir(cur[d], b[d], t.dims[d])
			next := cur
			next[d] = (cur[d] + step + t.dims[d]) % t.dims[d]
			visit(Link{From: cur, To: next})
			cur = next
		}
	}
}

// stepDir returns +1 or -1: the direction of the shortest way around the
// ring of size n from x to y (ties and meshes go the positive way when
// forward distance is not longer).
func (t *Torus3D) stepDir(x, y, n int) int {
	fwd := (y - x + n) % n
	if t.mesh {
		if y > x {
			return 1
		}
		return -1
	}
	if fwd <= n-fwd {
		return 1
	}
	return -1
}

// LinkLoads routes every message with dimension-ordered routing and
// returns the accumulated bytes per directed link.
func (t *Torus3D) LinkLoads(msgs []Message) map[Link]int {
	loads := make(map[Link]int)
	for _, m := range msgs {
		if m.Bytes == 0 || m.From == m.To {
			continue
		}
		t.route(t.Coord(m.From), t.Coord(m.To), func(l Link) {
			loads[l] += m.Bytes
		})
	}
	return loads
}

// MaxLinkLoad returns the byte load of the most contended link.
func (t *Torus3D) MaxLinkLoad(msgs []Message) int {
	worst := 0
	for _, load := range t.LinkLoads(msgs) {
		if load > worst {
			worst = load
		}
	}
	return worst
}

// AlltoallvTimeDOR models the exchange with per-link contention: the time
// for the most loaded link to drain, plus the latency of the longest
// route. It is never smaller than serializing the largest single message
// over one link.
func (t *Torus3D) AlltoallvTimeDOR(msgs []Message) float64 {
	maxLoad := t.MaxLinkLoad(msgs)
	if maxLoad == 0 {
		return 0
	}
	maxHops := 0
	for _, m := range msgs {
		if m.Bytes == 0 || m.From == m.To {
			continue
		}
		if h := t.Hops(m.From, m.To); h > maxHops {
			maxHops = h
		}
	}
	return t.params.Latency + float64(maxHops)*t.params.HopLatency +
		float64(maxLoad)/t.params.BytesPerSec
}

// DORTorus wraps a Torus3D so that the Network interface's AlltoallvTime
// uses the link-contention model instead of the per-pair maximum. All
// other behaviour is inherited.
type DORTorus struct {
	*Torus3D
}

var _ Network = (*DORTorus)(nil)

// NewDORTorus builds the contention-aware variant of a folded torus.
func NewDORTorus(t *Torus3D) (*DORTorus, error) {
	if t == nil {
		return nil, fmt.Errorf("topology: nil torus")
	}
	return &DORTorus{Torus3D: t}, nil
}

// Name implements Network.
func (d *DORTorus) Name() string { return d.Torus3D.Name() + "-dor" }

// AlltoallvTime implements Network with the link-contention model.
func (d *DORTorus) AlltoallvTime(msgs []Message) float64 {
	return d.AlltoallvTimeDOR(msgs)
}
