// Package topology models the interconnects of the paper's two testbeds:
// a Blue Gene/L-style 3D torus and an Infiniband switched cluster ("fist").
//
// The paper's redistribution analysis needs exactly three things from the
// network: a hop metric between ranks (for hop-bytes, §V-E), a per-message
// cost (for the Alltoallv performance model, §IV-C1) and the aggregation
// rule for Alltoallv — maximum over sender/receiver pairs on mesh/torus
// networks (direct algorithm [11]) versus per-sender sums on switched
// networks. All three are reproduced analytically here.
package topology

import "fmt"

// Message is one point-to-point transfer inside a collective.
type Message struct {
	From, To int // ranks
	Bytes    int
}

// Network is the modelled interconnect under a set of ranks. Rank numbering
// matches the 2D process grid (row-major); the network decides where each
// rank physically lives.
type Network interface {
	// Name identifies the model ("torus3d", "switched").
	Name() string
	// Size returns the number of ranks.
	Size() int
	// Hops returns the number of network links on the route between two
	// ranks. Hops(a, a) is 0.
	Hops(a, b int) int
	// PairTime returns the modelled seconds for one message of the given
	// size travelling the given number of hops.
	PairTime(bytes, hops int) float64
	// AlltoallvTime returns the modelled seconds for the whole exchange,
	// using the network-appropriate aggregation rule.
	AlltoallvTime(msgs []Message) float64
}

// LinkParams are the cost-model constants of a network. The defaults are
// loosely calibrated to the respective hardware generation; only ratios
// matter for the reproduction.
type LinkParams struct {
	// Latency is the fixed per-message overhead in seconds.
	Latency float64
	// BytesPerSec is the per-link bandwidth.
	BytesPerSec float64
	// HopLatency is the added routing delay per traversed link in seconds.
	HopLatency float64
	// HopBytesPerSec, when non-zero, adds bytes/HopBytesPerSec per hop to a
	// message, modelling store-and-forward-like per-hop serialization on
	// congested torus links.
	HopBytesPerSec float64
}

// PairTime implements the shared per-message model
//
//	t = Latency + hops·HopLatency + bytes/BytesPerSec + hops·bytes/HopBytesPerSec
//
// with the last term omitted when HopBytesPerSec is zero.
func (p LinkParams) PairTime(bytes, hops int) float64 {
	t := p.Latency + float64(hops)*p.HopLatency + float64(bytes)/p.BytesPerSec
	if p.HopBytesPerSec > 0 {
		t += float64(hops) * float64(bytes) / p.HopBytesPerSec
	}
	return t
}

// DefaultTorusParams returns link constants resembling Blue Gene/L
// (175 MB/s links, microsecond-scale latency).
func DefaultTorusParams() LinkParams {
	return LinkParams{
		Latency:        3e-6,
		BytesPerSec:    175e6,
		HopLatency:     1e-7,
		HopBytesPerSec: 700e6,
	}
}

// DefaultSwitchedParams returns link constants resembling a DDR Infiniband
// fabric (1.4 GB/s, low latency, hop count largely irrelevant).
func DefaultSwitchedParams() LinkParams {
	return LinkParams{
		Latency:     2e-6,
		BytesPerSec: 1.4e9,
		HopLatency:  5e-7,
	}
}

func validateRank(n int, rank int) {
	if rank < 0 || rank >= n {
		panic(fmt.Sprintf("topology: rank %d out of range [0,%d)", rank, n))
	}
}
