package redist

import (
	"fmt"
	"testing"

	"nestdiff/internal/geom"
	"nestdiff/internal/topology"
)

func benchNet(b *testing.B, g geom.Grid) topology.Network {
	b.Helper()
	net, err := topology.NewTorus3D(g, topology.TorusDimsFor(g.Size()), topology.DefaultTorusParams())
	if err != nil {
		b.Fatal(err)
	}
	return net
}

func BenchmarkBuildPlan(b *testing.B) {
	for _, procs := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("subgrid=%dx%d", procs, procs), func(b *testing.B) {
			g := geom.NewGrid(64, 64)
			tr := Transfer{
				NestID: 1, NX: 600, NY: 600,
				Old:       geom.NewRect(0, 0, procs, procs),
				New:       geom.NewRect(procs/2, procs/2, procs, procs),
				ElemBytes: 4096,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BuildPlan(g, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMeasure(b *testing.B) {
	g := geom.NewGrid(32, 32)
	net := benchNet(b, g)
	tr := Transfer{
		NestID: 1, NX: 600, NY: 600,
		Old:       geom.NewRect(0, 0, 16, 16),
		New:       geom.NewRect(8, 8, 16, 16),
		ElemBytes: 4096,
	}
	plan, err := BuildPlan(g, tr)
	if err != nil {
		b.Fatal(err)
	}
	plans := []Plan{plan}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Measure(net, plans)
	}
}
