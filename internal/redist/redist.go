// Package redist builds and evaluates the data-redistribution exchanges
// that follow a processor reallocation. A retained nest is block-distributed
// over its old processor sub-grid (the senders) and must end up
// block-distributed over its new sub-grid (the receivers); the exchange is
// the block-intersection Alltoallv of §IV (Fig. 3). The package computes
// the exact message plan and the paper's evaluation metrics: redistribution
// time under the network model, hop-bytes and average hop-bytes (§V-E,
// Fig. 10), and the sender/receiver overlap percentage (Fig. 11).
package redist

import (
	"fmt"

	"nestdiff/internal/geom"
	"nestdiff/internal/topology"
)

// Transfer describes the redistribution of one retained nest.
type Transfer struct {
	NestID    int
	NX, NY    int       // nest domain extents in grid points
	Old, New  geom.Rect // old and new processor sub-rectangles
	ElemBytes int       // bytes per nest grid point (all prognostic fields)
}

// Plan is the fully resolved exchange for one transfer: the remote
// messages plus the bytes that stay local because a rank is both sender
// and receiver of the same region.
type Plan struct {
	Transfer
	Msgs       []topology.Message // remote messages (From != To, Bytes > 0)
	LocalBytes int                // bytes whose owner does not change
	TotalBytes int                // NX·NY·ElemBytes
}

// BuildPlan intersects the old and new block distributions of the nest and
// returns the message plan. Every pair of (sender block, receiver block)
// with a non-empty intersection contributes one message carrying the
// intersection's payload; intersections owned by the same rank move no
// data (maximizing those is exactly the goal of the diffusion strategy).
func BuildPlan(g geom.Grid, tr Transfer) (Plan, error) {
	if tr.ElemBytes <= 0 {
		return Plan{}, fmt.Errorf("redist: nest %d: non-positive element size %d", tr.NestID, tr.ElemBytes)
	}
	if !g.Bounds().ContainsRect(tr.Old) || !g.Bounds().ContainsRect(tr.New) {
		return Plan{}, fmt.Errorf("redist: nest %d: sub-grid outside process grid", tr.NestID)
	}
	if tr.Old.Empty() || tr.New.Empty() {
		return Plan{}, fmt.Errorf("redist: nest %d: empty sub-grid", tr.NestID)
	}
	oldDist := geom.NewBlockDist(tr.NX, tr.NY, tr.Old)
	newDist := geom.NewBlockDist(tr.NX, tr.NY, tr.New)
	p := Plan{Transfer: tr, TotalBytes: tr.NX * tr.NY * tr.ElemBytes}
	oldDist.Blocks(func(sender geom.Point, sblk geom.Rect) {
		if sblk.Empty() {
			return
		}
		newDist.Blocks(func(receiver geom.Point, rblk geom.Rect) {
			inter := sblk.Intersect(rblk)
			if inter.Empty() {
				return
			}
			bytes := inter.Area() * tr.ElemBytes
			if sender == receiver {
				p.LocalBytes += bytes
				return
			}
			p.Msgs = append(p.Msgs, topology.Message{
				From:  g.Rank(sender),
				To:    g.Rank(receiver),
				Bytes: bytes,
			})
		})
	})
	return p, nil
}

// Metrics aggregates the paper's redistribution measurements over one or
// more plans (one adaptation point can redistribute several nests).
type Metrics struct {
	// Time is the modelled redistribution time in seconds: the sum over
	// nests of the per-nest Alltoallv time, since the paper performs one
	// MPI_Alltoallv per nest.
	Time float64
	// TotalBytes is the total nest payload, moved or not.
	TotalBytes int
	// RemoteBytes is the payload that crossed the network.
	RemoteBytes int
	// LocalBytes is the payload whose owner did not change.
	LocalBytes int
	// HopBytes is Σ hops·bytes over remote messages — the network load
	// metric of Bhatele et al. [15].
	HopBytes float64
	// AvgHopBytes is HopBytes / TotalBytes: the mean number of links
	// travelled per byte of nest data (Fig. 10's y-axis).
	AvgHopBytes float64
	// OverlapPercent is 100·LocalBytes/TotalBytes (Fig. 11's y-axis).
	OverlapPercent float64
	// Messages is the number of non-empty remote messages.
	Messages int
	// MaxHops is the longest route used by any message.
	MaxHops int
}

// Measure evaluates plans against a network model.
func Measure(net topology.Network, plans []Plan) Metrics {
	var m Metrics
	for _, p := range plans {
		m.Time += net.AlltoallvTime(p.Msgs)
		m.TotalBytes += p.TotalBytes
		m.LocalBytes += p.LocalBytes
		for _, msg := range p.Msgs {
			if msg.Bytes == 0 {
				continue
			}
			h := net.Hops(msg.From, msg.To)
			m.RemoteBytes += msg.Bytes
			m.HopBytes += float64(h) * float64(msg.Bytes)
			m.Messages++
			if h > m.MaxHops {
				m.MaxHops = h
			}
		}
	}
	if m.TotalBytes > 0 {
		m.AvgHopBytes = m.HopBytes / float64(m.TotalBytes)
		m.OverlapPercent = 100 * float64(m.LocalBytes) / float64(m.TotalBytes)
	}
	return m
}

// PlansForChange builds the transfer plans for every retained nest between
// two allocations. Nest domain sizes and element widths come from sizes
// and elemBytes; nests missing from either allocation are skipped (they
// were inserted or deleted, not redistributed).
func PlansForChange(g geom.Grid, old, nw map[int]geom.Rect, sizes map[int][2]int, elemBytes int) ([]Plan, error) {
	var ids []int
	for id := range nw {
		if _, ok := old[id]; ok {
			ids = append(ids, id)
		}
	}
	sortInts(ids)
	plans := make([]Plan, 0, len(ids))
	for _, id := range ids {
		sz, ok := sizes[id]
		if !ok {
			return nil, fmt.Errorf("redist: no domain size for nest %d", id)
		}
		p, err := BuildPlan(g, Transfer{
			NestID:    id,
			NX:        sz[0],
			NY:        sz[1],
			Old:       old[id],
			New:       nw[id],
			ElemBytes: elemBytes,
		})
		if err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}
	return plans, nil
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
