package redist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nestdiff/internal/alloc"
	"nestdiff/internal/geom"
	"nestdiff/internal/topology"
)

func testNet(t *testing.T, g geom.Grid) topology.Network {
	t.Helper()
	net, err := topology.NewTorus3D(g, topology.TorusDimsFor(g.Size()), topology.DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestBuildPlanFig3(t *testing.T) {
	// Fig. 3: a nest moves from a 4x4 sub-grid (ranks 0-15) to a disjoint
	// 2x2 sub-grid; each receiver gets its block from exactly 4 senders.
	g := geom.NewGrid(8, 8)
	tr := Transfer{
		NestID: 1, NX: 8, NY: 8,
		Old:       geom.NewRect(0, 0, 4, 4),
		New:       geom.NewRect(4, 4, 2, 2),
		ElemBytes: 8,
	}
	p, err := BuildPlan(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	if p.LocalBytes != 0 {
		t.Fatalf("disjoint sub-grids should have no local bytes, got %d", p.LocalBytes)
	}
	if len(p.Msgs) != 16 {
		t.Fatalf("messages = %d, want 16 (4 receivers x 4 senders)", len(p.Msgs))
	}
	perReceiver := map[int]int{}
	var total int
	for _, m := range p.Msgs {
		perReceiver[m.To]++
		total += m.Bytes
	}
	for to, n := range perReceiver {
		if n != 4 {
			t.Errorf("receiver %d gets %d messages, want 4", to, n)
		}
	}
	if total != 8*8*8 {
		t.Fatalf("total bytes = %d, want %d", total, 8*8*8)
	}
	if p.TotalBytes != 8*8*8 {
		t.Fatalf("TotalBytes = %d", p.TotalBytes)
	}
}

func TestBuildPlanIdentityIsAllLocal(t *testing.T) {
	g := geom.NewGrid(8, 8)
	tr := Transfer{NestID: 1, NX: 30, NY: 20, Old: geom.NewRect(2, 2, 4, 3), New: geom.NewRect(2, 2, 4, 3), ElemBytes: 4}
	p, err := BuildPlan(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Msgs) != 0 {
		t.Fatalf("identity redistribution should have no remote messages, got %d", len(p.Msgs))
	}
	if p.LocalBytes != 30*20*4 {
		t.Fatalf("LocalBytes = %d, want %d", p.LocalBytes, 30*20*4)
	}
}

func TestBuildPlanConservesBytes(t *testing.T) {
	// Property: local + remote bytes always equal the full nest payload.
	r := rand.New(rand.NewSource(31))
	g := geom.NewGrid(16, 16)
	for trial := 0; trial < 200; trial++ {
		tr := Transfer{
			NestID:    trial,
			NX:        1 + r.Intn(100),
			NY:        1 + r.Intn(100),
			Old:       geom.NewRect(r.Intn(8), r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)),
			New:       geom.NewRect(r.Intn(8), r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)),
			ElemBytes: 1 + r.Intn(16),
		}
		p, err := BuildPlan(g, tr)
		if err != nil {
			t.Fatal(err)
		}
		remote := 0
		for _, m := range p.Msgs {
			if m.From == m.To {
				t.Fatalf("self message in plan: %+v", m)
			}
			if m.Bytes <= 0 {
				t.Fatalf("empty message in plan: %+v", m)
			}
			remote += m.Bytes
		}
		if remote+p.LocalBytes != p.TotalBytes {
			t.Fatalf("trial %d: %d remote + %d local != %d total",
				trial, remote, p.LocalBytes, p.TotalBytes)
		}
	}
}

func TestBuildPlanErrors(t *testing.T) {
	g := geom.NewGrid(8, 8)
	base := Transfer{NestID: 1, NX: 8, NY: 8, Old: geom.NewRect(0, 0, 2, 2), New: geom.NewRect(0, 0, 2, 2), ElemBytes: 8}
	bad := base
	bad.ElemBytes = 0
	if _, err := BuildPlan(g, bad); err == nil {
		t.Error("zero ElemBytes accepted")
	}
	bad = base
	bad.Old = geom.NewRect(7, 7, 4, 4)
	if _, err := BuildPlan(g, bad); err == nil {
		t.Error("out-of-grid sub-rect accepted")
	}
	bad = base
	bad.New = geom.Rect{}
	if _, err := BuildPlan(g, bad); err == nil {
		t.Error("empty sub-rect accepted")
	}
}

func TestMeasureOverlapAndHopBytes(t *testing.T) {
	g := geom.NewGrid(16, 16)
	net := testNet(t, g)
	// Grown in place by one column (anchored NW corner, as diffusion
	// produces): many bytes stay local.
	trShift := Transfer{NestID: 1, NX: 64, NY: 64,
		Old: geom.NewRect(0, 0, 8, 8), New: geom.NewRect(0, 0, 9, 8), ElemBytes: 8}
	pShift, err := BuildPlan(g, trShift)
	if err != nil {
		t.Fatal(err)
	}
	mShift := Measure(net, []Plan{pShift})
	// Moved to the opposite corner: nothing stays local.
	trFar := Transfer{NestID: 1, NX: 64, NY: 64,
		Old: geom.NewRect(0, 0, 8, 8), New: geom.NewRect(8, 8, 8, 8), ElemBytes: 8}
	pFar, err := BuildPlan(g, trFar)
	if err != nil {
		t.Fatal(err)
	}
	mFar := Measure(net, []Plan{pFar})

	if mShift.OverlapPercent <= mFar.OverlapPercent {
		t.Errorf("shifted overlap %.1f%% not above far overlap %.1f%%",
			mShift.OverlapPercent, mFar.OverlapPercent)
	}
	if mFar.OverlapPercent != 0 {
		t.Errorf("far overlap = %.1f%%, want 0", mFar.OverlapPercent)
	}
	if mShift.AvgHopBytes >= mFar.AvgHopBytes {
		t.Errorf("shifted avg hop-bytes %.2f not below far %.2f",
			mShift.AvgHopBytes, mFar.AvgHopBytes)
	}
	if mShift.Time >= mFar.Time {
		t.Errorf("shifted time %g not below far time %g", mShift.Time, mFar.Time)
	}
	if mShift.TotalBytes != 64*64*8 || mFar.TotalBytes != 64*64*8 {
		t.Error("total bytes wrong")
	}
	if mFar.MaxHops == 0 || mFar.Messages == 0 {
		t.Error("far move should produce remote traffic")
	}
}

func TestMeasureEmpty(t *testing.T) {
	g := geom.NewGrid(8, 8)
	net := testNet(t, g)
	m := Measure(net, nil)
	if m != (Metrics{}) {
		t.Fatalf("empty measure = %+v", m)
	}
}

func TestPlansForChangeDiffusionBeatsScratch(t *testing.T) {
	// End-to-end over the paper's Fig. 2 → Fig. 8 reconfiguration:
	// diffusion must deliver higher overlap and lower hop-bytes and time
	// than partition-from-scratch.
	g := geom.NewGrid(32, 32)
	net := testNet(t, g)
	old, err := alloc.Scratch(g, map[int]float64{1: 0.1, 2: 0.1, 3: 0.2, 4: 0.25, 5: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	change := alloc.Change{
		Deleted:  []int{1, 2, 4},
		Retained: map[int]float64{3: 0.27, 5: 0.42},
		Added:    map[int]float64{6: 0.31},
	}
	diff, err := alloc.Diffusion(g, old, change)
	if err != nil {
		t.Fatal(err)
	}
	scr, err := alloc.Scratch(g, change.NewWeights())
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[int][2]int{3: {202, 349}, 5: {175, 175}, 6: {200, 200}}
	const elem = 8 * 4 // four float64 fields per point

	diffPlans, err := PlansForChange(g, old.Rects, diff.Rects, sizes, elem)
	if err != nil {
		t.Fatal(err)
	}
	scrPlans, err := PlansForChange(g, old.Rects, scr.Rects, sizes, elem)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffPlans) != 2 || len(scrPlans) != 2 {
		t.Fatalf("plan counts = %d, %d, want 2 retained nests", len(diffPlans), len(scrPlans))
	}
	md := Measure(net, diffPlans)
	ms := Measure(net, scrPlans)
	if md.OverlapPercent <= ms.OverlapPercent {
		t.Errorf("diffusion overlap %.1f%% <= scratch %.1f%%", md.OverlapPercent, ms.OverlapPercent)
	}
	if md.AvgHopBytes >= ms.AvgHopBytes {
		t.Errorf("diffusion avg hop-bytes %.2f >= scratch %.2f", md.AvgHopBytes, ms.AvgHopBytes)
	}
	if md.Time >= ms.Time {
		t.Errorf("diffusion time %g >= scratch time %g", md.Time, ms.Time)
	}
}

func TestPlansForChangeMissingSize(t *testing.T) {
	g := geom.NewGrid(8, 8)
	old := map[int]geom.Rect{1: geom.NewRect(0, 0, 4, 8)}
	nw := map[int]geom.Rect{1: geom.NewRect(4, 0, 4, 8)}
	if _, err := PlansForChange(g, old, nw, map[int][2]int{}, 8); err == nil {
		t.Fatal("missing size not reported")
	}
}

func TestPlansForChangeSkipsInsertedAndDeleted(t *testing.T) {
	g := geom.NewGrid(8, 8)
	old := map[int]geom.Rect{1: geom.NewRect(0, 0, 4, 8), 2: geom.NewRect(4, 0, 4, 8)}
	nw := map[int]geom.Rect{2: geom.NewRect(0, 0, 4, 8), 3: geom.NewRect(4, 0, 4, 8)}
	plans, err := PlansForChange(g, old, nw, map[int][2]int{2: {50, 50}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 || plans[0].NestID != 2 {
		t.Fatalf("plans = %+v, want only nest 2", plans)
	}
}

func TestMeasureSwitchedNetwork(t *testing.T) {
	// The overlap advantage must also register on a switched network,
	// where hop reduction is unavailable (§V-D: fist still gains 10%).
	g := geom.NewGrid(16, 16)
	net, err := topology.NewSwitched(g.Size(), 8, topology.DefaultSwitchedParams())
	if err != nil {
		t.Fatal(err)
	}
	near := Transfer{NestID: 1, NX: 64, NY: 64,
		Old: geom.NewRect(0, 0, 8, 8), New: geom.NewRect(0, 0, 9, 8), ElemBytes: 8}
	far := Transfer{NestID: 1, NX: 64, NY: 64,
		Old: geom.NewRect(0, 0, 8, 8), New: geom.NewRect(8, 8, 8, 8), ElemBytes: 8}
	pn, err := BuildPlan(g, near)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := BuildPlan(g, far)
	if err != nil {
		t.Fatal(err)
	}
	mn, mf := Measure(net, []Plan{pn}), Measure(net, []Plan{pf})
	// On a switched network the Alltoallv time is gated by the busiest
	// sender, which may ship its whole block in both cases; the overlap
	// gain is aggregate (fewer remote bytes and messages) and the time can
	// only improve (§V-D reports a smaller, 10%, gain on fist).
	if mn.RemoteBytes >= mf.RemoteBytes {
		t.Errorf("overlapping move remote bytes %d >= disjoint %d", mn.RemoteBytes, mf.RemoteBytes)
	}
	if mn.Time > mf.Time {
		t.Errorf("overlapping move time %g > disjoint move time %g on switched net", mn.Time, mf.Time)
	}
	if mn.OverlapPercent <= mf.OverlapPercent {
		t.Errorf("overlap percent %.1f <= %.1f", mn.OverlapPercent, mf.OverlapPercent)
	}
}

// Property (testing/quick): plans conserve bytes for arbitrary
// domain/sub-grid shapes.
func TestBuildPlanConservationQuick(t *testing.T) {
	g := geom.NewGrid(16, 16)
	f := func(nx, ny uint8, ox, oy, ow, oh, nx2, ny2, nw, nh uint8) bool {
		tr := Transfer{
			NestID:    1,
			NX:        1 + int(nx)%80,
			NY:        1 + int(ny)%80,
			Old:       geom.NewRect(int(ox)%8, int(oy)%8, 1+int(ow)%8, 1+int(oh)%8),
			New:       geom.NewRect(int(nx2)%8, int(ny2)%8, 1+int(nw)%8, 1+int(nh)%8),
			ElemBytes: 8,
		}
		p, err := BuildPlan(g, tr)
		if err != nil {
			return false
		}
		remote := 0
		for _, m := range p.Msgs {
			remote += m.Bytes
		}
		return remote+p.LocalBytes == p.TotalBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
