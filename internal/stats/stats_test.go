package stats

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestStdDev(t *testing.T) {
	if !almost(StdDev([]float64{2, 2, 2}), 0) {
		t.Error("constant stddev != 0")
	}
	if !almost(StdDev([]float64{1, 3}), 1) {
		t.Error("stddev of {1,3} != 1")
	}
	if StdDev(nil) != 0 {
		t.Error("StdDev(nil) != 0")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 20, 30, 40, 50}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r, 1) {
		t.Fatalf("r = %g, want 1", r)
	}
	neg := []float64{50, 40, 30, 20, 10}
	r, err = Pearson(x, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r, -1) {
		t.Fatalf("r = %g, want -1", r)
	}
}

func TestPearsonNoisy(t *testing.T) {
	// Correlated-with-noise series must land strictly between 0.5 and 1.
	rng := rand.New(rand.NewSource(5))
	var x, y []float64
	for i := 0; i < 200; i++ {
		v := rng.Float64() * 100
		x = append(x, v)
		y = append(y, 2*v+rng.NormFloat64()*20)
	}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0.5 || r >= 1 {
		t.Fatalf("noisy r = %g", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("short series accepted")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("constant series accepted")
	}
}

func TestPearsonSymmetricAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		rxy, err1 := Pearson(x, y)
		ryx, err2 := Pearson(y, x)
		if err1 != nil || err2 != nil {
			continue // degenerate constant draw
		}
		if !almost(rxy, ryx) {
			t.Fatalf("Pearson not symmetric: %g vs %g", rxy, ryx)
		}
		if rxy < -1-1e-12 || rxy > 1+1e-12 {
			t.Fatalf("Pearson out of [-1,1]: %g", rxy)
		}
	}
}

func TestImprovementPercent(t *testing.T) {
	if !almost(ImprovementPercent(100, 75), 25) {
		t.Error("25% improvement wrong")
	}
	if !almost(ImprovementPercent(100, 125), -25) {
		t.Error("regression sign wrong")
	}
	if ImprovementPercent(0, 5) != 0 {
		t.Error("zero baseline should yield 0")
	}
}

func TestMeanImprovementPercent(t *testing.T) {
	got, err := MeanImprovementPercent([]float64{100, 200}, []float64{90, 150})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, (10.0+25.0)/2) {
		t.Fatalf("mean improvement = %g", got)
	}
	if _, err := MeanImprovementPercent([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MeanImprovementPercent([]float64{0}, []float64{1}); err == nil {
		t.Error("all-zero baseline accepted")
	}
}
