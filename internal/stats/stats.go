// Package stats provides the small statistical helpers used by the
// evaluation harness: means, Pearson correlation (used in §V-F to validate
// the execution-time predictor, r ≈ 0.9), and percentage improvements.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns an error when the lengths differ, fewer than two points are
// given, or either series is constant (undefined correlation).
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 points, have %d", len(x))
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: constant series has undefined correlation")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// ImprovementPercent returns how much better (smaller) the candidate is
// than the baseline, in percent: 100·(baseline−candidate)/baseline.
// A negative result means the candidate is worse. It returns 0 when the
// baseline is 0.
func ImprovementPercent(baseline, candidate float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (baseline - candidate) / baseline
}

// MeanImprovementPercent averages the pairwise improvements of candidate
// over baseline across cases, skipping cases with a zero baseline.
func MeanImprovementPercent(baseline, candidate []float64) (float64, error) {
	if len(baseline) != len(candidate) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(baseline), len(candidate))
	}
	var sum float64
	n := 0
	for i := range baseline {
		if baseline[i] == 0 {
			continue
		}
		sum += ImprovementPercent(baseline[i], candidate[i])
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("stats: no comparable cases")
	}
	return sum / float64(n), nil
}
