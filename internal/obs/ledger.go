package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Ledger is an append-only JSONL event log on disk. Each event is one
// self-contained JSON line written with a single Write call, so a crash
// at any instant tears at most the final line — which ReadLedger
// recovers from by dropping it. Reopening an existing ledger first
// terminates any torn final line left by a previous crash, so appends
// after a restart never merge into leftover garbage.
type Ledger struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenLedger opens (creating if needed) an append-only ledger at path.
func OpenLedger(path string) (*Ledger, error) {
	// O_RDWR rather than O_WRONLY: the torn-line repair below reads the
	// last byte back.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open ledger: %w", err)
	}
	// Repair a torn final line from a previous crash: if the file is
	// non-empty and does not end in a newline, terminate the partial line
	// so it reads back as one unparseable (skipped) line instead of
	// corrupting the next append.
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], st.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, fmt.Errorf("obs: repair ledger: %w", err)
			}
		}
	}
	return &Ledger{f: f, path: path}, nil
}

// Path returns the ledger's file path.
func (l *Ledger) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// Append writes one event as a JSON line.
func (l *Ledger) Append(e Event) error {
	if l == nil {
		return nil
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("obs: marshal event: %w", err)
	}
	b = append(b, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("obs: ledger closed")
	}
	if _, err := l.f.Write(b); err != nil {
		return fmt.Errorf("obs: append ledger: %w", err)
	}
	return nil
}

// Sync flushes the ledger to stable storage.
func (l *Ledger) Sync() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// Close syncs and closes the ledger. Close is idempotent.
func (l *Ledger) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// ReadLedger decodes a JSONL event stream. Unparseable lines — a torn
// final line from a crash, or one terminated by a later repair — are
// skipped and counted, never fatal: the ledger is an append-only log and
// every intact line stands on its own. Only I/O errors are returned.
func ReadLedger(r io.Reader) (events []Event, skipped int, err error) {
	br := bufio.NewReader(r)
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && !errors.Is(rerr, io.EOF) {
			return events, skipped, fmt.Errorf("obs: read ledger: %w", rerr)
		}
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			var e Event
			if jerr := json.Unmarshal(trimmed, &e); jerr != nil {
				skipped++
			} else {
				events = append(events, e)
			}
		}
		if rerr != nil {
			return events, skipped, nil
		}
	}
}

// ReadLedgerFile reads a ledger from disk via ReadLedger.
func ReadLedgerFile(path string) ([]Event, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("obs: open ledger: %w", err)
	}
	defer f.Close()
	return ReadLedger(f)
}
