package obs

// PhaseSummary is the streaming aggregate of one duration series: count,
// total, and log-linear-histogram quantiles.
type PhaseSummary struct {
	Name    string `json:"name"`
	Kind    Kind   `json:"kind"`
	Count   int64  `json:"count"`
	TotalNS int64  `json:"total_ns"`
	P50NS   int64  `json:"p50_ns"`
	P90NS   int64  `json:"p90_ns"`
	P99NS   int64  `json:"p99_ns"`
}

// summarize snapshots one histogram into a PhaseSummary.
func summarize(name string, kind Kind, h *Histogram) PhaseSummary {
	return PhaseSummary{
		Name:    name,
		Kind:    kind,
		Count:   h.Count(),
		TotalNS: h.SumNS(),
		P50NS:   h.QuantileNS(0.50),
		P90NS:   h.QuantileNS(0.90),
		P99NS:   h.QuantileNS(0.99),
	}
}

// DecisionSummary tallies the reallocation decisions of a run against
// what actually happened — the scratch-vs-diffusion win/loss record of
// the dynamic strategy's predictor.
type DecisionSummary struct {
	// Decisions counts decision events; ScratchPicks and DiffusionPicks
	// split them by the strategy used.
	Decisions      int `json:"decisions"`
	ScratchPicks   int `json:"scratch_picks"`
	DiffusionPicks int `json:"diffusion_picks"`
	// Dynamic counts decisions that evaluated both candidates; Correct
	// counts those whose predicted pick minimized the actual total.
	Dynamic int `json:"dynamic"`
	Correct int `json:"correct"`
	// PredictedTotal and ActualTotal sum the picked candidate's predicted
	// and actual exec+redist cost in modelled seconds; RegretTotal sums
	// the actual cost paid beyond the cheaper candidate on wrong picks.
	PredictedTotal float64 `json:"predicted_total"`
	ActualTotal    float64 `json:"actual_total"`
	RegretTotal    float64 `json:"regret_total"`
}

// Summary is the digest of a trace — what cmd/nesttrace prints and what
// tests assert against.
type Summary struct {
	// Events is the number of events digested; Steps is the highest
	// pipeline step seen.
	Events int `json:"events"`
	Steps  int `json:"steps"`
	// Phases aggregates every duration series (phases, steps, redists,
	// attempts) in first-seen order.
	Phases []PhaseSummary `json:"phases"`
	// Adaptations lists the adaptation events in order.
	Adaptations []Event `json:"adaptations"`
	// Decisions tallies the reallocation decisions.
	Decisions DecisionSummary `json:"decisions"`
	// NestSpawns/NestMoves/NestDeletes count nest lifecycle events.
	NestSpawns  int `json:"nest_spawns"`
	NestMoves   int `json:"nest_moves"`
	NestDeletes int `json:"nest_deletes"`
}

// Summarize digests a full event stream (typically a ledger read back
// from disk) into the same aggregates a live Tracer maintains, plus the
// adaptation and decision tables.
func Summarize(events []Event) Summary {
	s := Summary{Events: len(events)}
	hists := map[string]*agg{}
	var order []string
	for _, e := range events {
		if e.Step > s.Steps {
			s.Steps = e.Step
		}
		if name := aggName(e); name != "" {
			a, ok := hists[name]
			if !ok {
				a = &agg{kind: e.Kind, hist: NewHistogram()}
				hists[name] = a
				order = append(order, name)
			}
			a.hist.ObserveNS(e.DurNS)
		}
		switch e.Kind {
		case KindAdapt:
			s.Adaptations = append(s.Adaptations, e)
		case KindNestSpawn:
			s.NestSpawns++
		case KindNestMove:
			s.NestMoves++
		case KindNestDelete:
			s.NestDeletes++
		case KindDecision:
			d := &s.Decisions
			d.Decisions++
			switch e.Strategy {
			case "scratch":
				d.ScratchPicks++
			case "diffusion":
				d.DiffusionPicks++
			}
			d.PredictedTotal += e.Predicted
			d.ActualTotal += e.Actual
			if e.Dynamic {
				d.Dynamic++
				if e.Correct {
					d.Correct++
				} else if e.Actual > e.AltActual {
					d.RegretTotal += e.Actual - e.AltActual
				}
			}
		}
	}
	for _, name := range order {
		s.Phases = append(s.Phases, summarize(name, hists[name].kind, hists[name].hist))
	}
	return s
}
