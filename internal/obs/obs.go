// Package obs is the observability layer of the nestdiff runtime: a
// low-overhead, concurrency-safe structured tracer that the core
// pipeline, the wrfsim redistribution, the tracker's scratch-vs-diffusion
// decisions and the job scheduler emit events into.
//
// Events land in a bounded ring buffer (the most recent events win; the
// number of evicted events is reported alongside) and, optionally, in an
// append-only JSONL ledger on disk. Duration-carrying events additionally
// feed streaming log-linear latency histograms, so per-phase p50/p90/p99
// are available without retaining every event.
//
// Like internal/faults, every method is safe on a nil *Tracer and returns
// immediately, so a disabled tracer costs one pointer check per event
// site and nothing else.
package obs

import (
	"sync"
	"time"
)

// Kind labels a trace event.
type Kind string

const (
	// KindPhase is one timed phase of work (model step, PDA, realloc,
	// reconcile, checkpoint, ...). Phase events are the leaves of a job
	// timeline: per job they are non-overlapping, so their durations sum
	// to (approximately) the job's busy wall time.
	KindPhase Kind = "phase"
	// KindStep is one whole pipeline step (it spans several phases, so it
	// is excluded from timeline sums and feeds the step-latency histogram
	// instead).
	KindStep Kind = "step"
	// KindAdapt is one PDA invocation and its consequences — the
	// pipeline-level adaptation event.
	KindAdapt Kind = "adapt"
	// KindDecision is one tracker reallocation decision: the strategy
	// used, its predicted and actual cost, and (on dynamic steps) whether
	// the prediction picked the actually-cheaper candidate.
	KindDecision Kind = "decision"
	// KindNestSpawn / KindNestMove / KindNestDelete record nest lifecycle
	// changes at adaptation points.
	KindNestSpawn  Kind = "nest-spawn"
	KindNestMove   Kind = "nest-move"
	KindNestDelete Kind = "nest-delete"
	// KindRedist is one executed in-place Alltoallv redistribution of a
	// distributed nest.
	KindRedist Kind = "redist"
	// KindNestStep is one nest's advance within a pipeline step. Nests may
	// step concurrently, so these events overlap each other and the
	// enclosing "nests" phase — they feed a per-nest latency aggregate,
	// never timeline phase sums.
	KindNestStep Kind = "nest-step"
	// KindJob records job lifecycle transitions (submitted, attempt,
	// paused, retry, done, failed, cancelled).
	KindJob Kind = "job"
)

// Event is one structured trace record. Unused fields stay zero and are
// omitted from the JSON ledger.
type Event struct {
	// Seq is the tracer-assigned sequence number (1-based, gap-free even
	// when the ring buffer evicts events).
	Seq int64 `json:"seq"`
	// T is the wall-clock emission time.
	T time.Time `json:"t"`
	// Kind labels the event.
	Kind Kind `json:"kind"`
	// Step is the pipeline parent step the event belongs to (0 when not
	// step-scoped).
	Step int `json:"step,omitempty"`
	// Phase names the timed phase (KindPhase) or the lifecycle transition
	// (KindJob).
	Phase string `json:"phase,omitempty"`
	// DurNS is the event's wall-clock duration in nanoseconds.
	DurNS int64 `json:"dur_ns,omitempty"`
	// NestID scopes nest lifecycle and redistribution events.
	NestID int `json:"nest,omitempty"`
	// Strategy is the reallocation strategy a decision used.
	Strategy string `json:"strategy,omitempty"`
	// Dynamic reports that a decision evaluated both candidates; Correct
	// reports whether the predicted pick minimized the actual total.
	Dynamic bool `json:"dynamic,omitempty"`
	Correct bool `json:"correct,omitempty"`
	// Predicted and Actual are the decision's predicted and actual
	// exec+redist cost in modelled seconds; AltActual is the actual cost
	// of the rejected candidate (dynamic decisions only). For KindRedist,
	// Actual is the executed exchange's virtual time.
	Predicted float64 `json:"predicted,omitempty"`
	Actual    float64 `json:"actual,omitempty"`
	AltActual float64 `json:"alt_actual,omitempty"`
	// ScratchNS / DiffusionNS are the wall times spent building the
	// scratch and diffusion candidate allocations.
	ScratchNS   int64 `json:"scratch_ns,omitempty"`
	DiffusionNS int64 `json:"diffusion_ns,omitempty"`
	// HopBytes and RedistBytes carry the network-load metrics of the
	// applied redistribution.
	HopBytes    float64 `json:"hop_bytes,omitempty"`
	RedistBytes int64   `json:"redist_bytes,omitempty"`
	// Detail is a short human-readable annotation.
	Detail string `json:"detail,omitempty"`
}

// Options configures a Tracer.
type Options struct {
	// Buffer bounds the in-memory event ring. Zero means 4096.
	Buffer int
	// Ledger, when non-nil, receives every event as one JSONL line. The
	// tracer does not own the ledger; closing it is the caller's job.
	Ledger *Ledger
}

// agg is the streaming aggregate of one named duration series.
type agg struct {
	kind Kind
	hist *Histogram
}

// Tracer collects structured events. All methods are safe for concurrent
// use and safe on a nil receiver (no-ops), so emission sites need only a
// nil check.
type Tracer struct {
	mu      sync.Mutex
	seq     int64
	ring    []Event
	cap     int
	head    int // index of the oldest event once the ring wrapped
	full    bool
	dropped int64
	ledger  *Ledger
	ledErr  error

	aggs  map[string]*agg
	order []string
}

// New returns a tracer with the given options.
func New(opts Options) *Tracer {
	if opts.Buffer <= 0 {
		opts.Buffer = 4096
	}
	return &Tracer{
		ring:   make([]Event, 0, opts.Buffer),
		cap:    opts.Buffer,
		ledger: opts.Ledger,
		aggs:   make(map[string]*agg),
	}
}

// aggName maps an event to its streaming-aggregate series ("" = none):
// phases aggregate under their phase name, whole steps under "step",
// executed redistributions under "redist", and job attempts under
// "attempt".
func aggName(e Event) string {
	switch e.Kind {
	case KindPhase:
		return e.Phase
	case KindStep:
		return "step"
	case KindRedist:
		return "redist"
	case KindNestStep:
		return "nest-step"
	case KindJob:
		if e.Phase == "attempt" {
			return "attempt"
		}
	}
	return ""
}

// Emit records one event: sequence number and timestamp are assigned
// here. The event is appended to the ring (evicting the oldest when
// full), folded into its streaming aggregate, and appended to the ledger
// when one is attached.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	if e.T.IsZero() {
		e.T = time.Now()
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.head] = e
		t.head = (t.head + 1) % t.cap
		t.full = true
		t.dropped++
	}
	if name := aggName(e); name != "" {
		a, ok := t.aggs[name]
		if !ok {
			a = &agg{kind: e.Kind, hist: NewHistogram()}
			t.aggs[name] = a
			t.order = append(t.order, name)
		}
		a.hist.ObserveNS(e.DurNS)
	}
	led := t.ledger
	t.mu.Unlock()
	if led != nil {
		if err := led.Append(e); err != nil {
			t.mu.Lock()
			if t.ledErr == nil {
				t.ledErr = err
			}
			t.mu.Unlock()
		}
	}
}

// EmitPhase records one timed phase of step `step`.
func (t *Tracer) EmitPhase(step int, phase string, d time.Duration) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KindPhase, Step: step, Phase: phase, DurNS: d.Nanoseconds()})
}

// EmitStep records the duration of one whole pipeline step.
func (t *Tracer) EmitStep(step int, d time.Duration) {
	if t == nil {
		return
	}
	t.Emit(Event{Kind: KindStep, Step: step, DurNS: d.Nanoseconds()})
}

// Events returns a copy of the buffered events, oldest first, plus the
// number of older events the bounded ring has evicted.
func (t *Tracer) Events() ([]Event, int64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if t.full {
		out = append(out, t.ring[t.head:]...)
		out = append(out, t.ring[:t.head]...)
	} else {
		out = append(out, t.ring...)
	}
	return out, t.dropped
}

// Dropped returns the number of events evicted from the ring so far.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// LedgerErr returns the first ledger append error (nil when clean or no
// ledger is attached).
func (t *Tracer) LedgerErr() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ledErr
}

// Summaries returns the streaming aggregates of every duration series in
// first-seen order. Aggregates survive ring eviction: they reflect every
// event ever emitted, not just the buffered tail.
func (t *Tracer) Summaries() []PhaseSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	names := append([]string(nil), t.order...)
	aggs := make([]*agg, len(names))
	for i, n := range names {
		aggs[i] = t.aggs[n]
	}
	t.mu.Unlock()
	out := make([]PhaseSummary, len(names))
	for i, n := range names {
		out[i] = summarize(n, aggs[i].kind, aggs[i].hist)
	}
	return out
}
