package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramIndexMidRoundTrip(t *testing.T) {
	// Every bucket's representative value must map back to that bucket.
	for i := 0; i < histLen; i++ {
		mid := histMid(i)
		if got := histIndex(mid); got != i {
			t.Fatalf("histIndex(histMid(%d)=%d) = %d", i, mid, got)
		}
	}
	// Indices are monotone in the value.
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 63, 64, 100, 1000, 1e6, 1e9, 1e12} {
		i := histIndex(v)
		if i < prev {
			t.Fatalf("histIndex(%d) = %d < previous %d", v, i, prev)
		}
		prev = i
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// Uniform 1µs..1000µs.
	for us := 1; us <= 1000; us++ {
		h.Observe(time.Duration(us) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	wantSum := int64(1000*1001/2) * 1000
	if h.SumNS() != wantSum {
		t.Fatalf("sum = %d, want %d", h.SumNS(), wantSum)
	}
	for _, tc := range []struct {
		q    float64
		want float64 // ns
	}{
		{0.50, 500e3},
		{0.90, 900e3},
		{0.99, 990e3},
	} {
		got := float64(h.QuantileNS(tc.q))
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.05 {
			t.Fatalf("p%.0f = %.0fns, want %.0fns ±5%%", tc.q*100, got, tc.want)
		}
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	if h.QuantileNS(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.ObserveNS(-5) // clamped to 0
	h.ObserveNS(0)
	h.ObserveNS(math.MaxInt64) // clamped to the top bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.QuantileNS(1.0); got != histMid(histLen-1) {
		t.Fatalf("max quantile = %d, want top bucket %d", got, histMid(histLen-1))
	}
	if got := h.QuantileNS(0.0); got != 0 {
		t.Fatalf("min quantile = %d, want 0", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.ObserveNS(int64(i))
				if i%100 == 0 {
					h.QuantileNS(0.5)
				}
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}
