package obs

import (
	"testing"
	"time"
)

// eventSite mimics an instrumented hot-path site exactly as core and
// service write it: one nil check, and only behind it the time.Now pair
// and the Emit. The disabled sub-benchmark is the cost every production
// step pays when tracing is off; BENCH_obs.json records both numbers.
func eventSite(tr *Tracer, step int) {
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	// (traced work happens here)
	if tr != nil {
		tr.EmitPhase(step, "model", time.Since(t0))
	}
}

func BenchmarkTracerOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var tr *Tracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eventSite(tr, i)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		tr := New(Options{Buffer: 4096})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eventSite(tr, i)
		}
	})
	b.Run("enabled-ledger", func(b *testing.B) {
		l, err := OpenLedger(b.TempDir() + "/bench.jsonl")
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		tr := New(Options{Buffer: 4096, Ledger: l})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eventSite(tr, i)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveNS(int64(i%1000) * 1000)
	}
}
