package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KindStep})
	tr.EmitPhase(1, "model", time.Millisecond)
	tr.EmitStep(1, time.Millisecond)
	if ev, dropped := tr.Events(); ev != nil || dropped != 0 {
		t.Fatalf("nil tracer returned events %v dropped %d", ev, dropped)
	}
	if got := tr.Summaries(); got != nil {
		t.Fatalf("nil tracer returned summaries %v", got)
	}
	if tr.Dropped() != 0 || tr.LedgerErr() != nil {
		t.Fatal("nil tracer reported state")
	}
}

func TestRingBufferTruncation(t *testing.T) {
	tr := New(Options{Buffer: 4})
	for i := 1; i <= 10; i++ {
		tr.EmitPhase(i, "model", time.Duration(i)*time.Millisecond)
	}
	ev, dropped := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(ev))
	}
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	// The ring keeps the most recent events, oldest first, with gap-free
	// sequence numbers.
	for i, e := range ev {
		if want := int64(7 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, want)
		}
		if want := 7 + i; e.Step != want {
			t.Fatalf("event %d has step %d, want %d", i, e.Step, want)
		}
	}
	// Streaming aggregates survive eviction: all 10 observations count.
	sums := tr.Summaries()
	if len(sums) != 1 || sums[0].Name != "model" {
		t.Fatalf("summaries = %+v", sums)
	}
	if sums[0].Count != 10 {
		t.Fatalf("aggregate count = %d, want 10 (must survive ring eviction)", sums[0].Count)
	}
	wantTotal := int64(55 * time.Millisecond)
	if sums[0].TotalNS != wantTotal {
		t.Fatalf("aggregate total = %d, want %d", sums[0].TotalNS, wantTotal)
	}
}

func TestAggregateRouting(t *testing.T) {
	tr := New(Options{Buffer: 64})
	tr.EmitPhase(1, "model", time.Millisecond)
	tr.EmitStep(1, 2*time.Millisecond)
	tr.Emit(Event{Kind: KindRedist, NestID: 3, DurNS: int64(3 * time.Millisecond)})
	tr.Emit(Event{Kind: KindJob, Phase: "attempt", DurNS: int64(4 * time.Millisecond)})
	tr.Emit(Event{Kind: KindJob, Phase: "submitted"}) // not a duration series
	tr.Emit(Event{Kind: KindDecision, Strategy: "scratch"})

	sums := tr.Summaries()
	want := []string{"model", "step", "redist", "attempt"}
	if len(sums) != len(want) {
		t.Fatalf("got %d aggregates (%+v), want %d", len(sums), sums, len(want))
	}
	for i, name := range want {
		if sums[i].Name != name {
			t.Fatalf("aggregate %d is %q, want %q (first-seen order)", i, sums[i].Name, name)
		}
		if sums[i].Count != 1 {
			t.Fatalf("aggregate %q count = %d", name, sums[i].Count)
		}
	}
	if sums[0].Kind != KindPhase || sums[1].Kind != KindStep || sums[2].Kind != KindRedist || sums[3].Kind != KindJob {
		t.Fatalf("aggregate kinds wrong: %+v", sums)
	}
}

func TestConcurrentEmitAndRead(t *testing.T) {
	tr := New(Options{Buffer: 128})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.EmitPhase(i, fmt.Sprintf("phase-%d", g%3), time.Microsecond)
				if i%50 == 0 {
					tr.Events()
					tr.Summaries()
				}
			}
		}(g)
	}
	wg.Wait()
	ev, dropped := tr.Events()
	if int64(len(ev))+dropped != 8*200 {
		t.Fatalf("len(events)=%d + dropped=%d != 1600", len(ev), dropped)
	}
	var total int64
	for _, s := range tr.Summaries() {
		total += s.Count
	}
	if total != 8*200 {
		t.Fatalf("aggregate counts sum to %d, want 1600", total)
	}
}

func TestSummarizeDecisions(t *testing.T) {
	events := []Event{
		{Kind: KindDecision, Step: 5, Strategy: "scratch", Predicted: 1, Actual: 2},
		{Kind: KindDecision, Step: 10, Strategy: "diffusion", Dynamic: true, Correct: true, Predicted: 3, Actual: 4, AltActual: 9},
		{Kind: KindDecision, Step: 15, Strategy: "scratch", Dynamic: true, Correct: false, Predicted: 2, Actual: 6, AltActual: 5},
		{Kind: KindAdapt, Step: 15},
		{Kind: KindNestSpawn, Step: 5, NestID: 1},
		{Kind: KindNestMove, Step: 10, NestID: 1},
		{Kind: KindNestDelete, Step: 15, NestID: 1},
	}
	s := Summarize(events)
	d := s.Decisions
	if d.Decisions != 3 || d.ScratchPicks != 2 || d.DiffusionPicks != 1 {
		t.Fatalf("decision tally = %+v", d)
	}
	if d.Dynamic != 2 || d.Correct != 1 {
		t.Fatalf("dynamic tally = %+v", d)
	}
	if d.RegretTotal != 1 {
		t.Fatalf("regret = %g, want 1 (actual 6 vs alternative 5)", d.RegretTotal)
	}
	if d.PredictedTotal != 6 || d.ActualTotal != 12 {
		t.Fatalf("cost totals = %+v", d)
	}
	if len(s.Adaptations) != 1 || s.NestSpawns != 1 || s.NestMoves != 1 || s.NestDeletes != 1 {
		t.Fatalf("lifecycle tallies = %+v", s)
	}
	if s.Steps != 15 {
		t.Fatalf("steps = %d, want 15", s.Steps)
	}
}
