package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-linear bucket layout (the HDR-histogram scheme): values below
// histSubCount nanoseconds map to exact buckets; above that, each
// power-of-two range is split into histSubCount linear sub-buckets, so the
// relative quantile error is bounded by 1/histSubCount ≈ 3%. The layout
// covers [0, ~2.4h] in 1248 buckets (≈10 KiB of counters).
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits // 32 sub-buckets per power of two
	histMaxGroup = 38               // top group covers values up to 64<<37 ns ≈ 2.4 h
	histLen      = (histMaxGroup + 1) * histSubCount
)

// Histogram is a streaming latency histogram over int64 nanosecond
// values. Observe is lock-free (three atomic adds), so hot paths feed it
// concurrently with quantile scrapes.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histLen]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// histIndex maps a nanosecond value to its bucket.
func histIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	h := bits.Len64(u) - 1 // highest set bit position; -1 for zero
	if h < histSubBits {
		return int(u) // exact small values
	}
	g := h - histSubBits + 1
	if g > histMaxGroup {
		return histLen - 1
	}
	sub := int(u >> uint(g-1)) // in [histSubCount, 2·histSubCount)
	return g*histSubCount + (sub - histSubCount)
}

// histMid returns the representative (midpoint) value of a bucket.
func histMid(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	g := i / histSubCount
	sub := int64(i%histSubCount + histSubCount)
	lo := sub << uint(g-1)
	return lo + (int64(1)<<uint(g-1))/2
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNS(d.Nanoseconds()) }

// ObserveNS records one nanosecond value.
func (h *Histogram) ObserveNS(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[histIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumNS returns the sum of all observed values in nanoseconds.
func (h *Histogram) SumNS() int64 { return h.sum.Load() }

// QuantileNS returns the q-quantile (0 < q ≤ 1) in nanoseconds, to
// within the bucket resolution. An empty histogram returns 0. Concurrent
// observations may skew an in-flight scrape by a few samples, which is
// acceptable for monitoring.
func (h *Histogram) QuantileNS(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < histLen; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return histMid(i)
		}
	}
	return histMid(histLen - 1)
}
