package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job-1.jsonl")
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Seq: 1, T: time.Now().UTC(), Kind: KindJob, Phase: "submitted"},
		{Seq: 2, T: time.Now().UTC(), Kind: KindPhase, Step: 1, Phase: "model", DurNS: 12345},
		{Seq: 3, T: time.Now().UTC(), Kind: KindDecision, Step: 5, Strategy: "diffusion", Dynamic: true, Correct: true, Predicted: 1.5, Actual: 2.5, AltActual: 3},
	}
	for _, e := range want {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := l.Append(Event{}); err == nil {
		t.Fatal("append after close succeeded")
	}

	got, skipped, err := ReadLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped %d lines on a clean ledger", skipped)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d events, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Seq != w.Seq || g.Kind != w.Kind || g.Phase != w.Phase || g.Step != w.Step ||
			g.DurNS != w.DurNS || g.Strategy != w.Strategy || g.Dynamic != w.Dynamic ||
			g.Correct != w.Correct || g.Predicted != w.Predicted || g.AltActual != w.AltActual {
			t.Fatalf("event %d: got %+v, want %+v", i, g, w)
		}
		if !g.T.Equal(w.T) {
			t.Fatalf("event %d time %v != %v", i, g.T, w.T)
		}
	}
}

// tornLedger writes n good events then truncates the file mid-way through
// the final line, as a crash during an append would.
func tornLedger(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := l.Append(Event{Seq: int64(i), Kind: KindStep, Step: i, DurNS: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-7); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLedgerTornFinalLineRecovery(t *testing.T) {
	path := tornLedger(t, 5)
	got, skipped, err := ReadLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1 (the torn final line)", skipped)
	}
	if len(got) != 4 {
		t.Fatalf("recovered %d events, want 4", len(got))
	}
	for i, e := range got {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestLedgerReopenAfterTearKeepsAppendsParseable(t *testing.T) {
	path := tornLedger(t, 5)
	// A daemon restart reopens the ledger and appends more events; the
	// torn line must not swallow them.
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Event{Seq: 6, Kind: KindStep, Step: 6, DurNS: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ReadLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if len(got) != 5 || got[4].Seq != 6 {
		t.Fatalf("recovered %d events (last %+v), want 5 ending in seq 6", len(got), got[len(got)-1])
	}
}

func TestTracerLedgerIntegration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(Options{Buffer: 2, Ledger: l}) // tiny ring: ledger must still get everything
	for i := 1; i <= 10; i++ {
		tr.EmitPhase(i, "model", time.Millisecond)
	}
	if err := tr.LedgerErr(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ReadLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(got) != 10 {
		t.Fatalf("ledger has %d events (%d skipped), want all 10", len(got), skipped)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 10 {
		t.Fatalf("ledger has %d lines, want 10", n)
	}
}
