package rng

import "testing"

func TestDeterminismAndSerialization(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	// Capturing the state mid-stream resumes identically.
	saved := a.State
	want := make([]uint64, 10)
	for i := range want {
		want[i] = a.Uint64()
	}
	resumed := &SplitMix64{State: saved}
	for i := range want {
		if got := resumed.Uint64(); got != want[i] {
			t.Fatalf("resumed stream diverged at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.48 || mean > 0.52 {
		t.Fatalf("Float64 mean %g far from 0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	s := New(9)
	seen := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v]++
	}
	for v, c := range seen {
		if c < 700 || c > 1300 {
			t.Fatalf("Intn(%d) count %d grossly non-uniform", v, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

func TestZeroValueUsable(t *testing.T) {
	var s SplitMix64
	if s.Uint64() == s.Uint64() {
		t.Fatal("zero-value generator stuck")
	}
}
