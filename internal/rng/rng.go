// Package rng provides a tiny, serializable pseudo-random generator
// (SplitMix64). The weather model uses it instead of math/rand so that a
// checkpoint can capture the full simulation state — math/rand sources
// cannot be marshalled.
package rng

// SplitMix64 is Steele et al.'s splitmix64 generator. The zero value is a
// valid generator seeded with 0; the entire state is the one exported
// field, so gob/json serialization round-trips it exactly.
type SplitMix64 struct {
	State uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *SplitMix64 { return &SplitMix64{State: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (s *SplitMix64) Uint64() uint64 {
	s.State += 0x9e3779b97f4a7c15
	z := s.State
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive bound")
	}
	return int(s.Uint64() % uint64(n))
}
