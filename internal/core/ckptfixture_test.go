package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"nestdiff/internal/geom"
)

var updateCkptFixture = flag.Bool("update-ckpt-fixture", false,
	"rewrite testdata/v1-diffusion-60step.ckpt from the current v1 encoder")

const (
	v1FixturePath  = "testdata/v1-diffusion-60step.ckpt"
	v1FixtureSteps = 60
)

// TestV1CheckpointFixtureCrossVersionRestore pins compatibility with
// checkpoints written before the v2 envelope existed: a committed v1 gob
// file must validate, restore, re-save through the v2 writer, and the two
// restored pipelines must continue bit-identically. Regenerate the fixture
// with:
//
//	go test ./internal/core -run TestV1CheckpointFixture -update-ckpt-fixture
func TestV1CheckpointFixtureCrossVersionRestore(t *testing.T) {
	g := geom.NewGrid(8, 6)
	if *updateCkptFixture {
		p := checkpointPipeline(t, g, Diffusion, false)
		if err := p.Run(v1FixtureSteps); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := p.saveStateV1(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(v1FixturePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(v1FixturePath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", v1FixturePath, buf.Len())
	}

	data, err := os.ReadFile(v1FixturePath)
	if err != nil {
		t.Fatalf("committed v1 fixture missing (regenerate with -update-ckpt-fixture): %v", err)
	}
	if data[4] != ckptEnvelopeVersion {
		t.Fatalf("fixture has envelope version %d, want v1 (%d)", data[4], ckptEnvelopeVersion)
	}
	if err := ValidateCheckpoint(data); err != nil {
		t.Fatalf("v1 fixture failed validation: %v", err)
	}

	net, model, oracle := testEnv(t, g)
	v1p, err := RestorePipeline(bytes.NewReader(data), net, model, oracle)
	if err != nil {
		t.Fatalf("v1 fixture no longer restores: %v", err)
	}
	if v1p.StepCount() != v1FixtureSteps {
		t.Fatalf("v1 fixture restored at step %d, want %d", v1p.StepCount(), v1FixtureSteps)
	}

	// Cross-version: re-save the restored pipeline through the current
	// writer (v2 envelope) and restore that.
	var v2 bytes.Buffer
	if err := v1p.SaveState(&v2); err != nil {
		t.Fatal(err)
	}
	if v2.Bytes()[4] != ckptEnvelopeV2 {
		t.Fatalf("SaveState wrote envelope version %d, want v2 (%d)", v2.Bytes()[4], ckptEnvelopeV2)
	}
	net2, model2, oracle2 := testEnv(t, g)
	v2p, err := RestorePipeline(bytes.NewReader(v2.Bytes()), net2, model2, oracle2)
	if err != nil {
		t.Fatal(err)
	}

	// Both restored pipelines continue identically: same events, same
	// final nest set — the v1→v2 conversion lost nothing.
	const extra = 60
	if err := v1p.Run(extra); err != nil {
		t.Fatal(err)
	}
	if err := v2p.Run(extra); err != nil {
		t.Fatal(err)
	}
	aEv, bEv := v1p.Events(), v2p.Events()
	if len(aEv) != len(bEv) {
		t.Fatalf("event counts diverged: v1 restore %d, v2 restore %d", len(aEv), len(bEv))
	}
	for i := range aEv {
		if aEv[i].Step != bEv[i].Step || !stepMetricsEqual(aEv[i].Metrics, bEv[i].Metrics) {
			t.Fatalf("event %d diverged:\nv1 restore %+v\nv2 restore %+v", i, aEv[i], bEv[i])
		}
	}
	a, b := v1p.ActiveSet(), v2p.ActiveSet()
	if len(a) != len(b) {
		t.Fatalf("final nest sets differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("final nest %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if !bitsEqual(v1p.Model().QCloud().Data, v2p.Model().QCloud().Data) {
		t.Fatal("model fields diverged after the continuation")
	}
}
