package core

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"
)

func floatsFromBytes(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestRawFieldRoundTrip: the raw codec must preserve every bit pattern,
// including NaN payloads, infinities, negative zero and denormals.
func TestRawFieldRoundTrip(t *testing.T) {
	in := []float64{
		0, math.Copysign(0, -1), 1.5, -2.75e-308, math.Inf(1), math.Inf(-1),
		math.NaN(), math.Float64frombits(0x7ff8000000000001), 5e-324,
	}
	enc := appendRawField(nil, in)
	if len(enc) != 8*len(in) {
		t.Fatalf("raw encoding is %d bytes for %d samples", len(enc), len(in))
	}
	out := make([]float64, len(in))
	decodeRawField(out, enc)
	if !bitsEqual(in, out) {
		t.Fatalf("raw round trip diverged:\nin  %v\nout %v", in, out)
	}
	// fieldCRC must match the CRC of the raw encoding regardless of how
	// the staging chunk divides the field.
	for _, chunkLen := range []int{8, 24, 4096} {
		if got, want := fieldCRC(in, make([]byte, chunkLen)), crcOfBytes(enc); got != want {
			t.Fatalf("fieldCRC (chunk %d) = %#x, want CRC of the raw encoding %#x", chunkLen, got, want)
		}
	}
}

func crcOfBytes(b []byte) uint32 {
	return crc32.Checksum(b, ckptCRC)
}

// TestXORRLERoundTrip: deterministic shapes — all-zero diff, sparse
// changes, dense changes, runs straddling the word-run hysteresis.
func TestXORRLERoundTrip(t *testing.T) {
	const n = 257
	prev := make([]float64, n)
	for i := range prev {
		prev[i] = float64(i) * 1.25e-3
	}
	cases := map[string]func() []float64{
		"unchanged": func() []float64 {
			return append([]float64(nil), prev...)
		},
		"one changed word": func() []float64 {
			cur := append([]float64(nil), prev...)
			cur[n/2] = math.Pi
			return cur
		},
		"dense change": func() []float64 {
			cur := make([]float64, n)
			for i := range cur {
				cur[i] = prev[i]*0.99 + 1e-9
			}
			return cur
		},
		"alternating short runs": func() []float64 {
			cur := append([]float64(nil), prev...)
			for i := 0; i < n; i += 7 {
				cur[i] = -cur[i]
			}
			return cur
		},
		"nan and inf": func() []float64 {
			cur := append([]float64(nil), prev...)
			cur[0] = math.NaN()
			cur[n-1] = math.Inf(-1)
			return cur
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			cur := mk()
			enc := appendXORRLE(nil, cur, prev)
			if err := scanXORRLE(n, enc); err != nil {
				t.Fatalf("scan rejected a writer-produced stream: %v", err)
			}
			dst := append([]float64(nil), prev...)
			if err := applyXORRLE(dst, enc); err != nil {
				t.Fatal(err)
			}
			if !bitsEqual(dst, cur) {
				t.Fatal("XOR+RLE round trip diverged")
			}
		})
	}
}

// TestXORRLERejectsTruncatedStream: scan and apply must agree that a
// stream not covering the whole field is invalid, without panicking.
func TestXORRLERejectsTruncatedStream(t *testing.T) {
	cur := []float64{1, 2, 3, 4}
	prev := []float64{1, 2, 0, 4}
	enc := appendXORRLE(nil, cur, prev)
	for cutAt := 0; cutAt < len(enc); cutAt++ {
		if err := scanXORRLE(len(cur), enc[:cutAt]); err == nil {
			t.Fatalf("scan accepted a stream truncated to %d of %d bytes", cutAt, len(enc))
		}
		dst := append([]float64(nil), prev...)
		if err := applyXORRLE(dst, enc[:cutAt]); err == nil {
			t.Fatalf("apply accepted a stream truncated to %d of %d bytes", cutAt, len(enc))
		}
	}
}

// FuzzFieldCodec drives the v2 field codec round trip from arbitrary byte
// strings: raw encode/decode must be the identity on bit patterns, the
// XOR+RLE diff of any (cur, prev) pair must apply back to cur bit-exactly,
// and scan must accept exactly the streams apply accepts.
func FuzzFieldCodec(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add(
		[]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8},
		[]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 9},
	)
	f.Add(make([]byte, 8*64), make([]byte, 8*64))
	f.Fuzz(func(t *testing.T, curB, prevB []byte) {
		cur := floatsFromBytes(curB)
		prev := floatsFromBytes(prevB)
		// The codec diffs equal-shape fields; pad or trim prev to match.
		for len(prev) < len(cur) {
			prev = append(prev, 0)
		}
		prev = prev[:len(cur)]

		raw := appendRawField(nil, cur)
		out := make([]float64, len(cur))
		decodeRawField(out, raw)
		if !bitsEqual(out, cur) {
			t.Fatal("raw field round trip diverged")
		}
		if fieldCRC(cur, make([]byte, 64)) != crcOfBytes(raw) {
			t.Fatal("fieldCRC disagrees with CRC of the raw encoding")
		}

		enc := appendXORRLE(nil, cur, prev)
		if err := scanXORRLE(len(cur), enc); err != nil {
			t.Fatalf("scan rejected a writer-produced stream: %v", err)
		}
		dst := append([]float64(nil), prev...)
		if err := applyXORRLE(dst, enc); err != nil {
			t.Fatalf("apply rejected a writer-produced stream: %v", err)
		}
		if !bitsEqual(dst, cur) {
			t.Fatal("XOR+RLE round trip diverged")
		}

		// Arbitrary bytes fed to the decoder must never panic, and scan
		// must be at least as strict as apply.
		if len(cur) > 0 {
			junk := enc
			if len(curB) > 0 {
				junk = curB
			}
			applyErr := applyXORRLE(make([]float64, len(cur)), junk)
			if scanErr := scanXORRLE(len(cur), junk); scanErr == nil && applyErr != nil {
				t.Fatalf("scan accepted a stream apply rejects: %v", applyErr)
			}
		}
	})
}
