package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"nestdiff/internal/perfmodel"
	"nestdiff/internal/topology"
)

// WriteFileAtomic writes data to path so that a crash at any instant
// leaves either the previous file or the complete new one, never a torn
// mix: the bytes go to a temporary file in the same directory, which is
// fsynced, renamed over path, and the directory entry is fsynced too.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("core: atomic write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("core: atomic write %s: fsync: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: atomic write %s: %w", path, err)
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: atomic write %s: %w", path, err)
	}
	// Persist the rename itself; without the directory fsync a crash can
	// roll the directory entry back even though the data blocks survived.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// SaveStateFile checkpoints the pipeline to path atomically: the full
// enveloped checkpoint is staged in memory first, so an encoding failure
// never touches the file, and the write itself is temp+fsync+rename.
func (p *Pipeline) SaveStateFile(path string) error {
	var buf bytes.Buffer
	if err := p.SaveState(&buf); err != nil {
		return err
	}
	return WriteFileAtomic(path, buf.Bytes(), 0o644)
}

// RestorePipelineFile rebuilds a pipeline from a checkpoint file written
// by SaveStateFile, rejecting torn or corrupt files via the envelope
// checks of RestorePipeline.
func RestorePipelineFile(path string, net topology.Network, model *perfmodel.ExecModel, oracle *perfmodel.Oracle) (*Pipeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: open checkpoint: %w", err)
	}
	defer f.Close()
	return RestorePipeline(f, net, model, oracle)
}
