package core

import (
	"bytes"
	"testing"

	"nestdiff/internal/geom"
)

// benchCkptPipeline is the multi-nest checkpoint workload: the scripted
// two-storm scenario run until both nests exist, the same state every
// bench uses so the encode numbers are comparable.
func benchCkptPipeline(b *testing.B) *Pipeline {
	b.Helper()
	p := checkpointPipeline(b, geom.NewGrid(8, 6), Diffusion, false)
	if err := p.Run(60); err != nil {
		b.Fatal(err)
	}
	if len(p.Nests()) < 2 {
		b.Fatalf("scenario spawned %d nests, want >= 2", len(p.Nests()))
	}
	return p
}

// BenchmarkCheckpointSaveV1Gob is the pre-v2 baseline: one reflective gob
// encode of the full pipelineState per checkpoint.
func BenchmarkCheckpointSaveV1Gob(b *testing.B) {
	p := benchCkptPipeline(b)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := p.saveStateV1(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()), "ckpt-bytes")
}

// BenchmarkCheckpointEncodeFull measures a v2 full base: binary field
// records encoded in parallel into the writer's pooled arenas.
func BenchmarkCheckpointEncodeFull(b *testing.B) {
	p := benchCkptPipeline(b)
	cw := NewCheckpointWriter(CheckpointWriterOptions{MaxDeltas: -1})
	var n int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, _, err := cw.Encode(p)
		if err != nil {
			b.Fatal(err)
		}
		n = len(blob)
	}
	b.ReportMetric(float64(n), "ckpt-bytes")
}

// BenchmarkCheckpointEncodeDelta measures the steady-state auto-checkpoint
// cut: the pipeline steps between cuts (excluded from the timer) and each
// cut emits a thin replay delta. Run with a fixed -benchtime (e.g. 200x):
// every iteration advances the simulation one step.
func BenchmarkCheckpointEncodeDelta(b *testing.B) {
	benchEncodeDelta(b, false)
}

// BenchmarkCheckpointEncodeFieldDelta is the same cut with XOR+RLE field
// diffs instead of replay directives — the restore-without-replay flavor.
func BenchmarkCheckpointEncodeFieldDelta(b *testing.B) {
	benchEncodeDelta(b, true)
}

func benchEncodeDelta(b *testing.B, fieldDeltas bool) {
	p := benchCkptPipeline(b)
	cw := NewCheckpointWriter(CheckpointWriterOptions{MaxDeltas: 1 << 30, FieldDeltas: fieldDeltas})
	if _, _, err := cw.Encode(p); err != nil { // the chain's full base
		b.Fatal(err)
	}
	var total int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := p.Run(1); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		blob, full, err := cw.Encode(p)
		if err != nil {
			b.Fatal(err)
		}
		if full {
			b.Fatal("unexpected re-base during the delta benchmark")
		}
		total += len(blob)
	}
	b.ReportMetric(float64(total)/float64(b.N), "ckpt-bytes")
}
