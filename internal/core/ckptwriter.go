package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"runtime"
	"slices"

	"nestdiff/internal/field"
	"nestdiff/internal/geom"
	"nestdiff/internal/scenario"
	"nestdiff/internal/wrfsim"
)

// ckptMetaV2 is the non-field state of one v2 checkpoint blob: everything
// a restore needs except the float64 arrays, which travel as binary field
// records. It is small (events, tracker history, cell population), so gob
// remains the right tool for it; the arrays it excludes are ~99% of the
// payload and go through the binary codec instead.
type ckptMetaV2 struct {
	Cfg     PipelineConfig
	Set     scenario.Set
	NextID  int
	Events  []AdaptationEvent
	Tracker trackerState
	MCfg    wrfsim.Config
	Cells   []wrfsim.Cell
	RNG     uint64
	Time    float64
	Step    int
}

// CheckpointWriterOptions tunes a CheckpointWriter.
type CheckpointWriterOptions struct {
	// MaxDeltas bounds the delta chain: after this many consecutive delta
	// blobs the next Encode emits a full base. Zero means the default (8);
	// negative disables deltas entirely, so every Encode is a full base.
	MaxDeltas int
	// Workers bounds how many nests encode concurrently (the same knob as
	// PipelineConfig.NestWorkers). Zero means runtime.GOMAXPROCS(0).
	Workers int
	// FieldDeltas makes delta blobs carry XOR+RLE field diffs instead of a
	// replay directive. Diffs restore without re-executing any steps, but
	// advected fields change every word every step, so a diff costs nearly
	// as many bytes as a full base. The default (false) writes deltas as a
	// target step plus per-field CRCs — a few hundred bytes — and restore
	// re-executes the delta's steps deterministically, verifying the CRCs.
	FieldDeltas bool
}

const defaultMaxDeltas = 8

// modelShadow is the writer's copy of the parent field as of the previous
// blob in the current chain — the XOR baseline for model deltas.
type modelShadow struct {
	data   []float64
	nx, ny int
	step   int
	valid  bool
}

// nestShadow is the writer's copy of one nest as of the previous blob:
// geometry for the dirty test, samples for the XOR baseline, and (for
// distributed nests) a pooled gather target double-buffered against data.
type nestShadow struct {
	region geom.Rect
	procs  geom.Rect
	nx, ny int
	steps  int
	dist   bool
	data   []float64
	gather *field.Field
}

// nestWork is one planned nest record: which nest, encoded how.
type nestWork struct {
	id   int
	kind byte // recNestFull or recNestXOR
}

// CheckpointWriter encodes pipeline checkpoints as NDCP v2 blobs,
// producing delta blobs between bounded full bases. All buffers — the two
// output arenas, the per-nest encode buffers, the field shadows — are
// pooled, so steady-state encoding of an unchanged topology allocates
// only what gob needs for the small metadata record.
//
// The writer assumes it sees every checkpoint of one pipeline in order:
// its shadows are the XOR baselines, valid only if every blob it returned
// since the last full base was actually committed. A caller that drops a
// blob (failed write) or mutates the pipeline outside stepping (elastic
// resize) must call Invalidate so the next Encode re-bases.
//
// Not safe for concurrent use; Encode must not run while the pipeline is
// stepping.
type CheckpointWriter struct {
	opts CheckpointWriterOptions

	model modelShadow
	nests map[int]*nestShadow

	// Chain bookkeeping: valid gates delta encoding, deltas counts blobs
	// since the last base, seq/prevCRC seed the next blob's header links.
	valid   bool
	deltas  int
	seq     uint32
	prevCRC uint32

	// arenas double-buffer the encoded output: the blob returned by one
	// Encode stays untouched through the next Encode (which uses the other
	// arena), so a caller can hand it to an async persister without a copy.
	arenas [2][]byte
	cur    int

	// metaEnc is the chain-scoped gob stream: type descriptors are sent
	// once per chain (on the base blob) instead of once per checkpoint.
	// meta lives on the writer because gob takes it by reference — a local
	// would escape and cost one heap allocation per Encode.
	metaEnc *gob.Encoder
	metaRaw bytes.Buffer
	meta    ckptMetaV2

	// Reused planning/encode scratch.
	ids      []int
	rm       []int
	work     []nestWork
	nestBufs [][]byte
	cells    []wrfsim.Cell
	crc      []byte
}

// NewCheckpointWriter returns a writer with empty shadows: its first
// Encode emits a full base.
func NewCheckpointWriter(opts CheckpointWriterOptions) *CheckpointWriter {
	return &CheckpointWriter{opts: opts, nests: make(map[int]*nestShadow)}
}

// Invalidate forces the next Encode to emit a full base blob. Callers use
// it when a returned blob was not durably committed (so the shadows no
// longer describe the last persisted state) or when pipeline state changed
// outside stepping (elastic resize redistributes fields ULP-equivalently,
// not bit-identically).
func (cw *CheckpointWriter) Invalidate() { cw.valid = false }

func (cw *CheckpointWriter) maxDeltas() int {
	if cw.opts.MaxDeltas < 0 {
		return 0
	}
	if cw.opts.MaxDeltas == 0 {
		return defaultMaxDeltas
	}
	return cw.opts.MaxDeltas
}

func (cw *CheckpointWriter) workers() int {
	if cw.opts.Workers > 0 {
		return cw.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Encode captures the pipeline's current state as one v2 blob and reports
// whether it is a full base. A delta blob only restores on top of the
// chain of blobs since the last full base; callers append it to the bytes
// of that chain. The returned slice aliases one of the writer's two
// arenas: it is stable through the next Encode call and overwritten by the
// one after, so callers that keep it longer must copy.
func (cw *CheckpointWriter) Encode(p *Pipeline) (blob []byte, full bool, err error) {
	full = !cw.valid || cw.deltas >= cw.maxDeltas()
	cw.cur ^= 1
	buf := cw.arenas[cw.cur][:0]
	var hdr [ckptV2HeaderLen]byte
	buf = append(buf, hdr[:]...)

	// Metadata record first. gob encoding is the only fallible step and it
	// runs before any shadow is touched, so a failed Encode leaves the
	// writer's XOR baselines describing the last returned blob.
	if full {
		cw.metaEnc = gob.NewEncoder(&cw.metaRaw)
	}
	meta := &cw.meta
	*meta = ckptMetaV2{
		RNG:  p.model.RNGState(),
		Time: p.model.Time(),
		Step: p.model.StepCount(),
	}
	if full || cw.opts.FieldDeltas {
		// Replay deltas rebuild everything below from the base, so their
		// metadata record carries only the step bookkeeping above.
		cw.cells = p.model.AppendCells(cw.cells[:0])
		meta.Cfg = p.cfg
		meta.Set = p.set
		meta.NextID = p.nextID
		meta.Events = p.events
		meta.Tracker = p.tracker.state()
		meta.MCfg = p.model.Config()
		meta.Cells = cw.cells
	}
	cw.metaRaw.Reset()
	if err := cw.metaEnc.Encode(meta); err != nil {
		cw.valid = false
		return nil, false, fmt.Errorf("core: save pipeline state: %w", err)
	}
	buf, start := beginRecord(buf, recMeta)
	buf = append(buf, cw.metaRaw.Bytes()...)
	buf = endRecord(buf, start)

	if full || cw.opts.FieldDeltas {
		buf = cw.encodeModel(buf, p, full)
		buf = cw.encodeNests(buf, p, full)
	} else {
		buf = cw.encodeReplay(buf, p)
	}

	payload := buf[ckptV2HeaderLen:]
	h := blobHeader{
		payloadLen: uint64(len(payload)),
		crc:        crc32.Checksum(payload, ckptCRC),
		delta:      !full,
	}
	if full {
		cw.seq, cw.deltas = 0, 0
	} else {
		cw.seq++
		cw.deltas++
		h.seq = cw.seq
		h.link = cw.prevCRC
	}
	putBlobHeader(buf[:ckptV2HeaderLen], h)
	cw.prevCRC = h.crc
	cw.valid = true
	cw.arenas[cw.cur] = buf
	return buf, full, nil
}

// encodeModel appends the parent field record: raw on a base (or shape
// change), XOR against the shadow on a delta, nothing at all when the
// model has not stepped since the previous blob (field mutations only
// happen inside Pipeline.Step, so an unchanged step count means an
// unchanged field).
func (cw *CheckpointWriter) encodeModel(buf []byte, p *Pipeline, full bool) []byte {
	q := p.model.QCloud()
	step := p.model.StepCount()
	sh := &cw.model
	var start int
	switch {
	case full || !sh.valid || sh.nx != q.NX || sh.ny != q.NY:
		buf, start = beginRecord(buf, recModelRaw)
		buf = appendU32(buf, uint32(q.NX))
		buf = appendU32(buf, uint32(q.NY))
		buf = appendRawField(buf, q.Data)
		buf = endRecord(buf, start)
	case step == sh.step:
		return buf
	default:
		buf, start = beginRecord(buf, recModelXOR)
		buf = appendU32(buf, uint32(q.NX))
		buf = appendU32(buf, uint32(q.NY))
		buf = appendXORRLE(buf, q.Data, sh.data)
		buf = endRecord(buf, start)
	}
	sh.data = append(sh.data[:0], q.Data...)
	sh.nx, sh.ny, sh.step, sh.valid = q.NX, q.NY, step, true
	return buf
}

// encodeNests plans one record (or none) per live nest, encodes the
// planned records concurrently into pooled per-nest buffers, and stitches
// them into buf in nest-ID order, followed by removal records for nests
// that vanished since the previous blob.
func (cw *CheckpointWriter) encodeNests(buf []byte, p *Pipeline, full bool) []byte {
	dist := p.cfg.Distributed
	ids := cw.ids[:0]
	if dist {
		for id := range p.dnests {
			ids = append(ids, id)
		}
	} else {
		for id := range p.nests {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	cw.ids = ids

	work := cw.work[:0]
	for _, id := range ids {
		var region, procs geom.Rect
		var nx, ny, steps int
		if dist {
			n := p.dnests[id]
			region, procs, steps = n.Region, n.Procs(), n.StepCount()
			nx, ny = n.Size()
		} else {
			n := p.nests[id]
			q := n.QCloud()
			region, steps = n.Region, n.StepCount()
			nx, ny = q.NX, q.NY
		}
		sh, ok := cw.nests[id]
		if !ok {
			sh = &nestShadow{}
			cw.nests[id] = sh
		}
		kind := byte(recNestFull)
		if !full && ok && sh.region == region && sh.procs == procs &&
			sh.nx == nx && sh.ny == ny && sh.dist == dist {
			if sh.steps == steps {
				kind = 0 // bit-identical to the previous blob: omit
			} else {
				kind = recNestXOR
			}
		}
		sh.region, sh.procs, sh.nx, sh.ny, sh.dist, sh.steps = region, procs, nx, ny, dist, steps
		if kind != 0 {
			work = append(work, nestWork{id: id, kind: kind})
		}
	}
	cw.work = work

	// Nests that vanished since the previous blob. On a base the shadows
	// are simply pruned: the base rewrites the world, so absence is enough.
	rm := cw.rm[:0]
	for id := range cw.nests {
		live := false
		if dist {
			_, live = p.dnests[id]
		} else {
			_, live = p.nests[id]
		}
		if !live {
			rm = append(rm, id)
		}
	}
	slices.Sort(rm)
	cw.rm = rm

	for len(cw.nestBufs) < len(work) {
		cw.nestBufs = append(cw.nestBufs, nil)
	}
	bufs := cw.nestBufs
	runBounded(cw.workers(), len(work), func(i int) {
		bufs[i] = cw.encodeNest(p, work[i], bufs[i][:0], dist)
	})
	for i := range work {
		buf = append(buf, bufs[i]...)
	}

	var start int
	for _, id := range rm {
		delete(cw.nests, id)
		if !full {
			buf, start = beginRecord(buf, recNestRemove)
			buf = appendU32(buf, uint32(id))
			buf = endRecord(buf, start)
		}
	}
	return buf
}

// encodeNest encodes one planned nest record into nb and refreshes the
// nest's shadow. It touches only its own nest's state, so the planned
// records encode concurrently.
func (cw *CheckpointWriter) encodeNest(p *Pipeline, w nestWork, nb []byte, dist bool) []byte {
	sh := cw.nests[w.id]
	var cur []float64
	if dist {
		sh.gather = p.dnests[w.id].GatherInto(sh.gather)
		cur = sh.gather.Data
	} else {
		cur = p.nests[w.id].QCloud().Data
	}
	var start int
	if w.kind == recNestFull {
		nb, start = beginRecord(nb, recNestFull)
		nb = appendU32(nb, uint32(w.id))
		nb = appendRect(nb, sh.region)
		nb = appendU32(nb, uint32(sh.steps))
		var flags byte
		if dist {
			flags |= 1
		}
		nb = append(nb, flags)
		nb = appendRect(nb, sh.procs)
		nb = appendU32(nb, uint32(sh.nx))
		nb = appendU32(nb, uint32(sh.ny))
		nb = appendRawField(nb, cur)
	} else {
		nb, start = beginRecord(nb, recNestXOR)
		nb = appendU32(nb, uint32(w.id))
		nb = appendU32(nb, uint32(sh.steps))
		nb = appendXORRLE(nb, cur, sh.data)
	}
	nb = endRecord(nb, start)

	// Refresh the XOR baseline. Distributed nests double-buffer: the
	// gathered field becomes the baseline and the old baseline becomes the
	// next gather target (same shape in steady state, so no allocation).
	if dist {
		old := sh.data
		sh.data = sh.gather.Data
		if len(old) == len(sh.data) {
			sh.gather.Data = old
		} else {
			sh.gather = nil
		}
	} else {
		sh.data = append(sh.data[:0], cur...)
	}
	return nb
}

// encodeReplay appends the thin delta record: the step the restore must
// re-execute to, plus CRCs of the model and every live nest field at that
// step so the replayed state is provably bit-identical. Shadows in this
// mode hold only the pooled gather scratch for distributed nests.
func (cw *CheckpointWriter) encodeReplay(buf []byte, p *Pipeline) []byte {
	dist := p.cfg.Distributed
	ids := cw.ids[:0]
	if dist {
		for id := range p.dnests {
			ids = append(ids, id)
		}
	} else {
		for id := range p.nests {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	cw.ids = ids

	for id := range cw.nests {
		live := false
		if dist {
			_, live = p.dnests[id]
		} else {
			_, live = p.nests[id]
		}
		if !live {
			delete(cw.nests, id)
		}
	}

	if cw.crc == nil {
		cw.crc = make([]byte, 4096)
	}
	buf, start := beginRecord(buf, recReplay)
	buf = appendU32(buf, uint32(p.model.StepCount()))
	buf = appendU32(buf, fieldCRC(p.model.QCloud().Data, cw.crc))
	buf = appendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		var cur []float64
		if dist {
			sh := cw.nests[id]
			if sh == nil {
				sh = &nestShadow{}
				cw.nests[id] = sh
			}
			sh.gather = p.dnests[id].GatherInto(sh.gather)
			cur = sh.gather.Data
		} else {
			cur = p.nests[id].QCloud().Data
		}
		buf = appendU32(buf, uint32(id))
		buf = appendU32(buf, fieldCRC(cur, cw.crc))
	}
	return endRecord(buf, start)
}
