package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nestdiff/internal/geom"
	"nestdiff/internal/pda"
	"nestdiff/internal/wrfsim"
)

// checkpointPipeline builds a small scripted-storm pipeline over the given
// tracker grid in the given mode, with storms long-lived enough that nests
// exist at the pause point and churn afterwards.
func checkpointPipeline(t testing.TB, g geom.Grid, strategy Strategy, distributed bool) *Pipeline {
	t.Helper()
	wcfg := wrfsim.DefaultConfig()
	wcfg.NX, wcfg.NY = 96, 72
	wcfg.SpawnRate = 0
	m, err := wrfsim.NewModel(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []wrfsim.Cell{
		{X: 20, Y: 18, Radius: 5, Peak: 2.5, Life: 2 * 3600},
		{X: 70, Y: 50, Radius: 4, Peak: 2.0, Life: 6 * 3600},
	} {
		if err := m.InjectCell(c); err != nil {
			t.Fatal(err)
		}
	}
	tr := newTestTracker(t, g, strategy)
	p, err := NewPipeline(m, tr, PipelineConfig{
		WRFGrid:       geom.NewGrid(8, 6),
		AnalysisRanks: 6,
		Interval:      5,
		PDA:           pda.DefaultOptions(),
		MaxNests:      4,
		Distributed:   distributed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runRoundTrip pauses a pipeline at step k, restores it from the
// checkpoint, and verifies the resumed run reproduces the uninterrupted
// run's StepMetrics tail and final nest set exactly.
func runRoundTrip(t *testing.T, distributed bool) {
	t.Helper()
	const k, total = 60, 160
	g := geom.NewGrid(8, 6)

	ref := checkpointPipeline(t, g, Diffusion, distributed)
	if err := ref.Run(k); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ref.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	eventsAtPause := len(ref.Events())
	// Continue the reference run uninterrupted.
	if err := ref.Run(total - k); err != nil {
		t.Fatal(err)
	}

	net, model, oracle := testEnv(t, g)
	resumed, err := RestorePipeline(bytes.NewReader(buf.Bytes()), net, model, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.StepCount() != k {
		t.Fatalf("restored pipeline at step %d, want %d", resumed.StepCount(), k)
	}
	if len(resumed.Events()) != eventsAtPause {
		t.Fatalf("restored pipeline has %d events, want %d", len(resumed.Events()), eventsAtPause)
	}
	if err := resumed.Run(total - k); err != nil {
		t.Fatal(err)
	}

	refEvents, resEvents := ref.Events(), resumed.Events()
	if len(refEvents) != len(resEvents) {
		t.Fatalf("event count diverged: uninterrupted %d, resumed %d", len(refEvents), len(resEvents))
	}
	if len(refEvents) == eventsAtPause {
		t.Fatal("no adaptation events after the pause point; tail comparison is vacuous")
	}
	for i := eventsAtPause; i < len(refEvents); i++ {
		a, b := refEvents[i], resEvents[i]
		if a.Step != b.Step {
			t.Fatalf("event %d at step %d (uninterrupted) vs %d (resumed)", i, a.Step, b.Step)
		}
		if !stepMetricsEqual(a.Metrics, b.Metrics) {
			t.Fatalf("event %d StepMetrics diverged:\nuninterrupted %+v\nresumed       %+v", i, a.Metrics, b.Metrics)
		}
		if a.ExecutedRedistTime != b.ExecutedRedistTime {
			t.Fatalf("event %d executed redist time %g vs %g", i, a.ExecutedRedistTime, b.ExecutedRedistTime)
		}
	}

	// Tracker StepMetrics tails must agree too (the tracker was restored
	// through Tracker.SaveState/RestoreTracker inside the pipeline
	// checkpoint).
	refSteps, resSteps := ref.Tracker().Steps(), resumed.Tracker().Steps()
	if len(refSteps) != len(resSteps) {
		t.Fatalf("tracker step count diverged: %d vs %d", len(refSteps), len(resSteps))
	}
	for i := eventsAtPause; i < len(refSteps); i++ {
		if !stepMetricsEqual(refSteps[i], resSteps[i]) {
			t.Fatalf("tracker step %d diverged:\nuninterrupted %+v\nresumed       %+v", i, refSteps[i], resSteps[i])
		}
	}

	// Final nest sets must be identical.
	a, b := ref.ActiveSet(), resumed.ActiveSet()
	if len(a) != len(b) {
		t.Fatalf("final nest sets differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("final nest %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// stepMetricsEqual compares two StepMetrics including the CandidateTotals
// map (which makes StepMetrics itself non-comparable with ==).
func stepMetricsEqual(a, b StepMetrics) bool {
	if a.Used != b.Used || a.RedistTime != b.RedistTime || a.ExecTime != b.ExecTime ||
		a.PredictedRedistTime != b.PredictedRedistTime || a.PredictedExecTime != b.PredictedExecTime ||
		a.Redist != b.Redist || a.DynamicCorrect != b.DynamicCorrect ||
		len(a.CandidateTotals) != len(b.CandidateTotals) {
		return false
	}
	for k, v := range a.CandidateTotals {
		if b.CandidateTotals[k] != v {
			return false
		}
	}
	return true
}

func TestPipelineCheckpointRoundTripSerial(t *testing.T) {
	runRoundTrip(t, false)
}

func TestPipelineCheckpointRoundTripDistributed(t *testing.T) {
	runRoundTrip(t, true)
}

func TestRestorePipelineRejectsCorruptState(t *testing.T) {
	g := geom.NewGrid(8, 6)
	net, model, oracle := testEnv(t, g)
	if _, err := RestorePipeline(bytes.NewReader([]byte("not a checkpoint")), net, model, oracle); err == nil {
		t.Fatal("corrupt pipeline state accepted")
	}
}

// validCheckpoint runs a small pipeline a few steps and returns its
// enveloped checkpoint bytes.
func validCheckpoint(t *testing.T) []byte {
	t.Helper()
	p := checkpointPipeline(t, geom.NewGrid(8, 6), Diffusion, false)
	if err := p.Run(20); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRestorePipelineRejectsTornAndCorruptEnvelopes: the checkpoint
// envelope must catch a torn file (incomplete payload), a flipped bit
// (checksum), and a foreign file (magic) with clear errors instead of
// partially gob-decoding garbage.
func TestRestorePipelineRejectsTornAndCorruptEnvelopes(t *testing.T) {
	g := geom.NewGrid(8, 6)
	net, model, oracle := testEnv(t, g)
	ckpt := validCheckpoint(t)

	// Sanity: the intact envelope restores.
	if _, err := RestorePipeline(bytes.NewReader(ckpt), net, model, oracle); err != nil {
		t.Fatalf("intact checkpoint rejected: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"torn payload", func(b []byte) []byte { return b[:len(b)*2/3] }, "torn"},
		{"torn header", func(b []byte) []byte { return b[:10] }, "truncated"},
		{"flipped payload bit", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		}, "checksum mismatch"},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}, "bad magic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RestorePipeline(bytes.NewReader(tc.mutate(ckpt)), net, model, oracle)
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
			}
		})
	}
}

// TestSaveStateFileAtomicRoundTrip: the file-based checkpoint writes
// atomically (no temp debris), restores identically, and a torn on-disk
// file is rejected.
func TestSaveStateFileAtomicRoundTrip(t *testing.T) {
	g := geom.NewGrid(8, 6)
	net, model, oracle := testEnv(t, g)
	p := checkpointPipeline(t, g, Diffusion, false)
	if err := p.Run(20); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "pipe.ckpt")
	if err := p.SaveStateFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "pipe.ckpt" {
		t.Fatalf("checkpoint dir contents %v, want only pipe.ckpt", entries)
	}
	restored, err := RestorePipelineFile(path, net, model, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if restored.StepCount() != p.StepCount() {
		t.Fatalf("restored at step %d, want %d", restored.StepCount(), p.StepCount())
	}

	// Overwriting keeps the old checkpoint readable until the rename: a
	// second save over the same path must still leave exactly one file.
	if err := p.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := p.SaveStateFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err = RestorePipelineFile(path, net, model, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if restored.StepCount() != p.StepCount() {
		t.Fatalf("overwritten checkpoint at step %d, want %d", restored.StepCount(), p.StepCount())
	}

	// A torn on-disk file (e.g. copied off a dying node) is rejected.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.ckpt")
	if err := os.WriteFile(torn, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RestorePipelineFile(torn, net, model, oracle); err == nil {
		t.Fatal("torn on-disk checkpoint accepted")
	}
}

func TestRestorePipelineProcMismatchTyped(t *testing.T) {
	// A checkpoint taken on a larger processor grid than the restore-time
	// network must fail with the typed ErrProcMismatch, so resize-capable
	// callers can catch it with errors.Is and redistribute instead.
	g := geom.NewGrid(8, 6)
	p := checkpointPipeline(t, g, Diffusion, true)
	if err := p.Run(30); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	net, model, oracle := testEnv(t, geom.NewGrid(2, 2))
	_, err := RestorePipeline(bytes.NewReader(buf.Bytes()), net, model, oracle)
	if err == nil {
		t.Fatal("restore onto a 4-rank network accepted a 48-rank checkpoint")
	}
	if !errors.Is(err, ErrProcMismatch) {
		t.Fatalf("error %v does not match ErrProcMismatch", err)
	}
}
