package core

import (
	"testing"

	"nestdiff/internal/geom"
	"nestdiff/internal/pda"
	"nestdiff/internal/scenario"
	"nestdiff/internal/wrfsim"
)

// monsoonPipeline builds a small end-to-end pipeline with scripted storms.
func monsoonPipeline(t *testing.T, strategy Strategy) (*Pipeline, *wrfsim.Model) {
	t.Helper()
	wcfg := wrfsim.DefaultConfig()
	wcfg.NX, wcfg.NY = 96, 72
	wcfg.SpawnRate = 0
	m, err := wrfsim.NewModel(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []wrfsim.Cell{
		{X: 20, Y: 18, Radius: 5, Peak: 2.5, Life: 3 * 3600},
		{X: 70, Y: 50, Radius: 4, Peak: 2.0, Life: 5 * 3600},
	} {
		if err := m.InjectCell(c); err != nil {
			t.Fatal(err)
		}
	}

	tr := newTestTracker(t, geom.NewGrid(16, 16), strategy)
	pcfg := PipelineConfig{
		WRFGrid:       geom.NewGrid(8, 6),
		AnalysisRanks: 6,
		Interval:      5,
		PDA:           pda.DefaultOptions(),
		MaxNests:      6,
	}
	p, err := NewPipeline(m, tr, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, m
}

func TestNewPipelineValidation(t *testing.T) {
	m, err := wrfsim.NewModel(wrfsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := newTestTracker(t, geom.NewGrid(16, 16), Diffusion)
	bad := DefaultPipelineConfig()
	bad.Interval = 0
	if _, err := NewPipeline(m, tr, bad); err == nil {
		t.Error("zero interval accepted")
	}
	bad = DefaultPipelineConfig()
	bad.AnalysisRanks = bad.WRFGrid.Size() + 1
	if _, err := NewPipeline(m, tr, bad); err == nil {
		t.Error("too many analysis ranks accepted")
	}
	if _, err := NewPipeline(nil, tr, DefaultPipelineConfig()); err == nil {
		t.Error("nil model accepted")
	}
}

func TestPipelineDetectsAndSpawnsNests(t *testing.T) {
	p, _ := monsoonPipeline(t, Diffusion)
	// One simulated hour: storms mature, PDA fires every 5 steps.
	if err := p.Run(40); err != nil {
		t.Fatal(err)
	}
	events := p.Events()
	if len(events) != 8 {
		t.Fatalf("adaptation events = %d, want 8", len(events))
	}
	if len(p.Nests()) == 0 {
		t.Fatal("no nests spawned for two mature storms")
	}
	if len(p.Nests()) > 6 {
		t.Fatalf("MaxNests cap violated: %d nests", len(p.Nests()))
	}
	// The live nest set, the tracker allocation and the nest objects must
	// agree.
	set := p.ActiveSet()
	if len(set) != len(p.Nests()) {
		t.Fatalf("active set has %d nests, %d simulations live", len(set), len(p.Nests()))
	}
	allocRects := p.tracker.Allocation().Rects
	for _, spec := range set {
		nest, ok := p.Nests()[spec.ID]
		if !ok {
			t.Fatalf("nest %d has no simulation", spec.ID)
		}
		if nest.Region != spec.Region {
			t.Fatalf("nest %d region mismatch: sim %v, set %v", spec.ID, nest.Region, spec.Region)
		}
		if _, ok := allocRects[spec.ID]; !ok {
			t.Fatalf("nest %d has no processor allocation", spec.ID)
		}
	}
	if err := p.tracker.Allocation().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineRetainsNestIdentityAcrossSteps(t *testing.T) {
	p, _ := monsoonPipeline(t, Diffusion)
	if err := p.Run(25); err != nil {
		t.Fatal(err)
	}
	before := p.ActiveSet().IDs()
	if len(before) == 0 {
		t.Skip("storms not yet detected at this horizon")
	}
	if err := p.Run(10); err != nil {
		t.Fatal(err)
	}
	after := p.ActiveSet()
	retained := 0
	for _, id := range before {
		if _, ok := after.ByID(id); ok {
			retained++
		}
	}
	if retained == 0 {
		t.Fatal("no nest identity retained across adaptation points for persistent storms")
	}
	// Later events should show retained nests in their diffs.
	last := p.Events()[len(p.Events())-1]
	if len(last.Set) > 0 && len(last.Diff.Retained) == 0 && len(last.Diff.Added) == len(last.Set) {
		t.Fatal("diff treats persistent storms as all-new nests")
	}
}

func TestPipelineNestsDisappearWithStorms(t *testing.T) {
	// With short-lived storms and long runs, nests must eventually be
	// deleted when the clouds dissipate.
	wcfg := wrfsim.DefaultConfig()
	wcfg.NX, wcfg.NY = 96, 72
	wcfg.SpawnRate = 0
	m, err := wrfsim.NewModel(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InjectCell(wrfsim.Cell{X: 40, Y: 30, Radius: 5, Peak: 2.5, Life: 2400}); err != nil {
		t.Fatal(err)
	}
	tr := newTestTracker(t, geom.NewGrid(16, 16), Diffusion)
	p, err := NewPipeline(m, tr, PipelineConfig{
		WRFGrid:       geom.NewGrid(8, 6),
		AnalysisRanks: 4,
		Interval:      5,
		PDA:           pda.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(30); err != nil {
		t.Fatal(err)
	}
	sawNest := len(p.Nests()) > 0      // storm active around one simulated hour
	if err := p.Run(150); err != nil { // five more hours: full decay
		t.Fatal(err)
	}
	if !sawNest {
		// The storm must at least have been detected at some point.
		for _, e := range p.Events() {
			if len(e.Set) > 0 {
				sawNest = true
				break
			}
		}
	}
	if !sawNest {
		t.Fatal("storm never detected")
	}
	if len(p.Nests()) != 0 {
		t.Fatalf("%d nests still alive long after the storm dissipated", len(p.Nests()))
	}
}

func TestPipelineEventMetricsFlow(t *testing.T) {
	// Run long enough for the shorter-lived storm's cloud to fully decay
	// (cell dies at 90 steps, then a few decay e-foldings): its nest
	// deletion forces a reallocation that redistributes the surviving
	// nest.
	p, _ := monsoonPipeline(t, Dynamic)
	if err := p.Run(320); err != nil {
		t.Fatal(err)
	}
	var redistSeen bool
	for _, e := range p.Events() {
		if len(e.Diff.Retained) > 0 && e.Metrics.RedistTime > 0 {
			redistSeen = true
		}
	}
	if !redistSeen {
		t.Fatal("no adaptation event recorded redistribution for retained nests")
	}
}

func TestMatchROIsGreedyBestOverlap(t *testing.T) {
	p, _ := monsoonPipeline(t, Diffusion)
	p.set = scenario.Set{
		{ID: 3, Region: geom.NewRect(0, 0, 20, 20)},
		{ID: 5, Region: geom.NewRect(40, 40, 20, 20)},
	}
	p.nextID = 6
	rects := []geom.Rect{
		geom.NewRect(2, 2, 20, 20),   // overlaps nest 3 strongly
		geom.NewRect(41, 41, 18, 18), // overlaps nest 5
		geom.NewRect(70, 10, 15, 15), // new
	}
	got := p.matchROIs(rects)
	if len(got) != 3 {
		t.Fatalf("matched %d nests", len(got))
	}
	if got[0].ID != 3 || got[1].ID != 5 {
		t.Fatalf("identities not retained: %v", got.IDs())
	}
	if got[2].ID != 6 {
		t.Fatalf("new nest ID = %d, want 6", got[2].ID)
	}
	// A second new rect later must get 7.
	got2 := p.matchROIs([]geom.Rect{geom.NewRect(0, 50, 10, 10)})
	if got2[0].ID != 7 {
		t.Fatalf("next ID = %d, want 7", got2[0].ID)
	}
}

func TestMatchROIsOneRectPerNest(t *testing.T) {
	p, _ := monsoonPipeline(t, Diffusion)
	p.set = scenario.Set{{ID: 2, Region: geom.NewRect(0, 0, 30, 30)}}
	p.nextID = 3
	// Two rects both overlap nest 2: the larger overlap keeps the ID (and
	// the frozen region); the smaller one, overlapping the retained
	// region, is dropped — WRF sibling domains must be disjoint.
	rects := []geom.Rect{
		geom.NewRect(20, 20, 20, 20), // small overlap (10x10)
		geom.NewRect(0, 0, 25, 25),   // large overlap
	}
	got := p.matchROIs(rects)
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("match result = %v, want only retained nest 2", got.IDs())
	}
	if got[0].Region != geom.NewRect(0, 0, 30, 30) {
		t.Fatalf("retained nest region changed: %v", got[0].Region)
	}
}

func TestMatchROIsKeepsSiblingsDisjoint(t *testing.T) {
	p, _ := monsoonPipeline(t, Diffusion)
	p.set = scenario.Set{{ID: 1, Region: geom.NewRect(0, 0, 20, 20)}}
	p.nextID = 2
	rects := []geom.Rect{
		geom.NewRect(5, 5, 20, 20),   // retained as nest 1
		geom.NewRect(15, 15, 20, 20), // overlaps nest 1's frozen region: dropped
		geom.NewRect(50, 50, 20, 20), // disjoint: new nest
	}
	got := p.matchROIs(rects)
	for i := range got {
		for j := i + 1; j < len(got); j++ {
			if got[i].Region.Overlaps(got[j].Region) {
				t.Fatalf("sibling nests overlap: %v and %v", got[i], got[j])
			}
		}
	}
	if len(got) != 2 {
		t.Fatalf("got %d nests, want 2 (overlapping new ROI dropped)", len(got))
	}
}

func TestDistributedPipelineEndToEnd(t *testing.T) {
	// The paper's full runtime in distributed mode: every nest lives
	// block-distributed over its allocated sub-rectangle; every
	// reallocation executes a real Alltoallv.
	wcfg := wrfsim.DefaultConfig()
	wcfg.NX, wcfg.NY = 96, 72
	wcfg.SpawnRate = 0
	m, err := wrfsim.NewModel(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []wrfsim.Cell{
		{X: 20, Y: 18, Radius: 5, Peak: 2.5, Life: 2 * 3600},
		{X: 70, Y: 50, Radius: 4, Peak: 2.0, Life: 6 * 3600},
	} {
		if err := m.InjectCell(c); err != nil {
			t.Fatal(err)
		}
	}
	tr := newTestTracker(t, geom.NewGrid(8, 6), Diffusion)
	p, err := NewPipeline(m, tr, PipelineConfig{
		WRFGrid:       geom.NewGrid(8, 6),
		AnalysisRanks: 6,
		Interval:      5,
		PDA:           pda.DefaultOptions(),
		MaxNests:      4,
		Distributed:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Run past the first storm's decay so a deletion forces reallocation
	// of the surviving nest.
	if err := p.Run(260); err != nil {
		t.Fatal(err)
	}
	if len(p.Nests()) != 0 {
		t.Fatal("distributed pipeline spawned serial nests")
	}
	dn := p.DistributedNests()
	if len(dn) == 0 {
		t.Fatal("no distributed nests live")
	}
	// Every live nest sits inside its allocated sub-rectangle (clamped so
	// blocks stay above the halo width).
	rects := tr.Allocation().Rects
	for id, nest := range dn {
		if !rects[id].ContainsRect(nest.Procs()) {
			t.Fatalf("nest %d on %v, allocated %v", id, nest.Procs(), rects[id])
		}
	}
	// At least one adaptation event executed a real exchange.
	executed := false
	for _, e := range p.Events() {
		if e.ExecutedRedistTime > 0 {
			executed = true
			if e.Metrics.RedistTime <= 0 {
				t.Fatal("executed exchange without analytical counterpart")
			}
		}
	}
	if !executed {
		t.Fatal("no adaptation event executed an Alltoallv")
	}
	// The distributed nests carry real state: cloud water is present.
	for id, nest := range dn {
		if nest.Gather().Max() <= 0 {
			t.Fatalf("nest %d holds no cloud state", id)
		}
	}
}
