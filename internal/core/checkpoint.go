package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"nestdiff/internal/alloc"
	"nestdiff/internal/geom"
	"nestdiff/internal/htree"
	"nestdiff/internal/perfmodel"
	"nestdiff/internal/scenario"
	"nestdiff/internal/topology"
)

// trackerState is the serializable part of a Tracker: the allocation
// (rectangles *and* the tree, which is the diffusion strategy's memory),
// the active nest set, options, and the recorded metrics. The machine
// model and performance models are reconstructed by the caller at restore
// time — they are configuration, not state.
type trackerState struct {
	Version  int
	GridPx   int
	GridPy   int
	Strategy Strategy
	Opts     Options
	Rects    map[int]geom.Rect
	Tree     []htree.FlatNode
	HasAlloc bool
	Specs    scenario.Set
	Steps    []StepMetrics
}

const trackerStateVersion = 1

// state captures the tracker's serializable state (shared by the gob v1
// envelope and the inline v2 checkpoint metadata).
func (t *Tracker) state() trackerState {
	st := trackerState{
		Version:  trackerStateVersion,
		GridPx:   t.grid.Px,
		GridPy:   t.grid.Py,
		Strategy: t.strategy,
		Opts:     t.opts,
		Specs:    append(scenario.Set(nil), t.specs...),
		Steps:    append([]StepMetrics(nil), t.steps...),
	}
	if t.cur != nil {
		st.HasAlloc = true
		st.Rects = make(map[int]geom.Rect, len(t.cur.Rects))
		for id, r := range t.cur.Rects {
			st.Rects[id] = r
		}
		if t.cur.Tree != nil {
			st.Tree = t.cur.Tree.Flatten()
		}
	}
	return st
}

// SaveState writes the tracker's state as a checkpoint.
func (t *Tracker) SaveState(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(t.state()); err != nil {
		return fmt.Errorf("core: save tracker state: %w", err)
	}
	return nil
}

// RestoreTracker rebuilds a tracker from a checkpoint written by
// SaveState, attaching the given machine and performance models. The
// restored tracker continues exactly where the saved one stopped:
// subsequent Apply calls diffuse from the restored tree.
func RestoreTracker(r io.Reader, net topology.Network, model *perfmodel.ExecModel, oracle *perfmodel.Oracle) (*Tracker, error) {
	var st trackerState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: load tracker state: %w", err)
	}
	return restoreTrackerState(st, net, model, oracle)
}

// restoreTrackerState rebuilds a tracker from an already-decoded state
// (shared by the gob v1 path and the inline v2 checkpoint metadata).
func restoreTrackerState(st trackerState, net topology.Network, model *perfmodel.ExecModel, oracle *perfmodel.Oracle) (*Tracker, error) {
	if st.Version != trackerStateVersion {
		return nil, fmt.Errorf("core: unsupported tracker state version %d", st.Version)
	}
	if st.GridPx <= 0 || st.GridPy <= 0 {
		return nil, fmt.Errorf("core: corrupt grid %dx%d in tracker state", st.GridPx, st.GridPy)
	}
	g := geom.NewGrid(st.GridPx, st.GridPy)
	if net != nil && net.Size() < g.Size() {
		return nil, fmt.Errorf("%w: checkpoint grid %dx%d needs %d ranks, network has %d",
			ErrProcMismatch, st.GridPx, st.GridPy, g.Size(), net.Size())
	}
	t, err := NewTracker(g, net, model, oracle, st.Strategy, st.Opts)
	if err != nil {
		return nil, err
	}
	if st.HasAlloc {
		tree, err := htree.Unflatten(st.Tree)
		if err != nil {
			return nil, fmt.Errorf("core: restore allocation tree: %w", err)
		}
		a := &alloc.Allocation{Grid: g, Rects: st.Rects, Tree: tree}
		if a.Rects == nil {
			a.Rects = map[int]geom.Rect{}
		}
		if len(a.Rects) > 0 {
			if err := a.Validate(); err != nil {
				return nil, fmt.Errorf("core: restored allocation invalid: %w", err)
			}
		}
		t.cur = a
	}
	t.specs = st.Specs
	t.steps = st.Steps
	return t, nil
}
