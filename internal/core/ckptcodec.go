package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"slices"

	"nestdiff/internal/geom"
)

// Checkpoint envelope v2: a pipeline checkpoint is a *chain* of blobs —
// one full base followed by zero or more deltas — each framed by a fixed
// header:
//
//	magic "NDCP" (4) | envelope version = 2 (1) | payload length (8, LE) |
//	CRC-32C of payload (4) | flags (1) | seq (4, LE) | link (4, LE)
//
// flags bit 0 marks a delta blob. seq is the blob's position in its chain
// (0 for the base, k for the k-th delta) and link is the payload CRC of the
// predecessor blob (0 for the base), so a replay can prove every delta was
// derived from exactly the blob before it — a delta appended after a
// concurrent rewrite, or an out-of-order copy, fails the link check and the
// restore falls back to the longest valid prefix.
//
// The payload is a sequence of self-checked records:
//
//	kind (1) | payload length (4, LE) | payload | CRC-32C of kind+length+payload (4)
//
// Field payloads are raw little-endian float64 samples (full records) or a
// word-level zero-run-length encoding of the XOR against the previous
// checkpoint's copy of the same field (delta records) — bit-exact by
// construction. Delta blobs may instead carry a single replay directive
// (recReplay): a target step plus per-field CRCs, with no field payload at
// all. Advected fields change every mantissa every step, so an XOR diff
// costs nearly as much as a full record; the pipeline is deterministic, so
// re-executing the delta's steps from the base reproduces the fields
// bit-identically, and the CRCs prove it did.
const (
	ckptEnvelopeV2  = 2
	ckptV2HeaderLen = 4 + 1 + 8 + 4 + 1 + 4 + 4

	ckptFlagDelta = 1 << 0
)

// Record kinds of the v2 payload.
const (
	recMeta       = 1 // gob-encoded ckptMetaV2 (one gob stream per chain)
	recModelRaw   = 2 // parent model field: nx, ny, raw float64 samples
	recModelXOR   = 3 // parent model field: XOR+RLE against the previous checkpoint
	recNestFull   = 4 // one nest, complete: geometry + raw samples
	recNestXOR    = 5 // one nest, unchanged shape: steps + XOR+RLE samples
	recNestRemove = 6 // nest deleted since the previous checkpoint
	recReplay     = 7 // replay directive: target step, model CRC, per-nest CRCs
)

const recHeaderLen = 1 + 4 // kind + payload length

// ErrDeltaChainBroken reports a v2 checkpoint whose full base blob is
// intact but whose delta tail is torn, corrupt or discontinuous. The
// checkpoint is still restorable: RestorePipeline replays the longest
// valid prefix and the run re-executes the lost steps. Callers test for it
// with errors.Is.
var ErrDeltaChainBroken = errors.New("core: checkpoint delta chain broken")

// blobHeader is the parsed fixed header of one v2 blob.
type blobHeader struct {
	payloadLen uint64
	crc        uint32
	delta      bool
	seq        uint32
	link       uint32
}

// putBlobHeader writes the v2 header into b (len >= ckptV2HeaderLen).
func putBlobHeader(b []byte, h blobHeader) {
	copy(b[:4], ckptMagic[:])
	b[4] = ckptEnvelopeV2
	binary.LittleEndian.PutUint64(b[5:13], h.payloadLen)
	binary.LittleEndian.PutUint32(b[13:17], h.crc)
	var flags byte
	if h.delta {
		flags |= ckptFlagDelta
	}
	b[17] = flags
	binary.LittleEndian.PutUint32(b[18:22], h.seq)
	binary.LittleEndian.PutUint32(b[22:26], h.link)
}

// parseBlob validates one v2 blob at the front of data: header shape,
// payload length against the bytes actually present, and the payload CRC.
// It returns the parsed header, the payload, and the blob's total size.
func parseBlob(data []byte) (blobHeader, []byte, int, error) {
	var h blobHeader
	if len(data) < ckptV2HeaderLen {
		return h, nil, 0, fmt.Errorf("core: load pipeline state: truncated checkpoint header (%d bytes)", len(data))
	}
	if string(data[:4]) != string(ckptMagic[:]) {
		return h, nil, 0, fmt.Errorf("core: load pipeline state: bad magic %q (not a nestdiff pipeline checkpoint)", data[:4])
	}
	if data[4] != ckptEnvelopeV2 {
		return h, nil, 0, fmt.Errorf("core: load pipeline state: unsupported checkpoint envelope version %d", data[4])
	}
	h.payloadLen = binary.LittleEndian.Uint64(data[5:13])
	if h.payloadLen == 0 || h.payloadLen > ckptMaxPayload {
		return h, nil, 0, fmt.Errorf("core: load pipeline state: implausible payload length %d (corrupt header)", h.payloadLen)
	}
	if uint64(len(data)-ckptV2HeaderLen) < h.payloadLen {
		return h, nil, 0, fmt.Errorf("core: load pipeline state: torn checkpoint (%d payload bytes, header promises %d)",
			len(data)-ckptV2HeaderLen, h.payloadLen)
	}
	h.crc = binary.LittleEndian.Uint32(data[13:17])
	h.delta = data[17]&ckptFlagDelta != 0
	h.seq = binary.LittleEndian.Uint32(data[18:22])
	h.link = binary.LittleEndian.Uint32(data[22:26])
	payload := data[ckptV2HeaderLen : ckptV2HeaderLen+int(h.payloadLen)]
	if crc32.Checksum(payload, ckptCRC) != h.crc {
		return h, nil, 0, fmt.Errorf("core: load pipeline state: checksum mismatch (corrupt checkpoint)")
	}
	return h, payload, ckptV2HeaderLen + int(h.payloadLen), nil
}

// beginRecord appends a record header placeholder for the given kind and
// returns the new buffer plus the offset of the record's start.
func beginRecord(b []byte, kind byte) ([]byte, int) {
	start := len(b)
	b = append(b, kind, 0, 0, 0, 0)
	return b, start
}

// endRecord patches the record's payload length and appends its CRC-32C
// (computed over kind, length and payload).
func endRecord(b []byte, start int) []byte {
	plen := len(b) - start - recHeaderLen
	binary.LittleEndian.PutUint32(b[start+1:start+5], uint32(plen))
	sum := crc32.Checksum(b[start:], ckptCRC)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sum)
	return append(b, crc[:]...)
}

// record is one parsed v2 payload record.
type record struct {
	kind    byte
	payload []byte
}

// splitRecords validates the record framing and per-record CRCs of one
// blob payload, appending the parsed records to recs (reused across
// blobs). The payload must be consumed exactly.
func splitRecords(payload []byte, recs []record) ([]record, error) {
	off := 0
	for off < len(payload) {
		if len(payload)-off < recHeaderLen+4 {
			return nil, fmt.Errorf("core: load pipeline state: truncated record header")
		}
		kind := payload[off]
		plen := int(binary.LittleEndian.Uint32(payload[off+1 : off+5]))
		end := off + recHeaderLen + plen
		if plen < 0 || end+4 > len(payload) {
			return nil, fmt.Errorf("core: load pipeline state: record overruns payload")
		}
		sum := crc32.Checksum(payload[off:end], ckptCRC)
		if sum != binary.LittleEndian.Uint32(payload[end:end+4]) {
			return nil, fmt.Errorf("core: load pipeline state: record checksum mismatch (corrupt checkpoint)")
		}
		recs = append(recs, record{kind: kind, payload: payload[off+recHeaderLen : end]})
		off = end + 4
	}
	return recs, nil
}

// appendU32 appends v little-endian.
func appendU32(b []byte, v uint32) []byte {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], v)
	return append(b, w[:]...)
}

// appendRect appends the rectangle's four corners as little-endian u32
// (regions and processor sub-rectangles are always non-negative).
func appendRect(b []byte, r geom.Rect) []byte {
	b = appendU32(b, uint32(r.X0))
	b = appendU32(b, uint32(r.Y0))
	b = appendU32(b, uint32(r.X1))
	return appendU32(b, uint32(r.Y1))
}

// decodeRect reads a rectangle written by appendRect from b (len >= 16).
func decodeRect(b []byte) geom.Rect {
	return geom.Rect{
		X0: int(binary.LittleEndian.Uint32(b[0:4])),
		Y0: int(binary.LittleEndian.Uint32(b[4:8])),
		X1: int(binary.LittleEndian.Uint32(b[8:12])),
		Y1: int(binary.LittleEndian.Uint32(b[12:16])),
	}
}

// appendRawField appends the samples as little-endian float64 words,
// growing the buffer once up front so the hot loop is store-only.
func appendRawField(b []byte, data []float64) []byte {
	off := len(b)
	b = slices.Grow(b, 8*len(data))[:off+8*len(data)]
	for _, v := range data {
		binary.LittleEndian.PutUint64(b[off:off+8], math.Float64bits(v))
		off += 8
	}
	return b
}

// fieldCRC is the CRC-32C of a field's raw little-endian encoding — the
// same bytes appendRawField would emit — staged through the caller's
// chunk (len >= 8) so no full byte copy is materialized. The chunk is a
// parameter because crc32.Update's table dispatch leaks its buffer, which
// would force a stack chunk to the heap on every call.
func fieldCRC(data []float64, chunk []byte) uint32 {
	var sum uint32
	for off := 0; off < len(data); {
		n := min(len(data)-off, len(chunk)/8)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(chunk[8*i:], math.Float64bits(data[off+i]))
		}
		sum = crc32.Update(sum, ckptCRC, chunk[:8*n])
		off += n
	}
	return sum
}

// decodeRawField reads little-endian float64 words into out (len(b) must
// be exactly 8*len(out); callers check).
func decodeRawField(out []float64, b []byte) {
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8 : i*8+8]))
	}
}

// appendUvarint appends v in unsigned varint encoding.
func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// appendXORRLE appends a zero-run-length encoding of cur XOR prev, word by
// word: alternating (zero-run length, literal count, literal XOR words)
// groups in uvarint framing, covering every word exactly once. Most of a
// weather field is bit-identical between checkpoints (exact zeros outside
// the storms, untouched cells elsewhere), so the XOR stream is dominated
// by zero words and the encoding collapses to a few length counters.
// Replaying the XOR is bit-exact: no float arithmetic is involved.
// cur and prev must have equal length.
func appendXORRLE(b []byte, cur, prev []float64) []byte {
	n := len(cur)
	i := 0
	var w [8]byte
	for i < n {
		z := i
		for z < n && math.Float64bits(cur[z]) == math.Float64bits(prev[z]) {
			z++
		}
		zeros := z - i
		i = z
		// Extend the literal run past short (< 4-word) zero gaps: a gap
		// that small costs more to re-frame than to emit as literals.
		l := i
		for l < n {
			if math.Float64bits(cur[l]) != math.Float64bits(prev[l]) {
				l++
				continue
			}
			e := l
			for e < n && e-l < 4 && math.Float64bits(cur[e]) == math.Float64bits(prev[e]) {
				e++
			}
			if e-l >= 4 || e == n {
				break
			}
			l = e
		}
		b = appendUvarint(b, uint64(zeros))
		b = appendUvarint(b, uint64(l-i))
		for ; i < l; i++ {
			binary.LittleEndian.PutUint64(w[:], math.Float64bits(cur[i])^math.Float64bits(prev[i]))
			b = append(b, w[:]...)
		}
	}
	return b
}

// applyXORRLE XORs an appendXORRLE stream into dst, which must hold the
// previous checkpoint's copy of the field; afterwards it holds the new
// one, bit-exactly.
func applyXORRLE(dst []float64, b []byte) error {
	i := 0
	off := 0
	for off < len(b) {
		zeros, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return fmt.Errorf("core: load pipeline state: corrupt field delta (bad run length)")
		}
		off += n
		lits, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return fmt.Errorf("core: load pipeline state: corrupt field delta (bad literal count)")
		}
		off += n
		if zeros > uint64(len(dst)-i) || lits > uint64(len(dst)-i)-zeros {
			return fmt.Errorf("core: load pipeline state: field delta overruns the field")
		}
		i += int(zeros)
		if off+int(lits)*8 > len(b) {
			return fmt.Errorf("core: load pipeline state: truncated field delta literals")
		}
		for k := 0; k < int(lits); k++ {
			x := binary.LittleEndian.Uint64(b[off : off+8])
			dst[i] = math.Float64frombits(math.Float64bits(dst[i]) ^ x)
			i++
			off += 8
		}
	}
	if i != len(dst) {
		return fmt.Errorf("core: load pipeline state: field delta covers %d of %d samples", i, len(dst))
	}
	return nil
}

// scanXORRLE validates an appendXORRLE stream against a field of n samples
// without applying it: framing, bounds, and exact coverage. The restore
// path scans every record of a blob before mutating any accumulated state,
// so a blob rejected halfway cannot leave the replay half-applied.
func scanXORRLE(n int, b []byte) error {
	i := 0
	off := 0
	for off < len(b) {
		zeros, k := binary.Uvarint(b[off:])
		if k <= 0 {
			return fmt.Errorf("core: load pipeline state: corrupt field delta (bad run length)")
		}
		off += k
		lits, k := binary.Uvarint(b[off:])
		if k <= 0 {
			return fmt.Errorf("core: load pipeline state: corrupt field delta (bad literal count)")
		}
		off += k
		if zeros > uint64(n-i) || lits > uint64(n-i)-zeros {
			return fmt.Errorf("core: load pipeline state: field delta overruns the field")
		}
		i += int(zeros) + int(lits)
		off += int(lits) * 8
		if off > len(b) {
			return fmt.Errorf("core: load pipeline state: truncated field delta literals")
		}
	}
	if i != n {
		return fmt.Errorf("core: load pipeline state: field delta covers %d of %d samples", i, n)
	}
	return nil
}

// byteFeeder is the reader behind the chain-scoped gob decoder: the replay
// loop points data at each blob's metadata payload in turn. It implements
// io.ByteReader so gob does not wrap it in a bufio.Reader, which could
// read ahead past the current record.
type byteFeeder struct{ data []byte }

func (f *byteFeeder) Read(p []byte) (int, error) {
	if len(f.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, f.data)
	f.data = f.data[n:]
	return n, nil
}

func (f *byteFeeder) ReadByte() (byte, error) {
	if len(f.data) == 0 {
		return 0, io.EOF
	}
	b := f.data[0]
	f.data = f.data[1:]
	return b, nil
}
