package core

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"

	"nestdiff/internal/geom"
	"nestdiff/internal/perfmodel"
	"nestdiff/internal/scenario"
	"nestdiff/internal/topology"
)

func testEnv(t testing.TB, g geom.Grid) (topology.Network, *perfmodel.ExecModel, *perfmodel.Oracle) {
	t.Helper()
	net, err := topology.NewTorus3D(g, topology.TorusDimsFor(g.Size()), topology.DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	oracle := perfmodel.DefaultOracle()
	model, err := perfmodel.Profile(oracle, perfmodel.DefaultSampleDomains(), perfmodel.DefaultProcSizes())
	if err != nil {
		t.Fatal(err)
	}
	return net, model, oracle
}

func newTestTracker(t testing.TB, g geom.Grid, s Strategy) *Tracker {
	t.Helper()
	net, model, oracle := testEnv(t, g)
	tr, err := NewTracker(g, net, model, oracle, s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func specSet(regions ...geom.Rect) scenario.Set {
	s := make(scenario.Set, len(regions))
	for i, r := range regions {
		s[i] = scenario.NestSpec{ID: i + 1, Region: r}
	}
	return s
}

func TestNewTrackerValidation(t *testing.T) {
	g := geom.NewGrid(16, 16)
	net, model, oracle := testEnv(t, g)
	if _, err := NewTracker(g, nil, model, oracle, Scratch, DefaultOptions()); err == nil {
		t.Error("nil network accepted")
	}
	big := geom.NewGrid(32, 32)
	if _, err := NewTracker(big, net, model, oracle, Scratch, DefaultOptions()); err == nil {
		t.Error("undersized network accepted")
	}
	bad := DefaultOptions()
	bad.ElemBytes = 0
	if _, err := NewTracker(g, net, model, oracle, Scratch, bad); err == nil {
		t.Error("zero ElemBytes accepted")
	}
	bad = DefaultOptions()
	bad.Ratio = 0
	if _, err := NewTracker(g, net, model, oracle, Scratch, bad); err == nil {
		t.Error("zero ratio accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if Scratch.String() != "scratch" || Diffusion.String() != "diffusion" || Dynamic.String() != "dynamic" {
		t.Fatal("Strategy.String broken")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy renders empty")
	}
}

func TestTrackerFirstApplyAllocatesWithoutRedistribution(t *testing.T) {
	g := geom.NewGrid(16, 16)
	tr := newTestTracker(t, g, Diffusion)
	set := specSet(geom.NewRect(10, 10, 60, 60), geom.NewRect(200, 100, 80, 80))
	sm, err := tr.Apply(set)
	if err != nil {
		t.Fatal(err)
	}
	if sm.RedistTime != 0 {
		t.Fatalf("first apply has redistribution time %g", sm.RedistTime)
	}
	if sm.ExecTime <= 0 || sm.PredictedExecTime <= 0 {
		t.Fatal("execution times missing")
	}
	a := tr.Allocation()
	if a == nil || len(a.Rects) != 2 {
		t.Fatalf("allocation = %v", a)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerRetainedNestRedistributes(t *testing.T) {
	g := geom.NewGrid(16, 16)
	tr := newTestTracker(t, g, Diffusion)
	if _, err := tr.Apply(specSet(
		geom.NewRect(0, 0, 70, 70),
		geom.NewRect(200, 100, 70, 70),
		geom.NewRect(400, 200, 70, 70),
	)); err != nil {
		t.Fatal(err)
	}
	// Delete nest 3, retain 1 and 2, add nest 4.
	next := scenario.Set{
		{ID: 1, Region: geom.NewRect(5, 5, 70, 70)},
		{ID: 2, Region: geom.NewRect(205, 100, 70, 70)},
		{ID: 4, Region: geom.NewRect(300, 50, 90, 90)},
	}
	sm, err := tr.Apply(next)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Used != Diffusion {
		t.Fatalf("used %v, want diffusion", sm.Used)
	}
	if sm.RedistTime <= 0 {
		t.Fatal("no redistribution time recorded for retained nests")
	}
	if sm.Redist.TotalBytes == 0 {
		t.Fatal("no redistribution metrics recorded")
	}
	if sm.RedistTime < sm.PredictedRedistTime {
		t.Fatalf("actual %g below prediction %g: contention term missing",
			sm.RedistTime, sm.PredictedRedistTime)
	}
	if err := tr.Allocation().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerEmptySetFreesEverything(t *testing.T) {
	g := geom.NewGrid(16, 16)
	tr := newTestTracker(t, g, Diffusion)
	if _, err := tr.Apply(specSet(geom.NewRect(0, 0, 80, 80))); err != nil {
		t.Fatal(err)
	}
	sm, err := tr.Apply(scenario.Set{})
	if err != nil {
		t.Fatal(err)
	}
	if sm.ExecTime != 0 || sm.RedistTime != 0 {
		t.Fatalf("empty set has costs: %+v", sm)
	}
	if len(tr.Allocation().Rects) != 0 {
		t.Fatal("allocation not emptied")
	}
	// And we can start again from empty.
	if _, err := tr.Apply(specSet(geom.NewRect(9, 9, 77, 77))); err != nil {
		t.Fatal(err)
	}
}

func runScenario(t *testing.T, g geom.Grid, s Strategy, sets []scenario.Set) *Tracker {
	t.Helper()
	tr := newTestTracker(t, g, s)
	for i, set := range sets {
		if _, err := tr.Apply(set); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	return tr
}

func syntheticSets(t *testing.T, steps int) []scenario.Set {
	t.Helper()
	cfg := scenario.DefaultSyntheticConfig()
	cfg.Steps = steps
	sets, err := scenario.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sets
}

func TestDiffusionBeatsScratchOnRedistribution(t *testing.T) {
	// The paper's headline: over synthetic churn, diffusion reduces total
	// redistribution time versus scratch (Table IV), at a small execution
	// time premium (§V-D reports ~4%).
	g := geom.NewGrid(32, 32)
	sets := syntheticSets(t, 25)
	trS := runScenario(t, g, Scratch, sets)
	trD := runScenario(t, g, Diffusion, sets)
	execS, redS := trS.Totals()
	execD, redD := trD.Totals()
	if redD >= redS {
		t.Fatalf("diffusion redistribution %g not below scratch %g", redD, redS)
	}
	if execD < execS {
		t.Logf("note: diffusion execution %g below scratch %g (paper expects slight premium)", execD, execS)
	}
	if execD > execS*1.25 {
		t.Fatalf("diffusion execution premium too large: %g vs %g", execD, execS)
	}
	// Hop-bytes advantage (Fig. 10): diffusion must average lower.
	var hbS, hbD float64
	for i := 1; i < len(trS.Steps()); i++ {
		hbS += trS.Steps()[i].Redist.AvgHopBytes
		hbD += trD.Steps()[i].Redist.AvgHopBytes
	}
	if hbD >= hbS {
		t.Fatalf("diffusion avg hop-bytes %g not below scratch %g", hbD, hbS)
	}
}

func TestDynamicPicksAndTracksCorrectness(t *testing.T) {
	g := geom.NewGrid(32, 32)
	sets := syntheticSets(t, 12)
	tr := runScenario(t, g, Dynamic, sets)
	steps := tr.Steps()
	if len(steps) != 13 {
		t.Fatalf("recorded %d steps", len(steps))
	}
	picks := map[Strategy]int{}
	correct, total := 0, 0
	for _, s := range steps[1:] {
		picks[s.Used]++
		if s.CandidateTotals == nil {
			t.Fatal("dynamic step missing candidate totals")
		}
		total++
		if s.DynamicCorrect {
			correct++
		}
	}
	if picks[Scratch]+picks[Diffusion] != total {
		t.Fatalf("picks %v do not cover %d steps", picks, total)
	}
	// §V-F: predictions are imperfect but mostly right (10/12 in the
	// paper). Demand a clear majority.
	if correct*3 < total*2 {
		t.Fatalf("dynamic correct on %d/%d steps — predictor broken", correct, total)
	}
}

func TestDynamicTotalsNeverWorseThanWorstCandidate(t *testing.T) {
	g := geom.NewGrid(32, 32)
	sets := syntheticSets(t, 15)
	trS := runScenario(t, g, Scratch, sets)
	trD := runScenario(t, g, Diffusion, sets)
	trDyn := runScenario(t, g, Dynamic, sets)
	sumOf := func(tr *Tracker) float64 {
		e, r := tr.Totals()
		return e + r
	}
	worst := sumOf(trS)
	if w := sumOf(trD); w > worst {
		worst = w
	}
	// Dynamic follows its own allocation trajectory, so exact dominance
	// per-step is not guaranteed, but over a run it must not exceed the
	// worst pure strategy by more than a small margin.
	if got := sumOf(trDyn); got > worst*1.05 {
		t.Fatalf("dynamic total %g exceeds worst pure strategy %g", got, worst)
	}
}

func TestTrackerStepsAccumulate(t *testing.T) {
	g := geom.NewGrid(16, 16)
	tr := newTestTracker(t, g, Scratch)
	sets := syntheticSets(t, 5)
	for _, s := range sets {
		if _, err := tr.Apply(s); err != nil {
			t.Fatal(err)
		}
	}
	if len(tr.Steps()) != 6 {
		t.Fatalf("steps = %d, want 6", len(tr.Steps()))
	}
	exec, red := tr.Totals()
	if exec <= 0 {
		t.Fatal("no execution time accumulated")
	}
	if red <= 0 {
		t.Fatal("no redistribution time accumulated")
	}
}

func TestWriteCSV(t *testing.T) {
	g := geom.NewGrid(16, 16)
	tr := newTestTracker(t, g, Dynamic)
	for _, set := range syntheticSets(t, 4) {
		if _, err := tr.Apply(set); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 6 { // header + 5 steps
		t.Fatalf("csv rows = %d, want 6", len(records))
	}
	if records[0][0] != "step" || len(records[0]) != 11 {
		t.Fatalf("csv header = %v", records[0])
	}
	for i, rec := range records[1:] {
		if rec[1] != "scratch" && rec[1] != "diffusion" {
			t.Fatalf("row %d strategy = %q", i, rec[1])
		}
		if _, err := strconv.ParseFloat(rec[2], 64); err != nil {
			t.Fatalf("row %d exec not numeric: %v", i, err)
		}
	}
}

func TestTrackerSaveRestoreContinuesIdentically(t *testing.T) {
	g := geom.NewGrid(32, 32)
	sets := syntheticSets(t, 12)

	// Reference: uninterrupted diffusion run.
	ref := newTestTracker(t, g, Diffusion)
	for _, set := range sets {
		if _, err := ref.Apply(set); err != nil {
			t.Fatal(err)
		}
	}

	// Interrupted run: checkpoint after 6 sets, restore, continue.
	tr := newTestTracker(t, g, Diffusion)
	for _, set := range sets[:6] {
		if _, err := tr.Apply(set); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tr.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	net, model, oracle := testEnv(t, g)
	restored, err := RestoreTracker(&buf, net, model, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Steps()) != 6 {
		t.Fatalf("restored steps = %d", len(restored.Steps()))
	}
	for _, set := range sets[6:] {
		if _, err := restored.Apply(set); err != nil {
			t.Fatal(err)
		}
	}
	// The continued run must match the uninterrupted one exactly — the
	// restored tree drives identical diffusion decisions.
	wantRows := ref.Allocation().Table()
	gotRows := restored.Allocation().Table()
	if len(wantRows) != len(gotRows) {
		t.Fatalf("allocation sizes differ: %d vs %d", len(gotRows), len(wantRows))
	}
	for i := range wantRows {
		if wantRows[i] != gotRows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, gotRows[i], wantRows[i])
		}
	}
	we, wr := ref.Totals()
	ge, gr := restored.Totals()
	if we != ge || wr != gr {
		t.Fatalf("totals differ: exec %g vs %g, redist %g vs %g", ge, we, gr, wr)
	}
}

func TestRestoreTrackerRejectsGarbage(t *testing.T) {
	g := geom.NewGrid(8, 8)
	net, model, oracle := testEnv(t, g)
	if _, err := RestoreTracker(bytes.NewReader([]byte("bogus")), net, model, oracle); err == nil {
		t.Fatal("garbage state accepted")
	}
}

func TestSaveRestoreBeforeFirstApply(t *testing.T) {
	g := geom.NewGrid(8, 8)
	tr := newTestTracker(t, g, Scratch)
	var buf bytes.Buffer
	if err := tr.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	net, model, oracle := testEnv(t, g)
	restored, err := RestoreTracker(&buf, net, model, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Allocation() != nil {
		t.Fatal("restored empty tracker has an allocation")
	}
	if _, err := restored.Apply(specSet(geom.NewRect(0, 0, 70, 70))); err != nil {
		t.Fatal(err)
	}
}
