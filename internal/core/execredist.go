package core

import (
	"fmt"
	"sync"

	"nestdiff/internal/field"
	"nestdiff/internal/geom"
	"nestdiff/internal/mpi"
	"nestdiff/internal/redist"
)

// redistScratch recycles per-rank exchange arenas across redistribution
// calls. Every buffer handed out is consumed inside the rank closure
// before the arena returns to the pool, so a pooled arena is never
// referenced by two calls at once.
var redistScratch = sync.Pool{New: func() any { return new(mpi.Scratch) }}

// RedistributeField executes a nest redistribution as the modified WRF
// does (§IV): the nest field starts block-distributed over the old
// processor sub-rectangle, every rank of the process grid participates in
// one MPI_Alltoallv — senders ship the intersections of their old block
// with each receiver's new block, uninvolved ranks contribute zero counts
// — and the field ends block-distributed over the new sub-rectangle. The
// reassembled field and the modelled exchange time are returned.
//
// The world must span exactly the process grid. src must match the
// transfer's nest extents; the data moved is one float64 per grid point
// (use the plan/metrics path for multi-field byte accounting).
func RedistributeField(w *mpi.World, g geom.Grid, tr redist.Transfer, src *field.Field) (*field.Field, float64, error) {
	if w.Size() != g.Size() {
		return nil, 0, fmt.Errorf("core: world of %d ranks for grid of %d", w.Size(), g.Size())
	}
	if src.NX != tr.NX || src.NY != tr.NY {
		return nil, 0, fmt.Errorf("core: source field %dx%d does not match nest %dx%d",
			src.NX, src.NY, tr.NX, tr.NY)
	}
	if tr.Old.Empty() || tr.New.Empty() ||
		!g.Bounds().ContainsRect(tr.Old) || !g.Bounds().ContainsRect(tr.New) {
		return nil, 0, fmt.Errorf("core: invalid sub-rectangles %v -> %v", tr.Old, tr.New)
	}
	oldDist := geom.NewBlockDist(tr.NX, tr.NY, tr.Old)
	newDist := geom.NewBlockDist(tr.NX, tr.NY, tr.New)

	all, err := w.All()
	if err != nil {
		return nil, 0, err
	}
	dst := field.New(tr.NX, tr.NY)
	var elapsed float64
	runErr := w.Run(func(r *mpi.Rank) {
		me := g.Coord(r.ID())
		s := redistScratch.Get().(*mpi.Scratch)
		s.Reset()
		start := r.Clock()

		// Senders fill their rows; everyone else sends all-zero counts.
		// Send and receive rows both come from the rank's scratch arena;
		// Alltoallv copies receive rows out before its final rendezvous, so
		// nothing references the arena once the collective returns.
		send := s.Rows(g.Size())
		if tr.Old.Contains(me) {
			myBlock := oldDist.BlockOf(me)
			newDist.Blocks(func(recv geom.Point, rblk geom.Rect) {
				inter := myBlock.Intersect(rblk)
				if inter.Empty() {
					return
				}
				payload := s.Buf(inter.Area())
				inter.Cells(func(p geom.Point) {
					payload = append(payload, src.At(p.X, p.Y))
				})
				send[g.Rank(recv)] = payload
			})
		}

		recv := all.AlltoallvInto(r, send, s)

		// Receivers reassemble their new block. The geometry is recomputed
		// symmetrically, so payloads carry no headers.
		if tr.New.Contains(me) {
			myBlock := newDist.BlockOf(me)
			for from := 0; from < g.Size(); from++ {
				payload := recv[from]
				if len(payload) == 0 {
					continue
				}
				sender := g.Coord(from)
				if !tr.Old.Contains(sender) {
					panic(fmt.Sprintf("payload from non-sender rank %d", from))
				}
				inter := oldDist.BlockOf(sender).Intersect(myBlock)
				if inter.Area() != len(payload) {
					panic(fmt.Sprintf("payload size %d != intersection %v", len(payload), inter))
				}
				i := 0
				inter.Cells(func(p geom.Point) {
					dst.Set(p.X, p.Y, payload[i])
					i++
				})
			}
		}
		if r.ID() == 0 {
			elapsed = r.Clock() - start
		}
		redistScratch.Put(s)
	})
	if runErr != nil {
		return nil, 0, runErr
	}
	return dst, elapsed, nil
}
