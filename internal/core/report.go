package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the tracker's per-adaptation-point metrics as CSV, one
// row per step, in the column layout the evaluation figures consume
// (Fig. 10/11 series are columns of this table).
func (t *Tracker) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"step", "strategy", "exec_s", "redist_s",
		"pred_exec_s", "pred_redist_s",
		"avg_hop_bytes", "overlap_pct", "remote_bytes", "messages", "max_hops",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("core: write csv header: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
	for i, s := range t.steps {
		row := []string{
			strconv.Itoa(i),
			s.Used.String(),
			f(s.ExecTime), f(s.RedistTime),
			f(s.PredictedExecTime), f(s.PredictedRedistTime),
			f(s.Redist.AvgHopBytes), f(s.Redist.OverlapPercent),
			strconv.Itoa(s.Redist.RemoteBytes),
			strconv.Itoa(s.Redist.Messages),
			strconv.Itoa(s.Redist.MaxHops),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("core: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("core: flush csv: %w", err)
	}
	return nil
}
