package core

import (
	"errors"
	"fmt"
	"slices"

	"nestdiff/internal/geom"
	"nestdiff/internal/mpi"
	"nestdiff/internal/perfmodel"
	"nestdiff/internal/redist"
	"nestdiff/internal/topology"
	"nestdiff/internal/wrfsim"
)

// ErrProcMismatch reports that a checkpoint's processor grid does not
// match the runtime machine it is being restored onto. Callers that can
// resize (internal/elastic, the scheduler's resize path) detect it with
// errors.Is and redistribute instead of failing.
var ErrProcMismatch = errors.New("core: checkpoint processor count does not match runtime world")

// ResizeReport summarizes one in-place processor-grid resize.
type ResizeReport struct {
	// OldProcs and NewProcs are the processor counts before and after.
	OldProcs int `json:"old_procs"`
	NewProcs int `json:"new_procs"`
	// Nests is how many distributed nests were redistributed.
	Nests int `json:"nests"`
	// MovedBytes is the modelled payload of the redistribution
	// (fine points × tracker element size, summed over nests).
	MovedBytes int64 `json:"moved_bytes"`
	// RedistTime is the modelled virtual time of the executed Alltoallv
	// exchanges that moved every nest from its old to its new block
	// decomposition.
	RedistTime float64 `json:"redist_time"`
}

// ResizeGrid resizes the pipeline's processor grid in place at a step
// boundary: the tracker is rebuilt over the new grid and network (same
// strategy and options) and seeded with the current nest set, the compute
// world is rebuilt at the new size, and every distributed nest's blocks
// are remapped from its old processor sub-rectangle to its new one
// through one pooled Alltoallv per nest (RedistributeField) over a
// transition grid spanning both decompositions. The parent model, the
// analysis world, the nest-ID counter and the recorded events are
// untouched, so the pipeline resumes exactly where it stopped — with the
// scratch strategy, whose allocations depend only on the current set,
// the post-resize step trace is bit-identical to a run that was at the
// new size all along.
//
// On error the pipeline is left unchanged: every replacement structure is
// built before any of them is committed.
func (p *Pipeline) ResizeGrid(g geom.Grid, net topology.Network, model *perfmodel.ExecModel, oracle *perfmodel.Oracle) (ResizeReport, error) {
	if net == nil || model == nil || oracle == nil {
		return ResizeReport{}, fmt.Errorf("core: resize with nil machine dependency")
	}
	if g.Size() < 1 {
		return ResizeReport{}, fmt.Errorf("core: resize to empty grid %v", g)
	}
	oldGrid := p.tracker.grid
	rep := ResizeReport{OldProcs: oldGrid.Size(), NewProcs: g.Size()}
	if g == oldGrid {
		return rep, nil // already at this size
	}

	tr, err := NewTracker(g, net, model, oracle, p.tracker.strategy, p.tracker.opts)
	if err != nil {
		return ResizeReport{}, err
	}
	// Seed the new tracker with the current set so its allocation state
	// matches what a fixed-size run would hold at this point (the initial
	// Apply partitions from scratch and models no redistribution — the
	// nests' actual moves are executed below and reported separately).
	if len(p.set) > 0 {
		if _, err := tr.Apply(p.set); err != nil {
			return ResizeReport{}, err
		}
	}
	tr.SetTracer(p.tracer)

	if !p.cfg.Distributed {
		p.tracker = tr
		return rep, nil
	}

	compWorld, err := mpi.NewWorld(g.Size(), mpi.Config{Net: net})
	if err != nil {
		return ResizeReport{}, err
	}

	// Every nest moves from its old sub-rectangle (old-grid coordinates)
	// to its new one (new-grid coordinates). One transition grid spanning
	// both decompositions hosts the Alltoallv: old and new rectangles are
	// both valid sub-rectangles of it, so the exchange is exactly the
	// paper's redistribution with the union of old and new ranks
	// participating.
	newNests := make(map[int]*wrfsim.ParallelNest, len(p.dnests))
	if len(p.dnests) > 0 {
		tg := geom.NewGrid(max(oldGrid.Px, g.Px), max(oldGrid.Py, g.Py))
		tnet, err := topology.NewSwitched(tg.Size(), 8, topology.DefaultSwitchedParams())
		if err != nil {
			return ResizeReport{}, err
		}
		tw, err := mpi.NewWorld(tg.Size(), mpi.Config{Net: tnet})
		if err != nil {
			return ResizeReport{}, err
		}
		rects := tr.Allocation().Rects
		ids := make([]int, 0, len(p.dnests))
		for id := range p.dnests {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		for _, id := range ids {
			nest := p.dnests[id]
			spec, ok := p.set.ByID(id)
			if !ok {
				return ResizeReport{}, fmt.Errorf("core: resize: nest %d not in active set", id)
			}
			newRect, ok := rects[id]
			if !ok {
				return ResizeReport{}, fmt.Errorf("core: resize: nest %d has no allocation", id)
			}
			nx, ny := spec.FineSize(wrfsim.NestRatio)
			newRect = usableProcs(newRect, nx, ny)
			xfer := redist.Transfer{
				NestID: id, NX: nx, NY: ny,
				Old: nest.Procs(), New: newRect,
				ElemBytes: p.tracker.opts.ElemBytes,
			}
			fine, elapsed, err := RedistributeField(tw, tg, xfer, nest.Gather())
			if err != nil {
				return ResizeReport{}, fmt.Errorf("core: resize nest %d: %w", id, err)
			}
			nn, err := wrfsim.RestoreParallelNest(id, spec.Region, g, newRect, fine, nest.StepCount())
			if err != nil {
				return ResizeReport{}, fmt.Errorf("core: resize nest %d: %w", id, err)
			}
			nn.SetTracer(p.tracer)
			newNests[id] = nn
			rep.Nests++
			rep.MovedBytes += int64(nx) * int64(ny) * int64(p.tracker.opts.ElemBytes)
			rep.RedistTime += elapsed
		}
	}

	compWorld.SetFaults(p.faults)
	p.tracker = tr
	p.compWorld = compWorld
	p.dnests = newNests
	return rep, nil
}
