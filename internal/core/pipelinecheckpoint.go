package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"nestdiff/internal/field"
	"nestdiff/internal/geom"
	"nestdiff/internal/perfmodel"
	"nestdiff/internal/scenario"
	"nestdiff/internal/topology"
	"nestdiff/internal/wrfsim"
)

// pipelineState is the gob-serialized form of a Pipeline. It nests the two
// existing checkpoint formats — the weather model's (wrfsim/checkpoint.go)
// and the tracker's (checkpoint.go) — and adds the pipeline-only state:
// the live nest fields, the active set, the ID counter and the recorded
// events. The machine and performance models are reconstructed by the
// caller at restore time, exactly as for RestoreTracker.
type pipelineState struct {
	Version int
	Cfg     PipelineConfig
	Model   []byte // wrfsim.Model checkpoint
	Tracker []byte // Tracker checkpoint
	Set     scenario.Set
	NextID  int
	Events  []AdaptationEvent
	Nests   []nestState
}

// nestState captures one live nested simulation, serial or distributed.
type nestState struct {
	ID     int
	Region geom.Rect
	NX, NY int
	Data   []float64
	Steps  int
	Procs  geom.Rect // distributed mode only
}

const pipelineStateVersion = 1

// Checkpoint envelope: the gob payload is framed by a fixed header so that
// RestorePipeline can reject torn or corrupt files outright instead of
// partially decoding them —
//
//	magic "NDCP" (4) | envelope version (1) | payload length (8, LE) | CRC-32C of payload (4)
//
// A write that dies mid-checkpoint leaves a file that fails the length
// check; a bit flip anywhere in the payload fails the checksum.
var ckptMagic = [4]byte{'N', 'D', 'C', 'P'}

const (
	ckptEnvelopeVersion = 1
	ckptHeaderLen       = 4 + 1 + 8 + 4
	// ckptMaxPayload bounds the allocation a (possibly corrupt) header can
	// demand.
	ckptMaxPayload = 1 << 32
)

var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

// SaveState writes a checkpoint of the whole pipeline: parent model, live
// nests (serial or distributed), tracker, active set and event history. A
// pipeline restored from it via RestorePipeline continues bit-identically,
// so a paused run resumed later produces the same StepMetrics tail as an
// uninterrupted one.
func (p *Pipeline) SaveState(w io.Writer) error {
	var model bytes.Buffer
	if err := p.model.Save(&model); err != nil {
		return err
	}
	var tracker bytes.Buffer
	if err := p.tracker.SaveState(&tracker); err != nil {
		return err
	}
	st := pipelineState{
		Version: pipelineStateVersion,
		Cfg:     p.cfg,
		Model:   model.Bytes(),
		Tracker: tracker.Bytes(),
		Set:     append(scenario.Set(nil), p.set...),
		NextID:  p.nextID,
		Events:  append([]AdaptationEvent(nil), p.events...),
	}
	if p.cfg.Distributed {
		for id, n := range p.dnests {
			fine := n.Gather()
			st.Nests = append(st.Nests, nestState{
				ID: id, Region: n.Region,
				NX: fine.NX, NY: fine.NY,
				Data:  append([]float64(nil), fine.Data...),
				Steps: n.StepCount(),
				Procs: n.Procs(),
			})
		}
	} else {
		for id, n := range p.nests {
			q := n.QCloud()
			st.Nests = append(st.Nests, nestState{
				ID: id, Region: n.Region,
				NX: q.NX, NY: q.NY,
				Data:  append([]float64(nil), q.Data...),
				Steps: n.StepCount(),
			})
		}
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return fmt.Errorf("core: save pipeline state: %w", err)
	}
	var hdr [ckptHeaderLen]byte
	copy(hdr[:4], ckptMagic[:])
	hdr[4] = ckptEnvelopeVersion
	binary.LittleEndian.PutUint64(hdr[5:13], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[13:17], crc32.Checksum(payload.Bytes(), ckptCRC))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("core: save pipeline state: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("core: save pipeline state: %w", err)
	}
	return nil
}

// ValidateCheckpoint checks that data is a complete, uncorrupted pipeline
// checkpoint — magic, envelope version, exact payload length and CRC-32C —
// without gob-decoding the payload. It is the cheap integrity test the
// scheduler's startup recovery scan runs over every *.ckpt file before
// re-registering the job; a checkpoint that passes it will not be rejected
// later by RestorePipeline's envelope checks (the gob payload itself is
// only decoded on resume).
func ValidateCheckpoint(data []byte) error {
	if len(data) < ckptHeaderLen {
		return fmt.Errorf("core: validate checkpoint: %d bytes is shorter than the envelope header", len(data))
	}
	if !bytes.Equal(data[:4], ckptMagic[:]) {
		return fmt.Errorf("core: validate checkpoint: bad magic %q (not a nestdiff pipeline checkpoint)", data[:4])
	}
	if data[4] != ckptEnvelopeVersion {
		return fmt.Errorf("core: validate checkpoint: unsupported envelope version %d", data[4])
	}
	n := binary.LittleEndian.Uint64(data[5:13])
	if n == 0 || n > ckptMaxPayload {
		return fmt.Errorf("core: validate checkpoint: implausible payload length %d (corrupt header)", n)
	}
	if uint64(len(data)-ckptHeaderLen) != n {
		return fmt.Errorf("core: validate checkpoint: torn checkpoint (%d payload bytes, header promises %d)", len(data)-ckptHeaderLen, n)
	}
	if sum := crc32.Checksum(data[ckptHeaderLen:], ckptCRC); sum != binary.LittleEndian.Uint32(data[13:17]) {
		return fmt.Errorf("core: validate checkpoint: checksum mismatch (corrupt checkpoint)")
	}
	return nil
}

// RestorePipeline rebuilds a pipeline from a checkpoint written by
// SaveState, attaching the given machine and performance models (they are
// configuration, not state, like RestoreTracker's). The restored pipeline
// continues exactly where the saved one stopped.
func RestorePipeline(r io.Reader, net topology.Network, model *perfmodel.ExecModel, oracle *perfmodel.Oracle) (*Pipeline, error) {
	var hdr [ckptHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: load pipeline state: truncated checkpoint header: %w", err)
	}
	if !bytes.Equal(hdr[:4], ckptMagic[:]) {
		return nil, fmt.Errorf("core: load pipeline state: bad magic %q (not a nestdiff pipeline checkpoint)", hdr[:4])
	}
	if hdr[4] != ckptEnvelopeVersion {
		return nil, fmt.Errorf("core: load pipeline state: unsupported checkpoint envelope version %d", hdr[4])
	}
	n := binary.LittleEndian.Uint64(hdr[5:13])
	if n == 0 || n > ckptMaxPayload {
		return nil, fmt.Errorf("core: load pipeline state: implausible payload length %d (corrupt header)", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("core: load pipeline state: torn checkpoint (%d-byte payload): %w", n, err)
	}
	if sum := crc32.Checksum(payload, ckptCRC); sum != binary.LittleEndian.Uint32(hdr[13:17]) {
		return nil, fmt.Errorf("core: load pipeline state: checksum mismatch (corrupt checkpoint)")
	}
	var st pipelineState
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: load pipeline state: %w", err)
	}
	if st.Version != pipelineStateVersion {
		return nil, fmt.Errorf("core: unsupported pipeline state version %d", st.Version)
	}
	m, err := wrfsim.Load(bytes.NewReader(st.Model))
	if err != nil {
		return nil, err
	}
	tr, err := RestoreTracker(bytes.NewReader(st.Tracker), net, model, oracle)
	if err != nil {
		return nil, err
	}
	p, err := NewPipeline(m, tr, st.Cfg)
	if err != nil {
		return nil, err
	}
	p.set = st.Set
	p.nextID = st.NextID
	p.events = st.Events
	for _, ns := range st.Nests {
		fine := &field.Field{NX: ns.NX, NY: ns.NY, Data: ns.Data}
		if len(ns.Data) != ns.NX*ns.NY {
			return nil, fmt.Errorf("core: nest %d field has %d samples for %dx%d", ns.ID, len(ns.Data), ns.NX, ns.NY)
		}
		if st.Cfg.Distributed {
			n, err := wrfsim.RestoreParallelNest(ns.ID, ns.Region, tr.Grid(), ns.Procs, fine, ns.Steps)
			if err != nil {
				return nil, fmt.Errorf("core: restore nest %d: %w", ns.ID, err)
			}
			p.dnests[ns.ID] = n
		} else {
			n, err := wrfsim.RestoreNest(ns.ID, ns.Region, fine, ns.Steps)
			if err != nil {
				return nil, fmt.Errorf("core: restore nest %d: %w", ns.ID, err)
			}
			p.nests[ns.ID] = n
		}
	}
	return p, nil
}
