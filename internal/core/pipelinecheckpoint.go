package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"slices"

	"nestdiff/internal/field"
	"nestdiff/internal/geom"
	"nestdiff/internal/perfmodel"
	"nestdiff/internal/scenario"
	"nestdiff/internal/topology"
	"nestdiff/internal/wrfsim"
)

// pipelineState is the gob-serialized form of a Pipeline in the v1
// envelope. It nests the two existing checkpoint formats — the weather
// model's (wrfsim/checkpoint.go) and the tracker's (checkpoint.go) — and
// adds the pipeline-only state: the live nest fields, the active set, the
// ID counter and the recorded events. v1 is kept as a restore path (and as
// the benchmark baseline); new checkpoints are written in the v2 binary
// format (ckptcodec.go, ckptwriter.go).
type pipelineState struct {
	Version int
	Cfg     PipelineConfig
	Model   []byte // wrfsim.Model checkpoint
	Tracker []byte // Tracker checkpoint
	Set     scenario.Set
	NextID  int
	Events  []AdaptationEvent
	Nests   []nestState
}

// nestState captures one live nested simulation, serial or distributed.
type nestState struct {
	ID     int
	Region geom.Rect
	NX, NY int
	Data   []float64
	Steps  int
	Procs  geom.Rect // distributed mode only
}

const pipelineStateVersion = 1

// Checkpoint envelope: the payload is framed by a fixed header so that
// RestorePipeline can reject torn or corrupt files outright instead of
// partially decoding them —
//
//	magic "NDCP" (4) | envelope version (1) | payload length (8, LE) | CRC-32C of payload (4)
//
// Version 1 frames a single gob payload; version 2 extends the header and
// frames a chain of binary blobs (see ckptcodec.go). A write that dies
// mid-checkpoint leaves a file that fails the length check; a bit flip
// anywhere in the payload fails the checksum.
var ckptMagic = [4]byte{'N', 'D', 'C', 'P'}

const (
	ckptEnvelopeVersion = 1
	ckptHeaderLen       = 4 + 1 + 8 + 4
	// ckptMaxPayload bounds the allocation a (possibly corrupt) header can
	// demand.
	ckptMaxPayload = 1 << 32
)

var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

// SaveState writes a checkpoint of the whole pipeline: parent model, live
// nests (serial or distributed), tracker, active set and event history,
// as a single full v2 base blob. A pipeline restored from it via
// RestorePipeline continues bit-identically, so a paused run resumed later
// produces the same StepMetrics tail as an uninterrupted one. Callers that
// checkpoint repeatedly should hold a CheckpointWriter instead: it reuses
// its buffers and emits delta blobs between bases.
func (p *Pipeline) SaveState(w io.Writer) error {
	cw := NewCheckpointWriter(CheckpointWriterOptions{MaxDeltas: -1, Workers: p.cfg.NestWorkers})
	blob, _, err := cw.Encode(p)
	if err != nil {
		return err
	}
	if _, err := w.Write(blob); err != nil {
		return fmt.Errorf("core: save pipeline state: %w", err)
	}
	return nil
}

// saveStateV1 writes the legacy v1 envelope (gob pipelineState). It is
// retained as the baseline for the checkpoint benchmarks and to generate
// v1 fixtures for the cross-version restore tests; the v1 *read* path is
// what guarantees old checkpoint files keep restoring.
func (p *Pipeline) saveStateV1(w io.Writer) error {
	var model bytes.Buffer
	if err := p.model.Save(&model); err != nil {
		return err
	}
	var tracker bytes.Buffer
	if err := p.tracker.SaveState(&tracker); err != nil {
		return err
	}
	st := pipelineState{
		Version: pipelineStateVersion,
		Cfg:     p.cfg,
		Model:   model.Bytes(),
		Tracker: tracker.Bytes(),
		Set:     append(scenario.Set(nil), p.set...),
		NextID:  p.nextID,
		Events:  append([]AdaptationEvent(nil), p.events...),
	}
	if p.cfg.Distributed {
		for id, n := range p.dnests {
			fine := n.Gather()
			st.Nests = append(st.Nests, nestState{
				ID: id, Region: n.Region,
				NX: fine.NX, NY: fine.NY,
				Data:  append([]float64(nil), fine.Data...),
				Steps: n.StepCount(),
				Procs: n.Procs(),
			})
		}
	} else {
		for id, n := range p.nests {
			q := n.QCloud()
			st.Nests = append(st.Nests, nestState{
				ID: id, Region: n.Region,
				NX: q.NX, NY: q.NY,
				Data:  append([]float64(nil), q.Data...),
				Steps: n.StepCount(),
			})
		}
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return fmt.Errorf("core: save pipeline state: %w", err)
	}
	var hdr [ckptHeaderLen]byte
	copy(hdr[:4], ckptMagic[:])
	hdr[4] = ckptEnvelopeVersion
	binary.LittleEndian.PutUint64(hdr[5:13], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[13:17], crc32.Checksum(payload.Bytes(), ckptCRC))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("core: save pipeline state: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("core: save pipeline state: %w", err)
	}
	return nil
}

// ValidateCheckpoint checks that data is a complete, uncorrupted pipeline
// checkpoint without decoding any payload. For a v1 envelope that means
// magic, version, exact payload length and CRC-32C; for a v2 chain it
// walks every blob — header, payload CRC, record framing with per-record
// CRCs, and base→delta link continuity. It is the cheap integrity test the
// scheduler's startup recovery scan runs over every *.ckpt file before
// re-registering the job.
//
// A v2 chain whose base is intact but whose delta tail is torn, corrupt or
// discontinuous returns an error matching ErrDeltaChainBroken (via
// errors.Is): the checkpoint still restores — RestorePipeline falls back
// to the longest valid prefix — but the caller may want to count or log
// the truncation. Any other non-nil error means the checkpoint is
// unusable.
func ValidateCheckpoint(data []byte) error {
	if len(data) < ckptHeaderLen {
		return fmt.Errorf("core: validate checkpoint: %d bytes is shorter than the envelope header", len(data))
	}
	if !bytes.Equal(data[:4], ckptMagic[:]) {
		return fmt.Errorf("core: validate checkpoint: bad magic %q (not a nestdiff pipeline checkpoint)", data[:4])
	}
	switch data[4] {
	case ckptEnvelopeVersion:
		n := binary.LittleEndian.Uint64(data[5:13])
		if n == 0 || n > ckptMaxPayload {
			return fmt.Errorf("core: validate checkpoint: implausible payload length %d (corrupt header)", n)
		}
		if uint64(len(data)-ckptHeaderLen) != n {
			return fmt.Errorf("core: validate checkpoint: torn checkpoint (%d payload bytes, header promises %d)", len(data)-ckptHeaderLen, n)
		}
		if sum := crc32.Checksum(data[ckptHeaderLen:], ckptCRC); sum != binary.LittleEndian.Uint32(data[13:17]) {
			return fmt.Errorf("core: validate checkpoint: checksum mismatch (corrupt checkpoint)")
		}
		return nil
	case ckptEnvelopeV2:
		return validateChainV2(data)
	default:
		return fmt.Errorf("core: validate checkpoint: unsupported envelope version %d", data[4])
	}
}

// validateChainV2 walks a v2 blob chain structurally: blob headers and
// CRCs, record framing, and link continuity. Errors on the base blob are
// fatal; errors after an intact base wrap ErrDeltaChainBroken.
func validateChainV2(data []byte) error {
	var recs []record
	off := 0
	first := true
	var prevSeq, prevCRC uint32
	for off < len(data) {
		h, payload, size, err := parseBlob(data[off:])
		if err != nil {
			if first {
				return err
			}
			return fmt.Errorf("%w: blob %d: %v", ErrDeltaChainBroken, prevSeq+1, err)
		}
		if h.delta {
			if first {
				return fmt.Errorf("core: validate checkpoint: chain starts with a delta blob (missing base)")
			}
			if h.seq != prevSeq+1 || h.link != prevCRC {
				return fmt.Errorf("%w: delta %d does not continue blob %d", ErrDeltaChainBroken, h.seq, prevSeq)
			}
		} else if h.seq != 0 || h.link != 0 {
			err := fmt.Errorf("core: validate checkpoint: base blob with nonzero chain links")
			if first {
				return err
			}
			return fmt.Errorf("%w: %v", ErrDeltaChainBroken, err)
		}
		recs, err = splitRecords(payload, recs[:0])
		if err == nil && (len(recs) == 0 || recs[0].kind != recMeta) {
			err = fmt.Errorf("core: load pipeline state: blob does not start with a metadata record")
		}
		if err != nil {
			if first {
				return err
			}
			return fmt.Errorf("%w: %v", ErrDeltaChainBroken, err)
		}
		prevSeq, prevCRC = h.seq, h.crc
		first = false
		off += size
	}
	return nil
}

// RestorePipeline rebuilds a pipeline from a checkpoint written by
// SaveState or assembled from a CheckpointWriter's blob chain, attaching
// the given machine and performance models (they are configuration, not
// state, like RestoreTracker's). The restored pipeline continues exactly
// where the saved one stopped. A v2 chain with a broken delta tail
// restores from the longest valid prefix — the run re-executes the lost
// steps, which is exactly the crash-retry semantics the scheduler needs —
// while a damaged base (or v1 envelope) is rejected outright.
func RestorePipeline(r io.Reader, net topology.Network, model *perfmodel.ExecModel, oracle *perfmodel.Oracle) (*Pipeline, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: load pipeline state: %w", err)
	}
	if len(data) < ckptHeaderLen {
		return nil, fmt.Errorf("core: load pipeline state: truncated checkpoint header (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:4], ckptMagic[:]) {
		return nil, fmt.Errorf("core: load pipeline state: bad magic %q (not a nestdiff pipeline checkpoint)", data[:4])
	}
	switch data[4] {
	case ckptEnvelopeVersion:
		return restorePipelineV1(data, net, model, oracle)
	case ckptEnvelopeV2:
		return restorePipelineV2(data, net, model, oracle)
	default:
		return nil, fmt.Errorf("core: load pipeline state: unsupported checkpoint envelope version %d", data[4])
	}
}

// restorePipelineV1 decodes the legacy single-gob envelope.
func restorePipelineV1(data []byte, net topology.Network, model *perfmodel.ExecModel, oracle *perfmodel.Oracle) (*Pipeline, error) {
	n := binary.LittleEndian.Uint64(data[5:13])
	if n == 0 || n > ckptMaxPayload {
		return nil, fmt.Errorf("core: load pipeline state: implausible payload length %d (corrupt header)", n)
	}
	if uint64(len(data)-ckptHeaderLen) < n {
		return nil, fmt.Errorf("core: load pipeline state: torn checkpoint (%d payload bytes, header promises %d)",
			len(data)-ckptHeaderLen, n)
	}
	payload := data[ckptHeaderLen : ckptHeaderLen+int(n)]
	if sum := crc32.Checksum(payload, ckptCRC); sum != binary.LittleEndian.Uint32(data[13:17]) {
		return nil, fmt.Errorf("core: load pipeline state: checksum mismatch (corrupt checkpoint)")
	}
	var st pipelineState
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: load pipeline state: %w", err)
	}
	if st.Version != pipelineStateVersion {
		return nil, fmt.Errorf("core: unsupported pipeline state version %d", st.Version)
	}
	m, err := wrfsim.Load(bytes.NewReader(st.Model))
	if err != nil {
		return nil, err
	}
	tr, err := RestoreTracker(bytes.NewReader(st.Tracker), net, model, oracle)
	if err != nil {
		return nil, err
	}
	p, err := NewPipeline(m, tr, st.Cfg)
	if err != nil {
		return nil, err
	}
	p.set = st.Set
	p.nextID = st.NextID
	p.events = st.Events
	for _, ns := range st.Nests {
		fine := &field.Field{NX: ns.NX, NY: ns.NY, Data: ns.Data}
		if len(ns.Data) != ns.NX*ns.NY {
			return nil, fmt.Errorf("core: nest %d field has %d samples for %dx%d", ns.ID, len(ns.Data), ns.NX, ns.NY)
		}
		if st.Cfg.Distributed {
			n, err := wrfsim.RestoreParallelNest(ns.ID, ns.Region, tr.Grid(), ns.Procs, fine, ns.Steps)
			if err != nil {
				return nil, fmt.Errorf("core: restore nest %d: %w", ns.ID, err)
			}
			p.dnests[ns.ID] = n
		} else {
			n, err := wrfsim.RestoreNest(ns.ID, ns.Region, fine, ns.Steps)
			if err != nil {
				return nil, fmt.Errorf("core: restore nest %d: %w", ns.ID, err)
			}
			p.nests[ns.ID] = n
		}
	}
	return p, nil
}

// chainNest is the accumulated restore-time state of one nest.
type chainNest struct {
	region geom.Rect
	procs  geom.Rect
	nx, ny int
	steps  int
	dist   bool
	data   []float64
}

// replayNestCRC is one nest's recorded identity in a replay directive.
type replayNestCRC struct {
	id  int
	crc uint32
}

// chainV2 is the state accumulated while replaying a v2 blob chain.
type chainV2 struct {
	meta     ckptMetaV2
	model    []float64
	modelNX  int
	modelNY  int
	hasModel bool
	nests    map[int]*chainNest
	// Replay directive from the last valid thin delta: the restore must
	// re-execute the pipeline to replayStep and verify the CRCs. meta then
	// describes the base state the replay starts from, not replayStep.
	hasReplay      bool
	replayStep     int
	replayModelCRC uint32
	replayNests    []replayNestCRC
	// broken records that a delta tail was discarded (the chain replays
	// from its longest valid prefix).
	broken bool
}

// fixed layout sizes of the binary nest/model record prefixes.
const (
	nestFullPrefix = 4 + 16 + 4 + 1 + 16 + 8 // id, region, steps, flags, procs, nx, ny
	nestXORPrefix  = 4 + 4                   // id, steps
	fieldDimPrefix = 4 + 4                   // nx, ny
)

// replayChain replays a v2 blob chain from the start of data, validating
// each blob in full (scan) before mutating the accumulated state (apply).
// A damaged first blob is a fatal error; damage after that marks the chain
// broken and returns the state as of the last intact blob.
func replayChain(data []byte) (*chainV2, error) {
	st := &chainV2{nests: make(map[int]*chainNest)}
	feeder := &byteFeeder{}
	var dec *gob.Decoder
	var recs []record
	off := 0
	first := true
	var prevSeq, prevCRC uint32
	for off < len(data) {
		h, payload, size, err := parseBlob(data[off:])
		if err != nil {
			if first {
				return nil, err
			}
			st.broken = true
			return st, nil
		}
		if h.delta {
			if first {
				return nil, fmt.Errorf("core: load pipeline state: chain starts with a delta blob (missing base)")
			}
			if h.seq != prevSeq+1 || h.link != prevCRC {
				st.broken = true
				return st, nil
			}
		} else if h.seq != 0 || h.link != 0 {
			if first {
				return nil, fmt.Errorf("core: load pipeline state: base blob with nonzero chain links")
			}
			st.broken = true
			return st, nil
		}
		recs, err = splitRecords(payload, recs[:0])
		if err != nil {
			if first {
				return nil, err
			}
			st.broken = true
			return st, nil
		}
		if !h.delta {
			// A full base rewrites the world: drop accumulated state and
			// restart the chain-scoped gob stream.
			clear(st.nests)
			st.hasModel = false
			dec = nil
		}
		if err := scanBlobRecords(st, recs, h.delta); err != nil {
			if first {
				return nil, err
			}
			st.broken = true
			return st, nil
		}
		if dec == nil {
			feeder.data = nil
			dec = gob.NewDecoder(feeder)
		}
		feeder.data = recs[0].payload
		var meta ckptMetaV2
		if derr := dec.Decode(&meta); derr != nil || len(feeder.data) != 0 {
			if first {
				if derr == nil {
					derr = fmt.Errorf("trailing bytes after metadata")
				}
				return nil, fmt.Errorf("core: load pipeline state: checkpoint metadata: %w", derr)
			}
			st.broken = true
			return st, nil
		}
		hadReplay, err := applyBlobRecords(st, recs[1:])
		if err != nil {
			// scanBlobRecords guarantees this cannot happen; treat it as a
			// broken tail rather than corrupting the caller.
			if first {
				return nil, err
			}
			st.broken = true
			return st, nil
		}
		if !hadReplay {
			// Field-bearing blob: its metadata describes the accumulated
			// field state and supersedes any earlier replay directive. A
			// thin delta keeps the base metadata — replay regenerates the
			// events, tracker and cells it omits.
			st.meta = meta
			st.hasReplay = false
		}
		prevSeq, prevCRC = h.seq, h.crc
		first = false
		off += size
	}
	if first {
		return nil, fmt.Errorf("core: load pipeline state: empty checkpoint chain")
	}
	return st, nil
}

// scanBlobRecords validates every record of one blob against the
// accumulated state without mutating it, so apply cannot fail halfway.
func scanBlobRecords(st *chainV2, recs []record, delta bool) error {
	if len(recs) == 0 || recs[0].kind != recMeta {
		return fmt.Errorf("core: load pipeline state: blob does not start with a metadata record")
	}
	var seen [recReplay + 1]bool
	for _, rec := range recs[1:] {
		b := rec.payload
		switch rec.kind {
		case recMeta:
			return fmt.Errorf("core: load pipeline state: duplicate metadata record")
		case recModelRaw:
			if len(b) < fieldDimPrefix {
				return fmt.Errorf("core: load pipeline state: short model record")
			}
			nx := int(binary.LittleEndian.Uint32(b[0:4]))
			ny := int(binary.LittleEndian.Uint32(b[4:8]))
			if nx <= 0 || ny <= 0 || nx*ny > 1<<24 {
				return fmt.Errorf("core: load pipeline state: implausible model domain %dx%d", nx, ny)
			}
			if len(b) != fieldDimPrefix+8*nx*ny {
				return fmt.Errorf("core: load pipeline state: model record has %d bytes for %dx%d", len(b), nx, ny)
			}
		case recModelXOR:
			if len(b) < fieldDimPrefix {
				return fmt.Errorf("core: load pipeline state: short model record")
			}
			nx := int(binary.LittleEndian.Uint32(b[0:4]))
			ny := int(binary.LittleEndian.Uint32(b[4:8]))
			if !st.hasModel || nx != st.modelNX || ny != st.modelNY {
				return fmt.Errorf("core: load pipeline state: model delta without a matching base field")
			}
			if err := scanXORRLE(nx*ny, b[fieldDimPrefix:]); err != nil {
				return err
			}
		case recNestFull:
			if len(b) < nestFullPrefix {
				return fmt.Errorf("core: load pipeline state: short nest record")
			}
			nx := int(binary.LittleEndian.Uint32(b[41:45]))
			ny := int(binary.LittleEndian.Uint32(b[45:49]))
			if nx <= 0 || ny <= 0 || nx*ny > 1<<24 {
				return fmt.Errorf("core: load pipeline state: implausible nest domain %dx%d", nx, ny)
			}
			if len(b) != nestFullPrefix+8*nx*ny {
				id := binary.LittleEndian.Uint32(b[0:4])
				return fmt.Errorf("core: nest %d field has %d samples for %dx%d", id, (len(b)-nestFullPrefix)/8, nx, ny)
			}
		case recNestXOR:
			if len(b) < nestXORPrefix {
				return fmt.Errorf("core: load pipeline state: short nest record")
			}
			id := int(binary.LittleEndian.Uint32(b[0:4]))
			n, ok := st.nests[id]
			if !ok {
				return fmt.Errorf("core: load pipeline state: delta for unknown nest %d", id)
			}
			if err := scanXORRLE(len(n.data), b[nestXORPrefix:]); err != nil {
				return err
			}
		case recNestRemove:
			if len(b) != 4 {
				return fmt.Errorf("core: load pipeline state: short nest record")
			}
			id := int(binary.LittleEndian.Uint32(b[0:4]))
			if _, ok := st.nests[id]; !ok {
				return fmt.Errorf("core: load pipeline state: removal of unknown nest %d", id)
			}
		case recReplay:
			if seen[recReplay] {
				return fmt.Errorf("core: load pipeline state: duplicate replay directive")
			}
			if len(b) < 9 {
				return fmt.Errorf("core: load pipeline state: short replay directive")
			}
			n, used := binary.Uvarint(b[8:])
			if used <= 0 || n > 1<<16 {
				return fmt.Errorf("core: load pipeline state: implausible replay nest count")
			}
			if len(b) != 8+used+8*int(n) {
				return fmt.Errorf("core: load pipeline state: replay directive has %d bytes for %d nests", len(b), n)
			}
		default:
			return fmt.Errorf("core: load pipeline state: unknown record kind %d", rec.kind)
		}
		seen[rec.kind] = true
		if !delta && (rec.kind == recModelXOR || rec.kind == recNestXOR || rec.kind == recNestRemove || rec.kind == recReplay) {
			return fmt.Errorf("core: load pipeline state: delta record in a base blob")
		}
	}
	if seen[recReplay] && (seen[recModelRaw] || seen[recModelXOR] || seen[recNestFull] || seen[recNestXOR] || seen[recNestRemove]) {
		return fmt.Errorf("core: load pipeline state: replay directive alongside field records")
	}
	return nil
}

// applyBlobRecords folds one scanned blob's field records into the
// accumulated state, reporting whether the blob carried a replay
// directive.
func applyBlobRecords(st *chainV2, recs []record) (bool, error) {
	hadReplay := false
	for _, rec := range recs {
		b := rec.payload
		switch rec.kind {
		case recModelRaw:
			nx := int(binary.LittleEndian.Uint32(b[0:4]))
			ny := int(binary.LittleEndian.Uint32(b[4:8]))
			if cap(st.model) < nx*ny {
				st.model = make([]float64, nx*ny)
			}
			st.model = st.model[:nx*ny]
			decodeRawField(st.model, b[fieldDimPrefix:])
			st.modelNX, st.modelNY, st.hasModel = nx, ny, true
		case recModelXOR:
			if err := applyXORRLE(st.model, b[fieldDimPrefix:]); err != nil {
				return false, err
			}
		case recNestFull:
			id := int(binary.LittleEndian.Uint32(b[0:4]))
			n := st.nests[id]
			if n == nil {
				n = &chainNest{}
				st.nests[id] = n
			}
			n.region = decodeRect(b[4:20])
			n.steps = int(binary.LittleEndian.Uint32(b[20:24]))
			n.dist = b[24]&1 != 0
			n.procs = decodeRect(b[25:41])
			n.nx = int(binary.LittleEndian.Uint32(b[41:45]))
			n.ny = int(binary.LittleEndian.Uint32(b[45:49]))
			if cap(n.data) < n.nx*n.ny {
				n.data = make([]float64, n.nx*n.ny)
			}
			n.data = n.data[:n.nx*n.ny]
			decodeRawField(n.data, b[nestFullPrefix:])
		case recNestXOR:
			id := int(binary.LittleEndian.Uint32(b[0:4]))
			n := st.nests[id]
			n.steps = int(binary.LittleEndian.Uint32(b[4:8]))
			if err := applyXORRLE(n.data, b[nestXORPrefix:]); err != nil {
				return false, err
			}
		case recNestRemove:
			delete(st.nests, int(binary.LittleEndian.Uint32(b[0:4])))
		case recReplay:
			hadReplay = true
			st.hasReplay = true
			st.replayStep = int(binary.LittleEndian.Uint32(b[0:4]))
			st.replayModelCRC = binary.LittleEndian.Uint32(b[4:8])
			n, used := binary.Uvarint(b[8:])
			b = b[8+used:]
			st.replayNests = st.replayNests[:0]
			for i := 0; i < int(n); i++ {
				st.replayNests = append(st.replayNests, replayNestCRC{
					id:  int(binary.LittleEndian.Uint32(b[0:4])),
					crc: binary.LittleEndian.Uint32(b[4:8]),
				})
				b = b[8:]
			}
		}
	}
	return hadReplay, nil
}

// restorePipelineV2 replays a v2 blob chain and rebuilds the pipeline from
// the accumulated state.
func restorePipelineV2(data []byte, net topology.Network, model *perfmodel.ExecModel, oracle *perfmodel.Oracle) (*Pipeline, error) {
	st, err := replayChain(data)
	if err != nil {
		return nil, err
	}
	if !st.hasModel {
		return nil, fmt.Errorf("core: load pipeline state: checkpoint base has no model field")
	}
	meta := st.meta
	m, err := wrfsim.RestoreModel(meta.MCfg, st.model, meta.Cells, meta.RNG, meta.Time, meta.Step)
	if err != nil {
		return nil, err
	}
	tr, err := restoreTrackerState(meta.Tracker, net, model, oracle)
	if err != nil {
		return nil, err
	}
	p, err := NewPipeline(m, tr, meta.Cfg)
	if err != nil {
		return nil, err
	}
	p.set = meta.Set
	p.nextID = meta.NextID
	p.events = meta.Events
	ids := make([]int, 0, len(st.nests))
	for id := range st.nests {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		ns := st.nests[id]
		fine := &field.Field{NX: ns.nx, NY: ns.ny, Data: ns.data}
		if meta.Cfg.Distributed {
			n, err := wrfsim.RestoreParallelNest(id, ns.region, tr.Grid(), ns.procs, fine, ns.steps)
			if err != nil {
				return nil, fmt.Errorf("core: restore nest %d: %w", id, err)
			}
			p.dnests[id] = n
		} else {
			n, err := wrfsim.RestoreNest(id, ns.region, fine, ns.steps)
			if err != nil {
				return nil, fmt.Errorf("core: restore nest %d: %w", id, err)
			}
			p.nests[id] = n
		}
	}
	if st.hasReplay {
		if err := replayToDirective(p, st); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// replayToDirective re-executes the restored base pipeline up to the thin
// delta's target step and proves the result bit-identical to the state the
// writer checkpointed, via the directive's model and per-nest CRCs. The
// pipeline is deterministic, so this reproduces exactly the steps the
// original run took between the base and the delta cut.
func replayToDirective(p *Pipeline, st *chainV2) error {
	k := st.replayStep - p.StepCount()
	if k < 0 {
		return fmt.Errorf("core: load pipeline state: replay directive targets step %d behind the base at step %d",
			st.replayStep, p.StepCount())
	}
	if k > 0 {
		if err := p.Run(k); err != nil {
			return fmt.Errorf("core: load pipeline state: delta replay: %w", err)
		}
	}
	chunk := make([]byte, 4096)
	if got := fieldCRC(p.model.QCloud().Data, chunk); got != st.replayModelCRC {
		return fmt.Errorf("core: load pipeline state: model field diverged during delta replay (checkpoint crc %#x, replayed %#x)",
			st.replayModelCRC, got)
	}
	live := len(p.nests) + len(p.dnests)
	if live != len(st.replayNests) {
		return fmt.Errorf("core: load pipeline state: %d nests after delta replay, checkpoint recorded %d",
			live, len(st.replayNests))
	}
	var gather *field.Field
	for _, rn := range st.replayNests {
		var cur []float64
		if p.cfg.Distributed {
			n := p.dnests[rn.id]
			if n == nil {
				return fmt.Errorf("core: load pipeline state: nest %d missing after delta replay", rn.id)
			}
			gather = n.GatherInto(gather)
			cur = gather.Data
		} else {
			n := p.nests[rn.id]
			if n == nil {
				return fmt.Errorf("core: load pipeline state: nest %d missing after delta replay", rn.id)
			}
			cur = n.QCloud().Data
		}
		if got := fieldCRC(cur, chunk); got != rn.crc {
			return fmt.Errorf("core: load pipeline state: nest %d field diverged during delta replay (checkpoint crc %#x, replayed %#x)",
				rn.id, rn.crc, got)
		}
	}
	return nil
}
