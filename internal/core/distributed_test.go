package core

import (
	"math"
	"testing"

	"nestdiff/internal/geom"
	"nestdiff/internal/mpi"
	"nestdiff/internal/pda"
	"nestdiff/internal/scenario"
	"nestdiff/internal/topology"
	"nestdiff/internal/wrfsim"
)

// TestTrackerDrivesDistributedNestRedistribution is the paper's complete
// runtime loop with real state movement: a nest executes distributed over
// the sub-rectangle the tracker allocated; an adaptation point changes
// the nest set; the tracker's diffusion reallocation yields a new
// sub-rectangle; the nest's state moves there with one Alltoallv and the
// simulation continues — bit-identical to a serial nest that never moved.
func TestTrackerDrivesDistributedNestRedistribution(t *testing.T) {
	g := geom.NewGrid(8, 6)
	net, err := topology.NewTorus3D(g, topology.TorusDimsFor(g.Size()), topology.DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	_, model, oracle := testEnv(t, geom.NewGrid(8, 6))
	tracker, err := NewTracker(g, net, model, oracle, Diffusion, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	world, err := mpi.NewWorld(g.Size(), mpi.Config{Net: net})
	if err != nil {
		t.Fatal(err)
	}

	// Parent model with two storms; nest 1 over the first.
	wcfg := wrfsim.DefaultConfig()
	wcfg.NX, wcfg.NY = 96, 72
	wcfg.SpawnRate = 0
	m, err := wrfsim.NewModel(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []wrfsim.Cell{
		{X: 20, Y: 18, Radius: 5, Peak: 2.5, Life: 14400},
		{X: 70, Y: 50, Radius: 4, Peak: 2.0, Life: 14400},
	} {
		if err := m.InjectCell(c); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 15; i++ {
		m.Step()
	}

	region1 := geom.NewRect(10, 8, 22, 20)
	region2 := geom.NewRect(58, 40, 22, 20)
	set := scenario.Set{
		{ID: 1, Region: region1},
		{ID: 2, Region: region2},
	}
	if _, err := tracker.Apply(set); err != nil {
		t.Fatal(err)
	}
	procs1 := tracker.Allocation().Rects[1]

	serial, err := m.SpawnNest(1, region1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := m.NewParallelNest(1, region1, g, procs1)
	if err != nil {
		t.Fatal(err)
	}

	step := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			m.Step()
			serial.Step(m)
			if err := par.Step(world, m.Config(), m.Cells()); err != nil {
				t.Fatal(err)
			}
		}
	}
	step(4)

	// Adaptation point: nest 2 dissipates, nest 3 forms elsewhere; the
	// diffusion reallocation moves nest 1's sub-rectangle.
	next := scenario.Set{
		{ID: 1, Region: region1},
		{ID: 3, Region: geom.NewRect(30, 45, 26, 22)},
	}
	sm, err := tracker.Apply(next)
	if err != nil {
		t.Fatal(err)
	}
	newProcs := tracker.Allocation().Rects[1]
	elapsed, err := par.Redistribute(world, newProcs)
	if err != nil {
		t.Fatal(err)
	}
	if par.Procs() != newProcs {
		t.Fatalf("nest sub-grid %v, allocator said %v", par.Procs(), newProcs)
	}
	if newProcs != procs1 && elapsed <= 0 {
		t.Fatal("moved nest cost nothing to redistribute")
	}
	// The executed move and the tracker's analytical plan agree on scale:
	// both are driven by the same block intersections.
	if sm.Redist.TotalBytes == 0 {
		t.Fatal("tracker recorded no redistribution for the retained nest")
	}

	step(4)
	var worst float64
	got := par.Gather()
	for i := range got.Data {
		if d := math.Abs(got.Data[i] - serial.QCloud().Data[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-12 {
		t.Fatalf("distributed nest deviates from serial by %g after reallocation", worst)
	}
}

func TestExecutedRedistributionMatchesAnalyticalModel(t *testing.T) {
	// With matched parameters (one float64 per point, no contention), the
	// executed Alltoallv's virtual time must equal the analytical §IV-C1
	// prediction: both are driven by the same block-intersection plan on
	// the same network model.
	g := geom.NewGrid(8, 6)
	net, err := topology.NewTorus3D(g, topology.TorusDimsFor(g.Size()), topology.DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	_, model, oracle := testEnv(t, g)
	opts := DefaultOptions()
	opts.ElemBytes = 8
	opts.ContentionBytesPerSec = 0
	tracker, err := NewTracker(g, net, model, oracle, Diffusion, opts)
	if err != nil {
		t.Fatal(err)
	}

	wcfg := wrfsim.DefaultConfig()
	wcfg.NX, wcfg.NY = 96, 72
	wcfg.SpawnRate = 0
	m, err := wrfsim.NewModel(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []wrfsim.Cell{
		{X: 20, Y: 18, Radius: 5, Peak: 2.5, Life: 2 * 3600},
		{X: 70, Y: 50, Radius: 4, Peak: 2.0, Life: 6 * 3600},
	} {
		if err := m.InjectCell(c); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewPipeline(m, tracker, PipelineConfig{
		WRFGrid:       geom.NewGrid(8, 6),
		AnalysisRanks: 6,
		Interval:      5,
		PDA:           pda.DefaultOptions(),
		MaxNests:      3,
		Distributed:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(260); err != nil {
		t.Fatal(err)
	}
	compared := 0
	for _, e := range p.Events() {
		if e.ExecutedRedistTime == 0 {
			continue
		}
		compared++
		rel := math.Abs(e.ExecutedRedistTime-e.Metrics.RedistTime) /
			math.Max(e.Metrics.RedistTime, 1e-12)
		// Clamping of small nests' sub-rectangles can make the executed
		// exchange differ from the analytical plan; demand agreement
		// within 25% and exactness for the bulk.
		if rel > 0.25 {
			t.Fatalf("step %d: executed %g vs analytical %g (rel %.2f)",
				e.Step, e.ExecutedRedistTime, e.Metrics.RedistTime, rel)
		}
	}
	if compared == 0 {
		t.Fatal("no executed redistributions to compare")
	}
	t.Logf("compared %d executed exchanges against the analytical model", compared)
}
