package core

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"nestdiff/internal/faults"
	"nestdiff/internal/geom"
	"nestdiff/internal/mpi"
	"nestdiff/internal/obs"
	"nestdiff/internal/pda"
	"nestdiff/internal/scenario"
	"nestdiff/internal/topology"
	"nestdiff/internal/wrfsim"
)

// PipelineConfig wires the full framework of contribution 2: the running
// parent simulation, the periodic parallel data analysis, nest
// spawn/delete, and processor reallocation.
type PipelineConfig struct {
	// WRFGrid is the process decomposition of the parent simulation (its
	// size is the maximum processor count P shared by the nests).
	WRFGrid geom.Grid
	// AnalysisRanks is N, the number of data-analysis processes. The
	// paper runs PDA "on a different set of processors than the
	// processors running the WRF simulation".
	AnalysisRanks int
	// Interval is the number of parent steps between PDA invocations (the
	// paper analyzes every 2 simulated minutes, i.e. every step at the
	// default Dt).
	Interval int
	// PDA carries the detection thresholds.
	PDA pda.Options
	// MaxNests caps the number of simultaneous nests, keeping the
	// strongest clusters (PDA emits clusters in decreasing cloud-cover
	// order). Zero means unlimited.
	MaxNests int
	// Distributed, when true, runs every nest block-distributed over its
	// allocated processor sub-rectangle (wrfsim.ParallelNest) and executes
	// each reallocation as a real in-place Alltoallv — the paper's actual
	// runtime arrangement. When false, nests run as serial simulations
	// and redistribution is modelled analytically only.
	Distributed bool
	// NestWorkers bounds how many nests step concurrently within one
	// parent step (they touch disjoint state, so results are identical to
	// sequential stepping). Zero means runtime.GOMAXPROCS(0); one forces
	// sequential stepping.
	NestWorkers int
}

// DefaultPipelineConfig returns a laptop-scale configuration: a 16×16
// process grid (256 ranks) with 16 analysis ranks, analyzing every step.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		WRFGrid:       geom.NewGrid(16, 16),
		AnalysisRanks: 16,
		Interval:      1,
		PDA:           pda.DefaultOptions(),
		MaxNests:      9,
	}
}

// AdaptationEvent describes one PDA invocation and its consequences.
type AdaptationEvent struct {
	Step    int
	Set     scenario.Set
	Diff    scenario.Diff
	Metrics StepMetrics
	// ExecutedRedistTime is the virtual time of the *executed* Alltoallv
	// exchanges (distributed pipelines only; the analytical counterpart is
	// Metrics.RedistTime).
	ExecutedRedistTime float64
}

// Pipeline runs the end-to-end framework: model steps, nested simulations,
// periodic detection, and reallocation through a Tracker.
type Pipeline struct {
	cfg     PipelineConfig
	model   *wrfsim.Model
	tracker *Tracker
	world   *mpi.World // analysis world (N ranks)

	// Serial mode.
	nests map[int]*wrfsim.Nest
	// Distributed mode: nests over the compute world (P ranks).
	dnests    map[int]*wrfsim.ParallelNest
	compWorld *mpi.World

	set    scenario.Set
	nextID int
	events []AdaptationEvent
	faults *faults.Plan
	tracer *obs.Tracer
	snaps  SnapshotSink

	// Step scratch, reused across steps: the cell snapshot handed to
	// distributed nests and the sorted nest-ID work list.
	cellScratch []wrfsim.Cell
	idScratch   []int
}

// NewPipeline assembles a pipeline around an existing model and tracker.
func NewPipeline(m *wrfsim.Model, tr *Tracker, cfg PipelineConfig) (*Pipeline, error) {
	if m == nil || tr == nil {
		return nil, fmt.Errorf("core: nil model or tracker")
	}
	if cfg.Interval < 1 {
		return nil, fmt.Errorf("core: invalid analysis interval %d", cfg.Interval)
	}
	if cfg.AnalysisRanks < 1 || cfg.AnalysisRanks > cfg.WRFGrid.Size() {
		return nil, fmt.Errorf("core: %d analysis ranks for %d WRF ranks",
			cfg.AnalysisRanks, cfg.WRFGrid.Size())
	}
	net, err := topology.NewSwitched(cfg.AnalysisRanks, 8, topology.DefaultSwitchedParams())
	if err != nil {
		return nil, err
	}
	world, err := mpi.NewWorld(cfg.AnalysisRanks, mpi.Config{Net: net})
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:     cfg,
		model:   m,
		tracker: tr,
		world:   world,
		nests:   make(map[int]*wrfsim.Nest),
		nextID:  1,
	}
	if cfg.Distributed {
		p.dnests = make(map[int]*wrfsim.ParallelNest)
		p.compWorld, err = mpi.NewWorld(tr.Grid().Size(), mpi.Config{Net: tr.Net()})
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Events returns the adaptation events recorded so far.
func (p *Pipeline) Events() []AdaptationEvent { return p.events }

// Nests returns the live serial nested simulations, keyed by nest ID
// (empty in distributed mode).
func (p *Pipeline) Nests() map[int]*wrfsim.Nest { return p.nests }

// DistributedNests returns the live distributed nests, keyed by nest ID
// (empty unless the pipeline runs in distributed mode).
func (p *Pipeline) DistributedNests() map[int]*wrfsim.ParallelNest { return p.dnests }

// ActiveSet returns the current nest configuration.
func (p *Pipeline) ActiveSet() scenario.Set { return p.set }

// Config returns the pipeline configuration.
func (p *Pipeline) Config() PipelineConfig { return p.cfg }

// Model returns the parent weather model the pipeline drives.
func (p *Pipeline) Model() *wrfsim.Model { return p.model }

// Tracker returns the reallocation tracker the pipeline applies nest
// changes through.
func (p *Pipeline) Tracker() *Tracker { return p.tracker }

// StepCount returns the number of parent steps completed so far.
func (p *Pipeline) StepCount() int { return p.model.StepCount() }

// SetFaultPlan installs a fault-injection plan on the pipeline and its
// mpi worlds (nil removes it). The plan's step-scoped rules key off the
// pipeline's parent step counter; a nil plan costs one pointer check per
// step and nothing per message.
func (p *Pipeline) SetFaultPlan(fp *faults.Plan) {
	p.faults = fp
	p.world.SetFaults(fp)
	if p.compWorld != nil {
		p.compWorld.SetFaults(fp)
	}
}

// FaultPlan returns the installed fault-injection plan (nil when clean).
func (p *Pipeline) FaultPlan() *faults.Plan { return p.faults }

// SetTracer installs a structured tracer on the pipeline, its tracker
// and its live distributed nests (nil removes it). With a nil tracer
// every event site costs one pointer check — the same discipline as the
// fault-injection hooks.
func (p *Pipeline) SetTracer(tr *obs.Tracer) {
	p.tracer = tr
	p.tracker.SetTracer(tr)
	for _, n := range p.dnests {
		n.SetTracer(tr)
	}
}

// ObsTracer returns the installed tracer (nil when tracing is off).
func (p *Pipeline) ObsTracer() *obs.Tracer { return p.tracer }

// SnapshotSink receives the pipeline at the end of every completed step
// — a consistent boundary where no model, nest or tracker state is
// mid-mutation — so a read-path serving tier can publish copy-on-write
// field snapshots without ever touching the pipeline between boundaries.
// The sink runs on the stepping goroutine; anything it reads from the
// pipeline must be copied before the call returns.
type SnapshotSink interface {
	PublishStep(p *Pipeline)
}

// SetSnapshotSink installs a step-boundary snapshot sink (nil removes
// it). Like the tracer and fault hooks, a nil sink costs one pointer
// check per step — the sink is runtime wiring, never checkpointed.
func (p *Pipeline) SetSnapshotSink(s SnapshotSink) { p.snaps = s }

// Step advances the pipeline by exactly one parent step — the parent
// model, every live nest, and (at analysis intervals) one PDA invocation
// with its reallocation. It is the incremental building block that Run,
// RunContext and the job scheduler are built on.
func (p *Pipeline) Step() error {
	if p.faults != nil {
		step := p.model.StepCount() + 1
		p.faults.SetStep(step)
		p.faults.BeforeStep(step) // may stall (slow step) or panic (injected worker crash)
	}
	tr := p.tracer
	var t0, stepStart time.Time
	if tr != nil {
		stepStart = time.Now()
		t0 = stepStart
	}
	p.model.Step()
	step := p.model.StepCount()
	if tr != nil {
		now := time.Now()
		tr.EmitPhase(step, "model", now.Sub(t0))
		t0 = now
	}
	if err := p.stepNests(step); err != nil {
		return err
	}
	if tr != nil {
		tr.EmitPhase(step, "nests", time.Since(t0))
	}
	if step%p.cfg.Interval == 0 {
		if err := p.adapt(); err != nil {
			return err
		}
	}
	if tr != nil {
		tr.EmitStep(step, time.Since(stepStart))
	}
	if p.snaps != nil {
		p.snaps.PublishStep(p)
	}
	return nil
}

// stepNests advances every live nest by one parent step, stepping up to
// NestWorkers nests concurrently. Nests touch pairwise-disjoint state —
// serial nests own their fine fields and only read the parent; distributed
// nests with disjoint processor sub-rectangles exchange messages between
// disjoint rank sets — so concurrent stepping produces bit-identical
// results to sequential stepping, in any schedule.
func (p *Pipeline) stepNests(step int) error {
	tr := p.tracer
	if p.cfg.Distributed {
		if len(p.dnests) == 0 {
			return nil
		}
		ids := p.sortedNestIDs(len(p.dnests), func(f func(int)) {
			for id := range p.dnests {
				f(id)
			}
		})
		// One cell snapshot serves every nest: they only read it.
		p.cellScratch = p.model.AppendCells(p.cellScratch[:0])
		cells := p.cellScratch
		cfg := p.model.Config()
		workers := p.nestWorkers(len(ids))
		if workers > 1 && !p.disjointProcs(ids) {
			// Overlapping sub-rectangles would share mailbox (from, tag)
			// keys between nests; step sequentially instead.
			workers = 1
		}
		errs := make([]error, len(ids))
		runBounded(workers, len(ids), func(i int) {
			nest := p.dnests[ids[i]]
			var t0 time.Time
			if tr != nil {
				t0 = time.Now()
			}
			errs[i] = nest.Step(p.compWorld, cfg, cells)
			if tr != nil {
				tr.Emit(obs.Event{Kind: obs.KindNestStep, Step: step,
					NestID: ids[i], DurNS: time.Since(t0).Nanoseconds()})
			}
		})
		// Deterministic error selection: smallest nest ID wins.
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	if len(p.nests) == 0 {
		return nil
	}
	ids := p.sortedNestIDs(len(p.nests), func(f func(int)) {
		for id := range p.nests {
			f(id)
		}
	})
	runBounded(p.nestWorkers(len(ids)), len(ids), func(i int) {
		nest := p.nests[ids[i]]
		var t0 time.Time
		if tr != nil {
			t0 = time.Now()
		}
		nest.Step(p.model)
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindNestStep, Step: step,
				NestID: ids[i], DurNS: time.Since(t0).Nanoseconds()})
		}
	})
	return nil
}

// sortedNestIDs fills the pipeline's reusable ID scratch from the given
// key iterator and sorts it, giving nest work a deterministic order.
func (p *Pipeline) sortedNestIDs(n int, each func(func(int))) []int {
	ids := p.idScratch[:0]
	each(func(id int) { ids = append(ids, id) })
	p.idScratch = ids
	slices.Sort(ids)
	return ids
}

// nestWorkers resolves the effective nest worker count for n nests.
func (p *Pipeline) nestWorkers(n int) int {
	w := p.cfg.NestWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return min(w, n)
}

// disjointProcs reports whether the given nests' processor sub-rectangles
// are pairwise disjoint (the allocator guarantees this; verify before
// stepping nests concurrently over the shared compute world).
func (p *Pipeline) disjointProcs(ids []int) bool {
	for i := 0; i < len(ids); i++ {
		ri := p.dnests[ids[i]].Procs()
		for j := i + 1; j < len(ids); j++ {
			if ri.Overlaps(p.dnests[ids[j]].Procs()) {
				return false
			}
		}
	}
	return true
}

// runBounded invokes fn(i) for every i in [0, n) using at most workers
// goroutines; one worker (or one item) runs inline on the caller. A panic
// in any fn is re-raised on the caller after the group drains, so callers'
// recover paths behave as they do for sequential stepping.
func runBounded(workers, n int, fn func(int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}

// Run advances the pipeline by n parent steps, invoking PDA and
// reallocation at every analysis interval.
func (p *Pipeline) Run(n int) error {
	return p.RunContext(context.Background(), n)
}

// RunContext advances the pipeline by n parent steps, stopping early with
// the context's error if ctx is cancelled. Cancellation is checked between
// parent steps, so the pipeline is always left at a consistent step
// boundary from which SaveState or further Run calls can continue.
func (p *Pipeline) RunContext(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := p.Step(); err != nil {
			return err
		}
	}
	return nil
}

// adapt runs one PDA invocation and applies the resulting nest changes.
func (p *Pipeline) adapt() error {
	tr := p.tracer
	step := p.model.StepCount()
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	splits, err := p.model.Splits(p.cfg.WRFGrid)
	if err != nil {
		return err
	}
	loader := func(rank int) (wrfsim.Split, error) {
		if rank < 0 || rank >= len(splits) {
			return wrfsim.Split{}, fmt.Errorf("core: no split for rank %d", rank)
		}
		return splits[rank], nil
	}
	res, err := pda.RunParallel(p.world, p.cfg.WRFGrid, loader, p.cfg.PDA)
	if err != nil {
		return err
	}
	rects := res.Rects
	if p.cfg.MaxNests > 0 && len(rects) > p.cfg.MaxNests {
		rects = rects[:p.cfg.MaxNests]
	}
	newSet := p.matchROIs(rects)
	diff := scenario.DiffSets(p.set, newSet)
	var prevRects map[int]geom.Rect
	if tr != nil {
		now := time.Now()
		tr.EmitPhase(step, "pda", now.Sub(t0))
		t0 = now
		if a := p.tracker.Allocation(); a != nil {
			prevRects = make(map[int]geom.Rect, len(a.Rects))
			for id, r := range a.Rects {
				prevRects[id] = r
			}
		}
		p.tracker.SetTraceStep(step)
	}
	metrics, err := p.tracker.Apply(newSet)
	if err != nil {
		return err
	}
	if tr != nil {
		now := time.Now()
		tr.EmitPhase(step, "realloc", now.Sub(t0))
		t0 = now
	}

	event := AdaptationEvent{
		Step:    step,
		Set:     newSet,
		Diff:    diff,
		Metrics: metrics,
	}
	if p.cfg.Distributed {
		if err := p.reconcileDistributed(newSet, diff, &event); err != nil {
			return err
		}
	} else if err := p.reconcileSerial(newSet, diff); err != nil {
		return err
	}
	if tr != nil {
		tr.EmitPhase(step, "reconcile", time.Since(t0))
		p.traceAdaptation(step, newSet, diff, prevRects, event)
	}

	p.set = newSet
	p.events = append(p.events, event)
	return nil
}

// traceAdaptation emits the nest lifecycle events of one adaptation point
// (spawns, deletions, allocation moves of retained nests) plus the
// adaptation summary event itself.
func (p *Pipeline) traceAdaptation(step int, newSet scenario.Set, diff scenario.Diff, prevRects map[int]geom.Rect, ev AdaptationEvent) {
	tr := p.tracer
	for _, id := range diff.Deleted {
		tr.Emit(obs.Event{Kind: obs.KindNestDelete, Step: step, NestID: id})
	}
	var newRects map[int]geom.Rect
	if a := p.tracker.Allocation(); a != nil {
		newRects = a.Rects
	}
	for _, id := range diff.Added {
		e := obs.Event{Kind: obs.KindNestSpawn, Step: step, NestID: id}
		if spec, ok := newSet.ByID(id); ok {
			e.Detail = fmt.Sprintf("region %v procs %v", spec.Region, newRects[id])
		}
		tr.Emit(e)
	}
	for _, id := range diff.Retained {
		oldR, okOld := prevRects[id]
		newR, okNew := newRects[id]
		if okOld && okNew && oldR != newR {
			tr.Emit(obs.Event{Kind: obs.KindNestMove, Step: step, NestID: id,
				Detail: fmt.Sprintf("procs %v -> %v", oldR, newR)})
		}
	}
	tr.Emit(obs.Event{
		Kind:        obs.KindAdapt,
		Step:        step,
		Strategy:    ev.Metrics.Used.String(),
		Predicted:   ev.Metrics.PredictedExecTime + ev.Metrics.PredictedRedistTime,
		Actual:      ev.Metrics.ExecTime + ev.Metrics.RedistTime,
		HopBytes:    ev.Metrics.Redist.HopBytes,
		RedistBytes: int64(ev.Metrics.Redist.RemoteBytes),
		Detail: fmt.Sprintf("%d nests (+%d -%d =%d)",
			len(newSet), len(diff.Added), len(diff.Deleted), len(diff.Retained)),
	})
}

// reconcileSerial updates the serial nested simulations: delete vanished
// nests (feeding their state back), respawn retained nests whose region
// moved, spawn new nests.
func (p *Pipeline) reconcileSerial(newSet scenario.Set, diff scenario.Diff) error {
	for _, id := range diff.Deleted {
		if nest, ok := p.nests[id]; ok {
			nest.Feedback(p.model)
			delete(p.nests, id)
		}
	}
	for _, spec := range newSet {
		old, exists := p.nests[spec.ID]
		if exists && old.Region == spec.Region {
			continue
		}
		if exists {
			// The region drifted: fold the fine state back, then
			// re-interpolate over the new region.
			old.Feedback(p.model)
		}
		nest, err := p.model.SpawnNest(spec.ID, spec.Region)
		if err != nil {
			return err
		}
		p.nests[spec.ID] = nest
	}
	return nil
}

// reconcileDistributed updates the distributed nests: vanished nests feed
// back and free their ranks; retained nests whose processor sub-rectangle
// changed execute the in-place Alltoallv; new nests scatter onto their
// allocated sub-rectangles. The executed exchange time is recorded on the
// event.
func (p *Pipeline) reconcileDistributed(newSet scenario.Set, diff scenario.Diff, event *AdaptationEvent) error {
	for _, id := range diff.Deleted {
		if nest, ok := p.dnests[id]; ok {
			nest.Feedback(p.model)
			delete(p.dnests, id)
		}
	}
	rects := p.tracker.Allocation().Rects
	for _, spec := range newSet {
		procs, ok := rects[spec.ID]
		if !ok {
			return fmt.Errorf("core: nest %d has no allocation", spec.ID)
		}
		nx, ny := spec.FineSize(wrfsim.NestRatio)
		procs = usableProcs(procs, nx, ny)
		if nest, exists := p.dnests[spec.ID]; exists {
			if nest.Procs() == procs {
				continue
			}
			elapsed, err := nest.Redistribute(p.compWorld, procs)
			if err != nil {
				return err
			}
			event.ExecutedRedistTime += elapsed
			continue
		}
		nest, err := p.model.NewParallelNest(spec.ID, spec.Region, p.tracker.Grid(), procs)
		if err != nil {
			return err
		}
		nest.SetTracer(p.tracer)
		p.dnests[spec.ID] = nest
	}
	return nil
}

// usableProcs clamps a nest's processor sub-rectangle so that every
// rank's block stays at least as wide as the halo — WRF likewise cannot
// decompose a small domain over arbitrarily many ranks. The clamp keeps
// the allocation's north-west anchor, so the usable rectangle is always a
// sub-rectangle of the allocated one.
func usableProcs(procs geom.Rect, nx, ny int) geom.Rect {
	const halo = 2 // wrfsim's halo width
	maxW := max(1, nx/halo)
	maxH := max(1, ny/halo)
	w := min(procs.Width(), maxW)
	h := min(procs.Height(), maxH)
	return geom.NewRect(procs.X0, procs.Y0, w, h)
}

// matchROIs assigns nest identities to the PDA output rectangles against
// the pipeline's current set.
func (p *Pipeline) matchROIs(rects []geom.Rect) scenario.Set {
	return MatchROIs(p.set, rects, &p.nextID)
}

// MatchROIs assigns nest identities to PDA output rectangles: a rectangle
// overlapping an existing nest's region retains that nest — ID *and*
// region, since a WRF nest domain is fixed once spawned ("a retained nest
// is one which was output by PDA in the previous invocation as well as in
// the current invocation", §IV); the rest are new nests numbered from
// *nextID. Each existing nest matches at most one rectangle (largest
// overlap wins, deterministically).
func MatchROIs(prev scenario.Set, rects []geom.Rect, nextID *int) scenario.Set {
	used := make(map[int]bool, len(prev))
	out := make(scenario.Set, 0, len(rects))
	type match struct {
		rectIdx int
		id      int
		overlap int
	}
	var matches []match
	for ri, r := range rects {
		for _, spec := range prev {
			if ov := r.Intersect(spec.Region).Area(); ov > 0 {
				matches = append(matches, match{ri, spec.ID, ov})
			}
		}
	}
	// Greedy best-overlap matching, deterministic order.
	for i := 0; i < len(matches); i++ {
		for j := i + 1; j < len(matches); j++ {
			mi, mj := matches[i], matches[j]
			if mj.overlap > mi.overlap ||
				(mj.overlap == mi.overlap && (mj.rectIdx < mi.rectIdx ||
					(mj.rectIdx == mi.rectIdx && mj.id < mi.id))) {
				matches[i], matches[j] = matches[j], matches[i]
			}
		}
	}
	assigned := make(map[int]int, len(rects)) // rect index → nest ID
	for _, m := range matches {
		if _, done := assigned[m.rectIdx]; done || used[m.id] {
			continue
		}
		assigned[m.rectIdx] = m.id
		used[m.id] = true
	}
	// Retained nests first (frozen regions), then new nests whose
	// rectangles do not overlap any already-accepted region — WRF sibling
	// domains must be disjoint, and a new ROI that overlaps a retained
	// nest is already being simulated at high resolution there.
	for ri := range rects {
		id, ok := assigned[ri]
		if !ok {
			continue
		}
		if id >= *nextID {
			*nextID = id + 1
		}
		spec, _ := prev.ByID(id)
		out = append(out, spec)
	}
	for ri, r := range rects {
		if _, retained := assigned[ri]; retained {
			continue
		}
		overlapsExisting := false
		for _, spec := range out {
			if r.Overlaps(spec.Region) {
				overlapsExisting = true
				break
			}
		}
		if overlapsExisting {
			continue
		}
		out = append(out, scenario.NestSpec{ID: *nextID, Region: r})
		*nextID++
	}
	return out
}
