package core

import (
	"math/rand"
	"testing"

	"nestdiff/internal/field"
	"nestdiff/internal/geom"
	"nestdiff/internal/mpi"
	"nestdiff/internal/redist"
	"nestdiff/internal/topology"
)

func redistWorld(t *testing.T, g geom.Grid) *mpi.World {
	t.Helper()
	net, err := topology.NewTorus3D(g, topology.TorusDimsFor(g.Size()), topology.DefaultTorusParams())
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(g.Size(), mpi.Config{Net: net, ContentionBytesPerSec: 40e9})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func randomField(nx, ny int, seed int64) *field.Field {
	f := field.New(nx, ny)
	rng := rand.New(rand.NewSource(seed))
	for i := range f.Data {
		f.Data[i] = rng.Float64()
	}
	return f
}

func fieldsEqual(a, b *field.Field) bool {
	if a.NX != b.NX || a.NY != b.NY {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

func TestRedistributeFieldPreservesData(t *testing.T) {
	// The whole point of the Alltoallv: after redistribution the new
	// owners hold exactly the original nest field.
	g := geom.NewGrid(8, 8)
	cases := []struct {
		name     string
		old, new geom.Rect
	}{
		{"disjoint move", geom.NewRect(0, 0, 4, 4), geom.NewRect(4, 4, 4, 4)},
		{"anchored grow", geom.NewRect(0, 0, 4, 4), geom.NewRect(0, 0, 6, 5)},
		{"shrink", geom.NewRect(0, 0, 6, 6), geom.NewRect(0, 0, 2, 3)},
		{"identity", geom.NewRect(2, 2, 4, 4), geom.NewRect(2, 2, 4, 4)},
		{"fig3 16to4", geom.NewRect(0, 0, 4, 4), geom.NewRect(4, 0, 2, 2)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := randomField(37, 29, 77)
			tr := redist.Transfer{NestID: 1, NX: 37, NY: 29, Old: c.old, New: c.new, ElemBytes: 8}
			dst, elapsed, err := RedistributeField(redistWorld(t, g), g, tr, src)
			if err != nil {
				t.Fatal(err)
			}
			if !fieldsEqual(src, dst) {
				t.Fatal("field corrupted by redistribution")
			}
			if c.name == "identity" {
				if elapsed != 0 {
					t.Fatalf("identity move cost %g", elapsed)
				}
			} else if elapsed <= 0 {
				t.Fatalf("redistribution cost %g, want > 0", elapsed)
			}
		})
	}
}

func TestRedistributeFieldOverlapIsCheaper(t *testing.T) {
	// The executed (virtual-time) cost must show the same ordering the
	// plans predict: overlapping old/new sub-grids beat disjoint ones.
	g := geom.NewGrid(8, 8)
	src := randomField(64, 64, 78)
	grow := redist.Transfer{NestID: 1, NX: 64, NY: 64,
		Old: geom.NewRect(0, 0, 4, 4), New: geom.NewRect(0, 0, 5, 4), ElemBytes: 8}
	far := redist.Transfer{NestID: 1, NX: 64, NY: 64,
		Old: geom.NewRect(0, 0, 4, 4), New: geom.NewRect(4, 4, 4, 4), ElemBytes: 8}
	_, tGrow, err := RedistributeField(redistWorld(t, g), g, grow, src)
	if err != nil {
		t.Fatal(err)
	}
	_, tFar, err := RedistributeField(redistWorld(t, g), g, far, src)
	if err != nil {
		t.Fatal(err)
	}
	if tGrow >= tFar {
		t.Fatalf("overlapping redistribution (%g) not cheaper than disjoint (%g)", tGrow, tFar)
	}
}

func TestRedistributeFieldValidation(t *testing.T) {
	g := geom.NewGrid(4, 4)
	w := redistWorld(t, g)
	src := randomField(16, 16, 79)
	good := redist.Transfer{NestID: 1, NX: 16, NY: 16,
		Old: geom.NewRect(0, 0, 2, 2), New: geom.NewRect(2, 2, 2, 2), ElemBytes: 8}

	bad := good
	bad.NX = 20
	if _, _, err := RedistributeField(w, g, bad, src); err == nil {
		t.Error("mismatched field size accepted")
	}
	bad = good
	bad.Old = geom.Rect{}
	if _, _, err := RedistributeField(w, g, bad, src); err == nil {
		t.Error("empty old sub-rect accepted")
	}
	bad = good
	bad.New = geom.NewRect(3, 3, 4, 4)
	if _, _, err := RedistributeField(w, g, bad, src); err == nil {
		t.Error("out-of-grid new sub-rect accepted")
	}
	small, err := mpi.NewWorld(4, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RedistributeField(small, g, good, src); err == nil {
		t.Error("world/grid size mismatch accepted")
	}
}

func TestRedistributeFieldMatchesPlanMessageCount(t *testing.T) {
	// The executed exchange and the analytical plan must agree on the
	// exchange structure (total remote bytes).
	g := geom.NewGrid(8, 8)
	tr := redist.Transfer{NestID: 1, NX: 48, NY: 48,
		Old: geom.NewRect(0, 0, 4, 4), New: geom.NewRect(2, 0, 6, 3), ElemBytes: 8}
	plan, err := redist.BuildPlan(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	src := randomField(48, 48, 80)
	dst, _, err := RedistributeField(redistWorld(t, g), g, tr, src)
	if err != nil {
		t.Fatal(err)
	}
	if !fieldsEqual(src, dst) {
		t.Fatal("data corrupted")
	}
	remote := 0
	for _, m := range plan.Msgs {
		remote += m.Bytes
	}
	if remote+plan.LocalBytes != 48*48*8 {
		t.Fatalf("plan does not conserve bytes: %d + %d", remote, plan.LocalBytes)
	}
}

func TestRedistributeFieldNonDivisible(t *testing.T) {
	// Resizes rarely divide evenly: a 13×9 field over 7 ranks leaves
	// ragged blocks (13/7), and shrinking to 3 re-cuts them along
	// different boundaries. Every cut must still move each element to
	// exactly one new owner — element-exact, no loss, no duplication.
	cases := []struct {
		name     string
		grid     geom.Grid
		nx, ny   int
		old, new geom.Rect
	}{
		{"shrink 7 ranks to 3", geom.NewGrid(7, 1), 13, 9,
			geom.NewRect(0, 0, 7, 1), geom.NewRect(0, 0, 3, 1)},
		{"grow 3 ranks to 7", geom.NewGrid(7, 1), 13, 9,
			geom.NewRect(0, 0, 3, 1), geom.NewRect(0, 0, 7, 1)},
		{"2d shrink with offset", geom.NewGrid(3, 3), 17, 11,
			geom.NewRect(0, 0, 3, 3), geom.NewRect(1, 1, 2, 1)},
		{"2d grow from corner", geom.NewGrid(3, 3), 17, 11,
			geom.NewRect(2, 2, 1, 1), geom.NewRect(0, 0, 3, 3)},
		{"prime everything", geom.NewGrid(5, 1), 7, 5,
			geom.NewRect(0, 0, 5, 1), geom.NewRect(1, 0, 2, 1)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := randomField(c.nx, c.ny, 81)
			tr := redist.Transfer{NestID: 1, NX: c.nx, NY: c.ny,
				Old: c.old, New: c.new, ElemBytes: 8}
			dst, elapsed, err := RedistributeField(redistWorld(t, c.grid), c.grid, tr, src)
			if err != nil {
				t.Fatal(err)
			}
			if !fieldsEqual(src, dst) {
				t.Fatal("field corrupted by non-divisible redistribution")
			}
			if elapsed <= 0 {
				t.Fatalf("redistribution cost %g, want > 0", elapsed)
			}
		})
	}
}
