// Package core is the paper's framework: it tracks multiple dynamically
// varying nests across adaptation points, reallocates processors with
// either the partition-from-scratch strategy (§IV-A), the tree-based
// hierarchical diffusion strategy (§IV-B), or the dynamic strategy that
// predicts both and picks the cheaper (§IV-C), and accounts for both the
// predicted and the "actual" (oracle/contention-modelled) execution and
// redistribution costs that the evaluation section reports.
package core

import (
	"fmt"
	"time"

	"nestdiff/internal/alloc"
	"nestdiff/internal/geom"
	"nestdiff/internal/obs"
	"nestdiff/internal/perfmodel"
	"nestdiff/internal/redist"
	"nestdiff/internal/scenario"
	"nestdiff/internal/topology"
	"nestdiff/internal/wrfsim"
)

// Strategy selects the reallocation policy.
type Strategy int

const (
	// Scratch rebuilds the Huffman tree ignoring the current allocation.
	Scratch Strategy = iota
	// Diffusion reorganizes the existing tree (Algorithm 3).
	Diffusion
	// Dynamic predicts execution + redistribution time for both and picks
	// the smaller sum (§IV-C).
	Dynamic
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Scratch:
		return "scratch"
	case Diffusion:
		return "diffusion"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a Tracker.
type Options struct {
	// ElemBytes is the per-grid-point payload redistributed for a nest
	// (all prognostic fields). WRF moves O(100) bytes per point; the
	// default is 256.
	ElemBytes int
	// ContentionBytesPerSec adds the link-contention term to *actual*
	// redistribution times. Zero disables it.
	ContentionBytesPerSec float64
	// PredictedContentionBytesPerSec is the dynamic strategy's calibrated
	// estimate of the contention term (§IV-C1 predictions). It deviates
	// from the actual constant, which is what makes the dynamic decisions
	// imperfect (10 of 12 in the paper). Zero disables the term in
	// predictions.
	PredictedContentionBytesPerSec float64
	// Ratio is the nest refinement ratio (3 in the paper).
	Ratio int
}

// DefaultOptions returns the evaluation defaults. ElemBytes models WRF's
// full per-column state (≈35 vertical levels × ~30 3D arrays × 4 bytes);
// the contention constant reflects the effective aggregate all-to-all
// bandwidth of a heavily shared torus partition.
func DefaultOptions() Options {
	return Options{
		ElemBytes:                      4096,
		ContentionBytesPerSec:          2e9,
		PredictedContentionBytesPerSec: 3e9,
		Ratio:                          wrfsim.NestRatio,
	}
}

// StepMetrics records one adaptation point.
type StepMetrics struct {
	// Used is the strategy that produced the new allocation (for Dynamic
	// this is the picked one).
	Used Strategy
	// RedistTime and ExecTime are the "actual" modelled costs of the
	// applied allocation: redistribution with contention, execution from
	// the oracle (max over simultaneously running nests).
	RedistTime float64
	ExecTime   float64
	// PredictedRedistTime and PredictedExecTime are the §IV-C predictions
	// for the applied allocation.
	PredictedRedistTime float64
	PredictedExecTime   float64
	// Redist carries the hop-bytes/overlap metrics of the applied
	// redistribution.
	Redist redist.Metrics
	// DynamicCorrect reports, for Dynamic steps with both candidates
	// available, whether the pick minimized the actual total.
	DynamicCorrect bool
	// CandidateTotals holds the actual exec+redist totals for both
	// candidates (indexed by Scratch and Diffusion) on Dynamic steps.
	CandidateTotals map[Strategy]float64
}

// Tracker owns the nest allocation state on one machine configuration.
type Tracker struct {
	grid     geom.Grid
	net      topology.Network
	model    *perfmodel.ExecModel
	oracle   *perfmodel.Oracle
	strategy Strategy
	opts     Options

	cur   *alloc.Allocation
	specs scenario.Set
	steps []StepMetrics

	tracer    *obs.Tracer
	traceStep int // pipeline step of the decision about to be made
}

// NewTracker builds a tracker for the given process grid and network.
func NewTracker(g geom.Grid, net topology.Network, model *perfmodel.ExecModel, oracle *perfmodel.Oracle, strategy Strategy, opts Options) (*Tracker, error) {
	if net == nil || model == nil || oracle == nil {
		return nil, fmt.Errorf("core: nil dependency")
	}
	if net.Size() < g.Size() {
		return nil, fmt.Errorf("core: network of %d ranks for grid of %d", net.Size(), g.Size())
	}
	if opts.ElemBytes <= 0 {
		return nil, fmt.Errorf("core: invalid element size %d", opts.ElemBytes)
	}
	if opts.Ratio < 1 {
		return nil, fmt.Errorf("core: invalid refinement ratio %d", opts.Ratio)
	}
	return &Tracker{grid: g, net: net, model: model, oracle: oracle, strategy: strategy, opts: opts}, nil
}

// Allocation returns the current allocation (nil before the first Apply).
func (t *Tracker) Allocation() *alloc.Allocation { return t.cur }

// Grid returns the process grid the tracker allocates over.
func (t *Tracker) Grid() geom.Grid { return t.grid }

// Net returns the tracker's network model.
func (t *Tracker) Net() topology.Network { return t.net }

// Strategy returns the reallocation policy the tracker applies.
func (t *Tracker) Strategy() Strategy { return t.strategy }

// Options returns the tracker's cost-model options.
func (t *Tracker) Options() Options { return t.opts }

// Steps returns the per-adaptation-point metrics recorded so far.
func (t *Tracker) Steps() []StepMetrics { return t.steps }

// SetTracer installs a structured tracer (nil removes it): every Apply
// then emits one decision event recording the strategy used, the
// predicted and actual exec+redist cost, the allocator build times, and
// on dynamic steps whether the prediction picked the actually-cheaper
// candidate. With a nil tracer Apply pays one pointer check.
func (t *Tracker) SetTracer(tr *obs.Tracer) { t.tracer = tr }

// SetTraceStep records the pipeline step the next Apply's decision event
// is scoped to (the tracker itself has no step counter).
func (t *Tracker) SetTraceStep(step int) { t.traceStep = step }

// weights derives the allocation weights of a nest set: the predicted
// execution-time ratios (§IV), evaluated at an equal processor share.
func (t *Tracker) weights(set scenario.Set) (map[int]float64, error) {
	if len(set) == 0 {
		return map[int]float64{}, nil
	}
	share := t.grid.Size() / len(set)
	if share < 1 {
		share = 1
	}
	out := make(map[int]float64, len(set))
	for _, n := range set {
		nx, ny := n.FineSize(t.opts.Ratio)
		pred, err := t.model.Predict(nx, ny, share)
		if err != nil {
			return nil, fmt.Errorf("core: weight for nest %d: %w", n.ID, err)
		}
		out[n.ID] = pred
	}
	return out, nil
}

// fineSizes maps nest IDs to fine-domain extents for redistribution plans.
func (t *Tracker) fineSizes(set scenario.Set) map[int][2]int {
	out := make(map[int][2]int, len(set))
	for _, n := range set {
		nx, ny := n.FineSize(t.opts.Ratio)
		out[n.ID] = [2]int{nx, ny}
	}
	return out
}

// actualRedistTime models the measured redistribution time: the §IV-C1
// per-pair time plus the link-contention term the predictor does not see.
func (t *Tracker) actualRedistTime(plans []redist.Plan) float64 {
	m := redist.Measure(t.net, plans)
	time := m.Time
	if t.opts.ContentionBytesPerSec > 0 {
		time += m.HopBytes / t.opts.ContentionBytesPerSec
	}
	return time
}

// execTimes returns the actual (oracle) and predicted execution time of an
// allocation: nests run simultaneously on disjoint processor subsets, so
// the interval cost is the maximum over nests.
func (t *Tracker) execTimes(a *alloc.Allocation, set scenario.Set) (actual, predicted float64, err error) {
	for _, n := range set {
		r, ok := a.Rects[n.ID]
		if !ok {
			return 0, 0, fmt.Errorf("core: nest %d missing from allocation", n.ID)
		}
		nx, ny := n.FineSize(t.opts.Ratio)
		if got := t.oracle.ExecTime(nx, ny, r.Area(), r.AspectRatio()); got > actual {
			actual = got
		}
		p, err := t.model.PredictRect(nx, ny, r)
		if err != nil {
			return 0, 0, err
		}
		if p > predicted {
			predicted = p
		}
	}
	return actual, predicted, nil
}

// candidate bundles one evaluated reallocation option.
type candidate struct {
	strategy  Strategy
	a         *alloc.Allocation
	plans     []redist.Plan
	actRedist float64
	actExec   float64
	predRe    float64
	predExec  float64
	metrics   redist.Metrics
}

func (t *Tracker) evaluate(strategy Strategy, a *alloc.Allocation, set scenario.Set) (candidate, error) {
	plans, err := redist.PlansForChange(t.grid, t.cur.Rects, a.Rects, t.fineSizes(set), t.opts.ElemBytes)
	if err != nil {
		return candidate{}, err
	}
	actExec, predExec, err := t.execTimes(a, set)
	if err != nil {
		return candidate{}, err
	}
	m := redist.Measure(t.net, plans)
	predRe := m.Time
	if t.opts.PredictedContentionBytesPerSec > 0 {
		predRe += m.HopBytes / t.opts.PredictedContentionBytesPerSec
	}
	return candidate{
		strategy:  strategy,
		a:         a,
		plans:     plans,
		actRedist: t.actualRedistTime(plans),
		actExec:   actExec,
		predRe:    predRe,
		predExec:  predExec,
		metrics:   m,
	}, nil
}

// Apply transitions the tracker to the new nest configuration, returning
// the metrics of the adaptation point. The first call establishes the
// initial allocation (no redistribution).
func (t *Tracker) Apply(set scenario.Set) (StepMetrics, error) {
	weights, err := t.weights(set)
	if err != nil {
		return StepMetrics{}, err
	}

	// Initial allocation, or an empty configuration: partition from
	// scratch (there is nothing to diffuse from).
	if t.cur == nil || len(t.cur.Rects) == 0 || len(set) == 0 {
		var t0 time.Time
		if t.tracer != nil {
			t0 = time.Now()
		}
		a, err := alloc.Scratch(t.grid, weights)
		if err != nil {
			return StepMetrics{}, err
		}
		scratchNS := int64(0)
		if t.tracer != nil {
			scratchNS = time.Since(t0).Nanoseconds()
		}
		actExec, predExec, err := t.execTimes(a, set)
		if err != nil {
			return StepMetrics{}, err
		}
		sm := StepMetrics{Used: Scratch, ExecTime: actExec, PredictedExecTime: predExec}
		t.cur, t.specs = a, set
		t.steps = append(t.steps, sm)
		t.traceDecision(sm, scratchNS, 0)
		return sm, nil
	}

	change, err := t.buildChange(set, weights)
	if err != nil {
		return StepMetrics{}, err
	}

	traced := t.tracer != nil
	var scratchNS, diffusionNS int64
	var cands []candidate
	if t.strategy == Scratch || t.strategy == Dynamic {
		var t0 time.Time
		if traced {
			t0 = time.Now()
		}
		a, err := alloc.Scratch(t.grid, weights)
		if err != nil {
			return StepMetrics{}, err
		}
		if traced {
			scratchNS = time.Since(t0).Nanoseconds()
		}
		c, err := t.evaluate(Scratch, a, set)
		if err != nil {
			return StepMetrics{}, err
		}
		cands = append(cands, c)
	}
	if t.strategy == Diffusion || t.strategy == Dynamic {
		var t0 time.Time
		if traced {
			t0 = time.Now()
		}
		a, err := alloc.Diffusion(t.grid, t.cur, change)
		if err != nil {
			return StepMetrics{}, err
		}
		if traced {
			diffusionNS = time.Since(t0).Nanoseconds()
		}
		c, err := t.evaluate(Diffusion, a, set)
		if err != nil {
			return StepMetrics{}, err
		}
		cands = append(cands, c)
	}

	pick := cands[0]
	sm := StepMetrics{}
	if t.strategy == Dynamic {
		// Choose the candidate with the smaller *predicted* total.
		if cands[1].predRe+cands[1].predExec < cands[0].predRe+cands[0].predExec {
			pick = cands[1]
		}
		best := cands[0]
		totals := map[Strategy]float64{}
		for _, c := range cands {
			totals[c.strategy] = c.actRedist + c.actExec
			if c.actRedist+c.actExec < best.actRedist+best.actExec {
				best = c
			}
		}
		sm.CandidateTotals = totals
		sm.DynamicCorrect = pick.strategy == best.strategy
	}

	sm.Used = pick.strategy
	sm.RedistTime = pick.actRedist
	sm.ExecTime = pick.actExec
	sm.PredictedRedistTime = pick.predRe
	sm.PredictedExecTime = pick.predExec
	sm.Redist = pick.metrics

	t.cur, t.specs = pick.a, set
	t.steps = append(t.steps, sm)
	t.traceDecision(sm, scratchNS, diffusionNS)
	return sm, nil
}

// traceDecision emits one decision event for an applied StepMetrics.
// Exactly one decision event is emitted per Apply call, so a traced run's
// decision records match its adaptation events one-to-one.
func (t *Tracker) traceDecision(sm StepMetrics, scratchNS, diffusionNS int64) {
	if t.tracer == nil {
		return
	}
	ev := obs.Event{
		Kind:        obs.KindDecision,
		Step:        t.traceStep,
		Strategy:    sm.Used.String(),
		Predicted:   sm.PredictedRedistTime + sm.PredictedExecTime,
		Actual:      sm.RedistTime + sm.ExecTime,
		ScratchNS:   scratchNS,
		DiffusionNS: diffusionNS,
		HopBytes:    sm.Redist.HopBytes,
		RedistBytes: int64(sm.Redist.RemoteBytes),
	}
	if sm.CandidateTotals != nil {
		ev.Dynamic = true
		ev.Correct = sm.DynamicCorrect
		for st, tot := range sm.CandidateTotals {
			if st != sm.Used {
				ev.AltActual = tot
			}
		}
	}
	t.tracer.Emit(ev)
}

// buildChange converts a new nest set into an alloc.Change against the
// current allocation.
func (t *Tracker) buildChange(set scenario.Set, weights map[int]float64) (alloc.Change, error) {
	d := scenario.DiffSets(t.specs, set)
	c := alloc.Change{
		Deleted:  d.Deleted,
		Retained: map[int]float64{},
		Added:    map[int]float64{},
	}
	for _, id := range d.Retained {
		c.Retained[id] = weights[id]
	}
	for _, id := range d.Added {
		c.Added[id] = weights[id]
	}
	return c, c.Validate(t.cur)
}

// Totals sums the actual execution and redistribution time over all
// recorded steps (the quantities of Fig. 12).
func (t *Tracker) Totals() (exec, redistTime float64) {
	for _, s := range t.steps {
		exec += s.ExecTime
		redistTime += s.RedistTime
	}
	return exec, redistTime
}
