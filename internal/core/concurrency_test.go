package core

import (
	"testing"

	"nestdiff/internal/geom"
	"nestdiff/internal/obs"
	"nestdiff/internal/pda"
	"nestdiff/internal/perfmodel"
	"nestdiff/internal/topology"
	"nestdiff/internal/wrfsim"
)

// These tests pin the concurrency contract of Pipeline.stepNests: nests
// touch pairwise-disjoint state, so stepping them from a bounded worker
// group must produce results bit-identical to sequential stepping —
// the same parent field, the same nest fields, the same adaptation
// events, the same nest identities.

// concurrencyPipeline builds a seeded multi-storm pipeline with the given
// nest worker bound. testing.TB so benchmarks can share it.
func concurrencyPipeline(tb testing.TB, nestWorkers int, distributed bool) *Pipeline {
	tb.Helper()
	wcfg := wrfsim.DefaultConfig()
	wcfg.NX, wcfg.NY = 96, 72
	wcfg.SpawnRate = 0
	m, err := wrfsim.NewModel(wcfg)
	if err != nil {
		tb.Fatal(err)
	}
	for _, c := range []wrfsim.Cell{
		{X: 18, Y: 16, Radius: 5, Peak: 2.5, Life: 8 * 3600},
		{X: 70, Y: 52, Radius: 4, Peak: 2.2, Life: 8 * 3600},
		{X: 48, Y: 30, Radius: 4, Peak: 2.0, Life: 8 * 3600},
		{X: 20, Y: 55, Radius: 4, Peak: 1.9, Life: 8 * 3600},
	} {
		if err := m.InjectCell(c); err != nil {
			tb.Fatal(err)
		}
	}
	g := geom.NewGrid(8, 6)
	net, err := topology.NewTorus3D(g, topology.TorusDimsFor(g.Size()), topology.DefaultTorusParams())
	if err != nil {
		tb.Fatal(err)
	}
	oracle := perfmodel.DefaultOracle()
	model, err := perfmodel.Profile(oracle, perfmodel.DefaultSampleDomains(), perfmodel.DefaultProcSizes())
	if err != nil {
		tb.Fatal(err)
	}
	tracker, err := NewTracker(g, net, model, oracle, Diffusion, DefaultOptions())
	if err != nil {
		tb.Fatal(err)
	}
	p, err := NewPipeline(m, tracker, PipelineConfig{
		WRFGrid:       geom.NewGrid(8, 6),
		AnalysisRanks: 6,
		Interval:      5,
		PDA:           pda.DefaultOptions(),
		MaxNests:      6,
		Distributed:   distributed,
		NestWorkers:   nestWorkers,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

func sameEvents(t *testing.T, seq, conc []AdaptationEvent) {
	t.Helper()
	if len(seq) != len(conc) {
		t.Fatalf("event counts differ: sequential %d, concurrent %d", len(seq), len(conc))
	}
	for i := range seq {
		a, b := seq[i], conc[i]
		if a.Step != b.Step || len(a.Set) != len(b.Set) ||
			len(a.Diff.Added) != len(b.Diff.Added) ||
			len(a.Diff.Deleted) != len(b.Diff.Deleted) ||
			len(a.Diff.Retained) != len(b.Diff.Retained) {
			t.Fatalf("adaptation event %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Set {
			if a.Set[j] != b.Set[j] {
				t.Fatalf("event %d nest spec %d differs: %+v vs %+v", i, j, a.Set[j], b.Set[j])
			}
		}
	}
}

func TestConcurrentSerialNestsMatchSequential(t *testing.T) {
	seq := concurrencyPipeline(t, 1, false)
	conc := concurrencyPipeline(t, 4, false)
	const steps = 40
	if err := seq.Run(steps); err != nil {
		t.Fatal(err)
	}
	if err := conc.Run(steps); err != nil {
		t.Fatal(err)
	}

	sameEvents(t, seq.Events(), conc.Events())
	for i := range seq.Model().QCloud().Data {
		if seq.Model().QCloud().Data[i] != conc.Model().QCloud().Data[i] {
			t.Fatalf("parent field sample %d differs between worker counts", i)
		}
	}
	if len(seq.Nests()) == 0 {
		t.Fatal("scenario spawned no nests; concurrency untested")
	}
	if len(seq.Nests()) != len(conc.Nests()) {
		t.Fatalf("nest counts differ: %d vs %d", len(seq.Nests()), len(conc.Nests()))
	}
	for id, a := range seq.Nests() {
		b, ok := conc.Nests()[id]
		if !ok {
			t.Fatalf("nest %d missing from concurrent run", id)
		}
		for i := range a.QCloud().Data {
			if a.QCloud().Data[i] != b.QCloud().Data[i] {
				t.Fatalf("nest %d sample %d differs between worker counts", id, i)
			}
		}
	}
	t.Logf("compared %d nests bit-identically", len(seq.Nests()))
}

func TestConcurrentDistributedNestsMatchSequential(t *testing.T) {
	seq := concurrencyPipeline(t, 1, true)
	conc := concurrencyPipeline(t, 4, true)
	const steps = 40
	if err := seq.Run(steps); err != nil {
		t.Fatal(err)
	}
	if err := conc.Run(steps); err != nil {
		t.Fatal(err)
	}

	sameEvents(t, seq.Events(), conc.Events())
	if len(seq.DistributedNests()) == 0 {
		t.Fatal("scenario spawned no distributed nests; concurrency untested")
	}
	if len(seq.DistributedNests()) != len(conc.DistributedNests()) {
		t.Fatalf("nest counts differ: %d vs %d",
			len(seq.DistributedNests()), len(conc.DistributedNests()))
	}
	for id, a := range seq.DistributedNests() {
		b, ok := conc.DistributedNests()[id]
		if !ok {
			t.Fatalf("nest %d missing from concurrent run", id)
		}
		if a.Procs() != b.Procs() {
			t.Fatalf("nest %d procs differ: %v vs %v", id, a.Procs(), b.Procs())
		}
		ga, gb := a.Gather(), b.Gather()
		for i := range ga.Data {
			if ga.Data[i] != gb.Data[i] {
				t.Fatalf("nest %d sample %d differs between worker counts", id, i)
			}
		}
	}
	t.Logf("compared %d distributed nests bit-identically", len(seq.DistributedNests()))
}

func TestNestStepEventsEmitted(t *testing.T) {
	p := concurrencyPipeline(t, 0, false)
	tr := obs.New(obs.Options{})
	p.SetTracer(tr)
	if err := p.Run(20); err != nil {
		t.Fatal(err)
	}
	events, _ := tr.Events()
	perNest := 0
	nests := map[int]bool{}
	for _, e := range events {
		if e.Kind == "nest-step" {
			perNest++
			nests[e.NestID] = true
			if e.DurNS < 0 {
				t.Fatalf("nest-step event with negative duration: %+v", e)
			}
		}
	}
	if perNest == 0 || len(nests) < 2 {
		t.Fatalf("expected per-nest step events for several nests, got %d events over %d nests",
			perNest, len(nests))
	}
}

// BenchmarkPipelineStepMultiNest measures whole pipeline steps while
// several nests are live, sequentially and with the bounded worker group.
func BenchmarkPipelineStepMultiNest(b *testing.B) {
	run := func(b *testing.B, workers int) {
		p := concurrencyPipeline(b, workers, false)
		// Run until the storms are detected and nests exist, then measure.
		if err := p.Run(25); err != nil {
			b.Fatal(err)
		}
		if len(p.Nests()) < 2 {
			b.Fatalf("scenario spawned %d nests, want >= 2", len(p.Nests()))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.Step(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, 1) })
	b.Run("concurrent", func(b *testing.B) { run(b, 0) })
}
