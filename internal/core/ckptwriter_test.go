package core

import (
	"bytes"
	"errors"
	"testing"

	"nestdiff/internal/geom"
)

// cutBlob encodes one checkpoint blob and returns a stable copy (the
// writer's arenas recycle every other Encode, so tests that accumulate a
// chain must copy each blob before the next cut).
func cutBlob(t *testing.T, cw *CheckpointWriter, p *Pipeline) ([]byte, bool) {
	t.Helper()
	blob, full, err := cw.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), blob...), full
}

// runDeltaChainRoundTrip cuts a full base at step k, then delta
// checkpoints every interval steps, restores the assembled chain, and
// verifies the resumed run reproduces the uninterrupted run's adaptation
// events and final nest set exactly — both delta flavors must be
// bit-identical to the full-save path.
func runDeltaChainRoundTrip(t *testing.T, distributed, fieldDeltas bool) {
	t.Helper()
	const k, segs, interval, total = 60, 4, 20, 180
	const cut = k + segs*interval
	g := geom.NewGrid(8, 6)

	ref := checkpointPipeline(t, g, Diffusion, distributed)
	if err := ref.Run(total); err != nil {
		t.Fatal(err)
	}

	chk := checkpointPipeline(t, g, Diffusion, distributed)
	cw := NewCheckpointWriter(CheckpointWriterOptions{MaxDeltas: 64, FieldDeltas: fieldDeltas})
	if err := chk.Run(k); err != nil {
		t.Fatal(err)
	}
	base, full := cutBlob(t, cw, chk)
	if !full {
		t.Fatal("first checkpoint cut was not a full base")
	}
	chain := append([]byte(nil), base...)
	deltaBytes := 0
	for i := 0; i < segs; i++ {
		if err := chk.Run(interval); err != nil {
			t.Fatal(err)
		}
		blob, full := cutBlob(t, cw, chk)
		if full {
			t.Fatalf("cut %d was a full base, want a delta (MaxDeltas 64)", i+1)
		}
		deltaBytes += len(blob)
		chain = append(chain, blob...)
	}
	eventsAtCut := len(chk.Events())

	// Replay deltas must be materially smaller than the base they extend —
	// that is the point of the chain. Field-diff deltas of advected fields
	// are not (every word changes), which is why replay is the default.
	if avg := deltaBytes / segs; !fieldDeltas && avg >= len(base)/20 {
		t.Fatalf("average replay delta blob %d bytes, want well under 1/20 of the %d-byte base", avg, len(base))
	}

	// The assembled chain is structurally valid: linked seq/crc blobs.
	if err := ValidateCheckpoint(chain); err != nil {
		t.Fatalf("assembled chain failed validation: %v", err)
	}
	off := 0
	var prevCRC uint32
	for seq := uint32(0); off < len(chain); seq++ {
		h, _, size, err := parseBlob(chain[off:])
		if err != nil {
			t.Fatalf("blob %d: %v", seq, err)
		}
		if h.seq != seq || h.delta != (seq > 0) || h.link != prevCRC {
			t.Fatalf("blob %d header {seq %d delta %v link %#x}, want {seq %d delta %v link %#x}",
				seq, h.seq, h.delta, h.link, seq, seq > 0, prevCRC)
		}
		prevCRC = h.crc
		off += size
	}

	net, model, oracle := testEnv(t, g)
	resumed, err := RestorePipeline(bytes.NewReader(chain), net, model, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.StepCount() != cut {
		t.Fatalf("restored pipeline at step %d, want %d", resumed.StepCount(), cut)
	}
	if len(resumed.Events()) != eventsAtCut {
		t.Fatalf("restored pipeline has %d events, want %d", len(resumed.Events()), eventsAtCut)
	}
	if err := resumed.Run(total - cut); err != nil {
		t.Fatal(err)
	}

	refEvents, resEvents := ref.Events(), resumed.Events()
	if len(refEvents) != len(resEvents) {
		t.Fatalf("event count diverged: uninterrupted %d, resumed %d", len(refEvents), len(resEvents))
	}
	if len(refEvents) == eventsAtCut {
		t.Fatal("no adaptation events after the last delta; tail comparison is vacuous")
	}
	for i := eventsAtCut; i < len(refEvents); i++ {
		a, b := refEvents[i], resEvents[i]
		if a.Step != b.Step || !stepMetricsEqual(a.Metrics, b.Metrics) ||
			a.ExecutedRedistTime != b.ExecutedRedistTime {
			t.Fatalf("event %d diverged:\nuninterrupted %+v\nresumed       %+v", i, a, b)
		}
	}
	a, b := ref.ActiveSet(), resumed.ActiveSet()
	if len(a) != len(b) {
		t.Fatalf("final nest sets differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("final nest %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCheckpointDeltaChainRoundTripSerial(t *testing.T) {
	runDeltaChainRoundTrip(t, false, false)
}

func TestCheckpointDeltaChainRoundTripDistributed(t *testing.T) {
	runDeltaChainRoundTrip(t, true, false)
}

func TestCheckpointFieldDeltaChainRoundTripSerial(t *testing.T) {
	runDeltaChainRoundTrip(t, false, true)
}

func TestCheckpointFieldDeltaChainRoundTripDistributed(t *testing.T) {
	runDeltaChainRoundTrip(t, true, true)
}

// TestCheckpointWriterMaxDeltasForcesBase: the chain length bound. After
// MaxDeltas delta cuts the writer must start a fresh full base, so restore
// cost and torn-tail blast radius stay bounded.
func TestCheckpointWriterMaxDeltasForcesBase(t *testing.T) {
	p := checkpointPipeline(t, geom.NewGrid(8, 6), Diffusion, false)
	cw := NewCheckpointWriter(CheckpointWriterOptions{MaxDeltas: 2})
	want := []bool{true, false, false, true, false, false, true}
	for i, wantFull := range want {
		if err := p.Run(5); err != nil {
			t.Fatal(err)
		}
		_, full := cutBlob(t, cw, p)
		if full != wantFull {
			t.Fatalf("cut %d: full = %v, want %v (MaxDeltas 2)", i, full, wantFull)
		}
	}
}

// TestCheckpointWriterNegativeMaxDeltasAlwaysFull: MaxDeltas < 0 disables
// deltas entirely (the SaveState configuration).
func TestCheckpointWriterNegativeMaxDeltasAlwaysFull(t *testing.T) {
	p := checkpointPipeline(t, geom.NewGrid(8, 6), Diffusion, false)
	cw := NewCheckpointWriter(CheckpointWriterOptions{MaxDeltas: -1})
	for i := 0; i < 3; i++ {
		if err := p.Run(5); err != nil {
			t.Fatal(err)
		}
		blob, full := cutBlob(t, cw, p)
		if !full {
			t.Fatalf("cut %d: got a delta with MaxDeltas -1", i)
		}
		// Each full blob restores standalone.
		g := geom.NewGrid(8, 6)
		net, model, oracle := testEnv(t, g)
		restored, err := RestorePipeline(bytes.NewReader(blob), net, model, oracle)
		if err != nil {
			t.Fatalf("cut %d: standalone restore: %v", i, err)
		}
		if restored.StepCount() != p.StepCount() {
			t.Fatalf("cut %d restored at step %d, want %d", i, restored.StepCount(), p.StepCount())
		}
	}
}

// TestCheckpointWriterInvalidateForcesBase: after Invalidate (the
// scheduler calls it on failed persists and after elastic resizes) the
// next cut must be a self-contained full base with reset chain links.
func TestCheckpointWriterInvalidateForcesBase(t *testing.T) {
	p := checkpointPipeline(t, geom.NewGrid(8, 6), Diffusion, false)
	cw := NewCheckpointWriter(CheckpointWriterOptions{MaxDeltas: 64})
	if err := p.Run(20); err != nil {
		t.Fatal(err)
	}
	cutBlob(t, cw, p)
	if err := p.Run(5); err != nil {
		t.Fatal(err)
	}
	if _, full := cutBlob(t, cw, p); full {
		t.Fatal("second cut should have been a delta")
	}
	cw.Invalidate()
	if err := p.Run(5); err != nil {
		t.Fatal(err)
	}
	blob, full := cutBlob(t, cw, p)
	if !full {
		t.Fatal("cut after Invalidate was not a full base")
	}
	h, _, _, err := parseBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	if h.delta || h.seq != 0 || h.link != 0 {
		t.Fatalf("post-Invalidate base has chain links {delta %v seq %d link %#x}", h.delta, h.seq, h.link)
	}
	g := geom.NewGrid(8, 6)
	net, model, oracle := testEnv(t, g)
	restored, err := RestorePipeline(bytes.NewReader(blob), net, model, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if restored.StepCount() != p.StepCount() {
		t.Fatalf("restored at step %d, want %d", restored.StepCount(), p.StepCount())
	}
}

// TestRestoreDeltaChainBrokenTailFallsBack: damage confined to the delta
// tail — torn mid-blob, a flipped payload bit, or a severed link — must
// not lose the checkpoint. Restore falls back to the longest valid prefix
// and ValidateCheckpoint reports ErrDeltaChainBroken so callers can count
// the truncation. Damage to the base itself stays fatal.
func TestRestoreDeltaChainBrokenTailFallsBack(t *testing.T) {
	g := geom.NewGrid(8, 6)
	p := checkpointPipeline(t, g, Diffusion, false)
	cw := NewCheckpointWriter(CheckpointWriterOptions{MaxDeltas: 64})
	if err := p.Run(60); err != nil {
		t.Fatal(err)
	}
	base, _ := cutBlob(t, cw, p)
	if err := p.Run(5); err != nil {
		t.Fatal(err)
	}
	d1, _ := cutBlob(t, cw, p)
	if err := p.Run(5); err != nil {
		t.Fatal(err)
	}
	d2, _ := cutBlob(t, cw, p)
	chain := append(append(append([]byte(nil), base...), d1...), d2...)

	cases := []struct {
		name     string
		mutate   func() []byte
		wantStep int
	}{
		{"torn mid final delta", func() []byte {
			return chain[:len(base)+len(d1)+len(d2)/2]
		}, 65},
		{"torn final delta header", func() []byte {
			return chain[:len(base)+len(d1)+3]
		}, 65},
		{"flipped bit in final delta", func() []byte {
			c := append([]byte(nil), chain...)
			c[len(base)+len(d1)+ckptV2HeaderLen+8] ^= 0x10
			return c
		}, 65},
		{"torn first delta", func() []byte {
			return chain[:len(base)+len(d1)/2]
		}, 60},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate()
			if err := ValidateCheckpoint(data); !errors.Is(err, ErrDeltaChainBroken) {
				t.Fatalf("ValidateCheckpoint = %v, want ErrDeltaChainBroken", err)
			}
			net, model, oracle := testEnv(t, g)
			restored, err := RestorePipeline(bytes.NewReader(data), net, model, oracle)
			if err != nil {
				t.Fatalf("broken-tail chain did not restore from its prefix: %v", err)
			}
			if restored.StepCount() != tc.wantStep {
				t.Fatalf("restored at step %d, want %d (longest valid prefix)", restored.StepCount(), tc.wantStep)
			}
		})
	}

	t.Run("torn base is fatal", func(t *testing.T) {
		data := chain[:len(base)/2]
		err := ValidateCheckpoint(data)
		if err == nil {
			t.Fatal("torn base accepted")
		}
		if errors.Is(err, ErrDeltaChainBroken) {
			t.Fatalf("torn base reported as a recoverable broken chain: %v", err)
		}
		net, model, oracle := testEnv(t, g)
		if _, err := RestorePipeline(bytes.NewReader(data), net, model, oracle); err == nil {
			t.Fatal("torn base restored")
		}
	})
}
