package perfmodel

import "math"

// Oracle is the ground-truth nest execution-time function. It stands in
// for actually running a nest on the testbed: the paper profiles 13
// domains on 10 processor counts and later compares predictions against
// further real runs (§IV-C2, Pearson r ≈ 0.9). The oracle's shape follows
// standard stencil-code cost structure — per-step work proportional to
// domain area over processor count, halo communication proportional to the
// subdomain perimeter, a fixed per-step overhead — plus two terms the
// *predictor deliberately does not capture*: an aspect-ratio penalty for
// skewed processor rectangles and deterministic pseudo-noise. Those two
// make predictions realistically imperfect.
type Oracle struct {
	// WorkPerPoint is seconds of compute per domain grid point per
	// processor share.
	WorkPerPoint float64
	// CommPerPoint is seconds per subdomain-perimeter point (halo
	// exchange).
	CommPerPoint float64
	// Overhead is fixed seconds per nest per adaptation interval.
	Overhead float64
	// AspectPenalty scales the communication term by
	// 1 + AspectPenalty·(aspect−1) for skewed processor rectangles
	// ("skewed rectangular partition increases the execution time", §IV-B).
	AspectPenalty float64
	// NoiseSigma is the relative amplitude of the deterministic
	// pseudo-noise (system noise, cache effects).
	NoiseSigma float64
	// Seed perturbs the pseudo-noise stream.
	Seed uint64
}

// DefaultOracle returns an oracle calibrated so that paper-scale nests
// (175×175 .. 361×361 fine points on shares of a 1024-core machine) take
// tens of seconds per adaptation interval, the regime of Fig. 12 (a few
// hundred seconds total over 12 reconfigurations).
func DefaultOracle() *Oracle {
	return &Oracle{
		WorkPerPoint:  4.5e-2,
		CommPerPoint:  2e-2,
		Overhead:      0.5,
		AspectPenalty: 0.25,
		NoiseSigma:    0.06,
		Seed:          0x5eed,
	}
}

// ExecTime returns the ground-truth execution time (seconds per
// adaptation interval) of an nx×ny nest on procs processors arranged with
// the given aspect ratio (1 = square). procs must be positive.
func (o *Oracle) ExecTime(nx, ny, procs int, aspect float64) float64 {
	if procs < 1 {
		procs = 1
	}
	if aspect < 1 {
		aspect = 1
	}
	p := float64(procs)
	area := float64(nx) * float64(ny)
	// Per-processor subdomain perimeter under a square-ish decomposition.
	perim := 2 * (float64(nx) + float64(ny)) / math.Sqrt(p)
	t := o.WorkPerPoint*area/p +
		o.CommPerPoint*perim*(1+o.AspectPenalty*(aspect-1)) +
		o.Overhead
	return t * (1 + o.NoiseSigma*o.noise(nx, ny, procs))
}

// noise returns a deterministic pseudo-random value in (-1, 1) for the
// configuration, so that repeated "runs" of the same configuration agree
// (it is systematic mis-modelling, not run-to-run jitter).
func (o *Oracle) noise(nx, ny, procs int) float64 {
	h := o.Seed
	for _, v := range [...]uint64{uint64(nx), uint64(ny), uint64(procs)} {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return float64(h%2000001)/1000000 - 1
}
