package perfmodel

import (
	"testing"

	"nestdiff/internal/geom"
)

func benchModelSetup(b *testing.B) *ExecModel {
	b.Helper()
	m, err := Profile(DefaultOracle(), DefaultSampleDomains(), DefaultProcSizes())
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkProfile(b *testing.B) {
	o := DefaultOracle()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Profile(o, DefaultSampleDomains(), DefaultProcSizes()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	m := benchModelSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(300+i%200, 350, 100+i%400); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictCached measures the memoized path: the tracker's
// steady-state pattern of re-evaluating the same few (size, share)
// candidates every step.
func BenchmarkPredictCached(b *testing.B) {
	m := benchModelSetup(b)
	// Prime the handful of keys a tracker cycles through.
	for i := 0; i < 8; i++ {
		if _, err := m.Predict(300+i*20, 350, 64+i*16); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(300+(i%8)*20, 350, 64+(i%8)*16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictRect(b *testing.B) {
	m := benchModelSetup(b)
	r := geom.NewRect(0, 0, 19, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PredictRect(450, 420, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTriangulate(b *testing.B) {
	pts := make([]Point2, len(DefaultSampleDomains()))
	for i, d := range DefaultSampleDomains() {
		pts[i] = Point2{X: float64(d[0]), Y: float64(d[1])}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Triangulate(pts); err != nil {
			b.Fatal(err)
		}
	}
}
