package perfmodel

import (
	"math/rand"
	"testing"

	"nestdiff/internal/geom"
	"nestdiff/internal/stats"
)

func defaultModel(t *testing.T) (*Oracle, *ExecModel) {
	t.Helper()
	o := DefaultOracle()
	m, err := Profile(o, DefaultSampleDomains(), DefaultProcSizes())
	if err != nil {
		t.Fatal(err)
	}
	return o, m
}

func TestOracleShape(t *testing.T) {
	o := DefaultOracle()
	// More processors → faster.
	if o.ExecTime(300, 300, 64, 1) <= o.ExecTime(300, 300, 512, 1) {
		t.Error("oracle not decreasing in processor count")
	}
	// Bigger domain → slower.
	if o.ExecTime(600, 600, 128, 1) <= o.ExecTime(200, 200, 128, 1) {
		t.Error("oracle not increasing in domain size")
	}
	// Skewed processor rectangle → slower.
	if o.ExecTime(300, 300, 128, 4) <= o.ExecTime(300, 300, 128, 1) {
		t.Error("oracle missing aspect penalty")
	}
	// Deterministic.
	if o.ExecTime(301, 299, 100, 1.5) != o.ExecTime(301, 299, 100, 1.5) {
		t.Error("oracle not deterministic")
	}
}

func TestOracleNoiseBounded(t *testing.T) {
	o := DefaultOracle()
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 500; i++ {
		nx, ny := 100+rng.Intn(800), 100+rng.Intn(800)
		p := 1 + rng.Intn(1024)
		noisy := o.ExecTime(nx, ny, p, 1)
		quiet := *o
		quiet.NoiseSigma = 0
		clean := quiet.ExecTime(nx, ny, p, 1)
		rel := (noisy - clean) / clean
		if rel < -o.NoiseSigma-1e-9 || rel > o.NoiseSigma+1e-9 {
			t.Fatalf("noise %.3f exceeds sigma %.3f", rel, o.NoiseSigma)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	o := DefaultOracle()
	if _, err := Profile(nil, DefaultSampleDomains(), DefaultProcSizes()); err == nil {
		t.Error("nil oracle accepted")
	}
	if _, err := Profile(o, DefaultSampleDomains(), []int{64}); err == nil {
		t.Error("single proc size accepted")
	}
	if _, err := Profile(o, [][2]int{{100, 100}, {0, 5}, {1, 1}}, DefaultProcSizes()); err == nil {
		t.Error("invalid domain accepted")
	}
	if _, err := Profile(o, DefaultSampleDomains(), []int{0, 64}); err == nil {
		t.Error("zero proc size accepted")
	}
}

func TestPredictMatchesProfiledPoints(t *testing.T) {
	o, m := defaultModel(t)
	// At a profiled (domain, proc count) pair the prediction equals the
	// profiled measurement.
	for _, d := range DefaultSampleDomains()[:4] {
		for _, p := range []int{32, 256, 1024} {
			want := o.ExecTime(d[0], d[1], p, 1)
			got, err := m.Predict(d[0], d[1], p)
			if err != nil {
				t.Fatal(err)
			}
			if rel := (got - want) / want; rel > 1e-6 || rel < -1e-6 {
				t.Fatalf("Predict(%v, %d) = %g, profiled %g", d, p, got, want)
			}
		}
	}
}

func TestPredictPearsonAgainstOracle(t *testing.T) {
	// §V-F: the prediction pipeline achieves Pearson r ≈ 0.9 against
	// actual execution times over realistic nest configurations.
	o, m := defaultModel(t)
	rng := rand.New(rand.NewSource(44))
	var actual, predicted []float64
	for i := 0; i < 200; i++ {
		nx := 3 * (175 + rng.Intn(190)) // paper nest range, 3x refined
		ny := 3 * (175 + rng.Intn(190))
		w := 4 + rng.Intn(29)
		h := 4 + rng.Intn(29)
		rect := geom.NewRect(0, 0, w, h)
		a := o.ExecTime(nx, ny, rect.Area(), rect.AspectRatio())
		p, err := m.PredictRect(nx, ny, rect)
		if err != nil {
			t.Fatal(err)
		}
		actual = append(actual, a)
		predicted = append(predicted, p)
	}
	r, err := stats.Pearson(actual, predicted)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.85 {
		t.Fatalf("Pearson r = %.3f, want >= 0.85 (paper reports 0.9)", r)
	}
	if r >= 0.99999 {
		t.Fatalf("Pearson r = %.5f — predictor is implausibly perfect; noise terms missing", r)
	}
}

func TestPredictMonotoneInProcs(t *testing.T) {
	_, m := defaultModel(t)
	prev := -1.0
	for _, p := range []int{1024, 512, 256, 128, 64, 32, 16} {
		got, err := m.Predict(450, 450, p)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && got < prev*0.95 {
			// Allow small noise-induced wiggles but not real inversions.
			t.Fatalf("prediction dropped when removing processors: %g -> %g at p=%d", prev, got, p)
		}
		prev = got
	}
}

func TestPredictClampsOutsideProcRange(t *testing.T) {
	_, m := defaultModel(t)
	lo, err := m.Predict(300, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	atMin, err := m.Predict(300, 300, 16)
	if err != nil {
		t.Fatal(err)
	}
	if lo != atMin {
		t.Fatalf("below-range prediction %g != at-min %g", lo, atMin)
	}
	hi, err := m.Predict(300, 300, 4096)
	if err != nil {
		t.Fatal(err)
	}
	atMax, err := m.Predict(300, 300, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if hi != atMax {
		t.Fatalf("above-range prediction %g != at-max %g", hi, atMax)
	}
}

func TestPredictRectAspectPenalty(t *testing.T) {
	_, m := defaultModel(t)
	sq, err := m.PredictRect(600, 600, geom.NewRect(0, 0, 16, 16))
	if err != nil {
		t.Fatal(err)
	}
	skew, err := m.PredictRect(600, 600, geom.NewRect(0, 0, 64, 4))
	if err != nil {
		t.Fatal(err)
	}
	if skew <= sq {
		t.Fatalf("skewed rectangle %g not slower than square %g", skew, sq)
	}
}

func TestPredictErrors(t *testing.T) {
	_, m := defaultModel(t)
	if _, err := m.Predict(0, 100, 64); err == nil {
		t.Error("zero nest size accepted")
	}
	if _, err := m.PredictRect(100, 100, geom.Rect{}); err == nil {
		t.Error("empty rect accepted")
	}
}

func TestProcSizesCopied(t *testing.T) {
	_, m := defaultModel(t)
	s := m.ProcSizes()
	s[0] = -99
	if m.ProcSizes()[0] == -99 {
		t.Fatal("ProcSizes leaks internal state")
	}
}

func TestPredictCacheConsistent(t *testing.T) {
	_, m := defaultModel(t)
	// A hit must return the bit-identical value of the original
	// interpolation, including the procs<1 clamp sharing the procs=1 key.
	cases := [][3]int{{300, 350, 100}, {525, 525, 16}, {450, 420, 1024}, {180, 360, 0}}
	for _, c := range cases {
		fresh, err := m.predict(c[0], c[1], max(1, c[2]))
		if err != nil {
			t.Fatal(err)
		}
		first, err := m.Predict(c[0], c[1], c[2])
		if err != nil {
			t.Fatal(err)
		}
		hit, err := m.Predict(c[0], c[1], c[2])
		if err != nil {
			t.Fatal(err)
		}
		if first != fresh || hit != fresh {
			t.Errorf("Predict(%v) = %g then %g, uncached %g", c, first, hit, fresh)
		}
	}
	// procs=0 was clamped before keying, so asking for procs=1 is a hit on
	// the same entry, not a new one.
	if _, err := m.Predict(180, 360, 1); err != nil {
		t.Fatal(err)
	}
	if len(m.cache) != len(cases) {
		t.Errorf("cache holds %d entries, want %d", len(m.cache), len(cases))
	}
}

func TestPredictCacheOverflowResets(t *testing.T) {
	_, m := defaultModel(t)
	m.cache = make(map[predictKey]float64, maxCacheEntries)
	for i := 0; i < maxCacheEntries; i++ {
		m.cache[predictKey{nx: i + 1, ny: 1, procs: 1}] = 0
	}
	if _, err := m.Predict(300, 350, 100); err != nil {
		t.Fatal(err)
	}
	if len(m.cache) != 1 {
		t.Errorf("cache holds %d entries after overflow, want 1", len(m.cache))
	}
}
