package perfmodel

import (
	"fmt"
	"sort"
	"sync"

	"nestdiff/internal/geom"
)

// ExecModel is the execution-time predictor of §IV-C2. It is built by
// profiling a small set of domains (13 in the paper) on a few processor
// counts (10 in the paper); a prediction for an arbitrary nest first
// interpolates the profiled times across domain sizes with Delaunay
// triangulation at each profiled processor count, then linearly
// interpolates across processor counts.
type ExecModel struct {
	tri       *Delaunay
	procSizes []int       // ascending
	times     [][]float64 // times[procIdx][sampleIdx]
	// aspectPenalty is the predictor's (approximate) model of the skew
	// penalty used when predicting for a concrete processor rectangle.
	aspectPenalty float64

	// The tracker re-evaluates the same handful of (nest size, share)
	// candidates every step, so successful predictions are memoized: a hit
	// skips the Delaunay point-location walk entirely. Guarded by mu —
	// predictions may come from concurrent scheduler jobs.
	mu    sync.Mutex
	cache map[predictKey]float64
}

// predictKey identifies one memoized prediction (procs already clamped to
// the valid range).
type predictKey struct {
	nx, ny, procs int
}

// maxCacheEntries bounds the memo; past it the map is discarded wholesale
// (the working set is tiny — the bound only guards pathological callers).
const maxCacheEntries = 1 << 14

// DefaultSampleDomains returns the 13 profiling domains: a spread of
// square and skewed sizes covering the paper's nest range (175×175 to
// 361×361 parent points, up to ~1083 fine points after 3× refinement).
func DefaultSampleDomains() [][2]int {
	return [][2]int{
		{120, 120}, {180, 180}, {240, 240}, {300, 300}, {360, 360},
		{480, 480}, {600, 600}, {720, 720},
		{180, 360}, {360, 180}, {240, 600}, {600, 240},
		{900, 450},
	}
}

// DefaultProcSizes returns the 10 profiled processor counts.
func DefaultProcSizes() []int {
	return []int{16, 32, 64, 96, 128, 192, 256, 384, 512, 1024}
}

// Profile builds an ExecModel by "running" every sample domain on every
// processor count against the oracle — the stand-in for the paper's
// profiling runs on the testbed.
func Profile(o *Oracle, domains [][2]int, procSizes []int) (*ExecModel, error) {
	if o == nil {
		return nil, fmt.Errorf("perfmodel: nil oracle")
	}
	if len(procSizes) < 2 {
		return nil, fmt.Errorf("perfmodel: need at least 2 processor sizes, have %d", len(procSizes))
	}
	pts := make([]Point2, len(domains))
	for i, d := range domains {
		if d[0] <= 0 || d[1] <= 0 {
			return nil, fmt.Errorf("perfmodel: invalid sample domain %v", d)
		}
		pts[i] = Point2{X: float64(d[0]), Y: float64(d[1])}
	}
	tri, err := Triangulate(pts)
	if err != nil {
		return nil, err
	}
	sizes := append([]int(nil), procSizes...)
	sort.Ints(sizes)
	if sizes[0] <= 0 {
		return nil, fmt.Errorf("perfmodel: non-positive processor size %d", sizes[0])
	}
	m := &ExecModel{
		tri:           tri,
		procSizes:     sizes,
		times:         make([][]float64, len(sizes)),
		aspectPenalty: o.AspectPenalty, // the modeller's best estimate
	}
	for pi, p := range sizes {
		m.times[pi] = make([]float64, len(domains))
		for di, d := range domains {
			// Profiling runs use square-ish processor rectangles.
			m.times[pi][di] = o.ExecTime(d[0], d[1], p, 1)
		}
	}
	return m, nil
}

// Predict estimates the execution time of an nx×ny nest on procs
// processors (square-ish arrangement): Delaunay across domain sizes,
// linear across processor counts, clamped to the profiled range.
func (m *ExecModel) Predict(nx, ny, procs int) (float64, error) {
	if nx <= 0 || ny <= 0 {
		return 0, fmt.Errorf("perfmodel: invalid nest size %dx%d", nx, ny)
	}
	if procs < 1 {
		procs = 1
	}
	key := predictKey{nx, ny, procs}
	m.mu.Lock()
	if t, ok := m.cache[key]; ok {
		m.mu.Unlock()
		return t, nil
	}
	m.mu.Unlock()
	t, err := m.predict(nx, ny, procs)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	if m.cache == nil || len(m.cache) >= maxCacheEntries {
		m.cache = make(map[predictKey]float64)
	}
	m.cache[key] = t
	m.mu.Unlock()
	return t, nil
}

// predict is the uncached interpolation behind Predict.
func (m *ExecModel) predict(nx, ny, procs int) (float64, error) {
	p := Point2{X: float64(nx), Y: float64(ny)}
	at := func(procIdx int) (float64, error) {
		return m.tri.Interpolate(p, m.times[procIdx])
	}
	n := len(m.procSizes)
	switch {
	case procs <= m.procSizes[0]:
		return at(0)
	case procs >= m.procSizes[n-1]:
		return at(n - 1)
	}
	hi := sort.SearchInts(m.procSizes, procs)
	if m.procSizes[hi] == procs {
		return at(hi)
	}
	lo := hi - 1
	tLo, err := at(lo)
	if err != nil {
		return 0, err
	}
	tHi, err := at(hi)
	if err != nil {
		return 0, err
	}
	f := float64(procs-m.procSizes[lo]) / float64(m.procSizes[hi]-m.procSizes[lo])
	return tLo + f*(tHi-tLo), nil
}

// commFraction is the predictor's assumed share of a nest's time spent in
// halo communication — the part the skew penalty applies to. The oracle
// penalizes only its communication term; the predictor cannot separate the
// terms in its profiled totals, so it scales the penalty by this estimate.
const commFraction = 0.35

// PredictRect predicts the execution time of an nx×ny nest on the concrete
// processor rectangle r, applying the skew penalty for non-square
// rectangles to the assumed communication fraction of the time.
func (m *ExecModel) PredictRect(nx, ny int, r geom.Rect) (float64, error) {
	if r.Empty() {
		return 0, fmt.Errorf("perfmodel: empty processor rectangle")
	}
	base, err := m.Predict(nx, ny, r.Area())
	if err != nil {
		return 0, err
	}
	return base * (1 + commFraction*m.aspectPenalty*(r.AspectRatio()-1)), nil
}

// ProcSizes returns the profiled processor counts (ascending).
func (m *ExecModel) ProcSizes() []int { return append([]int(nil), m.procSizes...) }
