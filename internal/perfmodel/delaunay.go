// Package perfmodel implements the performance models of §IV-C: the
// execution-time predictor built from profiled domain samples via Delaunay
// triangulation over domain sizes and linear interpolation over processor
// counts (§IV-C2), together with the ground-truth "oracle" that stands in
// for actually running WRF on the testbed (the profiled measurements the
// paper took on Blue Gene/L). The redistribution-time predictor of §IV-C1
// is the per-pair Alltoallv model already provided by internal/topology
// and internal/redist.
package perfmodel

import (
	"fmt"
	"math"
)

// Point2 is a sample location in the 2D domain-size plane (NX, NY).
type Point2 struct {
	X, Y float64
}

// Triangle indexes three points of a triangulation.
type Triangle struct {
	A, B, C int
}

// Delaunay is a Delaunay triangulation of a point set, built with the
// Bowyer–Watson algorithm. It supports piecewise-linear (barycentric)
// interpolation of per-point values, which is how the paper interpolates
// profiled execution times between the 13 sampled domain sizes.
type Delaunay struct {
	Points []Point2
	Tris   []Triangle
}

// Triangulate builds the Delaunay triangulation of pts. At least three
// non-collinear points are required.
func Triangulate(pts []Point2) (*Delaunay, error) {
	if len(pts) < 3 {
		return nil, fmt.Errorf("perfmodel: need at least 3 points, have %d", len(pts))
	}
	for i, p := range pts {
		for _, q := range pts[i+1:] {
			if p == q {
				return nil, fmt.Errorf("perfmodel: duplicate sample point (%g, %g)", p.X, p.Y)
			}
		}
	}

	// Super-triangle comfortably containing every point.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	d := math.Max(maxX-minX, maxY-minY)
	if d == 0 {
		return nil, fmt.Errorf("perfmodel: degenerate point set")
	}
	midX, midY := (minX+maxX)/2, (minY+maxY)/2
	all := append([]Point2(nil), pts...)
	s0 := len(all)
	all = append(all,
		Point2{midX - 20*d, midY - 10*d},
		Point2{midX + 20*d, midY - 10*d},
		Point2{midX, midY + 20*d},
	)

	type tri struct{ a, b, c int }
	tris := []tri{{s0, s0 + 1, s0 + 2}}

	inCircumcircle := func(t tri, p Point2) bool {
		a, b, c := all[t.a], all[t.b], all[t.c]
		ax, ay := a.X-p.X, a.Y-p.Y
		bx, by := b.X-p.X, b.Y-p.Y
		cx, cy := c.X-p.X, c.Y-p.Y
		det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
			(bx*bx+by*by)*(ax*cy-cx*ay) +
			(cx*cx+cy*cy)*(ax*by-bx*ay)
		// Orientation-aware: det sign depends on triangle winding.
		orient := (b.X-a.X)*(c.Y-a.Y) - (c.X-a.X)*(b.Y-a.Y)
		if orient < 0 {
			det = -det
		}
		return det > 0
	}

	type edge struct{ u, v int }
	normEdge := func(u, v int) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}

	for pi := 0; pi < s0; pi++ {
		p := all[pi]
		var bad []tri
		var keep []tri
		for _, t := range tris {
			if inCircumcircle(t, p) {
				bad = append(bad, t)
			} else {
				keep = append(keep, t)
			}
		}
		// Boundary of the bad region: edges appearing exactly once.
		edgeCount := map[edge]int{}
		for _, t := range bad {
			edgeCount[normEdge(t.a, t.b)]++
			edgeCount[normEdge(t.b, t.c)]++
			edgeCount[normEdge(t.c, t.a)]++
		}
		tris = keep
		for e, n := range edgeCount {
			if n == 1 {
				tris = append(tris, tri{e.u, e.v, pi})
			}
		}
	}

	out := &Delaunay{Points: pts}
	for _, t := range tris {
		if t.a >= s0 || t.b >= s0 || t.c >= s0 {
			continue // touches the super-triangle
		}
		out.Tris = append(out.Tris, Triangle{t.a, t.b, t.c})
	}
	if len(out.Tris) == 0 {
		return nil, fmt.Errorf("perfmodel: collinear point set has no triangulation")
	}
	return out, nil
}

// barycentric returns the barycentric coordinates of p in triangle t.
func (d *Delaunay) barycentric(t Triangle, p Point2) (l1, l2, l3 float64, ok bool) {
	a, b, c := d.Points[t.A], d.Points[t.B], d.Points[t.C]
	det := (b.Y-c.Y)*(a.X-c.X) + (c.X-b.X)*(a.Y-c.Y)
	if det == 0 {
		return 0, 0, 0, false
	}
	l1 = ((b.Y-c.Y)*(p.X-c.X) + (c.X-b.X)*(p.Y-c.Y)) / det
	l2 = ((c.Y-a.Y)*(p.X-c.X) + (a.X-c.X)*(p.Y-c.Y)) / det
	l3 = 1 - l1 - l2
	return l1, l2, l3, true
}

// Interpolate evaluates the piecewise-linear interpolant of values (one
// per point) at p. Inside the convex hull the containing triangle's
// barycentric weights are used; outside, the interpolant falls back to
// inverse-distance weighting of the three nearest samples, which degrades
// gracefully for the slightly-out-of-range nest sizes that occur in
// practice.
func (d *Delaunay) Interpolate(p Point2, values []float64) (float64, error) {
	if len(values) != len(d.Points) {
		return 0, fmt.Errorf("perfmodel: %d values for %d points", len(values), len(d.Points))
	}
	const eps = 1e-9
	for _, t := range d.Tris {
		l1, l2, l3, ok := d.barycentric(t, p)
		if !ok {
			continue
		}
		if l1 >= -eps && l2 >= -eps && l3 >= -eps {
			return l1*values[t.A] + l2*values[t.B] + l3*values[t.C], nil
		}
	}
	// Outside the hull: inverse-distance weighting of the 3 nearest.
	type cand struct {
		idx  int
		dist float64
	}
	best := []cand{}
	for i, q := range d.Points {
		dd := math.Hypot(q.X-p.X, q.Y-p.Y)
		if dd == 0 {
			return values[i], nil
		}
		best = append(best, cand{i, dd})
	}
	// Partial selection of the 3 closest.
	for i := 0; i < 3; i++ {
		m := i
		for j := i + 1; j < len(best); j++ {
			if best[j].dist < best[m].dist {
				m = j
			}
		}
		best[i], best[m] = best[m], best[i]
	}
	var wsum, vsum float64
	for _, c := range best[:3] {
		w := 1 / c.dist
		wsum += w
		vsum += w * values[c.idx]
	}
	return vsum / wsum, nil
}
