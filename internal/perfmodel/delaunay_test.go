package perfmodel

import (
	"math"
	"math/rand"
	"testing"
)

func TestTriangulateSquare(t *testing.T) {
	pts := []Point2{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	d, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Tris) != 2 {
		t.Fatalf("square triangulated into %d triangles, want 2", len(d.Tris))
	}
}

func TestTriangulateErrors(t *testing.T) {
	if _, err := Triangulate([]Point2{{0, 0}, {1, 1}}); err == nil {
		t.Error("two points accepted")
	}
	if _, err := Triangulate([]Point2{{0, 0}, {1, 1}, {2, 2}, {3, 3}}); err == nil {
		t.Error("collinear points accepted")
	}
	if _, err := Triangulate([]Point2{{0, 0}, {0, 0}, {1, 1}}); err == nil {
		t.Error("duplicate points accepted")
	}
}

// Delaunay property: no sample point lies strictly inside the
// circumcircle of any triangle.
func TestTriangulateDelaunayProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(20)
		pts := make([]Point2, n)
		for i := range pts {
			pts[i] = Point2{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		}
		d, err := Triangulate(pts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, tri := range d.Tris {
			cx, cy, r2 := circumcircle(pts[tri.A], pts[tri.B], pts[tri.C])
			for i, p := range pts {
				if i == tri.A || i == tri.B || i == tri.C {
					continue
				}
				dx, dy := p.X-cx, p.Y-cy
				if dx*dx+dy*dy < r2*(1-1e-9) {
					t.Fatalf("trial %d: point %d inside circumcircle of %v", trial, i, tri)
				}
			}
		}
	}
}

func circumcircle(a, b, c Point2) (cx, cy, r2 float64) {
	d := 2 * (a.X*(b.Y-c.Y) + b.X*(c.Y-a.Y) + c.X*(a.Y-b.Y))
	ux := ((a.X*a.X+a.Y*a.Y)*(b.Y-c.Y) + (b.X*b.X+b.Y*b.Y)*(c.Y-a.Y) + (c.X*c.X+c.Y*c.Y)*(a.Y-b.Y)) / d
	uy := ((a.X*a.X+a.Y*a.Y)*(c.X-b.X) + (b.X*b.X+b.Y*b.Y)*(a.X-c.X) + (c.X*c.X+c.Y*c.Y)*(b.X-a.X)) / d
	dx, dy := a.X-ux, a.Y-uy
	return ux, uy, dx*dx + dy*dy
}

// Triangulation covers the convex hull: interior query points always find
// a containing triangle (Interpolate never needs the fallback inside).
func TestTriangulateCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := make([]Point2, 15)
	for i := range pts {
		pts[i] = Point2{X: rng.Float64() * 10, Y: rng.Float64() * 10}
	}
	d, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, len(pts))
	for i, p := range pts {
		values[i] = 3*p.X + 7*p.Y + 1 // linear field
	}
	// Linear fields are reproduced exactly inside the hull, regardless of
	// which triangle contains the query.
	for trial := 0; trial < 500; trial++ {
		// Random convex combination of sample points lies in the hull.
		w1, w2 := rng.Float64(), rng.Float64()
		i, j, k := rng.Intn(len(pts)), rng.Intn(len(pts)), rng.Intn(len(pts))
		if w1+w2 > 1 {
			w1, w2 = 1-w1, 1-w2
		}
		w3 := 1 - w1 - w2
		q := Point2{
			X: w1*pts[i].X + w2*pts[j].X + w3*pts[k].X,
			Y: w1*pts[i].Y + w2*pts[j].Y + w3*pts[k].Y,
		}
		got, err := d.Interpolate(q, values)
		if err != nil {
			t.Fatal(err)
		}
		want := 3*q.X + 7*q.Y + 1
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("linear field not reproduced at %v: got %g want %g", q, got, want)
		}
	}
}

func TestInterpolateAtSamplePoints(t *testing.T) {
	pts := []Point2{{0, 0}, {4, 0}, {0, 4}, {4, 4}, {2, 2}}
	d, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{1, 2, 3, 4, 5}
	for i, p := range pts {
		got, err := d.Interpolate(p, values)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-values[i]) > 1e-9 {
			t.Fatalf("sample %d: got %g want %g", i, got, values[i])
		}
	}
}

func TestInterpolateOutsideHullFallsBack(t *testing.T) {
	pts := []Point2{{0, 0}, {1, 0}, {0, 1}}
	d, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{10, 20, 30}
	got, err := d.Interpolate(Point2{X: 50, Y: 50}, values)
	if err != nil {
		t.Fatal(err)
	}
	if got < 10 || got > 30 {
		t.Fatalf("extrapolation %g outside sample range", got)
	}
}

func TestInterpolateLengthMismatch(t *testing.T) {
	pts := []Point2{{0, 0}, {1, 0}, {0, 1}}
	d, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Interpolate(Point2{}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestDefaultSampleDomainsTriangulate(t *testing.T) {
	domains := DefaultSampleDomains()
	if len(domains) != 13 {
		t.Fatalf("sample domains = %d, want 13 as in the paper", len(domains))
	}
	pts := make([]Point2, len(domains))
	for i, dmn := range domains {
		pts[i] = Point2{X: float64(dmn[0]), Y: float64(dmn[1])}
	}
	if _, err := Triangulate(pts); err != nil {
		t.Fatalf("default sample domains do not triangulate: %v", err)
	}
}
