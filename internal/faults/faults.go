// Package faults is a deterministic, seedable fault-injection plan for
// chaos-testing the nestdiff runtime. A Plan is a set of one-shot or
// recurring rules — crash rank r at step k, drop/delay the nth message of
// an mpi stream, fail the nth checkpoint write, slow down or panic a
// pipeline step — consulted from injection hooks wired into
// internal/mpi.World, internal/core.Pipeline and the job scheduler of
// internal/service.
//
// Every hook is safe on a nil *Plan and returns immediately, so fault
// injection is zero-cost when disabled: production paths carry only a nil
// pointer check. All rule matching is deterministic for a fixed seed and
// rule set: message rules keep an independent counter (and, for
// probabilistic rules, an independent seeded RNG) per concrete
// (from, to, tag) stream, and per-sender streams are FIFO, so the decision
// for the nth message of a stream never depends on goroutine interleaving.
package faults

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sync"
	"time"
)

// Kind labels an injected fault in the plan's log.
type Kind string

const (
	KindRankCrash      Kind = "rank-crash"
	KindMessageDrop    Kind = "message-drop"
	KindMessageDelay   Kind = "message-delay"
	KindCheckpointFail Kind = "checkpoint-fail"
	KindResizeCrash    Kind = "resize-crash"
	KindSlowStep       Kind = "slow-step"
	KindStepPanic      Kind = "step-panic"
	KindWorkerKill     Kind = "worker-kill"
	KindLinkPartition  Kind = "link-partition"
	KindLinkHeal       Kind = "link-heal"
)

// ControllerNode is the conventional link-endpoint name of the fleet
// control plane in partition rules: workers block the (workerID,
// ControllerNode) direction, the controller blocks (ControllerNode,
// workerID). Using one shared constant keeps the two halves of a
// partition rule pointed at the same link.
const ControllerNode = "controller"

// Injection is one fired fault, recorded in the plan's log so tests can
// assert exactly what was injected.
type Injection struct {
	Kind          Kind
	Step          int // pipeline step current when the fault fired
	Rank          int // rank crashes
	From, To, Tag int // message faults
	Detail        string
}

// Wildcard matches any rank/tag in a message rule.
const Wildcard = -1

// crashRule kills one rank the first time an mpi world launches it at or
// after Step.
type crashRule struct {
	step, rank int
	fired      bool
}

// msgRule drops or delays matching point-to-point messages. Counters (and
// the RNG of probabilistic rules) are kept per concrete stream.
type msgRule struct {
	from, to, tag int // Wildcard matches anything
	nth           int // fire on the nth matching message of a stream (one-shot per stream)
	everyN        int // fire on every Nth matching message of a stream
	prob          float64
	drop          bool
	delay         float64 // virtual seconds added to the message's transit time

	counts map[streamKey]int
	fired  map[streamKey]bool
	rngs   map[streamKey]*rand.Rand
}

type streamKey struct{ from, to, tag int }

// ckptRule fails the nth checkpoint write attempt after AfterBytes bytes —
// a torn write, as a dying node would leave behind.
type ckptRule struct {
	nth        int
	afterBytes int
	fired      bool
}

// resizeRule panics the nth processor-grid resize attempt after its
// pre-resize checkpoint has been written — the worker dies with the job
// half-way between two sizes, and recovery must come from the old-size
// checkpoint.
type resizeRule struct {
	nth   int
	fired bool
}

// stepRule slows down (or panics) the first pipeline step at or after
// step — a hung PDA invocation, or a crashing worker.
type stepRule struct {
	step  int
	sleep time.Duration
	panic bool
	fired bool
}

// killRule fires an arbitrary kill switch the first time a pipeline step
// at or after Step begins — the fleet chaos suite uses it to take an
// entire worker daemon down (listener, heartbeats and scheduler at once)
// at a deterministic point in a job's execution, simulating sudden
// machine loss rather than a recoverable in-process fault.
type killRule struct {
	step  int
	kill  func()
	fired bool
}

// linkKey names one direction of a control-plane link.
type linkKey struct{ from, to string }

// linkRule partitions (or heals) the from→to direction of a control-plane
// link the first time a pipeline step at or after Step begins. Unlike
// KillWorker — which models the whole process dying — a partition leaves
// the process running and merely makes its control messages vanish in
// transit: heartbeats are lost while the job keeps stepping and
// checkpointing, which is exactly the split-brain scenario epoch fencing
// exists for. One direction per rule, so asymmetric partitions (worker
// can't reach controller but controller can reach worker, or vice versa)
// are expressed by installing only one of the two directions.
type linkRule struct {
	step  int
	link  linkKey
	heal  bool
	fired bool
}

// Plan is a set of fault rules plus the injection log. The zero value (or
// a nil pointer) injects nothing. Methods are safe for concurrent use.
type Plan struct {
	mu          sync.Mutex
	seed        int64
	step        int // current pipeline step, advanced by Pipeline.Step
	recvTimeout time.Duration
	ckptCalls   int
	resizeCalls int

	crashes []*crashRule
	msgs    []*msgRule
	ckpts   []*ckptRule
	resizes []*resizeRule
	steps   []*stepRule
	kills   []*killRule
	links   []*linkRule
	blocked map[linkKey]bool
	log     []Injection
}

// NewPlan returns an empty plan. The seed drives the per-stream RNGs of
// probabilistic message rules; plans with the same seed and rules inject
// identically.
func NewPlan(seed int64) *Plan { return &Plan{seed: seed} }

// CrashRank schedules a one-shot panic of world rank `rank` the first time
// an mpi world launches it at pipeline step >= step. The world recovers
// the panic, poisons blocked collectives so nothing deadlocks, and
// surfaces the crash as an error from World.Run.
func (p *Plan) CrashRank(step, rank int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.crashes = append(p.crashes, &crashRule{step: step, rank: rank})
	return p
}

// DropMessage drops the nth message (1-based) of every matching
// (from, to, tag) stream; Wildcard fields match anything. Dropping
// installs a default receive timeout (if none is set) so a receiver
// waiting on the lost message fails fast instead of hanging forever.
func (p *Plan) DropMessage(from, to, tag, nth int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.msgs = append(p.msgs, newMsgRule(msgRule{from: from, to: to, tag: tag, nth: nth, drop: true}))
	if p.recvTimeout == 0 {
		p.recvTimeout = 5 * time.Second
	}
	return p
}

// DropMessages drops each matching message independently with probability
// prob, using a per-stream RNG derived from the plan seed. Installs a
// default receive timeout like DropMessage.
func (p *Plan) DropMessages(from, to, tag int, prob float64) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.msgs = append(p.msgs, newMsgRule(msgRule{from: from, to: to, tag: tag, prob: prob, drop: true}))
	if p.recvTimeout == 0 {
		p.recvTimeout = 5 * time.Second
	}
	return p
}

// DelayMessage adds `seconds` of virtual transit time to every everyN-th
// message of each matching stream (everyN = 1 delays them all).
func (p *Plan) DelayMessage(from, to, tag, everyN int, seconds float64) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if everyN < 1 {
		everyN = 1
	}
	p.msgs = append(p.msgs, newMsgRule(msgRule{from: from, to: to, tag: tag, everyN: everyN, delay: seconds}))
	return p
}

// FailCheckpoint makes the nth checkpoint write attempt (1-based, counted
// across the plan) fail after afterBytes bytes — a torn write. afterBytes
// <= 0 fails immediately.
func (p *Plan) FailCheckpoint(nth, afterBytes int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ckpts = append(p.ckpts, &ckptRule{nth: nth, afterBytes: afterBytes})
	return p
}

// FailResize makes the nth resize attempt (1-based, counted across the
// plan) panic between its pre-resize checkpoint and the grid rebuild —
// the narrowest window a real crash could hit, since the scheduler
// anchors a checkpoint immediately before touching the pipeline.
func (p *Plan) FailResize(nth int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.resizes = append(p.resizes, &resizeRule{nth: nth})
	return p
}

// ResizeCrash counts one resize attempt and panics if a resize rule
// fires. The scheduler calls it after the pre-resize checkpoint; the
// panic is recovered by the worker pool and becomes a retry from that
// checkpoint at the old processor count.
func (p *Plan) ResizeCrash() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.resizeCalls++
	for _, r := range p.resizes {
		if !r.fired && p.resizeCalls == r.nth {
			r.fired = true
			p.log = append(p.log, Injection{Kind: KindResizeCrash, Step: p.step,
				Detail: fmt.Sprintf("injected crash during resize attempt %d", r.nth)})
			step := p.step
			p.mu.Unlock()
			panic(fmt.Sprintf("faults: injected crash during resize attempt at step %d", step))
		}
	}
	p.mu.Unlock()
}

// SlowStep stalls the first pipeline step at or after step by d of real
// time — a hung PDA invocation, visible to per-job deadlines.
func (p *Plan) SlowStep(step int, d time.Duration) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.steps = append(p.steps, &stepRule{step: step, sleep: d})
	return p
}

// PanicStep panics the worker goroutine at the first pipeline step at or
// after step — exercises the scheduler's per-worker panic recovery.
func (p *Plan) PanicStep(step int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.steps = append(p.steps, &stepRule{step: step, panic: true})
	return p
}

// KillWorker schedules a one-shot kill switch at the first pipeline step
// at or after step. Unlike PanicStep — whose panic the scheduler recovers
// and retries — the kill callback models the whole process dying: the
// fleet chaos suite passes a closure that stops the worker's HTTP
// listener, halts its heartbeats and hard-kills its scheduler, so the
// only state that survives is what was already persisted to the
// checkpoint store. The callback runs outside the plan lock.
func (p *Plan) KillWorker(step int, kill func()) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.kills = append(p.kills, &killRule{step: step, kill: kill})
	return p
}

// Partition immediately blocks the from→to direction of a control-plane
// link: every hooked send over it fails as unreachable until Heal. Block
// one direction for an asymmetric partition, both for a full one.
func (p *Plan) Partition(from, to string) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.partitionLocked(linkKey{from, to}, p.step)
	return p
}

// PartitionAtStep schedules a one-shot partition of the from→to direction
// the first time a pipeline step at or after step begins, so chaos suites
// can lose a worker's heartbeats at a deterministic point in a job's
// execution — the process stays alive and keeps stepping, unlike
// KillWorker.
func (p *Plan) PartitionAtStep(step int, from, to string) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.links = append(p.links, &linkRule{step: step, link: linkKey{from, to}})
	return p
}

// Heal immediately unblocks the from→to direction.
func (p *Plan) Heal(from, to string) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.healLocked(linkKey{from, to})
	return p
}

// HealAtStep schedules a one-shot heal of the from→to direction at the
// first pipeline step at or after step.
func (p *Plan) HealAtStep(step int, from, to string) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.links = append(p.links, &linkRule{step: step, link: linkKey{from, to}, heal: true})
	return p
}

// LinkBlocked reports whether the from→to direction is currently
// partitioned. Control-plane hooks (the worker agent's heartbeat client,
// the controller's worker calls) consult it before each send and fail the
// call as unreachable when it holds.
func (p *Plan) LinkBlocked(from, to string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blocked[linkKey{from, to}]
}

// partitionLocked and healLocked mutate the blocked set and log the
// transition; callers hold p.mu. Re-partitioning a blocked link (or
// healing an open one) is a no-op and is not logged.
func (p *Plan) partitionLocked(k linkKey, step int) {
	if p.blocked == nil {
		p.blocked = make(map[linkKey]bool)
	}
	if p.blocked[k] {
		return
	}
	p.blocked[k] = true
	p.log = append(p.log, Injection{Kind: KindLinkPartition, Step: step,
		Detail: fmt.Sprintf("partitioned link %s->%s", k.from, k.to)})
}

func (p *Plan) healLocked(k linkKey) {
	if !p.blocked[k] {
		return
	}
	delete(p.blocked, k)
	p.log = append(p.log, Injection{Kind: KindLinkHeal, Step: p.step,
		Detail: fmt.Sprintf("healed link %s->%s", k.from, k.to)})
}

// WithRecvTimeout bounds every blocking mpi receive under this plan: a
// receive that outlives d (real time) panics its rank, which the world
// recovers and reports. Without a timeout a dropped message would hang
// its receiver forever, exactly like real MPI.
func (p *Plan) WithRecvTimeout(d time.Duration) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.recvTimeout = d
	return p
}

func newMsgRule(r msgRule) *msgRule {
	r.counts = make(map[streamKey]int)
	r.fired = make(map[streamKey]bool)
	r.rngs = make(map[streamKey]*rand.Rand)
	return &r
}

// SetStep records the pipeline step about to execute; step-scoped rules
// (rank crashes, slow/panic steps) key off it.
func (p *Plan) SetStep(step int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.step = step
	p.mu.Unlock()
}

// Step returns the pipeline step the plan currently considers active.
func (p *Plan) Step() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.step
}

// CrashPoint panics if a pending crash rule matches rank at the current
// step. mpi.World.Run calls it as each rank goroutine launches; the
// panic is recovered by the world and becomes a Run error.
func (p *Plan) CrashPoint(rank int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	for _, r := range p.crashes {
		if !r.fired && match(r.rank, rank) && p.step >= r.step {
			r.fired = true
			p.log = append(p.log, Injection{Kind: KindRankCrash, Step: p.step, Rank: rank,
				Detail: fmt.Sprintf("injected crash of rank %d (scheduled step %d)", rank, r.step)})
			step := p.step
			p.mu.Unlock()
			panic(fmt.Sprintf("faults: injected crash of rank %d at step %d", rank, step))
		}
	}
	p.mu.Unlock()
}

// MessageFault reports what to do with a point-to-point message: drop it,
// and/or add virtual transit delay. Each call advances the per-stream
// counters, so hooks must call it exactly once per message.
func (p *Plan) MessageFault(from, to, tag int) (drop bool, delay float64) {
	if p == nil {
		return false, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := streamKey{from, to, tag}
	for _, r := range p.msgs {
		if !match(r.from, from) || !match(r.to, to) || !match(r.tag, tag) {
			continue
		}
		r.counts[key]++
		n := r.counts[key]
		fire := false
		switch {
		case r.nth > 0:
			fire = n == r.nth && !r.fired[key]
		case r.everyN > 0:
			fire = n%r.everyN == 0
		case r.prob > 0:
			rng, ok := r.rngs[key]
			if !ok {
				rng = rand.New(rand.NewSource(p.seed ^ hashKey(key)))
				r.rngs[key] = rng
			}
			fire = rng.Float64() < r.prob
		}
		if !fire {
			continue
		}
		r.fired[key] = true
		if r.drop {
			drop = true
			p.log = append(p.log, Injection{Kind: KindMessageDrop, Step: p.step, From: from, To: to, Tag: tag,
				Detail: fmt.Sprintf("dropped message %d of stream %d->%d tag %d", n, from, to, tag)})
		}
		if r.delay > 0 {
			delay += r.delay
			p.log = append(p.log, Injection{Kind: KindMessageDelay, Step: p.step, From: from, To: to, Tag: tag,
				Detail: fmt.Sprintf("delayed message %d of stream %d->%d tag %d by %gs", n, from, to, tag, r.delay)})
		}
	}
	return drop, delay
}

// RecvTimeout returns the bound on blocking receives (0 = none).
func (p *Plan) RecvTimeout() time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.recvTimeout
}

// WrapCheckpoint counts one checkpoint write attempt and returns w, or a
// writer that tears the write partway through if a checkpoint rule fires.
func (p *Plan) WrapCheckpoint(w io.Writer) io.Writer {
	if p == nil {
		return w
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ckptCalls++
	for _, r := range p.ckpts {
		if !r.fired && p.ckptCalls == r.nth {
			r.fired = true
			p.log = append(p.log, Injection{Kind: KindCheckpointFail, Step: p.step,
				Detail: fmt.Sprintf("checkpoint write %d fails after %d bytes", r.nth, r.afterBytes)})
			return &tornWriter{w: w, remaining: r.afterBytes}
		}
	}
	return w
}

// tornWriter passes through `remaining` bytes, then fails every write.
type tornWriter struct {
	w         io.Writer
	remaining int
}

// ErrInjectedWrite is the error torn checkpoint writers return.
var ErrInjectedWrite = fmt.Errorf("faults: injected checkpoint write error")

func (t *tornWriter) Write(b []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, ErrInjectedWrite
	}
	if len(b) <= t.remaining {
		t.remaining -= len(b)
		return t.w.Write(b)
	}
	n, err := t.w.Write(b[:t.remaining])
	t.remaining = 0
	if err != nil {
		return n, err
	}
	return n, ErrInjectedWrite
}

// BeforeStep runs the step-scoped rules for the pipeline step about to
// execute: it may sleep (SlowStep) or panic (PanicStep). The pipeline
// calls it at the top of Step.
func (p *Plan) BeforeStep(step int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	var sleep time.Duration
	doPanic := false
	var kills []func()
	for _, r := range p.links {
		if r.fired || step < r.step {
			continue
		}
		r.fired = true
		if r.heal {
			p.healLocked(r.link)
		} else {
			p.partitionLocked(r.link, step)
		}
	}
	for _, r := range p.kills {
		if r.fired || step < r.step {
			continue
		}
		r.fired = true
		kills = append(kills, r.kill)
		p.log = append(p.log, Injection{Kind: KindWorkerKill, Step: step,
			Detail: fmt.Sprintf("killed worker at step %d (scheduled step %d)", step, r.step)})
	}
	for _, r := range p.steps {
		if r.fired || step < r.step {
			continue
		}
		r.fired = true
		if r.panic {
			doPanic = true
			p.log = append(p.log, Injection{Kind: KindStepPanic, Step: step,
				Detail: fmt.Sprintf("injected panic at step %d", step)})
			continue
		}
		sleep += r.sleep
		p.log = append(p.log, Injection{Kind: KindSlowStep, Step: step,
			Detail: fmt.Sprintf("stalled step %d for %s", step, r.sleep)})
	}
	p.mu.Unlock()
	for _, kill := range kills {
		kill()
	}
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if doPanic {
		panic(fmt.Sprintf("faults: injected panic at step %d", step))
	}
}

// Injections returns a copy of the log of fired faults, in firing order.
func (p *Plan) Injections() []Injection {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Injection(nil), p.log...)
}

func match(rule, v int) bool { return rule == Wildcard || rule == v }

func hashKey(k streamKey) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d/%d", k.from, k.to, k.tag)
	return int64(h.Sum64())
}
