package faults

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestNilPlanIsInert: every hook must be a no-op on a nil plan — that is
// the zero-cost-when-disabled contract the runtime relies on.
func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	p.SetStep(3)
	p.CrashPoint(0) // must not panic
	if drop, delay := p.MessageFault(0, 1, 7); drop || delay != 0 {
		t.Fatalf("nil plan message fault = (%v, %g)", drop, delay)
	}
	if d := p.RecvTimeout(); d != 0 {
		t.Fatalf("nil plan recv timeout = %s", d)
	}
	var buf bytes.Buffer
	if w := p.WrapCheckpoint(&buf); w != &buf {
		t.Fatal("nil plan wrapped the checkpoint writer")
	}
	p.BeforeStep(1)
	if inj := p.Injections(); inj != nil {
		t.Fatalf("nil plan has injections %v", inj)
	}
}

func TestCrashRankFiresOnceAtOrAfterStep(t *testing.T) {
	p := NewPlan(1).CrashRank(5, 2)
	p.SetStep(4)
	p.CrashPoint(2) // too early: no panic
	p.SetStep(6)
	p.CrashPoint(1) // wrong rank
	crashed := func() (c bool) {
		defer func() {
			if r := recover(); r != nil {
				c = true
				if !strings.Contains(r.(string), "injected crash of rank 2") {
					t.Fatalf("panic value %v", r)
				}
			}
		}()
		p.CrashPoint(2)
		return false
	}
	if !crashed() {
		t.Fatal("crash rule did not fire at step 6 >= 5")
	}
	// One-shot: the same rank survives afterwards.
	p.CrashPoint(2)
	inj := p.Injections()
	if len(inj) != 1 || inj[0].Kind != KindRankCrash || inj[0].Rank != 2 || inj[0].Step != 6 {
		t.Fatalf("injection log %+v", inj)
	}
}

func TestDropMessageNthPerStream(t *testing.T) {
	p := NewPlan(1).DropMessage(0, 1, Wildcard, 2)
	if d := p.RecvTimeout(); d == 0 {
		t.Fatal("drop rule installed no default recv timeout")
	}
	// Stream 0->1 tag 7: messages 1, 2, 3 — only the 2nd drops.
	want := []bool{false, true, false}
	for i, w := range want {
		if drop, _ := p.MessageFault(0, 1, 7); drop != w {
			t.Fatalf("message %d of stream 0->1/7: drop = %v, want %v", i+1, drop, w)
		}
	}
	// An independent stream (different tag) counts separately.
	if drop, _ := p.MessageFault(0, 1, 9); drop {
		t.Fatal("first message of a fresh stream dropped")
	}
	// Non-matching sender is untouched.
	if drop, _ := p.MessageFault(2, 1, 7); drop {
		t.Fatal("non-matching stream dropped")
	}
}

func TestDelayEveryN(t *testing.T) {
	p := NewPlan(1).DelayMessage(Wildcard, Wildcard, 4, 2, 1.5)
	var delays []float64
	for i := 0; i < 4; i++ {
		_, d := p.MessageFault(3, 0, 4)
		delays = append(delays, d)
	}
	want := []float64{0, 1.5, 0, 1.5}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delays = %v, want %v", delays, want)
		}
	}
}

// TestProbabilisticDropIsSeedDeterministic: two plans with the same seed
// and rules must make identical drop decisions; a different seed must
// (for this configuration) diverge somewhere in 200 messages.
func TestProbabilisticDropIsSeedDeterministic(t *testing.T) {
	decisions := func(seed int64) []bool {
		p := NewPlan(seed).DropMessages(Wildcard, Wildcard, Wildcard, 0.3)
		var out []bool
		for i := 0; i < 200; i++ {
			drop, _ := p.MessageFault(0, 1, 0)
			out = append(out, drop)
		}
		return out
	}
	a, b, c := decisions(42), decisions(42), decisions(43)
	drops := 0
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at message %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
		if a[i] {
			drops++
		}
	}
	if same {
		t.Fatal("different seeds produced identical decisions")
	}
	if drops == 0 || drops == 200 {
		t.Fatalf("p=0.3 dropped %d of 200", drops)
	}
}

func TestWrapCheckpointTearsNthWrite(t *testing.T) {
	p := NewPlan(1).FailCheckpoint(2, 4)
	var a, b bytes.Buffer
	w1 := p.WrapCheckpoint(&a)
	if _, err := w1.Write([]byte("fine")); err != nil {
		t.Fatalf("attempt 1 failed: %v", err)
	}
	w2 := p.WrapCheckpoint(&b)
	n, err := w2.Write([]byte("longer than four"))
	if !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("attempt 2 error = %v", err)
	}
	if n != 4 || b.String() != "long" {
		t.Fatalf("torn write passed %d bytes (%q)", n, b.String())
	}
	if _, err := w2.Write([]byte("x")); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("post-tear write error = %v", err)
	}
	// Attempt 3 is clean again.
	var cBuf bytes.Buffer
	if _, err := p.WrapCheckpoint(&cBuf).Write([]byte("ok")); err != nil {
		t.Fatalf("attempt 3 failed: %v", err)
	}
}

func TestBeforeStepSlowAndPanic(t *testing.T) {
	p := NewPlan(1).SlowStep(3, 30*time.Millisecond)
	start := time.Now()
	p.BeforeStep(2)
	if time.Since(start) > 20*time.Millisecond {
		t.Fatal("slow rule fired before its step")
	}
	p.BeforeStep(4) // step 4 >= 3: fires once
	if el := time.Since(start); el < 30*time.Millisecond {
		t.Fatalf("slow step stalled only %s", el)
	}
	start = time.Now()
	p.BeforeStep(5)
	if time.Since(start) > 20*time.Millisecond {
		t.Fatal("slow rule fired twice")
	}

	pp := NewPlan(1).PanicStep(7)
	panicked := func() (c bool) {
		defer func() { c = recover() != nil }()
		pp.BeforeStep(8)
		return false
	}
	if !panicked() {
		t.Fatal("panic rule did not fire")
	}
	pp.BeforeStep(9) // one-shot
}

func TestKillWorkerFiresOnceOutsideLock(t *testing.T) {
	var fired int
	p := NewPlan(1)
	p.KillWorker(5, func() {
		fired++
		// The callback must run outside the plan lock: the real closure
		// tears down a scheduler whose step loop may be logging into this
		// same plan concurrently.
		p.Injections()
	})
	p.BeforeStep(4)
	if fired != 0 {
		t.Fatal("kill fired before its step")
	}
	p.BeforeStep(6) // first step at or after 5
	if fired != 1 {
		t.Fatalf("kill fired %d times at step 6, want 1", fired)
	}
	p.BeforeStep(7) // one-shot
	if fired != 1 {
		t.Fatalf("kill re-fired: %d", fired)
	}
	inj := p.Injections()
	if len(inj) != 1 || inj[0].Kind != KindWorkerKill || inj[0].Step != 6 {
		t.Fatalf("injection log = %+v", inj)
	}
}

// TestPartitionBlocksOneDirectionOnly: link rules are directional — an
// asymmetric partition blocks worker→controller while the reverse
// direction stays open, and nil plans never block anything.
func TestPartitionBlocksOneDirectionOnly(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.LinkBlocked("w1", ControllerNode) {
		t.Fatal("nil plan blocked a link")
	}

	p := NewPlan(1)
	p.Partition("w1", ControllerNode)
	if !p.LinkBlocked("w1", ControllerNode) {
		t.Fatal("partitioned direction not blocked")
	}
	if p.LinkBlocked(ControllerNode, "w1") {
		t.Fatal("reverse direction blocked by a one-way rule")
	}
	if p.LinkBlocked("w2", ControllerNode) {
		t.Fatal("unrelated worker's link blocked")
	}
	p.Heal("w1", ControllerNode)
	if p.LinkBlocked("w1", ControllerNode) {
		t.Fatal("healed link still blocked")
	}
}

// TestPartitionHealLoggedOnce: re-partitioning a blocked link or healing
// an open one is a silent no-op, so the injection log records exactly the
// state transitions a chaos test should assert on.
func TestPartitionHealLoggedOnce(t *testing.T) {
	p := NewPlan(1)
	p.Partition("w1", ControllerNode)
	p.Partition("w1", ControllerNode) // already blocked: no-op
	p.Heal("w1", ControllerNode)
	p.Heal("w1", ControllerNode) // already open: no-op
	p.Heal("w2", ControllerNode) // never blocked: no-op

	inj := p.Injections()
	if len(inj) != 2 {
		t.Fatalf("injection log has %d entries, want 2: %+v", len(inj), inj)
	}
	if inj[0].Kind != KindLinkPartition || !strings.Contains(inj[0].Detail, "w1->controller") {
		t.Fatalf("first injection = %+v, want partition of w1->controller", inj[0])
	}
	if inj[1].Kind != KindLinkHeal || !strings.Contains(inj[1].Detail, "w1->controller") {
		t.Fatalf("second injection = %+v, want heal of w1->controller", inj[1])
	}
}

// TestPartitionAtStepFiresOnceViaBeforeStep: scheduled link rules are
// one-shot and step-gated, exactly like KillWorker — but the process
// stays alive, only its control messages vanish.
func TestPartitionAtStepFiresOnceViaBeforeStep(t *testing.T) {
	p := NewPlan(1)
	p.PartitionAtStep(5, "w1", ControllerNode)
	p.HealAtStep(9, "w1", ControllerNode)

	p.BeforeStep(4)
	if p.LinkBlocked("w1", ControllerNode) {
		t.Fatal("partition fired before its scheduled step")
	}
	p.BeforeStep(5)
	if !p.LinkBlocked("w1", ControllerNode) {
		t.Fatal("partition did not fire at its scheduled step")
	}
	p.BeforeStep(7) // between the two rules: still partitioned
	if !p.LinkBlocked("w1", ControllerNode) {
		t.Fatal("partition did not persist across steps")
	}
	p.BeforeStep(9)
	if p.LinkBlocked("w1", ControllerNode) {
		t.Fatal("heal did not fire at its scheduled step")
	}
	// One-shot: replaying earlier steps (a retry from a checkpoint) must
	// not re-partition the link.
	p.BeforeStep(5)
	if p.LinkBlocked("w1", ControllerNode) {
		t.Fatal("fired rule re-partitioned the link on step replay")
	}
	if inj := p.Injections(); len(inj) != 2 {
		t.Fatalf("injection log has %d entries, want 2: %+v", len(inj), inj)
	}
}
