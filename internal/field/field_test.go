package field

import (
	"math"
	"math/rand"
	"testing"

	"nestdiff/internal/geom"
)

func TestNewAndAccess(t *testing.T) {
	f := New(4, 3)
	f.Set(2, 1, 7)
	if f.At(2, 1) != 7 {
		t.Fatal("Set/At broken")
	}
	f.Add(2, 1, 3)
	if f.At(2, 1) != 10 {
		t.Fatal("Add broken")
	}
	if f.Sum() != 10 {
		t.Fatal("Sum broken")
	}
	if f.Max() != 10 {
		t.Fatal("Max broken")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 3)
}

func TestFillAndClone(t *testing.T) {
	f := New(3, 3)
	f.Fill(2)
	cp := f.Clone()
	cp.Set(0, 0, 9)
	if f.At(0, 0) != 2 {
		t.Fatal("Clone not deep")
	}
	if cp.Sum() != 8*2+9 { // 8 cells at 2 plus one at 9
		t.Fatalf("clone sum = %g", cp.Sum())
	}
}

func TestSubAndSetSubRoundTrip(t *testing.T) {
	f := New(8, 6)
	for y := 0; y < 6; y++ {
		for x := 0; x < 8; x++ {
			f.Set(x, y, float64(y*8+x))
		}
	}
	r := geom.NewRect(2, 1, 4, 3)
	sub := f.Sub(r)
	if sub.NX != 4 || sub.NY != 3 {
		t.Fatalf("sub extents %dx%d", sub.NX, sub.NY)
	}
	if sub.At(0, 0) != f.At(2, 1) || sub.At(3, 2) != f.At(5, 3) {
		t.Fatal("sub content wrong")
	}
	g := New(8, 6)
	g.SetSub(r, sub)
	for y := 0; y < 3; y++ {
		for x := 0; x < 4; x++ {
			if g.At(2+x, 1+y) != sub.At(x, y) {
				t.Fatal("SetSub content wrong")
			}
		}
	}
}

func TestBilinearExactOnGridPoints(t *testing.T) {
	f := New(5, 5)
	rng := rand.New(rand.NewSource(9))
	for i := range f.Data {
		f.Data[i] = rng.Float64()
	}
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			if got := f.Bilinear(float64(x), float64(y)); math.Abs(got-f.At(x, y)) > 1e-12 {
				t.Fatalf("Bilinear(%d,%d) = %g, want %g", x, y, got, f.At(x, y))
			}
		}
	}
}

func TestBilinearMidpointAndClamp(t *testing.T) {
	f := New(2, 2)
	f.Set(0, 0, 0)
	f.Set(1, 0, 1)
	f.Set(0, 1, 2)
	f.Set(1, 1, 3)
	if got := f.Bilinear(0.5, 0.5); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("midpoint = %g, want 1.5", got)
	}
	if got := f.Bilinear(-5, -5); got != 0 {
		t.Fatalf("clamped corner = %g, want 0", got)
	}
	if got := f.Bilinear(99, 99); got != 3 {
		t.Fatalf("clamped corner = %g, want 3", got)
	}
}

func TestBilinearReproducesLinearFunctions(t *testing.T) {
	// Property: bilinear interpolation is exact for f(x,y) = a + bx + cy.
	f := New(10, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			f.Set(x, y, 2+3*float64(x)+5*float64(y))
		}
	}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 9
		y := rng.Float64() * 9
		want := 2 + 3*x + 5*y
		if got := f.Bilinear(x, y); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Bilinear(%g,%g) = %g, want %g", x, y, got, want)
		}
	}
}

func TestRefineExtentsAndRange(t *testing.T) {
	f := New(10, 10)
	rng := rand.New(rand.NewSource(11))
	for i := range f.Data {
		f.Data[i] = rng.Float64()
	}
	r := geom.NewRect(2, 3, 4, 5)
	fine := Refine(f, r, 3)
	if fine.NX != 12 || fine.NY != 15 {
		t.Fatalf("refined extents %dx%d, want 12x15", fine.NX, fine.NY)
	}
	// Interpolated values must stay within the parent's range.
	lo, hi := 0.0, 1.0
	for _, v := range fine.Data {
		if v < lo-1e-12 || v > hi+1e-12 {
			t.Fatalf("refined value %g outside parent range", v)
		}
	}
}

func TestRefineConstantField(t *testing.T) {
	f := New(6, 6)
	f.Fill(4.5)
	fine := Refine(f, geom.NewRect(1, 1, 3, 3), 3)
	for _, v := range fine.Data {
		if math.Abs(v-4.5) > 1e-12 {
			t.Fatalf("constant field not preserved: %g", v)
		}
	}
}

func TestCoarsenInvertsRefineForSmoothFields(t *testing.T) {
	// Coarsen(Refine(f)) ≈ f on a smooth (linear) field away from borders.
	f := New(12, 12)
	for y := 0; y < 12; y++ {
		for x := 0; x < 12; x++ {
			f.Set(x, y, float64(x)+2*float64(y))
		}
	}
	r := geom.NewRect(2, 2, 8, 8)
	fine := Refine(f, r, 3)
	back := Coarsen(fine, 3)
	for y := 1; y < 7; y++ { // skip the border cells where clamping bites
		for x := 1; x < 7; x++ {
			want := f.At(r.X0+x, r.Y0+y)
			if got := back.At(x, y); math.Abs(got-want) > 1e-9 {
				t.Fatalf("round trip at (%d,%d): %g, want %g", x, y, got, want)
			}
		}
	}
}

func TestCoarsenAverages(t *testing.T) {
	fine := New(4, 4)
	for i := range fine.Data {
		fine.Data[i] = float64(i)
	}
	c := Coarsen(fine, 2)
	if c.NX != 2 || c.NY != 2 {
		t.Fatalf("coarse extents %dx%d", c.NX, c.NY)
	}
	want := (0.0 + 1 + 4 + 5) / 4
	if math.Abs(c.At(0, 0)-want) > 1e-12 {
		t.Fatalf("coarse(0,0) = %g, want %g", c.At(0, 0), want)
	}
	// Conservation: total mass is preserved up to the ratio² factor.
	if math.Abs(c.Sum()*4-fine.Sum()) > 1e-9 {
		t.Fatal("coarsening not conservative")
	}
}

func TestPanicsOnBadRegions(t *testing.T) {
	f := New(4, 4)
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("Sub outside", func() { f.Sub(geom.NewRect(2, 2, 4, 4)) })
	assertPanics("SetSub mismatch", func() { f.SetSub(geom.NewRect(0, 0, 2, 2), New(3, 3)) })
	assertPanics("SetSub outside", func() { f.SetSub(geom.NewRect(3, 3, 2, 2), New(2, 2)) })
	assertPanics("Refine ratio", func() { Refine(f, geom.NewRect(0, 0, 2, 2), 0) })
	assertPanics("Refine outside", func() { Refine(f, geom.NewRect(0, 0, 8, 8), 2) })
	assertPanics("Coarsen indivisible", func() { Coarsen(New(5, 4), 2) })
}
