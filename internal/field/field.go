// Package field provides the 2D scalar fields the surrogate weather model
// operates on: row-major grids with bilinear sampling, sub-region
// extraction, and the 3× refinement/coarsening used to initialize nested
// domains from their parent and to feed nest results back (§IV: "the
// initial data for the nested domains are interpolated from the parent
// domain", with nest resolution three times the parent's).
package field

import (
	"fmt"
	"math"

	"nestdiff/internal/geom"
)

// Field is a dense row-major 2D grid of float64 samples.
type Field struct {
	NX, NY int
	Data   []float64
}

// New returns a zero-filled nx×ny field. It panics on non-positive
// extents.
func New(nx, ny int) *Field {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("field: invalid extents %dx%d", nx, ny))
	}
	return &Field{NX: nx, NY: ny, Data: make([]float64, nx*ny)}
}

// At returns the sample at (x, y). Callers are expected to stay in bounds;
// the bounds check is the slice access itself.
func (f *Field) At(x, y int) float64 { return f.Data[y*f.NX+x] }

// Set stores v at (x, y).
func (f *Field) Set(x, y int, v float64) { f.Data[y*f.NX+x] = v }

// Add accumulates v at (x, y).
func (f *Field) Add(x, y int, v float64) { f.Data[y*f.NX+x] += v }

// Fill sets every sample to v.
func (f *Field) Fill(v float64) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// Clone returns a deep copy of f.
func (f *Field) Clone() *Field {
	out := New(f.NX, f.NY)
	copy(out.Data, f.Data)
	return out
}

// Bounds returns the rectangle covering the field.
func (f *Field) Bounds() geom.Rect { return geom.NewRect(0, 0, f.NX, f.NY) }

// Sub returns a copy of the samples inside r, which must lie within the
// field.
func (f *Field) Sub(r geom.Rect) *Field {
	if !f.Bounds().ContainsRect(r) || r.Empty() {
		panic(fmt.Sprintf("field: sub-region %v outside %dx%d", r, f.NX, f.NY))
	}
	out := New(r.Width(), r.Height())
	for y := 0; y < r.Height(); y++ {
		src := (r.Y0+y)*f.NX + r.X0
		copy(out.Data[y*out.NX:(y+1)*out.NX], f.Data[src:src+r.Width()])
	}
	return out
}

// SetSub copies sub into f at the position of r. The extents of r must
// match sub and lie within f.
func (f *Field) SetSub(r geom.Rect, sub *Field) {
	if r.Width() != sub.NX || r.Height() != sub.NY {
		panic(fmt.Sprintf("field: region %v does not match sub-field %dx%d", r, sub.NX, sub.NY))
	}
	if !f.Bounds().ContainsRect(r) {
		panic(fmt.Sprintf("field: region %v outside %dx%d", r, f.NX, f.NY))
	}
	for y := 0; y < sub.NY; y++ {
		dst := (r.Y0+y)*f.NX + r.X0
		copy(f.Data[dst:dst+sub.NX], sub.Data[y*sub.NX:(y+1)*sub.NX])
	}
}

// Bilinear samples the field at fractional coordinates, clamping to the
// border. Sample (i, j) is located at coordinates (i, j).
func (f *Field) Bilinear(x, y float64) float64 {
	x = clampF(x, 0, float64(f.NX-1))
	y = clampF(y, 0, float64(f.NY-1))
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	x1 := min(x0+1, f.NX-1)
	y1 := min(y0+1, f.NY-1)
	fx := x - float64(x0)
	fy := y - float64(y0)
	top := f.At(x0, y0)*(1-fx) + f.At(x1, y0)*fx
	bot := f.At(x0, y1)*(1-fx) + f.At(x1, y1)*fx
	return top*(1-fy) + bot*fy
}

// Sum returns the total of all samples.
func (f *Field) Sum() float64 {
	s := 0.0
	for _, v := range f.Data {
		s += v
	}
	return s
}

// Max returns the largest sample.
func (f *Field) Max() float64 {
	m := math.Inf(-1)
	for _, v := range f.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// Refine returns the region r of f resampled at ratio× resolution by
// bilinear interpolation — the nest initialization path. The result has
// extents ratio·width × ratio·height.
func Refine(f *Field, r geom.Rect, ratio int) *Field {
	if ratio < 1 {
		panic(fmt.Sprintf("field: invalid refinement ratio %d", ratio))
	}
	if !f.Bounds().ContainsRect(r) || r.Empty() {
		panic(fmt.Sprintf("field: refine region %v outside %dx%d", r, f.NX, f.NY))
	}
	out := New(r.Width()*ratio, r.Height()*ratio)
	inv := 1.0 / float64(ratio)
	for y := 0; y < out.NY; y++ {
		sy := float64(r.Y0) + (float64(y)+0.5)*inv - 0.5
		for x := 0; x < out.NX; x++ {
			sx := float64(r.X0) + (float64(x)+0.5)*inv - 0.5
			out.Set(x, y, f.Bilinear(sx, sy))
		}
	}
	return out
}

// Coarsen averages ratio×ratio blocks of fine back onto a coarse field —
// the nest feedback path. The extents of fine must be multiples of ratio.
func Coarsen(fine *Field, ratio int) *Field {
	if ratio < 1 || fine.NX%ratio != 0 || fine.NY%ratio != 0 {
		panic(fmt.Sprintf("field: cannot coarsen %dx%d by %d", fine.NX, fine.NY, ratio))
	}
	out := New(fine.NX/ratio, fine.NY/ratio)
	norm := 1.0 / float64(ratio*ratio)
	for y := 0; y < out.NY; y++ {
		for x := 0; x < out.NX; x++ {
			s := 0.0
			for dy := 0; dy < ratio; dy++ {
				for dx := 0; dx < ratio; dx++ {
					s += fine.At(x*ratio+dx, y*ratio+dy)
				}
			}
			out.Set(x, y, s*norm)
		}
	}
	return out
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
