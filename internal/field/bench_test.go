package field

import (
	"testing"

	"nestdiff/internal/geom"
)

func BenchmarkBilinear(b *testing.B) {
	f := New(360, 360)
	for i := range f.Data {
		f.Data[i] = float64(i % 97)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Bilinear(float64(i%359)+0.4, float64((i*7)%359)+0.6)
	}
}

func BenchmarkRefine3x(b *testing.B) {
	f := New(200, 200)
	for i := range f.Data {
		f.Data[i] = float64(i % 53)
	}
	r := geom.NewRect(40, 40, 100, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Refine(f, r, 3)
	}
}

func BenchmarkCoarsen3x(b *testing.B) {
	fine := New(300, 300)
	for i := range fine.Data {
		fine.Data[i] = float64(i % 31)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Coarsen(fine, 3)
	}
}
