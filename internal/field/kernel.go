package field

import (
	"fmt"
	"math"
	"sync"
)

// This file is the optimized kernel layer: the fused, row-wise
// semi-Lagrangian advection+decay pass and the separable Gaussian deposit
// that the simulation step loops (internal/wrfsim) are built on. Both
// kernels are drop-in replacements for the naive per-point loops they
// replace — AdvectDecay is bit-for-bit identical to per-point Bilinear
// sampling followed by a decay pass, and AddSeparableGaussian matches the
// fused two-dimensional exponential to a few ULPs (see the golden tests in
// kernel_test.go).

// AdvectSpec describes one uniform-flow semi-Lagrangian advection pass.
// The destination sample (x, y) is filled from the source field at the
// departure point of the constant flow (UX, VY), computed and clamped in
// global domain coordinates and then shifted into source coordinates:
//
//	gx := clampF(float64(GX0+x)-UX, 0, float64(GNX-1))
//	gy := clampF(float64(GY0+y)-VY, 0, float64(GNY-1))
//	dst(x, y) = src.Bilinear(gx-float64(GX0-OffX), gy-float64(GY0-OffY)) * Decay
//
// Serial callers advecting a whole domain in place use zero origins and
// offsets with GNX×GNY equal to the field extents; block-distributed
// callers pass their block origin (GX0, GY0), the global domain extents,
// and the halo width as the offset into their halo-extended source.
type AdvectSpec struct {
	// UX, VY is the flow displacement per step in grid cells.
	UX, VY float64
	// GX0, GY0 is the global coordinate of dst's (0, 0) sample.
	GX0, GY0 int
	// GNX, GNY are the global domain extents departure points clamp to.
	GNX, GNY int
	// OffX, OffY locate the global point (GX0, GY0) inside src: src sample
	// (OffX, OffY) holds global sample (GX0, GY0).
	OffX, OffY int
	// Decay is the exponential-decay multiplier folded into the same pass.
	Decay float64
}

// AdvectDecay fills dst row-wise with the uniform-flow semi-Lagrangian
// advection of src, folding the decay multiply into the same pass. It is
// bit-for-bit identical to evaluating the spec's reference formula per
// point, but hoists everything the uniform flow keeps constant out of the
// inner loop: the departure-row weights and row base pointers are computed
// once per row, the columns where any clamp could engage are resolved once
// per call, and the interior walks raw slices with no bounds-checked
// At/Bilinear calls and no math.Floor.
//
// dst and src must not alias; dst extents are the iteration space.
func AdvectDecay(dst, src *Field, sp AdvectSpec) {
	if dst == src {
		panic("field: AdvectDecay destination must not alias the source")
	}
	if sp.GNX < 1 || sp.GNY < 1 {
		panic(fmt.Sprintf("field: AdvectDecay invalid global extents %dx%d", sp.GNX, sp.GNY))
	}
	shiftX := float64(sp.GX0 - sp.OffX)
	shiftY := float64(sp.GY0 - sp.OffY)
	hiGX := float64(sp.GNX - 1)
	hiGY := float64(sp.GNY - 1)

	// srcX is one column's departure x in src coordinates, computed exactly
	// as the reference formula does: global clamp first, then the shift.
	srcX := func(x int) float64 {
		return clampF(float64(sp.GX0+x)-sp.UX, 0, hiGX) - shiftX
	}
	// interiorX reports whether column x is on the fast path: the global
	// clamp is a no-op, and the position is far enough inside src that
	// Bilinear's own clamp and the x0+1 neighbour access are no-ops too.
	interiorX := func(x int) bool {
		g := float64(sp.GX0+x) - sp.UX
		if g < 0 || g > hiGX {
			return false
		}
		px := g - shiftX
		return px >= 0 && px < float64(src.NX-1)
	}
	// Each interior condition is a one-sided threshold on a nondecreasing
	// sequence, so the fast-path columns form one contiguous run [xLo, xHi).
	xLo := 0
	for xLo < dst.NX && !interiorX(xLo) {
		xLo++
	}
	xHi := dst.NX
	for xHi > xLo && !interiorX(xHi-1) {
		xHi--
	}

	decay := sp.Decay
	for y := 0; y < dst.NY; y++ {
		gy := clampF(float64(sp.GY0+y)-sp.VY, 0, hiGY)
		py := gy - shiftY
		out := dst.Data[y*dst.NX : y*dst.NX+dst.NX]
		// Border columns where a clamp may engage: exact scalar path.
		for x := 0; x < xLo; x++ {
			out[x] = src.Bilinear(srcX(x), py) * decay
		}
		for x := xHi; x < dst.NX; x++ {
			out[x] = src.Bilinear(srcX(x), py) * decay
		}
		if xLo >= xHi {
			continue
		}
		// Row terms, hoisted: Bilinear's y clamp, floor and fractional
		// weight are identical for every column of this row.
		cy := clampF(py, 0, float64(src.NY-1))
		y0 := int(cy) // cy >= 0, so truncation == floor
		y1 := y0 + 1
		if y1 > src.NY-1 {
			y1 = src.NY - 1
		}
		fy := cy - float64(y0)
		wy0 := 1 - fy
		row0 := src.Data[y0*src.NX : y0*src.NX+src.NX]
		row1 := src.Data[y1*src.NX : y1*src.NX+src.NX]
		for x := xLo; x < xHi; x++ {
			px := (float64(sp.GX0+x) - sp.UX) - shiftX
			x0 := int(px) // px >= 0 on the fast path
			fx := px - float64(x0)
			wx0 := 1 - fx
			top := row0[x0]*wx0 + row0[x0+1]*fx
			bot := row1[x0]*wx0 + row1[x0+1]*fx
			out[x] = (top*wy0 + bot*fy) * decay
		}
	}
}

// gaussScratch is the pooled 1D weight-table scratch of the separable
// Gaussian deposit kernel. A sync.Pool (rather than per-field buffers)
// keeps concurrent depositors — parallel ranks, concurrently stepped
// nests — allocation-free without sharing mutable state.
type gaussScratch struct{ wx, wy []float64 }

var gaussPool = sync.Pool{New: func() any { return new(gaussScratch) }}

// AddSeparableGaussian accumulates amp·exp(−((x−cx)²+(y−cy)²)·inv) into f
// over the inclusive coordinate range [x0,x1]×[y0,y1], where (x, y) run in
// the caller's (global) coordinates and the sample (x, y) lives at
// f(x−offX, y−offY). The range, shifted by the offsets, must lie inside f.
//
// The Gaussian separates into per-axis 1D weight tables — O(W+H)
// exponentials instead of O(W·H) — followed by an outer-product
// accumulate over raw rows. Because the two axes' exponentials round
// independently, results match the fused per-point exponential to a few
// ULPs rather than exactly.
func (f *Field) AddSeparableGaussian(cx, cy, amp, inv float64, x0, y0, x1, y1, offX, offY int) {
	if x1 < x0 || y1 < y0 {
		return
	}
	w := x1 - x0 + 1
	h := y1 - y0 + 1
	s := gaussPool.Get().(*gaussScratch)
	if cap(s.wx) < w {
		s.wx = make([]float64, w)
	}
	if cap(s.wy) < h {
		s.wy = make([]float64, h)
	}
	wx := s.wx[:w]
	wy := s.wy[:h]
	for i := range wx {
		dx := float64(x0+i) - cx
		wx[i] = math.Exp(-(dx * dx) * inv)
	}
	for j := range wy {
		dy := float64(y0+j) - cy
		wy[j] = math.Exp(-(dy * dy) * inv)
	}
	for j := 0; j < h; j++ {
		rowAmp := amp * wy[j]
		base := (y0+j-offY)*f.NX + (x0 - offX)
		row := f.Data[base : base+w]
		for i, wv := range wx {
			row[i] += rowAmp * wv
		}
	}
	gaussPool.Put(s)
}
