package field

import (
	"math"
	"math/rand"
	"testing"

	"nestdiff/internal/geom"
)

// These tests pin the edge behavior the optimized kernels must preserve:
// Bilinear's border clamping on all four sides, the Sub/SetSub panic
// contracts, and the Refine/Coarsen round trip at the nest ratio.

func TestBilinearClampsAtAllFourBorders(t *testing.T) {
	f := New(5, 4)
	for y := 0; y < f.NY; y++ {
		for x := 0; x < f.NX; x++ {
			f.Set(x, y, float64(10*y+x))
		}
	}
	cases := []struct {
		name string
		x, y float64
		want float64
	}{
		{"west", -3.7, 2, f.At(0, 2)},
		{"east", 99.5, 2, f.At(4, 2)},
		{"north", 2, -0.01, f.At(2, 0)},
		{"south", 2, 17.4, f.At(2, 3)},
		{"north-west corner", -1, -1, f.At(0, 0)},
		{"north-east corner", 8, -2, f.At(4, 0)},
		{"south-west corner", -0.5, 9, f.At(0, 3)},
		{"south-east corner", 6, 5, f.At(4, 3)},
	}
	for _, c := range cases {
		if got := f.Bilinear(c.x, c.y); got != c.want {
			t.Errorf("%s: Bilinear(%g, %g) = %g, want %g", c.name, c.x, c.y, got, c.want)
		}
	}
	// Fractional positions clamped on one axis still interpolate on the
	// other: x clamped west, y halfway between rows 1 and 2.
	want := (f.At(0, 1) + f.At(0, 2)) / 2
	if got := f.Bilinear(-2, 1.5); math.Abs(got-want) > 1e-15 {
		t.Errorf("west+interp: got %g, want %g", got, want)
	}
}

func TestSubPanicContracts(t *testing.T) {
	f := New(6, 5)
	cases := []struct {
		name string
		r    geom.Rect
	}{
		{"empty region", geom.NewRect(2, 2, 0, 0)},
		{"west overhang", geom.NewRect(-1, 0, 3, 3)},
		{"east overhang", geom.NewRect(4, 0, 3, 3)},
		{"south overhang", geom.NewRect(0, 3, 3, 3)},
	}
	for _, c := range cases {
		mustPanic(t, "Sub "+c.name, func() { f.Sub(c.r) })
	}
	// In-bounds region must not panic.
	if sub := f.Sub(geom.NewRect(0, 0, 6, 5)); sub.NX != 6 || sub.NY != 5 {
		t.Fatalf("full-field Sub got %dx%d", sub.NX, sub.NY)
	}
}

func TestSetSubPanicContracts(t *testing.T) {
	f := New(6, 5)
	sub := New(3, 3)
	mustPanic(t, "SetSub extent mismatch", func() {
		f.SetSub(geom.NewRect(0, 0, 2, 3), sub)
	})
	mustPanic(t, "SetSub out of bounds", func() {
		f.SetSub(geom.NewRect(4, 3, 3, 3), sub)
	})
	f.SetSub(geom.NewRect(3, 2, 3, 3), sub) // in-bounds: must not panic
}

func TestRefine3xCoarsen3xRoundTripBounds(t *testing.T) {
	// Refine then Coarsen at the nest ratio is not exactly the identity
	// (bilinear refinement then block averaging smooths), but on a smooth
	// field the round trip must stay close and must be exact on constants.
	rng := rand.New(rand.NewSource(3))
	f := New(30, 24)
	for y := 0; y < f.NY; y++ {
		for x := 0; x < f.NX; x++ {
			f.Set(x, y, 5+2*math.Sin(float64(x)/7)+math.Cos(float64(y)/5)+0.05*rng.Float64())
		}
	}
	region := geom.NewRect(4, 3, 18, 15)
	back := Coarsen(Refine(f, region, 3), 3)
	if back.NX != region.Width() || back.NY != region.Height() {
		t.Fatalf("round trip extents %dx%d, want %dx%d",
			back.NX, back.NY, region.Width(), region.Height())
	}
	worst := 0.0
	for y := 0; y < back.NY; y++ {
		for x := 0; x < back.NX; x++ {
			if d := math.Abs(back.At(x, y) - f.At(region.X0+x, region.Y0+y)); d > worst {
				worst = d
			}
		}
	}
	if worst > 0.08 {
		t.Fatalf("smooth-field round-trip error %g exceeds bound 0.08", worst)
	}

	c := New(9, 9)
	c.Fill(2.5)
	back = Coarsen(Refine(c, geom.NewRect(1, 1, 6, 6), 3), 3)
	for i, v := range back.Data {
		if v != 2.5 {
			t.Fatalf("constant round trip sample %d = %g, want 2.5 exactly", i, v)
		}
	}
}
