package field

import (
	"math"
	"math/rand"
	"testing"
)

// referenceAdvectDecay is the pre-kernel per-point formula AdvectDecay
// must reproduce bit-for-bit: global departure-point clamp, Bilinear
// sample in source coordinates, then the decay multiply.
func referenceAdvectDecay(dst, src *Field, sp AdvectSpec) {
	for y := 0; y < dst.NY; y++ {
		for x := 0; x < dst.NX; x++ {
			gx := clampF(float64(sp.GX0+x)-sp.UX, 0, float64(sp.GNX-1))
			gy := clampF(float64(sp.GY0+y)-sp.VY, 0, float64(sp.GNY-1))
			v := src.Bilinear(gx-float64(sp.GX0-sp.OffX), gy-float64(sp.GY0-sp.OffY))
			dst.Set(x, y, v*sp.Decay)
		}
	}
}

// referenceGaussian is the fused 2D exponential the separable kernel
// replaces.
func referenceGaussian(f *Field, cx, cy, amp, inv float64, x0, y0, x1, y1, offX, offY int) {
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			f.Add(x-offX, y-offY, amp*math.Exp(-(dx*dx+dy*dy)*inv))
		}
	}
}

func randomField(rng *rand.Rand, nx, ny int) *Field {
	f := New(nx, ny)
	for i := range f.Data {
		f.Data[i] = rng.Float64() * 10
	}
	return f
}

func TestAdvectDecayMatchesReferenceSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	flows := [][2]float64{
		{0, 0}, {0.37, 0.21}, {-0.8, 0.55}, {1.9, -2.3}, {0.999, 0.001},
		{250, 250}, {-250, -250}, // displacement far past the domain: pure clamp
	}
	for _, fl := range flows {
		src := randomField(rng, 47, 31)
		sp := AdvectSpec{UX: fl[0], VY: fl[1], GNX: src.NX, GNY: src.NY, Decay: 0.93}
		want := New(src.NX, src.NY)
		referenceAdvectDecay(want, src, sp)
		got := New(src.NX, src.NY)
		AdvectDecay(got, src, sp)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("flow %v: sample %d = %g, want %g (must be bit-identical)",
					fl, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestAdvectDecayMatchesReferenceHaloBlocks(t *testing.T) {
	// The block-distributed shape: dst is an interior block of a larger
	// global domain, src is the halo-extended block, and departure points
	// clamp to the global extents.
	rng := rand.New(rand.NewSource(11))
	const gnx, gny, halo = 60, 44, 2
	blocks := []struct{ x0, y0, w, h int }{
		{0, 0, 20, 22},   // NW corner block
		{40, 22, 20, 22}, // SE corner block
		{20, 11, 20, 22}, // interior block
		{0, 22, 60, 22},  // full-width strip
		{58, 0, 2, 44},   // halo-thin edge block
	}
	for _, blk := range blocks {
		for _, fl := range [][2]float64{{0.4, 0.7}, {-1.3, 0.2}, {2.5, -1.9}} {
			src := randomField(rng, blk.w+2*halo, blk.h+2*halo)
			sp := AdvectSpec{
				UX: fl[0], VY: fl[1],
				GX0: blk.x0, GY0: blk.y0,
				GNX: gnx, GNY: gny,
				OffX: halo, OffY: halo,
				Decay: 0.96,
			}
			want := New(blk.w, blk.h)
			referenceAdvectDecay(want, src, sp)
			got := New(blk.w, blk.h)
			AdvectDecay(got, src, sp)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("block %+v flow %v: sample %d = %g, want %g (must be bit-identical)",
						blk, fl, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func TestAdvectDecayRandomizedExactEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		gnx := 4 + rng.Intn(40)
		gny := 4 + rng.Intn(40)
		w := 1 + rng.Intn(gnx)
		h := 1 + rng.Intn(gny)
		x0 := rng.Intn(gnx - w + 1)
		y0 := rng.Intn(gny - h + 1)
		off := rng.Intn(3)
		src := randomField(rng, w+2*off, h+2*off)
		sp := AdvectSpec{
			UX: (rng.Float64() - 0.5) * 8, VY: (rng.Float64() - 0.5) * 8,
			GX0: x0, GY0: y0, GNX: gnx, GNY: gny,
			OffX: off, OffY: off,
			Decay: 0.5 + rng.Float64()/2,
		}
		want := New(w, h)
		referenceAdvectDecay(want, src, sp)
		got := New(w, h)
		AdvectDecay(got, src, sp)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("trial %d (%+v): sample %d = %g, want %g",
					trial, sp, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestAdvectDecayPanics(t *testing.T) {
	f := New(4, 4)
	mustPanic(t, "aliased dst", func() {
		AdvectDecay(f, f, AdvectSpec{GNX: 4, GNY: 4, Decay: 1})
	})
	mustPanic(t, "bad extents", func() {
		AdvectDecay(New(4, 4), f, AdvectSpec{GNX: 0, GNY: 4, Decay: 1})
	})
}

func TestSeparableGaussianMatchesFusedWithin1e12(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		nx := 5 + rng.Intn(50)
		ny := 5 + rng.Intn(50)
		cx := rng.Float64() * float64(nx)
		cy := rng.Float64() * float64(ny)
		rad := 0.5 + rng.Float64()*6
		amp := rng.Float64() * 3
		inv := 1 / (2 * rad * rad)
		x0, x1 := 0, nx-1
		y0, y1 := 0, ny-1
		if trial%2 == 1 { // restricted window, offset accumulate
			x0, x1 = nx/4, nx-1-nx/4
			y0, y1 = ny/4, ny-1-ny/4
		}
		want := randomField(rng, nx, ny)
		got := want.Clone()
		referenceGaussian(want, cx, cy, amp, inv, x0, y0, x1, y1, 0, 0)
		got.AddSeparableGaussian(cx, cy, amp, inv, x0, y0, x1, y1, 0, 0)
		for i := range want.Data {
			if d := math.Abs(got.Data[i] - want.Data[i]); d > 1e-12 {
				t.Fatalf("trial %d: sample %d differs by %g (> 1e-12)", trial, i, d)
			}
		}
	}
}

func TestSeparableGaussianEmptyWindowIsNoop(t *testing.T) {
	f := New(4, 4)
	f.Fill(1)
	f.AddSeparableGaussian(2, 2, 1, 1, 3, 3, 2, 2, 0, 0)
	for i, v := range f.Data {
		if v != 1 {
			t.Fatalf("sample %d mutated to %g by empty window", i, v)
		}
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

// BenchmarkAdvect compares the fused kernel against the per-point
// reference it replaced, on the default parent domain extents.
func BenchmarkAdvect(b *testing.B) {
	src := New(180, 105)
	for i := range src.Data {
		src.Data[i] = float64(i % 89)
	}
	dst := New(180, 105)
	sp := AdvectSpec{UX: 0.45, VY: 0.3, GNX: 180, GNY: 105, Decay: 0.95}
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			AdvectDecay(dst, src, sp)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			referenceAdvectDecay(dst, src, sp)
		}
	})
}

// BenchmarkDeposit compares the separable Gaussian deposit against the
// fused 2D exponential it replaced, at a typical cell footprint.
func BenchmarkDeposit(b *testing.B) {
	f := New(180, 105)
	var (
		cx, cy = 90.3, 52.7
		rad    = 9.0
		amp    = 0.8
	)
	inv := 1 / (2 * rad * rad)
	x0, x1 := int(cx-3*rad), int(cx+3*rad)+1
	y0, y1 := int(cy-3*rad), int(cy+3*rad)+1
	b.Run("separable", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.AddSeparableGaussian(cx, cy, amp, inv, x0, y0, x1, y1, 0, 0)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			referenceGaussian(f, cx, cy, amp, inv, x0, y0, x1, y1, 0, 0)
		}
	})
}
