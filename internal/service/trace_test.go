package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nestdiff/internal/obs"
)

// tracedJob is smallJob with tracing on.
func tracedJob(steps, buffer int) JobConfig {
	cfg := smallJob(steps)
	cfg.Trace = true
	cfg.TraceBuffer = buffer
	return cfg
}

func shutdownNow(t *testing.T, s *Scheduler) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestTraceEndpointUnknownJob(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer shutdownNow(t, s)
	h := NewHandler(s)
	for _, path := range []string{"/jobs/nope/trace", "/jobs/nope/timeline"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, rec.Code)
		}
	}
}

func TestTraceDisabledJobIsEmpty(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer shutdownNow(t, s)
	snap, err := s.Submit(smallJob(3))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, snap.ID, "done", func(sn Snapshot) bool { return sn.State == StateDone })

	rec := httptest.NewRecorder()
	NewHandler(s).ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/"+snap.ID+"/trace", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET trace = %d, want 200", rec.Code)
	}
	var tr Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Enabled || len(tr.Events) != 0 {
		t.Fatalf("untraced job returned enabled=%v with %d events, want disabled and empty", tr.Enabled, len(tr.Events))
	}
	tl, err := s.JobTimeline(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Enabled || len(tl.Phases) != 0 {
		t.Fatalf("untraced timeline enabled=%v phases=%d, want disabled and empty", tl.Enabled, len(tl.Phases))
	}
}

func TestTraceBoundedBufferTruncates(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer shutdownNow(t, s)
	snap, err := s.Submit(tracedJob(30, 8))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, snap.ID, "done", func(sn Snapshot) bool { return sn.State == StateDone })

	tr, err := s.JobTrace(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Enabled {
		t.Fatal("traced job reported disabled")
	}
	if len(tr.Events) != 8 {
		t.Fatalf("ring kept %d events, want exactly the buffer size 8", len(tr.Events))
	}
	if tr.Dropped <= 0 {
		t.Fatalf("dropped = %d, want > 0 for a 30-step job in an 8-event ring", tr.Dropped)
	}
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Seq != tr.Events[i-1].Seq+1 {
			t.Fatalf("event seqs not contiguous: %d then %d", tr.Events[i-1].Seq, tr.Events[i].Seq)
		}
	}
	// The streaming aggregates must survive ring eviction: far more steps
	// were timed than the ring retains.
	tl, err := s.JobTimeline(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tl.StepLatency == nil || tl.StepLatency.Count != 30 {
		t.Fatalf("step-latency aggregate = %+v, want count 30 despite the tiny ring", tl.StepLatency)
	}
}

// TestTimelinePhasesSumToAttemptWallTime is the acceptance criterion: the
// per-phase durations of a traced job's timeline must sum (within
// tolerance) to the job's total attempt wall time.
func TestTimelinePhasesSumToAttemptWallTime(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer shutdownNow(t, s)
	snap, err := s.Submit(tracedJob(40, 0))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, snap.ID, "done", func(sn Snapshot) bool { return sn.State == StateDone })

	tl, err := s.JobTimeline(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tl.State != StateDone || !tl.Enabled {
		t.Fatalf("timeline state=%s enabled=%v, want done and enabled", tl.State, tl.Enabled)
	}
	if tl.TotalNS <= 0 || tl.PhaseNS <= 0 {
		t.Fatalf("timeline totals empty: total=%d phase=%d", tl.TotalNS, tl.PhaseNS)
	}
	ratio := float64(tl.PhaseNS) / float64(tl.TotalNS)
	if ratio < 0.50 || ratio > 1.10 {
		t.Fatalf("phase sum %d ns is %.2fx of attempt wall time %d ns, want within [0.50, 1.10]",
			tl.PhaseNS, ratio, tl.TotalNS)
	}
	names := map[string]bool{}
	for _, p := range tl.Phases {
		names[p.Name] = true
	}
	for _, want := range []string{"build", "model", "nests", "observe"} {
		if !names[want] {
			t.Errorf("timeline is missing phase %q (has %v)", want, tl.Phases)
		}
	}
}

// TestDecisionEventsMatchAdaptations is the acceptance criterion: a
// traced job's scratch-vs-diffusion decision records must match the
// tracker's adaptation events one-to-one.
func TestDecisionEventsMatchAdaptations(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer shutdownNow(t, s)
	cfg := tracedJob(40, 0)
	cfg.Strategy = "dynamic"
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, snap.ID, "done", func(sn Snapshot) bool { return sn.State == StateDone })

	tr, err := s.JobTrace(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	var decisions []obs.Event
	for _, e := range tr.Events {
		if e.Kind == obs.KindDecision {
			decisions = append(decisions, e)
		}
	}
	adapts, err := s.JobEvents(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(adapts) == 0 {
		t.Fatal("job produced no adaptation events; scenario too quiet to test against")
	}
	if len(decisions) != len(adapts) {
		t.Fatalf("%d decision events vs %d adaptation events, want one-to-one", len(decisions), len(adapts))
	}
	for i, d := range decisions {
		if got, want := d.Strategy, adapts[i].Metrics.Used.String(); got != want {
			t.Errorf("decision %d used strategy %q, adaptation event says %q", i, got, want)
		}
		if d.Step != adapts[i].Step {
			t.Errorf("decision %d at step %d, adaptation event at step %d", i, d.Step, adapts[i].Step)
		}
	}
}

func TestTraceLedgerWrittenAndRecoverable(t *testing.T) {
	dir := t.TempDir()
	s := NewScheduler(SchedulerConfig{Workers: 1, LedgerDir: dir})
	defer shutdownNow(t, s)
	snap, err := s.Submit(tracedJob(12, 0))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, snap.ID, "done", func(sn Snapshot) bool { return sn.State == StateDone })

	tr, err := s.JobTrace(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snap.ID+".jsonl")
	if tr.LedgerPath != path {
		t.Fatalf("trace reports ledger %q, want %q", tr.LedgerPath, path)
	}
	if tr.LedgerError != "" {
		t.Fatalf("ledger error: %s", tr.LedgerError)
	}
	events, skipped, err := obs.ReadLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("clean ledger skipped %d lines", skipped)
	}
	// The ledger keeps everything the bounded ring may have evicted; its
	// tail must be exactly the buffered events.
	if len(events) < len(tr.Events) {
		t.Fatalf("ledger holds %d events, fewer than the %d buffered", len(events), len(tr.Events))
	}
	tail := events[len(events)-len(tr.Events):]
	for i := range tail {
		if tail[i].Seq != tr.Events[i].Seq || tail[i].Kind != tr.Events[i].Kind {
			t.Fatalf("ledger tail diverges at %d: %+v vs %+v", i, tail[i], tr.Events[i])
		}
	}

	// Tear the final line as a crash would and verify recovery drops only
	// that line.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}
	recovered, skipped, err := obs.ReadLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || len(recovered) != len(events)-1 {
		t.Fatalf("torn ledger recovered %d events with %d skipped, want %d and 1",
			len(recovered), skipped, len(events)-1)
	}
}

func TestMetricsExposeQueueAndHistogramSeries(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer shutdownNow(t, s)
	snap, err := s.Submit(smallJob(5))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, snap.ID, "done", func(sn Snapshot) bool { return sn.State == StateDone })

	rec := httptest.NewRecorder()
	NewHandler(s).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"nestserved_queue_depth 0",
		"nestserved_queue_capacity 256",
		"nestserved_jobs_running 0",
		"nestserved_step_duration_seconds_count 5",
		`nestserved_step_duration_seconds{quantile="0.5"}`,
		"nestserved_checkpoint_duration_seconds_count",
		"nestserved_job_duration_seconds_count 1",
		"nestserved_trace_ledger_failures_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
