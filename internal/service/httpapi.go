package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// maxJobBody bounds POST /jobs request bodies.
const maxJobBody = 1 << 20

// NewHandler returns the nestserved JSON API over a scheduler:
//
//	POST /jobs               submit a job (JobConfig body) → 201 Snapshot
//	GET  /jobs               list all jobs → []Snapshot
//	GET  /jobs/{id}          one job's progress → Snapshot
//	POST /jobs/{id}/cancel   cancel (queued/paused: now; running: next step)
//	POST /jobs/{id}/pause    pause; running jobs checkpoint at the next step
//	POST /jobs/{id}/resume   re-enqueue a paused job from its checkpoint
//	GET  /jobs/{id}/events   adaptation events so far → []AdaptationEvent
//	GET  /jobs/{id}/trace    buffered trace events of a traced job → Trace
//	GET  /jobs/{id}/timeline per-phase timing breakdown → Timeline
//	GET  /metrics            Prometheus text exposition format
//	GET  /healthz            liveness probe
//	GET  /readyz             readiness probe (503 once shutdown begins)
//
// Request bodies larger than maxJobBody are rejected with 413; malformed
// or unknown-field JSON with 400; unknown job IDs with 404.
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var cfg JobConfig
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			code := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				code = http.StatusRequestEntityTooLarge
			}
			writeError(w, code, err)
			return
		}
		snap, err := s.Submit(cfg)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, snap)
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		snap, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})

	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		events, err := s.JobEvents(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, events)
	})

	mux.HandleFunc("GET /jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		trace, err := s.JobTrace(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, trace)
	})

	mux.HandleFunc("GET /jobs/{id}/timeline", func(w http.ResponseWriter, r *http.Request) {
		tl, err := s.JobTimeline(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, tl)
	})

	for _, op := range []struct {
		verb string
		do   func(id string) error
	}{
		{"cancel", s.Cancel},
		{"pause", s.Pause},
		{"resume", s.Resume},
	} {
		op := op
		mux.HandleFunc("POST /jobs/{id}/"+op.verb, func(w http.ResponseWriter, r *http.Request) {
			id := r.PathValue("id")
			if err := op.do(id); err != nil {
				writeError(w, statusFor(err), err)
				return
			}
			snap, err := s.Get(id)
			if err != nil {
				writeError(w, statusFor(err), err)
				return
			}
			writeJSON(w, http.StatusOK, snap)
		})
	}

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WritePrometheus(w)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			writeError(w, http.StatusServiceUnavailable, ErrShuttingDown)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ready\n"))
	})

	return mux
}

// statusFor maps scheduler errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrBadTransition):
		return http.StatusConflict
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
