package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"nestdiff/internal/core"
	"nestdiff/internal/serve"
)

// maxJobBody bounds POST /jobs request bodies.
const maxJobBody = 1 << 20

// maxImportBody bounds POST /jobs/{id}/import checkpoint bodies.
const maxImportBody = 1 << 30

// DefaultRetryAfterSeconds is the Retry-After hint sent with 429
// load-shedding responses — the worker's submit queue and the fleet
// admission path both use it unless configured otherwise.
const DefaultRetryAfterSeconds = 1

// NewHandler returns the nestserved JSON API over a scheduler:
//
//	POST /jobs               submit a job (JobConfig body) → 201 Snapshot
//	GET  /jobs               list all jobs → []Snapshot
//	GET  /jobs/{id}          one job's progress → Snapshot
//	POST /jobs/{id}/cancel   cancel (queued/paused: now; running: next step)
//	POST /jobs/{id}/pause    pause; running jobs checkpoint at the next step
//	POST /jobs/{id}/resume   re-enqueue a paused job from its checkpoint
//	POST /jobs/{id}/resize?procs=N  change the processor count: running jobs
//	                         checkpoint, resize the grid in place at the next
//	                         step boundary and resume; unstarted jobs just
//	                         build at the new size
//	GET  /jobs/{id}/events   adaptation events so far → []AdaptationEvent;
//	                         with Accept: text/event-stream, a live SSE
//	                         stream of the trace ring (Last-Event-ID resumes)
//	GET  /jobs/{id}/field    quantized tiles of the latest step-boundary
//	                         field snapshot (?var=&rect=x0,y0,w,h&step=N)
//	GET  /jobs/{id}/trace    buffered trace events of a traced job → Trace
//	GET  /jobs/{id}/timeline per-phase timing breakdown → Timeline
//	GET  /metrics            Prometheus text exposition format
//	GET  /healthz            liveness probe
//	GET  /readyz             readiness probe (503 once shutdown begins)
//
// Fleet and handoff surface (consumed by cmd/nestctl and by operators
// migrating jobs between workers):
//
//	GET  /statz                  worker stats for fleet aggregation → WorkerStats
//	GET  /jobs/{id}/checkpoint   export the job checkpoint envelope (config + pipeline state)
//	POST /jobs/{id}/import       register an exported envelope here as a paused job → 201
//	POST /fleet/jobs             submit under a controller-chosen ID ({"id","config","epoch"}) → 201
//	POST /fleet/adopt            adopt a dead worker's job from the shared checkpoint store
//	POST /fleet/fence            kill the local copy of a re-homed job ({"id","epoch"})
//
// Request bodies larger than maxJobBody are rejected with 413; malformed
// or unknown-field JSON with 400; unknown job IDs with 404; a full submit
// queue with 429 plus a Retry-After header.
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var cfg JobConfig
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			code := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				code = http.StatusRequestEntityTooLarge
			}
			writeError(w, code, err)
			return
		}
		snap, err := s.Submit(cfg)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, snap)
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		snap, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})

	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		// With `Accept: text/event-stream` this endpoint upgrades to a live
		// SSE stream of the job's trace ring: buffered events replay first,
		// then new ones arrive as the job steps. Last-Event-ID (or
		// ?last_event_id=) resumes without duplicates or gaps; a cursor the
		// ring has already evicted gets an explicit `gap` event.
		if serve.WantsSSE(r) {
			tr, err := s.jobObsTracer(r.PathValue("id"))
			if err != nil {
				writeError(w, statusFor(err), err)
				return
			}
			serve.ServeSSE(w, r, tr, serve.SSEOptions{})
			return
		}
		events, err := s.JobEvents(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, events)
	})

	mux.HandleFunc("GET /jobs/{id}/field", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		body, err := s.ReadField(r.PathValue("id"), q.Get("var"), q.Get("rect"), q.Get("step"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(body)
	})

	mux.HandleFunc("GET /jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		trace, err := s.JobTrace(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, trace)
	})

	mux.HandleFunc("GET /jobs/{id}/timeline", func(w http.ResponseWriter, r *http.Request) {
		tl, err := s.JobTimeline(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, tl)
	})

	for _, op := range []struct {
		verb string
		do   func(id string) error
	}{
		{"cancel", s.Cancel},
		{"pause", s.Pause},
		{"resume", s.Resume},
	} {
		op := op
		mux.HandleFunc("POST /jobs/{id}/"+op.verb, func(w http.ResponseWriter, r *http.Request) {
			id := r.PathValue("id")
			if err := op.do(id); err != nil {
				writeError(w, statusFor(err), err)
				return
			}
			snap, err := s.Get(id)
			if err != nil {
				writeError(w, statusFor(err), err)
				return
			}
			writeJSON(w, http.StatusOK, snap)
		})
	}

	mux.HandleFunc("POST /jobs/{id}/resize", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		procs, err := strconv.Atoi(r.URL.Query().Get("procs"))
		if err != nil || procs < 1 {
			writeError(w, http.StatusBadRequest, errors.New("service: resize needs ?procs=N with N >= 1"))
			return
		}
		if err := s.ResizeJob(id, procs); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		snap, err := s.Get(id)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})

	mux.HandleFunc("GET /jobs/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		env, err := s.ExportCheckpoint(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(env)
	})

	mux.HandleFunc("POST /jobs/{id}/import", func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxImportBody))
		if err != nil {
			code := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				code = http.StatusRequestEntityTooLarge
			}
			writeError(w, code, err)
			return
		}
		cfg, epoch, state, err := decodeJobCheckpoint(data)
		if err != nil && !errors.Is(err, core.ErrDeltaChainBroken) {
			// A broken delta-chain tail is importable: the restore falls
			// back to the chain's intact prefix. Anything else is rejected.
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// The controller sends the bumped placement epoch in a header when
		// migrating; a manual import keeps the envelope's own epoch.
		if hdr := r.Header.Get("X-Fleet-Epoch"); hdr != "" {
			e, perr := strconv.ParseInt(hdr, 10, 64)
			if perr != nil {
				writeError(w, http.StatusBadRequest, errors.New("service: bad X-Fleet-Epoch header"))
				return
			}
			if e > epoch {
				epoch = e
			}
		}
		snap, err := s.Import(r.PathValue("id"), epoch, cfg, state)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, snap)
	})

	// fleetJobBody is the controller-to-worker placement and adoption
	// message: the fleet-wide job ID, its placement epoch and the job
	// config.
	type fleetJobBody struct {
		ID     string    `json:"id"`
		Epoch  int64     `json:"epoch,omitempty"`
		Config JobConfig `json:"config"`
	}
	decodeFleetBody := func(w http.ResponseWriter, r *http.Request) (fleetJobBody, bool) {
		var body fleetJobBody
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&body); err != nil {
			code := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				code = http.StatusRequestEntityTooLarge
			}
			writeError(w, code, err)
			return body, false
		}
		if body.ID == "" {
			writeError(w, http.StatusBadRequest, errors.New("service: fleet job body needs an id"))
			return body, false
		}
		return body, true
	}

	mux.HandleFunc("POST /fleet/jobs", func(w http.ResponseWriter, r *http.Request) {
		body, ok := decodeFleetBody(w, r)
		if !ok {
			return
		}
		snap, err := s.SubmitWithID(body.ID, body.Epoch, body.Config)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, snap)
	})

	mux.HandleFunc("POST /fleet/adopt", func(w http.ResponseWriter, r *http.Request) {
		body, ok := decodeFleetBody(w, r)
		if !ok {
			return
		}
		snap, err := s.Adopt(body.ID, body.Epoch, body.Config)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})

	mux.HandleFunc("POST /fleet/fence", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			ID    string `json:"id"`
			Epoch int64  `json:"epoch"`
		}
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if body.ID == "" {
			writeError(w, http.StatusBadRequest, errors.New("service: fence body needs an id"))
			return
		}
		if err := s.Fence(body.ID, body.Epoch); err != nil && !errors.Is(err, ErrNotFound) {
			// A missing job is a successful fence: there is no copy to kill.
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "fenced"})
	})

	mux.HandleFunc("GET /statz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WritePrometheus(w)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			writeError(w, http.StatusServiceUnavailable, ErrShuttingDown)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ready\n"))
	})

	return mux
}

// statusFor maps scheduler errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound), errors.Is(err, serve.ErrNoSnapshot), errors.Is(err, errStaleStep):
		return http.StatusNotFound
	case errors.Is(err, ErrBadTransition), errors.Is(err, ErrJobExists):
		return http.StatusConflict
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}

// WriteRetryAfter sheds one request: 429 Too Many Requests with a
// Retry-After hint of the given number of seconds (minimum 1) and a JSON
// error body. The worker API uses it when the submit queue is full; the
// fleet controller reuses it verbatim for its own admission path, so a
// saturated fleet and a saturated worker speak the same protocol.
func WriteRetryAfter(w http.ResponseWriter, seconds int, err error) {
	if seconds < 1 {
		seconds = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(seconds))
	writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusTooManyRequests {
		WriteRetryAfter(w, DefaultRetryAfterSeconds, err)
		return
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
