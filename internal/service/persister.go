package service

import (
	"encoding/json"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"nestdiff/internal/core"
)

// The persister is the scheduler's asynchronous checkpoint-persistence
// tier: workers encode checkpoints on the step loop but hand the file
// I/O (and its fsync) to a single background goroutine through a FIFO
// queue, so disk latency never extends a step boundary. Ordering per job
// is guaranteed by the single consumer; a pause waits for its own op to
// land (via ckptOp.done) so a drain leaves complete files behind.
//
// Delta checkpoints exploit the queue's ordering for an append-mode fast
// path: when the persister knows the incumbent file is exactly the
// config prefix plus the chain it has written so far (same epoch, same
// config bytes, same size on disk), a delta op appends only the new blob
// with O_APPEND + fsync instead of rewriting the whole chain. Anything
// that breaks that invariant — a full base, a resize (config change), an
// epoch bump, a file someone else touched — falls back to one atomic
// full rewrite, which re-establishes it.
//
// Fencing is preserved from the synchronous path: before touching a
// shared-store file on behalf of a fleet-managed job, the persister reads
// just the envelope header (21 bytes) and refuses the write if the
// incumbent carries a higher placement epoch, flagging the local copy to
// self-fence.

// ckptOp is one queued persistence action for a job's checkpoint file.
type ckptOp struct {
	j     *Job
	id    string
	cfg   JobConfig // captured under j.mu at enqueue time
	epoch int64     // captured under j.mu at enqueue time
	chain []byte    // the full restorable chain (rewrite path)
	tail  []byte    // the blob this op appended to the chain; nil forces a rewrite
	full  bool      // tail is a full base (starts a fresh file)
	done  chan struct{}
}

// ckptFile is the persister's belief about one job's on-disk file. dead
// marks a removed terminal file so late queued appends cannot resurrect
// it. The mutex orders the queue consumer against synchronous removals;
// nothing ever takes j.mu while holding it.
type ckptFile struct {
	mu     sync.Mutex
	dead   bool
	valid  bool // size/epoch/cfgCRC describe the file we last wrote
	size   int64
	epoch  int64
	cfgCRC uint32
}

type persister struct {
	s    *Scheduler
	ops  chan ckptOp
	done chan struct{}

	mu    sync.Mutex
	files map[string]*ckptFile
}

func newPersister(s *Scheduler) *persister {
	return &persister{
		s:     s,
		ops:   make(chan ckptOp, 64),
		done:  make(chan struct{}),
		files: make(map[string]*ckptFile),
	}
}

// file returns (creating if needed) the tracked state for a job's file.
func (p *persister) file(id string) *ckptFile {
	p.mu.Lock()
	defer p.mu.Unlock()
	f := p.files[id]
	if f == nil {
		f = &ckptFile{}
		p.files[id] = f
	}
	return f
}

// run consumes the queue until it is closed (drain: remaining ops are
// applied) or the scheduler is killed (simulated crash: pending ops are
// abandoned, like writes lost in a real process death).
func (p *persister) run() {
	defer close(p.done)
	for {
		select {
		case op, ok := <-p.ops:
			if !ok {
				return
			}
			p.apply(op)
		case <-p.s.kill:
			return
		}
	}
}

// readCkptEpoch reads a checkpoint file's placement epoch from its header
// alone — one 21-byte pread, never the payload.
func readCkptEpoch(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [jobCkptHeaderLen]byte
	n, err := io.ReadFull(f, hdr[:])
	if err != nil && err != io.ErrUnexpectedEOF {
		return 0, err
	}
	return jobCheckpointEpoch(hdr[:n])
}

// apply lands one op on disk.
func (p *persister) apply(op ckptOp) {
	if op.done != nil {
		defer close(op.done)
	}
	f := p.file(op.id)
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return
	}
	path := filepath.Join(p.s.cfg.CheckpointDir, op.id+".ckpt")
	if op.epoch > 0 {
		if prevEpoch, err := readCkptEpoch(path); err == nil && prevEpoch > op.epoch {
			// Another worker adopted this job while we were partitioned:
			// the file is theirs now. Refuse the write and self-fence.
			f.valid = false
			f.mu.Unlock()
			p.s.metrics.checkpointsFenced.Add(1)
			op.j.mu.Lock()
			if op.j.state == StateRunning {
				op.j.fenceReq = true
			}
			op.j.mu.Unlock()
			return
		}
	}
	cfgJSON, err := json.Marshal(op.cfg)
	if err != nil {
		f.valid = false
		f.mu.Unlock()
		p.s.metrics.checkpointFailures.Add(1)
		return
	}
	crc := crc32.Checksum(cfgJSON, jobCkptCRC)
	if op.tail != nil && !op.full && f.valid && f.epoch == op.epoch && f.cfgCRC == crc {
		if st, err := os.Stat(path); err == nil && st.Size() == f.size {
			if err := appendFileSync(path, op.tail); err == nil {
				f.size += int64(len(op.tail))
				f.mu.Unlock()
				p.s.metrics.checkpointAppends.Add(1)
				return
			}
			// A torn append leaves a broken chain tail; the NDCP record
			// CRCs make the prefix restorable, but our size belief is
			// gone — fall through to an atomic rewrite.
		}
		f.valid = false
	}
	env, err := encodeJobCheckpoint(op.cfg, op.epoch, op.chain)
	if err != nil {
		f.valid = false
		f.mu.Unlock()
		p.s.metrics.checkpointFailures.Add(1)
		return
	}
	if err := core.WriteFileAtomic(path, env, 0o644); err != nil {
		f.valid = false
		f.mu.Unlock()
		p.s.metrics.checkpointFailures.Add(1)
		return
	}
	f.valid = true
	f.size = int64(len(env))
	f.epoch = op.epoch
	f.cfgCRC = crc
	f.mu.Unlock()
}

// appendFileSync appends b to path and fsyncs before closing.
func appendFileSync(path string, b []byte) error {
	fd, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := fd.Write(b); err != nil {
		fd.Close()
		return err
	}
	if err := fd.Sync(); err != nil {
		fd.Close()
		return err
	}
	return fd.Close()
}

// remove synchronously deletes a terminal job's file (unless a
// higher-epoch owner holds it) and marks it dead so any op still queued
// for it becomes a no-op instead of resurrecting the file. Safe to call
// while holding j.mu: the queue consumer never holds a ckptFile lock
// while waiting on a job lock.
func (p *persister) remove(id string, epoch int64) {
	f := p.file(id)
	f.mu.Lock()
	defer f.mu.Unlock()
	path := filepath.Join(p.s.cfg.CheckpointDir, id+".ckpt")
	if epoch > 0 {
		if fileEpoch, err := readCkptEpoch(path); err == nil && fileEpoch > epoch {
			return
		}
	}
	os.Remove(path)
	f.dead = true
	f.valid = false
}
