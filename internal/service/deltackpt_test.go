package service

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nestdiff/internal/faults"
)

// TestChaosRetryFromDeltaChainMatchesFaultFree is the delta-checkpoint
// variant of the core resilience claim: with a long delta chain (one full
// base, then replay deltas only), a crash-retried job must still end
// bit-identical to a fault-free run. The retry restores from the in-memory
// chain, which means replaying the delta's steps from the base.
func TestChaosRetryFromDeltaChainMatchesFaultFree(t *testing.T) {
	const steps = 60
	cfg := chaosJob(steps)
	cfg.AutoCheckpointSteps = 5
	cfg.CkptDeltaMax = 100 // never re-base: the crash always lands on a delta tail
	refSnap, refEvents := runFaultFree(t, cfg)

	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())
	cfg.Faults = faults.NewPlan(1).CrashRank(37, faults.Wildcard)
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("chaos run finished %s (error %q), want done", final.State, final.Error)
	}
	if final.Retries != 1 {
		t.Fatalf("retries = %d, want exactly 1", final.Retries)
	}
	if got := s.Metrics().DeltaCheckpoints(); got < 5 {
		t.Fatalf("delta checkpoints = %d, want a real chain (>= 5)", got)
	}
	if got := s.Metrics().FullCheckpoints(); got < 1 {
		t.Fatalf("full checkpoints = %d, want at least the base (and the re-base after retry)", got)
	}
	if !reflect.DeepEqual(final.ActiveNests, refSnap.ActiveNests) {
		t.Fatalf("final nest sets diverged:\nchaos      %+v\nfault-free %+v",
			final.ActiveNests, refSnap.ActiveNests)
	}
	events, err := s.JobEvents(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, refEvents) {
		t.Fatalf("event traces diverged: chaos %d events, fault-free %d events",
			len(events), len(refEvents))
	}
}

// TestTornFinalDeltaDrill is the golden durability drill for the delta
// path: a job checkpoints one full base plus appended deltas, the worker
// dies, and the final delta is torn mid-record on disk. A new scheduler
// must count the truncation (not reject the file), recover the job from
// the longest valid prefix, and the resumed run must finish bit-identical
// to a fault-free run.
func TestTornFinalDeltaDrill(t *testing.T) {
	const steps = 80
	cfg := chaosJob(steps)
	cfg.StepDelayMS = 1 // slow enough to die mid-run
	cfg.AutoCheckpointSteps = 5
	cfg.CkptDeltaMax = 100 // only the first cut is full: the file tail is always a delta
	refSnap, refEvents := runFaultFree(t, cfg)

	dir := t.TempDir()
	old := NewScheduler(SchedulerConfig{Workers: 1, CheckpointDir: dir})
	snap, err := old.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snap.ID+".ckpt")
	waitFor(t, old, snap.ID, "two persisted delta appends", func(sn Snapshot) bool {
		return old.Metrics().CheckpointAppends() >= 2
	})
	old.Kill() // hard death: only the disk survives

	// Tear the final delta blob: chop a few bytes off the appended tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	s := NewScheduler(SchedulerConfig{Workers: 1, CheckpointDir: dir})
	defer s.Shutdown(context.Background())
	if got := s.Metrics().CheckpointsRecovered(); got != 1 {
		t.Fatalf("checkpoints recovered = %d, want 1", got)
	}
	if got := s.Metrics().CheckpointsTruncated(); got != 1 {
		t.Fatalf("checkpoints truncated = %d, want 1 (the torn delta tail)", got)
	}
	if got := s.Metrics().CheckpointsCorrupt(); got != 0 {
		t.Fatalf("checkpoints corrupt = %d, want 0 (a torn tail is not a corrupt file)", got)
	}

	rec, err := s.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StatePaused || !rec.HasCheckpoint {
		t.Fatalf("recovered job = %+v, want paused with a checkpoint", rec)
	}
	if err := s.Resume(snap.ID); err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone || final.Step != steps {
		t.Fatalf("recovered run finished %+v", final)
	}
	if !reflect.DeepEqual(final.ActiveNests, refSnap.ActiveNests) {
		t.Fatalf("recovered nest set diverged:\nrecovered  %+v\nfault-free %+v",
			final.ActiveNests, refSnap.ActiveNests)
	}
	events, err := s.JobEvents(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, refEvents) {
		t.Fatalf("recovered trace diverged (%d vs %d events)", len(events), len(refEvents))
	}
}

// TestDeltaAppendsGrowTheFileInPlace pins the write-amplification win:
// once the base is on disk, each auto-checkpoint appends a few hundred
// bytes instead of rewriting the multi-hundred-KB file.
func TestDeltaAppendsGrowTheFileInPlace(t *testing.T) {
	const steps = 400 // long enough that the job is still running while we measure
	cfg := chaosJob(steps)
	cfg.StepDelayMS = 1
	cfg.AutoCheckpointSteps = 5
	cfg.CkptDeltaMax = 100

	dir := t.TempDir()
	s := NewScheduler(SchedulerConfig{Workers: 1, CheckpointDir: dir})
	defer s.Shutdown(context.Background())
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snap.ID+".ckpt")
	waitFor(t, s, snap.ID, "base on disk", func(sn Snapshot) bool {
		_, err := os.Stat(path)
		return err == nil
	})
	base, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	appends0 := s.Metrics().CheckpointAppends()
	waitFor(t, s, snap.ID, "delta appends", func(sn Snapshot) bool {
		return s.Metrics().CheckpointAppends() >= appends0+3
	})
	appends := s.Metrics().CheckpointAppends() - appends0
	grown, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	growth := grown.Size() - base.Size()
	if growth <= 0 || growth >= base.Size() {
		t.Fatalf("file grew by %d bytes over %d appends on a %d-byte base — appends should be tiny",
			growth, appends, base.Size())
	}
	// Another append may land between reading the counter and the stat, so
	// the bound is generous; a thin replay delta is ~100 bytes.
	if perAppend := growth / appends; perAppend > 4096 {
		t.Fatalf("average append is %d bytes, want a thin replay delta (<= 4096)", perAppend)
	}
}
