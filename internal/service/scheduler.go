package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"time"

	"nestdiff/internal/core"
	"nestdiff/internal/obs"
)

// Sentinel errors of the job API; the HTTP layer maps them to status
// codes.
var (
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("service: no such job")
	// ErrBadTransition reports a lifecycle operation invalid in the job's
	// current state (e.g. resuming a running job).
	ErrBadTransition = errors.New("service: invalid state transition")
	// ErrShuttingDown reports that the scheduler no longer accepts work.
	ErrShuttingDown = errors.New("service: scheduler is shutting down")
	// ErrDeadlineExceeded reports a job that outlived its configured
	// deadline; deadline failures are terminal and never retried.
	ErrDeadlineExceeded = errors.New("service: job deadline exceeded")
)

// SchedulerConfig tunes a Scheduler.
type SchedulerConfig struct {
	// Workers is the worker-pool size — the maximum number of jobs
	// simulating concurrently. Zero means 4.
	Workers int
	// QueueDepth bounds the submit queue. Zero means 256.
	QueueDepth int
	// CheckpointDir, when non-empty, persists each job's auto- and pause
	// checkpoints to <dir>/<jobID>.ckpt with atomic writes
	// (temp+fsync+rename), so a daemon crash leaves restorable state on
	// disk. Empty keeps checkpoints in memory only.
	CheckpointDir string
	// LedgerDir, when non-empty, gives every traced job (JobConfig.Trace)
	// an append-only JSONL event ledger at <dir>/<jobID>.jsonl, readable
	// offline with cmd/nesttrace. A ledger that fails to open is counted
	// and skipped; the in-memory trace ring still works.
	LedgerDir string
}

// Scheduler runs simulation jobs on a bounded worker pool.
type Scheduler struct {
	cfg     SchedulerConfig
	metrics *Metrics

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	seq    int
	closed bool

	queue   chan *Job
	quit    chan struct{}
	wg      sync.WaitGroup
	retryWG sync.WaitGroup // backoff timers awaiting re-enqueue
}

// NewScheduler starts a scheduler with the given worker-pool size.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	s := &Scheduler{
		cfg:     cfg,
		metrics: newMetrics(),
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, cfg.QueueDepth),
		quit:    make(chan struct{}),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Workers returns the worker-pool size.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// Ready reports whether the scheduler still accepts work — the substance
// of the /readyz probe. It flips false the moment a drain starts.
func (s *Scheduler) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// Metrics returns the scheduler's counters.
func (s *Scheduler) Metrics() *Metrics { return s.metrics }

// Submit validates, registers and enqueues a job, returning its snapshot.
func (s *Scheduler) Submit(cfg JobConfig) (Snapshot, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Snapshot{}, err
	}
	now := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Snapshot{}, ErrShuttingDown
	}
	s.seq++
	j := &Job{
		ID:      fmt.Sprintf("job-%d", s.seq),
		Cfg:     cfg,
		state:   StateQueued,
		created: now,
		updated: now,
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()

	if cfg.Trace {
		var led *obs.Ledger
		if s.cfg.LedgerDir != "" {
			var lerr error
			led, lerr = obs.OpenLedger(filepath.Join(s.cfg.LedgerDir, j.ID+".jsonl"))
			if lerr != nil {
				s.metrics.ledgerFailures.Add(1)
				led = nil
			}
		}
		j.mu.Lock()
		j.tracer = obs.New(obs.Options{Buffer: cfg.TraceBuffer, Ledger: led})
		j.ledger = led
		j.mu.Unlock()
	}

	select {
	case s.queue <- j:
	default:
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		j.mu.Lock()
		if j.ledger != nil {
			j.ledger.Close()
		}
		j.mu.Unlock()
		return Snapshot{}, fmt.Errorf("service: submit queue full (%d jobs)", s.cfg.QueueDepth)
	}
	s.metrics.jobsSubmitted.Add(1)
	j.emitJobEvent("submitted", fmt.Sprintf("%s/%s, %d cores, %d steps", cfg.Scenario, cfg.Strategy, cfg.Cores, cfg.Steps))
	return j.Snapshot(), nil
}

// lookup returns the job with the given ID.
func (s *Scheduler) lookup(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Get returns the snapshot of one job.
func (s *Scheduler) Get(id string) (Snapshot, error) {
	j, err := s.lookup(id)
	if err != nil {
		return Snapshot{}, err
	}
	return j.Snapshot(), nil
}

// JobEvents returns one job's adaptation events so far.
func (s *Scheduler) JobEvents(id string) ([]core.AdaptationEvent, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	return j.Events(), nil
}

// List returns the snapshots of all jobs in submission order.
func (s *Scheduler) List() []Snapshot {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Snapshot, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	return out
}

// Cancel terminates a job. Queued and paused jobs cancel immediately;
// running jobs cancel at the next step boundary.
func (s *Scheduler) Cancel(id string) error {
	j, err := s.lookup(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued, StatePaused, StateRetrying:
		j.state = StateCancelled
		j.checkpoint = nil
		j.updated = time.Now()
		j.emitJobEventLocked("cancelled", "")
		if j.ledger != nil {
			j.ledger.Close()
		}
		s.metrics.jobsCancelled.Add(1)
		s.removeCheckpointFile(j.ID)
		return nil
	case StateRunning:
		j.cancelReq = true
		return nil
	}
	return fmt.Errorf("%w: cancel a %s job", ErrBadTransition, j.state)
}

// Pause suspends a job. A queued job pauses in place (and resumes from
// the start); a running job checkpoints at the next step boundary and
// parks, freeing its worker.
func (s *Scheduler) Pause(id string) error {
	j, err := s.lookup(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued, StateRetrying:
		// A retrying job parks with the checkpoint its retry would have
		// resumed from; its backoff timer sees the state change and drops.
		j.state = StatePaused
		j.updated = time.Now()
		j.emitJobEventLocked("paused", "")
		s.metrics.pauses.Add(1)
		return nil
	case StateRunning:
		if !j.pauseReq {
			j.pauseReq = true
		}
		return nil
	}
	return fmt.Errorf("%w: pause a %s job", ErrBadTransition, j.state)
}

// Resume re-enqueues a paused job; if it holds a checkpoint it continues
// from the paused step, bit-identically to a never-paused run.
func (s *Scheduler) Resume(id string) error {
	j, err := s.lookup(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrShuttingDown
	}
	j.mu.Lock()
	if j.state != StatePaused {
		state := j.state
		j.mu.Unlock()
		return fmt.Errorf("%w: resume a %s job", ErrBadTransition, state)
	}
	j.state = StateQueued
	j.pauseReq = false
	j.updated = time.Now()
	j.mu.Unlock()

	select {
	case s.queue <- j:
	default:
		j.mu.Lock()
		j.state = StatePaused
		j.mu.Unlock()
		return fmt.Errorf("service: submit queue full (%d jobs)", s.cfg.QueueDepth)
	}
	s.metrics.resumes.Add(1)
	j.emitJobEvent("resumed", "")
	return nil
}

// Shutdown drains the scheduler: no new submissions or resumes are
// accepted, running jobs checkpoint at their next step boundary and park
// as paused, and the call returns when every worker has finished or ctx
// expires. Queued jobs simply stay queued in the registry.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.retryWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// quitting reports whether a drain has started.
func (s *Scheduler) quitting() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

// worker consumes the queue until the scheduler drains.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one job from its current position (fresh, or from a
// pause/retry checkpoint) until it finishes, fails, pauses or is
// cancelled. A panic anywhere in the attempt — a worker crash — is
// recovered here: the job fails (or retries) with the captured stack, and
// the worker goroutine and its pool survive.
func (s *Scheduler) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled or paused while sitting in the queue channel, or a
		// stale queue entry from a pause/resume cycle.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.err = nil
	if j.started.IsZero() {
		j.started = time.Now()
	}
	started := j.started
	j.updated = time.Now()
	cfg := j.Cfg
	checkpoint := j.checkpoint
	tr := j.tracer
	j.mu.Unlock()

	// Deferred in reverse execution order: the panic handler runs first
	// (its retry/fail events must precede the attempt record), then the
	// attempt wall-time event, then — once the state is settled — the
	// ledger close if the job turned terminal.
	defer j.closeLedgerIfTerminal()
	attemptStart := time.Now()
	defer func() {
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindJob, Phase: "attempt", DurNS: time.Since(attemptStart).Nanoseconds()})
		}
	}()
	defer func() {
		if p := recover(); p != nil {
			s.metrics.workerPanics.Add(1)
			s.retryOrFail(j, fmt.Errorf("service: job panicked: %v\n%s", p, debug.Stack()))
		}
	}()

	var (
		r   *run
		err error
	)
	buildStart := time.Now()
	if len(checkpoint) > 0 {
		r, err = restoreRun(cfg, checkpoint)
	} else {
		r, err = newRun(cfg)
	}
	if tr != nil {
		tr.EmitPhase(0, "build", time.Since(buildStart))
	}
	if err != nil {
		s.retryOrFail(j, err)
		return
	}
	if tr != nil {
		r.pipe.SetTracer(tr)
	}
	if len(checkpoint) > 0 {
		// The restored pipeline may be older than the job's last observed
		// progress (a retry rolls back to the last good checkpoint).
		j.rebase(r.pipe)
	}

	delay := time.Duration(cfg.StepDelayMS) * time.Millisecond
	deadline := time.Duration(cfg.DeadlineMS) * time.Millisecond
	every := cfg.AutoCheckpointSteps
	lastCkpt := r.pipe.StepCount()
	for r.pipe.StepCount() < cfg.Steps {
		if s.quitting() {
			s.park(j, r)
			return
		}
		switch j.poll() {
		case cancelRequested:
			s.finish(j, StateCancelled, nil, r)
			s.metrics.jobsCancelled.Add(1)
			return
		case pauseRequested:
			s.park(j, r)
			return
		}
		if deadline > 0 && time.Since(started) > deadline {
			s.finish(j, StateFailed, fmt.Errorf("%w (%s over %d steps, %d done)",
				ErrDeadlineExceeded, deadline, cfg.Steps, r.pipe.StepCount()), r)
			s.metrics.jobsFailed.Add(1)
			return
		}
		stepStart := time.Now()
		if err := r.step(); err != nil {
			s.retryOrFail(j, err)
			return
		}
		s.metrics.stepDur.Observe(time.Since(stepStart))
		var obsStart time.Time
		if tr != nil {
			obsStart = time.Now()
		}
		fresh := j.observe(r.pipe)
		if tr != nil {
			tr.EmitPhase(r.pipe.StepCount(), "observe", time.Since(obsStart))
		}
		s.metrics.stepsExecuted.Add(1)
		s.metrics.adaptationEvents.Add(int64(len(fresh)))
		for _, e := range fresh {
			s.metrics.redistBytes.Add(int64(e.Metrics.Redist.RemoteBytes))
		}
		if every > 0 && r.pipe.StepCount()-lastCkpt >= every && r.pipe.StepCount() < cfg.Steps {
			lastCkpt = r.pipe.StepCount()
			s.autoCheckpoint(j, r, cfg)
		}
		if delay > 0 {
			sleepStart := time.Now()
			time.Sleep(delay)
			if tr != nil {
				tr.EmitPhase(r.pipe.StepCount(), "sleep", time.Since(sleepStart))
			}
		}
	}
	s.finish(j, StateDone, nil, r)
	s.metrics.jobsCompleted.Add(1)
	s.metrics.jobDur.Observe(time.Since(started))
}

// autoCheckpoint snapshots a running job so a later retry loses at most
// AutoCheckpointSteps steps. A failed write (injected or real) is counted
// and skipped — the previous good checkpoint stays authoritative.
func (s *Scheduler) autoCheckpoint(j *Job, r *run, cfg JobConfig) {
	start := time.Now()
	defer func() {
		d := time.Since(start)
		s.metrics.ckptDur.Observe(d)
		if tr := j.obsTracer(); tr != nil {
			tr.EmitPhase(r.pipe.StepCount(), "checkpoint", d)
		}
	}()
	var buf bytes.Buffer
	w := io.Writer(&buf)
	if cfg.Faults != nil {
		w = cfg.Faults.WrapCheckpoint(w)
	}
	if err := r.pipe.SaveState(w); err != nil {
		s.metrics.checkpointFailures.Add(1)
		return
	}
	j.setLastGood(buf.Bytes())
	s.metrics.autoCheckpoints.Add(1)
	s.metrics.checkpointBytes.Store(int64(buf.Len()))
	s.persistCheckpoint(j.ID, buf.Bytes())
}

// retryOrFail decides what a failed attempt becomes: a scheduled retry
// from the last good checkpoint, or a terminal failure. Deadline
// overruns never reach here (they fail terminally in runJob); a cancel
// requested while the attempt was dying wins over both.
func (s *Scheduler) retryOrFail(j *Job, err error) {
	j.mu.Lock()
	if j.state != StateRunning {
		// Already transitioned elsewhere; nothing to decide.
		j.mu.Unlock()
		return
	}
	if j.cancelReq {
		j.state = StateCancelled
		j.err = nil
		j.checkpoint = nil
		j.pauseReq, j.cancelReq = false, false
		j.updated = time.Now()
		j.emitJobEventLocked("cancelled", "")
		j.mu.Unlock()
		s.metrics.jobsCancelled.Add(1)
		s.removeCheckpointFile(j.ID)
		return
	}
	if j.retries >= j.Cfg.MaxRetries {
		j.state = StateFailed
		j.err = err
		j.checkpoint = nil
		j.pauseReq = false
		j.updated = time.Now()
		j.emitJobEventLocked("failed", err.Error())
		j.mu.Unlock()
		s.metrics.jobsFailed.Add(1)
		return
	}
	j.retries++
	attempt := j.retries
	j.state = StateRetrying
	j.err = err
	// Resume from the last good auto-checkpoint; with none yet, the nil
	// checkpoint restarts the job from scratch.
	j.checkpoint = j.lastGood
	j.pauseReq = false
	j.updated = time.Now()
	j.emitJobEventLocked("retry", fmt.Sprintf("attempt %d: %v", attempt, err))
	j.mu.Unlock()
	s.metrics.jobRetries.Add(1)
	s.scheduleRetry(j, retryBackoff(j.Cfg, j.ID, attempt))
}

// retryBackoff is exponential in the attempt number with ±25% jitter,
// capped at 30s. The jitter is deterministic per (job, attempt) so chaos
// runs reproduce exactly.
func retryBackoff(cfg JobConfig, id string, attempt int) time.Duration {
	base := time.Duration(cfg.RetryBackoffMS) * time.Millisecond
	d := base << uint(attempt-1)
	if max := 30 * time.Second; d > max || d <= 0 {
		d = 30 * time.Second
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", id, attempt)
	rng := rand.New(rand.NewSource(int64(h.Sum64()) ^ cfg.Seed))
	return time.Duration(float64(d) * (0.75 + 0.5*rng.Float64()))
}

// scheduleRetry re-enqueues j after the backoff elapses. The timer
// goroutine is tracked by retryWG so Shutdown drains it; on a drain the
// retrying job parks as paused with its checkpoint, exactly like a
// running job caught by a drain.
func (s *Scheduler) scheduleRetry(j *Job, backoff time.Duration) {
	s.retryWG.Add(1)
	go func() {
		defer s.retryWG.Done()
		t := time.NewTimer(backoff)
		defer t.Stop()
		select {
		case <-t.C:
		case <-s.quit:
			s.parkRetrying(j)
			return
		}
		j.mu.Lock()
		if j.state != StateRetrying {
			// Cancelled or paused while waiting out the backoff.
			j.mu.Unlock()
			return
		}
		j.state = StateQueued
		j.updated = time.Now()
		j.mu.Unlock()
		select {
		case s.queue <- j:
		case <-s.quit:
			j.mu.Lock()
			if j.state == StateQueued {
				j.state = StatePaused
				j.updated = time.Now()
			}
			j.mu.Unlock()
		}
	}()
}

// parkRetrying converts a backoff wait into a paused job during a drain.
func (s *Scheduler) parkRetrying(j *Job) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateRetrying {
		j.state = StatePaused
		j.updated = time.Now()
		j.emitJobEventLocked("paused", "drain while awaiting retry")
	}
}

// persistCheckpoint mirrors a checkpoint to CheckpointDir atomically; a
// write error is counted, never fatal (the in-memory copy remains).
func (s *Scheduler) persistCheckpoint(id string, data []byte) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	path := filepath.Join(s.cfg.CheckpointDir, id+".ckpt")
	if err := core.WriteFileAtomic(path, data, 0o644); err != nil {
		s.metrics.checkpointFailures.Add(1)
	}
}

// removeCheckpointFile drops a terminal job's persisted checkpoint.
func (s *Scheduler) removeCheckpointFile(id string) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	os.Remove(filepath.Join(s.cfg.CheckpointDir, id+".ckpt"))
}

// park checkpoints a running job and leaves it paused. If the pause
// checkpoint itself fails to write (an injected or real I/O error), the
// job falls back to its last good auto-checkpoint — losing at most
// AutoCheckpointSteps steps — and only fails when no checkpoint exists at
// all.
func (s *Scheduler) park(j *Job, r *run) {
	ckptStart := time.Now()
	var buf bytes.Buffer
	w := io.Writer(&buf)
	if j.Cfg.Faults != nil {
		w = j.Cfg.Faults.WrapCheckpoint(w)
	}
	err := r.pipe.SaveState(w)
	s.metrics.ckptDur.Observe(time.Since(ckptStart))
	if tr := j.obsTracer(); tr != nil {
		tr.EmitPhase(r.pipe.StepCount(), "checkpoint", time.Since(ckptStart))
	}
	j.mu.Lock()
	j.pauseReq = false
	if err != nil {
		s.metrics.checkpointFailures.Add(1)
		if len(j.lastGood) > 0 {
			j.checkpoint = j.lastGood
			j.state = StatePaused
			j.updated = time.Now()
			j.emitJobEventLocked("paused", "pause checkpoint failed; kept last good auto-checkpoint")
			j.mu.Unlock()
			s.metrics.pauses.Add(1)
			return
		}
		j.state = StateFailed
		j.err = fmt.Errorf("service: pause checkpoint: %w", err)
		j.updated = time.Now()
		j.emitJobEventLocked("failed", j.err.Error())
		j.mu.Unlock()
		s.metrics.jobsFailed.Add(1)
		return
	}
	j.checkpoint = buf.Bytes()
	j.lastGood = buf.Bytes()
	j.state = StatePaused
	j.updated = time.Now()
	j.emitJobEventLocked("paused", "")
	j.mu.Unlock()
	s.metrics.pauses.Add(1)
	s.metrics.checkpointBytes.Store(int64(buf.Len()))
	s.persistCheckpoint(j.ID, buf.Bytes())
}

// finish moves a job to a terminal state.
func (s *Scheduler) finish(j *Job, state JobState, err error, r *run) {
	if r != nil {
		j.observe(r.pipe)
	}
	j.mu.Lock()
	j.state = state
	j.err = err
	j.checkpoint = nil
	j.pauseReq = false
	j.cancelReq = false
	j.updated = time.Now()
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	j.emitJobEventLocked(string(state), detail)
	j.mu.Unlock()
	s.removeCheckpointFile(j.ID)
}

// CountsByState returns the number of jobs in each lifecycle state — the
// jobs-by-state gauge of GET /metrics.
func (s *Scheduler) CountsByState() map[JobState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[JobState]int, 7)
	for _, j := range s.jobs {
		out[j.State()]++
	}
	return out
}

// states lists every lifecycle state in display order.
func states() []JobState {
	return []JobState{StateQueued, StateRunning, StatePaused, StateRetrying, StateDone, StateFailed, StateCancelled}
}
