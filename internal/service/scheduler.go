package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"nestdiff/internal/core"
)

// Sentinel errors of the job API; the HTTP layer maps them to status
// codes.
var (
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("service: no such job")
	// ErrBadTransition reports a lifecycle operation invalid in the job's
	// current state (e.g. resuming a running job).
	ErrBadTransition = errors.New("service: invalid state transition")
	// ErrShuttingDown reports that the scheduler no longer accepts work.
	ErrShuttingDown = errors.New("service: scheduler is shutting down")
)

// SchedulerConfig tunes a Scheduler.
type SchedulerConfig struct {
	// Workers is the worker-pool size — the maximum number of jobs
	// simulating concurrently. Zero means 4.
	Workers int
	// QueueDepth bounds the submit queue. Zero means 256.
	QueueDepth int
}

// Scheduler runs simulation jobs on a bounded worker pool.
type Scheduler struct {
	cfg     SchedulerConfig
	metrics *Metrics

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	seq    int
	closed bool

	queue chan *Job
	quit  chan struct{}
	wg    sync.WaitGroup
}

// NewScheduler starts a scheduler with the given worker-pool size.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	s := &Scheduler{
		cfg:     cfg,
		metrics: newMetrics(),
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, cfg.QueueDepth),
		quit:    make(chan struct{}),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Workers returns the worker-pool size.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// Metrics returns the scheduler's counters.
func (s *Scheduler) Metrics() *Metrics { return s.metrics }

// Submit validates, registers and enqueues a job, returning its snapshot.
func (s *Scheduler) Submit(cfg JobConfig) (Snapshot, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Snapshot{}, err
	}
	now := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Snapshot{}, ErrShuttingDown
	}
	s.seq++
	j := &Job{
		ID:      fmt.Sprintf("job-%d", s.seq),
		Cfg:     cfg,
		state:   StateQueued,
		created: now,
		updated: now,
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()

	select {
	case s.queue <- j:
	default:
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		return Snapshot{}, fmt.Errorf("service: submit queue full (%d jobs)", s.cfg.QueueDepth)
	}
	s.metrics.jobsSubmitted.Add(1)
	return j.Snapshot(), nil
}

// lookup returns the job with the given ID.
func (s *Scheduler) lookup(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Get returns the snapshot of one job.
func (s *Scheduler) Get(id string) (Snapshot, error) {
	j, err := s.lookup(id)
	if err != nil {
		return Snapshot{}, err
	}
	return j.Snapshot(), nil
}

// JobEvents returns one job's adaptation events so far.
func (s *Scheduler) JobEvents(id string) ([]core.AdaptationEvent, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	return j.Events(), nil
}

// List returns the snapshots of all jobs in submission order.
func (s *Scheduler) List() []Snapshot {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Snapshot, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	return out
}

// Cancel terminates a job. Queued and paused jobs cancel immediately;
// running jobs cancel at the next step boundary.
func (s *Scheduler) Cancel(id string) error {
	j, err := s.lookup(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued, StatePaused:
		j.state = StateCancelled
		j.checkpoint = nil
		j.updated = time.Now()
		s.metrics.jobsCancelled.Add(1)
		return nil
	case StateRunning:
		j.cancelReq = true
		return nil
	}
	return fmt.Errorf("%w: cancel a %s job", ErrBadTransition, j.state)
}

// Pause suspends a job. A queued job pauses in place (and resumes from
// the start); a running job checkpoints at the next step boundary and
// parks, freeing its worker.
func (s *Scheduler) Pause(id string) error {
	j, err := s.lookup(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StatePaused
		j.updated = time.Now()
		s.metrics.pauses.Add(1)
		return nil
	case StateRunning:
		if !j.pauseReq {
			j.pauseReq = true
		}
		return nil
	}
	return fmt.Errorf("%w: pause a %s job", ErrBadTransition, j.state)
}

// Resume re-enqueues a paused job; if it holds a checkpoint it continues
// from the paused step, bit-identically to a never-paused run.
func (s *Scheduler) Resume(id string) error {
	j, err := s.lookup(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrShuttingDown
	}
	j.mu.Lock()
	if j.state != StatePaused {
		state := j.state
		j.mu.Unlock()
		return fmt.Errorf("%w: resume a %s job", ErrBadTransition, state)
	}
	j.state = StateQueued
	j.pauseReq = false
	j.updated = time.Now()
	j.mu.Unlock()

	select {
	case s.queue <- j:
	default:
		j.mu.Lock()
		j.state = StatePaused
		j.mu.Unlock()
		return fmt.Errorf("service: submit queue full (%d jobs)", s.cfg.QueueDepth)
	}
	s.metrics.resumes.Add(1)
	return nil
}

// Shutdown drains the scheduler: no new submissions or resumes are
// accepted, running jobs checkpoint at their next step boundary and park
// as paused, and the call returns when every worker has finished or ctx
// expires. Queued jobs simply stay queued in the registry.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// quitting reports whether a drain has started.
func (s *Scheduler) quitting() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

// worker consumes the queue until the scheduler drains.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one job from its current position (fresh or from a
// pause checkpoint) until it finishes, fails, pauses or is cancelled.
func (s *Scheduler) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled or paused while sitting in the queue channel, or a
		// stale queue entry from a pause/resume cycle.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.updated = time.Now()
	cfg := j.Cfg
	checkpoint := j.checkpoint
	j.mu.Unlock()

	var (
		r   *run
		err error
	)
	if len(checkpoint) > 0 {
		r, err = restoreRun(cfg, checkpoint)
	} else {
		r, err = newRun(cfg)
	}
	if err != nil {
		s.finish(j, StateFailed, err, nil)
		return
	}

	delay := time.Duration(cfg.StepDelayMS) * time.Millisecond
	for r.pipe.StepCount() < cfg.Steps {
		if s.quitting() {
			s.park(j, r)
			return
		}
		switch j.poll() {
		case cancelRequested:
			s.finish(j, StateCancelled, nil, r)
			s.metrics.jobsCancelled.Add(1)
			return
		case pauseRequested:
			s.park(j, r)
			return
		}
		if err := r.step(); err != nil {
			s.finish(j, StateFailed, err, r)
			return
		}
		fresh := j.observe(r.pipe)
		s.metrics.stepsExecuted.Add(1)
		s.metrics.adaptationEvents.Add(int64(len(fresh)))
		for _, e := range fresh {
			s.metrics.redistBytes.Add(int64(e.Metrics.Redist.RemoteBytes))
		}
		if delay > 0 {
			time.Sleep(delay)
		}
	}
	s.finish(j, StateDone, nil, r)
	s.metrics.jobsCompleted.Add(1)
}

// park checkpoints a running job and leaves it paused.
func (s *Scheduler) park(j *Job, r *run) {
	var buf bytes.Buffer
	err := r.pipe.SaveState(&buf)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.pauseReq = false
	if err != nil {
		j.state = StateFailed
		j.err = fmt.Errorf("service: pause checkpoint: %w", err)
		j.updated = time.Now()
		return
	}
	j.checkpoint = buf.Bytes()
	j.state = StatePaused
	j.updated = time.Now()
	s.metrics.pauses.Add(1)
	s.metrics.checkpointBytes.Store(int64(buf.Len()))
}

// finish moves a job to a terminal state.
func (s *Scheduler) finish(j *Job, state JobState, err error, r *run) {
	if r != nil {
		j.observe(r.pipe)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.err = err
	j.checkpoint = nil
	j.pauseReq = false
	j.cancelReq = false
	j.updated = time.Now()
}

// CountsByState returns the number of jobs in each lifecycle state — the
// jobs-by-state gauge of GET /metrics.
func (s *Scheduler) CountsByState() map[JobState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[JobState]int, 6)
	for _, j := range s.jobs {
		out[j.State()]++
	}
	return out
}

// states lists every lifecycle state in display order.
func states() []JobState {
	return []JobState{StateQueued, StateRunning, StatePaused, StateDone, StateFailed, StateCancelled}
}
