package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"nestdiff/internal/core"
	"nestdiff/internal/elastic"
	"nestdiff/internal/faults"
	"nestdiff/internal/obs"
	"nestdiff/internal/serve"
)

// Sentinel errors of the job API; the HTTP layer maps them to status
// codes.
var (
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("service: no such job")
	// ErrBadTransition reports a lifecycle operation invalid in the job's
	// current state (e.g. resuming a running job).
	ErrBadTransition = errors.New("service: invalid state transition")
	// ErrShuttingDown reports that the scheduler no longer accepts work.
	ErrShuttingDown = errors.New("service: scheduler is shutting down")
	// ErrDeadlineExceeded reports a job that outlived its configured
	// deadline; deadline failures are terminal and never retried.
	ErrDeadlineExceeded = errors.New("service: job deadline exceeded")
	// ErrQueueFull reports a saturated submit queue. The HTTP layer maps
	// it to 429 with a Retry-After header, and the fleet control plane
	// propagates that load-shedding signal to its own admission path.
	ErrQueueFull = errors.New("service: submit queue full")
	// ErrJobExists rejects registering a job under an ID already taken —
	// an import or adoption racing a recovery of the same checkpoint.
	ErrJobExists = errors.New("service: job ID already exists")
)

// SchedulerConfig tunes a Scheduler.
type SchedulerConfig struct {
	// Workers is the worker-pool size — the maximum number of jobs
	// simulating concurrently. Zero means 4.
	Workers int
	// QueueDepth bounds the submit queue. Zero means 256.
	QueueDepth int
	// CheckpointDir, when non-empty, persists each job's auto- and pause
	// checkpoints to <dir>/<jobID>.ckpt with atomic writes
	// (temp+fsync+rename), so a daemon crash leaves restorable state on
	// disk. Empty keeps checkpoints in memory only.
	CheckpointDir string
	// LedgerDir, when non-empty, gives every traced job (JobConfig.Trace)
	// an append-only JSONL event ledger at <dir>/<jobID>.jsonl, readable
	// offline with cmd/nesttrace. A ledger that fails to open is counted
	// and skipped; the in-memory trace ring still works.
	LedgerDir string
	// DisableRecovery skips the startup scan of CheckpointDir. Standalone
	// daemons want recovery (a restart re-registers every persisted job as
	// paused); fleet workers sharing a checkpoint store disable it and let
	// the control plane decide which worker adopts which job.
	DisableRecovery bool
	// Faults, when non-nil, is the default fault plan applied to every
	// submitted or imported job that does not carry its own — chaos drills
	// only. It is how the fleet chaos suite injects faults into jobs that
	// arrived over HTTP (JobConfig.Faults never crosses the wire).
	Faults *faults.Plan
	// SnapshotEvery, when positive, materializes every running job's read
	// snapshot each N steps even with no waiting reader, trading one field
	// copy per N steps for instant first reads. Zero (the default) is
	// purely demand-driven: the no-reader publish path is an integer store.
	SnapshotEvery int
	// TileCacheBytes bounds the shared quantized-tile cache serving
	// GET /jobs/{id}/field. Zero means 64 MiB.
	TileCacheBytes int64
}

// Scheduler runs simulation jobs on a bounded worker pool.
type Scheduler struct {
	cfg     SchedulerConfig
	metrics *Metrics
	tiles   *serve.Cache

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	seq    int
	closed bool

	queue   chan *Job
	quit    chan struct{}
	kill    chan struct{} // closed by Kill: simulated process death
	killed  bool
	wg      sync.WaitGroup
	retryWG sync.WaitGroup // backoff timers awaiting re-enqueue

	// pers is the asynchronous checkpoint-persistence tier (nil without a
	// CheckpointDir): workers enqueue encoded chains, one background
	// goroutine owns the file I/O and fsyncs.
	pers *persister
}

// NewScheduler starts a scheduler with the given worker-pool size.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	s := &Scheduler{
		cfg:     cfg,
		metrics: newMetrics(),
		tiles:   serve.NewCache(cfg.TileCacheBytes),
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, cfg.QueueDepth),
		quit:    make(chan struct{}),
		kill:    make(chan struct{}),
	}
	if cfg.CheckpointDir != "" && !cfg.DisableRecovery {
		s.recoverCheckpoints()
	}
	if cfg.CheckpointDir != "" {
		s.pers = newPersister(s)
		go s.pers.run()
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// recoverCheckpoints re-registers every persisted job checkpoint in
// CheckpointDir as a paused job, so a daemon restart loses nothing that
// was checkpointed: `POST /jobs/{id}/resume` continues each one
// bit-identically from where the dead process left it. Corrupt or torn
// envelopes are counted and skipped, never resumed. This same scan-free
// import path is what a fleet survivor runs when it adopts a dead
// worker's job.
func (s *Scheduler) recoverCheckpoints() {
	paths, err := filepath.Glob(filepath.Join(s.cfg.CheckpointDir, "*.ckpt"))
	if err != nil {
		return
	}
	sort.Strings(paths)
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			s.metrics.checkpointsCorrupt.Add(1)
			continue
		}
		cfg, epoch, state, err := decodeJobCheckpoint(data)
		if err != nil {
			if !errors.Is(err, core.ErrDeltaChainBroken) {
				s.metrics.checkpointsCorrupt.Add(1)
				continue
			}
			// A torn delta tail (the process died mid-append): the intact
			// chain prefix is still restorable, so recover from it.
			s.metrics.checkpointsTruncated.Add(1)
		}
		id := strings.TrimSuffix(filepath.Base(p), ".ckpt")
		if _, err := s.Import(id, epoch, cfg, state); err != nil {
			s.metrics.checkpointsCorrupt.Add(1)
			continue
		}
		s.metrics.checkpointsRecovered.Add(1)
	}
}

// Workers returns the worker-pool size.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// Ready reports whether the scheduler still accepts work — the substance
// of the /readyz probe. It flips false the moment a drain starts.
func (s *Scheduler) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// Metrics returns the scheduler's counters.
func (s *Scheduler) Metrics() *Metrics { return s.metrics }

// Submit validates, registers and enqueues a job, returning its snapshot.
func (s *Scheduler) Submit(cfg JobConfig) (Snapshot, error) {
	return s.submit("", 0, cfg)
}

// SubmitWithID is Submit under a caller-chosen job ID and placement
// epoch. The fleet control plane allocates fleet-wide unique IDs (f-1,
// f-2, ...) so a job keeps its identity as it moves between workers, and
// stamps the placement epoch every checkpoint and heartbeat will carry;
// local submissions keep the scheduler-assigned job-N sequence and epoch
// 0 (not fleet-managed).
func (s *Scheduler) SubmitWithID(id string, epoch int64, cfg JobConfig) (Snapshot, error) {
	if id == "" {
		return Snapshot{}, fmt.Errorf("service: empty job ID")
	}
	return s.submit(id, epoch, cfg)
}

func (s *Scheduler) submit(id string, epoch int64, cfg JobConfig) (Snapshot, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Snapshot{}, err
	}
	if cfg.Faults == nil {
		cfg.Faults = s.cfg.Faults
	}
	now := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Snapshot{}, ErrShuttingDown
	}
	if id == "" {
		s.seq++
		id = fmt.Sprintf("job-%d", s.seq)
	} else {
		if _, ok := s.jobs[id]; ok {
			s.mu.Unlock()
			return Snapshot{}, fmt.Errorf("%w: %q", ErrJobExists, id)
		}
		s.bumpSeqLocked(id)
	}
	j := &Job{
		ID:      id,
		Cfg:     cfg,
		state:   StateQueued,
		epoch:   epoch,
		pub:     serve.NewPublisher(s.cfg.SnapshotEvery),
		created: now,
		updated: now,
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()

	s.attachTracer(j, cfg)

	select {
	case s.queue <- j:
	default:
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		j.mu.Lock()
		if j.ledger != nil {
			j.ledger.Close()
		}
		j.mu.Unlock()
		s.metrics.queueFullRejections.Add(1)
		return Snapshot{}, fmt.Errorf("%w (%d jobs)", ErrQueueFull, s.cfg.QueueDepth)
	}
	s.metrics.jobsSubmitted.Add(1)
	j.emitJobEvent("submitted", fmt.Sprintf("%s/%s, %d cores, %d steps", cfg.Scenario, cfg.Strategy, cfg.Cores, cfg.Steps))
	return j.Snapshot(), nil
}

// attachTracer gives a freshly registered traced job its tracer and
// optional on-disk ledger.
func (s *Scheduler) attachTracer(j *Job, cfg JobConfig) {
	if !cfg.Trace {
		return
	}
	var led *obs.Ledger
	if s.cfg.LedgerDir != "" {
		var lerr error
		led, lerr = obs.OpenLedger(filepath.Join(s.cfg.LedgerDir, j.ID+".jsonl"))
		if lerr != nil {
			s.metrics.ledgerFailures.Add(1)
			led = nil
		}
	}
	j.mu.Lock()
	j.tracer = obs.New(obs.Options{Buffer: cfg.TraceBuffer, Ledger: led})
	j.ledger = led
	j.mu.Unlock()
}

// bumpSeqLocked keeps the job-N sequence ahead of any externally assigned
// ID of that shape (a recovered checkpoint of a pre-crash local job), so
// local submissions never collide with recovered registrations. Callers
// hold s.mu.
func (s *Scheduler) bumpSeqLocked(id string) {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n > s.seq {
		s.seq = n
	}
}

// Import registers a job under the given ID as paused, holding the given
// pipeline checkpoint (nil resumes from scratch) and placement epoch. It
// is the worker-side half of job handoff: startup recovery, fleet
// adoption and drain migration all funnel through it, and
// `POST /jobs/{id}/import` exposes it for manual migration of an
// exported checkpoint.
func (s *Scheduler) Import(id string, epoch int64, cfg JobConfig, checkpoint []byte) (Snapshot, error) {
	if id == "" {
		return Snapshot{}, fmt.Errorf("service: empty job ID")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Snapshot{}, err
	}
	if cfg.Faults == nil {
		cfg.Faults = s.cfg.Faults
	}
	now := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Snapshot{}, ErrShuttingDown
	}
	if prev, ok := s.jobs[id]; ok {
		// A terminal copy (done, failed, cancelled, fenced) no longer owns
		// the ID: re-importing over it is how a job migrates back onto a
		// worker that once fenced it. Live copies still conflict.
		if !prev.State().Terminal() {
			s.mu.Unlock()
			return Snapshot{}, fmt.Errorf("%w: %q", ErrJobExists, id)
		}
		delete(s.jobs, id)
		for i, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	s.bumpSeqLocked(id)
	j := &Job{
		ID:         id,
		Cfg:        cfg,
		state:      StatePaused,
		checkpoint: checkpoint,
		lastGood:   checkpoint,
		epoch:      epoch,
		pub:        serve.NewPublisher(s.cfg.SnapshotEvery),
		created:    now,
		updated:    now,
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.attachTracer(j, cfg)
	s.metrics.jobsImported.Add(1)
	j.emitJobEvent("imported", fmt.Sprintf("%d-byte checkpoint", len(checkpoint)))
	return j.Snapshot(), nil
}

// Adopt re-homes a job onto this scheduler, the survivor-side of fleet
// checkpoint handoff: if the shared checkpoint store holds a valid
// <CheckpointDir>/<id>.ckpt — the dead worker's latest persisted
// checkpoint — the job resumes from it bit-identically; otherwise it
// restarts from scratch with the control plane's copy of the config
// (the job died before its first checkpoint). Either way the job is
// imported paused and resumed immediately. Adopting an ID this scheduler
// already holds (a startup recovery beat the control plane to it) just
// resumes the paused job.
// The controller sends the bumped placement epoch; the adopted copy runs
// under it (and every checkpoint it persists carries it), fencing out any
// still-alive previous owner that was merely partitioned.
func (s *Scheduler) Adopt(id string, epoch int64, cfg JobConfig) (Snapshot, error) {
	var checkpoint []byte
	if s.cfg.CheckpointDir != "" {
		if data, err := os.ReadFile(filepath.Join(s.cfg.CheckpointDir, id+".ckpt")); err == nil {
			fileCfg, fileEpoch, state, derr := decodeJobCheckpoint(data)
			if derr != nil && errors.Is(derr, core.ErrDeltaChainBroken) {
				// The dead worker tore its final delta append: adopt from
				// the intact chain prefix.
				s.metrics.checkpointsTruncated.Add(1)
				derr = nil
			}
			if derr == nil {
				cfg, checkpoint = fileCfg, state
				if fileEpoch > epoch {
					// Never adopt backwards: the store already carries a
					// higher epoch than the controller sent (a replayed WAL
					// lagging a later adoption).
					epoch = fileEpoch
				}
			} else {
				s.metrics.checkpointsCorrupt.Add(1)
			}
		}
	}
	if _, err := s.Import(id, epoch, cfg, checkpoint); err != nil {
		if !errors.Is(err, ErrJobExists) {
			return Snapshot{}, err
		}
		// A startup recovery beat the control plane to this ID; raise the
		// existing copy to the adoption epoch so its checkpoints fence
		// correctly.
		s.raiseEpoch(id, epoch)
	}
	if err := s.Resume(id); err != nil && !errors.Is(err, ErrBadTransition) {
		// ErrBadTransition means the job is already queued, running or
		// terminal here — adoption is idempotent. Anything else (queue
		// full, shutting down) is the caller's to retry.
		return Snapshot{}, err
	}
	s.metrics.jobsAdopted.Add(1)
	return s.Get(id)
}

// raiseEpoch lifts a job's placement epoch; it never lowers it.
func (s *Scheduler) raiseEpoch(id string, epoch int64) {
	j, err := s.lookup(id)
	if err != nil {
		return
	}
	j.mu.Lock()
	if epoch > j.epoch {
		j.epoch = epoch
	}
	j.mu.Unlock()
}

// ExportCheckpoint returns the job checkpoint envelope (config + latest
// pipeline checkpoint) for handoff: piped into another worker's
// `POST /jobs/{id}/import`, the job continues there bit-identically. A
// job exported before its first checkpoint ships config only and restarts
// from scratch on import.
func (s *Scheduler) ExportCheckpoint(id string) ([]byte, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	// A running job ships a checkpoint cut at its next step boundary
	// rather than the possibly stale last auto-checkpoint. The worker is
	// only asked to pay its normal boundary-checkpoint cost; if the
	// boundary doesn't arrive within the wait, the stale one ships.
	j.freshCheckpoint(exportFreshWait)
	j.mu.Lock()
	state := j.checkpoint
	if len(state) == 0 {
		state = j.lastGood
	}
	cfg := j.Cfg
	epoch := j.epoch
	j.mu.Unlock()
	return encodeJobCheckpoint(cfg, epoch, state)
}

// Fence terminates the local copy of a job whose placement moved
// elsewhere: the controller adopted or migrated it under a higher epoch
// while this worker was partitioned or draining. Unlike Cancel, a fence
// never touches the shared checkpoint store — the file now belongs to the
// new owner. Fencing a terminal or unknown job is a no-op (the copy is
// already gone); a running job fences at its next step boundary.
//
// The epoch is the fence's validity token, not advice: the command kills
// this copy only when epoch is strictly greater than the copy's own. A
// fence carrying an equal or lower epoch was computed against a stale
// placement view — a heartbeat from the new owner racing the adoption or
// migration that created it — and killing the legitimate successor on its
// say-so would orphan the job forever.
func (s *Scheduler) Fence(id string, epoch int64) error {
	j, err := s.lookup(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return nil
	}
	if epoch <= j.epoch {
		return nil // stale fence: this copy is the epoch's rightful owner
	}
	j.epoch = epoch
	switch j.state {
	case StateQueued, StatePaused, StateRetrying:
		j.state = StateFenced
		j.checkpoint = nil
		j.pauseReq, j.cancelReq, j.fenceReq = false, false, false
		j.updated = time.Now()
		j.emitJobEventLocked("fenced", fmt.Sprintf("epoch %d superseded", epoch))
		if j.ledger != nil {
			j.ledger.Close()
		}
		s.metrics.jobsFenced.Add(1)
	case StateRunning:
		j.fenceReq = true
	}
	return nil
}

// JobEpochReport is one entry of the heartbeat's job-epoch report.
type JobEpochReport struct {
	ID    string `json:"id"`
	Epoch int64  `json:"epoch"`
}

// EpochReport lists every live fleet-managed job (epoch > 0,
// non-terminal) with its placement epoch — the payload a worker stamps
// into each heartbeat so the controller can fence stale copies.
func (s *Scheduler) EpochReport() []JobEpochReport {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	var out []JobEpochReport
	for _, j := range jobs {
		j.mu.Lock()
		if j.epoch > 0 && !j.state.Terminal() {
			out = append(out, JobEpochReport{ID: j.ID, Epoch: j.epoch})
		}
		j.mu.Unlock()
	}
	return out
}

// Kill hard-stops the scheduler, simulating sudden process death for
// chaos drills: no drain, no parking, no checkpoint writes, no file
// cleanup. Workers stop at their next step boundary leaving job state
// and on-disk artifacts exactly as a crashed process would — the last
// persisted checkpoint in CheckpointDir is all that survives, which is
// precisely what fleet adoption must be able to resume from.
func (s *Scheduler) Kill() {
	s.mu.Lock()
	if !s.killed {
		s.killed = true
		close(s.kill)
	}
	s.closed = true
	s.mu.Unlock()
}

// dead reports whether Kill has fired.
func (s *Scheduler) dead() bool {
	select {
	case <-s.kill:
		return true
	default:
		return false
	}
}

// lookup returns the job with the given ID.
func (s *Scheduler) lookup(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Get returns the snapshot of one job.
func (s *Scheduler) Get(id string) (Snapshot, error) {
	j, err := s.lookup(id)
	if err != nil {
		return Snapshot{}, err
	}
	return j.Snapshot(), nil
}

// JobEvents returns one job's adaptation events so far.
func (s *Scheduler) JobEvents(id string) ([]core.AdaptationEvent, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	return j.Events(), nil
}

// List returns the snapshots of all jobs in submission order.
func (s *Scheduler) List() []Snapshot {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Snapshot, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	return out
}

// Cancel terminates a job. Queued and paused jobs cancel immediately;
// running jobs cancel at the next step boundary.
func (s *Scheduler) Cancel(id string) error {
	j, err := s.lookup(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued, StatePaused, StateRetrying:
		j.state = StateCancelled
		j.checkpoint = nil
		j.updated = time.Now()
		j.emitJobEventLocked("cancelled", "")
		if j.ledger != nil {
			j.ledger.Close()
		}
		s.metrics.jobsCancelled.Add(1)
		s.removeCheckpointFile(j.ID, j.epoch)
		return nil
	case StateRunning:
		j.cancelReq = true
		return nil
	}
	return fmt.Errorf("%w: cancel a %s job", ErrBadTransition, j.state)
}

// Pause suspends a job. A queued job pauses in place (and resumes from
// the start); a running job checkpoints at the next step boundary and
// parks, freeing its worker.
func (s *Scheduler) Pause(id string) error {
	j, err := s.lookup(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued, StateRetrying:
		// A retrying job parks with the checkpoint its retry would have
		// resumed from; its backoff timer sees the state change and drops.
		j.state = StatePaused
		j.updated = time.Now()
		j.emitJobEventLocked("paused", "")
		s.metrics.pauses.Add(1)
		return nil
	case StateRunning:
		if !j.pauseReq {
			j.pauseReq = true
		}
		return nil
	}
	return fmt.Errorf("%w: pause a %s job", ErrBadTransition, j.state)
}

// Resume re-enqueues a paused job; if it holds a checkpoint it continues
// from the paused step, bit-identically to a never-paused run.
func (s *Scheduler) Resume(id string) error {
	j, err := s.lookup(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrShuttingDown
	}
	j.mu.Lock()
	if j.state != StatePaused {
		state := j.state
		j.mu.Unlock()
		return fmt.Errorf("%w: resume a %s job", ErrBadTransition, state)
	}
	j.state = StateQueued
	j.pauseReq = false
	j.updated = time.Now()
	j.mu.Unlock()

	select {
	case s.queue <- j:
	default:
		j.mu.Lock()
		j.state = StatePaused
		j.mu.Unlock()
		s.metrics.queueFullRejections.Add(1)
		return fmt.Errorf("%w (%d jobs)", ErrQueueFull, s.cfg.QueueDepth)
	}
	s.metrics.resumes.Add(1)
	j.emitJobEvent("resumed", "")
	return nil
}

// ResizeJob changes a job's processor count. A job that has not started
// yet (no checkpoint to be mismatched against) just has its config
// updated and builds at the new size; any job holding old-size state —
// running, or paused/retrying/queued with a checkpoint — records the
// request and applies it at its next running step boundary: checkpoint,
// in-place grid resize with every nest redistributed, resume. Terminal
// jobs reject with ErrBadTransition. Resizing to the current size is a
// no-op.
func (s *Scheduler) ResizeJob(id string, procs int) error {
	if procs < 1 {
		return fmt.Errorf("service: invalid processor count %d", procs)
	}
	j, err := s.lookup(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return fmt.Errorf("%w: resize a %s job", ErrBadTransition, j.state)
	}
	if procs == j.Cfg.Cores && j.resizeReq == 0 {
		return nil
	}
	if j.state != StateRunning && len(j.checkpoint) == 0 && len(j.lastGood) == 0 {
		// Not yet started: the next attempt simply builds at the new size.
		j.Cfg.Cores = procs
		j.resizeReq = 0
		j.updated = time.Now()
		j.emitJobEventLocked("resize", fmt.Sprintf("repriced to %d procs before first run", procs))
		return nil
	}
	// Holds old-size pipeline state: resize at the next running step
	// boundary (a paused or retrying job applies it when it next runs).
	j.resizeReq = procs
	j.updated = time.Now()
	return nil
}

// resizeRun applies a pending resize to a running job at a step boundary.
// Sequence: pre-resize checkpoint (the crash anchor — a death anywhere
// past it retries from old-size state at the old core count), in-place
// pipeline resize through internal/elastic, config + trace + metrics
// update, post-resize checkpoint (so retries and adoptions from here on
// restore at the new size). A resize that fails cleanly is counted and
// the job keeps stepping at its old size.
func (s *Scheduler) resizeRun(j *Job, r *run, cfg *JobConfig, procs int) {
	if procs == cfg.Cores {
		return
	}
	from := cfg.Cores
	s.autoCheckpoint(j, r, *cfg)
	if cfg.Faults != nil {
		cfg.Faults.ResizeCrash()
	}
	start := time.Now()
	rep, err := elastic.Resize(r.pipe, procs, cfg.Machine, cfg.CoresPerNode)
	if err != nil {
		s.metrics.resizeFailures.Add(1)
		j.emitJobEvent("resize_failed", fmt.Sprintf("%d -> %d procs: %v", from, procs, err))
		return
	}
	d := time.Since(start)
	// The resize rebuilt tracker and nest state ULP-equivalently, not
	// bit-identically, and the processor geometry changed under every
	// shadow the delta writer holds: invalidate it so the post-resize
	// checkpoint below opens a fresh chain with a full base.
	r.ckw.Invalidate()
	cfg.Cores = procs
	j.mu.Lock()
	j.Cfg.Cores = procs
	j.updated = time.Now()
	j.emitJobEventLocked("resize", fmt.Sprintf("%d -> %d procs: %d nests remapped, %d bytes moved, modelled redist %.3gs",
		from, procs, rep.Nests, rep.MovedBytes, rep.RedistTime))
	j.mu.Unlock()
	s.metrics.jobsResized.Add(1)
	s.metrics.resizeDur.Observe(d)
	// The grid changed shape: retire every cached tile of the old epoch so
	// readers can never see a stale-grid tile, and stamp future snapshots
	// with the new epoch.
	j.pub.BumpEpoch()
	s.tiles.InvalidateJob(j.ID)
	if tr := j.obsTracer(); tr != nil {
		tr.EmitPhase(r.pipe.StepCount(), "resize", d)
	}
	s.autoCheckpoint(j, r, *cfg)
}

// Shutdown drains the scheduler: no new submissions or resumes are
// accepted, running jobs checkpoint at their next step boundary and park
// as paused, and the call returns when every worker has finished or ctx
// expires. Queued jobs simply stay queued in the registry.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.retryWG.Wait()
		if s.pers != nil {
			// All checkpoint producers are done: close the queue, let the
			// persister drain what's left, and wait for it to exit so no
			// file write outlives Shutdown.
			close(s.pers.ops)
			<-s.pers.done
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// quitting reports whether a drain has started.
func (s *Scheduler) quitting() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

// worker consumes the queue until the scheduler drains.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case <-s.kill:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one job from its current position (fresh, or from a
// pause/retry checkpoint) until it finishes, fails, pauses or is
// cancelled. A panic anywhere in the attempt — a worker crash — is
// recovered here: the job fails (or retries) with the captured stack, and
// the worker goroutine and its pool survive.
func (s *Scheduler) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled or paused while sitting in the queue channel, or a
		// stale queue entry from a pause/resume cycle.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.err = nil
	if j.started.IsZero() {
		j.started = time.Now()
	}
	started := j.started
	j.updated = time.Now()
	cfg := j.Cfg
	checkpoint := j.checkpoint
	tr := j.tracer
	j.mu.Unlock()

	// Deferred in reverse execution order: the panic handler runs first
	// (its retry/fail events must precede the attempt record), then the
	// attempt wall-time event, then — once the state is settled — the
	// ledger close if the job turned terminal.
	defer j.closeLedgerIfTerminal()
	attemptStart := time.Now()
	defer func() {
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindJob, Phase: "attempt", DurNS: time.Since(attemptStart).Nanoseconds()})
		}
	}()
	defer func() {
		if p := recover(); p != nil {
			s.metrics.workerPanics.Add(1)
			s.retryOrFail(j, fmt.Errorf("service: job panicked: %v\n%s", p, debug.Stack()))
		}
	}()

	var (
		r   *run
		err error
	)
	buildStart := time.Now()
	if len(checkpoint) > 0 {
		r, err = restoreRun(cfg, checkpoint)
	} else {
		r, err = newRun(cfg)
	}
	if tr != nil {
		tr.EmitPhase(0, "build", time.Since(buildStart))
	}
	if err != nil {
		s.retryOrFail(j, err)
		return
	}
	if tr != nil {
		r.pipe.SetTracer(tr)
	}
	// Attach the copy-on-write snapshot publisher to the pipeline's step
	// boundary; when the attempt ends — for any reason, including a panic —
	// the publisher goes idle so field readers get the last snapshot (or a
	// clean miss) instead of waiting out their timeout.
	r.pipe.SetSnapshotSink(&jobSink{j: j})
	j.pub.SetIdle(false)
	defer j.pub.SetIdle(true)
	if len(checkpoint) > 0 {
		// The restored pipeline may be older than the job's last observed
		// progress (a retry rolls back to the last good checkpoint), and a
		// restore can change the grid — cached tiles from the previous
		// attempt's epoch must never serve again.
		j.pub.BumpEpoch()
		s.tiles.InvalidateJob(j.ID)
		j.rebase(r.pipe)
	}

	delay := time.Duration(cfg.StepDelayMS) * time.Millisecond
	deadline := time.Duration(cfg.DeadlineMS) * time.Millisecond
	every := cfg.AutoCheckpointSteps
	lastCkpt := r.pipe.StepCount()
	for r.pipe.StepCount() < cfg.Steps {
		if s.dead() {
			// Simulated process death (Kill): stop mid-flight without
			// parking, checkpointing or touching disk, like a real crash.
			return
		}
		if s.quitting() {
			s.park(j, r)
			return
		}
		switch j.poll() {
		case fenceRequested:
			s.finishFenced(j, r)
			return
		case cancelRequested:
			s.finish(j, StateCancelled, nil, r)
			s.metrics.jobsCancelled.Add(1)
			return
		case pauseRequested:
			s.park(j, r)
			return
		}
		if procs := j.takeResize(); procs > 0 {
			s.resizeRun(j, r, &cfg, procs)
		}
		if deadline > 0 && time.Since(started) > deadline {
			s.finish(j, StateFailed, fmt.Errorf("%w (%s over %d steps, %d done)",
				ErrDeadlineExceeded, deadline, cfg.Steps, r.pipe.StepCount()), r)
			s.metrics.jobsFailed.Add(1)
			return
		}
		stepStart := time.Now()
		if err := r.step(); err != nil {
			s.retryOrFail(j, err)
			return
		}
		s.metrics.stepDur.Observe(time.Since(stepStart))
		var obsStart time.Time
		if tr != nil {
			obsStart = time.Now()
		}
		fresh := j.observe(r.pipe)
		if tr != nil {
			tr.EmitPhase(r.pipe.StepCount(), "observe", time.Since(obsStart))
		}
		s.metrics.stepsExecuted.Add(1)
		s.metrics.adaptationEvents.Add(int64(len(fresh)))
		for _, e := range fresh {
			s.metrics.redistBytes.Add(int64(e.Metrics.Redist.RemoteBytes))
		}
		if j.takeCkptWant() {
			// A checkpoint export demanded a fresh boundary checkpoint;
			// cutting it here costs the loop exactly one normal
			// auto-checkpoint, never more.
			lastCkpt = r.pipe.StepCount()
			s.autoCheckpoint(j, r, cfg)
		} else if every > 0 && r.pipe.StepCount()-lastCkpt >= every && r.pipe.StepCount() < cfg.Steps {
			lastCkpt = r.pipe.StepCount()
			s.autoCheckpoint(j, r, cfg)
		}
		if delay > 0 {
			sleepStart := time.Now()
			time.Sleep(delay)
			if tr != nil {
				tr.EmitPhase(r.pipe.StepCount(), "sleep", time.Since(sleepStart))
			}
		}
	}
	s.finish(j, StateDone, nil, r)
	s.metrics.jobsCompleted.Add(1)
	s.metrics.jobDur.Observe(time.Since(started))
}

// autoCheckpoint snapshots a running job so a later retry loses at most
// AutoCheckpointSteps steps. The pipeline is encoded by the run's delta
// checkpoint writer — a full base or, when only some nests changed since
// the last cut, a delta blob a fraction of the size — and the encoded
// chain is handed to the background persister, so the step loop never
// waits on file I/O. A failed write (injected or real) is counted and
// skipped: the previous good chain stays authoritative and the writer's
// dirty tracking is invalidated, forcing the next cut to a full base.
func (s *Scheduler) autoCheckpoint(j *Job, r *run, cfg JobConfig) {
	start := time.Now()
	defer func() {
		d := time.Since(start)
		s.metrics.ckptDur.Observe(d)
		if tr := j.obsTracer(); tr != nil {
			tr.EmitPhase(r.pipe.StepCount(), "checkpoint", d)
		}
	}()
	blob, full, err := r.ckw.Encode(r.pipe)
	s.metrics.ckptEncodeDur.Observe(time.Since(start))
	if err == nil && cfg.Faults != nil {
		// The encoded bytes replay through the fault plan's checkpoint
		// writer so injected torn/failed writes keep their semantics.
		if _, werr := cfg.Faults.WrapCheckpoint(io.Discard).Write(blob); werr != nil {
			err = werr
		}
	}
	if err != nil {
		r.ckw.Invalidate()
		s.metrics.checkpointFailures.Add(1)
		return
	}
	chain := j.appendCheckpoint(blob, full)
	tail := chain[len(chain)-len(blob):]
	s.metrics.autoCheckpoints.Add(1)
	if full {
		s.metrics.fullCheckpoints.Add(1)
	} else {
		s.metrics.deltaCheckpoints.Add(1)
	}
	s.metrics.checkpointBytes.Store(int64(len(chain)))
	s.metrics.checkpointBytesTotal.Add(int64(len(blob)))
	s.enqueuePersist(j, chain, tail, full, nil)
}

// enqueuePersist hands a checkpoint chain to the background persister
// (no-op without a CheckpointDir). The job's config and epoch are
// captured under j.mu now — not when the op is applied — so a concurrent
// resize or epoch bump can't mislabel bytes encoded before it. When done
// is non-nil it is closed once the op has been applied (or dropped by a
// kill); park waits on it so a drain leaves complete files.
func (s *Scheduler) enqueuePersist(j *Job, chain, tail []byte, full bool, done chan struct{}) {
	if s.pers == nil {
		if done != nil {
			close(done)
		}
		return
	}
	j.mu.Lock()
	op := ckptOp{j: j, id: j.ID, cfg: j.Cfg, epoch: j.epoch, chain: chain, tail: tail, full: full, done: done}
	j.mu.Unlock()
	select {
	case s.pers.ops <- op:
	case <-s.kill:
		if done != nil {
			close(done)
		}
	}
}

// retryOrFail decides what a failed attempt becomes: a scheduled retry
// from the last good checkpoint, or a terminal failure. Deadline
// overruns never reach here (they fail terminally in runJob); a cancel
// requested while the attempt was dying wins over both.
func (s *Scheduler) retryOrFail(j *Job, err error) {
	j.mu.Lock()
	if j.state != StateRunning {
		// Already transitioned elsewhere; nothing to decide.
		j.mu.Unlock()
		return
	}
	if j.fenceReq {
		j.state = StateFenced
		j.err = nil
		j.checkpoint = nil
		j.pauseReq, j.cancelReq, j.fenceReq = false, false, false
		j.updated = time.Now()
		j.emitJobEventLocked("fenced", "")
		j.mu.Unlock()
		s.metrics.jobsFenced.Add(1)
		return
	}
	if j.cancelReq {
		j.state = StateCancelled
		j.err = nil
		j.checkpoint = nil
		j.pauseReq, j.cancelReq = false, false
		j.updated = time.Now()
		j.emitJobEventLocked("cancelled", "")
		epoch := j.epoch
		j.mu.Unlock()
		s.metrics.jobsCancelled.Add(1)
		s.removeCheckpointFile(j.ID, epoch)
		return
	}
	if j.retries >= j.Cfg.MaxRetries {
		j.state = StateFailed
		j.err = err
		j.checkpoint = nil
		j.pauseReq = false
		j.updated = time.Now()
		j.emitJobEventLocked("failed", err.Error())
		j.mu.Unlock()
		s.metrics.jobsFailed.Add(1)
		return
	}
	j.retries++
	attempt := j.retries
	j.state = StateRetrying
	j.err = err
	// Resume from the last good auto-checkpoint; with none yet, the nil
	// checkpoint restarts the job from scratch.
	j.checkpoint = j.lastGood
	j.pauseReq = false
	j.updated = time.Now()
	j.emitJobEventLocked("retry", fmt.Sprintf("attempt %d: %v", attempt, err))
	cfg := j.Cfg // copied under mu: a concurrent resize mutates Cfg.Cores
	j.mu.Unlock()
	s.metrics.jobRetries.Add(1)
	s.scheduleRetry(j, retryBackoff(cfg, j.ID, attempt))
}

// retryBackoff is exponential in the attempt number with ±25% jitter,
// capped at 30s. The jitter is deterministic per (job, attempt) so chaos
// runs reproduce exactly.
func retryBackoff(cfg JobConfig, id string, attempt int) time.Duration {
	base := time.Duration(cfg.RetryBackoffMS) * time.Millisecond
	d := base << uint(attempt-1)
	if max := 30 * time.Second; d > max || d <= 0 {
		d = 30 * time.Second
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", id, attempt)
	rng := rand.New(rand.NewSource(int64(h.Sum64()) ^ cfg.Seed))
	return time.Duration(float64(d) * (0.75 + 0.5*rng.Float64()))
}

// scheduleRetry re-enqueues j after the backoff elapses. The timer
// goroutine is tracked by retryWG so Shutdown drains it; on a drain the
// retrying job parks as paused with its checkpoint, exactly like a
// running job caught by a drain.
func (s *Scheduler) scheduleRetry(j *Job, backoff time.Duration) {
	s.retryWG.Add(1)
	go func() {
		defer s.retryWG.Done()
		t := time.NewTimer(backoff)
		defer t.Stop()
		select {
		case <-t.C:
		case <-s.kill:
			return
		case <-s.quit:
			s.parkRetrying(j)
			return
		}
		j.mu.Lock()
		if j.state != StateRetrying {
			// Cancelled or paused while waiting out the backoff.
			j.mu.Unlock()
			return
		}
		j.state = StateQueued
		j.updated = time.Now()
		j.mu.Unlock()
		select {
		case s.queue <- j:
		case <-s.kill:
		case <-s.quit:
			j.mu.Lock()
			if j.state == StateQueued {
				j.state = StatePaused
				j.updated = time.Now()
			}
			j.mu.Unlock()
		}
	}()
}

// parkRetrying converts a backoff wait into a paused job during a drain.
func (s *Scheduler) parkRetrying(j *Job) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateRetrying {
		j.state = StatePaused
		j.updated = time.Now()
		j.emitJobEventLocked("paused", "drain while awaiting retry")
	}
}

// removeCheckpointFile drops a terminal job's persisted checkpoint —
// unless the store's file carries a higher epoch, in which case it
// belongs to the worker that adopted the job and must survive this
// copy's death. The removal also poisons the persister's state for the
// job, so a persist op still sitting in the queue cannot resurrect the
// file after the job went terminal.
func (s *Scheduler) removeCheckpointFile(id string, epoch int64) {
	if s.pers == nil {
		return
	}
	s.pers.remove(id, epoch)
}

// park checkpoints a running job and leaves it paused. If the pause
// checkpoint itself fails to write (an injected or real I/O error), the
// job falls back to its last good auto-checkpoint — losing at most
// AutoCheckpointSteps steps — and only fails when no checkpoint exists at
// all. Unlike auto-checkpoints, a park waits for its persist to land:
// the worker is parking anyway, and a drain must leave complete files.
func (s *Scheduler) park(j *Job, r *run) {
	ckptStart := time.Now()
	blob, full, err := r.ckw.Encode(r.pipe)
	s.metrics.ckptEncodeDur.Observe(time.Since(ckptStart))
	if err == nil && j.Cfg.Faults != nil {
		if _, werr := j.Cfg.Faults.WrapCheckpoint(io.Discard).Write(blob); werr != nil {
			err = werr
		}
	}
	s.metrics.ckptDur.Observe(time.Since(ckptStart))
	if tr := j.obsTracer(); tr != nil {
		tr.EmitPhase(r.pipe.StepCount(), "checkpoint", time.Since(ckptStart))
	}
	j.mu.Lock()
	j.pauseReq = false
	if err != nil {
		r.ckw.Invalidate()
		s.metrics.checkpointFailures.Add(1)
		if len(j.lastGood) > 0 {
			j.checkpoint = j.lastGood
			j.state = StatePaused
			j.updated = time.Now()
			j.emitJobEventLocked("paused", "pause checkpoint failed; kept last good auto-checkpoint")
			j.mu.Unlock()
			s.metrics.pauses.Add(1)
			return
		}
		j.state = StateFailed
		j.err = fmt.Errorf("service: pause checkpoint: %w", err)
		j.updated = time.Now()
		j.emitJobEventLocked("failed", j.err.Error())
		j.mu.Unlock()
		s.metrics.jobsFailed.Add(1)
		return
	}
	chain := j.appendCheckpointLocked(blob, full)
	tail := chain[len(chain)-len(blob):]
	j.checkpoint = chain
	j.state = StatePaused
	j.updated = time.Now()
	j.emitJobEventLocked("paused", "")
	j.mu.Unlock()
	s.metrics.pauses.Add(1)
	if full {
		s.metrics.fullCheckpoints.Add(1)
	} else {
		s.metrics.deltaCheckpoints.Add(1)
	}
	s.metrics.checkpointBytes.Store(int64(len(chain)))
	s.metrics.checkpointBytesTotal.Add(int64(len(blob)))
	done := make(chan struct{})
	s.enqueuePersist(j, chain, tail, full, done)
	select {
	case <-done:
	case <-s.kill:
	}
}

// finish moves a job to a terminal state.
func (s *Scheduler) finish(j *Job, state JobState, err error, r *run) {
	if r != nil {
		j.observe(r.pipe)
	}
	j.mu.Lock()
	j.state = state
	j.err = err
	j.checkpoint = nil
	j.pauseReq = false
	j.cancelReq = false
	j.updated = time.Now()
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	j.emitJobEventLocked(string(state), detail)
	epoch := j.epoch
	j.mu.Unlock()
	s.removeCheckpointFile(j.ID, epoch)
}

// finishFenced terminates a superseded running copy. It deliberately
// skips every store interaction finish performs: the checkpoint file now
// belongs to the adopter, and deleting or rewriting it here would be
// exactly the split-brain race fencing exists to prevent.
func (s *Scheduler) finishFenced(j *Job, r *run) {
	if r != nil {
		j.observe(r.pipe)
	}
	j.mu.Lock()
	j.state = StateFenced
	j.err = nil
	j.checkpoint = nil
	j.pauseReq, j.cancelReq, j.fenceReq = false, false, false
	j.updated = time.Now()
	j.emitJobEventLocked("fenced", "local copy superseded by a newer placement epoch")
	j.mu.Unlock()
	s.metrics.jobsFenced.Add(1)
}

// CountsByState returns the number of jobs in each lifecycle state — the
// jobs-by-state gauge of GET /metrics.
func (s *Scheduler) CountsByState() map[JobState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[JobState]int, 8)
	for _, j := range s.jobs {
		out[j.State()]++
	}
	return out
}

// states lists every lifecycle state in display order.
func states() []JobState {
	return []JobState{StateQueued, StateRunning, StatePaused, StateRetrying, StateDone, StateFailed, StateCancelled, StateFenced}
}
