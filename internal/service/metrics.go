package service

import (
	"fmt"
	"io"
	"sync/atomic"

	"nestdiff/internal/obs"
)

// Metrics are the scheduler's cumulative counters, exposed in Prometheus
// text exposition format on GET /metrics without any client-library
// dependency. All fields are atomics: workers update them concurrently
// with scrapes.
type Metrics struct {
	jobsSubmitted      atomic.Int64
	jobsCompleted      atomic.Int64
	jobsCancelled      atomic.Int64
	jobsFailed         atomic.Int64
	jobRetries         atomic.Int64
	workerPanics       atomic.Int64 // panics recovered by the worker pool
	autoCheckpoints    atomic.Int64
	checkpointFailures atomic.Int64
	stepsExecuted      atomic.Int64
	adaptationEvents   atomic.Int64
	redistBytes        atomic.Int64
	pauses             atomic.Int64
	resumes            atomic.Int64
	jobsResized        atomic.Int64 // in-place processor-grid resizes applied
	resizeFailures     atomic.Int64 // resize attempts that failed (job kept its old size)
	checkpointBytes    atomic.Int64 // size of the most recent checkpoint chain
	ledgerFailures     atomic.Int64 // trace ledgers that failed to open or append

	// Fast-checkpoint-path counters.
	checkpointBytesTotal atomic.Int64 // encoded checkpoint bytes produced (full + delta blobs)
	fullCheckpoints      atomic.Int64 // checkpoints cut as full bases
	deltaCheckpoints     atomic.Int64 // checkpoints cut as dirty-nest deltas
	checkpointAppends    atomic.Int64 // delta blobs appended in place to the store file
	checkpointsTruncated atomic.Int64 // chains recovered from a torn delta tail (prefix restored)

	// Fleet and recovery counters.
	queueFullRejections  atomic.Int64 // submits/resumes shed with ErrQueueFull (HTTP 429)
	checkpointsRecovered atomic.Int64 // persisted checkpoints re-registered at startup
	checkpointsCorrupt   atomic.Int64 // persisted checkpoints rejected as torn or corrupt
	jobsImported         atomic.Int64 // jobs registered via Import (recovery, adoption, migration)
	jobsAdopted          atomic.Int64 // jobs adopted from the shared checkpoint store
	jobsFenced           atomic.Int64 // local copies killed after their placement moved elsewhere
	checkpointsFenced    atomic.Int64 // checkpoint writes refused: store file carried a higher epoch

	// Always-on latency histograms (lock-free observes), rendered as
	// Prometheus summaries. Unlike the per-job tracer, these cover every
	// job, traced or not.
	stepDur       *obs.Histogram // one parent simulation step
	ckptDur       *obs.Histogram // one auto/pause checkpoint cut, end to end
	ckptEncodeDur *obs.Histogram // the encode alone (binary codec + delta planning)
	jobDur        *obs.Histogram // completed jobs, first run to done
	resizeDur     *obs.Histogram // one in-place processor-grid resize
}

func newMetrics() *Metrics {
	return &Metrics{
		stepDur:       obs.NewHistogram(),
		ckptDur:       obs.NewHistogram(),
		ckptEncodeDur: obs.NewHistogram(),
		jobDur:        obs.NewHistogram(),
		resizeDur:     obs.NewHistogram(),
	}
}

// StepsExecuted returns the total parent steps simulated across all jobs.
func (m *Metrics) StepsExecuted() int64 { return m.stepsExecuted.Load() }

// AdaptationEvents returns the total PDA invocations that produced an
// adaptation event across all jobs.
func (m *Metrics) AdaptationEvents() int64 { return m.adaptationEvents.Load() }

// RedistBytes returns the total payload bytes that crossed the modelled
// network in nest redistributions.
func (m *Metrics) RedistBytes() int64 { return m.redistBytes.Load() }

// JobsFailed returns the number of jobs that reached the failed state.
func (m *Metrics) JobsFailed() int64 { return m.jobsFailed.Load() }

// JobRetries returns the total retry attempts scheduled across all jobs.
func (m *Metrics) JobRetries() int64 { return m.jobRetries.Load() }

// WorkerPanics returns the number of job panics recovered by the pool.
func (m *Metrics) WorkerPanics() int64 { return m.workerPanics.Load() }

// AutoCheckpoints returns the number of auto-checkpoints written cleanly.
func (m *Metrics) AutoCheckpoints() int64 { return m.autoCheckpoints.Load() }

// CheckpointFailures returns the number of checkpoint writes that failed
// (the previous good checkpoint stayed authoritative each time).
func (m *Metrics) CheckpointFailures() int64 { return m.checkpointFailures.Load() }

// JobsResized returns the in-place processor-grid resizes applied.
func (m *Metrics) JobsResized() int64 { return m.jobsResized.Load() }

// ResizeFailures returns the resize attempts that failed cleanly (each
// job kept stepping at its old size).
func (m *Metrics) ResizeFailures() int64 { return m.resizeFailures.Load() }

// StepDurations returns the streaming step-latency histogram.
func (m *Metrics) StepDurations() *obs.Histogram { return m.stepDur }

// QueueFullRejections returns the submits and resumes shed with
// ErrQueueFull (surfaced as HTTP 429 + Retry-After).
func (m *Metrics) QueueFullRejections() int64 { return m.queueFullRejections.Load() }

// CheckpointsRecovered returns the persisted checkpoints re-registered as
// paused jobs by the startup recovery scan.
func (m *Metrics) CheckpointsRecovered() int64 { return m.checkpointsRecovered.Load() }

// CheckpointsCorrupt returns the persisted checkpoints rejected as torn
// or corrupt by the recovery scan or an adoption read.
func (m *Metrics) CheckpointsCorrupt() int64 { return m.checkpointsCorrupt.Load() }

// JobsImported returns the jobs registered through Import — startup
// recovery, fleet adoption and manual checkpoint migration.
func (m *Metrics) JobsImported() int64 { return m.jobsImported.Load() }

// JobsAdopted returns the jobs this worker adopted from the shared
// checkpoint store after another worker died.
func (m *Metrics) JobsAdopted() int64 { return m.jobsAdopted.Load() }

// JobsFenced returns the local job copies this worker killed because the
// fleet re-homed them under a higher placement epoch.
func (m *Metrics) JobsFenced() int64 { return m.jobsFenced.Load() }

// CheckpointsFenced returns the checkpoint writes refused because the
// shared store already held a higher-epoch file for the job.
func (m *Metrics) CheckpointsFenced() int64 { return m.checkpointsFenced.Load() }

// CheckpointBytesTotal returns the cumulative encoded checkpoint bytes
// produced (full bases plus delta blobs — the interval cost of the fast
// checkpoint path).
func (m *Metrics) CheckpointBytesTotal() int64 { return m.checkpointBytesTotal.Load() }

// FullCheckpoints returns the checkpoints cut as full bases.
func (m *Metrics) FullCheckpoints() int64 { return m.fullCheckpoints.Load() }

// DeltaCheckpoints returns the checkpoints cut as dirty-nest deltas.
func (m *Metrics) DeltaCheckpoints() int64 { return m.deltaCheckpoints.Load() }

// CheckpointAppends returns the delta blobs the persister appended in
// place to checkpoint files instead of rewriting the whole chain.
func (m *Metrics) CheckpointAppends() int64 { return m.checkpointAppends.Load() }

// CheckpointsTruncated returns the persisted chains recovered from a torn
// delta tail — the restore fell back to the longest intact prefix.
func (m *Metrics) CheckpointsTruncated() int64 { return m.checkpointsTruncated.Load() }

// counter writes one Prometheus counter with its metadata.
func counter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	fmt.Fprintf(w, "%s %d\n", name, v)
}

// summaryMetric writes one Prometheus summary (in seconds) from a
// streaming nanosecond histogram.
func summaryMetric(w io.Writer, name, help string, h *obs.Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
	for _, q := range []struct {
		label string
		q     float64
	}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}} {
		fmt.Fprintf(w, "%s{quantile=%q} %g\n", name, q.label, float64(h.QuantileNS(q.q))/1e9)
	}
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.SumNS())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

// WorkerStats is the machine-readable slice of a worker's metrics the
// fleet controller consumes: the JSON body of GET /statz. The controller
// aggregates these across live workers into its fleet-wide /metrics and
// uses the queue numbers for admission decisions; the Prometheus text on
// the worker's own /metrics stays the human/scrape surface.
type WorkerStats struct {
	Workers       int              `json:"workers"`
	QueueDepth    int              `json:"queue_depth"`
	QueueCapacity int              `json:"queue_capacity"`
	Jobs          map[JobState]int `json:"jobs"`
	StepsExecuted int64            `json:"steps_executed"`
	JobsSubmitted int64            `json:"jobs_submitted"`
	JobsCompleted int64            `json:"jobs_completed"`
	JobsFailed    int64            `json:"jobs_failed"`
	JobsImported  int64            `json:"jobs_imported"`
	JobsAdopted   int64            `json:"jobs_adopted"`
	JobsFenced    int64            `json:"jobs_fenced"`
	JobsResized   int64            `json:"jobs_resized"`
	CkptsFenced   int64            `json:"checkpoints_fenced"`
	QueueRejects  int64            `json:"queue_full_rejections"`
	// Fast-checkpoint-path counters, aggregated by the fleet controller
	// into nestctl_fleet_checkpoint_* metrics.
	CkptBytesTotal int64 `json:"checkpoint_bytes_total"`
	CkptsFull      int64 `json:"checkpoints_full"`
	CkptsDelta     int64 `json:"checkpoints_delta"`
	CkptAppends    int64 `json:"checkpoint_appends"`
	CkptsTruncated int64 `json:"checkpoints_truncated"`
	// Tile-cache counters of the read-path serving tier, aggregated by the
	// fleet controller into nestctl_tile_cache_* fleet metrics.
	TileCacheHits      int64 `json:"tile_cache_hits"`
	TileCacheMisses    int64 `json:"tile_cache_misses"`
	TileCacheEvictions int64 `json:"tile_cache_evictions"`
	TileCacheBytes     int64 `json:"tile_cache_bytes"`
	Ready              bool  `json:"ready"`
}

// Stats snapshots the worker's aggregable counters.
func (s *Scheduler) Stats() WorkerStats {
	m := s.metrics
	ts := s.tiles.Stats()
	return WorkerStats{
		Workers:            s.cfg.Workers,
		QueueDepth:         len(s.queue),
		QueueCapacity:      cap(s.queue),
		Jobs:               s.CountsByState(),
		StepsExecuted:      m.stepsExecuted.Load(),
		JobsSubmitted:      m.jobsSubmitted.Load(),
		JobsCompleted:      m.jobsCompleted.Load(),
		JobsFailed:         m.jobsFailed.Load(),
		JobsImported:       m.jobsImported.Load(),
		JobsAdopted:        m.jobsAdopted.Load(),
		JobsFenced:         m.jobsFenced.Load(),
		JobsResized:        m.jobsResized.Load(),
		CkptsFenced:        m.checkpointsFenced.Load(),
		QueueRejects:       m.queueFullRejections.Load(),
		CkptBytesTotal:     m.checkpointBytesTotal.Load(),
		CkptsFull:          m.fullCheckpoints.Load(),
		CkptsDelta:         m.deltaCheckpoints.Load(),
		CkptAppends:        m.checkpointAppends.Load(),
		CkptsTruncated:     m.checkpointsTruncated.Load(),
		TileCacheHits:      ts.Hits,
		TileCacheMisses:    ts.Misses,
		TileCacheEvictions: ts.Evictions,
		TileCacheBytes:     ts.Bytes,
		Ready:              s.Ready(),
	}
}

// WritePrometheus renders the scheduler's full metric surface: the
// jobs-by-state gauge plus the cumulative counters.
func (s *Scheduler) WritePrometheus(w io.Writer) {
	counts := s.CountsByState()
	fmt.Fprintf(w, "# HELP nestserved_jobs Number of jobs by lifecycle state.\n# TYPE nestserved_jobs gauge\n")
	for _, st := range states() {
		fmt.Fprintf(w, "nestserved_jobs{state=%q} %d\n", string(st), counts[st])
	}
	fmt.Fprintf(w, "# HELP nestserved_workers Worker-pool size.\n# TYPE nestserved_workers gauge\nnestserved_workers %d\n", s.cfg.Workers)
	fmt.Fprintf(w, "# HELP nestserved_jobs_running Jobs currently executing on the worker pool.\n# TYPE nestserved_jobs_running gauge\nnestserved_jobs_running %d\n", counts[StateRunning])
	fmt.Fprintf(w, "# HELP nestserved_queue_depth Jobs waiting in the submit queue.\n# TYPE nestserved_queue_depth gauge\nnestserved_queue_depth %d\n", len(s.queue))
	fmt.Fprintf(w, "# HELP nestserved_queue_capacity Submit queue capacity.\n# TYPE nestserved_queue_capacity gauge\nnestserved_queue_capacity %d\n", cap(s.queue))

	m := s.metrics
	counter(w, "nestserved_jobs_submitted_total", "Jobs accepted by the scheduler.", m.jobsSubmitted.Load())
	counter(w, "nestserved_jobs_completed_total", "Jobs that ran to completion.", m.jobsCompleted.Load())
	counter(w, "nestserved_jobs_cancelled_total", "Jobs cancelled before completion.", m.jobsCancelled.Load())
	counter(w, "nestserved_jobs_failed_total", "Jobs that reached the failed state.", m.jobsFailed.Load())
	counter(w, "nestserved_job_retries_total", "Retry attempts scheduled after job failures.", m.jobRetries.Load())
	counter(w, "nestserved_worker_panics_total", "Job panics recovered by the worker pool.", m.workerPanics.Load())
	counter(w, "nestserved_auto_checkpoints_total", "Periodic job checkpoints written cleanly.", m.autoCheckpoints.Load())
	counter(w, "nestserved_checkpoint_failures_total", "Checkpoint writes that failed (previous good checkpoint kept).", m.checkpointFailures.Load())
	counter(w, "nestserved_steps_executed_total", "Parent simulation steps executed across all jobs.", m.stepsExecuted.Load())
	counter(w, "nestserved_adaptation_events_total", "PDA invocations recorded as adaptation events.", m.adaptationEvents.Load())
	counter(w, "nestserved_redist_bytes_moved_total", "Nest payload bytes moved across the modelled network by redistributions.", m.redistBytes.Load())
	counter(w, "nestserved_job_pauses_total", "Pause transitions (checkpointed or queued).", m.pauses.Load())
	counter(w, "nestserved_job_resumes_total", "Resume transitions from paused.", m.resumes.Load())
	counter(w, "nestserved_job_resizes_total", "In-place processor-grid resizes applied at step boundaries.", m.jobsResized.Load())
	counter(w, "nestserved_job_resize_failures_total", "Resize attempts that failed cleanly (job kept its old size).", m.resizeFailures.Load())
	counter(w, "nestserved_trace_ledger_failures_total", "Trace ledgers that failed to open or append.", m.ledgerFailures.Load())
	counter(w, "nestserved_queue_full_rejections_total", "Submits and resumes shed because the queue was full (HTTP 429).", m.queueFullRejections.Load())
	counter(w, "nestserved_checkpoints_recovered_total", "Persisted checkpoints re-registered as paused jobs at startup.", m.checkpointsRecovered.Load())
	counter(w, "nestserved_checkpoints_corrupt_total", "Persisted checkpoints rejected as torn or corrupt.", m.checkpointsCorrupt.Load())
	counter(w, "nestserved_jobs_imported_total", "Jobs registered via import (recovery, adoption, migration).", m.jobsImported.Load())
	counter(w, "nestserved_jobs_adopted_total", "Jobs adopted from the shared checkpoint store.", m.jobsAdopted.Load())
	counter(w, "nestserved_jobs_fenced_total", "Local job copies killed after their placement moved to another worker.", m.jobsFenced.Load())
	counter(w, "nestserved_checkpoints_fenced_total", "Checkpoint writes refused because the store held a higher-epoch file.", m.checkpointsFenced.Load())
	counter(w, "nestserved_checkpoint_bytes_total", "Encoded checkpoint bytes produced (full bases plus delta blobs).", m.checkpointBytesTotal.Load())
	counter(w, "nestserved_full_checkpoints_total", "Checkpoints cut as full base blobs.", m.fullCheckpoints.Load())
	counter(w, "nestserved_delta_checkpoints_total", "Checkpoints cut as dirty-nest delta blobs.", m.deltaCheckpoints.Load())
	counter(w, "nestserved_checkpoint_appends_total", "Delta blobs appended in place to checkpoint files (no rewrite).", m.checkpointAppends.Load())
	counter(w, "nestserved_checkpoints_truncated_total", "Persisted chains recovered from a torn delta tail (longest intact prefix restored).", m.checkpointsTruncated.Load())
	ts := s.tiles.Stats()
	counter(w, "nestserved_tile_cache_hits_total", "Tile reads served from the quantized tile cache.", ts.Hits)
	counter(w, "nestserved_tile_cache_misses_total", "Tile reads that encoded a tile (cache miss).", ts.Misses)
	counter(w, "nestserved_tile_cache_evictions_total", "Tiles evicted to hold the cache byte budget.", ts.Evictions)
	counter(w, "nestserved_tile_cache_bytes_total", "Resident payload bytes currently held by the tile cache.", ts.Bytes)
	fmt.Fprintf(w, "# HELP nestserved_last_checkpoint_bytes Size of the most recent pause checkpoint.\n# TYPE nestserved_last_checkpoint_bytes gauge\nnestserved_last_checkpoint_bytes %d\n", m.checkpointBytes.Load())
	summaryMetric(w, "nestserved_step_duration_seconds", "Wall-clock duration of one parent simulation step.", m.stepDur)
	summaryMetric(w, "nestserved_checkpoint_duration_seconds", "Wall-clock duration of one auto or pause checkpoint cut, end to end.", m.ckptDur)
	summaryMetric(w, "nestserved_checkpoint_encode_seconds", "Wall-clock duration of the checkpoint encode alone (binary codec plus delta planning).", m.ckptEncodeDur)
	summaryMetric(w, "nestserved_job_duration_seconds", "Wall-clock duration of completed jobs, first run to done.", m.jobDur)
	summaryMetric(w, "nestserved_resize_duration_seconds", "Wall-clock duration of one in-place processor-grid resize (excluding its anchor checkpoints).", m.resizeDur)
}
