package service

import (
	"sync"
	"time"

	"nestdiff/internal/core"
	"nestdiff/internal/obs"
	"nestdiff/internal/scenario"
	"nestdiff/internal/serve"
)

// JobState is one stage of the job lifecycle:
//
//	queued → running → done
//	                 ↘ failed (retries exhausted, deadline, or no retry policy)
//	running → retrying → queued (backoff elapsed; resumes from the last
//	                             good checkpoint)
//	queued/running/retrying → cancelled
//	queued/running/retrying ⇄ paused (running pauses through a checkpoint)
//	any non-terminal → fenced (the fleet moved the job elsewhere; this
//	                           copy is dead and must not touch the store)
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StatePaused    JobState = "paused"
	StateRetrying  JobState = "retrying"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
	// StateFenced marks a job copy superseded by a higher placement epoch:
	// the controller adopted or migrated the job onto another worker while
	// this worker was partitioned or draining. A fenced copy terminates at
	// its next step boundary and — unlike a cancelled job — never deletes
	// the shared checkpoint file, which now belongs to the new owner.
	StateFenced JobState = "fenced"
)

// Terminal reports whether no further transitions are possible.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StateFenced
}

// Job is one scheduled simulation. Its snapshot fields are guarded by mu;
// the executing pipeline itself is owned exclusively by the worker
// goroutine currently running the job and is never reachable from other
// goroutines.
type Job struct {
	ID  string
	Cfg JobConfig

	mu         sync.Mutex
	state      JobState
	step       int
	events     []core.AdaptationEvent
	activeSet  scenario.Set
	execTime   float64
	redistTime float64
	execRedist float64
	err        error
	checkpoint []byte // encoded checkpoint chain while paused or awaiting retry
	lastGood   []byte // restorable chain as of the last cleanly cut checkpoint
	retries    int    // retry attempts consumed so far
	epoch      int64  // fleet placement epoch (0: not fleet-managed)
	resizeReq  int    // requested processor count (0: none pending)
	started    time.Time
	pauseReq   bool
	cancelReq  bool
	fenceReq   bool
	created    time.Time
	updated    time.Time

	// tracer is the job's structured tracer (nil unless Cfg.Trace); ledger
	// is its optional on-disk JSONL backing (nil without a scheduler
	// LedgerDir). Both are set once in Submit before the job is enqueued
	// and are read-mostly afterwards; the pointers are guarded by mu so
	// the HTTP surface and the worker never race on them.
	tracer *obs.Tracer
	ledger *obs.Ledger

	// pub is the job's copy-on-write snapshot publisher, set once at
	// registration (Submit/Import) before the job is reachable and
	// immutable afterwards — readers and the worker share it lock-free.
	pub *serve.Publisher

	// ckptGen counts boundary checkpoints cut so far; ckptWant asks the
	// worker to cut one at its next boundary, and ckptCh (closed and
	// replaced on each cut) wakes exporters waiting for it. Guarded by mu.
	ckptGen  int64
	ckptWant bool
	ckptCh   chan struct{}
}

// Snapshot is the externally visible progress of a job — the JSON body of
// GET /jobs/{id}.
type Snapshot struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Step and TotalSteps report parent-step progress.
	Step       int `json:"step"`
	TotalSteps int `json:"total_steps"`
	// Cores is the job's current processor count — live, not the submitted
	// value: a resize (operator or autoscaler) updates it.
	Cores int `json:"cores,omitempty"`
	// ActiveNests is the current nest configuration.
	ActiveNests scenario.Set `json:"active_nests"`
	// Events counts adaptation points so far; LastEvent is the most
	// recent one.
	Events    int                   `json:"events"`
	LastEvent *core.AdaptationEvent `json:"last_event,omitempty"`
	// ExecTime / RedistTime are the cumulative modelled costs over all
	// adaptation points; ExecutedRedistTime is the virtual time of the
	// executed Alltoallv exchanges (distributed jobs).
	ExecTime           float64 `json:"exec_time"`
	RedistTime         float64 `json:"redist_time"`
	ExecutedRedistTime float64 `json:"executed_redist_time"`
	// HasCheckpoint reports whether a pause checkpoint is held (a paused
	// job without one resumes from the start — it was paused while
	// queued).
	HasCheckpoint bool `json:"has_checkpoint"`
	// Retries counts retry attempts consumed so far; a retrying job's
	// Error field carries the failure being retried.
	Retries int `json:"retries,omitempty"`
	// Epoch is the fleet placement epoch this copy of the job runs under
	// (0 for jobs outside a fleet). The controller bumps it on every
	// adoption or migration; a copy with a stale epoch is fenced.
	Epoch   int64     `json:"epoch,omitempty"`
	Error   string    `json:"error,omitempty"`
	Created time.Time `json:"created"`
	Updated time.Time `json:"updated"`
}

// snapshotLocked builds a Snapshot; callers hold j.mu.
func (j *Job) snapshotLocked() Snapshot {
	s := Snapshot{
		ID:                 j.ID,
		State:              j.state,
		Step:               j.step,
		TotalSteps:         j.Cfg.Steps,
		Cores:              j.Cfg.Cores,
		ActiveNests:        j.activeSet,
		Events:             len(j.events),
		ExecTime:           j.execTime,
		RedistTime:         j.redistTime,
		ExecutedRedistTime: j.execRedist,
		HasCheckpoint:      len(j.checkpoint) > 0,
		Retries:            j.retries,
		Epoch:              j.epoch,
		Created:            j.created,
		Updated:            j.updated,
	}
	if len(j.events) > 0 {
		e := j.events[len(j.events)-1]
		s.LastEvent = &e
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// Snapshot returns the job's current progress.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

// Events returns the adaptation events recorded so far. The returned
// slice is a copy; the events themselves are append-only and safe to
// share.
func (j *Job) Events() []core.AdaptationEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]core.AdaptationEvent(nil), j.events...)
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// observe folds the pipeline's progress into the snapshot fields after a
// step, returning the events appended since the last observation (for the
// scheduler's metrics counters).
func (j *Job) observe(p *core.Pipeline) []core.AdaptationEvent {
	events := p.Events()
	j.mu.Lock()
	defer j.mu.Unlock()
	fresh := events[len(j.events):]
	for _, e := range fresh {
		j.execTime += e.Metrics.ExecTime
		j.redistTime += e.Metrics.RedistTime
		j.execRedist += e.ExecutedRedistTime
	}
	j.events = events
	j.step = p.StepCount()
	j.activeSet = p.ActiveSet()
	j.updated = time.Now()
	return fresh
}

// rebase resets the job's progress view to exactly the restored
// pipeline's state. After a retry restores an older checkpoint, the job
// may have observed events past the checkpoint; rebasing discards that
// rolled-back progress so observe's incremental append stays consistent
// and the final trace matches a fault-free run.
func (j *Job) rebase(p *core.Pipeline) {
	events := p.Events()
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append([]core.AdaptationEvent(nil), events...)
	j.execTime, j.redistTime, j.execRedist = 0, 0, 0
	for _, e := range j.events {
		j.execTime += e.Metrics.ExecTime
		j.redistTime += e.Metrics.RedistTime
		j.execRedist += e.ExecutedRedistTime
	}
	j.step = p.StepCount()
	j.activeSet = p.ActiveSet()
	j.updated = time.Now()
}

// obsTracer returns the job's tracer; nil means tracing is disabled and
// every emission site reduces to this one pointer check.
func (j *Job) obsTracer() *obs.Tracer {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tracer
}

// emitJobEventLocked records one lifecycle transition (submitted, paused,
// retry, done, failed, cancelled...). Callers hold j.mu; the tracer has
// its own lock and never takes j.mu, so the nesting is safe.
func (j *Job) emitJobEventLocked(phase, detail string) {
	if j.tracer == nil {
		return
	}
	j.tracer.Emit(obs.Event{Kind: obs.KindJob, Step: j.step, Phase: phase, Detail: detail})
}

// emitJobEvent is emitJobEventLocked for callers not holding j.mu.
func (j *Job) emitJobEvent(phase, detail string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.emitJobEventLocked(phase, detail)
}

// closeLedgerIfTerminal syncs and closes the trace ledger once the job
// can make no further transitions. Safe to call repeatedly (Close is
// idempotent) and from any goroutine.
func (j *Job) closeLedgerIfTerminal() {
	j.mu.Lock()
	led := j.ledger
	terminal := j.state.Terminal()
	j.mu.Unlock()
	if terminal && led != nil {
		led.Close()
	}
}

// appendCheckpoint folds one encoded checkpoint blob into the job's
// restorable chain and returns the chain. A full base starts a fresh
// chain; a delta extends it in place. Extending is safe against
// concurrent readers of older chain values: a reader's slice header keeps
// its shorter length, and bytes below that length are never rewritten
// (growth past capacity reallocates, leaving the old array intact).
func (j *Job) appendCheckpoint(blob []byte, full bool) []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendCheckpointLocked(blob, full)
}

// appendCheckpointLocked is appendCheckpoint for callers holding j.mu.
func (j *Job) appendCheckpointLocked(blob []byte, full bool) []byte {
	if full {
		j.lastGood = append([]byte(nil), blob...)
	} else {
		j.lastGood = append(j.lastGood, blob...)
	}
	j.bumpCkptGenLocked()
	return j.lastGood
}

// bumpCkptGenLocked advances the checkpoint generation and wakes
// waiters. Callers hold j.mu.
func (j *Job) bumpCkptGenLocked() {
	j.ckptGen++
	if j.ckptCh != nil {
		close(j.ckptCh)
		j.ckptCh = nil
	}
}

// takeCkptWant consumes a pending fresh-checkpoint demand. The worker
// calls it once per step boundary.
func (j *Job) takeCkptWant() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	w := j.ckptWant
	j.ckptWant = false
	return w
}

// freshCheckpoint asks the running worker to cut a checkpoint at its
// next step boundary and waits up to maxWait for it. On a job that is
// not running (or when the wait expires) it returns immediately — the
// caller then ships whatever checkpoint it already holds. The step loop
// is never blocked beyond the one boundary checkpoint it cuts anyway.
func (j *Job) freshCheckpoint(maxWait time.Duration) {
	j.mu.Lock()
	if j.state != StateRunning {
		j.mu.Unlock()
		return
	}
	gen := j.ckptGen
	j.ckptWant = true
	if j.ckptCh == nil {
		j.ckptCh = make(chan struct{})
	}
	ch := j.ckptCh
	j.mu.Unlock()

	deadline := time.NewTimer(maxWait)
	defer deadline.Stop()
	for {
		select {
		case <-ch:
		case <-deadline.C:
			return
		}
		j.mu.Lock()
		if j.ckptGen > gen || j.state != StateRunning || j.ckptCh == nil {
			j.mu.Unlock()
			return
		}
		ch = j.ckptCh
		j.mu.Unlock()
	}
}

// publisher returns the job's snapshot publisher (nil-safe: a nil
// publisher ignores publishes and reports ErrNoSnapshot to readers).
func (j *Job) publisher() *serve.Publisher { return j.pub }

// takeResize consumes a pending resize request, returning the requested
// processor count (0: none). The worker calls it once per step boundary;
// consuming before acting means a request is attempted at most once — a
// crash mid-resize retries the job, not the resize.
func (j *Job) takeResize() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	procs := j.resizeReq
	j.resizeReq = 0
	return procs
}

// interruption is the worker's between-steps decision.
type interruption int

const (
	keepRunning interruption = iota
	pauseRequested
	cancelRequested
	fenceRequested
)

// poll reports whether a fence, cancel or pause was requested since the
// last step; fence wins over cancel wins over pause (a fenced copy must
// terminate without the store cleanup a cancel performs).
func (j *Job) poll() interruption {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.fenceReq:
		return fenceRequested
	case j.cancelReq:
		return cancelRequested
	case j.pauseReq:
		return pauseRequested
	}
	return keepRunning
}
