package service

import (
	"context"
	"testing"
	"time"

	"nestdiff/internal/wrfsim"
)

// testCells is a two-storm population with different lifetimes, so a nest
// deletion forces churn partway through a run.
func testCells() []wrfsim.Cell {
	return []wrfsim.Cell{
		{X: 20, Y: 18, Radius: 5, Peak: 2.5, Life: 2 * 3600},
		{X: 70, Y: 50, Radius: 4, Peak: 2.0, Life: 6 * 3600},
	}
}

// smallJob is a fast cells-scenario job on a modest torus.
func smallJob(steps int) JobConfig {
	return JobConfig{
		Cores:         256,
		Machine:       "torus",
		Strategy:      "diffusion",
		Scenario:      "cells",
		NX:            96,
		NY:            72,
		Cells:         testCells(),
		Steps:         steps,
		Interval:      5,
		AnalysisRanks: 6,
		MaxNests:      4,
	}
}

// waitFor polls a job until cond holds or the deadline passes.
func waitFor(t *testing.T, s *Scheduler, id string, what string, cond func(Snapshot) bool) Snapshot {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if cond(snap) {
			return snap
		}
		if snap.State.Terminal() && what != "terminal" {
			t.Fatalf("job %s reached terminal state %s (error %q) while waiting for %s",
				id, snap.State, snap.Error, what)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s on job %s", what, id)
	return Snapshot{}
}

func TestSchedulerRunsJobToCompletion(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2})
	defer s.Shutdown(context.Background())

	snap, err := s.Submit(smallJob(40))
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateQueued || snap.TotalSteps != 40 {
		t.Fatalf("submit snapshot = %+v", snap)
	}
	final := waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("job finished %s (error %q), want done", final.State, final.Error)
	}
	if final.Step != 40 {
		t.Fatalf("final step = %d, want 40", final.Step)
	}
	if final.Events != 8 {
		t.Fatalf("adaptation events = %d, want 8 (every 5 of 40 steps)", final.Events)
	}
	if len(final.ActiveNests) == 0 {
		t.Fatal("no nests live after 40 steps of two mature storms")
	}
	if final.LastEvent == nil || final.LastEvent.Step != 40 {
		t.Fatalf("last event = %+v", final.LastEvent)
	}
	if final.ExecTime <= 0 {
		t.Fatal("no cumulative execution time recorded")
	}
	m := s.Metrics()
	if m.StepsExecuted() != 40 {
		t.Fatalf("steps executed counter = %d, want 40", m.StepsExecuted())
	}
	if m.AdaptationEvents() != 8 {
		t.Fatalf("adaptation events counter = %d, want 8", m.AdaptationEvents())
	}
}

func TestSchedulerRejectsBadConfig(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())
	bad := smallJob(40)
	bad.Steps = 0
	if _, err := s.Submit(bad); err == nil {
		t.Fatal("zero-step job accepted")
	}
	bad = smallJob(40)
	bad.Strategy = "alchemy"
	if _, err := s.Submit(bad); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	bad = smallJob(40)
	bad.Scenario = "cells"
	bad.Cells = nil
	if _, err := s.Submit(bad); err == nil {
		t.Fatal("cells scenario without cells accepted")
	}
}

func TestSchedulerCancelRunningJob(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())
	cfg := smallJob(5000)
	cfg.StepDelayMS = 2
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, snap.ID, "running", func(sn Snapshot) bool { return sn.State == StateRunning && sn.Step > 0 })
	if err := s.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateCancelled {
		t.Fatalf("state after cancel = %s", final.State)
	}
	if final.Step >= 5000 {
		t.Fatal("cancelled job ran to completion")
	}
	// Terminal jobs reject further transitions.
	if err := s.Resume(snap.ID); err == nil {
		t.Fatal("resumed a cancelled job")
	}
	if err := s.Pause(snap.ID); err == nil {
		t.Fatal("paused a cancelled job")
	}
}

func TestSchedulerPauseResumeMatchesUninterruptedRun(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())
	cfg := smallJob(120)
	cfg.StepDelayMS = 2
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pause mid-run, after at least two adaptation events.
	waitFor(t, s, snap.ID, "two events", func(sn Snapshot) bool { return sn.Events >= 2 })
	if err := s.Pause(snap.ID); err != nil {
		t.Fatal(err)
	}
	paused := waitFor(t, s, snap.ID, "paused", func(sn Snapshot) bool { return sn.State == StatePaused })
	if !paused.HasCheckpoint {
		t.Fatal("mid-run pause produced no checkpoint")
	}
	if paused.Step >= cfg.Steps {
		t.Fatal("job completed before the pause landed; raise StepDelayMS")
	}
	if err := s.Resume(snap.ID); err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("job finished %s (error %q)", final.State, final.Error)
	}

	// The paused-and-resumed run must match a direct, uninterrupted
	// Pipeline.Run of the same config exactly.
	direct := cfg
	direct.StepDelayMS = 0
	r, err := newRun(direct)
	if err != nil {
		t.Fatal(err)
	}
	for r.pipe.StepCount() < direct.Steps {
		if err := r.step(); err != nil {
			t.Fatal(err)
		}
	}
	want := r.pipe.ActiveSet()
	if len(final.ActiveNests) != len(want) {
		t.Fatalf("final nest set has %d nests, direct run %d", len(final.ActiveNests), len(want))
	}
	for i := range want {
		if final.ActiveNests[i] != want[i] {
			t.Fatalf("final nest %d = %+v, direct run %+v", i, final.ActiveNests[i], want[i])
		}
	}
	directEvents := r.pipe.Events()
	events, err := s.JobEvents(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(directEvents) {
		t.Fatalf("scheduled run recorded %d events, direct run %d", len(events), len(directEvents))
	}
	for i := range events {
		if events[i].Step != directEvents[i].Step ||
			events[i].Metrics.RedistTime != directEvents[i].Metrics.RedistTime ||
			events[i].Metrics.ExecTime != directEvents[i].Metrics.ExecTime {
			t.Fatalf("event %d diverged from the direct run:\nscheduled %+v\ndirect    %+v",
				i, events[i].Metrics, directEvents[i].Metrics)
		}
	}
}

func TestSchedulerPauseQueuedJob(t *testing.T) {
	// One worker, occupied by a slow job: the second job stays queued and
	// can be paused in place, then resumed.
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())
	slow := smallJob(5000)
	slow.StepDelayMS = 2
	blocker, err := s.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, blocker.ID, "running", func(sn Snapshot) bool { return sn.State == StateRunning })

	queued, err := s.Submit(smallJob(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Pause(queued.ID); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StatePaused || snap.HasCheckpoint {
		t.Fatalf("queued pause snapshot = %+v", snap)
	}
	if err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Resume(queued.ID); err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, queued.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone || final.Step != 10 {
		t.Fatalf("resumed queued job finished %+v", final)
	}
}

func TestSchedulerConcurrentJobs(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 4})
	defer s.Shutdown(context.Background())
	var ids []string
	for i := 0; i < 6; i++ {
		snap, err := s.Submit(smallJob(20))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	for _, id := range ids {
		final := waitFor(t, s, id, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
		if final.State != StateDone {
			t.Fatalf("job %s finished %s (error %q)", id, final.State, final.Error)
		}
	}
	if got := s.Metrics().StepsExecuted(); got != 6*20 {
		t.Fatalf("steps executed = %d, want %d", got, 6*20)
	}
	if len(s.List()) != 6 {
		t.Fatalf("job list has %d entries", len(s.List()))
	}
}

func TestSchedulerShutdownDrainsRunningJobs(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2})
	cfg := smallJob(5000)
	cfg.StepDelayMS = 2
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, snap.ID, "running", func(sn Snapshot) bool { return sn.State == StateRunning && sn.Step > 0 })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	after, err := s.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.State != StatePaused || !after.HasCheckpoint {
		t.Fatalf("drained job = %+v, want paused with checkpoint", after)
	}
	if _, err := s.Submit(smallJob(10)); err == nil {
		t.Fatal("submit accepted after shutdown")
	}
	if err := s.Resume(snap.ID); err == nil {
		t.Fatal("resume accepted after shutdown")
	}
}
