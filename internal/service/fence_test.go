package service

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Epoch fencing from the worker's side: the checkpoint envelope carries
// the placement epoch, Fence kills only copies that are genuinely
// superseded, the shared store arbitrates writers, and the fleet agent
// executes fence commands and survives controller restarts.

func TestJobCheckpointEnvelopeEpochRoundTrip(t *testing.T) {
	cfg := smallJob(10).withDefaults()

	env, err := encodeJobCheckpoint(cfg, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if epoch, err := jobCheckpointEpoch(env); err != nil || epoch != 7 {
		t.Fatalf("jobCheckpointEpoch = %d, %v; want 7, nil", epoch, err)
	}
	gotCfg, epoch, state, err := decodeJobCheckpoint(env)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 7 || len(state) != 0 {
		t.Fatalf("decoded epoch %d, %d state bytes; want 7, 0", epoch, len(state))
	}
	if gotCfg.Steps != cfg.Steps || gotCfg.NX != cfg.NX || gotCfg.Strategy != cfg.Strategy {
		t.Fatalf("decoded config %+v does not match input", gotCfg)
	}

	// A version-1 envelope (no epoch field) must still decode, with epoch 0
	// — the compatibility contract for checkpoints persisted before fencing
	// existed.
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v1 := make([]byte, jobCkptV1HeaderLen, jobCkptV1HeaderLen+len(cfgJSON))
	copy(v1[:4], jobCkptMagic[:])
	v1[4] = 1
	binary.LittleEndian.PutUint32(v1[5:9], uint32(len(cfgJSON)))
	binary.LittleEndian.PutUint32(v1[9:13], crc32.Checksum(cfgJSON, jobCkptCRC))
	v1 = append(v1, cfgJSON...)
	if _, epoch, _, err := decodeJobCheckpoint(v1); err != nil || epoch != 0 {
		t.Fatalf("v1 decode = epoch %d, err %v; want 0, nil", epoch, err)
	}

	// Corruption in the config region must fail the CRC, not decode.
	bad := append([]byte(nil), env...)
	bad[jobCkptHeaderLen+2] ^= 0xff
	if _, _, _, err := decodeJobCheckpoint(bad); err == nil {
		t.Fatal("corrupted envelope decoded cleanly")
	}
	if _, err := jobCheckpointEpoch(env[:8]); err == nil {
		t.Fatal("truncated header yielded an epoch")
	}
}

func TestFenceRequiresStrictlyHigherEpoch(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())

	// One slow job pins the only worker slot so the fence target stays
	// queued, where Fence acts immediately.
	blocker := smallJob(2000)
	blocker.StepDelayMS = 2
	bsnap, err := s.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, bsnap.ID, "running", func(sn Snapshot) bool { return sn.State == StateRunning })

	const id = "fence-tgt"
	if _, err := s.SubmitWithID(id, 3, smallJob(20)); err != nil {
		t.Fatal(err)
	}

	if err := s.Fence("no-such-job", 9); err == nil {
		t.Fatal("fencing an unknown job succeeded")
	}
	// Equal and lower epochs are stale views — a heartbeat racing the
	// adoption that created this copy — and must not kill it.
	for _, epoch := range []int64{3, 2} {
		if err := s.Fence(id, epoch); err != nil {
			t.Fatal(err)
		}
		if snap, _ := s.Get(id); snap.State != StateQueued {
			t.Fatalf("fence at epoch %d killed the rightful copy (state %s)", epoch, snap.State)
		}
	}
	if got := s.Metrics().JobsFenced(); got != 0 {
		t.Fatalf("JobsFenced = %d after stale fences, want 0", got)
	}

	// A strictly higher epoch kills the queued copy at once.
	if err := s.Fence(id, 4); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateFenced || snap.Epoch != 4 {
		t.Fatalf("after fence: state %s epoch %d, want fenced at 4", snap.State, snap.Epoch)
	}
	if got := s.Metrics().JobsFenced(); got != 1 {
		t.Fatalf("JobsFenced = %d, want 1", got)
	}
	// The fenced copy must vanish from heartbeat reports: it no longer
	// represents the job to the control plane.
	for _, r := range s.EpochReport() {
		if r.ID == id {
			t.Fatalf("fenced job still in epoch report: %+v", r)
		}
	}

	// Fencing a terminal copy is a no-op, whatever the epoch.
	if err := s.Cancel(bsnap.ID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, bsnap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if err := s.Fence(bsnap.ID, 99); err != nil {
		t.Fatal(err)
	}
	if snap, _ := s.Get(bsnap.ID); snap.State != StateCancelled {
		t.Fatalf("fence rewrote terminal state to %s", snap.State)
	}
}

func TestFenceRunningJobStopsAtStepBoundary(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())

	cfg := smallJob(2000)
	cfg.StepDelayMS = 2
	const id = "fence-run"
	if _, err := s.SubmitWithID(id, 1, cfg); err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, id, "running", func(sn Snapshot) bool { return sn.State == StateRunning })

	if err := s.Fence(id, 2); err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, id, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateFenced {
		t.Fatalf("running job fenced into %s, want fenced", final.State)
	}
	if final.Step >= 2000 {
		t.Fatalf("job ran to completion (step %d) instead of fencing mid-run", final.Step)
	}
	if got := s.Metrics().JobsFenced(); got != 1 {
		t.Fatalf("JobsFenced = %d, want 1", got)
	}
}

func TestImportReplacesTerminalCopyButNotLive(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2})
	defer s.Shutdown(context.Background())

	// A job that migrated away and was fenced here can migrate back: the
	// terminal copy no longer owns the ID.
	const id = "roundtrip"
	if _, err := s.SubmitWithID(id, 1, smallJob(10)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, id, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	snap, err := s.Import(id, 2, smallJob(10), nil)
	if err != nil {
		t.Fatalf("import over terminal copy: %v", err)
	}
	if snap.State != StatePaused || snap.Epoch != 2 {
		t.Fatalf("imported snapshot state %s epoch %d, want paused at 2", snap.State, snap.Epoch)
	}
	if err := s.Resume(id); err != nil {
		t.Fatal(err)
	}
	if final := waitFor(t, s, id, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() }); final.State != StateDone {
		t.Fatalf("re-imported job finished %s, want done", final.State)
	}

	// A live copy still conflicts.
	live := smallJob(2000)
	live.StepDelayMS = 2
	if _, err := s.SubmitWithID("live-1", 1, live); err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, "live-1", "running", func(sn Snapshot) bool { return sn.State == StateRunning })
	if _, err := s.Import("live-1", 2, smallJob(10), nil); !errors.Is(err, ErrJobExists) {
		t.Fatalf("import over live copy: %v, want ErrJobExists", err)
	}
	s.Cancel("live-1")
}

func TestPersistCheckpointSelfFencesAgainstHigherStoreEpoch(t *testing.T) {
	dir := t.TempDir()
	cfg := smallJob(200)
	cfg.StepDelayMS = 1
	cfg.AutoCheckpointSteps = 5
	const id = "store-arbiter"

	// The shared store already carries this job at epoch 5 — the adopter's
	// checkpoint. A partitioned previous owner running at epoch 1 must
	// refuse to overwrite it and kill itself instead.
	env, err := encodeJobCheckpoint(cfg, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, id+".ckpt")
	if err := os.WriteFile(path, env, 0o644); err != nil {
		t.Fatal(err)
	}

	s := NewScheduler(SchedulerConfig{Workers: 1, CheckpointDir: dir, DisableRecovery: true})
	defer s.Shutdown(context.Background())
	if _, err := s.SubmitWithID(id, 1, cfg); err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, id, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateFenced {
		t.Fatalf("stale owner finished %s, want fenced by the store", final.State)
	}
	if got := s.Metrics().CheckpointsFenced(); got < 1 {
		t.Fatalf("CheckpointsFenced = %d, want >= 1", got)
	}
	// The adopter's file survives untouched at its epoch.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if epoch, err := jobCheckpointEpoch(data); err != nil || epoch != 5 {
		t.Fatalf("store file epoch = %d, %v after self-fence; want 5, nil", epoch, err)
	}
}

func TestAgentBackoffDoublesWithJitterUpToCap(t *testing.T) {
	interval := 100 * time.Millisecond
	a := &Agent{
		cfg:    AgentConfig{HeartbeatInterval: interval},
		rng:    rand.New(rand.NewSource(1)),
		maxOff: 800 * time.Millisecond,
	}
	for _, tc := range []struct {
		fails int
		base  time.Duration
	}{
		{0, 100 * time.Millisecond},
		{1, 200 * time.Millisecond},
		{2, 400 * time.Millisecond},
		{3, 800 * time.Millisecond},  // hits the cap exactly
		{10, 800 * time.Millisecond}, // far past the cap: still the cap
	} {
		a.fails = tc.fails
		lo := time.Duration(float64(tc.base) * 0.75)
		hi := time.Duration(float64(tc.base) * 1.25)
		for i := 0; i < 50; i++ {
			if d := a.nextWait(); d < lo || d > hi {
				t.Fatalf("fails=%d draw %d: nextWait = %v, want within [%v, %v]",
					tc.fails, i, d, lo, hi)
			}
		}
	}
}

// TestAgentExecutesFencesAndReregistersOnNewInstance drives a real agent
// against a scripted controller: the heartbeat reply's fence list must
// kill the local copy, and an instance-ID change (controller restart)
// must trigger a fresh registration.
func TestAgentExecutesFencesAndReregistersOnNewInstance(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())

	cfg := smallJob(2000)
	cfg.StepDelayMS = 2
	const id = "ag-1"
	if _, err := s.SubmitWithID(id, 1, cfg); err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, id, "running", func(sn Snapshot) bool { return sn.State == StateRunning })

	var regs, beats atomic.Int64
	var mu sync.Mutex
	instance := "ctl-A"
	var fenced []JobEpochReport
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fleet/register", func(w http.ResponseWriter, r *http.Request) {
		regs.Add(1)
		mu.Lock()
		inst := instance
		mu.Unlock()
		json.NewEncoder(w).Encode(map[string]string{"status": "registered", "instance": inst})
	})
	mux.HandleFunc("POST /fleet/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		reply := beatReply{Status: "ok", Instance: instance, Fenced: fenced}
		mu.Unlock()
		json.NewEncoder(w).Encode(reply)
		beats.Add(1)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	a, err := StartAgent(AgentConfig{
		ControllerURL:     srv.URL,
		WorkerID:          "w-agent",
		AdvertiseURL:      "http://worker.invalid",
		HeartbeatInterval: 10 * time.Millisecond,
		Sched:             s,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	if regs.Load() < 1 {
		t.Fatal("agent did not register at startup")
	}
	// The agent must have observed instance ctl-A at least once before the
	// "restart", or the flip is not a change from its point of view.
	deadline := time.Now().Add(10 * time.Second)
	for beats.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("agent never heartbeat the scripted controller")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The controller "restarts": new instance ID, and its placement table
	// says this worker's copy of ag-1 is stale under epoch 2.
	mu.Lock()
	instance = "ctl-B"
	fenced = []JobEpochReport{{ID: id, Epoch: 2}}
	mu.Unlock()

	final := waitFor(t, s, id, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateFenced {
		t.Fatalf("heartbeat fence left the job %s, want fenced", final.State)
	}
	deadline = time.Now().Add(10 * time.Second)
	for regs.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("agent never re-registered after instance change (%d registrations)", regs.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
