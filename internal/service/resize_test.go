package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"

	"nestdiff/internal/faults"
)

// elasticJob is the standard resize workload: a distributed scratch-
// strategy cells job, throttled enough that a resize request lands while
// it is still running, with retries and frequent auto-checkpoints so a
// crash mid-resize rolls back cleanly.
func elasticJob(steps int) JobConfig {
	cfg := smallJob(steps)
	cfg.Cores = 8
	cfg.Strategy = "scratch"
	cfg.Distributed = true
	cfg.StepDelayMS = 2
	cfg.AutoCheckpointSteps = 10
	cfg.MaxRetries = 3
	cfg.RetryBackoffMS = 5
	return cfg
}

// TestSchedulerResizeAppliesAtStepBoundary drives the live-resize path:
// a running job resized to 18 processors keeps running, reports the new
// core count, finishes normally, and the resize metrics fire exactly
// once (the repeat request to the current size is a no-op).
func TestSchedulerResizeAppliesAtStepBoundary(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())

	snap, err := s.Submit(elasticJob(80))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, snap.ID, "mid-run", func(sn Snapshot) bool {
		return sn.State == StateRunning && sn.Step >= 10
	})
	if err := s.ResizeJob(snap.ID, 18); err != nil {
		t.Fatal(err)
	}
	resized := waitFor(t, s, snap.ID, "resize applied", func(sn Snapshot) bool {
		return sn.Cores == 18
	})
	if resized.State.Terminal() {
		t.Fatalf("job already %s when the resize was observed", resized.State)
	}
	// Asking for the size the job already runs at must not queue another
	// redistribution.
	if err := s.ResizeJob(snap.ID, 18); err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("resized job finished %s (error %q), want done", final.State, final.Error)
	}
	if final.Cores != 18 {
		t.Fatalf("final snapshot reports %d cores, want 18", final.Cores)
	}
	if final.Retries != 0 {
		t.Fatalf("clean resize caused %d retries", final.Retries)
	}
	m := s.Metrics()
	if m.JobsResized() != 1 {
		t.Fatalf("job_resizes_total = %d, want 1", m.JobsResized())
	}
	if m.ResizeFailures() != 0 {
		t.Fatalf("job_resize_failures_total = %d, want 0", m.ResizeFailures())
	}
}

// TestSchedulerResizeQueuedAndTerminal pins the state machine's edges: a
// queued job repriced before it ever runs starts at the new size; a
// terminal job cannot be resized; nonsense processor counts are
// rejected.
func TestSchedulerResizeQueuedAndTerminal(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())

	blocker, err := s.Submit(elasticJob(120))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(smallJob(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ResizeJob(queued.ID, 32); err != nil {
		t.Fatal(err)
	}
	if sn, _ := s.Get(queued.ID); sn.Cores != 32 || sn.State != StateQueued {
		t.Fatalf("queued job after reprice: %d cores in state %s, want 32 queued", sn.Cores, sn.State)
	}
	if err := s.ResizeJob(queued.ID, 0); err == nil {
		t.Fatal("zero processor count accepted")
	}
	if err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, queued.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone || final.Cores != 32 {
		t.Fatalf("repriced job finished %s with %d cores, want done with 32", final.State, final.Cores)
	}
	if err := s.ResizeJob(queued.ID, 64); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("resize of a done job returned %v, want ErrBadTransition", err)
	}
	if m := s.Metrics(); m.JobsResized() != 0 {
		t.Fatalf("repricing a queued job counted as %d live resizes", m.JobsResized())
	}
}

// TestChaosCrashDuringResizeRecoversAtOldSize is the resize crash drill:
// a fault plan kills the worker inside the resize attempt, after the
// pre-resize checkpoint was taken but before the new grid commits. The
// retry must restore that checkpoint at the OLD size, the consumed
// resize request must not be re-attempted, and the finished run must
// match a fault-free run that was never resized at all.
func TestChaosCrashDuringResizeRecoversAtOldSize(t *testing.T) {
	const steps = 60
	refSnap, refEvents := runFaultFree(t, elasticJob(steps))

	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())
	cfg := elasticJob(steps)
	cfg.Faults = faults.NewPlan(4).FailResize(1)
	snap, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, s, snap.ID, "mid-run", func(sn Snapshot) bool {
		return sn.State == StateRunning && sn.Step >= 12
	})
	if err := s.ResizeJob(snap.ID, 16); err != nil {
		t.Fatal(err)
	}
	final := waitFor(t, s, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("crashed-resize job finished %s (error %q), want done", final.State, final.Error)
	}
	if final.Retries != 1 {
		t.Fatalf("retries = %d, want exactly 1 (one injected resize crash)", final.Retries)
	}
	if final.Cores != 8 {
		t.Fatalf("job finished at %d cores, want the pre-resize 8 (resize must not survive the crash)", final.Cores)
	}
	inj := cfg.Faults.Injections()
	if len(inj) != 1 || inj[0].Kind != faults.KindResizeCrash {
		t.Fatalf("fault plan recorded %+v, want one resize-crash injection", inj)
	}
	m := s.Metrics()
	if m.JobsResized() != 0 {
		t.Fatalf("job_resizes_total = %d after a crashed resize, want 0", m.JobsResized())
	}

	if !reflect.DeepEqual(final.ActiveNests, refSnap.ActiveNests) {
		t.Fatalf("final nest sets diverged:\ncrashed resize %+v\nfault-free     %+v",
			final.ActiveNests, refSnap.ActiveNests)
	}
	events, err := s.JobEvents(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, refEvents) {
		t.Fatalf("event traces diverged after resize-crash recovery: %d events vs %d fault-free",
			len(events), len(refEvents))
	}
}

// TestHTTPResizeEndpoint covers the POST /jobs/{id}/resize wire surface:
// parameter validation, unknown jobs, and a successful resize reflected
// in the job's snapshots.
func TestHTTPResizeEndpoint(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	snap, err := s.Submit(elasticJob(80))
	if err != nil {
		t.Fatal(err)
	}
	if code := httpPost(t, srv.URL+"/jobs/"+snap.ID+"/resize"); code != 400 {
		t.Fatalf("resize without ?procs returned %d, want 400", code)
	}
	if code := httpPost(t, srv.URL+"/jobs/"+snap.ID+"/resize?procs=bogus"); code != 400 {
		t.Fatalf("resize with bad procs returned %d, want 400", code)
	}
	if code := httpPost(t, srv.URL+"/jobs/nope/resize?procs=8"); code != 404 {
		t.Fatalf("resize of unknown job returned %d, want 404", code)
	}
	pollHTTP(t, srv.URL, snap.ID, "mid-run", func(sn Snapshot) bool {
		return sn.State == StateRunning && sn.Step >= 10
	})
	if code := httpPost(t, srv.URL+"/jobs/"+snap.ID+"/resize?procs=18"); code != 200 {
		t.Fatalf("resize returned %d, want 200", code)
	}
	final := pollHTTP(t, srv.URL, snap.ID, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone || final.Cores != 18 {
		t.Fatalf("job finished %s with %d cores, want done with 18", final.State, final.Cores)
	}
}
