package service

import "nestdiff/internal/obs"

// Trace is the JSON body of GET /jobs/{id}/trace: the traced job's
// buffered events, oldest first, plus how many older events the bounded
// ring has evicted. Enabled is false for jobs submitted without
// JobConfig.Trace (their Events is empty — they paid no tracing cost).
type Trace struct {
	ID      string      `json:"id"`
	Enabled bool        `json:"enabled"`
	Dropped int64       `json:"dropped"`
	Events  []obs.Event `json:"events"`
	// LedgerPath is the on-disk JSONL ledger backing this trace (empty
	// without a scheduler LedgerDir); LedgerError surfaces the first
	// append failure, if any.
	LedgerPath  string `json:"ledger_path,omitempty"`
	LedgerError string `json:"ledger_error,omitempty"`
}

// JobTrace returns one job's buffered trace events.
func (s *Scheduler) JobTrace(id string) (Trace, error) {
	j, err := s.lookup(id)
	if err != nil {
		return Trace{}, err
	}
	tr := j.obsTracer()
	out := Trace{ID: j.ID, Enabled: tr != nil}
	if tr == nil {
		return out, nil
	}
	out.Events, out.Dropped = tr.Events()
	j.mu.Lock()
	out.LedgerPath = j.ledger.Path()
	j.mu.Unlock()
	if lerr := tr.LedgerErr(); lerr != nil {
		out.LedgerError = lerr.Error()
	}
	return out, nil
}

// Timeline is the JSON body of GET /jobs/{id}/timeline: the per-phase
// wall-time breakdown of a traced job, built from the tracer's streaming
// aggregates (so it covers every event ever emitted, not just the
// buffered tail).
type Timeline struct {
	ID         string   `json:"id"`
	State      JobState `json:"state"`
	Step       int      `json:"step"`
	TotalSteps int      `json:"total_steps"`
	Enabled    bool     `json:"enabled"`
	// TotalNS sums the wall time of completed run attempts; PhaseNS sums
	// the durations of the leaf phases (build, model, nests, pda, realloc,
	// reconcile, observe, checkpoint, sleep). Phases are non-overlapping,
	// so for a finished job the two agree to within the instrumentation
	// gaps between phases.
	TotalNS int64 `json:"total_ns"`
	PhaseNS int64 `json:"phase_ns"`
	// Phases is the per-phase breakdown in first-seen order.
	Phases []obs.PhaseSummary `json:"phases"`
	// StepLatency summarizes whole-step latency. A step spans several
	// phases, so it is excluded from PhaseNS.
	StepLatency *obs.PhaseSummary `json:"step_latency,omitempty"`
	// Redist summarizes executed in-place redistribution latency
	// (distributed jobs only); redistributions happen inside the
	// reconcile phase, so they too are excluded from PhaseNS.
	Redist *obs.PhaseSummary `json:"redist,omitempty"`
	// NestStep summarizes per-nest step latency. Nests may step
	// concurrently inside the "nests" phase, so these overlap and are
	// excluded from PhaseNS.
	NestStep *obs.PhaseSummary `json:"nest_step,omitempty"`
	Dropped  int64             `json:"dropped,omitempty"`
}

// JobTimeline returns one job's per-phase timing breakdown.
func (s *Scheduler) JobTimeline(id string) (Timeline, error) {
	j, err := s.lookup(id)
	if err != nil {
		return Timeline{}, err
	}
	snap := j.Snapshot()
	tr := j.obsTracer()
	tl := Timeline{
		ID:         snap.ID,
		State:      snap.State,
		Step:       snap.Step,
		TotalSteps: snap.TotalSteps,
		Enabled:    tr != nil,
	}
	if tr == nil {
		return tl, nil
	}
	for _, ps := range tr.Summaries() {
		ps := ps
		switch {
		case ps.Kind == obs.KindPhase:
			tl.Phases = append(tl.Phases, ps)
			tl.PhaseNS += ps.TotalNS
		case ps.Kind == obs.KindJob && ps.Name == "attempt":
			tl.TotalNS = ps.TotalNS
		case ps.Kind == obs.KindStep:
			tl.StepLatency = &ps
		case ps.Kind == obs.KindRedist:
			tl.Redist = &ps
		case ps.Kind == obs.KindNestStep:
			tl.NestStep = &ps
		}
	}
	tl.Dropped = tr.Dropped()
	return tl, nil
}
