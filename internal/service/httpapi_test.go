package service

import (
	"bytes"
	"context"
	"encoding/json"

	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"nestdiff/internal/core"
)

// httpSnapshot fetches and decodes GET /jobs/{id}.
func httpSnapshot(t *testing.T, base, id string) Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /jobs/%s: %d %s", id, resp.StatusCode, body)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// httpPost posts to a job lifecycle endpoint and returns the status code.
func httpPost(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// pollHTTP polls GET /jobs/{id} until cond holds.
func pollHTTP(t *testing.T, base, id, what string, cond func(Snapshot) bool) Snapshot {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		snap := httpSnapshot(t, base, id)
		if cond(snap) {
			return snap
		}
		if snap.State.Terminal() && what != "terminal" {
			t.Fatalf("job %s reached %s (error %q) while waiting for %s", id, snap.State, snap.Error, what)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s on job %s", what, id)
	return Snapshot{}
}

// promValue extracts a metric value from a Prometheus text exposition.
func promValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+" ") && !strings.HasPrefix(line, name+"{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || (fields[0] != name && !strings.HasPrefix(fields[0], name+"{")) {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("metric %s: %v", name, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

// TestNestservedEndToEnd is the acceptance scenario: submit a torus-1024
// diffusion job over HTTP, watch it progress through at least two
// adaptation events, pause it mid-run, resume it from the checkpoint, see
// it complete with the same final nest set as a direct Pipeline.Run of
// the same config, and confirm GET /metrics reflects the run.
func TestNestservedEndToEnd(t *testing.T) {
	sched := NewScheduler(SchedulerConfig{Workers: 2})
	defer sched.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(sched))
	defer srv.Close()

	cfg := JobConfig{
		Cores:         1024,
		Machine:       "torus",
		Strategy:      "diffusion",
		Scenario:      "cells",
		NX:            96,
		NY:            72,
		Cells:         testCells(),
		Steps:         150,
		Interval:      5,
		AnalysisRanks: 6,
		MaxNests:      4,
		StepDelayMS:   2,
	}
	body, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("POST /jobs: %d %s", resp.StatusCode, raw)
	}
	var submitted Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := submitted.ID

	// Progress through at least two adaptation events, observed over HTTP.
	pollHTTP(t, srv.URL, id, "two adaptation events", func(sn Snapshot) bool { return sn.Events >= 2 })

	// Pause mid-run: the worker checkpoints at the next step boundary.
	if code := httpPost(t, srv.URL+"/jobs/"+id+"/pause"); code != http.StatusOK {
		t.Fatalf("POST pause: %d", code)
	}
	paused := pollHTTP(t, srv.URL, id, "paused", func(sn Snapshot) bool { return sn.State == StatePaused })
	if !paused.HasCheckpoint {
		t.Fatal("paused job holds no checkpoint")
	}
	if paused.Step == 0 || paused.Step >= cfg.Steps {
		t.Fatalf("pause landed at step %d of %d", paused.Step, cfg.Steps)
	}

	// A paused job rejects a second pause.
	if code := httpPost(t, srv.URL+"/jobs/"+id+"/pause"); code != http.StatusConflict {
		t.Fatalf("pausing a paused job: %d, want 409", code)
	}

	// Resume from the checkpoint and run to completion.
	if code := httpPost(t, srv.URL+"/jobs/"+id+"/resume"); code != http.StatusOK {
		t.Fatalf("POST resume: %d", code)
	}
	final := pollHTTP(t, srv.URL, id, "terminal", func(sn Snapshot) bool { return sn.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("job finished %s (error %q)", final.State, final.Error)
	}
	if final.Step != cfg.Steps {
		t.Fatalf("final step = %d, want %d", final.Step, cfg.Steps)
	}

	// Events over HTTP: one per interval, in step order.
	eresp, err := http.Get(srv.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var events []core.AdaptationEvent
	if err := json.NewDecoder(eresp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	eresp.Body.Close()
	if len(events) != cfg.Steps/cfg.Interval {
		t.Fatalf("events over HTTP = %d, want %d", len(events), cfg.Steps/cfg.Interval)
	}

	// The paused-and-resumed run matches a direct Pipeline.Run of the
	// same config: same final nest set, same event tail.
	direct := cfg
	direct.StepDelayMS = 0
	r, err := newRun(direct)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.pipe.Run(direct.Steps); err != nil {
		t.Fatal(err)
	}
	want := r.pipe.ActiveSet()
	if len(want) == 0 {
		t.Fatal("direct run ended with no nests; scenario too short for a meaningful comparison")
	}
	if len(final.ActiveNests) != len(want) {
		t.Fatalf("final nest set %v, direct run %v", final.ActiveNests, want)
	}
	for i := range want {
		if final.ActiveNests[i] != want[i] {
			t.Fatalf("final nest %d = %+v, direct run %+v", i, final.ActiveNests[i], want[i])
		}
	}

	// Metrics reflect the run.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(raw)
	if got := promValue(t, text, "nestserved_steps_executed_total"); got < float64(cfg.Steps) {
		t.Fatalf("steps_executed_total = %g, want >= %d", got, cfg.Steps)
	}
	if got := promValue(t, text, "nestserved_adaptation_events_total"); got < float64(len(events)) {
		t.Fatalf("adaptation_events_total = %g, want >= %d", got, len(events))
	}
	if got := promValue(t, text, `nestserved_jobs{state="done"}`); got != 1 {
		t.Fatalf(`jobs{state="done"} = %g, want 1`, got)
	}
	if got := promValue(t, text, "nestserved_job_pauses_total"); got < 1 {
		t.Fatalf("job_pauses_total = %g, want >= 1", got)
	}
	if got := promValue(t, text, "nestserved_job_resumes_total"); got < 1 {
		t.Fatalf("job_resumes_total = %g, want >= 1", got)
	}
	// The run redistributed nest state at least once (the short-lived
	// storm dies, forcing reallocation of the survivor).
	if got := promValue(t, text, "nestserved_redist_bytes_moved_total"); got <= 0 {
		t.Fatalf("redist_bytes_moved_total = %g, want > 0", got)
	}
}

func TestHandlerErrorPaths(t *testing.T) {
	sched := NewScheduler(SchedulerConfig{Workers: 1})
	defer sched.Shutdown(context.Background())
	srv := httptest.NewServer(NewHandler(sched))
	defer srv.Close()

	// Unknown job.
	resp, err := http.Get(srv.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", resp.StatusCode)
	}
	if code := httpPost(t, srv.URL+"/jobs/job-999/cancel"); code != http.StatusNotFound {
		t.Fatalf("cancel unknown job: %d, want 404", code)
	}

	// Malformed and invalid bodies.
	resp, err = http.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"cores": 256, "steps": 10, "strategy": "alchemy"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid strategy: %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"cores": 256, "steps": 10, "bogus_field": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d, want 400", resp.StatusCode)
	}

	// Oversized body: MaxBytesReader must cut it off with 413, not 400.
	huge := `{"cells": [` + strings.Repeat(`{"x":1},`, maxJobBody/8) + `{"x":1}]}`
	resp, err = http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", resp.StatusCode)
	}

	// Listing and health.
	resp, err = http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 0 {
		t.Fatalf("job list = %v, want empty", list)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

// TestReadyzFlipsOnShutdown: /readyz serves 200 while the scheduler
// accepts work and 503 once shutdown begins, so a load balancer stops
// routing to a draining daemon while /healthz stays green.
func TestReadyzFlipsOnShutdown(t *testing.T) {
	sched := NewScheduler(SchedulerConfig{Workers: 1})
	srv := httptest.NewServer(NewHandler(sched))
	defer srv.Close()

	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before shutdown: %d, want 200", code)
	}
	if err := sched.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown: %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after shutdown: %d, want 200 (liveness is not readiness)", code)
	}
}
