package service

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"nestdiff/internal/core"
)

// Job checkpoint files (<CheckpointDir>/<jobID>.ckpt) carry everything a
// scheduler needs to re-register and later resume a job it has never seen:
// the JobConfig (the machine and performance models are rebuilt from it —
// they are configuration, not state) followed by the CRC-enveloped
// pipeline checkpoint from core.SaveState. The outer envelope is
//
//	magic "NDJB" (4) | version (1) | config length (4, LE) | CRC-32C of config (4) | placement epoch (8, LE) | config JSON | pipeline checkpoint
//
// so the config is integrity-checked independently of the pipeline
// payload (whose own NDCP envelope covers the rest). This is what makes
// cross-worker job adoption and startup recovery safe by construction: a
// torn or bit-flipped file fails one of the two checksums and is rejected
// outright instead of resuming a corrupted simulation.
//
// The placement epoch (version 2) is the fleet's fencing token: the
// controller bumps it every time a job is adopted or migrated, and a
// worker writing to the shared store refuses to overwrite a file carrying
// a higher epoch than its own copy of the job. A worker that was merely
// partitioned — not dead — therefore cannot clobber the checkpoints of
// the survivor that adopted its job, no matter how long the partition
// lasts. Version 1 files (no epoch field) decode with epoch 0.
var jobCkptMagic = [4]byte{'N', 'D', 'J', 'B'}

const (
	jobCkptVersion     = 2
	jobCkptV1HeaderLen = 4 + 1 + 4 + 4
	jobCkptHeaderLen   = jobCkptV1HeaderLen + 8
	// jobCkptMaxConfig bounds the allocation a corrupt header can demand.
	jobCkptMaxConfig = 1 << 24
)

var jobCkptCRC = crc32.MakeTable(crc32.Castagnoli)

// encodeJobCheckpoint frames cfg, the placement epoch and a pipeline
// checkpoint into the job checkpoint file format. The Faults field is
// json:"-" and is therefore never persisted: a job recovered or adopted
// from disk runs fault-free.
func encodeJobCheckpoint(cfg JobConfig, epoch int64, state []byte) ([]byte, error) {
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("service: encode job checkpoint: %w", err)
	}
	out := make([]byte, jobCkptHeaderLen, jobCkptHeaderLen+len(cfgJSON)+len(state))
	copy(out[:4], jobCkptMagic[:])
	out[4] = jobCkptVersion
	binary.LittleEndian.PutUint32(out[5:9], uint32(len(cfgJSON)))
	binary.LittleEndian.PutUint32(out[9:13], crc32.Checksum(cfgJSON, jobCkptCRC))
	binary.LittleEndian.PutUint64(out[13:21], uint64(epoch))
	out = append(out, cfgJSON...)
	out = append(out, state...)
	return out, nil
}

// jobCkptHeader validates the fixed-size header and returns the version's
// header length, the config length and the epoch (0 for version 1).
func jobCkptHeader(data []byte) (hdrLen int, cfgLen uint32, epoch int64, err error) {
	if len(data) < jobCkptV1HeaderLen {
		return 0, 0, 0, fmt.Errorf("service: job checkpoint: %d bytes is shorter than the header", len(data))
	}
	if string(data[:4]) != string(jobCkptMagic[:]) {
		return 0, 0, 0, fmt.Errorf("service: job checkpoint: bad magic %q", data[:4])
	}
	switch data[4] {
	case 1:
		hdrLen = jobCkptV1HeaderLen
	case jobCkptVersion:
		hdrLen = jobCkptHeaderLen
		if len(data) < hdrLen {
			return 0, 0, 0, fmt.Errorf("service: job checkpoint: %d bytes is shorter than the v2 header", len(data))
		}
		epoch = int64(binary.LittleEndian.Uint64(data[13:21]))
	default:
		return 0, 0, 0, fmt.Errorf("service: job checkpoint: unsupported version %d", data[4])
	}
	cfgLen = binary.LittleEndian.Uint32(data[5:9])
	if cfgLen == 0 || cfgLen > jobCkptMaxConfig {
		return 0, 0, 0, fmt.Errorf("service: job checkpoint: implausible config length %d", cfgLen)
	}
	return hdrLen, cfgLen, epoch, nil
}

// jobCheckpointEpoch reads the placement epoch from an envelope without
// decoding the config or pipeline payload — the cheap check the persist
// path runs before overwriting a shared-store file.
func jobCheckpointEpoch(data []byte) (int64, error) {
	_, _, epoch, err := jobCkptHeader(data)
	return epoch, err
}

// decodeJobCheckpoint parses and integrity-checks a job checkpoint file,
// returning the job's config, its placement epoch and the raw pipeline
// checkpoint (empty if the job was persisted before its first pipeline
// checkpoint — it restarts from scratch). The pipeline payload is
// validated against its own envelope (magic, length, CRC per delta-chain
// record) without decoding the field payloads, so a recovery scan over
// many files stays cheap.
//
// A payload whose delta-chain tail is torn — the writer died mid-append —
// returns the config, epoch and state alongside an error satisfying
// errors.Is(err, core.ErrDeltaChainBroken): the chain's intact prefix is
// still restorable, and core.RestorePipeline falls back to it. Callers
// decide whether to resume from the prefix or reject the file.
func decodeJobCheckpoint(data []byte) (JobConfig, int64, []byte, error) {
	hdrLen, n, epoch, err := jobCkptHeader(data)
	if err != nil {
		return JobConfig{}, 0, nil, err
	}
	if uint32(len(data)-hdrLen) < n {
		return JobConfig{}, 0, nil, fmt.Errorf("service: job checkpoint: torn file (%d bytes after header, config claims %d)", len(data)-hdrLen, n)
	}
	cfgJSON := data[hdrLen : hdrLen+int(n)]
	if sum := crc32.Checksum(cfgJSON, jobCkptCRC); sum != binary.LittleEndian.Uint32(data[9:13]) {
		return JobConfig{}, 0, nil, fmt.Errorf("service: job checkpoint: config checksum mismatch")
	}
	var cfg JobConfig
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return JobConfig{}, 0, nil, fmt.Errorf("service: job checkpoint: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return JobConfig{}, 0, nil, fmt.Errorf("service: job checkpoint: %w", err)
	}
	state := data[hdrLen+int(n):]
	if len(state) == 0 {
		return cfg, epoch, nil, nil
	}
	if err := core.ValidateCheckpoint(state); err != nil {
		if errors.Is(err, core.ErrDeltaChainBroken) {
			return cfg, epoch, state, err
		}
		return JobConfig{}, 0, nil, err
	}
	return cfg, epoch, state, nil
}
