package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"nestdiff/internal/core"
)

// Job checkpoint files (<CheckpointDir>/<jobID>.ckpt) carry everything a
// scheduler needs to re-register and later resume a job it has never seen:
// the JobConfig (the machine and performance models are rebuilt from it —
// they are configuration, not state) followed by the CRC-enveloped
// pipeline checkpoint from core.SaveState. The outer envelope is
//
//	magic "NDJB" (4) | version (1) | config length (4, LE) | CRC-32C of config (4) | config JSON | pipeline checkpoint
//
// so the config is integrity-checked independently of the pipeline
// payload (whose own NDCP envelope covers the rest). This is what makes
// cross-worker job adoption and startup recovery safe by construction: a
// torn or bit-flipped file fails one of the two checksums and is rejected
// outright instead of resuming a corrupted simulation.
var jobCkptMagic = [4]byte{'N', 'D', 'J', 'B'}

const (
	jobCkptVersion   = 1
	jobCkptHeaderLen = 4 + 1 + 4 + 4
	// jobCkptMaxConfig bounds the allocation a corrupt header can demand.
	jobCkptMaxConfig = 1 << 24
)

var jobCkptCRC = crc32.MakeTable(crc32.Castagnoli)

// encodeJobCheckpoint frames cfg and a pipeline checkpoint into the job
// checkpoint file format. The Faults field is json:"-" and is therefore
// never persisted: a job recovered or adopted from disk runs fault-free.
func encodeJobCheckpoint(cfg JobConfig, state []byte) ([]byte, error) {
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("service: encode job checkpoint: %w", err)
	}
	out := make([]byte, jobCkptHeaderLen, jobCkptHeaderLen+len(cfgJSON)+len(state))
	copy(out[:4], jobCkptMagic[:])
	out[4] = jobCkptVersion
	binary.LittleEndian.PutUint32(out[5:9], uint32(len(cfgJSON)))
	binary.LittleEndian.PutUint32(out[9:13], crc32.Checksum(cfgJSON, jobCkptCRC))
	out = append(out, cfgJSON...)
	out = append(out, state...)
	return out, nil
}

// decodeJobCheckpoint parses and integrity-checks a job checkpoint file,
// returning the job's config and the raw pipeline checkpoint (empty if the
// job was persisted before its first pipeline checkpoint — it restarts
// from scratch). The pipeline payload is validated against its own
// envelope (magic, length, CRC) without gob-decoding it, so a recovery
// scan over many files stays cheap.
func decodeJobCheckpoint(data []byte) (JobConfig, []byte, error) {
	if len(data) < jobCkptHeaderLen {
		return JobConfig{}, nil, fmt.Errorf("service: job checkpoint: %d bytes is shorter than the header", len(data))
	}
	if string(data[:4]) != string(jobCkptMagic[:]) {
		return JobConfig{}, nil, fmt.Errorf("service: job checkpoint: bad magic %q", data[:4])
	}
	if data[4] != jobCkptVersion {
		return JobConfig{}, nil, fmt.Errorf("service: job checkpoint: unsupported version %d", data[4])
	}
	n := binary.LittleEndian.Uint32(data[5:9])
	if n == 0 || n > jobCkptMaxConfig {
		return JobConfig{}, nil, fmt.Errorf("service: job checkpoint: implausible config length %d", n)
	}
	if uint32(len(data)-jobCkptHeaderLen) < n {
		return JobConfig{}, nil, fmt.Errorf("service: job checkpoint: torn file (%d bytes after header, config claims %d)", len(data)-jobCkptHeaderLen, n)
	}
	cfgJSON := data[jobCkptHeaderLen : jobCkptHeaderLen+int(n)]
	if sum := crc32.Checksum(cfgJSON, jobCkptCRC); sum != binary.LittleEndian.Uint32(data[9:13]) {
		return JobConfig{}, nil, fmt.Errorf("service: job checkpoint: config checksum mismatch")
	}
	var cfg JobConfig
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return JobConfig{}, nil, fmt.Errorf("service: job checkpoint: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return JobConfig{}, nil, fmt.Errorf("service: job checkpoint: %w", err)
	}
	state := data[jobCkptHeaderLen+int(n):]
	if len(state) == 0 {
		return cfg, nil, nil
	}
	if err := core.ValidateCheckpoint(state); err != nil {
		return JobConfig{}, nil, err
	}
	return cfg, state, nil
}
